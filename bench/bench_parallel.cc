// Ablation for the multi-threaded architecture (§2.3: "every single
// component is an independent thread"), in two dimensions:
//
//  * BM_SchedulerWorkers — inter-factory parallelism: wall-clock time for a
//    fixed work volume (four independent streams, each a heavy aggregation
//    query) as scheduler workers increase.
//
//  * BM_ParallelSelect* / BM_ParallelAggregate — intra-factory parallelism:
//    one selection-heavy (resp. aggregation) plan over a 1M-tuple basket as
//    the morsel kernel pool grows. Arg 0 is the scalar baseline.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "algebra/plan.h"
#include "bench/bench_util.h"
#include "common/thread_pool.h"

namespace datacell {
namespace {

constexpr size_t kParallelRows = 1u << 20;  // 1M-tuple basket

/// Selection-heavy plan: Filter(100000 <= x AND x <= 500000) over Scan.
/// The interpreter lowers the predicate to the (morsel-parallel)
/// SelectRangeInt64 kernel.
PlanPtr MakeSelectPlan(const Schema& schema) {
  auto scan = MakeScan("batch", schema);
  if (!scan.ok()) return nullptr;
  ExprPtr x = Expr::Column(0, "x", DataType::kInt64);
  ExprPtr pred = Expr::And(
      Expr::Binary(BinaryOp::kGe, x, Expr::Int(100000)),
      Expr::Binary(BinaryOp::kLe, x, Expr::Int(500000)));
  auto filter = MakeFilter(*scan, pred);
  return filter.ok() ? *filter : nullptr;
}

/// Runs `plan` over a pool of `threads` workers (0 = scalar path).
void BM_ParallelSelectPlan(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  TablePtr batch = bench::IntBatchTable(kParallelRows);
  PlanPtr plan = MakeSelectPlan(batch->schema());
  if (plan == nullptr) {
    state.SkipWithError("plan construction failed");
    return;
  }
  PlanBindings bindings;
  bindings["batch"] = batch;
  // The pool lives outside the timing loop, as it does in the engine.
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  ExecContext ctx;
  ctx.pool = pool.get();
  for (auto _ : state) {
    auto r = ExecutePlan(*plan, bindings, ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize((*r)->num_rows());
  }
  bench::ReportTuplesPerSecond(
      state, state.iterations() * static_cast<int64_t>(kParallelRows));
}
BENCHMARK(BM_ParallelSelectPlan)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The raw kernel without plan overhead: SelectRangeInt64 over 1M values.
void BM_ParallelSelectKernel(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  TablePtr batch = bench::IntBatchTable(kParallelRows);
  const Bat& column = *batch->column(0);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  ExecContext ctx;
  ctx.pool = pool.get();
  for (auto _ : state) {
    auto positions = SelectRangeInt64(column, 100000, 500000, ctx);
    benchmark::DoNotOptimize(positions.data());
  }
  bench::ReportTuplesPerSecond(
      state, state.iterations() * static_cast<int64_t>(kParallelRows));
}
BENCHMARK(BM_ParallelSelectKernel)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Grouped aggregation over 1M tuples, 512 groups: per-morsel partials
/// merged pairwise.
void BM_ParallelAggregate(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  TablePtr batch = bench::GroupedBatchTable(kParallelRows, 512);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  ExecContext ctx;
  ctx.pool = pool.get();
  // Grouping stays serial (and outside the loop): the measured kernel is
  // the per-group partial accumulation.
  auto grouping = GroupBy(*batch, {0});
  if (!grouping.ok()) {
    state.SkipWithError(grouping.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto r = AggregateByGroup(*batch->column(1), *grouping, ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->size());
  }
  bench::ReportTuplesPerSecond(
      state, state.iterations() * static_cast<int64_t>(kParallelRows));
}
BENCHMARK(BM_ParallelAggregate)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SchedulerWorkers(benchmark::State& state) {
  size_t workers = static_cast<size_t>(state.range(0));
  constexpr int kStreams = 4;
  constexpr int kBatches = 12;
  constexpr size_t kBatch = 16384;
  double total_ms = 0;
  for (auto _ : state) {
    Engine engine;  // wall clock; threaded mode
    std::vector<FactoryPtr> factories;
    for (int i = 0; i < kStreams; ++i) {
      std::string stream = "r" + std::to_string(i);
      if (!engine.ExecuteSql("create basket " + stream + " (k int, v int)")
               .ok()) {
        return;
      }
      // Heavy per-firing work: group + multiple aggregates + sort.
      auto q = engine.SubmitContinuousQuery(
          "q" + std::to_string(i),
          "select k, count(*) as c, sum(v) as s, avg(v) as a "
          "from [select * from " + stream + "] as w group by k order by s");
      if (!q.ok()) {
        state.SkipWithError(q.status().ToString().c_str());
        return;
      }
      auto info = engine.GetQuery(*q);
      if (!info.ok()) return;
      factories.push_back((*info)->factory);
    }
    auto batch = bench::GroupedBatchTable(kBatch, 512);
    auto start = std::chrono::steady_clock::now();
    if (!engine.Start(workers).ok()) return;
    for (int b = 0; b < kBatches; ++b) {
      for (int i = 0; i < kStreams; ++i) {
        if (!engine.IngestTable("r" + std::to_string(i), *batch).ok()) return;
      }
    }
    // Wait until every factory has consumed its full input volume (firings
    // may merge several ingest batches, so count tuples, not deliveries).
    constexpr int64_t kExpected = int64_t{kBatches} * kBatch;
    bool done = false;
    while (!done) {
      done = true;
      for (const auto& f : factories) {
        if (f->tuples_processed() < kExpected) done = false;
      }
      if (!done) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    auto end = std::chrono::steady_clock::now();
    engine.Stop();
    total_ms +=
        std::chrono::duration_cast<std::chrono::microseconds>(end - start)
            .count() /
        1000.0;
  }
  state.counters["wall_ms"] =
      total_ms / static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() * kStreams * kBatches *
                          static_cast<int64_t>(kBatch));
}
BENCHMARK(BM_SchedulerWorkers)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace datacell

DATACELL_BENCH_MAIN()
