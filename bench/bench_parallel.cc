// Ablation for the multi-threaded architecture (§2.3: "every single
// component is an independent thread"): wall-clock time for a fixed work
// volume — four independent streams each feeding a heavy aggregation
// query — as scheduler workers increase. Independent factories should fire
// concurrently, so wall time should drop until the worker count reaches the
// factory count.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"

namespace datacell {
namespace {

void BM_SchedulerWorkers(benchmark::State& state) {
  size_t workers = static_cast<size_t>(state.range(0));
  constexpr int kStreams = 4;
  constexpr int kBatches = 12;
  constexpr size_t kBatch = 16384;
  double total_ms = 0;
  for (auto _ : state) {
    Engine engine;  // wall clock; threaded mode
    std::vector<FactoryPtr> factories;
    for (int i = 0; i < kStreams; ++i) {
      std::string stream = "r" + std::to_string(i);
      if (!engine.ExecuteSql("create basket " + stream + " (k int, v int)")
               .ok()) {
        return;
      }
      // Heavy per-firing work: group + multiple aggregates + sort.
      auto q = engine.SubmitContinuousQuery(
          "q" + std::to_string(i),
          "select k, count(*) as c, sum(v) as s, avg(v) as a "
          "from [select * from " + stream + "] as w group by k order by s");
      if (!q.ok()) {
        state.SkipWithError(q.status().ToString().c_str());
        return;
      }
      auto info = engine.GetQuery(*q);
      if (!info.ok()) return;
      factories.push_back((*info)->factory);
    }
    auto batch = bench::GroupedBatchTable(kBatch, 512);
    auto start = std::chrono::steady_clock::now();
    if (!engine.Start(workers).ok()) return;
    for (int b = 0; b < kBatches; ++b) {
      for (int i = 0; i < kStreams; ++i) {
        if (!engine.IngestTable("r" + std::to_string(i), *batch).ok()) return;
      }
    }
    // Wait until every factory has consumed its full input volume (firings
    // may merge several ingest batches, so count tuples, not deliveries).
    constexpr int64_t kExpected = int64_t{kBatches} * kBatch;
    bool done = false;
    while (!done) {
      done = true;
      for (const auto& f : factories) {
        if (f->tuples_processed() < kExpected) done = false;
      }
      if (!done) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    auto end = std::chrono::steady_clock::now();
    engine.Stop();
    total_ms +=
        std::chrono::duration_cast<std::chrono::microseconds>(end - start)
            .count() /
        1000.0;
  }
  state.counters["wall_ms"] =
      total_ms / static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() * kStreams * kBatches *
                          static_cast<int64_t>(kBatch));
}
BENCHMARK(BM_SchedulerWorkers)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace datacell

BENCHMARK_MAIN();
