// Experiment E6 (§3.2): a lightweight query sharing the engine with a heavy
// query. The paper's motivation for splitting plans and for scheduler
// control: "a simple solution ... effectively eliminating the need for a
// fast query to wait for a slow one". We quantify the fast query's
// end-to-end result latency (a) alone, (b) next to the heavy query under
// round-robin, and (c) with the fast query prioritised — the scheduler-level
// mechanism our §3.2 implementation provides.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"

namespace datacell {
namespace {

constexpr char kFastSql[] =
    "select x from [select * from r] as s where s.x < 500000";
// The heavy query sorts its whole input and re-aggregates per firing.
constexpr char kHeavySql[] =
    "select k, count(*) as c, sum(v) as s, avg(v) as a "
    "from [select * from h] as w group by k order by s desc";

enum class SplitPolicy { kRoundRobin, kFastPriority, kAdaptive };

void RunSplitBench(benchmark::State& state, bool with_heavy,
                   SplitPolicy policy) {
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  if (!engine.ExecuteSql("create basket h (k int, v int)").ok()) return;
  if (policy == SplitPolicy::kFastPriority) {
    engine.scheduler().set_policy(SchedulingPolicy::kPriority);
  } else if (policy == SplitPolicy::kAdaptive) {
    engine.scheduler().set_policy(SchedulingPolicy::kAdaptive);
  }
  QueryOptions fast_opts;
  fast_opts.priority = policy == SplitPolicy::kFastPriority ? 10 : 0;
  auto fast = engine.SubmitContinuousQuery("fast", kFastSql, fast_opts);
  if (!fast.ok()) return;
  // Record the wall-clock instant of delivery inside the sink: with the
  // fast query prioritised its emitter fires early in the sweep, before the
  // heavy factory runs, even though the sweep as a whole takes as long.
  std::atomic<int64_t> delivered_at_ns{0};
  auto fast_sink = std::make_shared<CallbackSink>(
      [&delivered_at_ns](const Table&, Timestamp) {
        delivered_at_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now().time_since_epoch())
                                  .count(),
                              std::memory_order_release);
      });
  if (!engine.Subscribe(*fast, fast_sink).ok()) return;
  if (with_heavy) {
    auto heavy = engine.SubmitContinuousQuery("heavy", kHeavySql);
    if (!heavy.ok()) return;
  }
  auto fast_rows = bench::IntRows(64);
  auto heavy_batch = bench::GroupedBatchTable(1 << 15, 1 << 12);
  double total_latency_us = 0;
  int64_t measurements = 0;
  for (auto _ : state) {
    if (with_heavy) {
      if (!engine.IngestTable("h", *heavy_batch).ok()) return;
    }
    delivered_at_ns.store(0, std::memory_order_release);
    auto start = std::chrono::steady_clock::now();
    if (!engine.IngestBatch("r", fast_rows).ok()) return;
    // Sweep until the fast query's result was delivered.
    for (int guard = 0;
         delivered_at_ns.load(std::memory_order_acquire) == 0; ++guard) {
      engine.Step();
      if (guard > 1000000) {
        state.SkipWithError("fast query result never delivered");
        return;
      }
    }
    int64_t start_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            start.time_since_epoch())
            .count();
    total_latency_us +=
        static_cast<double>(delivered_at_ns.load(std::memory_order_acquire) -
                            start_ns) /
        1000.0;
    ++measurements;
    engine.Drain();  // let the heavy query finish before the next round
  }
  state.counters["fast_latency_us"] =
      measurements == 0 ? 0 : total_latency_us / measurements;
}

void BM_FastAlone(benchmark::State& state) {
  RunSplitBench(state, /*with_heavy=*/false, SplitPolicy::kRoundRobin);
}
BENCHMARK(BM_FastAlone)->Unit(benchmark::kMicrosecond);

void BM_FastWithHeavyRoundRobin(benchmark::State& state) {
  RunSplitBench(state, /*with_heavy=*/true, SplitPolicy::kRoundRobin);
}
BENCHMARK(BM_FastWithHeavyRoundRobin)->Unit(benchmark::kMicrosecond);

void BM_FastWithHeavyPrioritised(benchmark::State& state) {
  RunSplitBench(state, /*with_heavy=*/true, SplitPolicy::kFastPriority);
}
BENCHMARK(BM_FastWithHeavyPrioritised)->Unit(benchmark::kMicrosecond);

/// Honest counter-case: the backlog-adaptive policy optimises for pressure,
/// not latency — the heavy query's larger backlog fires first, so the fast
/// query's latency resembles round-robin. Policy choice depends on goals.
void BM_FastWithHeavyAdaptive(benchmark::State& state) {
  RunSplitBench(state, /*with_heavy=*/true, SplitPolicy::kAdaptive);
}
BENCHMARK(BM_FastWithHeavyAdaptive)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace datacell

BENCHMARK_MAIN();
