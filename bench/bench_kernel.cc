// Micro experiment (DESIGN.md "Micro"): throughput of the columnar bulk
// primitives the DataCell reuses from the kernel — the paper's premise that
// building on a column store gives the stream engine fast operators for free.

#include <benchmark/benchmark.h>

#include "algebra/operators.h"
#include "algebra/plan.h"
#include "bench/bench_util.h"

namespace datacell {
namespace {

BatPtr RandomInt64Bat(size_t n, uint64_t seed = 1) {
  Rng rng(seed);
  auto b = std::make_shared<Bat>(DataType::kInt64);
  for (size_t i = 0; i < n; ++i) b->AppendInt64(rng.Uniform(0, 999999));
  return b;
}

/// Range selection at a given selectivity (state.range(1) percent).
void BM_SelectRange(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  int64_t hi = state.range(1) * 10000 - 1;  // selectivity% of [0, 1e6)
  BatPtr b = RandomInt64Bat(n);
  for (auto _ : state) {
    auto positions = SelectRangeInt64(*b, 0, hi);
    benchmark::DoNotOptimize(positions);
  }
  bench::ReportTuplesPerSecond(state,
                               static_cast<int64_t>(state.iterations()) *
                                   static_cast<int64_t>(n));
}
BENCHMARK(BM_SelectRange)
    ->ArgsProduct({{1 << 10, 1 << 14, 1 << 18}, {1, 10, 50, 100}});

void BM_HashJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  BatPtr l = RandomInt64Bat(n, 1);
  BatPtr r = RandomInt64Bat(n, 2);
  for (auto _ : state) {
    auto jr = HashJoin(*l, *r);
    benchmark::DoNotOptimize(jr);
  }
  bench::ReportTuplesPerSecond(state,
                               static_cast<int64_t>(state.iterations()) *
                                   static_cast<int64_t>(2 * n));
}
BENCHMARK(BM_HashJoin)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_GroupByAggregate(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  int64_t groups = state.range(1);
  auto rows = bench::GroupedRows(n, groups);
  auto t = std::make_shared<Table>(
      "t", Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}));
  for (const Row& r : rows) {
    if (!t->AppendRow(r).ok()) return;
  }
  for (auto _ : state) {
    auto g = GroupBy(*t, {0});
    auto partials = AggregateByGroup(*t->column(1), *g);
    benchmark::DoNotOptimize(partials);
  }
  bench::ReportTuplesPerSecond(state,
                               static_cast<int64_t>(state.iterations()) *
                                   static_cast<int64_t>(n));
}
BENCHMARK(BM_GroupByAggregate)
    ->ArgsProduct({{1 << 14, 1 << 17}, {10, 1000, 100000}});

void BM_Sort(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto rows = bench::IntRows(n);
  auto t = std::make_shared<Table>("t", Schema({{"v", DataType::kInt64}}));
  for (const Row& r : rows) {
    if (!t->AppendRow(r).ok()) return;
  }
  for (auto _ : state) {
    auto perm = SortPositions(*t, {{0, true}});
    benchmark::DoNotOptimize(perm);
  }
  bench::ReportTuplesPerSecond(state,
                               static_cast<int64_t>(state.iterations()) *
                                   static_cast<int64_t>(n));
}
BENCHMARK(BM_Sort)->Arg(1 << 12)->Arg(1 << 16);

/// Full plan execution through the interpreter (select + project).
void BM_PlanExecution(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto rows = bench::IntRows(n);
  Schema schema({{"x", DataType::kInt64}});
  auto t = std::make_shared<Table>("r", schema);
  for (const Row& r : rows) {
    if (!t->AppendRow(r).ok()) return;
  }
  auto scan = *MakeScan("r", schema);
  auto col = Expr::Column(0, "x", DataType::kInt64);
  auto filtered = *MakeFilter(
      scan, Expr::Binary(BinaryOp::kLt, col, Expr::Int(500000)));
  auto plan = *MakeProject(
      filtered, {Expr::Binary(BinaryOp::kMul, col, Expr::Int(3))}, {"x3"});
  PlanBindings bindings{{"r", t}};
  for (auto _ : state) {
    auto result = ExecutePlan(*plan, bindings);
    benchmark::DoNotOptimize(result);
  }
  bench::ReportTuplesPerSecond(state,
                               static_cast<int64_t>(state.iterations()) *
                                   static_cast<int64_t>(n));
}
BENCHMARK(BM_PlanExecution)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace
}  // namespace datacell

DATACELL_BENCH_MAIN()
