// Experiment E5 (§3.1): re-evaluation versus incremental (basic-window)
// evaluation of sliding-window aggregates. The paper's claim: incremental
// evaluation "avoids processing the already known stream data", so its
// advantage should grow with the window/slide ratio — re-evaluation touches
// every tuple size/slide times, the basic-window model once.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace datacell {
namespace {

void RunWindowBench(benchmark::State& state, WindowMode mode) {
  int64_t window = state.range(0);
  int64_t slide = state.range(1);
  constexpr size_t kBatch = 8192;
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket r (k int, v int)").ok()) return;
  QueryOptions opts;
  opts.window_mode = mode;
  auto q = engine.SubmitContinuousQuery(
      "wagg",
      "select k, count(*) as c, sum(v) as s, min(v) as mn, max(v) as mx "
      "from [select * from r] as w group by k window size " +
          std::to_string(window) + " slide " + std::to_string(slide),
      opts);
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  // Verify the executor really runs in the requested mode.
  auto info = engine.GetQuery(*q);
  if (info.ok()) {
    state.SetLabel((*info)->factory->window_mode_name());
  }
  auto batch_table = bench::GroupedBatchTable(kBatch, 8);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(kBatch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["windows"] = static_cast<double>(sink->batches());
}

void BM_WindowReEval(benchmark::State& state) {
  RunWindowBench(state, WindowMode::kReEvaluation);
}
// (window, slide): slide sweep at fixed window, then window sweep at
// slide = window/16.
BENCHMARK(BM_WindowReEval)
    ->Args({4096, 4096})
    ->Args({4096, 1024})
    ->Args({4096, 256})
    ->Args({4096, 64})
    ->Args({1024, 64})
    ->Args({16384, 1024})
    ->Args({65536, 4096})
    ->Unit(benchmark::kMicrosecond);

void BM_WindowIncremental(benchmark::State& state) {
  RunWindowBench(state, WindowMode::kIncremental);
}
BENCHMARK(BM_WindowIncremental)
    ->Args({4096, 4096})
    ->Args({4096, 1024})
    ->Args({4096, 256})
    ->Args({4096, 64})
    ->Args({1024, 64})
    ->Args({16384, 1024})
    ->Args({65536, 4096})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace datacell

BENCHMARK_MAIN();
