// Experiment E13: the zero-copy columnar data path. Four comparisons, each
// isolating one mechanism of the batch-ingest redesign:
//
//   1. pipeline ingest:  Value-boxed row batches (IngestBatch) vs typed
//      ColumnBatch moves (IngestColumns) through the full
//      receptor->basket->factory->basket->emitter round.
//   2. basket drain:     copying reads (ReadNewFor + TrimConsumed) vs
//      buffer-stealing drains (DrainNewFor) on a single-reader basket.
//   3. result buffers:   malloc-per-result vs BatchPool recycling.
//   4. selection kernel: scalar compress-store loop vs the AVX2 variant
//      behind the runtime dispatch.
//
// All benches are single-threaded steady-state: buffers ping-pong between
// producer and consumer, so after warmup the hot loop should not allocate.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "algebra/kernels.h"
#include "bench/bench_util.h"
#include "storage/batch_pool.h"
#include "storage/column_batch.h"

namespace datacell {
namespace {

// --- 1. pipeline ingest: row copy vs columnar move -----------------------

void BM_PipelineRowIngest(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x < 500000");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  auto rows = bench::IntRows(batch);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestBatch("r", rows).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(batch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["results"] = static_cast<double>(sink->rows());
}
BENCHMARK(BM_PipelineRowIngest)
    ->RangeMultiplier(4)
    ->Range(1 << 8, 1 << 14)
    ->Unit(benchmark::kMicrosecond);

void BM_PipelineZeroCopyIngest(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x < 500000");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  // Pre-generated raw values; the hot loop pays the adapter's refill cost
  // (typed appends into the persistent batch) but no Value boxing and no
  // per-batch allocation: AppendColumns swaps the basket's drained buffers
  // back into `cb`.
  std::vector<int64_t> values;
  values.reserve(batch);
  for (const Row& r : bench::IntRows(batch)) {
    values.push_back(r[0].int64_value());
  }
  ColumnBatch cb(Schema({{"x", DataType::kInt64}}));
  int64_t tuples = 0;
  for (auto _ : state) {
    cb.Clear();
    Bat& col = cb.column(0);
    for (int64_t v : values) col.AppendInt64(v);
    if (!engine.IngestColumns("r", std::move(cb)).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(batch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["results"] = static_cast<double>(sink->rows());
  MetricsSnapshotData snap = engine.MetricsSnapshot();
  const CounterSnapshot* hits = snap.FindCounter("datacell_pool_hits_total");
  const CounterSnapshot* misses =
      snap.FindCounter("datacell_pool_misses_total");
  if (hits != nullptr && misses != nullptr &&
      hits->value + misses->value > 0) {
    state.counters["pool_hit_rate"] =
        static_cast<double>(hits->value) /
        static_cast<double>(hits->value + misses->value);
  }
}
BENCHMARK(BM_PipelineZeroCopyIngest)
    ->RangeMultiplier(4)
    ->Range(1 << 8, 1 << 14)
    ->Unit(benchmark::kMicrosecond);

// --- 2. basket drain: copy vs steal --------------------------------------

void BM_DrainCopying(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Basket basket(Basket::MakeBasketTable("r", Schema({{"x", DataType::kInt64}})));
  size_t reader = basket.RegisterReader();
  auto src = bench::IntBatchTable(n);
  int64_t tuples = 0;
  Timestamp ts = 0;
  for (auto _ : state) {
    if (!basket.AppendStamped(*src, ++ts).ok()) return;
    TablePtr got = basket.ReadNewFor(reader);  // copies every column
    basket.TrimConsumed();
    benchmark::DoNotOptimize(got->num_rows());
    tuples += static_cast<int64_t>(n);
  }
  bench::ReportTuplesPerSecond(state, tuples);
}
BENCHMARK(BM_DrainCopying)->Arg(1 << 12)->Unit(benchmark::kMicrosecond);

void BM_DrainStealing(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Basket basket(Basket::MakeBasketTable("r", Schema({{"x", DataType::kInt64}})));
  BatchPool pool;
  basket.SetBatchPool(&pool);
  size_t reader = basket.RegisterReader();
  auto src = bench::IntBatchTable(n);
  int64_t tuples = 0;
  Timestamp ts = 0;
  for (auto _ : state) {
    if (!basket.AppendStamped(*src, ++ts).ok()) return;
    TablePtr got = basket.DrainNewFor(reader);  // single reader: steals
    benchmark::DoNotOptimize(got->num_rows());
    if (got.use_count() == 1) pool.Recycle(*got);  // emitter's return path
    tuples += static_cast<int64_t>(n);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["pool_hits"] = static_cast<double>(pool.hits());
}
BENCHMARK(BM_DrainStealing)->Arg(1 << 12)->Unit(benchmark::kMicrosecond);

// --- 3. result buffers: malloc vs pool ------------------------------------

void BM_ResultBufferMalloc(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Schema schema({{"x", DataType::kInt64}});
  int64_t tuples = 0;
  for (auto _ : state) {
    auto t = std::make_shared<Table>("res", schema);
    const BatPtr& col = t->column(0);
    for (size_t i = 0; i < n; ++i) col->AppendInt64(static_cast<int64_t>(i));
    benchmark::DoNotOptimize(t->num_rows());
    tuples += static_cast<int64_t>(n);
  }
  bench::ReportTuplesPerSecond(state, tuples);
}
BENCHMARK(BM_ResultBufferMalloc)->Arg(1 << 12)->Unit(benchmark::kMicrosecond);

void BM_ResultBufferPooled(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Schema schema({{"x", DataType::kInt64}});
  BatchPool pool;
  int64_t tuples = 0;
  for (auto _ : state) {
    TablePtr t = pool.AcquireTable("res", schema);
    const BatPtr& col = t->column(0);
    for (size_t i = 0; i < n; ++i) col->AppendInt64(static_cast<int64_t>(i));
    benchmark::DoNotOptimize(t->num_rows());
    pool.Recycle(*t);
    tuples += static_cast<int64_t>(n);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["pool_hits"] = static_cast<double>(pool.hits());
}
BENCHMARK(BM_ResultBufferPooled)->Arg(1 << 12)->Unit(benchmark::kMicrosecond);

// --- 4. selection kernel: scalar vs AVX2 ----------------------------------

std::vector<int64_t> KernelInts(size_t n) {
  std::vector<int64_t> v(n);
  uint64_t s = 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < n; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    v[i] = static_cast<int64_t>(s >> 40);  // [0, 2^24)
  }
  return v;
}

void BM_SelectKernelScalarInt64(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> data = KernelInts(n);
  std::vector<size_t> out(n);
  // ~50% selectivity over the [0, 2^24) value range.
  int64_t lo = 1 << 22, hi = 3 << 22;
  int64_t tuples = 0;
  for (auto _ : state) {
    size_t k = kernel::SelectRangeInt64Scalar(data.data(), lo, hi, 0, n,
                                              out.data());
    benchmark::DoNotOptimize(k);
    tuples += static_cast<int64_t>(n);
  }
  bench::ReportTuplesPerSecond(state, tuples);
}
BENCHMARK(BM_SelectKernelScalarInt64)->Arg(1 << 16)->Unit(benchmark::kMicrosecond);

void BM_SelectKernelSimdInt64(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> data = KernelInts(n);
  std::vector<size_t> out(n);
  int64_t lo = 1 << 22, hi = 3 << 22;
  int64_t tuples = 0;
  for (auto _ : state) {
    size_t k = kernel::SelectRangeInt64(data.data(), lo, hi, 0, n, out.data());
    benchmark::DoNotOptimize(k);
    tuples += static_cast<int64_t>(n);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["avx2"] = kernel::HasAvx2() ? 1.0 : 0.0;
}
BENCHMARK(BM_SelectKernelSimdInt64)->Arg(1 << 16)->Unit(benchmark::kMicrosecond);

void BM_SelectKernelScalarDouble(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> ints = KernelInts(n);
  std::vector<double> data(n);
  for (size_t i = 0; i < n; ++i) data[i] = static_cast<double>(ints[i]);
  std::vector<size_t> out(n);
  double lo = 1 << 22, hi = 3 << 22;
  int64_t tuples = 0;
  for (auto _ : state) {
    size_t k = kernel::SelectRangeDoubleScalar(data.data(), lo, hi, 0, n,
                                               out.data());
    benchmark::DoNotOptimize(k);
    tuples += static_cast<int64_t>(n);
  }
  bench::ReportTuplesPerSecond(state, tuples);
}
BENCHMARK(BM_SelectKernelScalarDouble)->Arg(1 << 16)->Unit(benchmark::kMicrosecond);

void BM_SelectKernelSimdDouble(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> ints = KernelInts(n);
  std::vector<double> data(n);
  for (size_t i = 0; i < n; ++i) data[i] = static_cast<double>(ints[i]);
  std::vector<size_t> out(n);
  double lo = 1 << 22, hi = 3 << 22;
  int64_t tuples = 0;
  for (auto _ : state) {
    size_t k = kernel::SelectRangeDouble(data.data(), lo, hi, 0, n, out.data());
    benchmark::DoNotOptimize(k);
    tuples += static_cast<int64_t>(n);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["avx2"] = kernel::HasAvx2() ? 1.0 : 0.0;
}
BENCHMARK(BM_SelectKernelSimdDouble)->Arg(1 << 16)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace datacell

DATACELL_BENCH_MAIN();
