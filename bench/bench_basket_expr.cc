// Experiment E8 (§2.2, §2.6): basket expressions and out-of-order input.
// Claims probed: (a) the consuming read of a predicate window costs about as
// much as a plain selection — consumption is positional removal, not a
// second scan; (b) because baskets are multisets with no a-priori order,
// out-of-order arrival does not degrade basket processing throughput.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace datacell {
namespace {

/// Plain continuous selection: consume everything, filter in the query.
void BM_PlainSelection(benchmark::State& state) {
  constexpr size_t kBatch = 8192;
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "plain", "select x from [select * from r] as s where s.x < 500000");
  if (!q.ok()) return;
  auto batch_table = bench::IntBatchTable(kBatch);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(kBatch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
}
BENCHMARK(BM_PlainSelection)->Unit(benchmark::kMicrosecond);

/// Predicate window: the basket expression itself filters (and consumes
/// only) the qualifying tuples.
void BM_PredicateWindow(benchmark::State& state) {
  constexpr size_t kBatch = 8192;
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "pw", "select x from [select * from r where r.x < 500000] as s");
  if (!q.ok()) return;
  auto batch_table = bench::IntBatchTable(kBatch);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(kBatch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
}
BENCHMARK(BM_PredicateWindow)->Unit(benchmark::kMicrosecond);

/// Selection + grouped aggregation under increasing input disorder
/// (state.range(0) = % of displaced tuples). Throughput should be flat.
void BM_OutOfOrderInput(benchmark::State& state) {
  double disorder = static_cast<double>(state.range(0)) / 100.0;
  constexpr size_t kBatch = 8192;
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket r (k int, v int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "agg",
      "select k, sum(v) as s from [select * from r] as w group by k");
  if (!q.ok()) return;
  std::vector<ColumnSpec> cols(2);
  cols[0].type = DataType::kInt64;
  cols[0].int_max = 15;
  cols[1].type = DataType::kInt64;
  cols[1].int_max = 999999;
  OutOfOrderGenerator gen(std::make_unique<UniformRowGenerator>(cols, 42),
                          /*max_displacement=*/256, disorder, 7);
  auto batch_table = std::make_shared<Table>(
      "batch", Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}));
  for (const Row& r : gen.NextBatch(kBatch)) {
    if (!batch_table->AppendRow(r).ok()) return;
  }
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(kBatch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
}
BENCHMARK(BM_OutOfOrderInput)
    ->Arg(0)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace datacell

BENCHMARK_MAIN();
