// Ablation for §3.2's shared factories: N queries whose basket expressions
// are identical (same stream, same selective predicate) but whose outer
// queries differ. Without factoring, every query factory evaluates the
// predicate over the stream; with common-subplan factoring one auxiliary
// transition evaluates it once and feeds everyone. The paper: "queries
// requiring similar ranges in selection operators can be supported by
// shared factories that give output to more than one query's factories".

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace datacell {
namespace {

void RunSubplanBench(benchmark::State& state, bool factored) {
  int num_queries = static_cast<int>(state.range(0));
  constexpr size_t kBatch = 8192;
  EngineOptions opts;
  opts.factor_common_subplans = factored;
  Engine engine(opts);
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  for (int i = 0; i < num_queries; ++i) {
    // Same basket expression (5% selectivity); different projections.
    auto q = engine.SubmitContinuousQuery(
        "q" + std::to_string(i),
        "select x + " + std::to_string(i) +
            " as y from [select * from r where r.x < 50000] as s");
    if (!q.ok()) {
      state.SkipWithError(q.status().ToString().c_str());
      return;
    }
  }
  auto batch_table = bench::IntBatchTable(kBatch);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(kBatch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["groups"] = static_cast<double>(engine.num_shared_subplans());
}

void BM_SubplanUnfactored(benchmark::State& state) {
  RunSubplanBench(state, /*factored=*/false);
}
BENCHMARK(BM_SubplanUnfactored)
    ->RangeMultiplier(2)
    ->Range(1, 32)
    ->Unit(benchmark::kMicrosecond);

void BM_SubplanFactored(benchmark::State& state) {
  RunSubplanBench(state, /*factored=*/true);
}
BENCHMARK(BM_SubplanFactored)
    ->RangeMultiplier(2)
    ->Range(1, 32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace datacell

BENCHMARK_MAIN();
