// Ablation for load shedding (§1): the consumer is offline while the
// producer keeps sending. Without a basket capacity the basket grows with
// every round (unbounded memory); with shedding it stays flat at the
// capacity while arrivals are counted as shed. Fixed ingest volume so the
// final footprints are comparable.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace datacell {
namespace {

void RunSheddingBench(benchmark::State& state, size_t capacity) {
  constexpr size_t kBatch = 16384;
  constexpr int kRounds = 256;  // fixed volume so memory is comparable
  EngineOptions opts;
  opts.max_basket_tuples = capacity;  // 0 = unbounded
  Engine engine(opts);
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  // The consumer is offline (e.g. a stalled downstream system): tuples only
  // accumulate. Unbounded, the basket grows with every round; with a
  // capacity, shedding keeps it — and the engine's memory — flat.
  auto batch = bench::IntBatchTable(kBatch);
  int64_t tuples = 0;
  for (auto _ : state) {
    for (int r = 0; r < kRounds; ++r) {
      if (!engine.IngestTable("r", *batch).ok()) return;
      benchmark::DoNotOptimize(engine.tuples_ingested());
    }
    tuples += int64_t{kRounds} * kBatch;
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["basket_mb"] = static_cast<double>(
      (*engine.GetBasket("r"))->memory_usage()) / (1024.0 * 1024.0);
  state.counters["shed"] = static_cast<double>(engine.total_shed());
}

void BM_OverloadUnbounded(benchmark::State& state) {
  RunSheddingBench(state, /*capacity=*/0);
}
BENCHMARK(BM_OverloadUnbounded)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_OverloadShedding(benchmark::State& state) {
  RunSheddingBench(state, /*capacity=*/64 * 1024);
}
BENCHMARK(BM_OverloadShedding)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace datacell

BENCHMARK_MAIN();
