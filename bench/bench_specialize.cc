// Experiment E15: registration-time plan specialization vs the tuple
// interpreter, same query and data, second argument selects the backend
// (1 = specialized pipeline, 0 = interpreter). The specialized path fuses
// filter->project and filter->aggregate into single type-specialized kernel
// passes; the gap between the /1 and /0 rows is what specialization buys at
// each batch size.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace datacell {
namespace {

EngineOptions BackendOptions(bool specialize) {
  EngineOptions opts = bench::BenchEngineOptions();
  opts.specialize_plans = specialize;
  return opts;
}

/// Filter + project: the fused value-compress kernel vs interpreted
/// select-then-project.
void BM_SpecializeSelection(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  Engine engine(BackendOptions(state.range(1) != 0));
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x < 500000");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  auto batch_table = bench::IntBatchTable(batch);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(batch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["results"] = static_cast<double>(sink->rows());
}
BENCHMARK(BM_SpecializeSelection)
    ->ArgsProduct({{1 << 10, 1 << 14}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

/// Filter + scalar aggregate: the fused one-pass filter->aggregate kernel
/// vs interpreted select-positions-then-aggregate.
void BM_SpecializeFilterAggregate(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  Engine engine(BackendOptions(state.range(1) != 0));
  if (!engine.ExecuteSql("create basket r (k int, v int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "agg",
      "select count(*), sum(v), min(v), max(v) "
      "from [select * from r] as s where s.k < 500000");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  auto batch_table = bench::GroupedBatchTable(batch, 1000000);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(batch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
}
BENCHMARK(BM_SpecializeFilterAggregate)
    ->ArgsProduct({{1 << 10, 1 << 14}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

/// Stream ⋈ static table: the registration-built hash index vs the
/// interpreter's per-firing hash join build.
void BM_SpecializeJoin(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  Engine engine(BackendOptions(state.range(1) != 0));
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  if (!engine.ExecuteSql("create table dim (k int, w int)").ok()) return;
  // 4096 dimension rows covering the low key range: ~matching half the
  // stream values generated in [0, 1e6).
  std::string insert = "insert into dim values ";
  for (int i = 0; i < 4096; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i * 244) + ", " + std::to_string(i) + ")";
  }
  if (!engine.ExecuteSql(insert).ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "join",
      "select s.x, dim.w from [select * from r] as s join dim "
      "on s.x = dim.k");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  auto batch_table = bench::IntBatchTable(batch);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(batch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["results"] = static_cast<double>(sink->rows());
}
BENCHMARK(BM_SpecializeJoin)
    ->ArgsProduct({{1 << 10, 1 << 14}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

/// Conjunctive filter stack: both predicates merge into one kernel range at
/// registration vs two interpreted filter passes.
void BM_SpecializeConjunction(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  Engine engine(BackendOptions(state.range(1) != 0));
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "band",
      "select x from [select * from r] as s "
      "where s.x >= 250000 and s.x < 750000");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  auto batch_table = bench::IntBatchTable(batch);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(batch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["results"] = static_cast<double>(sink->rows());
}
BENCHMARK(BM_SpecializeConjunction)
    ->ArgsProduct({{1 << 10, 1 << 14}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace datacell

DATACELL_BENCH_MAIN();
