// Experiment E3 (§2.5): separate baskets versus shared baskets as the number
// of standing queries on one stream grows. The paper's claim: "sharing
// baskets minimizes the overhead of replicating the stream in the proper
// baskets" — separate baskets pay one copy of every tuple per query, so the
// shared strategy should win and the gap should grow linearly with the query
// count.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace datacell {
namespace {

void RunStrategyBench(benchmark::State& state, ProcessingStrategy strategy) {
  int num_queries = static_cast<int>(state.range(0));
  constexpr size_t kBatch = 4096;
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  QueryOptions opts;
  opts.strategy = strategy;
  std::vector<std::shared_ptr<CountingSink>> sinks;
  for (int i = 0; i < num_queries; ++i) {
    // Identical predicate-window queries (10% selectivity) over the same
    // stream attribute: the E3 scenario. Under separate baskets every tuple
    // is copied into each query's basket before selection; under shared
    // baskets each query reads the one basket and copies only its matches.
    auto q = engine.SubmitContinuousQuery(
        "q" + std::to_string(i),
        "select x from [select * from r where r.x < 100000] as s", opts);
    if (!q.ok()) {
      state.SkipWithError(q.status().ToString().c_str());
      return;
    }
    auto sink = std::make_shared<CountingSink>();
    if (!engine.Subscribe(*q, sink).ok()) return;
    sinks.push_back(std::move(sink));
  }
  auto batch_table = bench::IntBatchTable(kBatch);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(kBatch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
}

void BM_SeparateBaskets(benchmark::State& state) {
  RunStrategyBench(state, ProcessingStrategy::kSeparateBaskets);
}
BENCHMARK(BM_SeparateBaskets)
    ->RangeMultiplier(2)
    ->Range(1, 64)
    ->Unit(benchmark::kMicrosecond);

void BM_SharedBaskets(benchmark::State& state) {
  RunStrategyBench(state, ProcessingStrategy::kSharedBaskets);
}
BENCHMARK(BM_SharedBaskets)
    ->RangeMultiplier(2)
    ->Range(1, 64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace datacell

BENCHMARK_MAIN();
