#ifndef DATACELL_BENCH_BENCH_UTIL_H_
#define DATACELL_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "adapters/generator.h"
#include "common/metrics.h"
#include "common/metrics_registry.h"
#include "core/engine.h"

namespace datacell {
namespace bench {

/// Engine configured for benchmarking: wall clock, deterministic stepped
/// scheduling (the benchmark loop drives Drain()).
inline EngineOptions BenchEngineOptions(
    ProcessingStrategy strategy = ProcessingStrategy::kSharedBaskets) {
  EngineOptions opts;
  opts.default_strategy = strategy;
  return opts;
}

/// Pre-generates `n` single-int64-column rows with values uniform in
/// [0, 1'000'000).
inline std::vector<Row> IntRows(size_t n, uint64_t seed = 42) {
  std::vector<ColumnSpec> cols(1);
  cols[0].type = DataType::kInt64;
  cols[0].int_min = 0;
  cols[0].int_max = 999999;
  UniformRowGenerator gen(cols, seed);
  return gen.NextBatch(n);
}

/// Pre-generates `n` (k int64 in [0, groups), v int64) rows.
inline std::vector<Row> GroupedRows(size_t n, int64_t groups,
                                    uint64_t seed = 42) {
  std::vector<ColumnSpec> cols(2);
  cols[0].type = DataType::kInt64;
  cols[0].int_min = 0;
  cols[0].int_max = groups - 1;
  cols[1].type = DataType::kInt64;
  cols[1].int_min = 0;
  cols[1].int_max = 999999;
  UniformRowGenerator gen(cols, seed);
  return gen.NextBatch(n);
}

/// Columnar batch of single-int64-column rows (schema: x int64).
inline TablePtr IntBatchTable(size_t n, uint64_t seed = 42) {
  auto t = std::make_shared<Table>("batch", Schema({{"x", DataType::kInt64}}));
  for (const Row& r : IntRows(n, seed)) {
    if (!t->AppendRow(r).ok()) break;
  }
  return t;
}

/// Columnar batch of (k, v) rows (schema: k int64, v int64).
inline TablePtr GroupedBatchTable(size_t n, int64_t groups,
                                  uint64_t seed = 42) {
  auto t = std::make_shared<Table>(
      "batch", Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}));
  for (const Row& r : GroupedRows(n, groups, seed)) {
    if (!t->AppendRow(r).ok()) break;
  }
  return t;
}

/// Reports tuples/second from the loop's total tuple count.
inline void ReportTuplesPerSecond(benchmark::State& state, int64_t tuples) {
  state.counters["tuples/s"] =
      benchmark::Counter(static_cast<double>(tuples), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(tuples);
}

/// Reports the standard latency percentile set as benchmark counters —
/// `<prefix>_p50_us`, `_p99_us`, `_mean_us`, `_max_us` — so the `--json`
/// output carries full distributions, not just means. No-op on empty stats.
inline void ReportLatencyPercentiles(benchmark::State& state,
                                     const std::string& prefix,
                                     const SampleStats& stats) {
  if (stats.count() == 0) return;
  state.counters[prefix + "_p50_us"] = stats.Percentile(0.5);
  state.counters[prefix + "_p99_us"] = stats.Percentile(0.99);
  state.counters[prefix + "_mean_us"] = stats.Mean();
  state.counters[prefix + "_max_us"] = stats.Max();
}

/// Same, from a live registry histogram (e.g. the engine's per-query
/// end-to-end latency): percentiles are log2-bucket estimates.
inline void ReportLatencyPercentiles(benchmark::State& state,
                                     const std::string& prefix,
                                     const HistogramSnapshot& hist) {
  if (hist.count == 0) return;
  state.counters[prefix + "_p50_us"] = hist.Percentile(0.5);
  state.counters[prefix + "_p99_us"] = hist.Percentile(0.99);
  state.counters[prefix + "_mean_us"] = hist.Mean();
  state.counters[prefix + "_max_us"] = static_cast<double>(hist.max);
}

/// Benchmark entry point with a `--json <file>` convenience flag: it expands
/// to google-benchmark's `--benchmark_out=<file> --benchmark_out_format=json`
/// so CI can collect machine-readable results with one short flag, e.g.
///   bench_parallel --json BENCH_parallel.json
inline int BenchMain(int argc, char** argv) {
  std::vector<std::string> expanded;
  expanded.reserve(static_cast<size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      expanded.push_back(std::string("--benchmark_out=") + argv[i + 1]);
      expanded.push_back("--benchmark_out_format=json");
      ++i;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      expanded.push_back(std::string("--benchmark_out=") + (argv[i] + 7));
      expanded.push_back("--benchmark_out_format=json");
    } else {
      expanded.push_back(argv[i]);
    }
  }
  std::vector<char*> cargv;
  cargv.reserve(expanded.size());
  for (std::string& s : expanded) cargv.push_back(s.data());
  int cargc = static_cast<int>(cargv.size());
  benchmark::Initialize(&cargc, cargv.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench
}  // namespace datacell

/// Replaces BENCHMARK_MAIN() to get the --json flag.
#define DATACELL_BENCH_MAIN()                                   \
  int main(int argc, char** argv) {                             \
    return ::datacell::bench::BenchMain(argc, argv);            \
  }

#endif  // DATACELL_BENCH_BENCH_UTIL_H_
