#ifndef DATACELL_BENCH_BENCH_UTIL_H_
#define DATACELL_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "adapters/generator.h"
#include "core/engine.h"

namespace datacell {
namespace bench {

/// Engine configured for benchmarking: wall clock, deterministic stepped
/// scheduling (the benchmark loop drives Drain()).
inline EngineOptions BenchEngineOptions(
    ProcessingStrategy strategy = ProcessingStrategy::kSharedBaskets) {
  EngineOptions opts;
  opts.default_strategy = strategy;
  return opts;
}

/// Pre-generates `n` single-int64-column rows with values uniform in
/// [0, 1'000'000).
inline std::vector<Row> IntRows(size_t n, uint64_t seed = 42) {
  std::vector<ColumnSpec> cols(1);
  cols[0].type = DataType::kInt64;
  cols[0].int_min = 0;
  cols[0].int_max = 999999;
  UniformRowGenerator gen(cols, seed);
  return gen.NextBatch(n);
}

/// Pre-generates `n` (k int64 in [0, groups), v int64) rows.
inline std::vector<Row> GroupedRows(size_t n, int64_t groups,
                                    uint64_t seed = 42) {
  std::vector<ColumnSpec> cols(2);
  cols[0].type = DataType::kInt64;
  cols[0].int_min = 0;
  cols[0].int_max = groups - 1;
  cols[1].type = DataType::kInt64;
  cols[1].int_min = 0;
  cols[1].int_max = 999999;
  UniformRowGenerator gen(cols, seed);
  return gen.NextBatch(n);
}

/// Columnar batch of single-int64-column rows (schema: x int64).
inline TablePtr IntBatchTable(size_t n, uint64_t seed = 42) {
  auto t = std::make_shared<Table>("batch", Schema({{"x", DataType::kInt64}}));
  for (const Row& r : IntRows(n, seed)) {
    if (!t->AppendRow(r).ok()) break;
  }
  return t;
}

/// Columnar batch of (k, v) rows (schema: k int64, v int64).
inline TablePtr GroupedBatchTable(size_t n, int64_t groups,
                                  uint64_t seed = 42) {
  auto t = std::make_shared<Table>(
      "batch", Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}));
  for (const Row& r : GroupedRows(n, groups, seed)) {
    if (!t->AppendRow(r).ok()) break;
  }
  return t;
}

/// Reports tuples/second from the loop's total tuple count.
inline void ReportTuplesPerSecond(benchmark::State& state, int64_t tuples) {
  state.counters["tuples/s"] =
      benchmark::Counter(static_cast<double>(tuples), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(tuples);
}

}  // namespace bench
}  // namespace datacell

#endif  // DATACELL_BENCH_BENCH_UTIL_H_
