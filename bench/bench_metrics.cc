// Observability overhead (docs/ARCHITECTURE.md "Observability"): the
// instrumentation budget is < 2% on the end-to-end pipeline. This file
// measures the primitives (atomic counter increments, wait-free histogram
// observes, registry lookups, snapshots) and the full pipeline with event
// tracing enabled — compare BM_PipelineSelectionTraced against
// bench_pipeline's BM_PipelineSelection (identical workload, tracing off)
// to see the tracing cost in isolation.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/metrics_registry.h"
#include "common/trace.h"

namespace datacell {
namespace {

void BM_CounterInc(benchmark::State& state) {
  Counter c;
  for (auto _ : state) {
    c.Inc();
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterInc);

void BM_HistogramObserve(benchmark::State& state) {
  Histogram h;
  int64_t v = 1;
  for (auto _ : state) {
    h.Observe(v);
    v = (v * 7) % 1000003;  // spread across buckets
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

/// Registration-path cost: Get* with a label set takes the registry mutex
/// and builds a map key. Hot paths must hold the returned pointer instead —
/// this bench documents why.
void BM_RegistryLookup(benchmark::State& state) {
  MetricsRegistry registry;
  for (auto _ : state) {
    Counter* c = registry.GetCounter("datacell_bench_lookups_total",
                                     {{"kind", "labelled"}});
    c->Inc();
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryLookup);

void BM_TraceRecordComplete(benchmark::State& state) {
  TraceRing ring(1 << 16);
  Timestamp t = 0;
  for (auto _ : state) {
    ring.RecordComplete("bench", "event", t, 5, "n", 1);
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecordComplete);

/// Snapshot + text exposition over a populated registry (`range(0)` metric
/// instances): the scrape-path cost, paid by the reader, never the pipeline.
void BM_MetricsSnapshotAndText(benchmark::State& state) {
  MetricsRegistry registry;
  int instances = static_cast<int>(state.range(0));
  for (int i = 0; i < instances; ++i) {
    MetricLabels labels{{"transition", "t" + std::to_string(i)}};
    registry.GetCounter("datacell_transition_fires_total", labels)->Inc(i);
    Histogram* h =
        registry.GetHistogram("datacell_transition_fire_latency_us", labels);
    for (int v = 1; v < 1000; v *= 3) h->Observe(v);
  }
  for (auto _ : state) {
    MetricsSnapshotData snap = registry.Snapshot();
    std::string text = registry.PrometheusText();
    benchmark::DoNotOptimize(snap);
    benchmark::DoNotOptimize(text);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsSnapshotAndText)->Arg(8)->Arg(64)->Arg(256);

/// BM_PipelineSelection's exact workload with the trace ring enabled: the
/// delta against bench_pipeline's numbers is the cost of recording every
/// sweep, firing and basket lock wait.
void BM_PipelineSelectionTraced(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  EngineOptions opts = bench::BenchEngineOptions();
  opts.trace_capacity = 1 << 16;
  Engine engine(opts);
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x < 500000");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  auto batch_table = bench::IntBatchTable(batch);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(batch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  if (engine.trace() != nullptr) {
    state.counters["trace_events"] =
        static_cast<double>(engine.trace()->total_recorded());
  }
}
BENCHMARK(BM_PipelineSelectionTraced)
    ->RangeMultiplier(8)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace datacell

DATACELL_BENCH_MAIN();
