// Experiment E2 (§4): DataCell's batch (basket) processing versus the
// tuple-at-a-time comparator architecture, on identical selection and
// windowed-aggregation workloads with the same expression trees. The paper's
// claim: "tuple-at-a-time processing incurs a significant overhead while
// batch processing provides flexibility" — the throughput gap should widen
// with batch size.

#include <benchmark/benchmark.h>

#include "baseline/tuple_engine.h"
#include "bench/bench_util.h"

namespace datacell {
namespace {

ExprPtr SelPredicate() {
  // x < 500000 and (x % 10) <> 3 : a couple of per-tuple operations.
  auto col = Expr::Column(0, "x", DataType::kInt64);
  return Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kLt, col, Expr::Int(500000)),
      Expr::Binary(BinaryOp::kNe,
                   Expr::Binary(BinaryOp::kMod, col, Expr::Int(10)),
                   Expr::Int(3)));
}

/// DataCell: tuples accumulate in a basket and the factory processes the
/// whole batch with bulk operators.
void BM_DataCellSelection(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "sel",
      "select x from [select * from r] as s "
      "where s.x < 500000 and s.x % 10 <> 3");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  auto batch_table = bench::IntBatchTable(batch);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(batch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
}
BENCHMARK(BM_DataCellSelection)
    ->RangeMultiplier(4)
    ->Range(1, 1 << 16)
    ->Unit(benchmark::kMicrosecond);

/// Baseline: each tuple individually traverses the operator chain with
/// per-tuple expression interpretation.
void BM_TupleAtATimeSelection(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  baseline::TuplePipeline pipe;
  pipe.Add(std::make_unique<baseline::FilterOp>(SelPredicate()));
  pipe.Add(std::make_unique<baseline::SinkOp>());
  auto rows = bench::IntRows(batch);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!pipe.PushBatch(rows).ok()) return;
    tuples += static_cast<int64_t>(batch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
}
BENCHMARK(BM_TupleAtATimeSelection)
    ->RangeMultiplier(4)
    ->Range(1, 1 << 16)
    ->Unit(benchmark::kMicrosecond);

/// Grouped sliding-window aggregation, DataCell incremental mode.
void BM_DataCellWindowAgg(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket r (k int, v int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "agg",
      "select k, sum(v) as s from [select * from r] as w group by k "
      "window size 1024 slide 256");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  auto batch_table = bench::GroupedBatchTable(batch, 16);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(batch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
}
BENCHMARK(BM_DataCellWindowAgg)
    ->RangeMultiplier(4)
    ->Range(256, 1 << 16)
    ->Unit(benchmark::kMicrosecond);

/// The same window aggregation on the per-tuple engine.
void BM_TupleAtATimeWindowAgg(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  baseline::TuplePipeline pipe;
  pipe.Add(std::make_unique<baseline::WindowAggregateOp>(
      std::vector<size_t>{0}, std::vector<size_t>{1},
      std::vector<AggFunc>{AggFunc::kSum}, 1024, 256));
  pipe.Add(std::make_unique<baseline::SinkOp>());
  auto rows = bench::GroupedRows(batch, 16);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!pipe.PushBatch(rows).ok()) return;
    tuples += static_cast<int64_t>(batch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
}
BENCHMARK(BM_TupleAtATimeWindowAgg)
    ->RangeMultiplier(4)
    ->Range(256, 1 << 16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace datacell

BENCHMARK_MAIN();
