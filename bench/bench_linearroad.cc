// Experiment E7 (§5, [18]): the Linear Road benchmark. The paper reports
// "out of the box good performance on the Linear Road benchmark"; LR's
// acceptance criterion is bounded response time at a given scale factor L
// (number of expressways). We run the simulated LR workload through the full
// continuous-query network (segment statistics, accident detection, tolls)
// and report ingest throughput plus per-simulated-second processing time
// percentiles for L = 1, 2, 4.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "linearroad/driver.h"

namespace datacell {
namespace {

void BM_LinearRoad(benchmark::State& state) {
  int xways = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EngineOptions opts;
    opts.use_wall_clock = false;  // sim time drives the LR time windows
    Engine engine(opts);
    auto queries = linearroad::InstallLrQueries(&engine);
    if (!queries.ok()) {
      state.SkipWithError(queries.status().ToString().c_str());
      return;
    }
    linearroad::LrConfig cfg;
    cfg.num_xways = xways;
    cfg.vehicles_per_xway = 500;
    cfg.accident_prob = 0.001;
    linearroad::LrDriver driver(&engine, cfg);
    // 12 simulated minutes: two full segment-statistics windows + slides.
    if (!driver.Run(12 * 60).ok()) {
      state.SkipWithError("driver failed");
      return;
    }
    state.counters["reports"] = static_cast<double>(driver.total_reports());
    state.counters["reports/s"] = benchmark::Counter(
        static_cast<double>(driver.total_reports()),
        benchmark::Counter::kIsRate);
    bench::ReportLatencyPercentiles(state, "tick", driver.tick_time_us());
    state.counters["segstats_rows"] =
        static_cast<double>(queries->segstats_sink->rows());
    state.counters["accident_rows"] =
        static_cast<double>(queries->accidents_sink->rows());
    state.counters["toll_rows"] =
        static_cast<double>(queries->tolls_sink->rows());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinearRoad)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace datacell

BENCHMARK_MAIN();
