// Experiment E1 (Fig. 1, §2.3): end-to-end throughput and per-batch latency
// of the receptor -> basket -> factory -> basket -> emitter pipeline, as a
// function of the ingest batch size. The paper's claim: batch (basket)
// processing keeps kernel overhead per tuple small, so throughput grows with
// batch size until the kernel is saturated.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace datacell {
namespace {

void BM_PipelineSelection(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x < 500000");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  auto batch_table = bench::IntBatchTable(batch);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(batch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["results"] = static_cast<double>(sink->rows());
}
BENCHMARK(BM_PipelineSelection)
    ->RangeMultiplier(4)
    ->Range(1, 1 << 16)
    ->Unit(benchmark::kMicrosecond);

/// The same pipeline entered through the textual receptor interface (CSV
/// parse + validation), measuring the adapter overhead of §2.1.
void BM_PipelineViaReceptor(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  Channel wire;
  if (!engine.AttachReceptor("r", &wire).ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x < 500000");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  std::vector<std::string> lines;
  for (const Row& r : bench::IntRows(batch)) {
    lines.push_back(r[0].ToString());
  }
  int64_t tuples = 0;
  for (auto _ : state) {
    wire.PushBatch(lines);
    engine.Drain();
    tuples += static_cast<int64_t>(batch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
}
BENCHMARK(BM_PipelineViaReceptor)
    ->RangeMultiplier(4)
    ->Range(16, 1 << 14)
    ->Unit(benchmark::kMicrosecond);

/// Per-tuple response time as a function of batch size: the query projects
/// the arrival ts through, and a LatencyTrackingSink measures delivery
/// minus arrival. Larger ingest batches raise throughput (above) at the
/// price of per-tuple latency — the batching trade-off E1 quantifies.
void BM_PipelineLatency(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      // The arrival ts must be aliased: a bare `ts` output column would
      // collide with the output basket's own implicit ts.
      "sel", "select x, ts as arrival from [select * from r] as s "
             "where s.x < 500000");
  if (!q.ok()) return;
  auto sink = std::make_shared<LatencyTrackingSink>(/*ts_column=*/1);
  if (!engine.Subscribe(*q, sink).ok()) return;
  auto rows = bench::IntRows(batch);
  int64_t tuples = 0;
  for (auto _ : state) {
    // Row-at-a-time ingest: each tuple gets its own arrival stamp, then the
    // batch is processed in one sweep once `batch` tuples accumulated.
    for (const Row& r : rows) {
      if (!engine.Ingest("r", r).ok()) return;
    }
    engine.Drain();
    tuples += static_cast<int64_t>(batch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  bench::ReportLatencyPercentiles(state, "lat", sink->latencies_us());
  // The engine-side view of the same distribution (emitter-observed,
  // log2-bucketed) — lets the JSON output cross-check sink vs engine.
  MetricsSnapshotData snap = engine.MetricsSnapshot();
  const HistogramSnapshot* e2e =
      snap.FindHistogram("datacell_query_e2e_latency_us", "sel");
  if (e2e != nullptr) {
    bench::ReportLatencyPercentiles(state, "engine_e2e", *e2e);
  }
}
BENCHMARK(BM_PipelineLatency)
    ->RangeMultiplier(8)
    ->Range(8, 1 << 15)
    ->Unit(benchmark::kMicrosecond);

/// Cascaded query network: results of query 1 feed query 2 (the paper's
/// network-of-queries, §4).
void BM_PipelineCascade(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  auto q1 = engine.SubmitContinuousQuery(
      "stage1", "select x * 2 as x2 from [select * from r] as s");
  auto q2 = engine.SubmitContinuousQuery(
      "stage2", "select x2 from [select * from stage1_out] as t "
                "where t.x2 < 1000000");
  if (!q1.ok() || !q2.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q2, sink).ok()) return;
  auto batch_table = bench::IntBatchTable(batch);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(batch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
}
BENCHMARK(BM_PipelineCascade)
    ->RangeMultiplier(4)
    ->Range(16, 1 << 14)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace datacell

DATACELL_BENCH_MAIN();
