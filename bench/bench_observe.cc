// Experiment E16 (docs/EXPERIMENTS.md): the cost of self-observation. The
// same selection pipeline as bench_pipeline's BM_PipelineSelection is run
// with the observability features switched on one at a time — the per-step
// profiler, the monitor receptor, and both together — so the deltas against
// the baseline variant are the features' steady-state overheads (budget:
// < 2% for monitor + profiler). The remaining benches price the monitor
// tick and an HTTP /metrics scrape in isolation.

#include <benchmark/benchmark.h>

#include <memory>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench/bench_util.h"
#include "net/observability.h"

namespace datacell {
namespace {

constexpr size_t kBatch = 4096;

/// The shared workload: one specialized selection query, columnar ingest of
/// kBatch tuples per iteration, deterministic drain.
void RunSelectionPipeline(benchmark::State& state, const EngineOptions& opts) {
  Engine engine(opts);
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x < 500000");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  auto batch_table = bench::IntBatchTable(kBatch);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(kBatch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
}

void BM_ObserveBaseline(benchmark::State& state) {
  RunSelectionPipeline(state, bench::BenchEngineOptions());
}
BENCHMARK(BM_ObserveBaseline)->Unit(benchmark::kMicrosecond);

void BM_ObserveProfiled(benchmark::State& state) {
  EngineOptions opts = bench::BenchEngineOptions();
  opts.profile_queries = true;
  RunSelectionPipeline(state, opts);
}
BENCHMARK(BM_ObserveProfiled)->Unit(benchmark::kMicrosecond);

void BM_ObserveMonitored(benchmark::State& state) {
  EngineOptions opts = bench::BenchEngineOptions();
  // 10 Hz — an aggressive production cadence (Prometheus default is 1/15s).
  opts.monitor_tick_us = 100'000;
  RunSelectionPipeline(state, opts);
}
BENCHMARK(BM_ObserveMonitored)->Unit(benchmark::kMicrosecond);

void BM_ObserveFull(benchmark::State& state) {
  EngineOptions opts = bench::BenchEngineOptions();
  opts.profile_queries = true;
  opts.monitor_tick_us = 100'000;
  RunSelectionPipeline(state, opts);
}
BENCHMARK(BM_ObserveFull)->Unit(benchmark::kMicrosecond);

/// One monitor tick in isolation: snapshot the registry, diff, deliver the
/// three telemetry batches. Simulated clock so every iteration is a tick.
void BM_MonitorTick(benchmark::State& state) {
  EngineOptions opts;
  opts.use_wall_clock = false;
  opts.monitor_tick_us = 1;
  Engine engine(opts);
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x < 500000");
  if (!q.ok()) return;
  int64_t ticks = 0;
  for (auto _ : state) {
    engine.simulated_clock()->Advance(2);
    engine.Drain();  // only the monitor is ready
    ++ticks;
  }
  state.SetItemsProcessed(ticks);
}
BENCHMARK(BM_MonitorTick)->Unit(benchmark::kMicrosecond);

/// A full HTTP /metrics scrape round-trip against a live engine: connect,
/// GET, render, read. Prices what a Prometheus scraper costs the engine.
void BM_HttpMetricsScrape(benchmark::State& state) {
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  ObservabilityServer server(&engine);
  if (!server.Start(0).ok()) return;
  for (auto _ : state) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      return;
    }
    const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
    (void)!::send(fd, req, sizeof(req) - 1, 0);
    char buf[4096];
    while (::recv(fd, buf, sizeof(buf), 0) > 0) {
    }
    ::close(fd);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HttpMetricsScrape)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace datacell

DATACELL_BENCH_MAIN();
