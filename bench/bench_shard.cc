// Experiment E17: sharded multi-engine scale-out. Measures the ShardedEngine
// frontend against a plain single engine on the three placement shapes the
// partition analyzer produces:
//
//   1. partitionable filter:   hash-routed ingest, per-shard execution,
//      concatenated egress (the no-merge fast path).
//   2. partitionable group-by: group key == declared partition key, so the
//      per-shard aggregates are already the global answer.
//   3. needs-final-merge avg:  per-shard partial (sum, count) plans plus the
//      frontend MergeEmitter re-division.
//   4. router overhead:        hash-split columnar ingest alone (no query),
//      isolating the AppendPositions gather + scratch recycling cost.
//
// All benches are drain-driven (deterministic stepped scheduling), so what
// is measured is total work per tuple, not thread parallelism: on a 1-core
// host N shards do the same work as one engine plus routing overhead, and
// the sharded/single ratio reads as pure frontend tax. Wall-clock scale-out
// (the >= 1.8x at 2 shards / >= 3x at 4 shards acceptance) additionally
// needs Start(threads_per_shard) on a host with >= N cores — see
// EXPERIMENTS.md E17 for that protocol.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "core/shard.h"

namespace datacell {
namespace {

constexpr size_t kBatch = 1 << 12;

ShardedEngineOptions ShardOptions(size_t shards) {
  ShardedEngineOptions opts;
  opts.num_shards = shards;
  opts.engine = bench::BenchEngineOptions();
  return opts;
}

// --- 1. partitionable filter ----------------------------------------------

void BM_SingleEngineFilter(benchmark::State& state) {
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket s (k int, v int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "hot", "select k, v from [select * from s] as t where t.v > 500000");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  auto rows = bench::GroupedRows(kBatch, /*groups=*/64);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestBatch("s", rows).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(kBatch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["results"] = static_cast<double>(sink->rows());
}
BENCHMARK(BM_SingleEngineFilter)->Unit(benchmark::kMicrosecond);

void BM_ShardedFilter(benchmark::State& state) {
  size_t shards = static_cast<size_t>(state.range(0));
  ShardedEngine engine(ShardOptions(shards));
  Schema schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
  if (!engine.CreateStream("s", schema, /*partition_key=*/"k").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "hot", "select k, v from [select * from s] as t where t.v > 500000");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  auto rows = bench::GroupedRows(kBatch, /*groups=*/64);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestBatch("s", rows).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(kBatch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["results"] = static_cast<double>(sink->rows());
  state.counters["routed"] = static_cast<double>(engine.routed_tuples());
}
BENCHMARK(BM_ShardedFilter)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

// --- 2. partitionable group-by ---------------------------------------------

void BM_SingleEngineGroupBy(benchmark::State& state) {
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket s (k int, v int)").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "agg", "select k, sum(v) as total from [select * from s] as t "
             "group by k");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  auto rows = bench::GroupedRows(kBatch, /*groups=*/64);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestBatch("s", rows).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(kBatch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["results"] = static_cast<double>(sink->rows());
}
BENCHMARK(BM_SingleEngineGroupBy)->Unit(benchmark::kMicrosecond);

void BM_ShardedGroupBy(benchmark::State& state) {
  size_t shards = static_cast<size_t>(state.range(0));
  ShardedEngine engine(ShardOptions(shards));
  Schema schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
  if (!engine.CreateStream("s", schema, /*partition_key=*/"k").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "agg", "select k, sum(v) as total from [select * from s] as t "
             "group by k");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  auto rows = bench::GroupedRows(kBatch, /*groups=*/64);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestBatch("s", rows).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(kBatch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["results"] = static_cast<double>(sink->rows());
}
BENCHMARK(BM_ShardedGroupBy)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

// --- 3. needs-final-merge avg ------------------------------------------------

void BM_ShardedMergeAvg(benchmark::State& state) {
  size_t shards = static_cast<size_t>(state.range(0));
  ShardedEngine engine(ShardOptions(shards));
  Schema schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
  if (!engine.CreateStream("s", schema, /*partition_key=*/"k").ok()) return;
  auto q = engine.SubmitContinuousQuery(
      "mean", "select avg(v) as m from [select * from s] as t");
  if (!q.ok()) return;
  auto sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*q, sink).ok()) return;
  auto rows = bench::GroupedRows(kBatch, /*groups=*/64);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestBatch("s", rows).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(kBatch);
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["results"] = static_cast<double>(sink->rows());
}
BENCHMARK(BM_ShardedMergeAvg)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

// --- 4. router overhead: hash-split columnar ingest -------------------------

void BM_ShardRouterColumnarSplit(benchmark::State& state) {
  size_t shards = static_cast<size_t>(state.range(0));
  ShardedEngine engine(ShardOptions(shards));
  Schema schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
  if (!engine.CreateStream("s", schema, /*partition_key=*/"k").ok()) return;
  // Pre-generate raw values; the hot loop refills one persistent batch whose
  // buffers recycle through the shard baskets' swap protocol.
  std::vector<int64_t> ks, vs;
  ks.reserve(kBatch);
  vs.reserve(kBatch);
  for (const Row& r : bench::GroupedRows(kBatch, /*groups=*/64)) {
    ks.push_back(r[0].int64_value());
    vs.push_back(r[1].int64_value());
  }
  ColumnBatch cb(schema);
  int64_t tuples = 0;
  for (auto _ : state) {
    cb.Clear();
    for (int64_t k : ks) cb.column(0).AppendInt64(k);
    for (int64_t v : vs) cb.column(1).AppendInt64(v);
    if (!engine.IngestColumns("s", std::move(cb)).ok()) return;
    tuples += static_cast<int64_t>(kBatch);
    // Keep the shard baskets bounded (and the recycling loop realistic).
    engine.Drain();
  }
  bench::ReportTuplesPerSecond(state, tuples);
  state.counters["routed"] = static_cast<double>(engine.routed_tuples());
}
BENCHMARK(BM_ShardRouterColumnarSplit)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace datacell

DATACELL_BENCH_MAIN();
