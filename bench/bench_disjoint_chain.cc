// Experiment E4 (§2.5): queries over disjoint ranges of the same attribute.
// The chained strategy lets q1 remove its qualifying tuples before q2 reads,
// so each later query scans a shrinking basket; with shared baskets every
// query scans everything. The paper's claim: "q2 has to process less tuples
// by avoiding seeing tuples that are already known not to qualify" — the
// advantage should grow with the number of disjoint queries.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace datacell {
namespace {

/// Submits `n` queries, query i selecting the i-th slice of the value
/// domain [0, 1e6); the slices are disjoint and together cover everything.
void RunDisjointBench(benchmark::State& state, ProcessingStrategy strategy) {
  int num_queries = static_cast<int>(state.range(0));
  constexpr size_t kBatch = 8192;
  constexpr int64_t kDomain = 1000000;
  Engine engine(bench::BenchEngineOptions());
  if (!engine.ExecuteSql("create basket r (x int)").ok()) return;
  QueryOptions opts;
  opts.strategy = strategy;
  int64_t slice = kDomain / num_queries;
  int64_t total_results = 0;
  std::vector<std::shared_ptr<CountingSink>> sinks;
  for (int i = 0; i < num_queries; ++i) {
    int64_t lo = i * slice;
    int64_t hi = (i == num_queries - 1) ? kDomain : (i + 1) * slice;
    auto q = engine.SubmitContinuousQuery(
        "q" + std::to_string(i),
        "select x from [select * from r where r.x >= " + std::to_string(lo) +
            " and r.x < " + std::to_string(hi) + "] as s",
        opts);
    if (!q.ok()) {
      state.SkipWithError(q.status().ToString().c_str());
      return;
    }
    auto sink = std::make_shared<CountingSink>();
    if (!engine.Subscribe(*q, sink).ok()) return;
    sinks.push_back(std::move(sink));
  }
  auto batch_table = bench::IntBatchTable(kBatch);
  int64_t tuples = 0;
  for (auto _ : state) {
    if (!engine.IngestTable("r", *batch_table).ok()) return;
    engine.Drain();
    tuples += static_cast<int64_t>(kBatch);
  }
  for (const auto& sink : sinks) total_results += sink->rows();
  bench::ReportTuplesPerSecond(state, tuples);
  // Sanity: disjoint ranges cover the domain, so every tuple appears once.
  state.counters["results"] = static_cast<double>(total_results);
}

void BM_DisjointShared(benchmark::State& state) {
  RunDisjointBench(state, ProcessingStrategy::kSharedBaskets);
}
BENCHMARK(BM_DisjointShared)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMicrosecond);

void BM_DisjointChained(benchmark::State& state) {
  RunDisjointBench(state, ProcessingStrategy::kChained);
}
BENCHMARK(BM_DisjointChained)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMicrosecond);

void BM_DisjointSeparate(benchmark::State& state) {
  RunDisjointBench(state, ProcessingStrategy::kSeparateBaskets);
}
BENCHMARK(BM_DisjointSeparate)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace datacell

BENCHMARK_MAIN();
