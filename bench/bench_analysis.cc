// Pass-3 partition analysis runs once per SubmitContinuousQuery and again on
// every Engine::Analyze() / metrics refresh, so it sits on the registration
// and observability paths. These benchmarks keep its cost visible: the
// dataflow pass itself over representative plan shapes, the full
// registration path with the pass included, and the split-merge oracle the
// test suite leans on (not a production path, but its cost bounds how much
// fuzzing budget each input burns).

#include <benchmark/benchmark.h>

#include "analysis/partition_analyzer.h"
#include "bench/bench_util.h"

namespace datacell {
namespace {

void SetUpCatalog(Engine& engine) {
  Status s = engine
                 .ExecuteScript(
                     "create basket trades (sym varchar, price double, "
                     "qty int) partition by sym;"
                     "create basket quotes (sym varchar, bid double) "
                     "partition by sym;"
                     "create table dims (sym varchar, sector varchar);")
                 .status();
  if (!s.ok()) std::abort();
}

const char* QueryForShape(const std::string& shape) {
  if (shape == "filter") {
    return "select sym, price from [select * from trades] as t "
           "where t.price > 10.0";
  }
  if (shape == "group_by_key") {
    return "select sym, sum(qty) as total from [select * from trades] as t "
           "group by sym";
  }
  if (shape == "join_agg") {
    return "select q.bid, sum(t.qty) as vol from [select * from trades] as t "
           "join [select * from quotes] as q on t.sym = q.sym group by q.bid";
  }
  return "select avg(price) as mean from [select * from trades] as t";
}

// The pass alone: registration already compiled and attached the report, so
// re-running AnalyzePartitioning on the stored CompiledQuery isolates the
// dataflow walk plus merge-plan synthesis from parse/bind/plan cost.
void BM_AnalyzePartitioning(benchmark::State& state, const char* shape) {
  Engine engine(bench::BenchEngineOptions());
  SetUpCatalog(engine);
  auto q = engine.SubmitContinuousQuery("bm", QueryForShape(shape));
  if (!q.ok()) std::abort();
  auto info = engine.GetQuery(*q);
  if (!info.ok()) std::abort();
  const sql::CompiledQuery& cq = (*info)->factory->query();
  analysis::PartitionKeyMap keys = engine.DeclaredPartitionKeys();
  for (auto _ : state) {
    analysis::AnalysisReport diags;
    auto rep = analysis::AnalyzePartitioning(cq, keys, &diags);
    benchmark::DoNotOptimize(rep);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_AnalyzePartitioning, filter, "filter");
BENCHMARK_CAPTURE(BM_AnalyzePartitioning, group_by_key, "group_by_key");
BENCHMARK_CAPTURE(BM_AnalyzePartitioning, join_agg, "join_agg");
BENCHMARK_CAPTURE(BM_AnalyzePartitioning, scalar_avg, "scalar_avg");

// The whole registration path (parse, bind, plan, passes 1+3, net wiring),
// measured as submit+remove pairs.
void BM_SubmitWithPartitionPass(benchmark::State& state) {
  Engine engine(bench::BenchEngineOptions());
  SetUpCatalog(engine);
  size_t i = 0;
  for (auto _ : state) {
    auto q = engine.SubmitContinuousQuery("bm" + std::to_string(i++),
                                          QueryForShape("join_agg"));
    if (!q.ok()) std::abort();
    if (!engine.RemoveContinuousQuery(*q).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubmitWithPartitionPass);

// Pass 4 alone: the state-bound walk over the same stored plan shapes —
// the per-query cost SubmitContinuousQuery and Analyze() each pay.
void BM_AnalyzeStateBounds(benchmark::State& state, const char* shape) {
  Engine engine(bench::BenchEngineOptions());
  SetUpCatalog(engine);
  auto q = engine.SubmitContinuousQuery("bm", QueryForShape(shape));
  if (!q.ok()) std::abort();
  auto info = engine.GetQuery(*q);
  if (!info.ok()) std::abort();
  const sql::CompiledQuery& cq = (*info)->factory->query();
  analysis::CardinalityMap hints = engine.DeclaredCardinalities();
  analysis::StateAnalyzerOptions sopts;
  for (auto _ : state) {
    analysis::AnalysisReport diags;
    auto rep = analysis::AnalyzeStateBounds(cq, hints, sopts, &diags);
    benchmark::DoNotOptimize(rep);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_AnalyzeStateBounds, filter, "filter");
BENCHMARK_CAPTURE(BM_AnalyzeStateBounds, group_by_key, "group_by_key");
BENCHMARK_CAPTURE(BM_AnalyzeStateBounds, join_agg, "join_agg");
BENCHMARK_CAPTURE(BM_AnalyzeStateBounds, scalar_avg, "scalar_avg");

// The soundness oracle over `rows` input tuples across 3 shards.
void BM_SplitMergeOracle(benchmark::State& state) {
  Engine engine(bench::BenchEngineOptions());
  SetUpCatalog(engine);
  auto q = engine.SubmitContinuousQuery("bm", QueryForShape("group_by_key"));
  if (!q.ok()) std::abort();
  auto info = engine.GetQuery(*q);
  if (!info.ok()) std::abort();
  const sql::CompiledQuery& cq = (*info)->factory->query();
  auto table = std::make_shared<Table>("in", cq.inputs[0].basket_schema);
  const int64_t rows = state.range(0);
  for (int64_t i = 0; i < rows; ++i) {
    Status s = table->AppendRow({Value::String("s" + std::to_string(i % 64)),
                                 Value::Double(0.25 * static_cast<double>(i)),
                                 Value::Int64(i % 7), Value::TimestampVal(i)});
    if (!s.ok()) std::abort();
  }
  for (auto _ : state) {
    auto res = analysis::CheckSplitMergeEquivalence(
        cq, *(*info)->partition, {table}, {}, 3);
    if (!res.ok() || !res->equivalent) std::abort();
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_SplitMergeOracle)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace datacell

BENCHMARK_MAIN();
