// Fuzz harness for the receptor ingest path: CSV line splitting and typed
// row parsing (adapters/csv.{h,cc}). This is the engine's primary untrusted
// input surface — every byte a receptor reads off a channel goes through
// ParseCsvRow before touching a basket.
//
// Built two ways (see fuzz/CMakeLists.txt):
//   - with clang: a real libFuzzer target (-fsanitize=fuzzer,address)
//   - elsewhere: linked against the standalone replay/mutation driver, so
//     the same harness still runs as a ctest smoke on a gcc-only box.
//
// The harness asserts parser *contracts*, not just absence-of-crash: a
// successful parse yields exactly one value per schema field, with each
// value either null or of the schema's type; a failed parse yields a
// ParseError status, never any other kind.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "adapters/csv.h"
#include "storage/table.h"

namespace {

using datacell::DataType;
using datacell::Row;
using datacell::Schema;
using datacell::Value;

const Schema& MixedSchema() {
  static const Schema* s = new Schema({{"i", DataType::kInt64},
                                       {"f", DataType::kDouble},
                                       {"b", DataType::kBool},
                                       {"s", DataType::kString}});
  return *s;
}

const Schema& StringsSchema() {
  static const Schema* s =
      new Schema({{"a", DataType::kString}, {"b", DataType::kString}});
  return *s;
}

void Check(bool cond, const char* what) {
  if (cond) return;
  std::fprintf(stderr, "fuzz_csv contract violated: %s\n", what);
  std::abort();
}

void ExerciseSchema(std::string_view line, const Schema& schema) {
  datacell::Result<Row> parsed = datacell::ParseCsvRow(line, schema);
  if (!parsed.ok()) {
    Check(parsed.status().code() == datacell::StatusCode::kParseError,
          "rejection must be a ParseError");
    return;
  }
  Check(parsed->size() == schema.num_fields(),
        "accepted row arity must match schema");
  for (size_t i = 0; i < parsed->size(); ++i) {
    const Value& v = (*parsed)[i];
    if (v.is_null()) continue;
    switch (schema.field(i).type) {
      case DataType::kInt64:
        Check(v.is_int64(), "int field holds non-int");
        break;
      case DataType::kDouble:
        Check(v.is_double(), "float field holds non-float");
        break;
      case DataType::kBool:
        Check(v.is_bool(), "bool field holds non-bool");
        break;
      case DataType::kString:
        Check(v.is_string(), "string field holds non-string");
        break;
      default:
        break;
    }
  }
  // Round-trip: a row we accepted must re-format and re-parse to the same
  // arity (formatting quotes whatever needs quoting).
  std::string formatted = datacell::FormatCsvRow(*parsed);
  datacell::Result<Row> again = datacell::ParseCsvRow(formatted, schema);
  Check(again.ok(), "formatted accepted row must re-parse");
  Check(again->size() == parsed->size(), "round-trip changed arity");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  // Each input is treated as a batch of lines, as a receptor would see it.
  while (!input.empty()) {
    size_t nl = input.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? input : input.substr(0, nl);
    ExerciseSchema(line, MixedSchema());
    ExerciseSchema(line, StringsSchema());
    if (nl == std::string_view::npos) break;
    input.remove_prefix(nl + 1);
  }
  return 0;
}
