// Minimal libFuzzer-compatible driver for toolchains without libFuzzer
// (e.g. gcc-only boxes): links against any harness exporting
// LLVMFuzzerTestOneInput and provides
//
//   1. corpus replay  — every file/directory argument is fed to the harness
//      once (also how a crasher reproduces: `fuzz_csv crash-1234`), and
//   2. a deterministic mutation loop — seeded LCG, byte flips / inserts /
//      erases / truncations / cross-splices over the corpus, `-runs=N`
//      iterations (default 20000).
//
// No wall-clock, no entropy: the same binary + corpus + flags always
// exercises the same inputs, which is what a ctest smoke needs. Real
// coverage-guided runs should use the clang/libFuzzer build of the same
// harness; the flags accepted here are a subset of libFuzzer's so corpus
// directories and crash files are interchangeable between the two.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::vector<std::string> ReadSeed(const std::filesystem::path& p) {
  std::vector<std::string> out;
  std::error_code ec;
  if (std::filesystem::is_directory(p, ec)) {
    // Deterministic order: directory iteration order is unspecified.
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(p, ec)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& f : files) {
      auto sub = ReadSeed(f);
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "standalone_driver: cannot read %s\n",
                 p.string().c_str());
    return out;
  }
  out.emplace_back(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  return out;
}

/// Deterministic 64-bit LCG (Knuth MMIX constants).
struct Lcg {
  uint64_t state;
  uint64_t Next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 17;
  }
};

void Mutate(std::string* buf, const std::vector<std::string>& corpus,
            Lcg* rng, size_t max_len) {
  switch (rng->Next() % 5) {
    case 0: {  // flip a byte
      if (buf->empty()) break;
      (*buf)[rng->Next() % buf->size()] =
          static_cast<char>(rng->Next() & 0xff);
      break;
    }
    case 1: {  // insert a byte
      size_t pos = buf->empty() ? 0 : rng->Next() % (buf->size() + 1);
      buf->insert(buf->begin() + static_cast<ptrdiff_t>(pos),
                  static_cast<char>(rng->Next() & 0xff));
      break;
    }
    case 2: {  // erase a span
      if (buf->empty()) break;
      size_t pos = rng->Next() % buf->size();
      size_t len = 1 + rng->Next() % 8;
      buf->erase(pos, len);
      break;
    }
    case 3: {  // truncate
      if (buf->empty()) break;
      buf->resize(rng->Next() % buf->size());
      break;
    }
    case 4: {  // splice a random corpus slice in
      if (corpus.empty()) break;
      const std::string& donor = corpus[rng->Next() % corpus.size()];
      if (donor.empty()) break;
      size_t from = rng->Next() % donor.size();
      size_t len = 1 + rng->Next() % (donor.size() - from);
      size_t pos = buf->empty() ? 0 : rng->Next() % (buf->size() + 1);
      buf->insert(pos, donor, from, len);
      break;
    }
  }
  if (buf->size() > max_len) buf->resize(max_len);
}

}  // namespace

int main(int argc, char** argv) {
  long long runs = 20000;
  size_t max_len = 4096;
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
  std::vector<std::string> corpus;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "-runs=", 6) == 0) {
      runs = std::atoll(arg + 6);
    } else if (std::strncmp(arg, "-max_len=", 9) == 0) {
      max_len = static_cast<size_t>(std::atoll(arg + 9));
    } else if (std::strncmp(arg, "-seed=", 6) == 0) {
      seed = static_cast<uint64_t>(std::atoll(arg + 6));
    } else if (arg[0] == '-') {
      // Ignore unknown libFuzzer-style flags so ctest invocations written
      // for the clang build also work here.
      std::fprintf(stderr, "standalone_driver: ignoring flag %s\n", arg);
    } else {
      auto seeds = ReadSeed(arg);
      corpus.insert(corpus.end(), seeds.begin(), seeds.end());
    }
  }

  std::fprintf(stderr, "standalone_driver: %zu seed inputs, %lld runs\n",
               corpus.size(), runs);
  for (const std::string& input : corpus) {
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                           input.size());
  }

  Lcg rng{seed};
  std::string buf;
  for (long long i = 0; i < runs; ++i) {
    if (corpus.empty()) {
      buf.clear();
    } else if (i % 4 == 0 || buf.size() > max_len) {
      // Restart from a seed regularly so mutations stay near valid inputs.
      buf = corpus[rng.Next() % corpus.size()];
    }
    Mutate(&buf, corpus, &rng, max_len);
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(buf.data()),
                           buf.size());
  }
  std::fprintf(stderr, "standalone_driver: done (%lld runs)\n", runs);
  return 0;
}
