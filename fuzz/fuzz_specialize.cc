// Fuzz harness for the plan specializer's equivalence contract: whatever
// query shape the registration-time specializer claims, running it through
// the specialized pipeline must deliver byte-identical results to the tuple
// interpreter. Each input is one SQL statement compiled against the same
// fixed catalog as fuzz_analyzer (the corpora are shared); accepted
// continuous queries are registered in two engines — specialization on and
// off — fed identical rows under lockstep simulated clocks, and the
// delivered rows are compared value-for-value. Any divergence aborts.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "adapters/sink.h"
#include "core/engine.h"
#include "sql/parser.h"

namespace {

using namespace datacell;

[[noreturn]] void Die(const std::string& what, const std::string& input) {
  std::fprintf(stderr, "fuzz_specialize contract violated: %s\n  query: %s\n",
               what.c_str(), input.c_str());
  std::abort();
}

bool SameValue(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_double() && b.is_double()) {
    double x = a.double_value();
    double y = b.double_value();
    if (std::isnan(x) || std::isnan(y)) return std::isnan(x) && std::isnan(y);
    return x == y;  // bitwise-exact: corpus values are 0.25 multiples
  }
  return a == b;
}

std::unique_ptr<Engine> MakeEngine(bool specialize) {
  EngineOptions opts;
  opts.use_wall_clock = false;
  opts.specialize_plans = specialize;
  auto engine = std::make_unique<Engine>(opts);
  if (!engine->ExecuteSql("create basket s (x int, y double, name varchar)")
           .ok() ||
      !engine->ExecuteSql("create table t (k int, v double, label varchar)")
           .ok() ||
      !engine->ExecuteSql("insert into t values (1, 0.5, 'a'), (2, 1.5, 'b')")
           .ok()) {
    std::abort();  // fixed-catalog setup can never fail
  }
  return engine;
}

void ExerciseStatement(const std::string& input) {
  auto parsed = sql::ParseStatement(input);
  if (!parsed.ok() || parsed->kind != sql::Statement::Kind::kSelect) return;

  std::unique_ptr<Engine> spec = MakeEngine(true);
  std::unique_ptr<Engine> interp = MakeEngine(false);

  auto q1 = spec->SubmitContinuousQuery("fz", input);
  auto q2 = interp->SubmitContinuousQuery("fz", input);
  if (q1.ok() != q2.ok()) {
    // Registration must not depend on the execution backend.
    Die("one engine accepted the query, the other rejected it", input);
  }
  if (!q1.ok()) return;

  auto sink1 = std::make_shared<CollectingSink>();
  auto sink2 = std::make_shared<CollectingSink>();
  if (!spec->Subscribe(*q1, sink1).ok() ||
      !interp->Subscribe(*q2, sink2).ok()) {
    return;
  }

  for (int i = 0; i < 12; ++i) {
    Row row = {i % 5 == 4 ? Value::Null() : Value::Int64(i),
               i % 7 == 6 ? Value::Null() : Value::Double(i * 0.25),
               Value::String(i % 2 == 0 ? "even" : "odd")};
    (void)spec->Ingest("s", row);
    (void)interp->Ingest("s", row);
    spec->simulated_clock()->Advance(1000);
    interp->simulated_clock()->Advance(1000);
    if (i % 5 == 0) {
      spec->Drain();
      interp->Drain();
    }
  }
  spec->Drain();
  interp->Drain();

  std::vector<Row> got = sink1->TakeRows();
  std::vector<Row> want = sink2->TakeRows();
  if (got.size() != want.size()) {
    Die("specialized delivered " + std::to_string(got.size()) +
            " rows, interpreter " + std::to_string(want.size()),
        input);
  }
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].size() != want[i].size()) {
      Die("row " + std::to_string(i) + " arity mismatch", input);
    }
    for (size_t c = 0; c < got[i].size(); ++c) {
      if (!SameValue(got[i][c], want[i][c])) {
        Die("row " + std::to_string(i) + " column " + std::to_string(c) +
                ": specialized " + got[i][c].ToString() + " vs interpreted " +
                want[i][c].ToString(),
            input);
      }
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Two engines per input: keep statements short so the smoke's bounded-run
  // budget is spent on plan shapes, not parse churn.
  constexpr size_t kMaxLen = 4096;
  if (size > kMaxLen) size = kMaxLen;
  ExerciseStatement(std::string(reinterpret_cast<const char*>(data), size));
  return 0;
}
