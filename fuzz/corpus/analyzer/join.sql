select p.x, t.v from [select * from s] as p, t where p.x = t.k
