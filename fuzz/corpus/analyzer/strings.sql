select upper(name), length(name) from [select * from s] as p where p.name like 'e%'
