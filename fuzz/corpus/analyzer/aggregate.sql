select x, sum(y) as total, count(*) as n from [select * from s] as p group by x having count(*) > 1
