select x, y from [select * from s] as p where p.x > 3 and p.y < 1.5
