select x + name from [select * from s] as p where not p.y
