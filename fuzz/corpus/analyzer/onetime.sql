select k, v * 2.0, case when v > 1.0 then label else 'low' end from t where k between 1 and 5
