select * from a join b on a.x = b.y join c on c.z = a.x
