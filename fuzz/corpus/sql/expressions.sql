select * from t where not a is null and (a + -1) * 2 = -4 or b between 1 and 9 and c in (1, 2, 3)
