select count(*) from [select * from r] as s window range 30 seconds slide 5 seconds threshold 2
