create basket r (x int, price float, name varchar);
insert into r values (1, 2.5, 'a'), (2, 3.5, 'b');
drop basket r;
