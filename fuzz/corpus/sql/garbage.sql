select @ ((([[ ' unterminated
