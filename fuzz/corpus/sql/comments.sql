select -- a comment
 x from t
