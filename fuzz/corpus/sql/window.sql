select avg(a) from [select * from r] as s window size 100 slide 10
