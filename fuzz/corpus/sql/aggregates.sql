select k, count(*), sum(a), min(a + b), avg(c) from t where v > 0 group by k having sum(a) > 2 order by k desc limit 10 offset 2
