select a, b from t where a >= 10;
