select * from [select * from r where r.b < 5] as s where s.a > 1
