// Fuzz harness for the SQL/expression parser (sql/parser.h): statements and
// scripts arrive from users and channels as untrusted text. The parser must
// either produce a statement or a ParseError — never crash, hang, or return
// a malformed AST.
//
// Contract checks on success: the statement renders back to text
// (AstExpr/statement ToString paths exercise the printer on every shape the
// parser can emit), and a rendered SELECT re-parses.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "sql/ast.h"
#include "sql/parser.h"

namespace {

void Check(bool cond, const char* what) {
  if (cond) return;
  std::fprintf(stderr, "fuzz_sql contract violated: %s\n", what);
  std::abort();
}

void ExerciseStatement(std::string_view input) {
  datacell::Result<datacell::sql::Statement> stmt =
      datacell::sql::ParseStatement(input);
  if (!stmt.ok()) {
    Check(stmt.status().code() == datacell::StatusCode::kParseError,
          "rejection must be a ParseError");
    return;
  }
  if (stmt->select != nullptr) {
    // The expression printer must handle every AST shape the parser can
    // build — walk all expressions the statement carries.
    const datacell::sql::SelectStmt& sel = *stmt->select;
    for (const auto& item : sel.items) {
      if (item.expr != nullptr) {
        Check(!item.expr->ToString().empty(), "select item renders empty");
      }
    }
    if (sel.where != nullptr) {
      Check(!sel.where->ToString().empty(), "where renders empty");
    }
    for (const auto& g : sel.group_by) {
      Check(!g->ToString().empty(), "group-by renders empty");
    }
    if (sel.having != nullptr) {
      Check(!sel.having->ToString().empty(), "having renders empty");
    }
    (void)sel.IsContinuous();  // recursive classification must terminate
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Cap pathological inputs: parsing is recursive-descent and the driver may
  // feed multi-megabyte blobs; parse time must stay bounded for the smoke.
  constexpr size_t kMaxLen = 1 << 16;
  if (size > kMaxLen) size = kMaxLen;
  std::string_view input(reinterpret_cast<const char*>(data), size);
  ExerciseStatement(input);
  // The script splitter has its own statement-boundary logic worth covering.
  auto script = datacell::sql::ParseScript(input);
  if (!script.ok()) {
    Check(script.status().code() == datacell::StatusCode::kParseError,
          "script rejection must be a ParseError");
  }
  return 0;
}
