// Fuzz harness for the static analyzer's soundness contract: if the
// registration-time analyzer accepts a plan, the interpreter must never
// fail with a TypeError when that plan runs. (The reverse — analyzer
// strictly rejecting what execution would reject — is checked by the unit
// suite; this harness hunts for *acceptance* bugs, which silently re-open
// the fire-time error class the analyzer exists to close.)
//
// Each input is one SQL statement compiled against a fixed catalog holding
// every column type. Accepted continuous queries are registered, fed rows
// and drained; accepted one-time SELECTs are executed. Any TypeError after
// acceptance aborts.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "analysis/partition_analyzer.h"
#include "analysis/plan_analyzer.h"
#include "core/engine.h"
#include "core/state_oracle.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace {

using namespace datacell;

void Check(bool cond, const char* what, const Status& st) {
  if (cond) return;
  std::fprintf(stderr, "fuzz_analyzer contract violated: %s: %s\n", what,
               st.ToString().c_str());
  std::abort();
}

// Synthesizes a deterministic value of type `t` for row `i`; small value
// domains force hash collisions and duplicate groups, the shapes partition
// verdicts are most likely to get wrong.
Value SynthValue(DataType t, int i) {
  switch (t) {
    case DataType::kInt64:
      return Value::Int64(i % 5 - 2);
    case DataType::kDouble:
      return Value::Double(0.5 * (i % 7) - 1.0);
    case DataType::kString:
      return Value::String(std::string("v") + char('a' + i % 3));
    case DataType::kTimestamp:
      return Value::TimestampVal(i);
    case DataType::kBool:
      return Value::Bool(i % 2 == 0);
  }
  return Value::Null();
}

// Second contract: every non-pinned partition verdict must survive the
// split-merge oracle. An accepted query whose sharded execution diverges
// from single-node execution is an unsound verdict — abort.
void CheckPartitionSoundness(Engine& engine, QueryId id) {
  auto info = engine.GetQuery(id);
  if (!info.ok() || (*info)->partition == nullptr) return;
  const analysis::PartitionReport& rep = *(*info)->partition;
  if (rep.verdict == analysis::PartitionVerdict::kPinned) return;

  const sql::CompiledQuery& cq = (*info)->factory->query();
  std::vector<TablePtr> inputs;
  for (const sql::ContinuousInput& ci : cq.inputs) {
    auto t = std::make_shared<Table>("fz_in", ci.basket_schema);
    for (int i = 0; i < 24; ++i) {
      Row row;
      for (size_t c = 0; c < ci.basket_schema.num_fields(); ++c) {
        row.push_back(SynthValue(ci.basket_schema.field(c).type, i + (int)c));
      }
      if (!t->AppendRow(row).ok()) return;
    }
    inputs.push_back(std::move(t));
  }
  // The fixed catalog's one static relation, for plans that join it.
  auto statics_t = std::make_shared<Table>(
      "t", Schema({{"k", DataType::kInt64},
                   {"v", DataType::kDouble},
                   {"label", DataType::kString}}));
  (void)statics_t->AppendRow(
      {Value::Int64(1), Value::Double(0.5), Value::String("a")});
  (void)statics_t->AppendRow(
      {Value::Int64(2), Value::Double(1.5), Value::String("b")});
  PlanBindings statics;
  statics["t"] = statics_t;

  auto res = analysis::CheckSplitMergeEquivalence(cq, rep, inputs, statics, 3);
  if (!res.ok()) return;  // oracle could not replay the plan: not a verdict bug
  Check(res->equivalent, "partition verdict is unsound (split-merge diverges)",
        Status::Internal(res->detail));
}

void ExerciseStatement(const std::string& input) {
  auto parsed = sql::ParseStatement(input);
  if (!parsed.ok() || parsed->kind != sql::Statement::Kind::kSelect) return;

  EngineOptions opts;
  opts.use_wall_clock = false;
  Engine engine(opts);
  if (!engine.ExecuteSql(
                 "create basket s (x int, y double, name varchar) "
                 "partition by x")
           .ok() ||
      !engine.ExecuteSql("create table t (k int, v double, label varchar)")
           .ok() ||
      !engine.ExecuteSql("insert into t values (1, 0.5, 'a'), (2, 1.5, 'b')")
           .ok()) {
    std::abort();  // fixed-catalog setup can never fail
  }

  sql::Planner planner(&engine.catalog());
  auto compiled = planner.CompileSelect(*parsed->select);
  if (!compiled.ok()) return;  // binder rejected: nothing to cross-check

  analysis::AnalysisReport report = analysis::AnalyzePlan(*compiled->plan);
  if (report.num_errors() > 0) return;  // analyzer rejected: in-contract

  if (!compiled->continuous) {
    // One-time SELECT: the analyzer blessed the plan, so evaluation over
    // the static tables must not trip a type check.
    auto r = engine.ExecuteSql(input);
    if (!r.ok()) {
      Check(!r.status().IsTypeError(),
            "analyzer accepted a one-time plan the interpreter type-rejects",
            r.status());
    }
    return;
  }

  // Continuous query: registration re-runs the analyzer (plus net wiring
  // checks that may legitimately fail, e.g. name clashes) — but if it
  // sticks, firing over well-typed rows must not produce a TypeError.
  auto q = engine.SubmitContinuousQuery("fz", input);
  if (!q.ok()) return;
  CheckPartitionSoundness(engine, *q);
  // Third contract: the pass-4 static state bound must dominate the state
  // the factory actually accumulates. A measured high-water mark above a
  // numeric bound is an unsound bound — abort. (The oracle ingests into the
  // query's input streams; the well-typed ingest loop below adds more rows
  // on top, which only tightens the check.)
  {
    StateOracleOptions oopts;
    oopts.rows = 64;
    oopts.batch = 16;
    auto res = CheckStateBound(engine, *q, oopts);
    if (res.ok()) {
      Check(res->sound, "state bound is unsound (measured exceeds bound)",
            Status::Internal(res->detail));
    }
  }
  for (int i = 0; i < 8; ++i) {
    Status st = engine.Ingest(
        "s", {Value::Int64(i), Value::Double(i * 0.25),
              Value::String(i % 2 == 0 ? "even" : "odd")});
    Check(!st.IsTypeError(), "well-typed ingest rejected", st);
  }
  engine.Drain();
  Status fire = engine.scheduler().last_error();
  Check(!fire.IsTypeError(),
        "analyzer accepted a plan the interpreter type-rejects at fire time",
        fire);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Each input spins up an engine; keep statements short so the smoke's
  // bounded-run budget is spent on plan shapes, not parse churn.
  constexpr size_t kMaxLen = 4096;
  if (size > kMaxLen) size = kMaxLen;
  ExerciseStatement(std::string(reinterpret_cast<const char*>(data), size));
  return 0;
}
