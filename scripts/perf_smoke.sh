#!/usr/bin/env bash
# Release-mode performance smoke: builds the datapath benchmarks, runs them
# with --json, and compares per-benchmark items_per_second (falling back to
# real_time when a bench reports no rate) against the committed baselines
# (BENCH_datapath.json, BENCH_pipeline.json, BENCH_specialize.json,
# BENCH_observe.json, BENCH_shard.json at the repo root). Fails when any
# benchmark regresses by more than THRESHOLD_PCT.
#
# The gate is a *smoke*, not a precision harness: CI machines are noisy, so
# the default threshold is generous (25%) and only catches step-function
# regressions — an accidental copy on the hot path, a lost fast path, a
# disabled kernel. Refresh a baseline deliberately with:
#   build/bench/bench_<name> --json BENCH_<name>.json
#
# Environment knobs:
#   JOBS=N             parallel build jobs (default: nproc)
#   BUILD_ROOT=dir     build directory (default: build-perf)
#   THRESHOLD_PCT=N    max tolerated slowdown percent (default: 25)
#   BENCH_FILTER=re    forwarded as --benchmark_filter (default: all)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
BUILD_ROOT="${BUILD_ROOT:-build-perf}"
THRESHOLD_PCT="${THRESHOLD_PCT:-25}"
BENCH_FILTER="${BENCH_FILTER:-}"

note() { printf '\n==> %s\n' "$*"; }

note "configure + build (Release) in ${BUILD_ROOT}"
cmake -B "${BUILD_ROOT}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_ROOT}" --target bench_datapath bench_pipeline \
  bench_specialize bench_observe bench_shard -j "${JOBS}" >/dev/null

FAILED=0
for bench in datapath pipeline specialize observe shard; do
  baseline="BENCH_${bench}.json"
  if [ ! -f "${baseline}" ]; then
    note "SKIP bench_${bench}: no committed baseline ${baseline}"
    continue
  fi
  note "bench_${bench}"
  out="${BUILD_ROOT}/BENCH_${bench}.current.json"
  args=(--json "${out}")
  if [ -n "${BENCH_FILTER}" ]; then
    args+=("--benchmark_filter=${BENCH_FILTER}")
  fi
  "${BUILD_ROOT}/bench/bench_${bench}" "${args[@]}"
  python3 - "${baseline}" "${out}" "${THRESHOLD_PCT}" <<'EOF' || FAILED=1
import json
import sys

baseline_path, current_path, threshold_pct = sys.argv[1], sys.argv[2], float(sys.argv[3])

def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") != "iteration":
            continue  # ignore aggregate rows
        out[b["name"]] = b
    return out

base = load(baseline_path)
curr = load(current_path)
bad = []
compared = 0
for name, b in sorted(base.items()):
    c = curr.get(name)
    if c is None:
        continue  # renamed/filtered benches are not a regression
    # Prefer the throughput counter (higher is better); fall back to
    # real_time (lower is better) for benches that report no rate.
    if "items_per_second" in b and "items_per_second" in c:
        ratio = b["items_per_second"] / max(c["items_per_second"], 1e-12)
        kind = "items/s"
    else:
        ratio = c["real_time"] / max(b["real_time"], 1e-12)
        kind = "real_time"
    compared += 1
    slowdown = (ratio - 1.0) * 100.0
    marker = "FAIL" if slowdown > threshold_pct else "  ok"
    print(f"  {marker}  {name}: {slowdown:+.1f}% ({kind})")
    if slowdown > threshold_pct:
        bad.append(name)
if compared == 0:
    print("  no comparable benchmarks between baseline and current run")
    sys.exit(1)
if bad:
    print(f"\nperf smoke: {len(bad)} benchmark(s) regressed more than "
          f"{threshold_pct:.0f}%: {', '.join(bad)}")
    sys.exit(1)
print(f"\nperf smoke: {compared} benchmark(s) within {threshold_pct:.0f}%")
EOF
done

if [ "${FAILED}" -ne 0 ]; then
  note "perf smoke FAILED"
  exit 1
fi
note "perf smoke OK"
