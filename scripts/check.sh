#!/usr/bin/env bash
# One-shot correctness gate: everything CI runs, runnable locally before a
# push. Fails on the first broken stage.
#
#   stage 1  format       clang-format --dry-run on src/ tests/ fuzz/ tools/
#   stage 2  werror       configure+build with -Wall -Wextra -Wconversion -Werror
#   stage 3  tidy         clang-tidy over src/ (compile_commands from stage 2;
#                         includes the clang-analyzer-* path-sensitive checks)
#   stage 4  cppcheck     cppcheck over src/ tools/ (second analyzer, different
#                         engine — catches what tidy's checks don't)
#   stage 5  sql-lint     datacell-lint over examples/sql (good corpus must
#                         pass, seeded-bad corpus must fail, partition demo
#                         shard plan and state-bound report must match their
#                         committed goldens, no bounded→unbounded drift)
#   stage 6  debug-checks full suite with DATACELL_DEBUG_CHECKS=ON
#                         (lock-order checker + DC_DCHECK invariants live)
#   stage 7  tsan         concurrency-, metrics-, observe- and shard-labelled tests
#                         under TSan
#   stage 8  asan+ubsan   full suite under address,undefined
#
# Tool-dependent stages (format, tidy, cppcheck) are SKIPPED with a notice
# when the binary is not installed — a gcc-only box still runs every compiled
# stage.
# Environment knobs:
#   JOBS=N          parallel build jobs (default: nproc)
#   SKIP_SANITIZERS=1   stop after stage 4 (quick pre-commit loop)
#   BUILD_ROOT=dir  where the gate builds go (default: build-check)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
BUILD_ROOT="${BUILD_ROOT:-build-check}"
FAILED=0

note()  { printf '\n==> %s\n' "$*"; }
skip()  { printf '\n==> SKIP: %s\n' "$*"; }

# --- stage 1: formatting (check-only) --------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  note "clang-format (check only)"
  # shellcheck disable=SC2046
  clang-format --dry-run --Werror \
    $(find src tests fuzz tools -name '*.cc' -o -name '*.h' -o -name '*.cpp') \
    || { echo "clang-format: run 'clang-format -i' on the files above"; exit 1; }
else
  skip "clang-format not installed; formatting not checked"
fi

# --- stage 2: warnings-as-errors build -------------------------------------
note "Werror build (-Wall -Wextra -Wconversion -Werror on src/)"
cmake -B "$BUILD_ROOT/werror" -S . \
      -DCMAKE_BUILD_TYPE=Release -DDATACELL_WERROR=ON \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build "$BUILD_ROOT/werror" -j "$JOBS"

# --- stage 3: clang-tidy ----------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  note "clang-tidy (src/)"
  # shellcheck disable=SC2046
  clang-tidy -p "$BUILD_ROOT/werror" --quiet \
    $(find src -name '*.cc')
else
  skip "clang-tidy not installed; static analysis not run"
fi

# --- stage 4: cppcheck -------------------------------------------------------
if command -v cppcheck >/dev/null 2>&1; then
  note "cppcheck (src/ tools/)"
  # --error-exitcode makes findings fail the gate; the inline-suppression
  # escape hatch is `// cppcheck-suppress <id>` at the offending line.
  cppcheck --enable=warning,performance,portability --inline-suppr \
    --std=c++20 --language=c++ --error-exitcode=1 --quiet \
    --suppress=missingIncludeSystem -I src \
    src tools
else
  skip "cppcheck not installed; second static analyzer not run"
fi

# --- stage 5: datacell-lint over the SQL corpus ------------------------------
note "datacell-lint (examples/sql)"
cmake --build "$BUILD_ROOT/werror" -j "$JOBS" --target datacell-lint
"$BUILD_ROOT/werror/tools/datacell-lint" examples/sql/*.sql
if "$BUILD_ROOT/werror/tools/datacell-lint" examples/sql/bad/*.sql 2>/dev/null; then
  echo "datacell-lint: seeded-bad corpus unexpectedly passed"; exit 1
fi
# The shard plan for the partition demo is a committed artifact: regenerate
# and diff, so analyzer drift shows up as a reviewable golden change.
"$BUILD_ROOT/werror/tools/datacell-lint" \
  --partition-report "$BUILD_ROOT/partition_demo.report.json" \
  examples/sql/partition_demo.sql 2>/dev/null
diff -u examples/sql/partition_report.golden.json \
  "$BUILD_ROOT/partition_demo.report.json"
# Same contract for the pass-4 state bounds: the per-query memory-bound
# verdicts over the demo corpus are a committed artifact.
"$BUILD_ROOT/werror/tools/datacell-lint" \
  --state-report "$BUILD_ROOT/state_demo.report.json" \
  examples/sql/partition_demo.sql 2>/dev/null
diff -u examples/sql/state_report.golden.json \
  "$BUILD_ROOT/state_demo.report.json"
# Verdict-drift guard: a golden diff is reviewable, but a committed example
# silently regressing from a bounded class to unbounded is a hard failure
# even if someone regenerates the golden in the same change.
python3 - examples/sql/state_report.golden.json \
  "$BUILD_ROOT/state_demo.report.json" <<'PYEOF'
import json, sys
golden = {e["query"]: e["state"]["verdict"] for e in json.load(open(sys.argv[1]))}
fresh = {e["query"]: e["state"]["verdict"] for e in json.load(open(sys.argv[2]))}
drift = [q for q, v in golden.items()
         if v != "unbounded" and fresh.get(q, v) == "unbounded"]
if drift:
    print("state-bound drift: bounded queries became unbounded:", ", ".join(drift))
    sys.exit(1)
PYEOF

# --- stage 6: full suite with debug checks live -----------------------------
note "full test suite with DATACELL_DEBUG_CHECKS=ON"
cmake -B "$BUILD_ROOT/dbg" -S . \
      -DCMAKE_BUILD_TYPE=Debug -DDATACELL_DEBUG_CHECKS=ON >/dev/null
cmake --build "$BUILD_ROOT/dbg" -j "$JOBS"
ctest --test-dir "$BUILD_ROOT/dbg" -j "$JOBS" --output-on-failure

if [ "${SKIP_SANITIZERS:-0}" = "1" ]; then
  note "SKIP_SANITIZERS=1: stopping before sanitizer stages"
  exit 0
fi

# --- stage 7: TSan on the concurrent paths ----------------------------------
note "TSan: concurrency + metrics + observe + shard tests"
cmake -B "$BUILD_ROOT/tsan" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDATACELL_SANITIZE=thread >/dev/null
cmake --build "$BUILD_ROOT/tsan" -j "$JOBS"
ctest --test-dir "$BUILD_ROOT/tsan" -j "$JOBS" \
      -L 'concurrency|metrics|observe|shard' --output-on-failure

# --- stage 8: ASan + UBSan on everything ------------------------------------
note "ASan+UBSan: full suite"
cmake -B "$BUILD_ROOT/asan" -S . \
      -DCMAKE_BUILD_TYPE=Debug -DDATACELL_SANITIZE=address,undefined >/dev/null
cmake --build "$BUILD_ROOT/asan" -j "$JOBS"
ctest --test-dir "$BUILD_ROOT/asan" -j "$JOBS" --output-on-failure

note "all gates passed"
