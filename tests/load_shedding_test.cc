#include <gtest/gtest.h>

#include "core/engine.h"

namespace datacell {
namespace {

EngineOptions SheddingOptions(size_t cap, Basket::DropPolicy policy) {
  EngineOptions opts;
  opts.use_wall_clock = false;
  opts.max_basket_tuples = cap;
  opts.drop_policy = policy;
  return opts;
}

TEST(LoadSheddingTest, StreamBasketBounded) {
  Engine engine(SheddingOptions(10, Basket::DropPolicy::kDropOldest));
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  // No consumer: the basket would grow unboundedly without shedding.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.Ingest("r", {Value::Int64(i)}).ok());
  }
  auto basket = engine.GetBasket("r");
  ASSERT_TRUE(basket.ok());
  EXPECT_EQ((*basket)->size(), 10u);
  EXPECT_EQ(engine.total_shed(), 90);
  // The freshest 10 tuples survive (drop-oldest).
  auto snap = (*basket)->PeekSnapshot();
  EXPECT_EQ(snap->GetRow(0)[0], Value::Int64(90));
}

TEST(LoadSheddingTest, QueryStillRunsUnderOverload) {
  Engine engine(SheddingOptions(50, Basket::DropPolicy::kDropOldest));
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "all", "select x from [select * from r] as s");
  ASSERT_TRUE(q.ok());
  auto sink = std::make_shared<CollectingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, sink).ok());
  // Burst far beyond capacity without draining: shedding kicks in; then the
  // query processes what survived.
  std::vector<Row> burst;
  for (int i = 0; i < 500; ++i) burst.push_back({Value::Int64(i)});
  ASSERT_TRUE(engine.IngestBatch("r", burst).ok());
  engine.Drain();
  EXPECT_EQ(sink->row_count(), 50u);
  EXPECT_EQ(engine.total_shed(), 450);
  // Under normal load nothing is shed.
  ASSERT_TRUE(engine.Ingest("r", {Value::Int64(1)}).ok());
  engine.Drain();
  EXPECT_EQ(engine.total_shed(), 450);
  EXPECT_EQ(sink->row_count(), 51u);
}

TEST(LoadSheddingTest, PrivateReplicasBoundedToo) {
  Engine engine(SheddingOptions(8, Basket::DropPolicy::kDropNewest));
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  QueryOptions sep;
  sep.strategy = ProcessingStrategy::kSeparateBaskets;
  auto q = engine.SubmitContinuousQuery(
      "all", "select x from [select * from r] as s", sep);
  ASSERT_TRUE(q.ok());
  auto sink = std::make_shared<CollectingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, sink).ok());
  std::vector<Row> burst;
  for (int i = 0; i < 20; ++i) burst.push_back({Value::Int64(i)});
  ASSERT_TRUE(engine.IngestBatch("r", burst).ok());
  engine.Drain();
  // Drop-newest: the first 8 of the burst survive in the replica.
  ASSERT_EQ(sink->row_count(), 8u);
  EXPECT_EQ(sink->SnapshotRows()[0][0], Value::Int64(0));
  EXPECT_GT(engine.total_shed(), 0);
}

TEST(LoadSheddingTest, StatsReportMentionsState) {
  Engine engine(SheddingOptions(5, Basket::DropPolicy::kDropOldest));
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "all", "select x from [select * from r] as s");
  ASSERT_TRUE(q.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.Ingest("r", {Value::Int64(i)}).ok());
  }
  engine.Drain();
  std::string report = engine.StatsReport();
  EXPECT_NE(report.find("factory_all"), std::string::npos);
  EXPECT_NE(report.find("emitter_all"), std::string::npos);
  EXPECT_NE(report.find("-- streams --"), std::string::npos);
  EXPECT_NE(report.find("shed="), std::string::npos);
  EXPECT_NE(report.find("sweeps="), std::string::npos);
}

TEST(LoadSheddingTest, UnboundedByDefault) {
  EngineOptions opts;
  opts.use_wall_clock = false;
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(engine.Ingest("r", {Value::Int64(i)}).ok());
  }
  EXPECT_EQ((*engine.GetBasket("r"))->size(), 1000u);
  EXPECT_EQ(engine.total_shed(), 0);
}

}  // namespace
}  // namespace datacell
