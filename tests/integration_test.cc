#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "adapters/generator.h"
#include "baseline/tuple_engine.h"
#include "core/engine.h"

namespace datacell {
namespace {

EngineOptions Deterministic() {
  EngineOptions opts;
  opts.use_wall_clock = false;
  return opts;
}

/// Multiset of result rows (ignoring the trailing delivery-ts column),
/// rendered as sorted strings for order-insensitive comparison.
std::multiset<std::string> ResultBag(const std::vector<Row>& rows) {
  std::multiset<std::string> bag;
  for (const Row& r : rows) {
    std::string key;
    for (size_t i = 0; i + 1 < r.size(); ++i) {
      key += r[i].ToString();
      key.push_back('|');
    }
    bag.insert(std::move(key));
  }
  return bag;
}

// --- out-of-order processing (§2.2) ----------------------------------------

// Property: for order-insensitive queries (selections, full-stream
// aggregates), delivering the same multiset of tuples in any order produces
// the same multiset of results — the paper's argument that baskets, being
// sets, make disorder a non-issue.
class OutOfOrderEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(OutOfOrderEquivalenceTest, SelectionResultsOrderInsensitive) {
  int disorder_pct = GetParam();
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (k int, v int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "sel", "select k, v from [select * from r] as s "
             "where s.v % 7 = 0 and s.k < 3");
  ASSERT_TRUE(q.ok());
  auto sink = std::make_shared<CollectingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, sink).ok());

  std::vector<ColumnSpec> cols(2);
  cols[0].type = DataType::kInt64;
  cols[0].int_max = 5;
  cols[1].type = DataType::kInt64;
  cols[1].int_max = 1000;
  std::unique_ptr<RowGenerator> gen = std::make_unique<OutOfOrderGenerator>(
      std::make_unique<UniformRowGenerator>(cols, 123), 32,
      disorder_pct / 100.0, 7);

  // The reference answer is computed from the *actually ingested* multiset:
  // whatever order tuples arrive in, the query must select exactly the
  // qualifying ones.
  std::multiset<std::string> expected;
  for (int i = 0; i < 500; ++i) {
    Row row = gen->Next();
    if (row[1].int64_value() % 7 == 0 && row[0].int64_value() < 3) {
      expected.insert(row[0].ToString() + "|" + row[1].ToString() + "|");
    }
    ASSERT_TRUE(engine.Ingest("r", row).ok());
    if (i % 37 == 0) engine.Drain();
  }
  engine.Drain();
  EXPECT_EQ(ResultBag(sink->TakeRows()), expected);
}

INSTANTIATE_TEST_SUITE_P(Disorder, OutOfOrderEquivalenceTest,
                         ::testing::Values(0, 10, 50, 100));

// --- DataCell vs tuple-at-a-time result equivalence -------------------------

TEST(EngineBaselineEquivalenceTest, SelectionAndProjectionAgree) {
  // The two architectures must compute identical answers; E2 then compares
  // only their speed.
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x * 3 + 1 as y from [select * from r] as s "
             "where s.x % 2 = 0");
  ASSERT_TRUE(q.ok());
  auto cell_sink = std::make_shared<CollectingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, cell_sink).ok());

  baseline::TuplePipeline pipe;
  auto col = Expr::Column(0, "x", DataType::kInt64);
  pipe.Add(std::make_unique<baseline::FilterOp>(Expr::Binary(
      BinaryOp::kEq, Expr::Binary(BinaryOp::kMod, col, Expr::Int(2)),
      Expr::Int(0))));
  pipe.Add(std::make_unique<baseline::MapOp>(std::vector<ExprPtr>{
      Expr::Binary(BinaryOp::kAdd,
                   Expr::Binary(BinaryOp::kMul, col, Expr::Int(3)),
                   Expr::Int(1))}));
  auto* tuple_sink = static_cast<baseline::SinkOp*>(
      pipe.Add(std::make_unique<baseline::SinkOp>(/*collect=*/true)));

  std::vector<ColumnSpec> cols(1);
  cols[0].type = DataType::kInt64;
  cols[0].int_max = 100000;
  UniformRowGenerator gen(cols, 99);
  for (int i = 0; i < 1000; ++i) {
    Row row = gen.Next();
    ASSERT_TRUE(engine.Ingest("r", row).ok());
    ASSERT_TRUE(pipe.Push(row).ok());
  }
  engine.Drain();
  EXPECT_EQ(ResultBag(cell_sink->TakeRows()),
            ResultBag([&] {
              // Pad baseline rows with a dummy trailing column so ResultBag
              // strips symmetrically.
              std::vector<Row> rows = tuple_sink->rows();
              for (Row& r : rows) r.push_back(Value::Int64(0));
              return rows;
            }()));
}

TEST(EngineBaselineEquivalenceTest, SlidingWindowAggregatesAgree) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (k int, v int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "agg", "select k, sum(v) as s from [select * from r] as w group by k "
             "order by k window size 64 slide 16");
  ASSERT_TRUE(q.ok());
  auto cell_sink = std::make_shared<CollectingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, cell_sink).ok());

  baseline::TuplePipeline pipe;
  pipe.Add(std::make_unique<baseline::WindowAggregateOp>(
      std::vector<size_t>{0}, std::vector<size_t>{1},
      std::vector<AggFunc>{AggFunc::kSum}, 64, 16));
  auto* tuple_sink = static_cast<baseline::SinkOp*>(
      pipe.Add(std::make_unique<baseline::SinkOp>(/*collect=*/true)));

  std::vector<ColumnSpec> cols(2);
  cols[0].type = DataType::kInt64;
  cols[0].int_max = 3;
  cols[1].type = DataType::kInt64;
  cols[1].int_max = 100;
  UniformRowGenerator gen(cols, 5);
  for (int i = 0; i < 640; ++i) {
    Row row = gen.Next();
    ASSERT_TRUE(engine.Ingest("r", row).ok());
    ASSERT_TRUE(pipe.Push(row).ok());
  }
  engine.Drain();
  std::vector<Row> baseline_rows = tuple_sink->rows();
  for (Row& r : baseline_rows) r.push_back(Value::Int64(0));
  EXPECT_EQ(ResultBag(cell_sink->TakeRows()), ResultBag(baseline_rows));
}

// --- failure injection --------------------------------------------------------

TEST(FailureInjectionTest, MalformedStreamDataDoesNotStopTheEngine) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int, s string)").ok());
  Channel wire;
  auto receptor = engine.AttachReceptor("r", &wire);
  ASSERT_TRUE(receptor.ok());
  auto q = engine.SubmitContinuousQuery(
      "all", "select x, s from [select * from r] as w");
  ASSERT_TRUE(q.ok());
  auto sink = std::make_shared<CollectingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, sink).ok());
  // Interleave garbage with valid tuples.
  for (int i = 0; i < 50; ++i) {
    wire.Push(std::to_string(i) + ",ok");
    wire.Push("garbage line");
    wire.Push("1,2,3,4,5");
    wire.Push("\"unterminated");
  }
  engine.Drain();
  EXPECT_EQ(sink->row_count(), 50u);
  EXPECT_EQ((*receptor)->malformed_lines(), 150);
  EXPECT_EQ(engine.scheduler().error_count(), 0);
}

TEST(FailureInjectionTest, IngestTypeErrorsRejectedAtomically) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int, s string)").ok());
  // Bad tuple in the middle of a batch: nothing from the batch lands.
  std::vector<Row> batch = {
      {Value::Int64(1), Value::String("a")},
      {Value::String("wrong"), Value::String("b")},
      {Value::Int64(3), Value::String("c")},
  };
  EXPECT_FALSE(engine.IngestBatch("r", batch).ok());
  auto count = engine.ExecuteSql("select count(*) as c from r");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ((*count)->GetRow(0)[0], Value::Int64(0));
}

TEST(FailureInjectionTest, LexerFuzzDoesNotCrash) {
  // Feed pseudo-random byte strings through the full SQL entry point; every
  // outcome must be a clean Status, never a crash.
  Rng rng(2029);
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create table t (a int)").ok());
  const std::string alphabet =
      "abcdef select from where [(')]*,.<>=!% \t\n0123456789'\"";
  for (int i = 0; i < 500; ++i) {
    std::string sql;
    int len = static_cast<int>(rng.Uniform(1, 60));
    for (int j = 0; j < len; ++j) {
      sql.push_back(
          alphabet[static_cast<size_t>(rng.Uniform(0, alphabet.size() - 1))]);
    }
    auto result = engine.ExecuteSql(sql);
    (void)result;  // any Status is fine; crashing is not
  }
}

TEST(FailureInjectionTest, QueryOnDroppedTableFailsGracefully) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create table t (a int)").ok());
  ASSERT_TRUE(engine.ExecuteSql("drop table t").ok());
  auto r = engine.ExecuteSql("select * from t");
  EXPECT_TRUE(r.status().IsNotFound());
}

// --- threaded stress ---------------------------------------------------------

TEST(ThreadedStressTest, MultiWorkerSchedulerProcessesEverything) {
  Engine engine;  // wall clock
  ASSERT_TRUE(engine.ExecuteSql("create basket r (k int, v int)").ok());
  constexpr int kQueries = 4;
  std::vector<std::shared_ptr<CountingSink>> sinks;
  for (int i = 0; i < kQueries; ++i) {
    auto q = engine.SubmitContinuousQuery(
        "q" + std::to_string(i),
        "select k, v from [select * from r where r.k = " + std::to_string(i) +
            "] as s");
    ASSERT_TRUE(q.ok());
    auto sink = std::make_shared<CountingSink>();
    ASSERT_TRUE(engine.Subscribe(*q, sink).ok());
    sinks.push_back(std::move(sink));
  }
  ASSERT_TRUE(engine.Start(/*num_threads=*/4).ok());
  EXPECT_FALSE(engine.Start(2).ok());  // double start still rejected
  constexpr int kTuples = 8000;
  Rng rng(99);
  for (int i = 0; i < kTuples; ++i) {
    ASSERT_TRUE(engine
                    .Ingest("r", {Value::Int64(i % kQueries),
                                  Value::Int64(rng.Uniform(0, 100))})
                    .ok());
  }
  int64_t total = 0;
  for (int spin = 0; spin < 10000; ++spin) {
    total = 0;
    for (const auto& sink : sinks) total += sink->rows();
    if (total == kTuples) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  engine.Stop();
  EXPECT_EQ(total, kTuples);
  for (const auto& sink : sinks) {
    EXPECT_EQ(sink->rows(), kTuples / kQueries);
  }
  EXPECT_EQ(engine.scheduler().error_count(), 0);
}

TEST(ThreadedStressTest, ConcurrentIngestAndQueries) {
  EngineOptions opts;  // wall clock; threaded
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket r (k int, v int)").ok());
  auto q1 = engine.SubmitContinuousQuery(
      "evens", "select k, v from [select * from r where r.v % 2 = 0] as s");
  auto q2 = engine.SubmitContinuousQuery(
      "odds", "select k, v from [select * from r where r.v % 2 = 1] as s");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  auto s1 = std::make_shared<CountingSink>();
  auto s2 = std::make_shared<CountingSink>();
  ASSERT_TRUE(engine.Subscribe(*q1, s1).ok());
  ASSERT_TRUE(engine.Subscribe(*q2, s2).ok());
  ASSERT_TRUE(engine.Start().ok());

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, p] {
      Rng rng(static_cast<uint64_t>(p));
      for (int i = 0; i < kPerProducer; ++i) {
        Status st = engine.Ingest(
            "r", {Value::Int64(p), Value::Int64(rng.Uniform(0, 1000))});
        ASSERT_TRUE(st.ok());
      }
    });
  }
  for (auto& t : producers) t.join();
  // Every tuple goes to exactly one of the two queries.
  constexpr int64_t kTotal = kProducers * kPerProducer;
  for (int i = 0; i < 10000 && s1->rows() + s2->rows() < kTotal; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  engine.Stop();
  EXPECT_EQ(s1->rows() + s2->rows(), kTotal);
  EXPECT_EQ(engine.scheduler().error_count(), 0);
}

}  // namespace
}  // namespace datacell
