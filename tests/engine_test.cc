#include <gtest/gtest.h>

#include "adapters/csv.h"
#include "core/engine.h"

namespace datacell {
namespace {

EngineOptions DeterministicOptions() {
  EngineOptions opts;
  opts.use_wall_clock = false;
  return opts;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : engine_(DeterministicOptions()) {}

  void Sql(const std::string& sql) {
    auto r = engine_.ExecuteSql(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  QueryId Submit(const std::string& name, const std::string& sql,
                 QueryOptions opts = {}) {
    auto q = engine_.SubmitContinuousQuery(name, sql, opts);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  std::shared_ptr<CollectingSink> Watch(QueryId id) {
    auto sink = std::make_shared<CollectingSink>();
    EXPECT_TRUE(engine_.Subscribe(id, sink).ok());
    return sink;
  }

  Status IngestInts(const std::string& stream, int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      DC_RETURN_NOT_OK(engine_.Ingest(stream, {Value::Int64(i)}));
      engine_.simulated_clock()->Advance(1000);
    }
    return Status::OK();
  }

  Engine engine_;
};

// --- DDL / INSERT / one-time SELECT --------------------------------------

TEST_F(EngineTest, CreateInsertSelectTable) {
  Sql("create table t (a int, b varchar)");
  Sql("insert into t values (1, 'x'), (2, 'y'), (3, 'z')");
  auto r = engine_.ExecuteSql(
      "select a, b from t where a >= 2 order by a desc");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->num_rows(), 2u);
  EXPECT_EQ((*r)->GetRow(0)[1], Value::String("z"));
}

TEST_F(EngineTest, InsertColumnListAndNulls) {
  Sql("create table t (a int, b varchar, c double)");
  Sql("insert into t (c, a) values (1.5, 7)");
  auto r = engine_.ExecuteSql("select * from t");
  ASSERT_TRUE(r.ok());
  Row row = (*r)->GetRow(0);
  EXPECT_EQ(row[0], Value::Int64(7));
  EXPECT_TRUE(row[1].is_null());
  EXPECT_EQ(row[2], Value::Double(1.5));
}

TEST_F(EngineTest, InsertNegativeLiterals) {
  Sql("create table t (a int)");
  Sql("insert into t values (-5)");
  auto r = engine_.ExecuteSql("select * from t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetRow(0)[0], Value::Int64(-5));
}

TEST_F(EngineTest, CreateBasketAddsTsAndRejectsTs) {
  Sql("create basket r (x int)");
  auto b = engine_.GetBasket("r");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)->schema().num_fields(), 2u);
  EXPECT_FALSE(
      engine_.ExecuteSql("create basket bad (ts int)").ok());
}

TEST_F(EngineTest, DuplicateCreateRejected) {
  Sql("create table t (a int)");
  EXPECT_FALSE(engine_.ExecuteSql("create table t (a int)").ok());
  EXPECT_FALSE(engine_.ExecuteSql("create basket t (a int)").ok());
}

TEST_F(EngineTest, DropTableAndBasket) {
  Sql("create table t (a int)");
  Sql("drop table t");
  EXPECT_FALSE(engine_.ExecuteSql("select * from t").ok());
  Sql("create basket r (x int)");
  Sql("drop basket r");
  EXPECT_FALSE(engine_.Ingest("r", {Value::Int64(1)}).ok());
}

TEST_F(EngineTest, DropStreamWithQueriesRejected) {
  Sql("create basket r (x int)");
  Submit("q", "select x from [select * from r] as s");
  EXPECT_FALSE(engine_.ExecuteSql("drop basket r").ok());
}

TEST_F(EngineTest, InsertIntoBasketStampsTs) {
  Sql("create basket r (x int)");
  engine_.simulated_clock()->Advance(777);
  Sql("insert into r values (1)");
  auto r = engine_.ExecuteSql("select ts from r");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetRow(0)[0], Value::TimestampVal(777));
}

TEST_F(EngineTest, OneTimeSelectOnBasketIsInspection) {
  // §2.6: outside a basket expression the basket reads like a table and
  // tuples are NOT removed.
  Sql("create basket r (x int)");
  Sql("insert into r values (1), (2)");
  auto r1 = engine_.ExecuteSql("select x from r");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ((*r1)->num_rows(), 2u);
  auto r2 = engine_.ExecuteSql("select x from r");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)->num_rows(), 2u);
}

TEST_F(EngineTest, ContinuousQueryViaExecuteSqlRejected) {
  Sql("create basket r (x int)");
  EXPECT_FALSE(engine_.ExecuteSql("select * from [select * from r] as s").ok());
}

TEST_F(EngineTest, OneTimeAggregateAndJoin) {
  Sql("create table f (k int, v double)");
  Sql("create table d (k int, name varchar)");
  Sql("insert into f values (1, 10.0), (1, 20.0), (2, 5.0)");
  Sql("insert into d values (1, 'one'), (2, 'two')");
  auto r = engine_.ExecuteSql(
      "select d.name, sum(f.v) as total from f join d on f.k = d.k "
      "group by d.name order by total desc");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->num_rows(), 2u);
  EXPECT_EQ((*r)->GetRow(0)[0], Value::String("one"));
  EXPECT_EQ((*r)->GetRow(0)[1], Value::Double(30.0));
}

// --- continuous pipeline -------------------------------------------------

TEST_F(EngineTest, Figure1Pipeline) {
  Sql("create basket r (x int)");
  QueryId q = Submit("big", "select x from [select * from r] as s "
                            "where s.x > 5");
  auto sink = Watch(q);
  ASSERT_TRUE(IngestInts("r", 0, 10).ok());
  engine_.Drain();
  auto rows = sink->TakeRows();
  ASSERT_EQ(rows.size(), 4u);  // 6,7,8,9
  EXPECT_EQ(rows[0][0], Value::Int64(6));
  // Output rows carry the delivery timestamp column.
  EXPECT_EQ(rows[0].size(), 2u);
}

TEST_F(EngineTest, PredicateWindowLeavesRest) {
  Sql("create basket r (x int)");
  QueryId q = Submit("small", "select x from [select * from r where r.x < 3] "
                              "as s");
  auto sink = Watch(q);
  ASSERT_TRUE(IngestInts("r", 0, 6).ok());
  engine_.Drain();
  EXPECT_EQ(sink->TakeRows().size(), 3u);
  // Non-matching tuples remain in the shared basket... but were passed by
  // the watermark, so they are trimmed. Ingest more to verify the query
  // still runs.
  ASSERT_TRUE(IngestInts("r", 0, 2).ok());
  engine_.Drain();
  EXPECT_EQ(sink->TakeRows().size(), 2u);
}

TEST_F(EngineTest, MultipleQueriesSharedStrategy) {
  Sql("create basket r (x int)");
  QueryId lo = Submit("lo", "select x from [select * from r] as s "
                            "where s.x < 3");
  QueryId hi = Submit("hi", "select x from [select * from r] as s "
                            "where s.x >= 3");
  auto lo_sink = Watch(lo);
  auto hi_sink = Watch(hi);
  ASSERT_TRUE(IngestInts("r", 0, 6).ok());
  engine_.Drain();
  EXPECT_EQ(lo_sink->row_count(), 3u);
  EXPECT_EQ(hi_sink->row_count(), 3u);
  // Shared basket fully trimmed after both consumed.
  EXPECT_EQ((*engine_.GetBasket("r"))->size(), 0u);
}

TEST_F(EngineTest, SeparateStrategyReplicates) {
  Sql("create basket r (x int)");
  QueryOptions sep;
  sep.strategy = ProcessingStrategy::kSeparateBaskets;
  QueryId a = Submit("qa", "select x from [select * from r] as s", sep);
  QueryId b = Submit("qb", "select x from [select * from r] as s", sep);
  auto sa = Watch(a);
  auto sb = Watch(b);
  ASSERT_TRUE(IngestInts("r", 0, 5).ok());
  engine_.Drain();
  EXPECT_EQ(sa->row_count(), 5u);
  EXPECT_EQ(sb->row_count(), 5u);
}

TEST_F(EngineTest, ChainedStrategyDisjointRanges) {
  Sql("create basket r (x int)");
  QueryOptions chained;
  chained.strategy = ProcessingStrategy::kChained;
  QueryId q1 = Submit("c1", "select x from [select * from r where r.x < 5] "
                            "as s", chained);
  QueryId q2 = Submit("c2", "select x from [select * from r where r.x >= 5] "
                            "as s", chained);
  auto s1 = Watch(q1);
  auto s2 = Watch(q2);
  ASSERT_TRUE(IngestInts("r", 0, 10).ok());
  engine_.Drain();
  EXPECT_EQ(s1->row_count(), 5u);
  EXPECT_EQ(s2->row_count(), 5u);
  // q2's factory saw only the 5 tuples q1 did not claim.
  auto info2 = engine_.GetQuery(q2);
  ASSERT_TRUE(info2.ok());
  EXPECT_EQ((*info2)->factory->tuples_processed(), 5);
}

TEST_F(EngineTest, MixedStrategiesOnStreamRejected) {
  Sql("create basket r (x int)");
  QueryOptions chained;
  chained.strategy = ProcessingStrategy::kChained;
  Submit("c1", "select x from [select * from r] as s", chained);
  QueryOptions sep;
  sep.strategy = ProcessingStrategy::kSeparateBaskets;
  EXPECT_FALSE(engine_
                   .SubmitContinuousQuery(
                       "s1", "select x from [select * from r] as s", sep)
                   .ok());
}

TEST_F(EngineTest, CascadedQueries) {
  // A network of queries: q2 consumes q1's output basket (§4).
  Sql("create basket r (x int)");
  QueryId q1 = Submit("doubler", "select x * 2 as x2 from "
                                 "[select * from r] as s");
  QueryId q2 = Submit("big", "select x2 from [select * from doubler_out] as t "
                             "where t.x2 > 10");
  auto s2 = Watch(q2);
  (void)q1;
  ASSERT_TRUE(IngestInts("r", 0, 10).ok());
  engine_.Drain();
  // x in 6..9 -> x2 in 12..18.
  EXPECT_EQ(s2->row_count(), 4u);
}

TEST_F(EngineTest, StreamTableJoin) {
  Sql("create table dim (x int, label varchar)");
  Sql("insert into dim values (1, 'one'), (3, 'three')");
  Sql("create basket r (x int)");
  QueryId q = Submit("labeled",
                     "select s.x, dim.label from [select * from r] as s "
                     "join dim on s.x = dim.x");
  auto sink = Watch(q);
  ASSERT_TRUE(IngestInts("r", 0, 5).ok());
  engine_.Drain();
  auto rows = sink->TakeRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], Value::String("one"));
  EXPECT_EQ(rows[1][1], Value::String("three"));
}

TEST_F(EngineTest, LiveTableBindingSeesUpdates) {
  // §2.6: predicates may refer to objects elsewhere in the database; the
  // binding is live, so table updates affect later firings.
  Sql("create table dim (x int, label varchar)");
  Sql("create basket r (x int)");
  QueryId q = Submit("labeled",
                     "select s.x, dim.label from [select * from r] as s "
                     "join dim on s.x = dim.x");
  auto sink = Watch(q);
  ASSERT_TRUE(IngestInts("r", 0, 3).ok());
  engine_.Drain();
  EXPECT_EQ(sink->row_count(), 0u);  // dim empty
  Sql("insert into dim values (1, 'one')");
  ASSERT_TRUE(IngestInts("r", 0, 3).ok());
  engine_.Drain();
  EXPECT_EQ(sink->row_count(), 1u);
}

TEST_F(EngineTest, GroupedAggregateContinuous) {
  Sql("create basket r (k int, v int)");
  QueryId q = Submit("sums",
                     "select k, sum(v) as s from [select * from r] as w "
                     "group by k order by k");
  auto sink = Watch(q);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine_.Ingest("r", {Value::Int64(i % 2), Value::Int64(i)}).ok());
  }
  engine_.Drain();
  auto rows = sink->TakeRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], Value::Double(0 + 2 + 4));
  EXPECT_EQ(rows[1][1], Value::Double(1 + 3 + 5));
}

TEST_F(EngineTest, CountWindowViaEngine) {
  Sql("create basket r (x int)");
  QueryId q = Submit("wsum",
                     "select sum(x) as s from [select * from r] as w "
                     "window size 3");
  auto sink = Watch(q);
  ASSERT_TRUE(IngestInts("r", 0, 7).ok());
  engine_.Drain();
  auto rows = sink->TakeRows();
  ASSERT_EQ(rows.size(), 2u);  // two complete tumbling windows
  EXPECT_EQ(rows[0][0], Value::Double(0 + 1 + 2));
  EXPECT_EQ(rows[1][0], Value::Double(3 + 4 + 5));
}

TEST_F(EngineTest, TimeWindowViaEngineSimClock) {
  Sql("create basket r (x int)");
  QueryId q = Submit("persec",
                     "select count(*) as c from [select * from r] as w "
                     "window range 1 seconds slide 1 seconds");
  auto sink = Watch(q);
  // 3 tuples in second 0, 2 in second 1, then one in second 2 to close.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine_.Ingest("r", {Value::Int64(i)}).ok());
  }
  engine_.simulated_clock()->Advance(kMicrosPerSecond);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(engine_.Ingest("r", {Value::Int64(i)}).ok());
  }
  engine_.simulated_clock()->Advance(kMicrosPerSecond);
  ASSERT_TRUE(engine_.Ingest("r", {Value::Int64(0)}).ok());
  engine_.Drain();
  auto rows = sink->TakeRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int64(3));
  EXPECT_EQ(rows[1][0], Value::Int64(2));
}

TEST_F(EngineTest, ThresholdBatchesFirings) {
  Sql("create basket r (x int)");
  QueryId q = Submit("batch4",
                     "select x from [select * from r] as s threshold 4");
  auto sink = Watch(q);
  ASSERT_TRUE(IngestInts("r", 0, 3).ok());
  engine_.Drain();
  EXPECT_EQ(sink->row_count(), 0u);  // below threshold: factory waits
  ASSERT_TRUE(IngestInts("r", 3, 4).ok());
  engine_.Drain();
  EXPECT_EQ(sink->row_count(), 4u);
}

TEST_F(EngineTest, TwoStreamJoinFiresWhenBothHaveInput) {
  Sql("create basket a (x int)");
  Sql("create basket b (x int)");
  QueryId q = Submit("joined",
                     "select s1.x from [select * from a] as s1 "
                     "join [select * from b] as s2 on s1.x = s2.x");
  auto sink = Watch(q);
  ASSERT_TRUE(IngestInts("a", 0, 3).ok());
  engine_.Drain();
  // Petri-net rule: both inputs must hold tuples before the factory runs.
  EXPECT_EQ(sink->row_count(), 0u);
  auto info = engine_.GetQuery(q);
  EXPECT_EQ((*info)->factory->runs(), 0);
  ASSERT_TRUE(IngestInts("b", 2, 5).ok());
  engine_.Drain();
  EXPECT_EQ(sink->row_count(), 1u);  // only x=2 in both batches
}

TEST_F(EngineTest, ReceptorParsesAndValidates) {
  Sql("create basket r (x int, name varchar)");
  Channel wire;
  auto receptor = engine_.AttachReceptor("r", &wire);
  ASSERT_TRUE(receptor.ok());
  QueryId q = Submit("all", "select x, name from [select * from r] as s");
  auto sink = Watch(q);
  wire.Push("1,alice");
  wire.Push("not-an-int,bob");  // malformed: dropped, counted
  wire.Push("3,carol");
  engine_.Drain();
  EXPECT_EQ(sink->row_count(), 2u);
  EXPECT_EQ((*receptor)->malformed_lines(), 1);
}

// Regression (found by ASan): a caller-owned Channel died before the engine,
// and ~Engine dereferenced it to detach the wake callback. The wake hub
// decouples the lifetimes: the engine must never touch the channel again.
TEST(EngineLifetimeTest, ChannelMayDieBeforeEngine) {
  Engine engine(DeterministicOptions());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  {
    Channel wire;
    auto receptor = engine.AttachReceptor("r", &wire);
    ASSERT_TRUE(receptor.ok());
    wire.Push("1");
    engine.Drain();
    EXPECT_EQ((*receptor)->runs(), 1);
  }  // `wire` dies here; no further scheduling — the engine may only be
     // destroyed, which must not reach into the dead channel.
}

TEST_F(EngineTest, EmitterToChannel) {
  Sql("create basket r (x int)");
  QueryId q = Submit("big", "select x from [select * from r] as s "
                            "where s.x > 1");
  Channel out;
  ASSERT_TRUE(engine_.Subscribe(q, std::make_shared<ChannelSink>(&out)).ok());
  ASSERT_TRUE(IngestInts("r", 0, 4).ok());
  engine_.Drain();
  EXPECT_EQ(out.size(), 2u);
  std::string line;
  ASSERT_TRUE(out.TryPop(&line));
  EXPECT_EQ(line.substr(0, 2), "2,");
}

TEST_F(EngineTest, ExplainSql) {
  Sql("create basket r (x int)");
  auto mal = engine_.ExplainSql(
      "select x from [select * from r] as s where s.x > 3");
  ASSERT_TRUE(mal.ok());
  EXPECT_NE(mal->find("basket.bind"), std::string::npos);
  EXPECT_NE(mal->find("algebra.select"), std::string::npos);
}

TEST_F(EngineTest, QueryInfoAccessors) {
  Sql("create basket r (x int)");
  QueryId q = Submit("named", "select x from [select * from r] as s");
  auto info = engine_.GetQuery(q);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->name, "named");
  EXPECT_NE((*info)->factory, nullptr);
  EXPECT_FALSE(engine_.GetQuery(999).ok());
  EXPECT_EQ(engine_.num_queries(), 1u);
  EXPECT_FALSE(engine_.Subscribe(999, std::make_shared<CollectingSink>()).ok());
}

TEST_F(EngineTest, SubmitValidations) {
  Sql("create basket r (x int)");
  // Not continuous.
  EXPECT_FALSE(engine_.SubmitContinuousQuery("q", "select * from r").ok());
  // Unknown stream.
  EXPECT_FALSE(engine_
                   .SubmitContinuousQuery(
                       "q", "select * from [select * from nope] as s")
                   .ok());
  // Not a select.
  EXPECT_FALSE(
      engine_.SubmitContinuousQuery("q", "create table z (a int)").ok());
}

TEST_F(EngineTest, IngestBeforeQueriesBuffersForInspection) {
  Sql("create basket r (x int)");
  ASSERT_TRUE(IngestInts("r", 0, 3).ok());
  auto r = engine_.ExecuteSql("select count(*) as c from r");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetRow(0)[0], Value::Int64(3));
}

TEST_F(EngineTest, ThreadedModeEndToEnd) {
  Sql("create basket r (x int)");
  QueryId q = Submit("all", "select x from [select * from r] as s");
  auto sink = Watch(q);
  ASSERT_TRUE(engine_.Start().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine_.Ingest("r", {Value::Int64(i)}).ok());
  }
  for (int i = 0; i < 2000 && sink->row_count() < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  engine_.Stop();
  EXPECT_EQ(sink->row_count(), 100u);
}

}  // namespace
}  // namespace datacell
