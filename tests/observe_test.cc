// Self-observation tests: the monitor receptor and its sys.* telemetry
// streams (including the dogfood case — a continuous query over sys.baskets
// acting as an alert stream), the per-step pipeline profiler for both
// specialized and interpreted queries, the runtime trace toggle, the
// Prometheus prefix filter, and the HTTP observability endpoint (including
// byte-identical /metrics scrapes against a running scheduler).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "adapters/monitor.h"
#include "adapters/sink.h"
#include "common/metrics_registry.h"
#include "common/trace.h"
#include "core/engine.h"
#include "net/observability.h"

namespace datacell {
namespace {

EngineOptions Observed() {
  EngineOptions opts;
  opts.use_wall_clock = false;
  opts.monitor_tick_us = 1000;
  return opts;
}

// --- monitor receptor unit (hand-built snapshots) -------------------------

struct Delivery {
  std::string stream;
  std::vector<Row> rows;
};

MetricsSnapshotData FakeSnapshot(int64_t fires, int64_t tuples,
                                 int64_t occupancy) {
  MetricsSnapshotData snap;
  MetricLabels labels{{"transition", "t0"}, {"kind", "factory"}};
  snap.counters.push_back({"datacell_transition_fires_total", labels, fires});
  snap.counters.push_back(
      {"datacell_transition_tuples_total", labels, tuples});
  snap.gauges.push_back(
      {"datacell_basket_tuples", {{"basket", "b0"}}, occupancy});
  return snap;
}

TEST(MonitorReceptor, FirstTickAbsoluteThenDeltas) {
  SimulatedClock clock;
  int64_t fires = 7;
  int64_t tuples = 70;
  std::vector<Delivery> deliveries;
  MonitorReceptor mon(
      "mon", [&] { return FakeSnapshot(fires, tuples, 3); },
      [&](const std::string& stream, ColumnBatch&& batch) {
        Delivery d;
        d.stream = stream;
        for (size_t i = 0; i < batch.num_rows(); ++i) {
          Row row;
          for (size_t c = 0; c < batch.num_columns(); ++c) {
            row.push_back(batch.column(c).GetValue(i));
          }
          d.rows.push_back(std::move(row));
        }
        batch.Clear();
        deliveries.push_back(std::move(d));
        return Status::OK();
      },
      &clock, /*tick_us=*/1000);

  // First tick: deltas against an empty baseline, i.e. absolute values.
  ASSERT_TRUE(mon.Ready());
  auto r1 = mon.Fire();
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(deliveries.size(), 2u);  // transitions + baskets; no emitters
  EXPECT_EQ(deliveries[0].stream, MonitorReceptor::kTransitionsStream);
  ASSERT_EQ(deliveries[0].rows.size(), 1u);
  EXPECT_EQ(deliveries[0].rows[0][0].string_value(), "t0");
  EXPECT_EQ(deliveries[0].rows[0][1].int64_value(), 7);
  EXPECT_EQ(deliveries[0].rows[0][2].int64_value(), 70);
  EXPECT_EQ(deliveries[1].stream, MonitorReceptor::kBasketsStream);
  ASSERT_EQ(deliveries[1].rows.size(), 1u);
  EXPECT_EQ(deliveries[1].rows[0][0].string_value(), "b0");
  EXPECT_EQ(deliveries[1].rows[0][1].int64_value(), 3);

  // Not ready again until the next tick boundary.
  EXPECT_FALSE(mon.Ready());
  clock.Advance(1000);
  ASSERT_TRUE(mon.Ready());

  // Second tick: counters report since-last-tick deltas, gauges stay
  // instantaneous samples.
  fires = 10;
  tuples = 100;
  deliveries.clear();
  ASSERT_TRUE(mon.Fire().ok());
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].rows[0][1].int64_value(), 3);   // 10 - 7
  EXPECT_EQ(deliveries[0].rows[0][2].int64_value(), 30);  // 100 - 70
  EXPECT_EQ(deliveries[1].rows[0][1].int64_value(), 3);   // gauge, absolute
  EXPECT_EQ(mon.ticks(), 2);
}

TEST(MonitorReceptor, NoCatchUpBurstAfterStall) {
  SimulatedClock clock;
  int deliveries = 0;
  MonitorReceptor mon(
      "mon", [] { return FakeSnapshot(1, 1, 1); },
      [&](const std::string&, ColumnBatch&& batch) {
        ++deliveries;
        batch.Clear();
        return Status::OK();
      },
      &clock, /*tick_us=*/1000);
  ASSERT_TRUE(mon.Fire().ok());
  // A long stall does not queue up missed ticks: one fire, then the grid
  // resumes from now.
  clock.Advance(50'000);
  ASSERT_TRUE(mon.Ready());
  ASSERT_TRUE(mon.Fire().ok());
  EXPECT_FALSE(mon.Ready());
  clock.Advance(999);
  EXPECT_FALSE(mon.Ready());
  clock.Advance(1);
  EXPECT_TRUE(mon.Ready());
}

// --- engine wiring: sys.* streams ----------------------------------------

TEST(SysStreams, RegisteredInCatalogAndQueryable) {
  Engine engine(Observed());
  ASSERT_NE(engine.monitor(), nullptr);
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int)").ok());
  ASSERT_TRUE(engine.Ingest("s", {Value::Int64(1)}).ok());
  engine.simulated_clock()->Advance(2000);
  engine.Drain();  // fires the monitor's first tick

  // Qualified relation names parse and scan like any other basket.
  auto rows = engine.ExecuteSql(
      "select b.name, b.occupancy from sys.baskets as b "
      "where b.occupancy >= 0");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GE((*rows)->num_rows(), 4u);  // s + the three sys streams

  auto trans = engine.ExecuteSql(
      "select t.transition, t.fires from sys.transitions as t "
      "where t.fires >= 0");
  ASSERT_TRUE(trans.ok()) << trans.status().ToString();
  EXPECT_GE((*trans)->num_rows(), 1u);  // at least the monitor itself
}

// The telemetry rows carry the engine's shard index so a sharded
// deployment's unioned sys.* streams stay attributable per shard.
TEST(SysStreams, RowsCarryTheShardIndex) {
  EngineOptions opts = Observed();
  opts.shard_index = 3;
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int)").ok());
  ASSERT_TRUE(engine.Ingest("s", {Value::Int64(1)}).ok());
  engine.simulated_clock()->Advance(2000);
  engine.Drain();

  auto trans = engine.ExecuteSql(
      "select t.transition, t.shard from sys.transitions as t "
      "where t.shard = 3");
  ASSERT_TRUE(trans.ok()) << trans.status().ToString();
  EXPECT_GE((*trans)->num_rows(), 1u);

  auto baskets = engine.ExecuteSql(
      "select b.name, b.shard from sys.baskets as b where b.shard = 3");
  ASSERT_TRUE(baskets.ok()) << baskets.status().ToString();
  EXPECT_GE((*baskets)->num_rows(), 1u);
  // And nothing claims any other shard.
  auto other = engine.ExecuteSql(
      "select b.name from sys.baskets as b where b.shard <> 3");
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  EXPECT_EQ((*other)->num_rows(), 0u);
}

TEST(SysStreams, ReservedPrefixRejectedForUsers) {
  Engine engine(Observed());
  Schema s;
  s.AddField(Field{"x", DataType::kInt64});
  auto r = engine.CreateStream("sys.mine", s);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(engine.CreateStream("SYS.mine", s).ok());  // case-insensitive
  EXPECT_TRUE(engine.CreateStream("system_log", s).ok());  // prefix only
}

TEST(SysStreams, MonitorOffByDefault) {
  EngineOptions opts;
  opts.use_wall_clock = false;
  Engine engine(opts);
  EXPECT_EQ(engine.monitor(), nullptr);
  EXPECT_FALSE(engine.ExecuteSql("select b.name from sys.baskets as b").ok());
}

TEST(SysStreams, HistoryIsBounded) {
  EngineOptions opts = Observed();
  opts.monitor_history = 8;
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int)").ok());
  for (int i = 0; i < 50; ++i) {
    engine.simulated_clock()->Advance(1000);
    engine.Drain();
  }
  auto rows = engine.ExecuteSql(
      "select b.name from sys.baskets as b where b.occupancy >= 0");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_LE((*rows)->num_rows(), 8u);
}

// The acceptance dogfood: the engine observes itself. Flooding a basket
// past a threshold makes a continuous query over sys.baskets emit an alert
// tuple through the normal emitter path.
TEST(SysStreams, DogfoodOccupancyAlert) {
  Engine engine(Observed());
  ASSERT_TRUE(engine.ExecuteSql("create basket flooded (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "alert",
      "select b.name, b.occupancy from [select * from sys.baskets] as b "
      "where b.occupancy > 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto sink = std::make_shared<CollectingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, sink).ok());

  // Below threshold: a tick produces no alert.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine.Ingest("flooded", {Value::Int64(i)}).ok());
  }
  engine.simulated_clock()->Advance(2000);
  engine.Drain();
  for (const Row& r : sink->SnapshotRows()) {
    EXPECT_NE(r[0].string_value(), "flooded") << "premature alert";
  }

  // Past threshold: the next tick's sys.baskets row crosses the filter.
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(engine.Ingest("flooded", {Value::Int64(i)}).ok());
  }
  engine.simulated_clock()->Advance(2000);
  engine.Drain();
  bool alerted = false;
  for (const Row& r : sink->TakeRows()) {
    if (r[0].string_value() != "flooded") continue;
    alerted = true;
    EXPECT_EQ(r[1].int64_value(), 10);
  }
  EXPECT_TRUE(alerted) << "no alert tuple for the flooded basket";
}

TEST(SysStreams, ExemptFromOrphanBasketLint) {
  // Nothing drains the sys.* baskets (they are sampled, bounded by
  // construction), so the orphan lint must not flag them.
  Engine engine(Observed());
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_FALSE(report.Has(analysis::DiagCode::kOrphanBasket))
      << report.ToString();
  // A user basket nobody reads still warns.
  ASSERT_TRUE(engine.ExecuteSql("create basket lonely (x int)").ok());
  report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kOrphanBasket))
      << report.ToString();
  EXPECT_EQ(report.ToString().find("sys."), std::string::npos)
      << report.ToString();
}

// --- per-step pipeline profiler ------------------------------------------

EngineOptions Profiled() {
  EngineOptions opts;
  opts.use_wall_clock = false;
  opts.profile_queries = true;
  return opts;
}

TEST(Profiler, SpecializedPipelineSteps) {
  Engine engine(Profiled());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x < 5");
  ASSERT_TRUE(q.ok());
  auto info = engine.GetQuery(*q);
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE((*info)->factory->is_specialized());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Ingest("r", {Value::Int64(i)}).ok());
  }
  engine.Drain();

  auto report = engine.ProfileReport(*q);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("specialized pipeline"), std::string::npos)
      << *report;
  EXPECT_NE(report->find("filter"), std::string::npos) << *report;
  EXPECT_NE(report->find("% fire"), std::string::npos) << *report;

  PipelineProfile::Snapshot snap = (*info)->factory->profile().Snap();
  EXPECT_GE(snap.fires, 1);
  EXPECT_GT(snap.fire_time_ns, 0);
  bool saw_filter = false;
  for (const PipelineProfile::StepSnapshot& s : snap.steps) {
    if (s.label.find("filter") == std::string::npos) continue;
    saw_filter = true;
    EXPECT_GE(s.calls, 1);
    EXPECT_EQ(s.rows_in, 10);
    EXPECT_EQ(s.rows_out, 5);  // x in [0,10) with x < 5
  }
  EXPECT_TRUE(saw_filter);
}

TEST(Profiler, InterpreterFallbackSteps) {
  Engine engine(Profiled());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  // GROUP BY falls back to the tuple interpreter; the profiler must still
  // attribute per-plan-node rows and time.
  auto q = engine.SubmitContinuousQuery(
      "grp", "select x, count(*) from [select * from r] as s group by x");
  ASSERT_TRUE(q.ok());
  auto info = engine.GetQuery(*q);
  ASSERT_TRUE(info.ok());
  ASSERT_FALSE((*info)->factory->is_specialized());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine.Ingest("r", {Value::Int64(i % 2)}).ok());
  }
  engine.Drain();

  auto report = engine.ProfileReport(*q);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("interpreter"), std::string::npos) << *report;
  PipelineProfile::Snapshot snap = (*info)->factory->profile().Snap();
  EXPECT_GE(snap.fires, 1);
  bool saw_called_step = false;
  for (const PipelineProfile::StepSnapshot& s : snap.steps) {
    if (s.calls > 0) saw_called_step = true;
  }
  EXPECT_TRUE(saw_called_step) << *report;
}

TEST(Profiler, ExportedAsLabeledSeries) {
  Engine engine(Profiled());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x < 5");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(engine.Ingest("r", {Value::Int64(1)}).ok());
  engine.Drain();
  std::string text = engine.MetricsText();
  EXPECT_NE(text.find("datacell_profile_fires_total{query=\"sel\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("datacell_profile_step_time_ns_total{query=\"sel\""),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("datacell_profile_step_rows_total{query=\"sel\""),
            std::string::npos)
      << text;
}

TEST(Profiler, RuntimeToggleAndOffByDefault) {
  EngineOptions opts;
  opts.use_wall_clock = false;
  Engine engine(opts);
  EXPECT_FALSE(engine.profiling());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x < 5");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(engine.Ingest("r", {Value::Int64(1)}).ok());
  engine.Drain();
  auto info = engine.GetQuery(*q);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->factory->profile().Snap().fires, 0);  // gated off

  engine.SetProfiling(true);  // flips live factories too
  EXPECT_TRUE(engine.profiling());
  ASSERT_TRUE(engine.Ingest("r", {Value::Int64(2)}).ok());
  engine.Drain();
  EXPECT_GE((*info)->factory->profile().Snap().fires, 1);
}

// Twin engines over an identical workload, one profiled and one not: the
// profiler must be observation-only.
TEST(Profiler, ProfiledEngineEmitsIdenticalResults) {
  EngineOptions plain;
  plain.use_wall_clock = false;
  Engine a(plain);
  Engine b(Profiled());
  auto run = [](Engine& e) {
    ASSERT_TRUE(e.ExecuteSql("create basket r (x int, label string)").ok());
    ASSERT_TRUE(e.SubmitContinuousQuery(
                     "sel",
                     "select x, label from [select * from r] as s "
                     "where s.x > 3 and s.x < 40")
                    .ok());
  };
  run(a);
  run(b);
  auto qa = a.GetQuery(0);
  auto qb = b.GetQuery(0);
  ASSERT_TRUE(qa.ok() && qb.ok());
  auto sink_a = std::make_shared<CollectingSink>();
  auto sink_b = std::make_shared<CollectingSink>();
  ASSERT_TRUE(a.Subscribe(0, sink_a).ok());
  ASSERT_TRUE(b.Subscribe(0, sink_b).ok());
  for (int i = 0; i < 64; ++i) {
    Row row{Value::Int64(i), Value::String("v" + std::to_string(i))};
    ASSERT_TRUE(a.Ingest("r", row).ok());
    ASSERT_TRUE(b.Ingest("r", row).ok());
    a.simulated_clock()->Advance(500);
    b.simulated_clock()->Advance(500);
  }
  a.Drain();
  b.Drain();
  std::vector<Row> ra = sink_a->TakeRows();
  std::vector<Row> rb = sink_b->TakeRows();
  ASSERT_EQ(ra.size(), rb.size());
  ASSERT_GE(ra.size(), 1u);
  for (size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(ra[i].size(), rb[i].size());
    for (size_t c = 0; c < ra[i].size(); ++c) {
      EXPECT_TRUE(ra[i][c] == rb[i][c]) << "row " << i << " col " << c;
    }
  }
  // And the profiled twin actually collected something.
  EXPECT_GE((*b.GetQuery(0))->factory->profile().Snap().fires, 1);
}

// --- trace toggle and metrics prefix filter ------------------------------

TEST(TraceToggle, RingDropsEventsWhileDisabled) {
  TraceRing ring(64);
  ring.RecordInstant("test", "a", 1);
  ring.SetEnabled(false);
  EXPECT_FALSE(ring.enabled());
  ring.RecordInstant("test", "b", 2);
  ring.SetEnabled(true);
  ring.RecordInstant("test", "c", 3);
  std::string json = ring.ToChromeJson();
  EXPECT_NE(json.find("\"a\""), std::string::npos);
  EXPECT_EQ(json.find("\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"c\""), std::string::npos);
}

TEST(TraceToggle, EngineOptionAndRuntimeSwitch) {
  EngineOptions opts;
  opts.use_wall_clock = false;
  opts.trace_capacity = 256;
  opts.trace_enabled = false;
  Engine engine(opts);
  if (engine.trace() == nullptr) GTEST_SKIP() << "built without tracing";
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x < 5");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(engine.Ingest("r", {Value::Int64(1)}).ok());
  engine.Drain();
  EXPECT_EQ(engine.trace()->size(), 0u);
  engine.SetTraceEnabled(true);
  ASSERT_TRUE(engine.Ingest("r", {Value::Int64(2)}).ok());
  engine.Drain();
  EXPECT_GT(engine.trace()->size(), 0u);
}

TEST(MetricsFilter, PrefixSelectsSeries) {
  MetricsRegistry reg;
  reg.GetCounter("datacell_alpha_total")->Inc();
  reg.GetCounter("datacell_beta_total")->Inc();
  reg.GetGauge("datacell_alpha_depth")->Set(3);
  std::string all = reg.PrometheusText();
  EXPECT_NE(all.find("datacell_alpha_total"), std::string::npos);
  EXPECT_NE(all.find("datacell_beta_total"), std::string::npos);
  std::string filtered = reg.PrometheusText("datacell_alpha");
  EXPECT_NE(filtered.find("datacell_alpha_total"), std::string::npos);
  EXPECT_NE(filtered.find("datacell_alpha_depth"), std::string::npos);
  EXPECT_EQ(filtered.find("datacell_beta_total"), std::string::npos);
  // The filtered view stays valid exposition: no dangling TYPE headers.
  EXPECT_EQ(filtered.find("# TYPE datacell_beta_total"), std::string::npos);
  EXPECT_TRUE(reg.PrometheusText("nomatch").empty());
}

TEST(MetricsFilter, EngineMetricsTextPrefix) {
  Engine engine(Observed());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  std::string filtered = engine.MetricsText("datacell_basket");
  EXPECT_NE(filtered.find("datacell_basket_tuples"), std::string::npos);
  EXPECT_EQ(filtered.find("datacell_queries"), std::string::npos);
  // No prefix == the full exposition.
  EXPECT_EQ(engine.MetricsText(""), engine.MetricsText());
}

// A golden list of series every observed engine must export once it has
// run a query: the core engine series plus the monitor's and profiler's.
TEST(MetricsGolden, ObservedEngineSeries) {
  EngineOptions opts = Observed();
  opts.profile_queries = true;
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  // select * projects the arrival ts through, which binds the per-query
  // e2e latency histogram at the emitter.
  auto q = engine.SubmitContinuousQuery(
      "sel", "select * from [select * from r] as s where s.x < 5");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(engine.Ingest("r", {Value::Int64(1)}).ok());
  engine.simulated_clock()->Advance(2000);
  engine.Drain();
  std::string text = engine.MetricsText();
  for (const char* series : {
           "datacell_transition_fires_total",
           "datacell_transition_tuples_total",
           "datacell_transition_fire_latency_us",
           "datacell_basket_tuples",
           "datacell_query_e2e_latency_us",
           "datacell_profile_fires_total",
           "datacell_profile_fire_time_ns_total",
           "datacell_profile_step_time_ns_total",
           "datacell_profile_step_rows_total",
           // The monitor is itself an instrumented transition.
           "transition=\"monitor\"",
           // Its output baskets are wired and gauged like any other.
           "basket=\"sys.baskets\"",
       }) {
    EXPECT_NE(text.find(series), std::string::npos)
        << "missing series " << series;
  }
}

// --- HTTP observability endpoint -----------------------------------------

/// Minimal blocking HTTP/1.0 client: sends one GET, returns the full
/// response (headers + body), or "" on connect failure.
std::string HttpGet(uint16_t port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  std::string req = "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return resp;
}

std::string BodyOf(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(HttpEndpoint, RoutesAndErrors) {
  Engine engine(Observed());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x < 5");
  ASSERT_TRUE(q.ok());
  ObservabilityServer server(&engine);
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_EQ(BodyOf(health), "ok\n");

  std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(BodyOf(metrics).find("datacell_transition_fires_total"),
            std::string::npos);

  // ?prefix= mirrors the \metrics prefix filter.
  std::string filtered = HttpGet(server.port(), "/metrics?prefix=datacell_basket");
  EXPECT_NE(BodyOf(filtered).find("datacell_basket_tuples"),
            std::string::npos);
  EXPECT_EQ(BodyOf(filtered).find("datacell_queries"), std::string::npos);

  std::string queries = HttpGet(server.port(), "/queries");
  EXPECT_NE(queries.find("application/json"), std::string::npos);
  EXPECT_NE(BodyOf(queries).find("\"name\":\"sel\""), std::string::npos)
      << queries;
  EXPECT_NE(BodyOf(queries).find("\"specialized\":true"), std::string::npos);

  std::string trace = HttpGet(server.port(), "/trace");
  EXPECT_NE(trace.find("200 OK"), std::string::npos);
  EXPECT_NE(BodyOf(trace).find("traceEvents"), std::string::npos);

  std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  EXPECT_GE(server.requests(), 6);
  server.Stop();
  EXPECT_FALSE(server.running());
  // After Stop the port no longer answers.
  EXPECT_EQ(HttpGet(server.port(), "/healthz"), "");
}

TEST(HttpEndpoint, StartStopRestart) {
  Engine engine(Observed());
  ObservabilityServer server(&engine);
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_FALSE(server.Start(0).ok());  // already running
  uint16_t first = server.port();
  server.Stop();
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_NE(HttpGet(server.port(), "/healthz"), "");
  (void)first;
}

// The acceptance check: a scrape taken while the scheduler threads run is
// byte-identical to what Engine::MetricsText() returns for the same state.
// Metrics move between the brackets if a fire lands in the window, so
// retry until a quiescent pair brackets the scrape.
TEST(HttpEndpoint, MetricsScrapeMatchesInProcessText) {
  EngineOptions opts;  // wall clock: the threaded scheduler needs it
  opts.idle_tick_us = 200'000;  // keep idle sweeps from racing the brackets
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x < 5");
  ASSERT_TRUE(q.ok());
  ObservabilityServer server(&engine);
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_TRUE(engine.Start(2).ok());
  ASSERT_TRUE(engine.Ingest("r", {Value::Int64(1)}).ok());

  bool matched = false;
  for (int attempt = 0; attempt < 50 && !matched; ++attempt) {
    std::string before = engine.MetricsText();
    std::string scraped = BodyOf(HttpGet(server.port(), "/metrics"));
    std::string after = engine.MetricsText();
    if (before == after) {
      EXPECT_EQ(scraped, before);
      matched = true;
    }
  }
  EXPECT_TRUE(matched) << "metrics never quiesced across 50 attempts";
  engine.Stop();
}

// TSan coverage: scrape every endpoint from several threads while the
// scheduler fires queries and the monitor ticks.
TEST(HttpEndpoint, ConcurrentScrapeWhileRunning) {
  EngineOptions opts;  // wall clock + monitor
  opts.monitor_tick_us = 1000;
  opts.profile_queries = true;
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x < 5");
  ASSERT_TRUE(q.ok());
  auto sink = std::make_shared<CollectingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, sink).ok());
  ObservabilityServer server(&engine);
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_TRUE(engine.Start(2).ok());

  std::atomic<bool> stop{false};
  std::thread producer([&] {
    int i = 0;
    while (!stop.load()) {
      (void)engine.Ingest("r", {Value::Int64(i++ % 10)});
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::vector<std::thread> scrapers;
  const char* targets[] = {"/metrics", "/queries", "/trace", "/healthz"};
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        std::string resp = HttpGet(server.port(), targets[t]);
        EXPECT_NE(resp.find("200 OK"), std::string::npos);
      }
    });
  }
  for (auto& s : scrapers) s.join();
  stop.store(true);
  producer.join();
  engine.Stop();
  server.Stop();
  EXPECT_GE(server.requests(), 100);
  EXPECT_GE(sink->row_count(), 1u);
}

}  // namespace
}  // namespace datacell
