#include <gtest/gtest.h>

#include "core/engine.h"

namespace datacell {
namespace {

EngineOptions FactoringOptions() {
  EngineOptions opts;
  opts.use_wall_clock = false;
  opts.factor_common_subplans = true;
  return opts;
}

constexpr char kHotSql1[] =
    "select x from [select * from r where r.x > 100] as s";
constexpr char kHotSql2[] =
    "select x * 2 as x2 from [select * from r where r.x > 100] as s";
constexpr char kColdSql[] =
    "select x from [select * from r where r.x <= 100] as s";

class SharedSubplanTest : public ::testing::Test {
 protected:
  SharedSubplanTest() : engine_(FactoringOptions()) {
    EXPECT_TRUE(engine_.ExecuteSql("create basket r (x int)").ok());
  }

  std::shared_ptr<CollectingSink> SubmitAndWatch(const std::string& name,
                                                 const std::string& sql) {
    auto q = engine_.SubmitContinuousQuery(name, sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    auto sink = std::make_shared<CollectingSink>();
    EXPECT_TRUE(engine_.Subscribe(*q, sink).ok());
    return sink;
  }

  Engine engine_;
};

TEST_F(SharedSubplanTest, IdenticalPredicatesShareOneGroup) {
  SubmitAndWatch("q1", kHotSql1);
  SubmitAndWatch("q2", kHotSql2);
  EXPECT_EQ(engine_.num_shared_subplans(), 1u);
  SubmitAndWatch("q3", kColdSql);
  EXPECT_EQ(engine_.num_shared_subplans(), 2u);  // different predicate
}

TEST_F(SharedSubplanTest, FactoredQueriesProduceCorrectResults) {
  auto s1 = SubmitAndWatch("q1", kHotSql1);
  auto s2 = SubmitAndWatch("q2", kHotSql2);
  auto s3 = SubmitAndWatch("q3", kColdSql);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(engine_.Ingest("r", {Value::Int64(i)}).ok());
  }
  engine_.Drain();
  EXPECT_EQ(s1->row_count(), 99u);   // 101..199
  EXPECT_EQ(s2->row_count(), 99u);
  EXPECT_EQ(s3->row_count(), 101u);  // 0..100
  // q2's projection really ran over the shared slice.
  auto rows = s2->TakeRows();
  EXPECT_EQ(rows[0][0], Value::Int64(202));
}

TEST_F(SharedSubplanTest, PredicateEvaluatedOnceNotPerQuery) {
  constexpr int kQueries = 5;
  for (int i = 0; i < kQueries; ++i) {
    SubmitAndWatch("q" + std::to_string(i), kHotSql1);
  }
  EXPECT_EQ(engine_.num_shared_subplans(), 1u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine_.Ingest("r", {Value::Int64(i + 200)}).ok());
  }
  engine_.Drain();
  // The stream basket has exactly one reader: the shared filter. Every
  // query factory consumed the pre-filtered group basket instead.
  for (size_t q = 0; q < engine_.num_queries(); ++q) {
    auto info = engine_.GetQuery(q);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ((*info)->factory->query().inputs[0].consume_predicate, nullptr);
  }
}

TEST_F(SharedSubplanTest, TimestampsSurviveTheGroupBasket) {
  auto sink = SubmitAndWatch("q1", kHotSql1);
  engine_.simulated_clock()->SetTime(12345);
  ASSERT_TRUE(engine_.Ingest("r", {Value::Int64(500)}).ok());
  engine_.simulated_clock()->Advance(1000);
  engine_.Drain();
  // The factory sees the original arrival ts through the group basket; the
  // delivered row's trailing ts is the *result* stamp (later).
  auto rows = sink->TakeRows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int64(500));
}

TEST_F(SharedSubplanTest, WindowedQueriesCanShareTheSubplan) {
  auto q = engine_.SubmitContinuousQuery(
      "wagg",
      "select count(*) as c from [select * from r where r.x > 100] as s "
      "window size 10");
  ASSERT_TRUE(q.ok());
  auto sink = std::make_shared<CollectingSink>();
  ASSERT_TRUE(engine_.Subscribe(*q, sink).ok());
  EXPECT_EQ(engine_.num_shared_subplans(), 1u);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(engine_.Ingest("r", {Value::Int64(i)}).ok());
  }
  engine_.Drain();
  // 199 qualifying tuples -> 19 complete tumbling windows of 10.
  ASSERT_EQ(sink->row_count(), 19u);
  EXPECT_EQ(sink->SnapshotRows()[0][0], Value::Int64(10));
}

TEST_F(SharedSubplanTest, DisabledByDefault) {
  EngineOptions opts;
  opts.use_wall_clock = false;
  Engine plain(opts);
  ASSERT_TRUE(plain.ExecuteSql("create basket r (x int)").ok());
  ASSERT_TRUE(plain.SubmitContinuousQuery("q1", kHotSql1).ok());
  ASSERT_TRUE(plain.SubmitContinuousQuery("q2", kHotSql1).ok());
  EXPECT_EQ(plain.num_shared_subplans(), 0u);
}

TEST_F(SharedSubplanTest, ConsumeAllQueriesNotFactored) {
  // Without a predicate there is no common work to factor.
  SubmitAndWatch("q1", "select x from [select * from r] as s");
  EXPECT_EQ(engine_.num_shared_subplans(), 0u);
}

}  // namespace
}  // namespace datacell
