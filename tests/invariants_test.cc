// Negative tests for the debug-build correctness tooling: each test
// deliberately violates a Petri-net invariant or the lock hierarchy and
// expects the process to abort with a diagnostic. These only exercise
// anything when the engine is built with -DDATACELL_DEBUG_CHECKS=ON; in a
// release configuration the checks (and the violation hooks) do not exist,
// so the suite reduces to a single skip marker.

#include <gtest/gtest.h>

#include <mutex>

#include "common/lock_order.h"
#include "core/basket.h"
#include "core/factory.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace datacell {
namespace {

#if DATACELL_DEBUG_CHECKS_ENABLED

Schema UserSchema() { return Schema({{"x", DataType::kInt64}}); }

BasketPtr MakeBasket(const std::string& name = "r") {
  return std::make_shared<Basket>(Basket::MakeBasketTable(name, UserSchema()));
}

// --- Petri-net place invariants (basket) ---------------------------------

TEST(BasketInvariantDeathTest, FlowConservationViolationAborts) {
  auto b = MakeBasket();
  ASSERT_TRUE(b->Append({Value::Int64(1)}, 10).ok());
  ASSERT_TRUE(b->Append({Value::Int64(2)}, 11).ok());
  // appended != consumed + shed + occupancy must be unrepresentable; skewing
  // the counter is the only way to get there, and the checker must catch it.
  EXPECT_DEATH(b->TestOnlyCorruptAccounting(1), "DC_CHECK failed");
}

TEST(BasketInvariantDeathTest, FlowConservationViolationAbortsNegativeSkew) {
  auto b = MakeBasket();
  ASSERT_TRUE(b->Append({Value::Int64(1)}, 10).ok());
  EXPECT_DEATH(b->TestOnlyCorruptAccounting(-1), "DC_CHECK failed");
}

TEST(BasketInvariantDeathTest, WatermarkPastEndAborts) {
  auto b = MakeBasket();
  size_t r = b->RegisterReader();
  ASSERT_TRUE(b->Append({Value::Int64(1)}, 10).ok());
  // A reader can never have seen tuples that do not exist yet.
  EXPECT_DEATH(b->TestOnlyCorruptWatermark(r), "DC_CHECK failed");
}

TEST(BasketInvariantTest, NormalTrafficSatisfiesInvariants) {
  // Positive control: ordinary produce/consume/shed traffic runs with the
  // checks live and never trips them.
  auto b = MakeBasket();
  b->SetCapacity(4, Basket::DropPolicy::kDropOldest);
  size_t r = b->RegisterReader();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(b->Append({Value::Int64(i)}, i).ok());
  }
  EXPECT_EQ(b->size(), 4u);
  EXPECT_GT(b->total_shed(), 0);
  (void)b->ReadNewFor(r);
  b->TrimConsumed();
  (void)b->DrainAll();
}

TEST(BasketInvariantTest, StolenBufferTrafficSatisfiesInvariants) {
  // The zero-copy path: columnar ingest swaps buffers in, stealing drains
  // swap them out. Flow conservation (appended == consumed + shed +
  // occupancy) is re-verified inside every call with the checks live.
  auto b = MakeBasket();
  size_t r = b->RegisterReader();
  for (int round = 0; round < 5; ++round) {
    ColumnBatch batch(UserSchema());
    for (int i = 0; i < 8; ++i) {
      batch.column(0).AppendInt64(round * 8 + i);
    }
    ASSERT_TRUE(b->AppendColumns(std::move(batch), round).ok());
    // Single registered reader: DrainNewFor takes the stealing fast path.
    TablePtr drained = b->DrainNewFor(r);
    EXPECT_EQ(drained->num_rows(), 8u);
    EXPECT_EQ(b->size(), 0u);
  }
  EXPECT_EQ(b->total_appended(), 40);
  EXPECT_EQ(b->total_consumed(), 40);
  // Move-append from a factory-style result table, then a stealing DrainAll.
  Table result("res", b->schema());
  result.column(0)->AppendInt64(99);
  result.column(1)->AppendInt64(7);  // ts column
  ASSERT_TRUE(b->AppendWithTsMove(std::move(result)).ok());
  Table scratch("scratch", b->schema());
  b->DrainAllInto(&scratch);
  EXPECT_EQ(scratch.num_rows(), 1u);
  EXPECT_EQ(b->total_appended(), b->total_consumed() + b->total_shed());
}

TEST(BasketInvariantDeathTest, CorruptionStillAbortsAfterStealingDrain) {
  // Stealing drains must leave the accounting in a state where corruption
  // is still detected — the invariant machinery survives the buffer swap.
  auto b = MakeBasket();
  ColumnBatch batch(UserSchema());
  batch.column(0).AppendInt64(1);
  ASSERT_TRUE(b->AppendColumns(std::move(batch), 10).ok());
  (void)b->DrainAll();
  ASSERT_TRUE(b->Append({Value::Int64(2)}, 11).ok());
  EXPECT_DEATH(b->TestOnlyCorruptAccounting(1), "DC_CHECK failed");
}

// --- factory exactly-once firing -----------------------------------------

class FactoryInvariantDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    input_table_ = Basket::MakeBasketTable("r", UserSchema());
    ASSERT_TRUE(
        catalog_.RegisterRelation(input_table_, RelationKind::kBasket).ok());
    input_ = std::make_shared<Basket>(input_table_);
  }

  sql::CompiledQuery Compile(const std::string& sql) {
    auto stmt = sql::ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    sql::Planner planner(&catalog_);
    auto q = planner.CompileSelect(*stmt->select);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(*q);
  }

  TablePtr input_table_;
  BasketPtr input_;
  Catalog catalog_;
  SimulatedClock clock_;
};

TEST_F(FactoryInvariantDeathTest, ConcurrentFireAborts) {
  auto q = Compile("select x from [select * from r] as s");
  auto output = std::make_shared<Basket>(
      Basket::MakeBasketTable("out", q.output_schema));
  auto f = Factory::Create("f", q, {input_}, output, {}, &clock_, {});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(input_->Append({Value::Int64(1)}, clock_.Now()).ok());
  // Simulate a broken scheduler claim protocol: a second Fire entering while
  // one is already in flight would consume the same input tokens twice.
  (*f)->TestOnlyBeginFire();
  EXPECT_DEATH((void)(*f)->Fire(), "DC_CHECK failed");
}

TEST_F(FactoryInvariantDeathTest, SequentialFiresAreFine) {
  auto q = Compile("select x from [select * from r] as s");
  auto output = std::make_shared<Basket>(
      Basket::MakeBasketTable("out", q.output_schema));
  auto f = Factory::Create("f", q, {input_}, output, {}, &clock_, {});
  ASSERT_TRUE(f.ok());
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(input_->Append({Value::Int64(round)}, clock_.Now()).ok());
    auto n = (*f)->Fire();
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 1);
  }
  EXPECT_EQ(output->size(), 3u);
}

// --- lock-order checker ---------------------------------------------------

TEST(LockOrderDeathTest, InvertedAcquisitionAborts) {
  // Two dummy "locks": establish A -> B, then acquire in the reverse order.
  // The checker must abort on the first inversion even though no actual
  // deadlock interleaving occurred.
  EXPECT_DEATH(
      {
        lockorder::ResetForTest();
        int lock_a = 0;
        int lock_b = 0;
        lockorder::NoteAcquire(&lock_a, "ord_a", "a");
        lockorder::NoteAcquire(&lock_b, "ord_b", "b");
        lockorder::NoteRelease(&lock_b);
        lockorder::NoteRelease(&lock_a);
        lockorder::NoteAcquire(&lock_b, "ord_b", "b");
        lockorder::NoteAcquire(&lock_a, "ord_a", "a");  // closes the cycle
      },
      "potential deadlock");
}

TEST(LockOrderDeathTest, TransitiveInversionAborts) {
  // A -> B and B -> C are recorded separately; acquiring A while holding C
  // inverts the *transitive* order, which the BFS must find.
  EXPECT_DEATH(
      {
        lockorder::ResetForTest();
        int a = 0;
        int b = 0;
        int c = 0;
        lockorder::NoteAcquire(&a, "tr_a", "a");
        lockorder::NoteAcquire(&b, "tr_b", "b");
        lockorder::NoteRelease(&b);
        lockorder::NoteRelease(&a);
        lockorder::NoteAcquire(&b, "tr_b", "b");
        lockorder::NoteAcquire(&c, "tr_c", "c");
        lockorder::NoteRelease(&c);
        lockorder::NoteRelease(&b);
        lockorder::NoteAcquire(&c, "tr_c", "c");
        lockorder::NoteAcquire(&a, "tr_a", "a");  // C ~> A inverts A ->..-> C
      },
      "potential deadlock");
}

TEST(LockOrderDeathTest, SameClassNestingAborts) {
  // The engine's hierarchy forbids holding two locks of one class at once
  // (e.g. two baskets); the checker treats it as an immediate error rather
  // than waiting for a cycle between instances.
  EXPECT_DEATH(
      {
        lockorder::ResetForTest();
        int one = 0;
        int two = 0;
        lockorder::NoteAcquire(&one, "same_cls", "one");
        lockorder::NoteAcquire(&two, "same_cls", "two");
      },
      "same-class nesting");
}

TEST(LockOrderDeathTest, ReleasingUnheldLockAborts) {
  EXPECT_DEATH(
      {
        lockorder::ResetForTest();
        int lone = 0;
        lockorder::NoteRelease(&lone);
      },
      "not held");
}

TEST(LockOrderTest, ConsistentOrderRecordsEdgesWithoutAborting) {
  lockorder::ResetForTest();
  std::mutex ma;
  std::mutex mb;
  for (int round = 0; round < 3; ++round) {
    std::lock_guard<std::mutex> la(ma);
    DC_LOCK_ORDER(&ma, "edge_outer", "outer");
    std::lock_guard<std::mutex> lb(mb);
    DC_LOCK_ORDER(&mb, "edge_inner", "inner");
  }
  // One order edge (outer -> inner), recorded once, no matter how often the
  // same discipline repeats.
  EXPECT_EQ(lockorder::EdgeCount(), 1u);
  lockorder::ResetForTest();
  EXPECT_EQ(lockorder::EdgeCount(), 0u);
}

TEST(LockOrderTest, OutOfOrderReleaseIsLegal) {
  // std::unique_lock allows releasing in any order; the checker must track
  // the held set, not enforce stack discipline on release.
  lockorder::ResetForTest();
  int a = 0, b = 0;
  lockorder::NoteAcquire(&a, "rel_a", "a");
  lockorder::NoteAcquire(&b, "rel_b", "b");
  lockorder::NoteRelease(&a);  // outer first
  lockorder::NoteRelease(&b);
  lockorder::NoteAcquire(&b, "rel_b", "b");  // b alone: no constraint
  lockorder::NoteRelease(&b);
  lockorder::ResetForTest();
}

#else  // !DATACELL_DEBUG_CHECKS_ENABLED

TEST(InvariantsTest, DebugChecksCompiledOut) {
  GTEST_SKIP() << "built with DATACELL_DEBUG_CHECKS=OFF; invariant and "
                  "lock-order checks do not exist in this configuration";
}

#endif  // DATACELL_DEBUG_CHECKS_ENABLED

}  // namespace
}  // namespace datacell
