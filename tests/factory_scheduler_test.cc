#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/scheduler.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace datacell {
namespace {

class FactoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    user_schema_ = Schema({{"x", DataType::kInt64}});
    input_table_ = Basket::MakeBasketTable("r", user_schema_);
    ASSERT_TRUE(
        catalog_.RegisterRelation(input_table_, RelationKind::kBasket).ok());
    input_ = std::make_shared<Basket>(input_table_);
  }

  sql::CompiledQuery Compile(const std::string& sql) {
    auto stmt = sql::ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    sql::Planner planner(&catalog_);
    auto q = planner.CompileSelect(*stmt->select);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(*q);
  }

  BasketPtr MakeOutput(const sql::CompiledQuery& q) {
    return std::make_shared<Basket>(
        Basket::MakeBasketTable("out", q.output_schema));
  }

  Status Ingest(int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      DC_RETURN_NOT_OK(input_->Append({Value::Int64(i)}, clock_.Now()));
      clock_.Advance(1);
    }
    return Status::OK();
  }

  Schema user_schema_;
  TablePtr input_table_;
  BasketPtr input_;
  Catalog catalog_;
  SimulatedClock clock_;
};

TEST_F(FactoryTest, SeparateStrategyDrainsAll) {
  auto q = Compile("select x from [select * from r] as s where s.x >= 5");
  auto f = Factory::Create("f", q, {input_}, MakeOutput(q), {}, &clock_, {});
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE((*f)->Ready());
  ASSERT_TRUE(Ingest(0, 10).ok());
  EXPECT_TRUE((*f)->Ready());
  auto n = (*f)->Fire();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 10);  // all tuples consumed
  EXPECT_EQ(input_->size(), 0u);
  EXPECT_EQ((*f)->output()->size(), 5u);  // 5..9 qualified
  EXPECT_EQ((*f)->results_emitted(), 5);
  EXPECT_FALSE((*f)->Ready());
}

TEST_F(FactoryTest, ConsumePredicateLeavesNonMatching) {
  // q2 of §2.6: the basket expression removes only the referenced tuples.
  auto q = Compile("select x from [select * from r where r.x < 3] as s");
  FactoryOptions opts;
  opts.strategy = ProcessingStrategy::kSeparateBaskets;
  auto f = Factory::Create("f", q, {input_}, MakeOutput(q), {}, &clock_, opts);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(Ingest(0, 6).ok());
  ASSERT_TRUE((*f)->Fire().ok());
  EXPECT_EQ(input_->size(), 3u);  // 3,4,5 remain (partially emptied basket)
  EXPECT_EQ((*f)->output()->size(), 3u);
}

TEST_F(FactoryTest, SharedStrategyLeavesTuplesForOtherReaders) {
  auto q1 = Compile("select x from [select * from r] as s");
  auto q2 = Compile("select x from [select * from r] as s");
  FactoryOptions opts;
  opts.strategy = ProcessingStrategy::kSharedBaskets;
  auto f1 = Factory::Create("f1", q1, {input_}, MakeOutput(q1), {}, &clock_, opts);
  auto f2 = Factory::Create("f2", q2, {input_}, MakeOutput(q2), {}, &clock_, opts);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE(Ingest(0, 4).ok());
  ASSERT_TRUE((*f1)->Fire().ok());
  // f1 saw everything but f2 has not: tuples must still be there.
  EXPECT_EQ(input_->size(), 4u);
  EXPECT_TRUE((*f2)->Ready());
  ASSERT_TRUE((*f2)->Fire().ok());
  EXPECT_EQ(input_->size(), 0u);  // everyone saw them -> trimmed
  EXPECT_EQ((*f1)->output()->size(), 4u);
  EXPECT_EQ((*f2)->output()->size(), 4u);
}

TEST_F(FactoryTest, ChainedStrategyForwardsNonMatching) {
  // §2.5: q1 takes x < 3 and hands the rest to q2 (x >= 3 disjoint range).
  auto q1 = Compile("select x from [select * from r where r.x < 3] as s");
  auto q2 = Compile("select x from [select * from r where r.x >= 3] as s");
  FactoryOptions opts;
  opts.strategy = ProcessingStrategy::kChained;
  auto link = std::make_shared<Basket>(Basket::MakeBasketTable("c2", user_schema_));
  auto f1 = Factory::Create("f1", q1, {input_}, MakeOutput(q1), {}, &clock_, opts);
  auto f2 = Factory::Create("f2", q2, {link}, MakeOutput(q2), {}, &clock_, opts);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  (*f1)->SetPassthrough(0, link);
  ASSERT_TRUE(Ingest(0, 6).ok());
  ASSERT_TRUE((*f1)->Fire().ok());
  EXPECT_EQ((*f1)->output()->size(), 3u);  // 0,1,2
  EXPECT_EQ(input_->size(), 0u);
  EXPECT_EQ(link->size(), 3u);  // 3,4,5 forwarded, shrunk input for q2
  ASSERT_TRUE((*f2)->Fire().ok());
  EXPECT_EQ((*f2)->output()->size(), 3u);
  EXPECT_EQ(link->size(), 0u);
}

TEST_F(FactoryTest, ThresholdGatesFiring) {
  auto q = Compile("select x from [select * from r] as s threshold 5");
  auto f = Factory::Create("f", q, {input_}, MakeOutput(q), {}, &clock_, {});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(Ingest(0, 4).ok());
  EXPECT_FALSE((*f)->Ready());
  EXPECT_EQ(*(*f)->Fire(), 0);  // firing while not ready is a no-op
  ASSERT_TRUE(Ingest(4, 5).ok());
  EXPECT_TRUE((*f)->Ready());
  EXPECT_EQ(*(*f)->Fire(), 5);
}

TEST_F(FactoryTest, WindowedFactoryBuffersAcrossFirings) {
  auto q = Compile(
      "select sum(x) as s from [select * from r] as w window size 4");
  auto f = Factory::Create("f", q, {input_}, MakeOutput(q), {}, &clock_, {});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(Ingest(0, 3).ok());
  ASSERT_TRUE((*f)->Fire().ok());
  EXPECT_EQ((*f)->output()->size(), 0u);  // window not complete yet
  ASSERT_TRUE(Ingest(3, 5).ok());
  ASSERT_TRUE((*f)->Fire().ok());
  ASSERT_EQ((*f)->output()->size(), 1u);
  EXPECT_EQ((*f)->output()->PeekSnapshot()->GetRow(0)[0],
            Value::Double(0 + 1 + 2 + 3));
}

TEST_F(FactoryTest, CreateValidations) {
  auto q = Compile("select x from [select * from r] as s");
  EXPECT_FALSE(Factory::Create("f", q, {}, MakeOutput(q), {}, &clock_, {}).ok());
  EXPECT_FALSE(Factory::Create("f", q, {input_}, nullptr, {}, &clock_, {}).ok());
  auto one_time = Compile("select * from r");
  EXPECT_FALSE(
      Factory::Create("f", one_time, {input_}, MakeOutput(q), {}, &clock_, {})
          .ok());
}

TEST_F(FactoryTest, ExplainPlanIsMal) {
  auto q = Compile("select x from [select * from r] as s where s.x > 1");
  auto f = Factory::Create("f", q, {input_}, MakeOutput(q), {}, &clock_, {});
  ASSERT_TRUE(f.ok());
  EXPECT_NE((*f)->ExplainPlan().find("algebra.select"), std::string::npos);
}

TEST_F(FactoryTest, StatsAccumulate) {
  auto q = Compile("select x from [select * from r] as s");
  auto f = Factory::Create("f", q, {input_}, MakeOutput(q), {}, &clock_, {});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(Ingest(0, 3).ok());
  ASSERT_TRUE((*f)->Fire().ok());
  ASSERT_TRUE(Ingest(3, 7).ok());
  ASSERT_TRUE((*f)->Fire().ok());
  EXPECT_EQ((*f)->runs(), 2);
  EXPECT_EQ((*f)->tuples_processed(), 7);
}

// --- Scheduler ------------------------------------------------------------

/// Toy transition moving tokens between two counters.
class CounterTransition : public Transition {
 public:
  CounterTransition(std::string name, std::atomic<int>* in,
                    std::atomic<int>* out, int priority = 0)
      : Transition(std::move(name), TransitionKind::kFactory, priority),
        in_(in),
        out_(out) {}
  bool Ready() const override { return in_->load() > 0; }
  int64_t Backlog() const override { return in_->load(); }
  Result<int64_t> Fire() override {
    if (in_->load() <= 0) return 0;
    in_->fetch_sub(1);
    out_->fetch_add(1);
    order_.push_back(name());  // only touched from the scheduler thread
    RecordRun(1, 0);
    return 1;
  }
  static std::vector<std::string>& FiringLog() { return order_; }

 private:
  static std::vector<std::string> order_;
  std::atomic<int>* in_;
  std::atomic<int>* out_;
};
std::vector<std::string> CounterTransition::order_;

TEST(SchedulerTest, StepFiresReadyTransitions) {
  Scheduler sched;
  std::atomic<int> a{2}, b{0}, c{0};
  sched.AddTransition(std::make_shared<CounterTransition>("ab", &a, &b));
  sched.AddTransition(std::make_shared<CounterTransition>("bc", &b, &c));
  // Sweep 1: ab fires (a:1 b:1), then bc fires (b:0 c:1).
  EXPECT_EQ(sched.Step(), 2);
  int64_t total = sched.RunUntilQuiescent();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(c, 2);
  EXPECT_GE(total, 2);
  EXPECT_GE(sched.sweeps(), 2);
}

TEST(SchedulerTest, PriorityPolicyOrders) {
  CounterTransition::FiringLog().clear();
  Scheduler sched(SchedulingPolicy::kPriority);
  std::atomic<int> lo_in{1}, lo_out{0}, hi_in{1}, hi_out{0};
  sched.AddTransition(
      std::make_shared<CounterTransition>("low", &lo_in, &lo_out, 1));
  sched.AddTransition(
      std::make_shared<CounterTransition>("high", &hi_in, &hi_out, 9));
  sched.Step();
  ASSERT_GE(CounterTransition::FiringLog().size(), 2u);
  EXPECT_EQ(CounterTransition::FiringLog()[0], "high");
  EXPECT_EQ(CounterTransition::FiringLog()[1], "low");
}

TEST(SchedulerTest, RoundRobinRotatesStart) {
  CounterTransition::FiringLog().clear();
  Scheduler sched(SchedulingPolicy::kRoundRobin);
  std::atomic<int> a_in{5}, a_out{0}, b_in{5}, b_out{0};
  sched.AddTransition(std::make_shared<CounterTransition>("A", &a_in, &a_out));
  sched.AddTransition(std::make_shared<CounterTransition>("B", &b_in, &b_out));
  sched.Step();
  sched.Step();
  const auto& log = CounterTransition::FiringLog();
  ASSERT_GE(log.size(), 4u);
  // Sweep 1 starts at A, sweep 2 starts at B.
  EXPECT_EQ(log[0], "A");
  EXPECT_EQ(log[2], "B");
}

TEST(SchedulerTest, AdaptivePolicyDrainsBiggestBacklogFirst) {
  CounterTransition::FiringLog().clear();
  Scheduler sched(SchedulingPolicy::kAdaptive);
  std::atomic<int> small_in{1}, small_out{0}, big_in{50}, big_out{0};
  // Insertion order favours "small"; the adaptive policy must reorder.
  sched.AddTransition(
      std::make_shared<CounterTransition>("small", &small_in, &small_out));
  sched.AddTransition(
      std::make_shared<CounterTransition>("big", &big_in, &big_out));
  sched.Step();
  ASSERT_GE(CounterTransition::FiringLog().size(), 2u);
  EXPECT_EQ(CounterTransition::FiringLog()[0], "big");
  // Once the backlogs equalise the ordering is stable-by-insertion again.
  sched.RunUntilQuiescent();
  EXPECT_EQ(big_out.load(), 50);
  EXPECT_EQ(small_out.load(), 1);
}

TEST(SchedulerTest, FactoryBacklogReflectsAvailability) {
  // Backlog of a factory equals the least available input (Petri enabling).
  Schema user_schema({{"x", DataType::kInt64}});
  Catalog catalog;
  TablePtr table = Basket::MakeBasketTable("r", user_schema);
  ASSERT_TRUE(catalog.RegisterRelation(table, RelationKind::kBasket).ok());
  auto basket = std::make_shared<Basket>(table);
  auto stmt = sql::ParseStatement("select x from [select * from r] as s");
  ASSERT_TRUE(stmt.ok());
  sql::Planner planner(&catalog);
  auto q = planner.CompileSelect(*stmt->select);
  ASSERT_TRUE(q.ok());
  SimulatedClock clock;
  auto out = std::make_shared<Basket>(
      Basket::MakeBasketTable("out", q->output_schema));
  auto f = Factory::Create("f", *q, {basket}, out, {}, &clock, {});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->Backlog(), 0);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(basket->Append({Value::Int64(i)}, 0).ok());
  }
  EXPECT_EQ((*f)->Backlog(), 7);
}

class FailingTransition : public Transition {
 public:
  FailingTransition() : Transition("fail", TransitionKind::kFactory) {}
  bool Ready() const override { return true; }
  Result<int64_t> Fire() override { return Status::Internal("kaboom"); }
};

TEST(SchedulerTest, ErrorsRecordedNotFatal) {
  Scheduler sched;
  std::atomic<int> a{1}, b{0};
  sched.AddTransition(std::make_shared<FailingTransition>());
  sched.AddTransition(std::make_shared<CounterTransition>("ok", &a, &b));
  sched.Step();
  EXPECT_EQ(b, 1);  // the healthy transition still ran
  EXPECT_GE(sched.error_count(), 1);
  EXPECT_TRUE(sched.last_error().IsInternal());
}

TEST(SchedulerTest, StartStopThreaded) {
  Scheduler sched;
  std::atomic<int> a{1000}, b{0};
  sched.AddTransition(std::make_shared<CounterTransition>("ab", &a, &b));
  ASSERT_TRUE(sched.Start().ok());
  EXPECT_TRUE(sched.running());
  EXPECT_FALSE(sched.Start().ok());  // double start rejected
  // Wait for the loop to drain the counter.
  for (int i = 0; i < 2000 && b < 1000; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sched.Stop();
  EXPECT_FALSE(sched.running());
  EXPECT_EQ(b, 1000);
  sched.Stop();  // idempotent
}

}  // namespace
}  // namespace datacell
