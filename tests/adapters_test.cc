#include <gtest/gtest.h>

#include <thread>

#include "adapters/channel.h"
#include "adapters/csv.h"
#include "adapters/generator.h"
#include "adapters/replayer.h"
#include "adapters/sink.h"

namespace datacell {
namespace {

// --- Channel -------------------------------------------------------------

TEST(ChannelTest, PushPopFifo) {
  Channel c;
  c.Push("a");
  c.Push("b");
  std::string out;
  ASSERT_TRUE(c.TryPop(&out));
  EXPECT_EQ(out, "a");
  ASSERT_TRUE(c.TryPop(&out));
  EXPECT_EQ(out, "b");
  EXPECT_FALSE(c.TryPop(&out));
  EXPECT_EQ(c.total_pushed(), 2);
}

TEST(ChannelTest, DrainUpTo) {
  Channel c;
  for (int i = 0; i < 5; ++i) c.Push(std::to_string(i));
  auto batch = c.DrainUpTo(3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[2], "2");
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.DrainUpTo(100).size(), 2u);
}

TEST(ChannelTest, CapacityDropsOldest) {
  Channel c(2);
  c.Push("1");
  c.Push("2");
  c.Push("3");  // drops "1"
  EXPECT_EQ(c.total_dropped(), 1);
  std::string out;
  ASSERT_TRUE(c.TryPop(&out));
  EXPECT_EQ(out, "2");
}

TEST(ChannelTest, PushBatch) {
  Channel c;
  c.PushBatch({"x", "y", "z"});
  EXPECT_EQ(c.size(), 3u);
}

TEST(ChannelTest, PopBlockingTimesOut) {
  Channel c;
  std::string out;
  EXPECT_FALSE(c.PopBlocking(&out, 1000));
}

TEST(ChannelTest, PopBlockingWakesOnPush) {
  Channel c;
  std::string out;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    c.Push("wake");
  });
  EXPECT_TRUE(c.PopBlocking(&out, 5 * 1000 * 1000));
  EXPECT_EQ(out, "wake");
  producer.join();
}

TEST(ChannelTest, CloseUnblocks) {
  Channel c;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    c.Close();
  });
  std::string out;
  EXPECT_FALSE(c.PopBlocking(&out, 5 * 1000 * 1000));
  EXPECT_TRUE(c.closed());
  closer.join();
}

// --- CSV -------------------------------------------------------------------

TEST(CsvTest, FormatBasicRow) {
  Row row{Value::Int64(1), Value::String("abc"), Value::Double(2.5)};
  EXPECT_EQ(FormatCsvRow(row), "1,abc,2.5");
}

TEST(CsvTest, NullIsEmptyField) {
  Row row{Value::Int64(1), Value::Null(), Value::Int64(3)};
  EXPECT_EQ(FormatCsvRow(row), "1,,3");
}

TEST(CsvTest, QuotingRoundTrip) {
  Schema schema({{"s", DataType::kString}});
  for (const std::string& s :
       {std::string("with,comma"), std::string("with\"quote"),
        std::string("multi\nline"), std::string("")}) {
    std::string line = FormatCsvRow({Value::String(s)});
    auto row = ParseCsvRow(line, schema);
    ASSERT_TRUE(row.ok()) << line;
    EXPECT_EQ((*row)[0], Value::String(s)) << line;
  }
}

TEST(CsvTest, ParseTypedRow) {
  Schema schema({{"a", DataType::kInt64},
                 {"b", DataType::kDouble},
                 {"c", DataType::kString},
                 {"d", DataType::kBool}});
  auto row = ParseCsvRow("7,0.5,hello,true", schema);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0], Value::Int64(7));
  EXPECT_EQ((*row)[1], Value::Double(0.5));
  EXPECT_EQ((*row)[2], Value::String("hello"));
  EXPECT_EQ((*row)[3], Value::Bool(true));
}

TEST(CsvTest, ParseNulls) {
  Schema schema({{"a", DataType::kInt64}, {"s", DataType::kString}});
  auto row = ParseCsvRow(",", schema);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE((*row)[0].is_null());
  EXPECT_TRUE((*row)[1].is_null());  // unquoted empty string field = null
  auto row2 = ParseCsvRow(",\"\"", schema);
  ASSERT_TRUE(row2.ok());
  EXPECT_EQ((*row2)[1], Value::String(""));  // quoted empty = empty string
}

TEST(CsvTest, ArityAndTypeValidation) {
  Schema schema({{"a", DataType::kInt64}});
  EXPECT_FALSE(ParseCsvRow("1,2", schema).ok());
  EXPECT_FALSE(ParseCsvRow("xyz", schema).ok());
  EXPECT_FALSE(ParseCsvRow("\"unterminated", schema).ok());
}

TEST(CsvTest, TimestampColumn) {
  Schema schema({{"ts", DataType::kTimestamp}});
  auto row = ParseCsvRow("123456789", schema);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE((*row)[0].is_timestamp());
}

// --- generators --------------------------------------------------------------

TEST(GeneratorTest, UniformDeterministic) {
  std::vector<ColumnSpec> cols(2);
  cols[0].type = DataType::kInt64;
  cols[0].int_min = 0;
  cols[0].int_max = 100;
  cols[1].type = DataType::kDouble;
  UniformRowGenerator g1(cols, 7);
  UniformRowGenerator g2(cols, 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(g1.Next(), g2.Next());
  }
}

TEST(GeneratorTest, RespectsRangesAndSchema) {
  std::vector<ColumnSpec> cols(3);
  cols[0].type = DataType::kInt64;
  cols[0].int_min = 10;
  cols[0].int_max = 20;
  cols[1].type = DataType::kString;
  cols[1].cardinality = 3;
  cols[2].type = DataType::kBool;
  UniformRowGenerator gen(cols, 1);
  Schema schema = gen.MakeSchema();
  EXPECT_EQ(schema.num_fields(), 3u);
  EXPECT_EQ(schema.field(1).type, DataType::kString);
  for (int i = 0; i < 200; ++i) {
    Row row = gen.Next();
    int64_t a = row[0].int64_value();
    EXPECT_GE(a, 10);
    EXPECT_LE(a, 20);
    const std::string& s = row[1].string_value();
    EXPECT_TRUE(s == "s0" || s == "s1" || s == "s2") << s;
  }
}

TEST(GeneratorTest, OutOfOrderPreservesMultiset) {
  std::vector<ColumnSpec> cols(1);
  cols[0].type = DataType::kInt64;
  cols[0].int_min = 0;
  cols[0].int_max = 1000000;
  auto inner = std::make_unique<UniformRowGenerator>(cols, 5);
  UniformRowGenerator reference(cols, 5);
  OutOfOrderGenerator ooo(std::move(inner), 8, 0.5, 99);
  std::multiset<int64_t> got, want;
  // Drawing n rows from the shuffler covers the first n+displacement inner
  // rows minus the buffered tail; compare prefixes conservatively.
  constexpr int kN = 100;
  std::vector<int64_t> ordered;
  for (int i = 0; i < kN + 8; ++i) {
    ordered.push_back(reference.Next()[0].int64_value());
  }
  std::vector<int64_t> shuffled;
  for (int i = 0; i < kN; ++i) {
    shuffled.push_back(ooo.Next()[0].int64_value());
  }
  // Every emitted value must appear in the ordered prefix...
  std::multiset<int64_t> prefix(ordered.begin(), ordered.end());
  bool disorder_seen = false;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(prefix.count(shuffled[i]) > 0);
    prefix.erase(prefix.find(shuffled[i]));
    if (shuffled[i] != ordered[i]) disorder_seen = true;
  }
  // ...and with 50% disorder some displacement must actually happen.
  EXPECT_TRUE(disorder_seen);
}

TEST(GeneratorTest, OutOfOrderZeroDisplacementIsIdentity) {
  std::vector<ColumnSpec> cols(1);
  cols[0].type = DataType::kInt64;
  auto inner = std::make_unique<UniformRowGenerator>(cols, 5);
  UniformRowGenerator reference(cols, 5);
  OutOfOrderGenerator ooo(std::move(inner), 0, 1.0, 1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ooo.Next(), reference.Next());
  }
}

// --- sinks -------------------------------------------------------------------

Table OneRowTable() {
  Table t("", Schema({{"x", DataType::kInt64}}));
  EXPECT_TRUE(t.AppendRow({Value::Int64(42)}).ok());
  return t;
}

TEST(SinkTest, CollectingSink) {
  CollectingSink sink;
  Table t = OneRowTable();
  sink.OnBatch(t, 1);
  sink.OnBatch(t, 2);
  EXPECT_EQ(sink.row_count(), 2u);
  EXPECT_EQ(sink.batch_count(), 2u);
  auto rows = sink.TakeRows();
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(sink.row_count(), 0u);  // take drains
}

TEST(SinkTest, CountingSink) {
  CountingSink sink;
  Table t = OneRowTable();
  sink.OnBatch(t, 55);
  EXPECT_EQ(sink.rows(), 1);
  EXPECT_EQ(sink.batches(), 1);
  EXPECT_EQ(sink.last_delivery_us(), 55);
}

TEST(SinkTest, CallbackSink) {
  int called = 0;
  CallbackSink sink([&](const Table& batch, Timestamp ts) {
    ++called;
    EXPECT_EQ(batch.num_rows(), 1u);
    EXPECT_EQ(ts, 9);
  });
  Table t = OneRowTable();
  sink.OnBatch(t, 9);
  EXPECT_EQ(called, 1);
}

TEST(SinkTest, ChannelSinkWritesCsv) {
  Channel c;
  ChannelSink sink(&c);
  Table t = OneRowTable();
  sink.OnBatch(t, 0);
  std::string line;
  ASSERT_TRUE(c.TryPop(&line));
  EXPECT_EQ(line, "42");
}

TEST(SinkTest, LatencyTrackingSink) {
  // Rows: (payload, arrival_ts, delivery_ts-last-col).
  Table t("", Schema({{"x", DataType::kInt64},
                      {"ts", DataType::kTimestamp},
                      {"out_ts", DataType::kTimestamp}}));
  ASSERT_TRUE(t.AppendRow({Value::Int64(1), Value::TimestampVal(100),
                           Value::TimestampVal(0)})
                  .ok());
  ASSERT_TRUE(t.AppendRow({Value::Int64(2), Value::TimestampVal(250),
                           Value::TimestampVal(0)})
                  .ok());
  LatencyTrackingSink sink(/*ts_column=*/1);
  sink.OnBatch(t, /*now_us=*/300);
  EXPECT_EQ(sink.rows(), 2);
  SampleStats stats = sink.latencies_us();
  EXPECT_DOUBLE_EQ(stats.Min(), 50.0);   // 300 - 250
  EXPECT_DOUBLE_EQ(stats.Max(), 200.0);  // 300 - 100
}

TEST(SinkTest, LatencyTrackingSinkIgnoresBadColumn) {
  Table t("", Schema({{"x", DataType::kInt64}}));
  ASSERT_TRUE(t.AppendRow({Value::Int64(1)}).ok());
  LatencyTrackingSink sink(/*ts_column=*/5);
  sink.OnBatch(t, 10);
  EXPECT_EQ(sink.rows(), 0);
}

// --- replayer ----------------------------------------------------------------

std::unique_ptr<RowGenerator> IntGenerator() {
  std::vector<ColumnSpec> cols(1);
  cols[0].type = DataType::kInt64;
  return std::make_unique<UniformRowGenerator>(cols, 7);
}

TEST(ReplayerTest, SendsExactlyTotalRows) {
  Channel wire;
  Replayer::Options opts;
  opts.rows_per_second = 1e6;  // effectively unthrottled
  opts.batch_size = 64;
  opts.total_rows = 1000;
  Replayer replayer(&wire, IntGenerator(), opts);
  ASSERT_TRUE(replayer.Start().ok());
  for (int i = 0; i < 5000 && !replayer.finished(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  replayer.Stop();
  EXPECT_TRUE(replayer.finished());
  EXPECT_EQ(replayer.rows_sent(), 1000);
  EXPECT_EQ(wire.size(), 1000u);
}

TEST(ReplayerTest, RateIsRoughlyHeld) {
  Channel wire;
  Replayer::Options opts;
  opts.rows_per_second = 5000;
  opts.batch_size = 50;
  opts.total_rows = 1000;  // should take ~200 ms
  Replayer replayer(&wire, IntGenerator(), opts);
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(replayer.Start().ok());
  while (!replayer.finished()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  replayer.Stop();
  EXPECT_GE(elapsed_ms, 150);   // not wildly fast
  EXPECT_LE(elapsed_ms, 2000);  // not stalled
}

TEST(ReplayerTest, StopInterruptsUnboundedRun) {
  Channel wire;
  Replayer::Options opts;
  opts.rows_per_second = 1e6;
  opts.total_rows = 0;  // unbounded
  Replayer replayer(&wire, IntGenerator(), opts);
  ASSERT_TRUE(replayer.Start().ok());
  EXPECT_FALSE(replayer.Start().ok());  // one-shot
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  replayer.Stop();
  EXPECT_FALSE(replayer.finished());
  EXPECT_GT(replayer.rows_sent(), 0);
}

}  // namespace
}  // namespace datacell
