#include <gtest/gtest.h>

#include "algebra/expression.h"

namespace datacell {
namespace {

/// Builds a two-column table: a int64 {1..n}, b double {0.5*i}.
std::shared_ptr<Table> NumTable(int n) {
  auto t = std::make_shared<Table>(
      "t", Schema({{"a", DataType::kInt64}, {"b", DataType::kDouble}}));
  for (int i = 1; i <= n; ++i) {
    EXPECT_TRUE(t->AppendRow({Value::Int64(i), Value::Double(0.5 * i)}).ok());
  }
  return t;
}

ExprPtr ColA() { return Expr::Column(0, "a", DataType::kInt64); }
ExprPtr ColB() { return Expr::Column(1, "b", DataType::kDouble); }

TEST(ExprBuildTest, TypesResolve) {
  EXPECT_EQ(ColA()->type(), DataType::kInt64);
  EXPECT_EQ(Expr::Binary(BinaryOp::kAdd, ColA(), Expr::Int(1))->type(),
            DataType::kInt64);
  EXPECT_EQ(Expr::Binary(BinaryOp::kAdd, ColA(), ColB())->type(),
            DataType::kDouble);
  EXPECT_EQ(Expr::Binary(BinaryOp::kLt, ColA(), Expr::Int(3))->type(),
            DataType::kBool);
  EXPECT_EQ(Expr::Unary(UnaryOp::kNeg, ColB())->type(), DataType::kDouble);
  EXPECT_EQ(Expr::Unary(UnaryOp::kIsNull, ColA())->type(), DataType::kBool);
}

TEST(ExprBuildTest, ToStringReadable) {
  auto e = Expr::Binary(BinaryOp::kGt,
                        Expr::Binary(BinaryOp::kAdd, ColA(), Expr::Int(1)),
                        Expr::Int(10));
  EXPECT_EQ(e->ToString(), "((a + 1) > 10)");
  EXPECT_EQ(Expr::Str("x")->ToString(), "'x'");
  EXPECT_EQ(Expr::Literal(Value::Null())->ToString(), "null");
}

TEST(ExprBuildTest, IsConstant) {
  EXPECT_TRUE(Expr::Int(1)->IsConstant());
  EXPECT_TRUE(Expr::Binary(BinaryOp::kAdd, Expr::Int(1), Expr::Int(2))
                  ->IsConstant());
  EXPECT_FALSE(ColA()->IsConstant());
}

TEST(ExprEvalTest, ColumnRefZeroCopy) {
  auto t = NumTable(3);
  auto r = EvaluateExpr(*ColA(), *t);
  ASSERT_TRUE(r.ok());
  // Shares the input column (no copy).
  EXPECT_EQ(r->get(), t->column(0).get());
}

TEST(ExprEvalTest, LiteralBroadcast) {
  auto t = NumTable(4);
  auto r = EvaluateExpr(*Expr::Int(7), *t);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->size(), 4u);
  EXPECT_EQ((*r)->Int64At(3), 7);
}

TEST(ExprEvalTest, IntArithmetic) {
  auto t = NumTable(3);
  auto e = Expr::Binary(BinaryOp::kMul, ColA(), Expr::Int(10));
  auto r = EvaluateExpr(*e, *t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->Int64At(0), 10);
  EXPECT_EQ((*r)->Int64At(2), 30);
}

TEST(ExprEvalTest, MixedArithmeticIsDouble) {
  auto t = NumTable(2);
  auto e = Expr::Binary(BinaryOp::kAdd, ColA(), ColB());
  auto r = EvaluateExpr(*e, *t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ((*r)->DoubleAt(1), 2 + 1.0);
}

TEST(ExprEvalTest, IntDivisionTruncates) {
  auto t = NumTable(5);
  auto e = Expr::Binary(BinaryOp::kDiv, ColA(), Expr::Int(2));
  auto r = EvaluateExpr(*e, *t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->Int64At(0), 0);  // 1/2
  EXPECT_EQ((*r)->Int64At(4), 2);  // 5/2
}

TEST(ExprEvalTest, DivisionByZeroYieldsNull) {
  auto t = NumTable(2);
  auto int_div = Expr::Binary(BinaryOp::kDiv, ColA(), Expr::Int(0));
  auto r = EvaluateExpr(*int_div, *t);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->IsNull(0));
  auto mod = Expr::Binary(BinaryOp::kMod, ColA(), Expr::Int(0));
  auto m = EvaluateExpr(*mod, *t);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE((*m)->IsNull(1));
}

TEST(ExprEvalTest, Comparisons) {
  auto t = NumTable(4);
  struct Case {
    BinaryOp op;
    std::vector<bool> expect;  // a OP 2 for a = 1..4
  };
  for (const Case& c : std::vector<Case>{
           {BinaryOp::kEq, {false, true, false, false}},
           {BinaryOp::kNe, {true, false, true, true}},
           {BinaryOp::kLt, {true, false, false, false}},
           {BinaryOp::kLe, {true, true, false, false}},
           {BinaryOp::kGt, {false, false, true, true}},
           {BinaryOp::kGe, {false, true, true, true}},
       }) {
    auto e = Expr::Binary(c.op, ColA(), Expr::Int(2));
    auto r = EvaluateExpr(*e, *t);
    ASSERT_TRUE(r.ok());
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_EQ((*r)->BoolAt(i), c.expect[i])
          << BinaryOpToString(c.op) << " row " << i;
    }
  }
}

TEST(ExprEvalTest, StringComparison) {
  auto t = std::make_shared<Table>("t", Schema({{"s", DataType::kString}}));
  ASSERT_TRUE(t->AppendRow({Value::String("apple")}).ok());
  ASSERT_TRUE(t->AppendRow({Value::String("banana")}).ok());
  auto e = Expr::Binary(BinaryOp::kLt, Expr::Column(0, "s", DataType::kString),
                        Expr::Str("b"));
  auto r = EvaluateExpr(*e, *t);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->BoolAt(0));
  EXPECT_FALSE((*r)->BoolAt(1));
}

TEST(ExprEvalTest, StringVsNumberComparisonIsTypeError) {
  auto t = NumTable(1);
  auto e = Expr::Binary(BinaryOp::kEq, ColA(), Expr::Str("1"));
  EXPECT_FALSE(EvaluateExpr(*e, *t).ok());
}

TEST(ExprEvalTest, LogicalOps) {
  auto t = NumTable(4);
  auto lt3 = Expr::Binary(BinaryOp::kLt, ColA(), Expr::Int(3));
  auto gt1 = Expr::Binary(BinaryOp::kGt, ColA(), Expr::Int(1));
  auto both = Expr::Binary(BinaryOp::kAnd, lt3, gt1);
  auto r = EvaluateExpr(*both, *t);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE((*r)->BoolAt(0));
  EXPECT_TRUE((*r)->BoolAt(1));
  EXPECT_FALSE((*r)->BoolAt(2));
  auto either = Expr::Binary(BinaryOp::kOr, lt3, gt1);
  auto r2 = EvaluateExpr(*either, *t);
  ASSERT_TRUE(r2.ok());
  for (size_t i = 0; i < 4; ++i) EXPECT_TRUE((*r2)->BoolAt(i));
}

TEST(ExprEvalTest, NotAndNeg) {
  auto t = NumTable(2);
  auto not_lt = Expr::Unary(
      UnaryOp::kNot, Expr::Binary(BinaryOp::kLt, ColA(), Expr::Int(2)));
  auto r = EvaluateExpr(*not_lt, *t);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE((*r)->BoolAt(0));
  EXPECT_TRUE((*r)->BoolAt(1));
  auto neg = Expr::Unary(UnaryOp::kNeg, ColA());
  auto n = EvaluateExpr(*neg, *t);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ((*n)->Int64At(0), -1);
}

TEST(ExprEvalTest, NullPropagationInArithmetic) {
  auto t = std::make_shared<Table>("t", Schema({{"a", DataType::kInt64}}));
  ASSERT_TRUE(t->AppendRow({Value::Int64(1)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Null()}).ok());
  auto e = Expr::Binary(BinaryOp::kAdd, Expr::Column(0, "a", DataType::kInt64),
                        Expr::Int(1));
  auto r = EvaluateExpr(*e, *t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->Int64At(0), 2);
  EXPECT_TRUE((*r)->IsNull(1));
}

TEST(ExprEvalTest, NullComparisonIsFalse) {
  auto t = std::make_shared<Table>("t", Schema({{"a", DataType::kInt64}}));
  ASSERT_TRUE(t->AppendRow({Value::Null()}).ok());
  auto e = Expr::Binary(BinaryOp::kEq, Expr::Column(0, "a", DataType::kInt64),
                        Expr::Int(0));
  auto r = EvaluateExpr(*e, *t);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE((*r)->BoolAt(0));
}

TEST(ExprEvalTest, IsNullOperators) {
  auto t = std::make_shared<Table>("t", Schema({{"a", DataType::kInt64}}));
  ASSERT_TRUE(t->AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Int64(5)}).ok());
  auto col = Expr::Column(0, "a", DataType::kInt64);
  auto r = EvaluateExpr(*Expr::Unary(UnaryOp::kIsNull, col), *t);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->BoolAt(0));
  EXPECT_FALSE((*r)->BoolAt(1));
  auto r2 = EvaluateExpr(*Expr::Unary(UnaryOp::kIsNotNull, col), *t);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE((*r2)->BoolAt(0));
  EXPECT_TRUE((*r2)->BoolAt(1));
}

TEST(ExprEvalTest, LargeIntComparisonStaysExact) {
  // Values beyond 2^53 would collide if compared as double.
  auto t = std::make_shared<Table>("t", Schema({{"a", DataType::kInt64}}));
  int64_t big = (int64_t{1} << 60);
  ASSERT_TRUE(t->AppendRow({Value::Int64(big)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Int64(big + 1)}).ok());
  auto e = Expr::Binary(BinaryOp::kEq, Expr::Column(0, "a", DataType::kInt64),
                        Expr::Int(big));
  auto r = EvaluateExpr(*e, *t);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->BoolAt(0));
  EXPECT_FALSE((*r)->BoolAt(1));
}

TEST(PredicateTest, ReturnsMatchingPositions) {
  auto t = NumTable(10);
  auto e = Expr::Binary(BinaryOp::kGt, ColA(), Expr::Int(7));
  auto r = EvaluatePredicate(*e, *t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<size_t>{7, 8, 9}));
}

TEST(PredicateTest, NonBooleanRejected) {
  auto t = NumTable(1);
  EXPECT_FALSE(EvaluatePredicate(*ColA(), *t).ok());
}

TEST(PredicateTest, EmptyInputEmptyOutput) {
  auto t = NumTable(0);
  auto e = Expr::Binary(BinaryOp::kGt, ColA(), Expr::Int(0));
  auto r = EvaluatePredicate(*e, *t);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

// Property: De Morgan — not(p and q) == (not p) or (not q) over a sweep of
// thresholds.
class DeMorganTest : public ::testing::TestWithParam<int> {};

TEST_P(DeMorganTest, Holds) {
  auto t = NumTable(50);
  int k = GetParam();
  auto p = Expr::Binary(BinaryOp::kLt, ColA(), Expr::Int(k));
  auto q = Expr::Binary(BinaryOp::kGt, ColA(), Expr::Int(k / 2));
  auto lhs = Expr::Unary(UnaryOp::kNot, Expr::Binary(BinaryOp::kAnd, p, q));
  auto rhs = Expr::Binary(BinaryOp::kOr, Expr::Unary(UnaryOp::kNot, p),
                          Expr::Unary(UnaryOp::kNot, q));
  auto l = EvaluatePredicate(*lhs, *t);
  auto r = EvaluatePredicate(*rhs, *t);
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*l, *r);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, DeMorganTest,
                         ::testing::Values(0, 1, 5, 10, 25, 49, 50, 100));

}  // namespace
}  // namespace datacell
