// Randomised property tests cross-checking independent implementations of
// the same semantics: bulk vs per-row expression evaluation, hash join vs
// nested loops, grouped vs global aggregation, CSV round-trips, and plan
// execution over empty inputs.

#include <gtest/gtest.h>

#include "adapters/csv.h"
#include "algebra/plan.h"
#include "baseline/row_eval.h"
#include "common/random.h"

namespace datacell {
namespace {

// --- CSV round-trip -----------------------------------------------------

class CsvRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripTest, FormatParseIdentity) {
  Rng rng(GetParam());
  Schema schema({{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"s", DataType::kString},
                 {"b", DataType::kBool},
                 {"t", DataType::kTimestamp}});
  const std::string nasty = ",\"'\n%_\\x";
  for (int round = 0; round < 200; ++round) {
    Row row;
    row.push_back(rng.Bernoulli(0.1)
                      ? Value::Null()
                      : Value::Int64(rng.Uniform(-1000000, 1000000)));
    // Doubles restricted to exactly-representable halves so the %.6g print
    // round-trips exactly.
    row.push_back(rng.Bernoulli(0.1)
                      ? Value::Null()
                      : Value::Double(rng.Uniform(-1000, 1000) / 2.0));
    if (rng.Bernoulli(0.1)) {
      row.push_back(Value::Null());
    } else {
      std::string s;
      int len = static_cast<int>(rng.Uniform(0, 12));
      for (int i = 0; i < len; ++i) {
        s.push_back(nasty[static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(nasty.size()) - 1))]);
      }
      row.push_back(Value::String(s));
    }
    row.push_back(rng.Bernoulli(0.1) ? Value::Null()
                                     : Value::Bool(rng.Bernoulli(0.5)));
    row.push_back(rng.Bernoulli(0.1)
                      ? Value::Null()
                      : Value::TimestampVal(rng.Uniform(0, 1'000'000'000)));

    std::string line = FormatCsvRow(row);
    auto parsed = ParseCsvRow(line, schema);
    ASSERT_TRUE(parsed.ok()) << line << " -> " << parsed.status().ToString();
    ASSERT_EQ(parsed->size(), row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      EXPECT_EQ((*parsed)[c], row[c]) << "line: " << line << " col " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- random expressions: bulk == per-row --------------------------------

/// Random well-typed expression over (x int64, y double, s string).
ExprPtr RandomExpr(Rng& rng, int depth);

ExprPtr RandomNumeric(Rng& rng, int depth) {
  if (depth == 0 || rng.Bernoulli(0.3)) {
    switch (rng.Uniform(0, 3)) {
      case 0:
        return Expr::Column(0, "x", DataType::kInt64);
      case 1:
        return Expr::Column(1, "y", DataType::kDouble);
      case 2:
        return Expr::Int(rng.Uniform(-20, 20));
      default:
        return Expr::Real(rng.Uniform(-40, 40) / 2.0);
    }
  }
  if (rng.Bernoulli(0.15)) {
    ScalarFunc funcs[] = {ScalarFunc::kAbs, ScalarFunc::kFloor,
                          ScalarFunc::kCeil, ScalarFunc::kRound};
    return Expr::Function(funcs[rng.Uniform(0, 3)],
                          RandomNumeric(rng, depth - 1));
  }
  BinaryOp ops[] = {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul,
                    BinaryOp::kDiv, BinaryOp::kMod};
  return Expr::Binary(ops[rng.Uniform(0, 4)], RandomNumeric(rng, depth - 1),
                      RandomNumeric(rng, depth - 1));
}

ExprPtr RandomBool(Rng& rng, int depth) {
  if (depth == 0 || rng.Bernoulli(0.4)) {
    BinaryOp cmps[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                       BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};
    if (rng.Bernoulli(0.2)) {
      return Expr::Binary(BinaryOp::kLike,
                          Expr::Column(2, "s", DataType::kString),
                          Expr::Str(rng.Bernoulli(0.5) ? "s%" : "%1%"));
    }
    return Expr::Binary(cmps[rng.Uniform(0, 5)], RandomNumeric(rng, depth),
                        RandomNumeric(rng, depth));
  }
  if (rng.Bernoulli(0.2)) {
    return Expr::Unary(UnaryOp::kNot, RandomBool(rng, depth - 1));
  }
  return Expr::Binary(rng.Bernoulli(0.5) ? BinaryOp::kAnd : BinaryOp::kOr,
                      RandomBool(rng, depth - 1), RandomBool(rng, depth - 1));
}

ExprPtr RandomCase(Rng& rng, int depth) {
  std::vector<ExprPtr> when_then;
  int branches = static_cast<int>(rng.Uniform(1, 3));
  for (int i = 0; i < branches; ++i) {
    when_then.push_back(RandomBool(rng, depth - 1));
    when_then.push_back(RandomNumeric(rng, depth - 1));
  }
  auto e = Expr::Case(std::move(when_then), RandomNumeric(rng, depth - 1));
  EXPECT_TRUE(e.ok());
  return *e;
}

ExprPtr RandomExpr(Rng& rng, int depth) {
  if (depth > 1 && rng.Bernoulli(0.15)) return RandomCase(rng, depth);
  return rng.Bernoulli(0.5) ? RandomNumeric(rng, depth)
                            : RandomBool(rng, depth);
}

class ExprAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExprAgreementTest, BulkMatchesPerRow) {
  Rng rng(GetParam());
  auto table = std::make_shared<Table>(
      "t", Schema({{"x", DataType::kInt64},
                   {"y", DataType::kDouble},
                   {"s", DataType::kString}}));
  for (int i = 0; i < 48; ++i) {
    Row row;
    row.push_back(rng.Bernoulli(0.1) ? Value::Null()
                                     : Value::Int64(rng.Uniform(-50, 50)));
    row.push_back(rng.Bernoulli(0.1)
                      ? Value::Null()
                      : Value::Double(rng.Uniform(-20, 20) / 2.0));
    row.push_back(Value::String("s" + std::to_string(rng.Uniform(0, 20))));
    ASSERT_TRUE(table->AppendRow(row).ok());
  }
  for (int round = 0; round < 30; ++round) {
    ExprPtr e = RandomExpr(rng, 3);
    auto bulk = EvaluateExpr(*e, *table);
    ASSERT_TRUE(bulk.ok()) << e->ToString();
    for (size_t i = 0; i < table->num_rows(); ++i) {
      auto per_row = EvaluateExprOnRow(*e, table->GetRow(i));
      ASSERT_TRUE(per_row.ok()) << e->ToString();
      EXPECT_EQ(*per_row, (*bulk)->GetValue(i))
          << e->ToString() << " row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprAgreementTest,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

// --- hash join vs nested loops --------------------------------------------

class JoinReferenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinReferenceTest, HashJoinMatchesNestedLoops) {
  Rng rng(GetParam());
  auto make = [&](size_t n, int64_t domain) {
    auto b = std::make_shared<Bat>(DataType::kInt64);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.05)) {
        b->AppendNull();
      } else {
        b->AppendInt64(rng.Uniform(0, domain));
      }
    }
    return b;
  };
  BatPtr l = make(60, 20);
  BatPtr r = make(40, 20);
  auto jr = HashJoin(*l, *r);
  ASSERT_TRUE(jr.ok());
  // Reference: nested loops.
  std::multiset<std::pair<size_t, size_t>> expected;
  for (size_t i = 0; i < l->size(); ++i) {
    if (l->IsNull(i)) continue;
    for (size_t j = 0; j < r->size(); ++j) {
      if (r->IsNull(j)) continue;
      if (l->Int64At(i) == r->Int64At(j)) expected.emplace(i, j);
    }
  }
  std::multiset<std::pair<size_t, size_t>> got;
  for (size_t k = 0; k < jr->left_positions.size(); ++k) {
    got.emplace(jr->left_positions[k], jr->right_positions[k]);
  }
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinReferenceTest,
                         ::testing::Values(21u, 22u, 23u, 24u));

// --- aggregation consistency -----------------------------------------------

class AggConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggConsistencyTest, GroupPartialsSumToGlobal) {
  Rng rng(GetParam());
  auto t = std::make_shared<Table>(
      "t", Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}));
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(t->AppendRow({Value::Int64(rng.Uniform(0, 9)),
                              rng.Bernoulli(0.05)
                                  ? Value::Null()
                                  : Value::Int64(rng.Uniform(-100, 100))})
                    .ok());
  }
  auto grouping = GroupBy(*t, {0});
  ASSERT_TRUE(grouping.ok());
  // Group ids form a dense permutation-ready partition.
  size_t id_sum = 0;
  for (size_t g : grouping->group_ids) {
    ASSERT_LT(g, grouping->num_groups);
    ++id_sum;
  }
  EXPECT_EQ(id_sum, t->num_rows());

  auto partials = AggregateByGroup(*t->column(1), *grouping);
  ASSERT_TRUE(partials.ok());
  auto global = AggregateAll(*t->column(1), nullptr);
  ASSERT_TRUE(global.ok());
  AggPartial merged;
  for (const AggPartial& p : *partials) merged.Merge(p);
  EXPECT_EQ(merged.count, global->count);
  EXPECT_DOUBLE_EQ(merged.sum, global->sum);
  EXPECT_DOUBLE_EQ(merged.min, global->min);
  EXPECT_DOUBLE_EQ(merged.max, global->max);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggConsistencyTest,
                         ::testing::Values(31u, 32u, 33u));

// --- sorting is a permutation ---------------------------------------------

TEST(SortPropertyTest, OutputIsSortedPermutation) {
  Rng rng(41);
  auto t = std::make_shared<Table>("t", Schema({{"v", DataType::kInt64}}));
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(t->AppendRow({rng.Bernoulli(0.05)
                                  ? Value::Null()
                                  : Value::Int64(rng.Uniform(-50, 50))})
                    .ok());
  }
  auto perm = SortPositions(*t, {{0, true}});
  ASSERT_TRUE(perm.ok());
  std::vector<bool> seen(t->num_rows(), false);
  for (size_t p : *perm) {
    ASSERT_LT(p, t->num_rows());
    ASSERT_FALSE(seen[p]) << "duplicate position";
    seen[p] = true;
  }
  const Bat& col = *t->column(0);
  for (size_t i = 1; i < perm->size(); ++i) {
    Value prev = col.GetValue((*perm)[i - 1]);
    Value cur = col.GetValue((*perm)[i]);
    EXPECT_FALSE(cur < prev) << "not sorted at " << i;
  }
}

// --- every plan node on empty input ------------------------------------------

TEST(EmptyInputTest, AllOperatorsHandleEmptyInput) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kDouble}});
  auto empty = std::make_shared<Table>("r", schema);
  PlanBindings bindings{{"r", empty}};
  auto col_a = Expr::Column(0, "a", DataType::kInt64);
  auto scan = *MakeScan("r", schema);

  std::vector<PlanPtr> plans;
  plans.push_back(scan);
  plans.push_back(*MakeFilter(
      scan, Expr::Binary(BinaryOp::kGt, col_a, Expr::Int(0))));
  plans.push_back(*MakeProject(scan, {col_a}, {"a"}));
  plans.push_back(*MakeHashJoin(scan, scan, 0, 0));
  AggSpec cnt;
  cnt.func = AggFunc::kCount;
  cnt.count_star = true;
  plans.push_back(*MakeAggregate(scan, {0}, {cnt}));
  plans.push_back(*MakeSort(scan, {{0, true}}));
  plans.push_back(*MakeDistinct(scan));
  plans.push_back(*MakeLimit(scan, 0, 10));
  plans.push_back(*MakeUnion(scan, scan));

  for (const PlanPtr& plan : plans) {
    auto result = ExecutePlan(*plan, bindings);
    ASSERT_TRUE(result.ok()) << plan->Describe();
    EXPECT_EQ((*result)->num_rows(), 0u) << plan->Describe();
  }
  // Scalar aggregate over empty input: exactly one row.
  auto scalar = *MakeAggregate(scan, {}, {cnt});
  auto result = ExecutePlan(*scalar, bindings);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 1u);
}

}  // namespace
}  // namespace datacell
