// Sharded multi-engine execution (core/shard.h): twin-engine equivalence —
// the same queries over the same tuples through a single reference engine
// and through ShardedEngine with N in {1,2,4} must produce identical result
// multisets for every partition verdict — plus routing-lattice conflict
// tests and a concurrent-ingest stress shape for the TSan job.

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adapters/sink.h"
#include "core/engine.h"
#include "core/shard.h"

namespace datacell {
namespace {

EngineOptions Deterministic() {
  EngineOptions o;
  o.use_wall_clock = false;  // every ts stamps 0: rows compare exactly
  return o;
}

std::multiset<std::string> Multiset(const std::vector<Row>& rows) {
  std::multiset<std::string> out;
  for (const Row& row : rows) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s += '|';
    }
    out.insert(std::move(s));
  }
  return out;
}

struct TwinRun {
  std::multiset<std::string> reference;
  std::multiset<std::string> sharded;
  analysis::PartitionVerdict verdict = analysis::PartitionVerdict::kPinned;
  std::string placement;
  bool merged = false;
  int home_shard = -1;
};

/// Runs `setup` + the continuous query on a single reference engine and on a
/// ShardedEngine with `num_shards`, ingests `rows` into `stream` as one
/// batch, drains both, and returns the collected result multisets.
TwinRun RunTwin(const std::string& setup, const std::string& qname,
                const std::string& qsql, const std::string& stream,
                const std::vector<Row>& rows, size_t num_shards) {
  TwinRun out;

  Engine ref(Deterministic());
  EXPECT_TRUE(ref.ExecuteScript(setup).ok());
  auto ref_q = ref.SubmitContinuousQuery(qname, qsql);
  EXPECT_TRUE(ref_q.ok()) << ref_q.status().message();
  if (!ref_q.ok()) return out;
  auto ref_sink = std::make_shared<CollectingSink>();
  EXPECT_TRUE(ref.Subscribe(*ref_q, ref_sink).ok());
  EXPECT_TRUE(ref.IngestBatch(stream, rows).ok());
  ref.Drain();
  out.reference = Multiset(ref_sink->TakeRows());

  ShardedEngineOptions so;
  so.num_shards = num_shards;
  so.engine = Deterministic();
  ShardedEngine se(so);
  EXPECT_TRUE(se.ExecuteScript(setup).ok());
  auto sh_q = se.SubmitContinuousQuery(qname, qsql);
  EXPECT_TRUE(sh_q.ok()) << sh_q.status().message();
  if (!sh_q.ok()) return out;
  auto sh_sink = std::make_shared<CollectingSink>();
  EXPECT_TRUE(se.Subscribe(*sh_q, sh_sink).ok());
  EXPECT_TRUE(se.IngestBatch(stream, rows).ok());
  se.Drain();
  out.sharded = Multiset(sh_sink->TakeRows());
  auto placement = se.GetPlacement(*sh_q);
  EXPECT_TRUE(placement.ok());
  if (placement.ok()) {
    out.verdict = (*placement)->verdict;
    out.placement = (*placement)->placement;
    out.merged = (*placement)->merged;
    out.home_shard = (*placement)->home_shard;
  }
  return out;
}

std::vector<Row> SensorRows(int n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Integer-valued doubles: per-shard summation stays exact, so avg
    // re-division compares bit-identically against the reference.
    rows.push_back({Value::Int64(i % 17), Value::Double(double(i % 50))});
  }
  return rows;
}

// --- twin-engine equivalence, one test per verdict --------------------------

TEST(ShardEquivalenceTest, PartitionableFilterAllShardCounts) {
  const std::string setup = "create basket sensors (id int, temp double)";
  const std::string q =
      "select id, temp from [select * from sensors] as s where s.temp > 30.0";
  for (size_t n : {1u, 2u, 4u}) {
    TwinRun r = RunTwin(setup, "hot", q, "sensors", SensorRows(200), n);
    EXPECT_EQ(r.verdict, analysis::PartitionVerdict::kPartitionable);
    EXPECT_EQ(r.reference, r.sharded) << "num_shards=" << n;
    EXPECT_FALSE(r.reference.empty());
  }
}

TEST(ShardEquivalenceTest, DeclaredKeyGroupByConcatenates) {
  const std::string setup =
      "create basket sensors (id int, temp double) partition by id";
  const std::string q =
      "select id, sum(temp) as total from [select * from sensors] as s "
      "group by id";
  for (size_t n : {1u, 2u, 4u}) {
    TwinRun r = RunTwin(setup, "per_id", q, "sensors", SensorRows(200), n);
    EXPECT_EQ(r.verdict, analysis::PartitionVerdict::kPartitionable);
    EXPECT_EQ(r.reference, r.sharded) << "num_shards=" << n;
    EXPECT_EQ(r.reference.size(), 17u);
  }
}

TEST(ShardEquivalenceTest, AvgReDivisionMergesExactly) {
  const std::string setup =
      "create basket sensors (id int, temp double) partition by id";
  const std::string q =
      "select avg(temp) as mean from [select * from sensors] as s";
  for (size_t n : {1u, 2u, 4u}) {
    TwinRun r = RunTwin(setup, "mean", q, "sensors", SensorRows(200), n);
    EXPECT_EQ(r.verdict, analysis::PartitionVerdict::kNeedsFinalMerge);
    EXPECT_TRUE(r.merged);
    EXPECT_EQ(r.reference, r.sharded) << "num_shards=" << n;
    EXPECT_EQ(r.reference.size(), 1u);
  }
}

TEST(ShardEquivalenceTest, OrderedTopKMergesAcrossShards) {
  const std::string setup =
      "create basket scores (player varchar, pts double) partition by player";
  const std::string q =
      "select player, pts from [select * from scores] as x "
      "order by pts desc limit 10";
  std::vector<Row> rows;
  for (int i = 0; i < 60; ++i) {
    // Distinct pts values: the top-10 cut line has no ties to tie-break.
    rows.push_back(
        {Value::String("p" + std::to_string(i % 23)), Value::Double(i * 3.0)});
  }
  for (size_t n : {1u, 2u, 4u}) {
    TwinRun r = RunTwin(setup, "ranked", q, "scores", rows, n);
    EXPECT_EQ(r.verdict, analysis::PartitionVerdict::kNeedsFinalMerge);
    EXPECT_TRUE(r.merged);
    EXPECT_EQ(r.reference, r.sharded) << "num_shards=" << n;
    EXPECT_EQ(r.sharded.size(), 10u);
  }
}

TEST(ShardEquivalenceTest, BroadcastJoinReplicatesStaticSide) {
  const std::string setup =
      "create basket trades (sym varchar, px double) partition by sym; "
      "create table dims (sym varchar, sector varchar); "
      "insert into dims values ('aa', 'tech'), ('bb', 'energy'), "
      "('cc', 'tech')";
  const std::string q =
      "select t.sym, d.sector, t.px from [select * from trades] as t "
      "join dims as d on t.sym = d.sym";
  std::vector<Row> rows;
  for (int i = 0; i < 90; ++i) {
    const char* syms[] = {"aa", "bb", "cc"};
    rows.push_back({Value::String(syms[i % 3]), Value::Double(double(i))});
  }
  for (size_t n : {1u, 2u, 4u}) {
    TwinRun r = RunTwin(setup, "sectors", q, "trades", rows, n);
    EXPECT_EQ(r.verdict, analysis::PartitionVerdict::kNeedsBroadcast);
    EXPECT_EQ(r.reference, r.sharded) << "num_shards=" << n;
    EXPECT_EQ(r.sharded.size(), 90u);
  }
}

TEST(ShardEquivalenceTest, PinnedLimitRunsWholeOnOneShard) {
  const std::string setup =
      "create basket events (x int, y double) partition by x";
  // LIMIT without ORDER BY is arrival-order dependent: pinned.
  const std::string q = "select x from [select * from events] as t limit 5";
  for (size_t n : {1u, 2u, 4u}) {
    TwinRun r = RunTwin(setup, "first5", q, "events", SensorRows(40), n);
    EXPECT_EQ(r.verdict, analysis::PartitionVerdict::kPinned);
    EXPECT_GE(r.home_shard, 0);
    EXPECT_EQ(r.reference, r.sharded) << "num_shards=" << n;
    EXPECT_EQ(r.sharded.size(), 5u);
  }
}

// --- ingest paths -----------------------------------------------------------

TEST(ShardRouterTest, ColumnarIngestMatchesRowIngest) {
  Schema schema;
  schema.AddField(Field{"id", DataType::kInt64});
  schema.AddField(Field{"temp", DataType::kDouble});
  std::vector<Row> rows = SensorRows(120);

  auto run = [&](bool columnar) {
    ShardedEngineOptions so;
    so.num_shards = 3;
    so.engine = Deterministic();
    ShardedEngine se(so);
    EXPECT_TRUE(se.CreateStream("sensors", schema, "id").ok());
    auto q = se.SubmitContinuousQuery(
        "per_id",
        "select id, sum(temp) as total from [select * from sensors] as s "
        "group by id");
    EXPECT_TRUE(q.ok()) << q.status().message();
    auto sink = std::make_shared<CollectingSink>();
    EXPECT_TRUE(se.Subscribe(*q, sink).ok());
    if (columnar) {
      ColumnBatch batch(schema);
      for (const Row& row : rows) batch.AppendRowUnchecked(row);
      EXPECT_TRUE(se.IngestColumns("sensors", std::move(batch)).ok());
      // The batch hands its buffers to a shard basket and comes back with
      // the swapped-out empties: ready to refill without allocating.
      EXPECT_EQ(batch.num_rows(), 0u);
    } else {
      EXPECT_TRUE(se.IngestBatch("sensors", rows).ok());
    }
    se.Drain();
    EXPECT_EQ(se.routed_tuples(), 120);
    return Multiset(sink->TakeRows());
  };

  EXPECT_EQ(run(false), run(true));
}

TEST(ShardRouterTest, HashRouteSendsEqualKeysToOneShard) {
  ShardedEngineOptions so;
  so.num_shards = 4;
  so.engine = Deterministic();
  ShardedEngine se(so);
  ASSERT_TRUE(
      se.ExecuteSql("create basket s (id int, v double) partition by id")
          .ok());
  auto route = se.GetRoute("s");
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->kind, RouteKind::kHash);
  EXPECT_EQ(route->key_name, "id");

  // 40 rows of one key: exactly one shard holds them all.
  std::vector<Row> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({Value::Int64(7), Value::Double(1.0)});
  }
  ASSERT_TRUE(se.IngestBatch("s", rows).ok());
  int shards_with_rows = 0;
  for (size_t i = 0; i < se.num_shards(); ++i) {
    if (se.shard(i).tuples_ingested() > 0) ++shards_with_rows;
  }
  EXPECT_EQ(shards_with_rows, 1);
  EXPECT_EQ(se.routed_tuples(), 40);
  EXPECT_EQ(se.broadcast_tuples(), 0);
}

TEST(ShardRouterTest, InsertStatementsRouteAndTablesReplicate) {
  ShardedEngineOptions so;
  so.num_shards = 2;
  so.engine = Deterministic();
  ShardedEngine se(so);
  ASSERT_TRUE(se.ExecuteSql("create basket s (x int)").ok());
  ASSERT_TRUE(se.ExecuteSql("create table t (x int)").ok());
  ASSERT_TRUE(se.ExecuteSql("insert into s values (1), (2), (3)").ok());
  ASSERT_TRUE(se.ExecuteSql("insert into t values (42)").ok());
  // Stream rows split across shards; table rows land on every shard.
  EXPECT_EQ(se.routed_tuples(), 3);
  for (size_t i = 0; i < se.num_shards(); ++i) {
    auto t = se.shard(i).catalog().Get("t");
    ASSERT_TRUE(t.ok());
    EXPECT_EQ((*t)->num_rows(), 1u);
  }
  // Gather-select unions the per-shard basket snapshots.
  auto all = se.ExecuteSql("select x from s");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ((*all)->num_rows(), 3u);
}

// --- routing lattice conflicts ----------------------------------------------

TEST(ShardLatticeTest, ConflictingHashKeysRejectTheNewQuery) {
  ShardedEngineOptions so;
  so.num_shards = 2;
  so.engine = Deterministic();
  ShardedEngine se(so);
  ASSERT_TRUE(se.ExecuteSql("create basket r (x int, y int)").ok());
  auto q1 = se.SubmitContinuousQuery(
      "by_x",
      "select x, count(*) as n from [select * from r] as t group by x");
  ASSERT_TRUE(q1.ok()) << q1.status().message();
  auto r1 = se.GetRoute("r");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->kind, RouteKind::kHash);
  EXPECT_EQ(r1->key_name, "x");

  // Grouping the same stream by a different column needs different
  // co-location; the new query is rejected, the existing route untouched.
  auto q2 = se.SubmitContinuousQuery(
      "by_y",
      "select y, count(*) as n from [select * from r] as t group by y");
  ASSERT_FALSE(q2.ok());
  EXPECT_NE(q2.status().message().find("co-location"), std::string::npos)
      << q2.status().message();
  auto r2 = se.GetRoute("r");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->key_name, "x");
  EXPECT_EQ(se.num_queries(), 1u);
}

TEST(ShardLatticeTest, PinnedConsumerSinglesTheStream) {
  ShardedEngineOptions so;
  so.num_shards = 4;
  so.engine = Deterministic();
  ShardedEngine se(so);
  ASSERT_TRUE(
      se.ExecuteSql("create basket r (x int, y double) partition by x").ok());
  auto pinned = se.SubmitContinuousQuery(
      "first3", "select x from [select * from r] as t limit 3");
  ASSERT_TRUE(pinned.ok()) << pinned.status().message();
  auto placement = se.GetPlacement(*pinned);
  ASSERT_TRUE(placement.ok());
  ASSERT_EQ((*placement)->verdict, analysis::PartitionVerdict::kPinned);
  int home = (*placement)->home_shard;
  ASSERT_GE(home, 0);
  auto route = se.GetRoute("r");
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->kind, RouteKind::kSingle);
  EXPECT_EQ(route->home_shard, home);

  // A later split consumer still works: one shard is a valid disjoint split.
  auto split = se.SubmitContinuousQuery(
      "all", "select x, y from [select * from r] as t");
  ASSERT_TRUE(split.ok()) << split.status().message();
  auto sink = std::make_shared<CollectingSink>();
  ASSERT_TRUE(se.Subscribe(*split, sink).ok());
  ASSERT_TRUE(se.IngestBatch("r", SensorRows(20)).ok());
  se.Drain();
  EXPECT_EQ(sink->row_count(), 20u);
}

TEST(ShardLatticeTest, DropErasesTheRoute) {
  ShardedEngineOptions so;
  so.num_shards = 2;
  so.engine = Deterministic();
  ShardedEngine se(so);
  ASSERT_TRUE(se.ExecuteSql("create basket r (x int)").ok());
  ASSERT_TRUE(se.GetRoute("r").ok());
  ASSERT_TRUE(se.ExecuteSql("drop basket r").ok());
  EXPECT_FALSE(se.GetRoute("r").ok());
  EXPECT_FALSE(se.Ingest("r", {Value::Int64(1)}).ok());
}

// --- cascades over query outputs --------------------------------------------

TEST(ShardCascadeTest, QueryOverPartitionedOutputStream) {
  // hot's output inherits the declared key, so chained consumption stays
  // shard-local; the cascade's end-to-end result matches the reference.
  const size_t kShards = 2;
  auto run = [&](bool sharded_mode) {
    std::multiset<std::string> got;
    const std::string setup =
        "create basket sensors (id int, temp double) partition by id";
    const std::string q1 =
        "select id, temp from [select * from sensors] as s "
        "where s.temp > 10.0";
    const std::string q2 =
        "select id, count(*) as n from [select * from hot_out] as h "
        "group by id";
    if (sharded_mode) {
      ShardedEngineOptions so;
      so.num_shards = kShards;
      so.engine = Deterministic();
      ShardedEngine se(so);
      EXPECT_TRUE(se.ExecuteScript(setup).ok());
      EXPECT_TRUE(se.SubmitContinuousQuery("hot", q1).ok());
      auto q = se.SubmitContinuousQuery("hot_counts", q2);
      EXPECT_TRUE(q.ok()) << q.status().message();
      if (!q.ok()) return got;
      auto sink = std::make_shared<CollectingSink>();
      EXPECT_TRUE(se.Subscribe(*q, sink).ok());
      EXPECT_TRUE(se.IngestBatch("sensors", SensorRows(200)).ok());
      se.Drain();
      got = Multiset(sink->TakeRows());
    } else {
      Engine ref(Deterministic());
      EXPECT_TRUE(ref.ExecuteScript(setup).ok());
      EXPECT_TRUE(ref.SubmitContinuousQuery("hot", q1).ok());
      auto q = ref.SubmitContinuousQuery("hot_counts", q2);
      EXPECT_TRUE(q.ok()) << q.status().message();
      if (!q.ok()) return got;
      auto sink = std::make_shared<CollectingSink>();
      EXPECT_TRUE(ref.Subscribe(*q, sink).ok());
      EXPECT_TRUE(ref.IngestBatch("sensors", SensorRows(200)).ok());
      ref.Drain();
      got = Multiset(sink->TakeRows());
    }
    return got;
  };
  auto reference = run(false);
  auto sharded = run(true);
  EXPECT_EQ(reference, sharded);
  EXPECT_FALSE(reference.empty());
}

TEST(ShardCascadeTest, MergedOutputIsNotConsumablePerShard) {
  ShardedEngineOptions so;
  so.num_shards = 2;
  so.engine = Deterministic();
  ShardedEngine se(so);
  ASSERT_TRUE(
      se.ExecuteSql("create basket r (id int, temp double) partition by id")
          .ok());
  ASSERT_TRUE(se.SubmitContinuousQuery(
                    "mean", "select avg(temp) as m from [select * from r] as s")
                  .ok());
  // mean's result exists only at the frontend merge stage; a per-shard
  // consumer of mean_out has nothing well-defined to read.
  auto q = se.SubmitContinuousQuery(
      "downstream", "select m from [select * from mean_out] as x");
  EXPECT_FALSE(q.ok());
}

// --- concurrent ingest (the TSan shape) -------------------------------------

TEST(ShardStressTest, ConcurrentProducersConserveTuples) {
  ShardedEngineOptions so;
  so.num_shards = 2;  // wall clock: the threaded scheduler path
  ShardedEngine se(so);
  ASSERT_TRUE(
      se.ExecuteSql("create basket s (id int, v double) partition by id")
          .ok());
  auto q = se.SubmitContinuousQuery(
      "pass", "select id, v from [select * from s] as t");
  ASSERT_TRUE(q.ok()) << q.status().message();
  auto sink = std::make_shared<CountingSink>();
  ASSERT_TRUE(se.Subscribe(*q, sink).ok());
  ASSERT_TRUE(se.Start(1).ok());

  constexpr int kThreads = 4;
  constexpr int kRowsPerThread = 500;
  std::atomic<int> failures{0};
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&se, &failures, t] {
      for (int i = 0; i < kRowsPerThread; ++i) {
        Status st = se.Ingest(
            "s", {Value::Int64(t * kRowsPerThread + i), Value::Double(1.0)});
        if (!st.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Routed exactly once each; wait for the shard nets to deliver them all.
  EXPECT_EQ(se.routed_tuples(), kThreads * kRowsPerThread);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (sink->rows() < kThreads * kRowsPerThread &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  se.Stop();
  se.Drain();  // deterministic sweep for any tail left at Stop
  EXPECT_EQ(sink->rows(), kThreads * kRowsPerThread);
}

// --- introspection ----------------------------------------------------------

TEST(ShardReportTest, ShardsReportListsRoutesAndPlacements) {
  ShardedEngineOptions so;
  so.num_shards = 2;
  so.engine = Deterministic();
  ShardedEngine se(so);
  ASSERT_TRUE(
      se.ExecuteSql("create basket r (id int, temp double) partition by id")
          .ok());
  ASSERT_TRUE(se.SubmitContinuousQuery(
                    "mean", "select avg(temp) as m from [select * from r] as s")
                  .ok());
  std::string report = se.ShardsReport();
  EXPECT_NE(report.find("shards: 2"), std::string::npos) << report;
  EXPECT_NE(report.find("r: hash(id)"), std::string::npos) << report;
  EXPECT_NE(report.find("needs-final-merge"), std::string::npos) << report;
  EXPECT_NE(report.find("frontend merge"), std::string::npos) << report;
  // The placement is mirrored into each shard's QueryInfo for \analyze.
  auto info = se.shard(0).GetQuery(0);
  ASSERT_TRUE(info.ok());
  EXPECT_NE((*info)->placement.find("merge"), std::string::npos);
}

}  // namespace
}  // namespace datacell
