#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "mal/mal.h"

namespace datacell {
namespace mal {
namespace {

// The paper's Algorithm 1, verbatim modulo the select arguments.
constexpr char kAlgorithm1[] = R"(
  # Factory for a simple query selecting X values in a range v1-v2.
  input := basket.bind("X");
  output := basket.bind("Y");
  basket.lock(input);
  basket.lock(output);
  result := algebra.select(input, "v", 10, 20);
  basket.empty(input);
  basket.append(output, result);
  basket.unlock(input);
  basket.unlock(output);
  suspend();
)";

Schema VSchema() { return Schema({{"v", DataType::kInt64}}); }

std::shared_ptr<Basket> MakeVBasket(const std::string& name) {
  return std::make_shared<Basket>(Basket::MakeBasketTable(name, VSchema()));
}

// --- parsing -------------------------------------------------------------

TEST(MalParseTest, ParsesAlgorithm1) {
  auto program = Program::Parse(kAlgorithm1);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ((*program)->instructions().size(), 10u);
  const Instruction& select = (*program)->instructions()[4];
  EXPECT_EQ(select.result, "result");
  EXPECT_EQ(select.module, "algebra");
  EXPECT_EQ(select.function, "select");
  ASSERT_EQ(select.args.size(), 4u);
  EXPECT_EQ(select.args[1].text, "v");
  EXPECT_EQ(select.args[2].int_value, 10);
}

TEST(MalParseTest, ToStringRoundTrips) {
  auto program = Program::Parse(kAlgorithm1);
  ASSERT_TRUE(program.ok());
  auto again = Program::Parse((*program)->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->ToString(), (*program)->ToString());
}

TEST(MalParseTest, SyntaxErrorsCarryLineNumbers) {
  auto r1 = Program::Parse("x := nonsense");
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("line 1"), std::string::npos);
  EXPECT_FALSE(Program::Parse("x := f(\"unterminated);").ok());
  EXPECT_FALSE(Program::Parse("x := f(a b);").ok());
  EXPECT_FALSE(Program::Parse(":= f(a);").ok());
}

TEST(MalParseTest, CommentsAndBlanksIgnored)  {
  auto program = Program::Parse("# nothing\n\n  # more\nsuspend();\n");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ((*program)->instructions().size(), 1u);
}

// --- execution -------------------------------------------------------------

TEST(MalRunTest, Algorithm1MovesQualifyingTuples) {
  auto program = Program::Parse(kAlgorithm1);
  ASSERT_TRUE(program.ok());
  Context ctx;
  ctx.baskets["X"] = MakeVBasket("X");
  ctx.baskets["Y"] = MakeVBasket("Y");
  for (int v : {5, 12, 20, 25, 15}) {
    ASSERT_TRUE(ctx.baskets["X"]->Append({Value::Int64(v)}, v).ok());
  }
  ASSERT_TRUE(mal::Run(**program, &ctx).ok());
  // Input emptied (Algorithm 1's bulk consume) and qualifying tuples moved.
  EXPECT_EQ(ctx.baskets["X"]->size(), 0u);
  ASSERT_EQ(ctx.baskets["Y"]->size(), 3u);  // 12, 20, 15
  auto out = ctx.baskets["Y"]->PeekSnapshot();
  EXPECT_EQ(out->GetRow(0)[0], Value::Int64(12));
  // Original timestamps preserved through basket.append.
  EXPECT_EQ(out->GetRow(0)[1], Value::TimestampVal(12));
}

TEST(MalRunTest, UnknownBasketFails) {
  auto program = Program::Parse("b := basket.bind(\"nope\");");
  ASSERT_TRUE(program.ok());
  Context ctx;
  EXPECT_FALSE(mal::Run(**program, &ctx).ok());
}

TEST(MalRunTest, UnknownVariableFails) {
  auto program = Program::Parse("basket.empty(ghost);");
  ASSERT_TRUE(program.ok());
  Context ctx;
  auto st = mal::Run(**program, &ctx);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("ghost"), std::string::npos);
}

TEST(MalRunTest, ProjectJoinAndAggregates) {
  Context ctx;
  auto left = std::make_shared<Basket>(Basket::MakeBasketTable(
      "L", Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}})));
  auto right = std::make_shared<Basket>(Basket::MakeBasketTable(
      "R", Schema({{"k", DataType::kInt64}, {"w", DataType::kInt64}})));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        left->Append({Value::Int64(i), Value::Int64(10 * i)}, 0).ok());
    ASSERT_TRUE(
        right->Append({Value::Int64(i * 2), Value::Int64(i)}, 0).ok());
  }
  ctx.baskets["L"] = left;
  ctx.baskets["R"] = right;
  auto program = Program::Parse(R"(
    l := basket.bind("L");
    r := basket.bind("R");
    j := algebra.join(l, "k", r, "k");
    p := algebra.project(j, "v");
    s := aggr.sum(p, "v");
    io.print(j);
    io.print(s);
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_TRUE(mal::Run(**program, &ctx).ok());
  ASSERT_EQ(ctx.printed.size(), 2u);
  // join keys 0 and 2 match -> v values 0 and 20 -> sum 20.
  EXPECT_NE(ctx.printed[1].find("20"), std::string::npos);
}

TEST(MalRunTest, PeekDoesNotConsume) {
  Context ctx;
  ctx.baskets["X"] = MakeVBasket("X");
  ASSERT_TRUE(ctx.baskets["X"]->Append({Value::Int64(1)}, 0).ok());
  auto program = Program::Parse(R"(
    b := basket.bind("X");
    t := basket.peek(b);
    c := aggr.count(t);
    io.print(c);
  )");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(mal::Run(**program, &ctx).ok());
  EXPECT_EQ(ctx.baskets["X"]->size(), 1u);
}

TEST(MalRunTest, SuspendStopsExecution) {
  Context ctx;
  ctx.baskets["X"] = MakeVBasket("X");
  ASSERT_TRUE(ctx.baskets["X"]->Append({Value::Int64(1)}, 0).ok());
  auto program = Program::Parse(R"(
    b := basket.bind("X");
    suspend();
    basket.empty(b);
  )");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(mal::Run(**program, &ctx).ok());
  EXPECT_EQ(ctx.baskets["X"]->size(), 1u);  // empty() never ran
}

// --- MalFactory under the scheduler ------------------------------------------

TEST(MalFactoryTest, RunsUnderScheduler) {
  Context ctx;
  ctx.baskets["X"] = MakeVBasket("X");
  ctx.baskets["Y"] = MakeVBasket("Y");
  auto program = Program::Parse(kAlgorithm1);
  ASSERT_TRUE(program.ok());
  SimulatedClock clock;
  auto factory = std::make_shared<MalFactory>(
      "alg1", *program, &ctx, ctx.baskets["X"], &clock);
  Scheduler sched;
  sched.AddTransition(factory);
  EXPECT_FALSE(factory->Ready());
  sched.RunUntilQuiescent();
  EXPECT_EQ(factory->runs(), 0);

  for (int v : {15, 50}) {
    ASSERT_TRUE(ctx.baskets["X"]->Append({Value::Int64(v)}, 0).ok());
  }
  EXPECT_TRUE(factory->Ready());
  EXPECT_EQ(factory->Backlog(), 2);
  sched.RunUntilQuiescent();
  EXPECT_EQ(factory->runs(), 1);
  EXPECT_EQ(ctx.baskets["X"]->size(), 0u);
  EXPECT_EQ(ctx.baskets["Y"]->size(), 1u);  // only 15 in [10, 20]
}

}  // namespace
}  // namespace mal
}  // namespace datacell
