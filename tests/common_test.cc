#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace datacell {
namespace {

// --- Status -----------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, FactoryHelpersSetCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_TRUE(b.IsInternal());
  EXPECT_EQ(b.message(), "boom");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

// --- Result --------------------------------------------------------------

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = Half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.ValueOr(-1), 5);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Half(7);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  auto run = [](int x) -> Result<int> {
    DC_ASSIGN_OR_RETURN(int h, Half(x));
    return h + 1;
  };
  EXPECT_EQ(*run(10), 6);
  EXPECT_FALSE(run(9).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

// --- string_util -------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("abc"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("WHERE", "where"));
  EXPECT_FALSE(EqualsIgnoreCase("WHERE", "were"));
  EXPECT_TRUE(StartsWith("datacell", "data"));
  EXPECT_FALSE(StartsWith("data", "datacell"));
}

TEST(StringUtilTest, ParseInt64Strict) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64("  13 "), 13);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("4x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

// --- clocks ----------------------------------------------------------------

TEST(ClockTest, WallClockIsMonotonicNonDecreasing) {
  WallClock clock;
  Timestamp a = clock.Now();
  Timestamp b = clock.Now();
  EXPECT_LE(a, b);
}

TEST(ClockTest, SimulatedClockAdvances) {
  SimulatedClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.SetTime(1000);
  EXPECT_EQ(clock.Now(), 1000);
}

TEST(ClockDeathTest, SimulatedClockRejectsTimeTravel) {
  SimulatedClock clock(100);
  EXPECT_DEATH(clock.SetTime(50), "DC_CHECK");
}

// --- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ZipfStaysInRangeAndSkews) {
  Rng rng(2);
  int64_t low_half = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    int64_t v = rng.Zipf(1000, 0.9);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 1000);
    if (v < 500) ++low_half;
  }
  // Skewed towards small ranks: far more than half the mass in [0, 500).
  EXPECT_GT(low_half, kDraws * 6 / 10);
}

TEST(RngTest, ZipfThetaZeroIsUniformish) {
  Rng rng(3);
  int64_t low_half = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Zipf(1000, 0.0) < 500) ++low_half;
  }
  EXPECT_NEAR(low_half, kDraws / 2, kDraws / 20);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

// --- SampleStats --------------------------------------------------------

TEST(SampleStatsTest, EmptyIsZero) {
  SampleStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 0.0);
}

TEST(SampleStatsTest, BasicMoments) {
  SampleStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.Add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.Sum(), 15.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 3.0);
  EXPECT_NEAR(s.StdDev(), 1.5811, 1e-3);
}

TEST(SampleStatsTest, PercentileBounds) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 100.0);
  EXPECT_NEAR(s.Percentile(0.99), 99.0, 1.0);
}

TEST(SampleStatsTest, AddAfterPercentileStillSorts) {
  SampleStats s;
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 5.0);
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
}

// --- Row hash (common/hash.h) ------------------------------------------
//
// The shard router and the split-merge oracle must agree on placement, so
// these tests pin the concrete FNV-1a values: a change here means every
// committed partition verdict was certified against a different split.

TEST(HashTest, TypedHelpersMatchValueOverload) {
  EXPECT_EQ(HashInt64(42), HashValue(Value::Int64(42)));
  EXPECT_EQ(HashDouble(3.5), HashValue(Value::Double(3.5)));
  EXPECT_EQ(HashBool(true), HashValue(Value::Bool(true)));
  EXPECT_EQ(HashBool(false), HashValue(Value::Bool(false)));
  EXPECT_EQ(HashString("sensor-7"), HashValue(Value::String("sensor-7")));
  // Timestamps are integer-backed and hash as their int64 value.
  EXPECT_EQ(HashInt64(1234567), HashValue(Value::TimestampVal(1234567)));
}

TEST(HashTest, NullHashesToZero) {
  // Null-key rows co-locate on shard 0 by convention.
  EXPECT_EQ(HashValue(Value::Null()), 0u);
}

TEST(HashTest, NegativeZeroFoldsOntoPositiveZero) {
  EXPECT_EQ(HashDouble(-0.0), HashDouble(0.0));
  EXPECT_EQ(HashValue(Value::Double(-0.0)), HashValue(Value::Double(0.0)));
}

TEST(HashTest, EmptyInputsHashToOffsetBasis) {
  // Zero bytes mixed => the FNV offset basis (distinct from the null hash).
  EXPECT_EQ(HashString(""), kFnvOffsetBasis);
  EXPECT_NE(HashString(""), HashValue(Value::Null()));
}

TEST(HashTest, DistinctValuesSpread) {
  EXPECT_NE(HashInt64(1), HashInt64(2));
  EXPECT_NE(HashString("a"), HashString("b"));
  EXPECT_NE(HashDouble(1.0), HashInt64(1));  // representation, not promotion
  EXPECT_NE(HashBool(true), HashBool(false));
}

TEST(HashTest, PinnedVectors) {
  // Concrete values pin the byte-mixing order and constants. Every
  // committed partition verdict was certified against this exact hash, so
  // a change here silently re-shards the world — update only together
  // with the oracle and a re-certification of the goldens.
  EXPECT_EQ(HashString("a"), 4953267810257967366ull);
  EXPECT_EQ(HashString("foobar"), 9870438755804841970ull);
}

}  // namespace
}  // namespace datacell
