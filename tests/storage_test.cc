#include <gtest/gtest.h>

#include "storage/bat.h"
#include "storage/catalog.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/types.h"

namespace datacell {
namespace {

// --- Value ------------------------------------------------------------

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "");
  EXPECT_EQ(v, Value::Null());
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value::Int64(42).int64_value(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).double_value(), 1.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::TimestampVal(99).int64_value(), 99);
}

TEST(ValueTest, TypeDiscrimination) {
  EXPECT_TRUE(Value::Int64(1).is_int64());
  EXPECT_FALSE(Value::Int64(1).is_timestamp());
  EXPECT_TRUE(Value::TimestampVal(1).is_timestamp());
  EXPECT_FALSE(Value::TimestampVal(1).is_int64());
  EXPECT_EQ(Value::Int64(1).type(), DataType::kInt64);
  EXPECT_EQ(Value::TimestampVal(1).type(), DataType::kTimestamp);
  EXPECT_EQ(Value::Double(1).type(), DataType::kDouble);
  EXPECT_EQ(Value::String("").type(), DataType::kString);
  EXPECT_EQ(Value::Bool(false).type(), DataType::kBool);
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Int64(-3).ToString(), "-3");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("abc").ToString(), "abc");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
}

TEST(ValueTest, FromStringRoundTrips) {
  EXPECT_EQ(*Value::FromString("17", DataType::kInt64), Value::Int64(17));
  EXPECT_EQ(*Value::FromString("2.5", DataType::kDouble), Value::Double(2.5));
  EXPECT_EQ(*Value::FromString("x", DataType::kString), Value::String("x"));
  EXPECT_EQ(*Value::FromString("true", DataType::kBool), Value::Bool(true));
  EXPECT_EQ(*Value::FromString("0", DataType::kBool), Value::Bool(false));
  EXPECT_TRUE(Value::FromString("", DataType::kInt64)->is_null());
  EXPECT_FALSE(Value::FromString("abc", DataType::kInt64).ok());
  EXPECT_FALSE(Value::FromString("maybe", DataType::kBool).ok());
}

TEST(ValueTest, ComparisonSemantics) {
  EXPECT_EQ(Value::Int64(3), Value::Int64(3));
  EXPECT_NE(Value::Int64(3), Value::Int64(4));
  // Cross numeric comparison as double.
  EXPECT_EQ(Value::Int64(3), Value::Double(3.0));
  EXPECT_LT(Value::Int64(2), Value::Double(2.5));
  // Null equals null, sorts first.
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_LT(Value::Null(), Value::Int64(-100));
  EXPECT_NE(Value::Null(), Value::Int64(0));
  // Strings lexicographic.
  EXPECT_LT(Value::String("a"), Value::String("b"));
}

TEST(ValueTest, CheckValueTypeWidening) {
  EXPECT_TRUE(CheckValueType(Value::Int64(1), DataType::kInt64).ok());
  EXPECT_TRUE(CheckValueType(Value::Int64(1), DataType::kDouble).ok());
  EXPECT_TRUE(CheckValueType(Value::Int64(1), DataType::kTimestamp).ok());
  EXPECT_FALSE(CheckValueType(Value::Double(1), DataType::kInt64).ok());
  EXPECT_FALSE(CheckValueType(Value::String("x"), DataType::kInt64).ok());
  EXPECT_TRUE(CheckValueType(Value::Null(), DataType::kString).ok());
}

TEST(DataTypeTest, NamesAndParsing) {
  EXPECT_STREQ(DataTypeToString(DataType::kInt64), "int64");
  EXPECT_EQ(*DataTypeFromString("INT"), DataType::kInt64);
  EXPECT_EQ(*DataTypeFromString("bigint"), DataType::kInt64);
  EXPECT_EQ(*DataTypeFromString("Double"), DataType::kDouble);
  EXPECT_EQ(*DataTypeFromString("varchar"), DataType::kString);
  EXPECT_EQ(*DataTypeFromString("timestamp"), DataType::kTimestamp);
  EXPECT_EQ(*DataTypeFromString("boolean"), DataType::kBool);
  EXPECT_FALSE(DataTypeFromString("blob").ok());
}

// --- Bat -----------------------------------------------------------------

TEST(BatTest, AppendAndRead) {
  Bat b(DataType::kInt64);
  b.AppendInt64(10);
  b.AppendInt64(20);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.Int64At(0), 10);
  EXPECT_EQ(b.GetValue(1), Value::Int64(20));
  EXPECT_FALSE(b.has_nulls());
}

TEST(BatTest, VirtualHeadOids) {
  Bat b(DataType::kInt64, 100);
  b.AppendInt64(1);
  b.AppendInt64(2);
  EXPECT_EQ(b.hseqbase(), 100u);
  b.RemovePrefix(1);
  EXPECT_EQ(b.hseqbase(), 101u);
  EXPECT_EQ(b.Int64At(0), 2);
}

TEST(BatTest, NullsLazyValidity) {
  Bat b(DataType::kDouble);
  b.AppendDouble(1.0);
  EXPECT_FALSE(b.has_nulls());
  b.AppendNull();
  EXPECT_TRUE(b.has_nulls());
  EXPECT_FALSE(b.IsNull(0));
  EXPECT_TRUE(b.IsNull(1));
  EXPECT_TRUE(b.GetValue(1).is_null());
  b.AppendDouble(2.0);
  EXPECT_FALSE(b.IsNull(2));
}

TEST(BatTest, AppendValueTypeChecked) {
  Bat b(DataType::kInt64);
  EXPECT_TRUE(b.AppendValue(Value::Int64(5)).ok());
  EXPECT_FALSE(b.AppendValue(Value::Double(5.0)).ok());
  EXPECT_TRUE(b.AppendValue(Value::Null()).ok());
  EXPECT_EQ(b.size(), 2u);
  // Int widens into double columns.
  Bat d(DataType::kDouble);
  EXPECT_TRUE(d.AppendValue(Value::Int64(5)).ok());
  EXPECT_DOUBLE_EQ(d.DoubleAt(0), 5.0);
}

TEST(BatTest, SliceCarriesOidsAndNulls) {
  Bat b(DataType::kInt64, 10);
  for (int i = 0; i < 5; ++i) b.AppendInt64(i);
  b.AppendNull();
  auto s = b.Slice(2, 3);
  EXPECT_EQ(s->size(), 3u);
  EXPECT_EQ(s->hseqbase(), 12u);
  EXPECT_EQ(s->Int64At(0), 2);
  auto tail = b.Slice(4, 10);  // over-long length clamps
  EXPECT_EQ(tail->size(), 2u);
  EXPECT_TRUE(tail->IsNull(1));
}

TEST(BatTest, TakeRenumbers) {
  Bat b(DataType::kString);
  b.AppendString("a");
  b.AppendString("b");
  b.AppendString("c");
  auto t = b.Take({2, 0}, 50);
  EXPECT_EQ(t->size(), 2u);
  EXPECT_EQ(t->hseqbase(), 50u);
  EXPECT_EQ(t->StringAt(0), "c");
  EXPECT_EQ(t->StringAt(1), "a");
}

TEST(BatTest, RemovePositionsCompacts) {
  Bat b(DataType::kInt64);
  for (int i = 0; i < 6; ++i) b.AppendInt64(i);
  b.RemovePositions({1, 3, 5});
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.Int64At(0), 0);
  EXPECT_EQ(b.Int64At(1), 2);
  EXPECT_EQ(b.Int64At(2), 4);
}

TEST(BatTest, RemovePositionsEmptyNoop) {
  Bat b(DataType::kInt64);
  b.AppendInt64(1);
  b.RemovePositions({});
  EXPECT_EQ(b.size(), 1u);
}

TEST(BatTest, ClearAdvancesHseqbase) {
  Bat b(DataType::kInt64);
  b.AppendInt64(1);
  b.AppendInt64(2);
  b.Clear();
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.hseqbase(), 2u);
}

TEST(BatTest, AppendBatMergesNullTracking) {
  Bat a(DataType::kInt64);
  a.AppendInt64(1);
  Bat b(DataType::kInt64);
  b.AppendNull();
  b.AppendInt64(2);
  a.AppendBat(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_FALSE(a.IsNull(0));
  EXPECT_TRUE(a.IsNull(1));
  EXPECT_FALSE(a.IsNull(2));
}

TEST(BatTest, AppendBatIntoEmptyKeepsNulls) {
  // Regression: appending a null-bearing BAT into an *empty* BAT used to
  // drop the null flags (EnsureValidity on size 0 leaves the vector empty).
  Bat src(DataType::kDouble);
  src.AppendNull();
  src.AppendDouble(1.5);
  Bat dst(DataType::kDouble);
  dst.AppendBat(src);
  ASSERT_TRUE(dst.has_nulls());
  EXPECT_TRUE(dst.IsNull(0));
  EXPECT_FALSE(dst.IsNull(1));
}

TEST(BatTest, AppendPositionsIntoEmptyKeepsNulls) {
  Bat src(DataType::kInt64);
  src.AppendInt64(1);
  src.AppendNull();
  Bat dst(DataType::kInt64);
  dst.AppendPositions(src, {1, 0});
  ASSERT_TRUE(dst.has_nulls());
  EXPECT_TRUE(dst.IsNull(0));
  EXPECT_FALSE(dst.IsNull(1));
}

TEST(BatTest, AppendPositions) {
  Bat src(DataType::kDouble);
  src.AppendDouble(0.5);
  src.AppendDouble(1.5);
  src.AppendDouble(2.5);
  Bat dst(DataType::kDouble);
  dst.AppendPositions(src, {2, 1});
  EXPECT_EQ(dst.size(), 2u);
  EXPECT_DOUBLE_EQ(dst.DoubleAt(0), 2.5);
  EXPECT_DOUBLE_EQ(dst.DoubleAt(1), 1.5);
}

TEST(BatTest, BoolAndTimestampBacked) {
  Bat b(DataType::kBool);
  b.AppendBool(true);
  b.AppendBool(false);
  EXPECT_TRUE(b.BoolAt(0));
  EXPECT_FALSE(b.BoolAt(1));
  Bat t(DataType::kTimestamp);
  t.AppendInt64(123456);
  EXPECT_EQ(t.GetValue(0), Value::TimestampVal(123456));
  EXPECT_TRUE(t.GetValue(0).is_timestamp());
}

TEST(BatTest, MemoryUsageGrows) {
  Bat b(DataType::kInt64);
  size_t before = b.MemoryUsage();
  for (int i = 0; i < 1000; ++i) b.AppendInt64(i);
  EXPECT_GT(b.MemoryUsage(), before);
}

TEST(BatTest, MakeHelpers) {
  EXPECT_EQ(MakeInt64Bat({1, 2, 3})->size(), 3u);
  EXPECT_EQ(MakeDoubleBat({1.0})->type(), DataType::kDouble);
  EXPECT_EQ(MakeStringBat({"x", "y"})->StringAt(1), "y");
  EXPECT_TRUE(MakeBoolBat({true})->BoolAt(0));
}

// --- Schema ---------------------------------------------------------------

TEST(SchemaTest, IndexOfCaseInsensitive) {
  Schema s({{"Alpha", DataType::kInt64}, {"beta", DataType::kString}});
  EXPECT_EQ(*s.IndexOf("alpha"), 0u);
  EXPECT_EQ(*s.IndexOf("BETA"), 1u);
  EXPECT_FALSE(s.IndexOf("gamma").has_value());
}

TEST(SchemaTest, ToStringAndEquality) {
  Schema s({{"a", DataType::kInt64}});
  EXPECT_EQ(s.ToString(), "a int64");
  Schema t({{"a", DataType::kInt64}});
  EXPECT_EQ(s, t);
}

// --- Table ------------------------------------------------------------------

Schema TwoColSchema() {
  return Schema({{"a", DataType::kInt64}, {"b", DataType::kString}});
}

TEST(TableTest, AppendRowAndRead) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value::Int64(1), Value::String("x")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Int64(2), Value::String("y")}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.GetRow(1)[1], Value::String("y"));
}

TEST(TableTest, AppendRowArityMismatch) {
  Table t("t", TwoColSchema());
  EXPECT_FALSE(t.AppendRow({Value::Int64(1)}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, AppendRowTypeMismatchLeavesColumnsAligned) {
  Table t("t", TwoColSchema());
  EXPECT_FALSE(t.AppendRow({Value::String("no"), Value::String("x")}).ok());
  // The failed append must not have touched any column.
  EXPECT_EQ(t.column(0)->size(), 0u);
  EXPECT_EQ(t.column(1)->size(), 0u);
}

TEST(TableTest, ColumnByName) {
  Table t("t", TwoColSchema());
  EXPECT_TRUE(t.ColumnByName("b").ok());
  EXPECT_FALSE(t.ColumnByName("zz").ok());
}

TEST(TableTest, SliceTakeClone) {
  Table t("t", TwoColSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        t.AppendRow({Value::Int64(i), Value::String(std::to_string(i))}).ok());
  }
  auto s = t.Slice(1, 2);
  EXPECT_EQ(s->num_rows(), 2u);
  EXPECT_EQ(s->GetRow(0)[0], Value::Int64(1));
  auto k = t.Take({4, 0});
  EXPECT_EQ(k->GetRow(0)[0], Value::Int64(4));
  auto c = t.Clone();
  EXPECT_EQ(c->num_rows(), 5u);
}

TEST(TableTest, RemovePrefixKeepsAlignment) {
  Table t("t", TwoColSchema());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        t.AppendRow({Value::Int64(i), Value::String(std::to_string(i))}).ok());
  }
  t.RemovePrefix(2);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.GetRow(0)[0], Value::Int64(2));
  EXPECT_EQ(t.GetRow(0)[1], Value::String("2"));
  EXPECT_EQ(t.hseqbase(), 2u);
}

TEST(TableTest, AppendTableChecksTypes) {
  Table t("t", TwoColSchema());
  Table u("u", TwoColSchema());
  ASSERT_TRUE(u.AppendRow({Value::Int64(9), Value::String("z")}).ok());
  ASSERT_TRUE(t.AppendTable(u).ok());
  EXPECT_EQ(t.num_rows(), 1u);
  Table w("w", Schema({{"a", DataType::kDouble}, {"b", DataType::kString}}));
  EXPECT_FALSE(t.AppendTable(w).ok());
}

TEST(TableTest, ToRows) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value::Int64(7), Value::String("q")}).ok());
  auto rows = t.ToRows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int64(7));
}

// --- Catalog -------------------------------------------------------------

TEST(CatalogTest, CreateGetDrop) {
  Catalog cat;
  auto t = cat.CreateRelation("T1", TwoColSchema(), RelationKind::kTable);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(cat.Contains("t1"));  // case-insensitive
  EXPECT_EQ(*cat.KindOf("T1"), RelationKind::kTable);
  EXPECT_TRUE(cat.Get("t1").ok());
  EXPECT_TRUE(cat.Drop("T1").ok());
  EXPECT_FALSE(cat.Contains("t1"));
  EXPECT_FALSE(cat.Get("t1").ok());
}

TEST(CatalogTest, DuplicateRejected) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateRelation("x", TwoColSchema(), RelationKind::kBasket).ok());
  EXPECT_TRUE(cat.CreateRelation("X", TwoColSchema(), RelationKind::kTable)
                  .status()
                  .IsAlreadyExists());
}

TEST(CatalogTest, NamesSorted) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateRelation("bb", TwoColSchema(), RelationKind::kTable).ok());
  ASSERT_TRUE(cat.CreateRelation("aa", TwoColSchema(), RelationKind::kTable).ok());
  auto names = cat.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "aa");
  EXPECT_EQ(names[1], "bb");
}

TEST(CatalogTest, KindDistinguishesBaskets) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateRelation("s", TwoColSchema(), RelationKind::kBasket).ok());
  EXPECT_EQ(*cat.KindOf("s"), RelationKind::kBasket);
}

}  // namespace
}  // namespace datacell
