// Observability layer tests: the metrics registry primitives (counters,
// gauges, log2 histograms), snapshot consistency under concurrent updates,
// the Prometheus text exposition, the bounded trace ring and its Chrome
// trace_event JSON export, and the end-to-end wiring through a running
// engine — every transition reports fire counts and latencies, every query
// reports its per-tuple response-time histogram.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "adapters/channel.h"
#include "adapters/sink.h"
#include "common/metrics_registry.h"
#include "common/trace.h"
#include "core/engine.h"

namespace datacell {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

template <typename Pred>
bool WaitFor(Pred done, milliseconds limit) {
  auto deadline = steady_clock::now() + limit;
  while (!done()) {
    if (steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return true;
}

// --- histogram primitives -------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 admits v <= 0; bucket b >= 1 admits [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::BucketFor(-5), 0u);
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(1), 1u);
  EXPECT_EQ(Histogram::BucketFor(2), 2u);
  EXPECT_EQ(Histogram::BucketFor(3), 2u);
  EXPECT_EQ(Histogram::BucketFor(4), 3u);
  EXPECT_EQ(Histogram::BucketFor(7), 3u);
  EXPECT_EQ(Histogram::BucketFor(8), 4u);
  EXPECT_EQ(Histogram::BucketFor(std::numeric_limits<int64_t>::max()),
            Histogram::kNumBuckets - 1);
  // Every bucket's bounds round-trip through BucketFor.
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketFor(Histogram::BucketLowerBound(b)), b)
        << "lower bound of bucket " << b;
    if (b < 63) {
      EXPECT_EQ(Histogram::BucketFor(Histogram::BucketUpperBound(b)), b)
          << "upper bound of bucket " << b;
    }
  }
  // Bounds tile the axis: upper(b) + 1 == lower(b + 1).
  for (size_t b = 0; b + 1 < 63; ++b) {
    EXPECT_EQ(Histogram::BucketUpperBound(b) + 1,
              Histogram::BucketLowerBound(b + 1));
  }
}

TEST(Histogram, CountSumMax) {
  Histogram h;
  for (int64_t v : {5, 10, 100, 0, 3}) h.Observe(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 118);
  EXPECT_EQ(s.max, 100);
  EXPECT_DOUBLE_EQ(s.Mean(), 118.0 / 5.0);
  uint64_t bucket_total = 0;
  for (uint64_t c : s.buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, 5u);
}

TEST(Histogram, PercentilesBoundedByBucketsAndMax) {
  Histogram h;
  // 100 observations of 10 (bucket [8,15]) and one outlier at 1000.
  for (int i = 0; i < 100; ++i) h.Observe(10);
  h.Observe(1000);
  HistogramSnapshot s = h.Snapshot();
  double p50 = s.Percentile(0.5);
  EXPECT_GE(p50, 8.0);
  EXPECT_LE(p50, 15.0);
  // p100 is clamped to the exact tracked max, not the bucket upper bound.
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 1000.0);
  // An all-in-one-bucket distribution never reports past its max.
  Histogram one;
  for (int i = 0; i < 10; ++i) one.Observe(9);
  EXPECT_LE(one.Snapshot().Percentile(0.99), 9.0);
  // Empty histogram: all percentiles are 0.
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Snapshot().Percentile(0.5), 0.0);
}

TEST(MetricsRegistry, StablePointersAndLabelIdentity) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("datacell_x_total", {{"k", "1"}});
  Counter* b = reg.GetCounter("datacell_x_total", {{"k", "1"}});
  Counter* c = reg.GetCounter("datacell_x_total", {{"k", "2"}});
  EXPECT_EQ(a, b);   // same (name, labels) -> same instance
  EXPECT_NE(a, c);   // distinct labels -> distinct series
  a->Inc(3);
  c->Inc(5);
  EXPECT_EQ(reg.num_metrics(), 2u);
  MetricsSnapshotData snap = reg.Snapshot();
  EXPECT_EQ(snap.FindCounter("datacell_x_total", "1")->value, 3);
  EXPECT_EQ(snap.FindCounter("datacell_x_total", "2")->value, 5);
  EXPECT_EQ(snap.FindCounter("datacell_missing"), nullptr);

  Gauge* g = reg.GetGauge("datacell_depth");
  g->Set(7);
  g->UpdateMax(3);  // lower: no change
  EXPECT_EQ(g->value(), 7);
  g->UpdateMax(11);
  EXPECT_EQ(g->value(), 11);
}

TEST(MetricsRegistry, RenderMetricNameEscapesValues) {
  EXPECT_EQ(RenderMetricName("m", {}), "m");
  EXPECT_EQ(RenderMetricName("m", {{"a", "x"}, {"b", "y"}}),
            "m{a=\"x\",b=\"y\"}");
  EXPECT_EQ(RenderMetricName("m", {{"a", "he said \"hi\"\n"}}),
            "m{a=\"he said \\\"hi\\\"\\n\"}");
}

TEST(MetricsRegistry, PrometheusTextGolden) {
  MetricsRegistry reg;
  reg.GetCounter("datacell_test_events_total")->Inc(3);
  reg.GetCounter("datacell_test_tuples_total", {{"query", "q1"}})->Inc(7);
  reg.GetGauge("datacell_test_depth")->Set(5);
  Histogram* h = reg.GetHistogram("datacell_test_latency_us");
  h->Observe(1);    // bucket 1  [1, 1]
  h->Observe(3);    // bucket 2  [2, 3]
  h->Observe(100);  // bucket 7  [64, 127]
  EXPECT_EQ(reg.PrometheusText(),
            "# TYPE datacell_test_events_total counter\n"
            "datacell_test_events_total 3\n"
            "# TYPE datacell_test_tuples_total counter\n"
            "datacell_test_tuples_total{query=\"q1\"} 7\n"
            "# TYPE datacell_test_depth gauge\n"
            "datacell_test_depth 5\n"
            "# TYPE datacell_test_latency_us histogram\n"
            "datacell_test_latency_us_bucket{le=\"0\"} 0\n"
            "datacell_test_latency_us_bucket{le=\"1\"} 1\n"
            "datacell_test_latency_us_bucket{le=\"3\"} 2\n"
            "datacell_test_latency_us_bucket{le=\"127\"} 3\n"
            "datacell_test_latency_us_bucket{le=\"+Inf\"} 3\n"
            "datacell_test_latency_us_sum 104\n"
            "datacell_test_latency_us_count 3\n");
}

TEST(MetricsRegistry, SnapshotConsistentUnderConcurrentObserve) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("datacell_race_us");
  Counter* c = reg.GetCounter("datacell_race_total");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([h, c, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Observe((i * 31 + t) % 5000);
        c->Inc();
      }
    });
  }
  // A reader snapshots continuously while writers hammer the cells. Every
  // snapshot must be internally sane: bucket totals never exceed the final
  // count, percentiles stay finite and ordered.
  std::thread reader([&reg, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshotData snap = reg.Snapshot();
      const HistogramSnapshot* hs = snap.FindHistogram("datacell_race_us");
      if (hs == nullptr) continue;
      uint64_t total = 0;
      for (uint64_t b : hs->buckets) total += b;
      ASSERT_LE(total, uint64_t{kThreads} * kPerThread);
      double p50 = hs->Percentile(0.5);
      double p99 = hs->Percentile(0.99);
      ASSERT_GE(p50, 0.0);
      ASSERT_LE(p50, p99 + 1e-9);
      ASSERT_LE(p99, 8191.0);  // upper bound of the bucket containing 4999
    }
  });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  HistogramSnapshot settled = h->Snapshot();
  EXPECT_EQ(settled.count, uint64_t{kThreads} * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : settled.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, settled.count);
  EXPECT_EQ(c->value(), int64_t{kThreads} * kPerThread);
}

// --- trace ring -----------------------------------------------------------

TEST(TraceRing, WraparoundKeepsNewestOldestFirst) {
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.RecordComplete("test", "e" + std::to_string(i), /*start_us=*/i,
                        /*dur_us=*/1);
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The newest 4 events survive, returned oldest-first.
  EXPECT_STREQ(events[0].name, "e6");
  EXPECT_STREQ(events[3].name, "e9");
  EXPECT_EQ(events[0].ts_us, 6);
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_recorded(), 0u);
}

TEST(TraceRing, LongNamesAreTruncatedSafely) {
  TraceRing ring(2);
  std::string long_name(200, 'x');
  ring.RecordInstant("test", long_name, 1);
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name),
            std::string(TraceEvent::kNameCapacity - 1, 'x'));
}

/// Minimal structural JSON validation: balanced braces/brackets outside
/// strings, no raw control characters inside strings.
void ExpectStructurallyValidJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      ASSERT_GE(static_cast<unsigned char>(c), 0x20) << "raw control char";
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(TraceRing, ChromeJsonShape) {
  TraceRing ring(8);
  EXPECT_EQ(ring.ToChromeJson(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
  ring.RecordComplete("scheduler", "sweep \"q\"", 100, 25, "fired", 2);
  ring.RecordInstant("scheduler", "wake_notified", 130);
  std::string json = ring.ToChromeJson();
  ExpectStructurallyValidJson(json);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":25"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"fired\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);  // instant scope
  EXPECT_NE(json.find("sweep \\\"q\\\""), std::string::npos);  // escaping
}

// --- engine wiring --------------------------------------------------------

TEST(EngineMetrics, PipelineMetricsThroughRunningScheduler) {
  constexpr int kBatches = 20;
  constexpr int kRowsPerBatch = 32;
  constexpr int64_t kTotal = int64_t{kBatches} * kRowsPerBatch;

  EngineOptions opts;
  opts.trace_capacity = 1 << 12;
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int)").ok());
  // `select *` projects the stream's arrival ts through to the output
  // basket, so the emitter-side histogram measures genuine end-to-end
  // (ingest -> delivery) per-tuple latency.
  auto q = engine.SubmitContinuousQuery("obs",
                                        "select * from [select * from s] as a");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto sink = std::make_shared<CountingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, sink).ok());

  ASSERT_TRUE(engine.Start(2).ok());
  for (int b = 0; b < kBatches; ++b) {
    std::vector<Row> rows;
    for (int i = 0; i < kRowsPerBatch; ++i) {
      rows.push_back({Value::Int64(i)});
    }
    ASSERT_TRUE(engine.IngestBatch("s", rows).ok());
  }
  ASSERT_TRUE(WaitFor([&] { return sink->rows() >= kTotal; },
                      milliseconds(10000)))
      << "delivered " << sink->rows();
  engine.Stop();

  MetricsSnapshotData snap = engine.MetricsSnapshot();

  // Per-transition fire counts and latency histograms, consistent with the
  // transitions' own run accounting (quiescent engine: exact equality).
  for (const TransitionPtr& t : engine.scheduler().transitions()) {
    const CounterSnapshot* fires =
        snap.FindCounter("datacell_transition_fires_total", t->name());
    const CounterSnapshot* tuples =
        snap.FindCounter("datacell_transition_tuples_total", t->name());
    const HistogramSnapshot* lat =
        snap.FindHistogram("datacell_transition_fire_latency_us", t->name());
    ASSERT_NE(fires, nullptr) << t->name();
    ASSERT_NE(tuples, nullptr) << t->name();
    ASSERT_NE(lat, nullptr) << t->name();
    EXPECT_EQ(fires->value, t->runs()) << t->name();
    EXPECT_EQ(tuples->value, t->tuples_processed()) << t->name();
    EXPECT_EQ(lat->count, static_cast<uint64_t>(t->runs())) << t->name();
    EXPECT_GT(fires->value, 0) << t->name();
  }

  // The factory processed every ingested tuple exactly once.
  const CounterSnapshot* factory_tuples =
      snap.FindCounter("datacell_transition_tuples_total", "factory_obs");
  ASSERT_NE(factory_tuples, nullptr);
  EXPECT_EQ(factory_tuples->value, kTotal);

  // Per-query end-to-end latency: one observation per delivered tuple,
  // non-negative, max >= p50.
  const HistogramSnapshot* e2e =
      snap.FindHistogram("datacell_query_e2e_latency_us", "obs");
  ASSERT_NE(e2e, nullptr);
  EXPECT_EQ(e2e->count, static_cast<uint64_t>(kTotal));
  EXPECT_GE(e2e->max, 0);
  EXPECT_LE(e2e->Percentile(0.5), static_cast<double>(e2e->max) + 1e-9);

  // Pulled metrics: ingest totals and basket flow accounting.
  EXPECT_EQ(snap.FindCounter("datacell_ingested_tuples_total")->value, kTotal);
  const CounterSnapshot* appended =
      snap.FindCounter("datacell_basket_appended_total", "s");
  ASSERT_NE(appended, nullptr);
  EXPECT_EQ(appended->value, kTotal);
  const GaugeSnapshot* high_water = snap.FindGauge("datacell_basket_high_water", "s");
  ASSERT_NE(high_water, nullptr);
  EXPECT_GE(high_water->value, kRowsPerBatch);
  EXPECT_GT(snap.FindCounter("datacell_scheduler_sweeps_total")->value, 0);

  // Prometheus exposition carries the same series.
  std::string text = engine.MetricsText();
  EXPECT_NE(text.find("# TYPE datacell_transition_fires_total counter"),
            std::string::npos);
  EXPECT_NE(
      text.find("datacell_query_e2e_latency_us_count{query=\"obs\"} " +
                std::to_string(kTotal)),
      std::string::npos);
  EXPECT_NE(text.find("datacell_ingested_tuples_total " +
                      std::to_string(kTotal)),
            std::string::npos);

  // StatsReport is built on the same snapshot.
  std::string report = engine.StatsReport();
  EXPECT_NE(report.find("factory_obs"), std::string::npos);
  EXPECT_NE(report.find("-- queries (end-to-end tuple latency) --"),
            std::string::npos);
  EXPECT_NE(report.find("delivered=" + std::to_string(kTotal)),
            std::string::npos);

  // The trace ring saw scheduler and transition activity; the export is
  // structurally valid Chrome JSON. Under -DDATACELL_TRACE=OFF the ring is
  // never allocated, even with trace_capacity set.
  if (kTraceCompiled) {
    ASSERT_NE(engine.trace(), nullptr);
    EXPECT_GT(engine.trace()->total_recorded(), 0u);
    std::string json = engine.TraceJson();
    ExpectStructurallyValidJson(json);
    EXPECT_NE(json.find("factory_obs"), std::string::npos);
  } else {
    EXPECT_EQ(engine.trace(), nullptr);
    EXPECT_EQ(engine.TraceJson(), "");
  }
}

TEST(EngineMetrics, TracingDisabledByDefault) {
  Engine engine;
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "t", "select x from [select * from s] as a");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(engine.Ingest("s", {Value::Int64(1)}).ok());
  engine.Drain();
  // No ring allocated: zero trace cost, empty export, but metrics still on.
  EXPECT_EQ(engine.trace(), nullptr);
  EXPECT_EQ(engine.TraceJson(), "");
  EXPECT_GT(engine.MetricsSnapshot()
                .FindCounter("datacell_transition_fires_total", "factory_t")
                ->value,
            0);
}

TEST(EngineMetrics, MalformedReceptorLinesReachRegistry) {
  Engine engine;
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int)").ok());
  Channel wire;
  ASSERT_TRUE(engine.AttachReceptor("s", &wire).ok());
  wire.Push("42");
  wire.Push("not-a-number");
  wire.Push("7");
  engine.Drain();
  MetricsSnapshotData snap = engine.MetricsSnapshot();
  const CounterSnapshot* malformed =
      snap.FindCounter("datacell_receptor_malformed_total", "receptor_s_0");
  ASSERT_NE(malformed, nullptr);
  EXPECT_EQ(malformed->value, 1);
  EXPECT_EQ(snap.FindCounter("datacell_ingested_tuples_total")->value, 2);
}

}  // namespace
}  // namespace datacell
