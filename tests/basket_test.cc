#include <gtest/gtest.h>

#include "core/basket.h"

namespace datacell {
namespace {

Schema UserSchema() {
  return Schema({{"a", DataType::kInt64}, {"b", DataType::kString}});
}

std::shared_ptr<Basket> MakeBasket(const std::string& name = "r") {
  return std::make_shared<Basket>(Basket::MakeBasketTable(name, UserSchema()));
}

Row R(int a, const std::string& b) {
  return Row{Value::Int64(a), Value::String(b)};
}

TEST(BasketTest, SchemaGetsTsColumn) {
  auto b = MakeBasket();
  ASSERT_EQ(b->schema().num_fields(), 3u);
  EXPECT_EQ(b->schema().field(2).name, "ts");
  EXPECT_EQ(b->schema().field(2).type, DataType::kTimestamp);
  EXPECT_EQ(b->ts_column(), 2u);
  EXPECT_TRUE(Basket::HasTsColumn(b->schema()));
  EXPECT_FALSE(Basket::HasTsColumn(UserSchema()));
}

TEST(BasketTest, AppendStampsTs) {
  auto b = MakeBasket();
  ASSERT_TRUE(b->Append(R(1, "x"), 12345).ok());
  auto snap = b->PeekSnapshot();
  ASSERT_EQ(snap->num_rows(), 1u);
  EXPECT_EQ(snap->GetRow(0)[2], Value::TimestampVal(12345));
}

TEST(BasketTest, AppendValidatesTypes) {
  auto b = MakeBasket();
  EXPECT_FALSE(b->Append({Value::String("no"), Value::String("x")}, 1).ok());
  EXPECT_FALSE(b->Append({Value::Int64(1)}, 1).ok());  // arity
  EXPECT_EQ(b->size(), 0u);
}

TEST(BasketTest, DrainAllEmptiesAndCounts) {
  auto b = MakeBasket();
  ASSERT_TRUE(b->AppendBatch({R(1, "x"), R(2, "y")}, 7).ok());
  EXPECT_EQ(b->size(), 2u);
  auto drained = b->DrainAll();
  EXPECT_EQ(drained->num_rows(), 2u);
  EXPECT_EQ(b->size(), 0u);
  EXPECT_EQ(b->total_appended(), 2);
  EXPECT_EQ(b->total_consumed(), 2);
}

TEST(BasketTest, DrainMatchingLeavesRest) {
  auto b = MakeBasket();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(b->Append(R(i, "v"), i).ok());
  }
  // Predicate over the basket schema: a < 5.
  auto pred = Expr::Binary(BinaryOp::kLt,
                           Expr::Column(0, "a", DataType::kInt64),
                           Expr::Int(5));
  auto matched = b->DrainMatching(*pred);
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ((*matched)->num_rows(), 5u);
  EXPECT_EQ(b->size(), 5u);  // partially emptied basket (paper §2.6)
  auto snap = b->PeekSnapshot();
  EXPECT_EQ(snap->GetRow(0)[0], Value::Int64(5));
}

// Regression: an interior removal (DrainMatching keeps non-matching tuples
// but shrinks the oid range without advancing hseqbase) used to leave a
// registered reader's watermark pointing past the basket end, and the next
// ReadNewFor aborted slicing out of range. Watermarks are now clamped back
// to the end on interior removal; the reader resumes with fresh arrivals.
TEST(BasketTest, ReaderWatermarkSurvivesInteriorDrain) {
  auto b = MakeBasket();
  size_t r = b->RegisterReader();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(b->Append(R(i, "v"), i).ok());
  }
  EXPECT_EQ(b->ReadNewFor(r)->num_rows(), 5u);  // watermark at oid 5
  auto pred = Expr::Binary(BinaryOp::kLt,
                           Expr::Column(0, "a", DataType::kInt64),
                           Expr::Int(3));
  auto matched = b->DrainMatching(*pred);  // removes 3 of 5; end is now oid 2
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ((*matched)->num_rows(), 3u);
  EXPECT_EQ(b->size(), 2u);
  TablePtr again = b->ReadNewFor(r);  // used to abort here
  EXPECT_EQ(again->num_rows(), 0u);
  ASSERT_TRUE(b->Append(R(9, "z"), 9).ok());
  TablePtr fresh = b->ReadNewFor(r);
  ASSERT_EQ(fresh->num_rows(), 1u);
  EXPECT_EQ(fresh->GetRow(0)[0], Value::Int64(9));
}

TEST(BasketTest, DrainSplitRoutesNonMatching) {
  auto src = MakeBasket("src");
  auto next = MakeBasket("next");
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(src->Append(R(i, "v"), i).ok());
  }
  auto pred = Expr::Binary(BinaryOp::kLt,
                           Expr::Column(0, "a", DataType::kInt64),
                           Expr::Int(2));
  auto matched = src->DrainSplit(*pred, next.get());
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ((*matched)->num_rows(), 2u);
  EXPECT_EQ(src->size(), 0u);
  EXPECT_EQ(next->size(), 4u);
  // Timestamps travel with the tuples.
  EXPECT_EQ(next->PeekSnapshot()->GetRow(0)[2], Value::TimestampVal(2));
}

TEST(BasketTest, PeekDoesNotConsume) {
  auto b = MakeBasket();
  ASSERT_TRUE(b->Append(R(1, "x"), 1).ok());
  auto snap = b->PeekSnapshot();
  EXPECT_EQ(snap->num_rows(), 1u);
  EXPECT_EQ(b->size(), 1u);
  // The snapshot is independent of later appends.
  ASSERT_TRUE(b->Append(R(2, "y"), 2).ok());
  EXPECT_EQ(snap->num_rows(), 1u);
}

TEST(BasketTest, SharedReadersWatermarks) {
  auto b = MakeBasket();
  size_t r1 = b->RegisterReader();
  ASSERT_TRUE(b->AppendBatch({R(1, "a"), R(2, "b")}, 1).ok());
  size_t r2 = b->RegisterReader();  // registers at the current end
  ASSERT_TRUE(b->Append(R(3, "c"), 2).ok());

  EXPECT_EQ(b->UnseenCount(r1), 3u);
  EXPECT_EQ(b->UnseenCount(r2), 1u);

  auto s1 = b->ReadNewFor(r1);
  EXPECT_EQ(s1->num_rows(), 3u);
  EXPECT_EQ(b->UnseenCount(r1), 0u);
  // Tuples stay until everyone saw them.
  EXPECT_EQ(b->TrimConsumed(), 2u);  // r2 already saw the first two
  EXPECT_EQ(b->size(), 1u);

  auto s2 = b->ReadNewFor(r2);
  EXPECT_EQ(s2->num_rows(), 1u);
  EXPECT_EQ(s2->GetRow(0)[0], Value::Int64(3));
  EXPECT_EQ(b->TrimConsumed(), 1u);
  EXPECT_EQ(b->size(), 0u);
}

TEST(BasketTest, TrimWithoutReadersKeepsAll) {
  auto b = MakeBasket();
  ASSERT_TRUE(b->Append(R(1, "x"), 1).ok());
  EXPECT_EQ(b->TrimConsumed(), 0u);
  EXPECT_EQ(b->size(), 1u);
}

TEST(BasketTest, ReadNewTwiceReturnsNothing) {
  auto b = MakeBasket();
  size_t r = b->RegisterReader();
  ASSERT_TRUE(b->Append(R(1, "x"), 1).ok());
  EXPECT_EQ(b->ReadNewFor(r)->num_rows(), 1u);
  EXPECT_EQ(b->ReadNewFor(r)->num_rows(), 0u);
}

TEST(BasketTest, AppendWithTsPreservesStamps) {
  auto a = MakeBasket("a");
  auto b = MakeBasket("b");
  ASSERT_TRUE(a->Append(R(1, "x"), 42).ok());
  auto t = a->DrainAll();
  ASSERT_TRUE(b->AppendWithTs(*t).ok());
  EXPECT_EQ(b->PeekSnapshot()->GetRow(0)[2], Value::TimestampVal(42));
}

TEST(BasketTest, AppendStampedAddsTs) {
  auto b = MakeBasket();
  Table results("", UserSchema());
  ASSERT_TRUE(results.AppendRow(R(5, "r")).ok());
  ASSERT_TRUE(b->AppendStamped(results, 99).ok());
  auto snap = b->PeekSnapshot();
  EXPECT_EQ(snap->GetRow(0)[0], Value::Int64(5));
  EXPECT_EQ(snap->GetRow(0)[2], Value::TimestampVal(99));
}

TEST(BasketTest, AppendStampedValidates) {
  auto b = MakeBasket();
  Table wrong("", Schema({{"a", DataType::kInt64}}));
  EXPECT_FALSE(b->AppendStamped(wrong, 1).ok());
  Table wrong_type(
      "", Schema({{"a", DataType::kDouble}, {"b", DataType::kString}}));
  EXPECT_FALSE(b->AppendStamped(wrong_type, 1).ok());
}

TEST(BasketTest, OldestNewestTs) {
  auto b = MakeBasket();
  EXPECT_FALSE(b->OldestTs().has_value());
  // Out-of-order arrival: baskets are multisets (paper §2.2).
  ASSERT_TRUE(b->Append(R(1, "x"), 50).ok());
  ASSERT_TRUE(b->Append(R(2, "y"), 10).ok());
  ASSERT_TRUE(b->Append(R(3, "z"), 30).ok());
  EXPECT_EQ(*b->OldestTs(), 10);
  EXPECT_EQ(*b->NewestTs(), 50);
}

TEST(BasketTest, LoadSheddingDropOldest) {
  auto b = MakeBasket();
  b->SetCapacity(3, Basket::DropPolicy::kDropOldest);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(b->Append(R(i, "v"), i).ok());
  }
  EXPECT_EQ(b->size(), 3u);
  EXPECT_EQ(b->total_shed(), 2);
  // The freshest tuples survive.
  auto snap = b->PeekSnapshot();
  EXPECT_EQ(snap->GetRow(0)[0], Value::Int64(2));
  EXPECT_EQ(snap->GetRow(2)[0], Value::Int64(4));
}

TEST(BasketTest, LoadSheddingDropNewest) {
  auto b = MakeBasket();
  b->SetCapacity(3, Basket::DropPolicy::kDropNewest);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(b->Append(R(i, "v"), i).ok());
  }
  EXPECT_EQ(b->size(), 3u);
  EXPECT_EQ(b->total_shed(), 2);
  // The oldest tuples survive.
  auto snap = b->PeekSnapshot();
  EXPECT_EQ(snap->GetRow(0)[0], Value::Int64(0));
  EXPECT_EQ(snap->GetRow(2)[0], Value::Int64(2));
}

TEST(BasketTest, LoadSheddingBatchAppend) {
  auto b = MakeBasket();
  b->SetCapacity(4, Basket::DropPolicy::kDropOldest);
  std::vector<Row> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(R(i, "v"));
  ASSERT_TRUE(b->AppendBatch(batch, 0).ok());
  EXPECT_EQ(b->size(), 4u);
  EXPECT_EQ(b->total_shed(), 6);
  EXPECT_EQ(b->PeekSnapshot()->GetRow(0)[0], Value::Int64(6));
}

TEST(BasketTest, ShrinkingCapacitySheds) {
  auto b = MakeBasket();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(b->Append(R(i, "v"), i).ok());
  }
  b->SetCapacity(2, Basket::DropPolicy::kDropNewest);
  EXPECT_EQ(b->size(), 2u);
  EXPECT_EQ(b->total_shed(), 4);
  EXPECT_EQ(b->capacity(), 2u);
}

TEST(BasketTest, ZeroCapacityMeansUnbounded) {
  auto b = MakeBasket();
  b->SetCapacity(0, Basket::DropPolicy::kDropOldest);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(b->Append(R(i, "v"), i).ok());
  }
  EXPECT_EQ(b->size(), 100u);
  EXPECT_EQ(b->total_shed(), 0);
}

TEST(BasketTest, MakeBasketTableRejectsNothing) {
  // Memory accounting sanity.
  auto b = MakeBasket();
  size_t empty = b->memory_usage();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(b->Append(R(i, "payload"), i).ok());
  }
  EXPECT_GT(b->memory_usage(), empty);
}

}  // namespace
}  // namespace datacell
