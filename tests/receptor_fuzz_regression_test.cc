// Replays the classes of malformed receptor input the fuzzers exercise
// (see fuzz/) as a deterministic regression suite: every line must be either
// parsed or rejected *gracefully* — dropped, counted in the
// datacell_receptor_malformed_total metric, logged — never crash the engine
// or corrupt the stream. Inputs that once misbehaved under the fuzzer belong
// in kMalformed below (alongside a corpus file under fuzz/corpus/csv/).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adapters/channel.h"
#include "core/engine.h"

namespace datacell {
namespace {

class ReceptorFuzzRegressionTest : public ::testing::Test {
 protected:
  ReceptorFuzzRegressionTest() : engine_(Options()) {}

  static EngineOptions Options() {
    EngineOptions opts;
    opts.use_wall_clock = false;
    return opts;
  }

  void Attach(const std::string& schema_sql) {
    ASSERT_TRUE(engine_.ExecuteSql(schema_sql).ok());
    auto receptor = engine_.AttachReceptor("r", &wire_);
    ASSERT_TRUE(receptor.ok());
    receptor_ = *receptor;
  }

  int64_t MalformedMetric() {
    auto snap = engine_.MetricsSnapshot();
    const CounterSnapshot* c =
        snap.FindCounter("datacell_receptor_malformed_total");
    return c == nullptr ? 0 : c->value;
  }

  Engine engine_;
  Channel wire_;
  Receptor* receptor_ = nullptr;
};

TEST_F(ReceptorFuzzRegressionTest, MalformedLinesAreDroppedAndCounted) {
  Attach("create basket r (x int, price float, name varchar)");
  const std::vector<std::string> kMalformed = {
      "",                          // empty line
      ",",                         // too few fields, all empty
      "1,2.5",                     // arity too low
      "1,2.5,alice,extra",         // arity too high
      "not-an-int,2.5,bob",        // int field garbage
      "1,not-a-float,carol",       // float field garbage
      "9223372036854775808,1,x",   // int64 overflow by one
      "-9223372036854775809,1,x",  // int64 underflow by one
      "1e999,1,x",                 // first field float-looking, not int
      "\"unterminated,1,x",        // quote never closed
      "1,\"2.5,name",              // quote opened mid-record
      "\x01\x02\x7f,1,x",            // control bytes in an int field
      std::string("1\0,2.5,x", 8),   // NUL embedded in an int field
      std::string(1 << 12, ','),     // 4 KiB of separators
  };
  for (const std::string& line : kMalformed) {
    wire_.Push(line);
  }
  wire_.Push("7,1.5,ok");  // one good line mixed in
  engine_.Drain();

  EXPECT_EQ(receptor_->malformed_lines(),
            static_cast<int64_t>(kMalformed.size()));
  EXPECT_EQ(MalformedMetric(), static_cast<int64_t>(kMalformed.size()));
  // The good tuple made it through; the malformed ones left no trace.
  auto depth = engine_.ExecuteSql("select x from r");
  ASSERT_TRUE(depth.ok());
  ASSERT_EQ((*depth)->num_rows(), 1u);
  EXPECT_EQ((*depth)->GetRow(0)[0], Value::Int64(7));
}

TEST_F(ReceptorFuzzRegressionTest, WhitespaceAndQuotingEdgeCasesParse) {
  Attach("create basket r (x int, price float, name varchar)");
  // Near-miss well-formed lines: all must parse, none may be shed.
  wire_.Push("1,2.5,\"quoted name\"");
  wire_.Push("2,0.0,\"comma, inside\"");
  wire_.Push("3,-1.25,\"\"");   // quoted empty string
  wire_.Push("4,1e3,plain");    // exponent float
  engine_.Drain();
  EXPECT_EQ(receptor_->malformed_lines(), 0);
  auto rows = engine_.ExecuteSql("select name from r");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)->num_rows(), 4u);
  EXPECT_EQ((*rows)->GetRow(1)[0], Value::String("comma, inside"));
}

TEST_F(ReceptorFuzzRegressionTest, MalformedFloodDoesNotWedgeTheStream) {
  Attach("create basket r (x int)");
  for (int i = 0; i < 500; ++i) {
    wire_.Push("garbage-" + std::to_string(i));
  }
  engine_.Drain();
  // The stream stays usable after a burst of rejects.
  wire_.Push("42");
  engine_.Drain();
  EXPECT_EQ(receptor_->malformed_lines(), 500);
  auto rows = engine_.ExecuteSql("select x from r");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ((*rows)->num_rows(), 1u);
  EXPECT_EQ((*rows)->GetRow(0)[0], Value::Int64(42));
}

}  // namespace
}  // namespace datacell
