#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "common/random.h"

namespace datacell {
namespace {

TEST(SelectRangeTest, Int64Inclusive) {
  auto b = MakeInt64Bat({5, 1, 9, 3, 7});
  EXPECT_EQ(SelectRangeInt64(*b, 3, 7), (std::vector<size_t>{0, 3, 4}));
  EXPECT_EQ(SelectRangeInt64(*b, std::nullopt, 3), (std::vector<size_t>{1, 3}));
  EXPECT_EQ(SelectRangeInt64(*b, 8, std::nullopt), (std::vector<size_t>{2}));
  EXPECT_EQ(SelectRangeInt64(*b, std::nullopt, std::nullopt).size(), 5u);
  EXPECT_TRUE(SelectRangeInt64(*b, 100, 200).empty());
}

TEST(SelectRangeTest, SkipsNulls) {
  Bat b(DataType::kInt64);
  b.AppendInt64(1);
  b.AppendNull();
  b.AppendInt64(2);
  EXPECT_EQ(SelectRangeInt64(b, std::nullopt, std::nullopt),
            (std::vector<size_t>{0, 2}));
}

TEST(SelectRangeTest, DoubleRange) {
  auto b = MakeDoubleBat({0.1, 0.5, 0.9});
  EXPECT_EQ(SelectRangeDouble(*b, 0.2, 0.8), (std::vector<size_t>{1}));
}

TEST(SelectEqTest, Strings) {
  auto b = MakeStringBat({"x", "y", "x"});
  EXPECT_EQ(SelectEqString(*b, "x"), (std::vector<size_t>{0, 2}));
  EXPECT_TRUE(SelectEqString(*b, "z").empty());
}

TEST(PositionSetTest, IntersectUnionComplement) {
  std::vector<size_t> a{1, 3, 5, 7};
  std::vector<size_t> b{3, 4, 5};
  EXPECT_EQ(IntersectPositions(a, b), (std::vector<size_t>{3, 5}));
  EXPECT_EQ(UnionPositions(a, b), (std::vector<size_t>{1, 3, 4, 5, 7}));
  EXPECT_EQ(ComplementPositions(a, 8), (std::vector<size_t>{0, 2, 4, 6}));
  EXPECT_EQ(ComplementPositions({}, 3), (std::vector<size_t>{0, 1, 2}));
  EXPECT_TRUE(ComplementPositions({0, 1, 2}, 3).empty());
}

TEST(HashJoinTest, BasicMatches) {
  auto l = MakeInt64Bat({1, 2, 3, 2});
  auto r = MakeInt64Bat({2, 4, 2});
  auto jr = HashJoin(*l, *r);
  ASSERT_TRUE(jr.ok());
  // left pos 1 and 3 each match right pos 0 and 2 -> 4 pairs.
  ASSERT_EQ(jr->left_positions.size(), 4u);
  for (size_t i = 0; i < jr->left_positions.size(); ++i) {
    EXPECT_EQ(l->Int64At(jr->left_positions[i]),
              r->Int64At(jr->right_positions[i]));
  }
}

TEST(HashJoinTest, NoMatches) {
  auto jr = HashJoin(*MakeInt64Bat({1}), *MakeInt64Bat({2}));
  ASSERT_TRUE(jr.ok());
  EXPECT_TRUE(jr->left_positions.empty());
}

TEST(HashJoinTest, NullsNeverJoin) {
  Bat l(DataType::kInt64);
  l.AppendNull();
  l.AppendInt64(1);
  Bat r(DataType::kInt64);
  r.AppendNull();
  r.AppendInt64(1);
  auto jr = HashJoin(l, r);
  ASSERT_TRUE(jr.ok());
  ASSERT_EQ(jr->left_positions.size(), 1u);
  EXPECT_EQ(jr->left_positions[0], 1u);
}

TEST(HashJoinTest, StringKeys) {
  auto jr = HashJoin(*MakeStringBat({"a", "b"}), *MakeStringBat({"b", "c"}));
  ASSERT_TRUE(jr.ok());
  ASSERT_EQ(jr->left_positions.size(), 1u);
  EXPECT_EQ(jr->left_positions[0], 1u);
  EXPECT_EQ(jr->right_positions[0], 0u);
}

TEST(HashJoinTest, TypeMismatchRejected) {
  EXPECT_FALSE(HashJoin(*MakeInt64Bat({1}), *MakeStringBat({"1"})).ok());
}

std::shared_ptr<Table> GroupTable() {
  auto t = std::make_shared<Table>(
      "t", Schema({{"k", DataType::kString}, {"v", DataType::kInt64}}));
  for (auto [k, v] : std::vector<std::pair<std::string, int>>{
           {"a", 1}, {"b", 2}, {"a", 3}, {"c", 4}, {"b", 5}, {"a", 6}}) {
    EXPECT_TRUE(t->AppendRow({Value::String(k), Value::Int64(v)}).ok());
  }
  return t;
}

TEST(GroupByTest, DenseIdsAndRepresentatives) {
  auto t = GroupTable();
  auto g = GroupBy(*t, {0});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_groups, 3u);
  EXPECT_EQ(g->group_ids, (std::vector<size_t>{0, 1, 0, 2, 1, 0}));
  EXPECT_EQ(g->representatives, (std::vector<size_t>{0, 1, 3}));
}

TEST(GroupByTest, MultiColumnKeys) {
  auto t = std::make_shared<Table>(
      "t", Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}));
  ASSERT_TRUE(t->AppendRow({Value::Int64(1), Value::Int64(1)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Int64(1), Value::Int64(2)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Int64(1), Value::Int64(1)}).ok());
  auto g = GroupBy(*t, {0, 1});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_groups, 2u);
}

TEST(GroupByTest, NullIsItsOwnGroup) {
  auto t = std::make_shared<Table>("t", Schema({{"k", DataType::kInt64}}));
  ASSERT_TRUE(t->AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Int64(0)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Null()}).ok());
  auto g = GroupBy(*t, {0});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_groups, 2u);
  EXPECT_EQ(g->group_ids[0], g->group_ids[2]);
}

TEST(GroupByTest, EmptyInput) {
  Table t("t", Schema({{"k", DataType::kInt64}}));
  auto g = GroupBy(t, {0});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_groups, 0u);
}

TEST(AggregateTest, AllFunctions) {
  auto v = MakeInt64Bat({4, 2, 8, 6});
  auto p = AggregateAll(*v, nullptr);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->Finalize(AggFunc::kCount), Value::Int64(4));
  EXPECT_EQ(p->Finalize(AggFunc::kSum), Value::Double(20));
  EXPECT_EQ(p->Finalize(AggFunc::kMin), Value::Double(2));
  EXPECT_EQ(p->Finalize(AggFunc::kMax), Value::Double(8));
  EXPECT_EQ(p->Finalize(AggFunc::kAvg), Value::Double(5));
}

TEST(AggregateTest, EmptyInputNullsExceptCount) {
  Bat v(DataType::kInt64);
  auto p = AggregateAll(v, nullptr);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->Finalize(AggFunc::kCount), Value::Int64(0));
  EXPECT_TRUE(p->Finalize(AggFunc::kSum).is_null());
  EXPECT_TRUE(p->Finalize(AggFunc::kAvg).is_null());
  EXPECT_TRUE(p->Finalize(AggFunc::kMin).is_null());
}

TEST(AggregateTest, NullsIgnored) {
  Bat v(DataType::kInt64);
  v.AppendInt64(10);
  v.AppendNull();
  v.AppendInt64(20);
  auto p = AggregateAll(v, nullptr);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->Finalize(AggFunc::kCount), Value::Int64(2));
  EXPECT_EQ(p->Finalize(AggFunc::kAvg), Value::Double(15));
}

TEST(AggregateTest, RestrictedToPositions) {
  auto v = MakeInt64Bat({1, 2, 3, 4});
  std::vector<size_t> pos{1, 3};
  auto p = AggregateAll(*v, &pos);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->Finalize(AggFunc::kSum), Value::Double(6));
}

TEST(AggregateTest, ByGroup) {
  auto t = GroupTable();
  auto g = GroupBy(*t, {0});
  ASSERT_TRUE(g.ok());
  auto partials = AggregateByGroup(*t->column(1), *g);
  ASSERT_TRUE(partials.ok());
  ASSERT_EQ(partials->size(), 3u);
  EXPECT_EQ((*partials)[0].Finalize(AggFunc::kSum), Value::Double(10));  // a
  EXPECT_EQ((*partials)[1].Finalize(AggFunc::kSum), Value::Double(7));   // b
  EXPECT_EQ((*partials)[2].Finalize(AggFunc::kSum), Value::Double(4));   // c
}

TEST(AggregateTest, StringsNotAggregatable) {
  auto s = MakeStringBat({"x"});
  EXPECT_FALSE(AggregateAll(*s, nullptr).ok());
}

// Property: merging partials of a split equals the partial of the whole —
// the decomposability the incremental window mode relies on (§3.1).
class AggMergeTest : public ::testing::TestWithParam<int> {};

TEST_P(AggMergeTest, MergeEqualsWhole) {
  int split = GetParam();
  Rng rng(99);
  std::vector<int64_t> data;
  for (int i = 0; i < 100; ++i) data.push_back(rng.Uniform(-50, 50));
  auto whole = MakeInt64Bat(data);
  auto p_whole = AggregateAll(*whole, nullptr);
  ASSERT_TRUE(p_whole.ok());

  std::vector<int64_t> first(data.begin(), data.begin() + split);
  std::vector<int64_t> second(data.begin() + split, data.end());
  auto p1 = AggregateAll(*MakeInt64Bat(first), nullptr);
  auto p2 = AggregateAll(*MakeInt64Bat(second), nullptr);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  AggPartial merged = *p1;
  merged.Merge(*p2);
  EXPECT_EQ(merged.count, p_whole->count);
  EXPECT_DOUBLE_EQ(merged.sum, p_whole->sum);
  EXPECT_DOUBLE_EQ(merged.min, p_whole->min);
  EXPECT_DOUBLE_EQ(merged.max, p_whole->max);
}

INSTANTIATE_TEST_SUITE_P(Splits, AggMergeTest,
                         ::testing::Values(0, 1, 13, 50, 99, 100));

TEST(SortTest, SingleKeyAscDesc) {
  auto t = std::make_shared<Table>("t", Schema({{"v", DataType::kInt64}}));
  for (int v : {3, 1, 2}) {
    ASSERT_TRUE(t->AppendRow({Value::Int64(v)}).ok());
  }
  auto asc = SortPositions(*t, {{0, true}});
  ASSERT_TRUE(asc.ok());
  EXPECT_EQ(*asc, (std::vector<size_t>{1, 2, 0}));
  auto desc = SortPositions(*t, {{0, false}});
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(*desc, (std::vector<size_t>{0, 2, 1}));
}

TEST(SortTest, MultiKeyStable) {
  auto t = std::make_shared<Table>(
      "t", Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}));
  ASSERT_TRUE(t->AppendRow({Value::Int64(1), Value::Int64(9)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Int64(0), Value::Int64(5)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Int64(1), Value::Int64(3)}).ok());
  auto perm = SortPositions(*t, {{0, true}, {1, true}});
  ASSERT_TRUE(perm.ok());
  EXPECT_EQ(*perm, (std::vector<size_t>{1, 2, 0}));
}

TEST(SortTest, NullsSortFirst) {
  auto t = std::make_shared<Table>("t", Schema({{"v", DataType::kInt64}}));
  ASSERT_TRUE(t->AppendRow({Value::Int64(1)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Null()}).ok());
  auto perm = SortPositions(*t, {{0, true}});
  ASSERT_TRUE(perm.ok());
  EXPECT_EQ(*perm, (std::vector<size_t>{1, 0}));
}

TEST(DistinctTest, FirstOccurrenceKept) {
  auto t = std::make_shared<Table>("t", Schema({{"v", DataType::kInt64}}));
  for (int v : {1, 2, 1, 3, 2}) {
    ASSERT_TRUE(t->AppendRow({Value::Int64(v)}).ok());
  }
  EXPECT_EQ(DistinctPositions(*t), (std::vector<size_t>{0, 1, 3}));
}

TEST(DistinctTest, FullRowSemantics) {
  auto t = std::make_shared<Table>(
      "t", Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}));
  ASSERT_TRUE(t->AppendRow({Value::Int64(1), Value::Int64(1)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Int64(1), Value::Int64(2)}).ok());
  ASSERT_TRUE(t->AppendRow({Value::Int64(1), Value::Int64(1)}).ok());
  EXPECT_EQ(DistinctPositions(*t).size(), 2u);
}

TEST(TopNTest, TruncatesAfterSort) {
  auto t = std::make_shared<Table>("t", Schema({{"v", DataType::kInt64}}));
  for (int v : {5, 3, 9, 1}) {
    ASSERT_TRUE(t->AppendRow({Value::Int64(v)}).ok());
  }
  auto top2 = TopN(*t, {{0, false}}, 2);
  ASSERT_TRUE(top2.ok());
  EXPECT_EQ(*top2, (std::vector<size_t>{2, 0}));
  auto top10 = TopN(*t, {{0, true}}, 10);
  ASSERT_TRUE(top10.ok());
  EXPECT_EQ(top10->size(), 4u);
}

TEST(EncodeRowKeyTest, EqualRowsEqualKeys) {
  auto t = GroupTable();
  // rows 0 and 2 share key "a".
  EXPECT_EQ(EncodeRowKey(*t, {0}, 0), EncodeRowKey(*t, {0}, 2));
  EXPECT_NE(EncodeRowKey(*t, {0}, 0), EncodeRowKey(*t, {0}, 1));
  // Full-row keys differ (values differ).
  EXPECT_NE(EncodeRowKey(*t, {0, 1}, 0), EncodeRowKey(*t, {0, 1}, 2));
}

// --- Parallel kernel variants: output must equal the scalar path --------

/// Tiny morsels + zero threshold force the fan-out even on small inputs.
ExecContext ForcedParallelCtx(ThreadPool* pool) {
  ExecContext ctx;
  ctx.pool = pool;
  ctx.parallel_threshold = 1;
  ctx.morsel_size = 128;
  return ctx;
}

TEST(ParallelKernelTest, SelectRangeMatchesScalar) {
  Rng rng(7);
  Bat b(DataType::kInt64);
  for (int i = 0; i < 10000; ++i) {
    if (i % 97 == 0) {
      b.AppendNull();
    } else {
      b.AppendInt64(rng.Uniform(0, 999));
    }
  }
  ThreadPool pool(3);
  ExecContext ctx = ForcedParallelCtx(&pool);
  EXPECT_EQ(SelectRangeInt64(b, 100, 700, ctx), SelectRangeInt64(b, 100, 700));
  EXPECT_EQ(SelectRangeInt64(b, std::nullopt, 50, ctx),
            SelectRangeInt64(b, std::nullopt, 50));
  EXPECT_EQ(SelectRangeInt64(b, 990, std::nullopt, ctx),
            SelectRangeInt64(b, 990, std::nullopt));
}

TEST(ParallelKernelTest, SelectDoubleAndStringMatchScalar) {
  Rng rng(11);
  Bat d(DataType::kDouble);
  Bat s(DataType::kString);
  for (int i = 0; i < 5000; ++i) {
    d.AppendDouble(static_cast<double>(rng.Uniform(0, 999)) / 10.0);
    s.AppendString(rng.Uniform(0, 1) == 0 ? "hit" : "miss");
  }
  ThreadPool pool(3);
  ExecContext ctx = ForcedParallelCtx(&pool);
  EXPECT_EQ(SelectRangeDouble(d, 10.0, 60.0, ctx),
            SelectRangeDouble(d, 10.0, 60.0));
  EXPECT_EQ(SelectEqString(s, "hit", ctx), SelectEqString(s, "hit"));
}

TEST(ParallelKernelTest, HashJoinProbeMatchesScalar) {
  Rng rng(13);
  Bat l(DataType::kInt64);
  Bat r(DataType::kInt64);
  for (int i = 0; i < 8000; ++i) l.AppendInt64(rng.Uniform(0, 499));
  for (int i = 0; i < 300; ++i) r.AppendInt64(rng.Uniform(0, 499));
  ThreadPool pool(3);
  ExecContext ctx = ForcedParallelCtx(&pool);
  auto par = HashJoin(l, r, ctx);
  auto ser = HashJoin(l, r);
  ASSERT_TRUE(par.ok());
  ASSERT_TRUE(ser.ok());
  EXPECT_EQ(par->left_positions, ser->left_positions);
  EXPECT_EQ(par->right_positions, ser->right_positions);
}

TEST(ParallelKernelTest, AggregatesMatchScalar) {
  Rng rng(17);
  auto t = std::make_shared<Table>(
      "t", Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}));
  for (int i = 0; i < 6000; ++i) {
    ASSERT_TRUE(t->AppendRow({Value::Int64(rng.Uniform(0, 31)),
                              Value::Int64(rng.Uniform(0, 100000))})
                    .ok());
  }
  auto g = GroupBy(*t, {0});
  ASSERT_TRUE(g.ok());
  ThreadPool pool(3);
  ExecContext ctx = ForcedParallelCtx(&pool);
  auto par = AggregateByGroup(*t->column(1), *g, ctx);
  auto ser = AggregateByGroup(*t->column(1), *g);
  ASSERT_TRUE(par.ok());
  ASSERT_TRUE(ser.ok());
  ASSERT_EQ(par->size(), ser->size());
  for (size_t i = 0; i < par->size(); ++i) {
    // Integer-valued data: partial sums are exact in double whatever the
    // association order, so equality is exact here.
    EXPECT_EQ((*par)[i].count, (*ser)[i].count) << "group " << i;
    EXPECT_EQ((*par)[i].sum, (*ser)[i].sum) << "group " << i;
    EXPECT_EQ((*par)[i].min, (*ser)[i].min) << "group " << i;
    EXPECT_EQ((*par)[i].max, (*ser)[i].max) << "group " << i;
  }

  auto par_all = AggregateAll(*t->column(1), nullptr, ctx);
  auto ser_all = AggregateAll(*t->column(1), nullptr);
  ASSERT_TRUE(par_all.ok());
  ASSERT_TRUE(ser_all.ok());
  EXPECT_EQ(par_all->count, ser_all->count);
  EXPECT_EQ(par_all->sum, ser_all->sum);
  EXPECT_EQ(par_all->min, ser_all->min);
  EXPECT_EQ(par_all->max, ser_all->max);
}

}  // namespace
}  // namespace datacell
