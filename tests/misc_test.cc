#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/engine.h"
#include "core/petri.h"

namespace datacell {
namespace {

EngineOptions Deterministic() {
  EngineOptions opts;
  opts.use_wall_clock = false;
  return opts;
}

// --- ExecuteScript ----------------------------------------------------------

TEST(ScriptTest, RunsStatementsInOrder) {
  Engine engine(Deterministic());
  auto result = engine.ExecuteScript(
      "create table t (a int, b varchar);"
      "insert into t values (1, 'x'), (2, 'y');"
      "insert into t values (3, 'z');"
      "select count(*) as c from t;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->GetRow(0)[0], Value::Int64(3));
}

TEST(ScriptTest, StopsAtFirstError) {
  Engine engine(Deterministic());
  auto result = engine.ExecuteScript(
      "create table t (a int);"
      "insert into missing values (1);"
      "create table u (a int);");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(engine.catalog().Contains("t"));
  EXPECT_FALSE(engine.catalog().Contains("u"));  // never reached
}

TEST(ScriptTest, LastSelectWins) {
  Engine engine(Deterministic());
  auto result = engine.ExecuteScript(
      "create table t (a int);"
      "insert into t values (7);"
      "select a from t;"
      "select a + 1 as b from t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->GetRow(0)[0], Value::Int64(8));
}

TEST(ScriptTest, ParseErrorRejectsWholeScript) {
  Engine engine(Deterministic());
  EXPECT_FALSE(
      engine.ExecuteScript("create table t (a int); garbage;").ok());
  EXPECT_FALSE(engine.catalog().Contains("t"));  // nothing executed
}

// --- DumpCatalogSql ---------------------------------------------------------

TEST(CatalogDumpTest, RoundTripsThroughExecuteScript) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine
                  .ExecuteScript("create table dim (k int, label varchar);"
                                 "create basket s (x int, y double);")
                  .ok());
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "q", "select x from [select * from s] as w")
                  .ok());
  std::string dump = engine.DumpCatalogSql();
  EXPECT_NE(dump.find("create table dim (k int64, label string);"),
            std::string::npos);
  // The implicit ts column is not declared, and the output basket appears.
  EXPECT_NE(dump.find("create basket s (x int64, y double);"),
            std::string::npos);
  EXPECT_NE(dump.find("create basket q_out"), std::string::npos);
  EXPECT_NE(dump.find("-- continuous query 'q'"), std::string::npos);

  // A fresh engine accepts the dump (queries are comments, schemas apply).
  Engine clone(Deterministic());
  auto replay = clone.ExecuteScript(dump);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString() << "\n" << dump;
  EXPECT_TRUE(clone.catalog().Contains("dim"));
  EXPECT_TRUE(clone.catalog().Contains("s"));
  // The cloned basket is a working stream with an implicit ts again.
  EXPECT_TRUE(clone.Ingest("s", {Value::Int64(1), Value::Double(2.0)}).ok());
}

// --- Petri dead-transition analysis ----------------------------------------

TEST(PetriAnalysisTest, DetectsUnfeedableTransition) {
  PetriNet net;
  auto src = net.AddPlace("stream", 1);
  auto mid = net.AddPlace("B1");
  auto orphan = net.AddPlace("nothing_feeds_me");
  auto out = net.AddPlace("out");
  auto ok1 = *net.AddTransition("R", {{src}}, {{mid}});
  auto ok2 = *net.AddTransition("Q", {{mid}}, {{out}});
  auto dead = *net.AddTransition("zombie", {{orphan}}, {{out}});
  (void)ok1;
  (void)ok2;
  auto dead_list = net.DeadTransitions();
  ASSERT_EQ(dead_list.size(), 1u);
  EXPECT_EQ(dead_list[0], dead);
}

TEST(PetriAnalysisTest, InitialTokensKeepTransitionAlive) {
  PetriNet net;
  auto buffered = net.AddPlace("preloaded", 5);
  auto out = net.AddPlace("out");
  ASSERT_TRUE(net.AddTransition("drainer", {{buffered}}, {{out}}).ok());
  EXPECT_TRUE(net.DeadTransitions().empty());
}

TEST(PetriAnalysisTest, WeightAboveBufferedTokensIsDead) {
  PetriNet net;
  auto buffered = net.AddPlace("preloaded", 3);
  auto out = net.AddPlace("out");
  auto t = *net.AddTransition("needs4", {{buffered, 4}}, {{out}});
  auto dead = net.DeadTransitions();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], t);
}

// --- logging ------------------------------------------------------------------

TEST(LoggingTest, LevelsFilter) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages are cheap no-ops; this must not crash or emit.
  DC_LOG(Debug) << "invisible " << 42;
  DC_LOG(Info) << "also invisible";
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(old_level);
}

}  // namespace
}  // namespace datacell
