#include <gtest/gtest.h>

#include "core/engine.h"

namespace datacell {
namespace {

EngineOptions Deterministic() {
  EngineOptions opts;
  opts.use_wall_clock = false;
  return opts;
}

TEST(EngineExtrasTest, MultipleSinksPerQuery) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "all", "select x from [select * from r] as s");
  ASSERT_TRUE(q.ok());
  auto a = std::make_shared<CountingSink>();
  auto b = std::make_shared<CollectingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, a).ok());
  ASSERT_TRUE(engine.Subscribe(*q, b).ok());
  ASSERT_TRUE(engine.Ingest("r", {Value::Int64(1)}).ok());
  engine.Drain();
  EXPECT_EQ(a->rows(), 1);
  EXPECT_EQ(b->row_count(), 1u);
  auto info = engine.GetQuery(*q);
  EXPECT_EQ((*info)->emitter->num_sinks(), 2u);
}

TEST(EngineExtrasTest, MultipleReceptorsOneStream) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "all", "select x from [select * from r] as s");
  ASSERT_TRUE(q.ok());
  auto sink = std::make_shared<CountingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, sink).ok());
  Channel wire1;
  Channel wire2;
  ASSERT_TRUE(engine.AttachReceptor("r", &wire1).ok());
  ASSERT_TRUE(engine.AttachReceptor("r", &wire2).ok());
  wire1.Push("1");
  wire2.Push("2");
  wire1.Push("3");
  engine.Drain();
  EXPECT_EQ(sink->rows(), 3);
}

TEST(EngineExtrasTest, AdaptivePolicyEndToEnd) {
  EngineOptions opts = Deterministic();
  opts.scheduling_policy = SchedulingPolicy::kAdaptive;
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "all", "select x from [select * from r] as s");
  ASSERT_TRUE(q.ok());
  auto sink = std::make_shared<CountingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, sink).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.Ingest("r", {Value::Int64(i)}).ok());
  }
  engine.Drain();
  EXPECT_EQ(sink->rows(), 100);
}

TEST(EngineExtrasTest, QueryOutputStreamNotDroppable) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "q", "select x from [select * from r] as s")
                  .ok());
  EXPECT_FALSE(engine.ExecuteSql("drop basket q_out").ok());
}

TEST(EngineExtrasTest, DuplicateQueryNameRejected) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "dup", "select x from [select * from r] as s")
                  .ok());
  // The output basket name collides.
  EXPECT_FALSE(engine
                   .SubmitContinuousQuery(
                       "dup", "select x from [select * from r] as s")
                   .ok());
}

TEST(EngineExtrasTest, OutputStreamInspectableWhileEmitterReads) {
  // The output basket is trimmed only when every reader (the emitter AND
  // any downstream factory) passed the tuples; a one-time query inspects
  // whatever currently sits there.
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "all", "select x from [select * from r] as s");
  ASSERT_TRUE(q.ok());
  // No sink subscribed: the emitter still drains (delivering to nobody).
  ASSERT_TRUE(engine.Ingest("r", {Value::Int64(5)}).ok());
  engine.Drain();
  auto rows = engine.ExecuteSql("select count(*) as c from all_out");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)->GetRow(0)[0], Value::Int64(0));  // trimmed after read
}

TEST(EngineExtrasTest, ThresholdAndWindowCompose) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "w", "select sum(x) as s from [select * from r] as w "
           "window size 4 threshold 8");
  ASSERT_TRUE(q.ok());
  auto sink = std::make_shared<CollectingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, sink).ok());
  // 7 tuples: below the firing threshold, nothing happens at all.
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(engine.Ingest("r", {Value::Int64(i)}).ok());
  }
  engine.Drain();
  EXPECT_EQ(sink->row_count(), 0u);
  // The 8th tuple lets the factory fire; two complete windows emit.
  ASSERT_TRUE(engine.Ingest("r", {Value::Int64(7)}).ok());
  engine.Drain();
  ASSERT_EQ(sink->row_count(), 2u);
  EXPECT_EQ(sink->SnapshotRows()[0][0], Value::Double(0 + 1 + 2 + 3));
  EXPECT_EQ(sink->SnapshotRows()[1][0], Value::Double(4 + 5 + 6 + 7));
}

TEST(EngineExtrasTest, MixedStrategiesSharedAndSeparateCoexist) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  QueryOptions sep;
  sep.strategy = ProcessingStrategy::kSeparateBaskets;
  QueryOptions shared;
  shared.strategy = ProcessingStrategy::kSharedBaskets;
  auto q1 = engine.SubmitContinuousQuery(
      "a", "select x from [select * from r] as s", sep);
  auto q2 = engine.SubmitContinuousQuery(
      "b", "select x from [select * from r] as s", shared);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  auto s1 = std::make_shared<CountingSink>();
  auto s2 = std::make_shared<CountingSink>();
  ASSERT_TRUE(engine.Subscribe(*q1, s1).ok());
  ASSERT_TRUE(engine.Subscribe(*q2, s2).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Ingest("r", {Value::Int64(i)}).ok());
  }
  engine.Drain();
  EXPECT_EQ(s1->rows(), 10);
  EXPECT_EQ(s2->rows(), 10);
}

TEST(EngineExtrasTest, ProjectedArrivalTsFlowsThrough) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "good", "select x, ts as arrival from [select * from r] as s");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto sink = std::make_shared<LatencyTrackingSink>(/*ts_column=*/1);
  ASSERT_TRUE(engine.Subscribe(*q, sink).ok());
  engine.simulated_clock()->SetTime(1000);
  ASSERT_TRUE(engine.Ingest("r", {Value::Int64(1)}).ok());
  engine.simulated_clock()->Advance(500);
  engine.Drain();
  ASSERT_EQ(sink->rows(), 1);
  EXPECT_DOUBLE_EQ(sink->latencies_us().Max(), 500.0);
}

TEST(EngineExtrasTest, SelectStarContinuousPreservesArrivalTs) {
  // `select *` projects the stream's ts last; the output basket reuses it
  // as its implicit timestamp, so arrival times survive the whole pipeline
  // (and a cascaded query's time windows stay anchored to arrival).
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "star", "select * from [select * from r] as s where s.x > 0");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto sink = std::make_shared<CollectingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, sink).ok());
  engine.simulated_clock()->SetTime(7777);
  ASSERT_TRUE(engine.Ingest("r", {Value::Int64(5)}).ok());
  engine.simulated_clock()->Advance(100000);
  engine.Drain();
  auto rows = sink->TakeRows();
  ASSERT_EQ(rows.size(), 1u);
  // (x, ts): the delivered ts is the ARRIVAL time, not production time.
  ASSERT_EQ(rows[0].size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int64(5));
  EXPECT_EQ(rows[0][1], Value::TimestampVal(7777));
  // The output stream's schema matches the input stream's user schema.
  auto out_basket = engine.GetBasket("star_out");
  ASSERT_TRUE(out_basket.ok());
  EXPECT_EQ((*out_basket)->schema().num_fields(), 2u);
}

TEST(EngineExtrasTest, SelectStarCascadeWorks) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "hop1", "select * from [select * from r] as s")
                  .ok());
  auto q2 = engine.SubmitContinuousQuery(
      "hop2", "select * from [select * from hop1_out] as t where t.x > 1");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  auto sink = std::make_shared<CountingSink>();
  ASSERT_TRUE(engine.Subscribe(*q2, sink).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.Ingest("r", {Value::Int64(i)}).ok());
  }
  engine.Drain();
  EXPECT_EQ(sink->rows(), 2);  // 2, 3
}

TEST(EngineExtrasTest, TuplesIngestedCounter) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  ASSERT_TRUE(engine.IngestBatch("r", {{Value::Int64(1)}, {Value::Int64(2)}})
                  .ok());
  Table batch("", Schema({{"x", DataType::kInt64}}));
  ASSERT_TRUE(batch.AppendRow({Value::Int64(3)}).ok());
  ASSERT_TRUE(engine.IngestTable("r", batch).ok());
  EXPECT_EQ(engine.tuples_ingested(), 3);
}

TEST(EngineExtrasTest, WindowedSharedSubplanWithThreshold) {
  EngineOptions opts = Deterministic();
  opts.factor_common_subplans = true;
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q1 = engine.SubmitContinuousQuery(
      "sum4", "select sum(x) as s from [select * from r where r.x > 10] as w "
              "window size 4");
  auto q2 = engine.SubmitContinuousQuery(
      "cnt4", "select count(*) as c from [select * from r where r.x > 10] "
              "as w window size 4");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(engine.num_shared_subplans(), 1u);
  auto s1 = std::make_shared<CollectingSink>();
  ASSERT_TRUE(engine.Subscribe(*q1, s1).ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(engine.Ingest("r", {Value::Int64(i)}).ok());
  }
  engine.Drain();
  // Qualifying tuples: 11..29 (19 tuples) -> 4 complete windows of 4.
  ASSERT_EQ(s1->row_count(), 4u);
  EXPECT_EQ(s1->SnapshotRows()[0][0], Value::Double(11 + 12 + 13 + 14));
}

}  // namespace
}  // namespace datacell
