#include <gtest/gtest.h>

#include "baseline/row_eval.h"
#include "baseline/tuple_engine.h"
#include "common/random.h"

namespace datacell {
namespace baseline {
namespace {

ExprPtr ColX() { return Expr::Column(0, "x", DataType::kInt64); }

// --- per-row expression evaluation ---------------------------------------

TEST(RowEvalTest, ArithmeticAndComparison) {
  Row row{Value::Int64(6)};
  auto e = Expr::Binary(BinaryOp::kMul, ColX(), Expr::Int(7));
  EXPECT_EQ(*EvaluateExprOnRow(*e, row), Value::Int64(42));
  auto cmp = Expr::Binary(BinaryOp::kGt, ColX(), Expr::Int(5));
  EXPECT_EQ(*EvaluateExprOnRow(*cmp, row), Value::Bool(true));
}

TEST(RowEvalTest, NullSemanticsMatchBulkEvaluator) {
  Row null_row{Value::Null()};
  auto add = Expr::Binary(BinaryOp::kAdd, ColX(), Expr::Int(1));
  EXPECT_TRUE(EvaluateExprOnRow(*add, null_row)->is_null());
  auto cmp = Expr::Binary(BinaryOp::kEq, ColX(), Expr::Int(0));
  EXPECT_EQ(*EvaluateExprOnRow(*cmp, null_row), Value::Bool(false));
  auto isnull = Expr::Unary(UnaryOp::kIsNull, ColX());
  EXPECT_EQ(*EvaluateExprOnRow(*isnull, null_row), Value::Bool(true));
}

TEST(RowEvalTest, DivisionByZeroNull) {
  Row row{Value::Int64(5)};
  auto div = Expr::Binary(BinaryOp::kDiv, ColX(), Expr::Int(0));
  EXPECT_TRUE(EvaluateExprOnRow(*div, row)->is_null());
}

TEST(RowEvalTest, StringComparison) {
  Row row{Value::String("banana")};
  auto e = Expr::Binary(BinaryOp::kLt,
                        Expr::Column(0, "s", DataType::kString),
                        Expr::Str("cherry"));
  EXPECT_EQ(*EvaluateExprOnRow(*e, row), Value::Bool(true));
}

TEST(RowEvalTest, PredicateHelper) {
  Row row{Value::Int64(3)};
  auto e = Expr::Binary(BinaryOp::kLt, ColX(), Expr::Int(5));
  EXPECT_TRUE(*EvaluatePredicateOnRow(*e, row));
}

// Property: per-row evaluation agrees with the bulk evaluator on random
// expressions over random data (the fairness premise of E2).
TEST(RowEvalTest, AgreesWithBulkEvaluator) {
  Rng rng(7);
  auto table = std::make_shared<Table>(
      "t", Schema({{"x", DataType::kInt64}, {"y", DataType::kDouble}}));
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(table
                    ->AppendRow({Value::Int64(rng.Uniform(-100, 100)),
                                 Value::Double(rng.UniformReal(-1, 1))})
                    .ok());
  }
  std::vector<ExprPtr> exprs = {
      Expr::Binary(BinaryOp::kAdd, ColX(), Expr::Int(3)),
      Expr::Binary(BinaryOp::kMul,
                   Expr::Column(1, "y", DataType::kDouble), Expr::Real(2.0)),
      Expr::Binary(BinaryOp::kAnd,
                   Expr::Binary(BinaryOp::kGt, ColX(), Expr::Int(0)),
                   Expr::Binary(BinaryOp::kLt,
                                Expr::Column(1, "y", DataType::kDouble),
                                Expr::Real(0.5))),
      Expr::Binary(BinaryOp::kMod, ColX(), Expr::Int(7)),
  };
  for (const ExprPtr& e : exprs) {
    auto bulk = EvaluateExpr(*e, *table);
    ASSERT_TRUE(bulk.ok());
    for (size_t i = 0; i < table->num_rows(); ++i) {
      auto row_result = EvaluateExprOnRow(*e, table->GetRow(i));
      ASSERT_TRUE(row_result.ok());
      EXPECT_EQ(*row_result, (*bulk)->GetValue(i))
          << e->ToString() << " row " << i;
    }
  }
}

// --- operators ------------------------------------------------------------

TEST(TuplePipelineTest, FilterMapSink) {
  TuplePipeline pipe;
  pipe.Add(std::make_unique<FilterOp>(
      Expr::Binary(BinaryOp::kGt, ColX(), Expr::Int(2))));
  pipe.Add(std::make_unique<MapOp>(std::vector<ExprPtr>{
      Expr::Binary(BinaryOp::kMul, ColX(), Expr::Int(10))}));
  auto* sink = static_cast<SinkOp*>(
      pipe.Add(std::make_unique<SinkOp>(/*collect=*/true)));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pipe.Push({Value::Int64(i)}).ok());
  }
  EXPECT_EQ(sink->count(), 2);
  EXPECT_EQ(sink->rows()[0][0], Value::Int64(30));
  EXPECT_EQ(sink->rows()[1][0], Value::Int64(40));
  EXPECT_EQ(pipe.tuples_pushed(), 5);
}

TEST(TuplePipelineTest, WindowAggregateTumbling) {
  TuplePipeline pipe;
  pipe.Add(std::make_unique<WindowAggregateOp>(
      std::vector<size_t>{}, std::vector<size_t>{0},
      std::vector<AggFunc>{AggFunc::kSum}, 3, 3));
  auto* sink = static_cast<SinkOp*>(
      pipe.Add(std::make_unique<SinkOp>(/*collect=*/true)));
  for (int i = 1; i <= 7; ++i) {
    ASSERT_TRUE(pipe.Push({Value::Int64(i)}).ok());
  }
  ASSERT_EQ(sink->count(), 2);
  EXPECT_EQ(sink->rows()[0][0], Value::Double(1 + 2 + 3));
  EXPECT_EQ(sink->rows()[1][0], Value::Double(4 + 5 + 6));
}

TEST(TuplePipelineTest, WindowAggregateSlidingGrouped) {
  TuplePipeline pipe;
  // group by col 0, sum col 1, window 4 slide 2.
  pipe.Add(std::make_unique<WindowAggregateOp>(
      std::vector<size_t>{0}, std::vector<size_t>{1},
      std::vector<AggFunc>{AggFunc::kSum}, 4, 2));
  auto* sink = static_cast<SinkOp*>(
      pipe.Add(std::make_unique<SinkOp>(/*collect=*/true)));
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(pipe.Push({Value::Int64(i % 2), Value::Int64(i)}).ok());
  }
  // Windows [1..4] and [3..6]; 2 groups each -> 4 result rows.
  EXPECT_EQ(sink->count(), 4);
}

TEST(TupleEngineTest, FanOutToAllPipelines) {
  TupleEngine engine;
  auto* p1 = engine.AddPipeline();
  auto* p2 = engine.AddPipeline();
  p1->Add(std::make_unique<FilterOp>(
      Expr::Binary(BinaryOp::kLt, ColX(), Expr::Int(5))));
  auto* s1 = static_cast<SinkOp*>(p1->Add(std::make_unique<SinkOp>()));
  p2->Add(std::make_unique<FilterOp>(
      Expr::Binary(BinaryOp::kGe, ColX(), Expr::Int(5))));
  auto* s2 = static_cast<SinkOp*>(p2->Add(std::make_unique<SinkOp>()));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Push({Value::Int64(i)}).ok());
  }
  EXPECT_EQ(engine.num_pipelines(), 2u);
  EXPECT_EQ(s1->count(), 5);
  EXPECT_EQ(s2->count(), 5);
  EXPECT_TRUE(engine.Finish().ok());
}

}  // namespace
}  // namespace baseline
}  // namespace datacell
