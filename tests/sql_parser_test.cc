#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace datacell {
namespace sql {
namespace {

// --- Lexer -------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("select a, b from t where a >= 10;");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 10u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "select");
  EXPECT_EQ((*tokens)[2].type, TokenType::kComma);
  EXPECT_EQ(tokens->back().type, TokenType::kEof);
}

TEST(LexerTest, NumberLiterals) {
  auto tokens = Tokenize("1 2.5 1e3 .5 -7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIntLiteral);
  EXPECT_EQ((*tokens)[0].int_value, 1);
  EXPECT_EQ((*tokens)[1].type, TokenType::kFloatLiteral);
  EXPECT_DOUBLE_EQ((*tokens)[1].float_value, 2.5);
  EXPECT_EQ((*tokens)[2].type, TokenType::kFloatLiteral);
  EXPECT_DOUBLE_EQ((*tokens)[2].float_value, 1000.0);
  EXPECT_EQ((*tokens)[3].type, TokenType::kFloatLiteral);
  // '-7' lexes as minus then int (unary minus handled by the parser).
  EXPECT_EQ((*tokens)[4].type, TokenType::kMinus);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Tokenize("'hello' 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "hello");
  EXPECT_EQ((*tokens)[1].text, "it's");
  EXPECT_FALSE(Tokenize("'unterminated").ok());
}

TEST(LexerTest, OperatorsAndBrackets) {
  auto tokens = Tokenize("<> != <= >= [ ] ( ) . %");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kNe);
  EXPECT_EQ((*tokens)[1].type, TokenType::kNe);
  EXPECT_EQ((*tokens)[2].type, TokenType::kLe);
  EXPECT_EQ((*tokens)[3].type, TokenType::kGe);
  EXPECT_EQ((*tokens)[4].type, TokenType::kLBracket);
  EXPECT_EQ((*tokens)[5].type, TokenType::kRBracket);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("select -- a comment\n x");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // select, x, eof
  EXPECT_EQ((*tokens)[1].text, "x");
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_FALSE(Tokenize("select @").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

// --- Parser: SELECT -------------------------------------------------------

TEST(ParserTest, MinimalSelect) {
  auto stmt = ParseStatement("select * from t");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kSelect);
  const SelectStmt& s = *stmt->select;
  ASSERT_EQ(s.items.size(), 1u);
  EXPECT_TRUE(s.items[0].star);
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].name, "t");
  EXPECT_FALSE(s.IsContinuous());
}

TEST(ParserTest, SelectItemsWithAliases) {
  auto stmt = ParseStatement("select a, b + 1 as b1, c c2 from t");
  ASSERT_TRUE(stmt.ok());
  const SelectStmt& s = *stmt->select;
  ASSERT_EQ(s.items.size(), 3u);
  EXPECT_EQ(s.items[0].expr->column, "a");
  EXPECT_EQ(s.items[1].alias, "b1");
  EXPECT_EQ(s.items[2].alias, "c2");
}

TEST(ParserTest, WhereGroupHavingOrderLimit) {
  auto stmt = ParseStatement(
      "select k, sum(v) as s from t where v > 0 group by k "
      "having sum(v) > 10 order by s desc, k limit 5 offset 2");
  ASSERT_TRUE(stmt.ok());
  const SelectStmt& s = *stmt->select;
  ASSERT_NE(s.where, nullptr);
  ASSERT_EQ(s.group_by.size(), 1u);
  ASSERT_NE(s.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_FALSE(s.order_by[0].ascending);
  EXPECT_TRUE(s.order_by[1].ascending);
  EXPECT_EQ(s.limit, 5);
  EXPECT_EQ(s.offset, 2);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto stmt = ParseStatement("select * from t where a + 2 * b > 10 and c = 1");
  ASSERT_TRUE(stmt.ok());
  // ((a + (2*b)) > 10) and (c = 1)
  const AstExpr& w = *stmt->select->where;
  EXPECT_EQ(w.ToString(), "(((a + (2 * b)) > 10) and (c = 1))");
}

TEST(ParserTest, NotAndIsNull) {
  auto stmt = ParseStatement(
      "select * from t where not a is null and b is not null");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->where->ToString(),
            "(not ((a is null)) and (b is not null))");
}

TEST(ParserTest, UnaryMinusAndParens) {
  auto stmt = ParseStatement("select * from t where (a + -1) * 2 = -4");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->where->ToString(), "(((a + -(1)) * 2) = -(4))");
}

TEST(ParserTest, BooleanAndNullLiterals) {
  auto stmt = ParseStatement("select * from t where a = true or b = null");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->where->ToString(), "((a = true) or (b = null))");
}

TEST(ParserTest, QualifiedColumns) {
  auto stmt = ParseStatement("select t.a from t where t.a > 0");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->items[0].expr->qualifier, "t");
  EXPECT_EQ(stmt->select->items[0].expr->column, "a");
}

TEST(ParserTest, JoinOn) {
  auto stmt = ParseStatement(
      "select * from a join b on a.x = b.y join c on c.z = a.x");
  ASSERT_TRUE(stmt.ok());
  const SelectStmt& s = *stmt->select;
  ASSERT_EQ(s.from.size(), 3u);
  EXPECT_FALSE(s.from[0].is_join);
  EXPECT_TRUE(s.from[1].is_join);
  ASSERT_NE(s.from[1].join_on, nullptr);
  EXPECT_TRUE(s.from[2].is_join);
}

TEST(ParserTest, CommaJoinRejected) {
  EXPECT_FALSE(ParseStatement("select * from a, b").ok());
}

TEST(ParserTest, AggregateCalls) {
  auto stmt = ParseStatement(
      "select count(*), sum(a), min(a + b), avg(c) from t");
  ASSERT_TRUE(stmt.ok());
  const SelectStmt& s = *stmt->select;
  EXPECT_TRUE(s.items[0].expr->star);
  EXPECT_EQ(s.items[0].expr->func_name, "count");
  EXPECT_EQ(s.items[2].expr->children[0]->ToString(), "(a + b)");
}

// --- Parser: basket expressions & windows (DataCell extensions) -------------

TEST(ParserTest, BasketExpression) {
  auto stmt = ParseStatement(
      "select * from [select * from r] as s where s.a > 1");
  ASSERT_TRUE(stmt.ok());
  const SelectStmt& s = *stmt->select;
  ASSERT_EQ(s.from.size(), 1u);
  ASSERT_TRUE(s.from[0].is_basket_expr());
  EXPECT_EQ(s.from[0].alias, "s");
  EXPECT_EQ(s.from[0].basket_expr->from[0].name, "r");
  EXPECT_TRUE(s.IsContinuous());
}

TEST(ParserTest, BasketExpressionWithPredicate) {
  // The paper's q2: a predicate window.
  auto stmt = ParseStatement(
      "select * from [select * from r where r.b < 5] as s where s.a > 1");
  ASSERT_TRUE(stmt.ok());
  ASSERT_NE(stmt->select->from[0].basket_expr->where, nullptr);
}

TEST(ParserTest, BasketExpressionRequiresAlias) {
  EXPECT_FALSE(ParseStatement("select * from [select * from r]").ok());
}

TEST(ParserTest, CountWindow) {
  auto stmt = ParseStatement(
      "select avg(a) from [select * from r] as s window size 100 slide 10");
  ASSERT_TRUE(stmt.ok());
  const WindowClause& w = stmt->select->window;
  EXPECT_EQ(w.kind, WindowClause::Kind::kCount);
  EXPECT_EQ(w.size, 100);
  EXPECT_EQ(w.slide, 10);
}

TEST(ParserTest, CountWindowDefaultsTumbling) {
  auto stmt = ParseStatement(
      "select avg(a) from [select * from r] as s window size 50");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->window.slide, 50);
}

TEST(ParserTest, TimeWindowUnits) {
  auto stmt = ParseStatement(
      "select avg(a) from [select * from r] as s "
      "window range 5 minutes slide 30 seconds");
  ASSERT_TRUE(stmt.ok());
  const WindowClause& w = stmt->select->window;
  EXPECT_EQ(w.kind, WindowClause::Kind::kTime);
  EXPECT_EQ(w.size, int64_t{5} * 60 * 1000000);
  EXPECT_EQ(w.slide, int64_t{30} * 1000000);
}

TEST(ParserTest, Threshold) {
  auto stmt = ParseStatement(
      "select * from [select * from r] as s threshold 64");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->threshold, 64);
}

TEST(ParserTest, WindowRequiresSizeOrRange) {
  EXPECT_FALSE(
      ParseStatement("select * from [select * from r] as s window 5").ok());
}

// --- Parser: DDL / DML -------------------------------------------------

TEST(ParserTest, CreateTable) {
  auto stmt = ParseStatement("create table t (a int, b double, c varchar)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kCreate);
  EXPECT_FALSE(stmt->create->is_basket);
  EXPECT_EQ(stmt->create->name, "t");
  ASSERT_EQ(stmt->create->columns.size(), 3u);
  EXPECT_EQ(stmt->create->columns[1].type, DataType::kDouble);
}

TEST(ParserTest, CreateBasket) {
  auto stmt = ParseStatement("create basket r (x int)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->create->is_basket);
}

TEST(ParserTest, CreateRejectsBadType) {
  EXPECT_FALSE(ParseStatement("create table t (a blob)").ok());
}

TEST(ParserTest, InsertValues) {
  auto stmt = ParseStatement(
      "insert into t values (1, 'x', 2.5), (2, 'y', -1.0)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kInsert);
  EXPECT_EQ(stmt->insert->table, "t");
  ASSERT_EQ(stmt->insert->rows.size(), 2u);
  ASSERT_EQ(stmt->insert->rows[0].size(), 3u);
}

TEST(ParserTest, InsertWithColumnList) {
  auto stmt = ParseStatement("insert into t (b, a) values ('x', 1)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->insert->columns, (std::vector<std::string>{"b", "a"}));
}

TEST(ParserTest, DropStatement) {
  auto stmt = ParseStatement("drop table t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, Statement::Kind::kDrop);
  EXPECT_EQ(stmt->drop->name, "t");
  EXPECT_TRUE(ParseStatement("drop basket r").ok());
}

// --- Parser: scripts & errors -----------------------------------------

TEST(ParserTest, ScriptMultipleStatements) {
  auto script = ParseScript(
      "create basket r (a int); insert into r values (1); select * from r;");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->size(), 3u);
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseStatement("select * from t garbage garbage").ok());
}

TEST(ParserTest, ReservedWordAsNameRejected) {
  EXPECT_FALSE(ParseStatement("select * from select").ok());
  EXPECT_FALSE(ParseStatement("create table where (a int)").ok());
}

TEST(ParserTest, ErrorMessagesCarryOffset) {
  auto r = ParseStatement("select from t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, EmptyStatementRejected) {
  EXPECT_FALSE(ParseStatement("").ok());
  EXPECT_FALSE(ParseStatement("   ").ok());
}

}  // namespace
}  // namespace sql
}  // namespace datacell
