// Specialized-vs-interpreted equivalence: every query shape the
// registration-time specializer (algebra/specialize.h) claims is run through
// two engines — one with plan specialization on, one forced onto the tuple
// interpreter — over identical input, and the delivered rows must match
// value-for-value (nulls and NaN compared structurally). The same binary is
// registered a second time in ctest with DATACELL_DISABLE_AVX2=1, so every
// assertion here is also verified against the forced-scalar kernel variants.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "adapters/sink.h"
#include "algebra/kernels.h"
#include "core/engine.h"

namespace datacell {
namespace {

EngineOptions TwinOptions(bool specialize) {
  EngineOptions opts;
  opts.use_wall_clock = false;  // lockstep clocks => identical ts columns
  opts.specialize_plans = specialize;
  return opts;
}

/// Structural value equality: null only equals null, NaN equals NaN (the
/// SQL-comparison operator== would reject NaN against itself), everything
/// else by exact value. Doubles compare bitwise-exact on purpose: the
/// specialized kernels are required to be bit-identical to the interpreter
/// for the shapes this suite feeds them.
bool SameValue(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_double() && b.is_double()) {
    double x = a.double_value();
    double y = b.double_value();
    if (std::isnan(x) || std::isnan(y)) return std::isnan(x) && std::isnan(y);
    return x == y;
  }
  return a == b;
}

std::string RowToString(const Row& r) {
  std::string s = "(";
  for (size_t i = 0; i < r.size(); ++i) {
    if (i > 0) s += ", ";
    s += r[i].is_null() ? "<null>" : r[i].ToString();
  }
  return s + ")";
}

/// Drives a specializing engine and an interpreting engine in lockstep:
/// same DDL, same continuous query, same ingests, same simulated-clock
/// advances — then asserts the sinks saw identical rows.
class TwinHarness {
 public:
  TwinHarness() : spec_(TwinOptions(true)), interp_(TwinOptions(false)) {}

  void Sql(const std::string& sql) {
    auto r1 = spec_.ExecuteSql(sql);
    ASSERT_TRUE(r1.ok()) << sql << " -> " << r1.status().ToString();
    auto r2 = interp_.ExecuteSql(sql);
    ASSERT_TRUE(r2.ok()) << sql << " -> " << r2.status().ToString();
  }

  void Submit(const std::string& sql) {
    auto q1 = spec_.SubmitContinuousQuery("q", sql);
    ASSERT_TRUE(q1.ok()) << sql << " -> " << q1.status().ToString();
    auto q2 = interp_.SubmitContinuousQuery("q", sql);
    ASSERT_TRUE(q2.ok()) << sql << " -> " << q2.status().ToString();
    spec_q_ = *q1;
    interp_q_ = *q2;
    spec_sink_ = std::make_shared<CollectingSink>();
    interp_sink_ = std::make_shared<CollectingSink>();
    ASSERT_TRUE(spec_.Subscribe(spec_q_, spec_sink_).ok());
    ASSERT_TRUE(interp_.Subscribe(interp_q_, interp_sink_).ok());
  }

  void Ingest(const std::string& stream, const Row& row) {
    ASSERT_TRUE(spec_.Ingest(stream, row).ok());
    ASSERT_TRUE(interp_.Ingest(stream, row).ok());
    spec_.simulated_clock()->Advance(1000);
    interp_.simulated_clock()->Advance(1000);
  }

  void Drain() {
    spec_.Drain();
    interp_.Drain();
  }

  /// The shape under test must actually have specialized — a silent
  /// interpreter fallback would make the equivalence assertion vacuous.
  void ExpectSpecialized() {
    auto q = spec_.GetQuery(spec_q_);
    ASSERT_TRUE(q.ok());
    EXPECT_TRUE((*q)->factory->is_specialized())
        << "expected specialization, fell back: "
        << (*q)->factory->specialize_fallback();
  }

  void ExpectFallback(const std::string& reason_substring) {
    auto q = spec_.GetQuery(spec_q_);
    ASSERT_TRUE(q.ok());
    EXPECT_FALSE((*q)->factory->is_specialized());
    EXPECT_NE((*q)->factory->specialize_fallback().find(reason_substring),
              std::string::npos)
        << "fallback reason was: " << (*q)->factory->specialize_fallback();
  }

  void ExpectSameResults(size_t expect_at_least = 0) {
    std::vector<Row> got = spec_sink_->TakeRows();
    std::vector<Row> want = interp_sink_->TakeRows();
    ASSERT_EQ(got.size(), want.size());
    EXPECT_GE(got.size(), expect_at_least);
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].size(), want[i].size()) << "row " << i;
      for (size_t c = 0; c < got[i].size(); ++c) {
        EXPECT_TRUE(SameValue(got[i][c], want[i][c]))
            << "row " << i << ": specialized " << RowToString(got[i])
            << " vs interpreted " << RowToString(want[i]);
      }
    }
  }

  Engine spec_;
  Engine interp_;
  QueryId spec_q_ = 0;
  QueryId interp_q_ = 0;
  std::shared_ptr<CollectingSink> spec_sink_;
  std::shared_ptr<CollectingSink> interp_sink_;
};

class SpecializeEquivalenceTest : public ::testing::Test {
 protected:
  TwinHarness twin_;
};

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// --- filters -------------------------------------------------------------

TEST_F(SpecializeEquivalenceTest, IntRangeFilter) {
  twin_.Sql("create basket r (x int)");
  twin_.Submit("select x from [select * from r] as s where s.x < 5");
  twin_.ExpectSpecialized();
  for (int i = 0; i < 10; ++i) twin_.Ingest("r", {Value::Int64(i)});
  twin_.Drain();
  twin_.ExpectSameResults(5);
}

TEST_F(SpecializeEquivalenceTest, AllRowsSelected) {
  twin_.Sql("create basket r (x int)");
  twin_.Submit("select x from [select * from r] as s where s.x >= -100");
  twin_.ExpectSpecialized();
  for (int i = 0; i < 8; ++i) twin_.Ingest("r", {Value::Int64(i)});
  twin_.Drain();
  twin_.ExpectSameResults(8);
}

TEST_F(SpecializeEquivalenceTest, NoRowsSelected) {
  twin_.Sql("create basket r (x int)");
  twin_.Submit("select x from [select * from r] as s where s.x > 1000");
  twin_.ExpectSpecialized();
  for (int i = 0; i < 8; ++i) twin_.Ingest("r", {Value::Int64(i)});
  twin_.Drain();
  twin_.ExpectSameResults();
}

TEST_F(SpecializeEquivalenceTest, EmptyBatchFires) {
  twin_.Sql("create basket r (x int)");
  twin_.Submit("select x from [select * from r] as s where s.x < 5");
  twin_.ExpectSpecialized();
  twin_.Drain();  // nothing ingested
  twin_.ExpectSameResults();
  twin_.Ingest("r", {Value::Int64(1)});
  twin_.Drain();
  twin_.Drain();  // second drain sees an empty basket
  twin_.ExpectSameResults(1);
}

TEST_F(SpecializeEquivalenceTest, DoubleFilterWithNaN) {
  twin_.Sql("create basket r (y double)");
  twin_.Submit("select y from [select * from r] as s where s.y > 1.5");
  twin_.ExpectSpecialized();
  twin_.Ingest("r", {Value::Double(1.0)});
  twin_.Ingest("r", {Value::Double(kNaN)});
  twin_.Ingest("r", {Value::Double(2.5)});
  twin_.Ingest("r", {Value::Double(-0.0)});
  twin_.Ingest("r", {Value::Double(7.25)});
  twin_.Drain();
  twin_.ExpectSameResults(2);
}

TEST_F(SpecializeEquivalenceTest, NaNIsNotEqualToAnything) {
  twin_.Sql("create basket r (y double)");
  twin_.Submit("select y from [select * from r] as s where s.y <> 2.5");
  twin_.ExpectSpecialized();
  twin_.Ingest("r", {Value::Double(kNaN)});  // NaN <> v is true
  twin_.Ingest("r", {Value::Double(2.5)});
  twin_.Ingest("r", {Value::Double(3.0)});
  twin_.Drain();
  twin_.ExpectSameResults(2);
}

TEST_F(SpecializeEquivalenceTest, NotEqualWithNulls) {
  twin_.Sql("create basket r (x int)");
  twin_.Submit("select x from [select * from r] as s where s.x <> 3");
  twin_.ExpectSpecialized();
  twin_.Ingest("r", {Value::Int64(3)});
  twin_.Ingest("r", {Value::Null()});  // null <> 3 is null -> filtered out
  twin_.Ingest("r", {Value::Int64(4)});
  twin_.Drain();
  twin_.ExpectSameResults(1);
}

TEST_F(SpecializeEquivalenceTest, NullHeavyBatch) {
  twin_.Sql("create basket r (x int, y double)");
  twin_.Submit(
      "select x, y from [select * from r] as s where s.x < 100");
  twin_.ExpectSpecialized();
  for (int i = 0; i < 12; ++i) {
    if (i % 3 == 0) {
      twin_.Ingest("r", {Value::Null(), Value::Null()});
    } else if (i % 3 == 1) {
      twin_.Ingest("r", {Value::Int64(i), Value::Null()});
    } else {
      twin_.Ingest("r", {Value::Null(), Value::Double(i * 0.25)});
    }
  }
  twin_.Drain();
  twin_.ExpectSameResults(4);
}

TEST_F(SpecializeEquivalenceTest, StringEquality) {
  twin_.Sql("create basket r (name varchar)");
  twin_.Submit(
      "select name from [select * from r] as s where s.name = 'hit'");
  twin_.ExpectSpecialized();
  twin_.Ingest("r", {Value::String("hit")});
  twin_.Ingest("r", {Value::String("miss")});
  twin_.Ingest("r", {Value::Null()});
  twin_.Ingest("r", {Value::String("hit")});
  twin_.Drain();
  twin_.ExpectSameResults(2);
}

TEST_F(SpecializeEquivalenceTest, LikePattern) {
  twin_.Sql("create basket r (name varchar)");
  twin_.Submit(
      "select name from [select * from r] as s where s.name like '%ab%'");
  twin_.ExpectSpecialized();
  twin_.Ingest("r", {Value::String("drab")});
  twin_.Ingest("r", {Value::String("xyz")});
  twin_.Ingest("r", {Value::Null()});
  twin_.Ingest("r", {Value::String("abba")});
  twin_.Drain();
  twin_.ExpectSameResults(2);
}

TEST_F(SpecializeEquivalenceTest, AndOrNotCombinators) {
  twin_.Sql("create basket r (x int, y double)");
  twin_.Submit(
      "select x, y from [select * from r] as s "
      "where (s.x > 2 and s.x < 8) or not (s.y < 1.0)");
  twin_.ExpectSpecialized();
  for (int i = 0; i < 10; ++i) {
    twin_.Ingest("r", {Value::Int64(i), Value::Double(i * 0.25)});
  }
  twin_.Ingest("r", {Value::Null(), Value::Double(5.0)});
  twin_.Ingest("r", {Value::Int64(5), Value::Null()});
  twin_.Ingest("r", {Value::Null(), Value::Null()});
  twin_.Drain();
  twin_.ExpectSameResults(1);
}

TEST_F(SpecializeEquivalenceTest, IsNullIsNotNull) {
  twin_.Sql("create basket r (x int)");
  twin_.Submit("select x from [select * from r] as s where s.x is null");
  twin_.ExpectSpecialized();
  twin_.Ingest("r", {Value::Int64(1)});
  twin_.Ingest("r", {Value::Null()});
  twin_.Ingest("r", {Value::Int64(2)});
  twin_.Ingest("r", {Value::Null()});
  twin_.Drain();
  twin_.ExpectSameResults(2);
}

TEST_F(SpecializeEquivalenceTest, IsNotNullFilter) {
  twin_.Sql("create basket r (x int)");
  twin_.Submit(
      "select x from [select * from r] as s where s.x is not null");
  twin_.ExpectSpecialized();
  twin_.Ingest("r", {Value::Int64(1)});
  twin_.Ingest("r", {Value::Null()});
  twin_.Ingest("r", {Value::Int64(2)});
  twin_.Drain();
  twin_.ExpectSameResults(2);
}

TEST_F(SpecializeEquivalenceTest, BoolColumnFilter) {
  twin_.Sql("create basket r (flag bool, x int)");
  twin_.Submit("select x from [select * from r] as s where s.flag");
  twin_.ExpectSpecialized();
  twin_.Ingest("r", {Value::Bool(true), Value::Int64(1)});
  twin_.Ingest("r", {Value::Bool(false), Value::Int64(2)});
  twin_.Ingest("r", {Value::Null(), Value::Int64(3)});
  twin_.Ingest("r", {Value::Bool(true), Value::Int64(4)});
  twin_.Drain();
  twin_.ExpectSameResults(2);
}

// --- constant folding ----------------------------------------------------

TEST_F(SpecializeEquivalenceTest, ConstantTruePredicate) {
  twin_.Sql("create basket r (x int)");
  twin_.Submit("select x from [select * from r] as s where 1 < 2");
  twin_.ExpectSpecialized();
  for (int i = 0; i < 5; ++i) twin_.Ingest("r", {Value::Int64(i)});
  twin_.Drain();
  twin_.ExpectSameResults(5);
}

TEST_F(SpecializeEquivalenceTest, ConstantFalsePredicate) {
  twin_.Sql("create basket r (x int)");
  twin_.Submit("select x from [select * from r] as s where 1 > 2");
  twin_.ExpectSpecialized();
  for (int i = 0; i < 5; ++i) twin_.Ingest("r", {Value::Int64(i)});
  twin_.Drain();
  twin_.ExpectSameResults();
  EXPECT_EQ(twin_.spec_sink_->row_count(), 0u);
}

// --- projections ---------------------------------------------------------

TEST_F(SpecializeEquivalenceTest, ArithmeticProjections) {
  twin_.Sql("create basket r (x int, y double)");
  twin_.Submit(
      "select s.x + 1, 10 - s.x, s.x * 2, s.y * 2.0, s.y / 4.0 "
      "from [select * from r] as s where s.x >= 0");
  twin_.ExpectSpecialized();
  for (int i = 0; i < 6; ++i) {
    twin_.Ingest("r", {Value::Int64(i), Value::Double(i * 0.25)});
  }
  twin_.Ingest("r", {Value::Null(), Value::Double(1.0)});
  twin_.Drain();
  twin_.ExpectSameResults(6);
}

TEST_F(SpecializeEquivalenceTest, DivisionAndModuloByZero) {
  twin_.Sql("create basket r (x int, y double)");
  twin_.Submit(
      "select s.x / 0, s.x % 0, s.y / 0.0 "
      "from [select * from r] as s where s.x > -100");
  twin_.ExpectSpecialized();
  twin_.Ingest("r", {Value::Int64(7), Value::Double(2.5)});
  twin_.Ingest("r", {Value::Int64(-3), Value::Double(-1.25)});
  twin_.Drain();
  twin_.ExpectSameResults(2);
}

// --- aggregates ----------------------------------------------------------

TEST_F(SpecializeEquivalenceTest, ScalarAggregatesNoFilter) {
  twin_.Sql("create basket r (x int, y double)");
  twin_.Submit(
      "select count(*), count(x), sum(x), min(x), max(x), avg(x), "
      "sum(y), min(y), max(y) from [select * from r] as s");
  twin_.ExpectSpecialized();
  for (int i = 0; i < 9; ++i) {
    twin_.Ingest("r", {Value::Int64(i), Value::Double(i * 0.25)});
  }
  twin_.Ingest("r", {Value::Null(), Value::Null()});
  twin_.Drain();
  twin_.ExpectSameResults(1);
}

TEST_F(SpecializeEquivalenceTest, FusedFilterAggregate) {
  twin_.Sql("create basket r (x int, y double)");
  twin_.Submit(
      "select count(*), sum(y), min(y), max(y) "
      "from [select * from r] as s where s.x < 6");
  twin_.ExpectSpecialized();
  for (int i = 0; i < 12; ++i) {
    twin_.Ingest("r", {Value::Int64(i), Value::Double(i * 0.25)});
  }
  twin_.Drain();
  twin_.ExpectSameResults(1);
}

TEST_F(SpecializeEquivalenceTest, AggregateOverEmptyFire) {
  twin_.Sql("create basket r (x int)");
  twin_.Submit(
      "select count(*), sum(x), min(x) from [select * from r] as s "
      "where s.x > 100");
  twin_.ExpectSpecialized();
  for (int i = 0; i < 4; ++i) twin_.Ingest("r", {Value::Int64(i)});
  twin_.Drain();
  // Nothing passes the filter; both paths still emit one row of aggregate
  // identities (count 0, null sum/min).
  twin_.ExpectSameResults(1);
}

TEST_F(SpecializeEquivalenceTest, AggregateWithNaNValues) {
  twin_.Sql("create basket r (x int, y double)");
  twin_.Submit(
      "select count(y), sum(y), min(y), max(y) "
      "from [select * from r] as s where s.x >= 0");
  twin_.ExpectSpecialized();
  twin_.Ingest("r", {Value::Int64(0), Value::Double(1.25)});
  twin_.Ingest("r", {Value::Int64(1), Value::Double(kNaN)});
  twin_.Ingest("r", {Value::Int64(2), Value::Double(-3.5)});
  twin_.Drain();
  twin_.ExpectSameResults(1);
}

// --- joins ---------------------------------------------------------------

TEST_F(SpecializeEquivalenceTest, StreamTableJoin) {
  twin_.Sql("create table t (k int, v double)");
  twin_.Sql(
      "insert into t values (1, 0.25), (1, 0.5), (3, 0.75), (5, 1.0)");
  twin_.Sql("create basket r (x int)");
  twin_.Submit(
      "select s.x, t.v from [select * from r] as s join t on s.x = t.k");
  twin_.ExpectSpecialized();
  for (int i = 0; i < 7; ++i) twin_.Ingest("r", {Value::Int64(i)});
  twin_.Ingest("r", {Value::Null()});  // null keys never match
  twin_.Drain();
  // x=1 matches twice, x=3 and x=5 once each.
  twin_.ExpectSameResults(4);
}

TEST_F(SpecializeEquivalenceTest, JoinWithNullBuildKeys) {
  twin_.Sql("create table t (k int, v int)");
  twin_.Sql("insert into t values (2, 20), (null, 99), (2, 21)");
  twin_.Sql("create basket r (x int)");
  twin_.Submit(
      "select s.x, t.v from [select * from r] as s join t on s.x = t.k");
  twin_.ExpectSpecialized();
  twin_.Ingest("r", {Value::Int64(2)});
  twin_.Ingest("r", {Value::Int64(4)});
  twin_.Drain();
  twin_.ExpectSameResults(2);
}

TEST_F(SpecializeEquivalenceTest, JoinThenFilterThenAggregate) {
  twin_.Sql("create table t (k int, v double)");
  twin_.Sql("insert into t values (0, 0.5), (1, 1.5), (2, 2.5)");
  twin_.Sql("create basket r (x int)");
  twin_.Submit(
      "select count(*), sum(t.v) from [select * from r] as s "
      "join t on s.x = t.k where t.v > 1.0");
  twin_.ExpectSpecialized();
  for (int i = 0; i < 5; ++i) twin_.Ingest("r", {Value::Int64(i)});
  twin_.Drain();
  twin_.ExpectSameResults(1);
}

// --- fallback reasons ----------------------------------------------------

TEST_F(SpecializeEquivalenceTest, WindowedQueryFallsBack) {
  twin_.Sql("create basket r (x int)");
  twin_.Submit(
      "select sum(x) from [select * from r] as s window size 4");
  twin_.ExpectFallback("windowed");
  for (int i = 0; i < 8; ++i) twin_.Ingest("r", {Value::Int64(i)});
  twin_.Drain();
  twin_.ExpectSameResults(1);  // both on the interpreter: still equivalent
}

TEST_F(SpecializeEquivalenceTest, GroupByFallsBack) {
  twin_.Sql("create basket r (x int)");
  twin_.Submit(
      "select x, count(*) from [select * from r] as s group by x");
  twin_.ExpectFallback("GROUP BY");
  for (int i = 0; i < 6; ++i) twin_.Ingest("r", {Value::Int64(i % 2)});
  twin_.Drain();
  twin_.ExpectSameResults(1);
}

TEST(SpecializeFallbackTest, DisabledByOption) {
  EngineOptions opts = TwinOptions(false);
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "q", "select x from [select * from r] as s where s.x < 5");
  ASSERT_TRUE(q.ok());
  auto info = engine.GetQuery(*q);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE((*info)->factory->is_specialized());
  EXPECT_EQ((*info)->factory->specialize_fallback(),
            "specialization disabled");
  EXPECT_NE((*info)->factory->PipelineDescription().find("interpreter"),
            std::string::npos);
}

TEST(SpecializeFallbackTest, PipelineDescriptionListsSteps) {
  Engine engine(TwinOptions(true));
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "q", "select x from [select * from r] as s where s.x < 5");
  ASSERT_TRUE(q.ok());
  auto info = engine.GetQuery(*q);
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE((*info)->factory->is_specialized());
  std::string desc = (*info)->factory->PipelineDescription();
  EXPECT_NE(desc.find("specialized pipeline"), std::string::npos);
  EXPECT_NE(desc.find("filter"), std::string::npos);
}

TEST(SpecializeMetricsTest, SpecializedQueriesCounter) {
  Engine engine(TwinOptions(true));
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q1 = engine.SubmitContinuousQuery(
      "a", "select x from [select * from r] as s where s.x < 5");
  ASSERT_TRUE(q1.ok());
  auto q2 = engine.SubmitContinuousQuery(
      "b", "select x, count(*) from [select * from r] as s group by x");
  ASSERT_TRUE(q2.ok());  // falls back -> not counted
  MetricsSnapshotData snap = engine.MetricsSnapshot();
  const CounterSnapshot* c = snap.FindCounter("datacell_specialized_queries");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 1);
}

// --- kernel scalar vs AVX2 bit-equality ---------------------------------

class KernelVariantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kernel::HasAvx2()) {
      GTEST_SKIP() << "AVX2 unavailable or disabled; scalar-only run";
    }
  }
};

TEST_F(KernelVariantTest, FilterValuesInt64Identical) {
  std::vector<int64_t> data;
  for (size_t i = 0; i < 1027; ++i) {
    data.push_back(static_cast<int64_t>((i * 2654435761u) % 1000) - 500);
  }
  std::vector<int64_t> a(data.size()), b(data.size());
  size_t ka = kernel::FilterValuesInt64Scalar(data.data(), -100, 250,
                                              data.size(), a.data());
  size_t kb = kernel::FilterValuesInt64Avx2(data.data(), -100, 250,
                                            data.size(), b.data());
  ASSERT_EQ(ka, kb);
  for (size_t i = 0; i < ka; ++i) EXPECT_EQ(a[i], b[i]) << i;
}

TEST_F(KernelVariantTest, FilterValuesDoubleIdenticalWithNaN) {
  std::vector<double> data;
  for (size_t i = 0; i < 517; ++i) {
    data.push_back(i % 11 == 0 ? std::numeric_limits<double>::quiet_NaN()
                               : (static_cast<double>(i % 97) - 48) * 0.25);
  }
  std::vector<double> a(data.size()), b(data.size());
  size_t ka = kernel::FilterValuesDoubleScalar(data.data(), -5.0, 5.0,
                                               data.size(), a.data());
  size_t kb = kernel::FilterValuesDoubleAvx2(data.data(), -5.0, 5.0,
                                             data.size(), b.data());
  ASSERT_EQ(ka, kb);
  for (size_t i = 0; i < ka; ++i) {
    EXPECT_EQ(a[i], b[i]) << i;  // NaN never passes, so == is safe
  }
}

TEST_F(KernelVariantTest, FilterAggVariantsBitIdentical) {
  constexpr size_t kN = 773;
  std::vector<int64_t> fi(kN);
  std::vector<double> fd(kN);
  std::vector<int64_t> vi(kN);
  std::vector<double> vd(kN);
  for (size_t i = 0; i < kN; ++i) {
    fi[i] = static_cast<int64_t>((i * 48271) % 200) - 100;
    fd[i] = static_cast<double>(fi[i]) * 0.25;
    vi[i] = static_cast<int64_t>(i) - 300;
    vd[i] = static_cast<double>(i) * 0.5 - 90.0;
  }
  kernel::FilterAggResult s, v;

  s = {}; v = {};
  kernel::FilterAggInt64Int64Scalar(fi.data(), -50, 50, vi.data(), kN, &s);
  kernel::FilterAggInt64Int64Avx2(fi.data(), -50, 50, vi.data(), kN, &v);
  EXPECT_EQ(s.count, v.count);
  EXPECT_EQ(s.sum, v.sum);
  EXPECT_EQ(s.min, v.min);
  EXPECT_EQ(s.max, v.max);

  s = {}; v = {};
  kernel::FilterAggInt64DoubleScalar(fi.data(), -50, 50, vd.data(), kN, &s);
  kernel::FilterAggInt64DoubleAvx2(fi.data(), -50, 50, vd.data(), kN, &v);
  EXPECT_EQ(s.count, v.count);
  EXPECT_EQ(s.sum, v.sum);
  EXPECT_EQ(s.min, v.min);
  EXPECT_EQ(s.max, v.max);

  s = {}; v = {};
  kernel::FilterAggDoubleInt64Scalar(fd.data(), -12.5, 12.5, vi.data(), kN,
                                     &s);
  kernel::FilterAggDoubleInt64Avx2(fd.data(), -12.5, 12.5, vi.data(), kN, &v);
  EXPECT_EQ(s.count, v.count);
  EXPECT_EQ(s.sum, v.sum);
  EXPECT_EQ(s.min, v.min);
  EXPECT_EQ(s.max, v.max);

  s = {}; v = {};
  kernel::FilterAggDoubleDoubleScalar(fd.data(), -12.5, 12.5, vd.data(), kN,
                                      &s);
  kernel::FilterAggDoubleDoubleAvx2(fd.data(), -12.5, 12.5, vd.data(), kN,
                                    &v);
  EXPECT_EQ(s.count, v.count);
  EXPECT_EQ(s.sum, v.sum);
  EXPECT_EQ(s.min, v.min);
  EXPECT_EQ(s.max, v.max);
}

TEST(HashIndexTest, MatchesNaiveNestedLoop) {
  std::vector<int64_t> build = {5, 2, 5, 9, 2, 2, 7};
  std::vector<uint8_t> build_valid = {1, 1, 1, 0, 1, 1, 1};  // 9 is "null"
  std::vector<int64_t> probe = {2, 9, 5, 1, 7, 2};
  kernel::Int64HashIndex index;
  index.Build(build.data(), build_valid.data(), build.size());
  EXPECT_EQ(index.num_entries(), 6u);
  std::vector<size_t> pp, bp;
  index.Probe(probe.data(), nullptr, probe.size(), &pp, &bp);

  std::vector<size_t> want_pp, want_bp;
  for (size_t i = 0; i < probe.size(); ++i) {
    for (size_t j = 0; j < build.size(); ++j) {
      if (build_valid[j] && probe[i] == build[j]) {
        want_pp.push_back(i);
        want_bp.push_back(j);
      }
    }
  }
  EXPECT_EQ(pp, want_pp);
  EXPECT_EQ(bp, want_bp);
}

}  // namespace
}  // namespace datacell
