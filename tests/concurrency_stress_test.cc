// Concurrency stress tests for the threaded engine: multiple scheduler
// workers, multiple factories sharing baskets, multi-threaded producers.
// They guard the event-driven wakeup path (Basket/Channel -> NotifyWork)
// and the shared-basket watermark protocol: no tuple may be lost or
// delivered twice, regardless of thread interleaving. Run them under TSan
// with -DDATACELL_SANITIZE=thread and `ctest -L concurrency`.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "adapters/channel.h"
#include "adapters/sink.h"
#include "common/thread_pool.h"
#include "core/engine.h"

namespace datacell {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Polls `done` until it returns true or `limit` elapses.
template <typename Pred>
bool WaitFor(Pred done, milliseconds limit) {
  auto deadline = steady_clock::now() + limit;
  while (!done()) {
    if (steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return true;
}

TEST(ConcurrencyStress, SharedBasketManyProducersManyWorkers) {
  constexpr int kProducers = 4;
  constexpr int kBatchesPerProducer = 50;
  constexpr int kRowsPerBatch = 64;
  constexpr int64_t kTotal =
      int64_t{kProducers} * kBatchesPerProducer * kRowsPerBatch;

  Engine engine;
  ASSERT_TRUE(engine.ExecuteSql("create basket s (k int, v int)").ok());

  // Two queries share the stream basket (kSharedBaskets is the default):
  // one passes everything, one selects half. Between them every tuple must
  // be seen exactly once per query.
  auto q_all = engine.SubmitContinuousQuery(
      "q_all", "select k, v from [select * from s] as a");
  ASSERT_TRUE(q_all.ok()) << q_all.status().ToString();
  auto q_half = engine.SubmitContinuousQuery(
      "q_half", "select k from [select * from s] as b where b.k >= 32");
  ASSERT_TRUE(q_half.ok()) << q_half.status().ToString();

  auto all_sink = std::make_shared<CountingSink>();
  auto half_sink = std::make_shared<CountingSink>();
  ASSERT_TRUE(engine.Subscribe(*q_all, all_sink).ok());
  ASSERT_TRUE(engine.Subscribe(*q_half, half_sink).ok());

  ASSERT_TRUE(engine.Start(4).ok());

  // Producers run concurrently with the scheduler workers; every batch
  // holds k = 0..63 once, so exactly half of each batch matches q_half.
  std::atomic<int> failures{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, &failures] {
      for (int b = 0; b < kBatchesPerProducer; ++b) {
        std::vector<Row> rows;
        rows.reserve(kRowsPerBatch);
        for (int i = 0; i < kRowsPerBatch; ++i) {
          rows.push_back({Value::Int64(i), Value::Int64(b)});
        }
        if (!engine.IngestBatch("s", rows).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.tuples_ingested(), kTotal);

  // The wakeup path (not polling) must drive both queries to completion.
  ASSERT_TRUE(WaitFor(
      [&] {
        return all_sink->rows() >= kTotal && half_sink->rows() >= kTotal / 2;
      },
      milliseconds(10000)))
      << "all=" << all_sink->rows() << " half=" << half_sink->rows();
  engine.Stop();

  // Exactly-once delivery: nothing lost (checked above), nothing doubled.
  EXPECT_EQ(all_sink->rows(), kTotal);
  EXPECT_EQ(half_sink->rows(), kTotal / 2);
  EXPECT_EQ(engine.scheduler().error_count(), 0);
}

TEST(ConcurrencyStress, SeparateBasketsExactlyOncePerReplica) {
  constexpr int kProducers = 3;
  constexpr int kRowsPerProducer = 2000;
  constexpr int64_t kTotal = int64_t{kProducers} * kRowsPerProducer;

  EngineOptions opts;
  opts.default_strategy = ProcessingStrategy::kSeparateBaskets;
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int)").ok());

  auto q0 = engine.SubmitContinuousQuery(
      "q0", "select x from [select * from s] as a");
  auto q1 = engine.SubmitContinuousQuery(
      "q1", "select x from [select * from s] as b where b.x < 1000");
  ASSERT_TRUE(q0.ok() && q1.ok());
  auto sink0 = std::make_shared<CountingSink>();
  auto sink1 = std::make_shared<CountingSink>();
  ASSERT_TRUE(engine.Subscribe(*q0, sink0).ok());
  ASSERT_TRUE(engine.Subscribe(*q1, sink1).ok());

  ASSERT_TRUE(engine.Start(4).ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, &failures] {
      for (int i = 0; i < kRowsPerProducer; ++i) {
        if (!engine.Ingest("s", {Value::Int64(i % 2000)}).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  ASSERT_EQ(failures.load(), 0);

  ASSERT_TRUE(WaitFor(
      [&] {
        return sink0->rows() >= kTotal && sink1->rows() >= kTotal / 2;
      },
      milliseconds(10000)))
      << "q0=" << sink0->rows() << " q1=" << sink1->rows();
  engine.Stop();

  EXPECT_EQ(sink0->rows(), kTotal);         // every tuple, exactly once
  EXPECT_EQ(sink1->rows(), kTotal / 2);     // x in [0,1000) is half
  EXPECT_EQ(engine.scheduler().error_count(), 0);
}

TEST(ConcurrencyStress, IdleSchedulerBlocksAndWakesOnAppend) {
  Engine engine;
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "q", "select x from [select * from s] as a");
  ASSERT_TRUE(q.ok());
  auto sink = std::make_shared<CountingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, sink).ok());
  ASSERT_TRUE(engine.Start(2).ok());

  // Let the workers go idle, then measure the sweep rate over 300 ms. The
  // old scheduler sleep-polled every 50 us (=> ~6000 sweeps per worker in
  // this window); a blocked scheduler only re-sweeps on the 2 ms fallback
  // (~150 per worker). Assert well under the polling rate.
  std::this_thread::sleep_for(milliseconds(100));
  int64_t sweeps_before = engine.scheduler().sweeps();
  std::this_thread::sleep_for(milliseconds(300));
  int64_t idle_sweeps = engine.scheduler().sweeps() - sweeps_before;
  EXPECT_LT(idle_sweeps, 2000) << "idle scheduler appears to be busy-polling";
  EXPECT_GT(engine.scheduler().idle_waits(), 0);

  // An append must wake the blocked workers promptly (CV notify, not the
  // fallback tick) and flow through factory and emitter to the sink.
  ASSERT_TRUE(engine.Ingest("s", {Value::Int64(7)}).ok());
  EXPECT_TRUE(WaitFor([&] { return sink->rows() >= 1; }, milliseconds(2000)));
  engine.Stop();
  EXPECT_EQ(sink->rows(), 1);
}

TEST(ConcurrencyStress, ChannelWakeDrivesReceptor) {
  Engine engine;
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "q", "select x from [select * from s] as a");
  ASSERT_TRUE(q.ok());
  auto sink = std::make_shared<CountingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, sink).ok());

  Channel channel;
  ASSERT_TRUE(engine.AttachReceptor("s", &channel).ok());
  ASSERT_TRUE(engine.Start(2).ok());

  // Writers racing on one channel; every line must reach the sink.
  constexpr int kWriters = 3;
  constexpr int kLines = 500;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&channel, w] {
      for (int i = 0; i < kLines; ++i) {
        channel.Push(std::to_string(w * kLines + i));
      }
    });
  }
  for (std::thread& t : writers) t.join();

  ASSERT_TRUE(WaitFor([&] { return sink->rows() >= kWriters * kLines; },
                      milliseconds(10000)))
      << "rows=" << sink->rows();
  engine.Stop();
  EXPECT_EQ(sink->rows(), kWriters * kLines);
  EXPECT_EQ(channel.total_dropped(), 0);
}

TEST(ConcurrencyStress, ParallelKernelsInsideThreadedScheduler) {
  // Factories running parallel kernels while scheduler workers race: the
  // kernel pool is shared engine-wide and must not corrupt results.
  EngineOptions opts;
  opts.kernel_threads = 4;
  opts.parallel_threshold = 1024;  // force the parallel path
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "q", "select x from [select * from s] as a where a.x >= 500");
  ASSERT_TRUE(q.ok());
  auto sink = std::make_shared<CountingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, sink).ok());
  ASSERT_TRUE(engine.Start(2).ok());

  constexpr int kBatches = 20;
  constexpr int kRows = 5000;  // above threshold => morsel path
  for (int b = 0; b < kBatches; ++b) {
    std::vector<Row> rows;
    rows.reserve(kRows);
    for (int i = 0; i < kRows; ++i) {
      rows.push_back({Value::Int64(i % 1000)});
    }
    ASSERT_TRUE(engine.IngestBatch("s", rows).ok());
  }
  constexpr int64_t kExpected = int64_t{kBatches} * kRows / 2;  // x in [500,1000)
  ASSERT_TRUE(
      WaitFor([&] { return sink->rows() >= kExpected; }, milliseconds(10000)))
      << "rows=" << sink->rows();
  engine.Stop();
  EXPECT_EQ(sink->rows(), kExpected);
  EXPECT_EQ(engine.scheduler().error_count(), 0);
}

/// Regression for the observability layer's thread-safety: the engine's
/// counters used to be plain int64_t fields written by scheduler workers and
/// read by reporting threads — a data race TSan flags. Every metric now
/// lives in atomic registry cells; this test scrapes MetricsSnapshot,
/// MetricsText and StatsReport continuously while producers and scheduler
/// workers hammer the pipeline, and must stay clean under
/// -DDATACELL_SANITIZE=thread.
TEST(ConcurrencyStress, MetricsScrapeWhilePipelineRuns) {
  constexpr int kProducers = 2;
  constexpr int kBatchesPerProducer = 40;
  constexpr int kRowsPerBatch = 32;
  constexpr int64_t kTotal =
      int64_t{kProducers} * kBatchesPerProducer * kRowsPerBatch;

  EngineOptions opts;
  opts.trace_capacity = 1 << 10;  // trace recording races the scrapers too
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "scrape", "select * from [select * from s] as a");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto sink = std::make_shared<CountingSink>();
  ASSERT_TRUE(engine.Subscribe(*q, sink).ok());
  ASSERT_TRUE(engine.Start(4).ok());

  std::atomic<bool> stop{false};
  std::thread scraper([&engine, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshotData snap = engine.MetricsSnapshot();
      const CounterSnapshot* fires =
          snap.FindCounter("datacell_transition_fires_total", "factory_scrape");
      ASSERT_NE(fires, nullptr);
      ASSERT_GE(fires->value, 0);
      std::string text = engine.MetricsText();
      ASSERT_FALSE(text.empty());
      std::string report = engine.StatsReport();
      ASSERT_FALSE(report.empty());
      std::string json = engine.TraceJson();
      if (kTraceCompiled) {
        ASSERT_FALSE(json.empty());
      }
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine] {
      for (int b = 0; b < kBatchesPerProducer; ++b) {
        std::vector<Row> rows;
        for (int i = 0; i < kRowsPerBatch; ++i) {
          rows.push_back({Value::Int64(i)});
        }
        if (!engine.IngestBatch("s", rows).ok()) return;
      }
    });
  }
  for (std::thread& t : producers) t.join();
  ASSERT_TRUE(
      WaitFor([&] { return sink->rows() >= kTotal; }, milliseconds(10000)))
      << "rows=" << sink->rows();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  engine.Stop();

  EXPECT_EQ(sink->rows(), kTotal);
  MetricsSnapshotData snap = engine.MetricsSnapshot();
  EXPECT_EQ(snap.FindCounter("datacell_transition_tuples_total",
                             "factory_scrape")->value,
            kTotal);
  EXPECT_EQ(snap.FindHistogram("datacell_query_e2e_latency_us", "scrape")
                ->count,
            static_cast<uint64_t>(kTotal));
  EXPECT_EQ(engine.scheduler().error_count(), 0);
}

TEST(ConcurrencyStress, ThreadPoolParallelForCoversAllIndices) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // Nested submissions while ParallelFor runs elsewhere.
  std::atomic<int> count{0};
  pool.ParallelFor(100, [&](size_t) {
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace datacell
