#include <gtest/gtest.h>

#include "core/engine.h"
#include "sql/parser.h"

namespace datacell {
namespace {

// --- LikeMatch unit behaviour ------------------------------------------

TEST(LikeMatchTest, Literals) {
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_FALSE(LikeMatch("abc", "abd"));
  EXPECT_FALSE(LikeMatch("abc", "ab"));
  EXPECT_FALSE(LikeMatch("ab", "abc"));
  EXPECT_TRUE(LikeMatch("", ""));
}

TEST(LikeMatchTest, Underscore) {
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_TRUE(LikeMatch("abc", "___"));
  EXPECT_FALSE(LikeMatch("abc", "__"));
  EXPECT_FALSE(LikeMatch("", "_"));
}

TEST(LikeMatchTest, Percent) {
  EXPECT_TRUE(LikeMatch("abc", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("abc", "a%"));
  EXPECT_TRUE(LikeMatch("abc", "%c"));
  EXPECT_TRUE(LikeMatch("abc", "%b%"));
  EXPECT_TRUE(LikeMatch("abc", "a%c"));
  EXPECT_FALSE(LikeMatch("abc", "a%d"));
  EXPECT_TRUE(LikeMatch("aXbXc", "a%b%c"));
  EXPECT_TRUE(LikeMatch("mississippi", "%ss%pp%"));
  EXPECT_FALSE(LikeMatch("mississippi", "%ss%xx%"));
}

TEST(LikeMatchTest, MixedWildcards) {
  EXPECT_TRUE(LikeMatch("server-room-3", "server%_"));
  EXPECT_TRUE(LikeMatch("abcdef", "a_c%f"));
  EXPECT_FALSE(LikeMatch("abcdef", "a_c%g"));
}

// --- parser desugaring -------------------------------------------------

TEST(SqlSugarParseTest, BetweenDesugars) {
  auto stmt = sql::ParseStatement("select * from t where a between 1 and 5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->where->ToString(), "((a >= 1) and (a <= 5))");
}

TEST(SqlSugarParseTest, NotBetweenDesugars) {
  auto stmt =
      sql::ParseStatement("select * from t where a not between 1 and 5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->where->ToString(),
            "not (((a >= 1) and (a <= 5)))");
}

TEST(SqlSugarParseTest, InListDesugars) {
  auto stmt = sql::ParseStatement("select * from t where a in (1, 2, 3)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->where->ToString(),
            "(((a = 1) or (a = 2)) or (a = 3))");
}

TEST(SqlSugarParseTest, NotInDesugars) {
  auto stmt = sql::ParseStatement("select * from t where a not in (1)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->where->ToString(), "not ((a = 1))");
}

TEST(SqlSugarParseTest, LikeParses) {
  auto stmt = sql::ParseStatement("select * from t where s like 'a%'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->where->ToString(), "(s like 'a%')");
  auto neg = sql::ParseStatement("select * from t where s not like 'a%'");
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(neg->select->where->ToString(), "not ((s like 'a%'))");
}

TEST(SqlSugarParseTest, ScalarFunctionsParse) {
  auto stmt = sql::ParseStatement(
      "select abs(a), round(b), upper(s) as u from t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->items[0].expr->func_name, "abs");
  EXPECT_EQ(stmt->select->items[2].alias, "u");
}

TEST(SqlSugarParseTest, DanglingNotRejected) {
  EXPECT_FALSE(sql::ParseStatement("select * from t where a not 5").ok());
}

// --- end-to-end through the engine ------------------------------------------

class SqlFunctionsTest : public ::testing::Test {
 protected:
  SqlFunctionsTest() {
    EngineOptions opts;
    opts.use_wall_clock = false;
    engine_ = std::make_unique<Engine>(opts);
    EXPECT_TRUE(
        engine_->ExecuteSql("create table t (a int, b double, s string)").ok());
    EXPECT_TRUE(engine_
                    ->ExecuteSql("insert into t values "
                                 "(-3, 2.7, 'Alpha'), (1, -1.2, 'beta'), "
                                 "(7, 0.5, 'alphabet'), (12, 3.5, 'Gamma')")
                    .ok());
  }

  std::vector<Row> Query(const std::string& sql) {
    auto r = engine_->ExecuteSql(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? (*r)->ToRows() : std::vector<Row>{};
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(SqlFunctionsTest, BetweenFilters) {
  auto rows = Query("select a from t where a between 0 and 10");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int64(1));
  EXPECT_EQ(rows[1][0], Value::Int64(7));
}

TEST_F(SqlFunctionsTest, InFilters) {
  auto rows = Query("select a from t where a in (7, -3, 99)");
  ASSERT_EQ(rows.size(), 2u);
  auto none = Query("select a from t where a not in (-3, 1, 7, 12)");
  EXPECT_TRUE(none.empty());
}

TEST_F(SqlFunctionsTest, InWithStrings) {
  auto rows = Query("select s from t where s in ('beta', 'Gamma')");
  ASSERT_EQ(rows.size(), 2u);
}

TEST_F(SqlFunctionsTest, LikeFilters) {
  auto rows = Query("select s from t where s like 'alpha%'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::String("alphabet"));
  auto rows2 = Query("select s from t where lower(s) like '%a'");
  // 'Alpha'->alpha, 'beta', 'Gamma'->gamma all end in a.
  EXPECT_EQ(rows2.size(), 3u);
}

TEST_F(SqlFunctionsTest, LikeTypeChecked) {
  EXPECT_FALSE(engine_->ExecuteSql("select * from t where a like 'x'").ok());
}

TEST_F(SqlFunctionsTest, NumericFunctions) {
  auto rows = Query(
      "select abs(a), floor(b), ceil(b), round(b), sqrt(a * a) from t "
      "where a = -3");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int64(3));
  EXPECT_EQ(rows[0][1], Value::Double(2.0));
  EXPECT_EQ(rows[0][2], Value::Double(3.0));
  EXPECT_EQ(rows[0][3], Value::Double(3.0));
  EXPECT_EQ(rows[0][4], Value::Double(3.0));
}

TEST_F(SqlFunctionsTest, SqrtOfNegativeIsNull) {
  auto rows = Query("select sqrt(b) from t where a = 1");  // b = -1.2
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0][0].is_null());
}

TEST_F(SqlFunctionsTest, StringFunctions) {
  auto rows = Query(
      "select length(s), lower(s), upper(s) from t where s = 'Alpha'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int64(5));
  EXPECT_EQ(rows[0][1], Value::String("alpha"));
  EXPECT_EQ(rows[0][2], Value::String("ALPHA"));
}

TEST_F(SqlFunctionsTest, FunctionTypeChecks) {
  EXPECT_FALSE(engine_->ExecuteSql("select abs(s) from t").ok());
  EXPECT_FALSE(engine_->ExecuteSql("select length(a) from t").ok());
  EXPECT_FALSE(engine_->ExecuteSql("select upper(b) from t").ok());
}

TEST_F(SqlFunctionsTest, FunctionOverAggregate) {
  auto rows = Query("select round(avg(b)) as r, abs(sum(a)) as s from t");
  ASSERT_EQ(rows.size(), 1u);
  // avg(2.7, -1.2, 0.5, 3.5) = 1.375 -> 1 ; sum(a) = 17.
  EXPECT_EQ(rows[0][0], Value::Double(1.0));
  EXPECT_EQ(rows[0][1], Value::Double(17.0));
}

TEST_F(SqlFunctionsTest, FunctionInsideAggregate) {
  auto rows = Query("select sum(abs(a)) from t");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Double(3 + 1 + 7 + 12));
}

TEST_F(SqlFunctionsTest, GroupByScalarFunction) {
  auto rows = Query(
      "select a % 2 as parity, count(*) as c from t group by a % 2 "
      "order by parity");
  // a values: -3, 1, 7, 12 -> parities -1, 1, 1, 0.
  ASSERT_EQ(rows.size(), 3u);
}

TEST_F(SqlFunctionsTest, ContinuousQueryWithSugar) {
  ASSERT_TRUE(
      engine_->ExecuteSql("create basket logs (level string, msg string)").ok());
  auto q = engine_->SubmitContinuousQuery(
      "errors",
      "select upper(level) as lvl, msg from "
      "[select * from logs where level in ('error', 'fatal')] as l "
      "where l.msg like '%disk%'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto sink = std::make_shared<CollectingSink>();
  ASSERT_TRUE(engine_->Subscribe(*q, sink).ok());
  for (auto [lvl, msg] : std::vector<std::pair<std::string, std::string>>{
           {"info", "disk ok"},
           {"error", "disk full"},
           {"error", "network down"},
           {"fatal", "disk on fire"}}) {
    ASSERT_TRUE(
        engine_->Ingest("logs", {Value::String(lvl), Value::String(msg)}).ok());
  }
  engine_->Drain();
  auto rows = sink->TakeRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::String("ERROR"));
  EXPECT_EQ(rows[1][0], Value::String("FATAL"));
}

TEST_F(SqlFunctionsTest, CaseExpression) {
  auto rows = Query(
      "select a, case when a < 0 then 'neg' when a = 1 then 'one' "
      "else 'big' end as bucket from t order by a");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][1], Value::String("neg"));   // -3
  EXPECT_EQ(rows[1][1], Value::String("one"));   // 1
  EXPECT_EQ(rows[2][1], Value::String("big"));   // 7
  EXPECT_EQ(rows[3][1], Value::String("big"));   // 12
}

TEST_F(SqlFunctionsTest, CaseNumericWidening) {
  // Int and double branches widen to double.
  auto rows = Query(
      "select case when a > 0 then a else b end as v from t where a = -3");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Double(2.7));
  auto rows2 = Query(
      "select case when a > 0 then a else b end as v from t where a = 7");
  EXPECT_EQ(rows2[0][0], Value::Double(7.0));
}

TEST_F(SqlFunctionsTest, CaseInWhere) {
  auto rows = Query(
      "select a from t where case when a < 0 then true else a > 10 end");
  // -3 (neg branch) and 12 (> 10).
  ASSERT_EQ(rows.size(), 2u);
}

TEST_F(SqlFunctionsTest, CaseOverAggregates) {
  auto rows = Query(
      "select case when count(*) > 3 then 'many' else 'few' end as n from t");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::String("many"));
}

TEST_F(SqlFunctionsTest, CaseFirstMatchingBranchWins) {
  auto rows = Query(
      "select case when a > 0 then 'pos' when a > 5 then 'big' "
      "else 'other' end as c from t where a = 7");
  EXPECT_EQ(rows[0][0], Value::String("pos"));
}

TEST_F(SqlFunctionsTest, CaseValidation) {
  // Mixed non-numeric branch types.
  EXPECT_FALSE(engine_
                   ->ExecuteSql("select case when a > 0 then 'x' else 1 end "
                                "from t")
                   .ok());
  // ELSE is mandatory in this dialect.
  EXPECT_FALSE(
      engine_->ExecuteSql("select case when a > 0 then 1 end from t").ok());
  // Non-boolean condition.
  EXPECT_FALSE(
      engine_->ExecuteSql("select case when a then 1 else 2 end from t").ok());
  // Simple CASE form unsupported.
  EXPECT_FALSE(
      engine_->ExecuteSql("select case a when 1 then 2 else 3 end from t")
          .ok());
}

TEST_F(SqlFunctionsTest, CaseInContinuousQuery) {
  ASSERT_TRUE(engine_->ExecuteSql("create basket m (v int)").ok());
  auto q = engine_->SubmitContinuousQuery(
      "graded",
      "select v, case when v >= 90 then 'A' when v >= 60 then 'B' "
      "else 'C' end as grade from [select * from m] as s");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto sink = std::make_shared<CollectingSink>();
  ASSERT_TRUE(engine_->Subscribe(*q, sink).ok());
  for (int v : {95, 70, 10}) {
    ASSERT_TRUE(engine_->Ingest("m", {Value::Int64(v)}).ok());
  }
  engine_->Drain();
  auto rows = sink->TakeRows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][1], Value::String("A"));
  EXPECT_EQ(rows[1][1], Value::String("B"));
  EXPECT_EQ(rows[2][1], Value::String("C"));
}

TEST_F(SqlFunctionsTest, ColumnsCannotUseNewKeywords) {
  EXPECT_FALSE(engine_->ExecuteSql("create table bad (between int)").ok());
  EXPECT_FALSE(engine_->ExecuteSql("create table bad (in int)").ok());
  EXPECT_FALSE(engine_->ExecuteSql("create table bad (like int)").ok());
}

}  // namespace
}  // namespace datacell
