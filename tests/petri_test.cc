#include <gtest/gtest.h>

#include "common/random.h"
#include "core/petri.h"

namespace datacell {
namespace {

TEST(PetriTest, Figure1Pipeline) {
  // The paper's Figure 1: stream -> R -> B1 -> Q -> B2 -> E -> client.
  PetriNet net;
  auto stream = net.AddPlace("stream", 3);
  auto b1 = net.AddPlace("B1");
  auto b2 = net.AddPlace("B2");
  auto client = net.AddPlace("client");
  auto receptor = net.AddTransition("R", {{stream}}, {{b1}});
  auto factory = net.AddTransition("Q", {{b1}}, {{b2}});
  auto emitter = net.AddTransition("E", {{b2}}, {{client}});
  ASSERT_TRUE(receptor.ok());
  ASSERT_TRUE(factory.ok());
  ASSERT_TRUE(emitter.ok());

  EXPECT_TRUE(net.Enabled(*receptor));
  EXPECT_FALSE(net.Enabled(*factory));  // B1 empty: no input, no firing

  int64_t fired = net.RunToQuiescence(100);
  EXPECT_EQ(fired, 9);  // 3 tokens x 3 transitions
  EXPECT_EQ(net.tokens(client), 3);
  EXPECT_TRUE(net.Quiescent());
}

TEST(PetriTest, TransitionNeedsInputAndOutput) {
  PetriNet net;
  auto p = net.AddPlace("p");
  EXPECT_FALSE(net.AddTransition("bad", {}, {{p}}).ok());
  EXPECT_FALSE(net.AddTransition("bad", {{p}}, {}).ok());
  EXPECT_FALSE(net.AddTransition("bad", {{p, 0}}, {{p}}).ok());
  EXPECT_FALSE(net.AddTransition("bad", {{99}}, {{p}}).ok());
}

TEST(PetriTest, ThresholdArcWeights) {
  // §2.4: "the system may explicitly require a basket to have a minimum of
  // n tuples before the relevant factory may run".
  PetriNet net;
  auto in = net.AddPlace("in");
  auto out = net.AddPlace("out");
  auto t = *net.AddTransition("batch4", {{in, 4}}, {{out, 1}});
  net.Inject(in, 3);
  EXPECT_FALSE(net.Enabled(t));
  net.Inject(in, 1);
  EXPECT_TRUE(net.Enabled(t));
  ASSERT_TRUE(net.Fire(t).ok());
  EXPECT_EQ(net.tokens(in), 0);
  EXPECT_EQ(net.tokens(out), 1);
}

TEST(PetriTest, MultiInputRequiresAll) {
  // A join factory fires only when all its input baskets hold tuples.
  PetriNet net;
  auto a = net.AddPlace("a");
  auto b = net.AddPlace("b");
  auto out = net.AddPlace("out");
  auto join = *net.AddTransition("join", {{a}, {b}}, {{out}});
  net.Inject(a, 5);
  EXPECT_FALSE(net.Enabled(join));
  net.Inject(b, 1);
  EXPECT_TRUE(net.Enabled(join));
  ASSERT_TRUE(net.Fire(join).ok());
  EXPECT_FALSE(net.Enabled(join));  // b exhausted
  EXPECT_EQ(net.tokens(a), 4);
}

TEST(PetriTest, FireDisabledFails) {
  PetriNet net;
  auto in = net.AddPlace("in");
  auto out = net.AddPlace("out");
  auto t = *net.AddTransition("t", {{in}}, {{out}});
  EXPECT_EQ(net.Fire(t).code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(net.Fire(42).ok());
}

TEST(PetriTest, SharedPlaceFanOut) {
  // One basket feeding two factories (shared baskets, §2.5): each firing
  // consumes the token, so a plain shared place serialises consumers — the
  // engine's watermark mechanism is what relaxes this for reads.
  PetriNet net;
  auto in = net.AddPlace("in", 1);
  auto o1 = net.AddPlace("o1");
  auto o2 = net.AddPlace("o2");
  auto q1 = *net.AddTransition("q1", {{in}}, {{o1}});
  auto q2 = *net.AddTransition("q2", {{in}}, {{o2}});
  EXPECT_TRUE(net.Enabled(q1));
  EXPECT_TRUE(net.Enabled(q2));
  ASSERT_TRUE(net.Fire(q1).ok());
  EXPECT_FALSE(net.Enabled(q2));
}

TEST(PetriTest, RunToQuiescenceRespectsCap) {
  // A cycle never quiesces; the cap must stop it.
  PetriNet net;
  auto a = net.AddPlace("a", 1);
  auto b = net.AddPlace("b");
  ASSERT_TRUE(net.AddTransition("ab", {{a}}, {{b}}).ok());
  ASSERT_TRUE(net.AddTransition("ba", {{b}}, {{a}}).ok());
  EXPECT_EQ(net.RunToQuiescence(17), 17);
  EXPECT_FALSE(net.Quiescent());
}

// Property: a transition with equal input and output weight sums conserves
// tokens; firing any enabled transition never makes token counts negative.
class PetriConservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PetriConservationTest, RandomConservativeNets) {
  Rng rng(GetParam());
  PetriNet net;
  constexpr int kPlaces = 6;
  for (int i = 0; i < kPlaces; ++i) {
    net.AddPlace("p" + std::to_string(i),
                 rng.Uniform(0, 5));
  }
  // Conservative transitions: one token in, one token out.
  for (int i = 0; i < 8; ++i) {
    auto in = static_cast<size_t>(rng.Uniform(0, kPlaces - 1));
    auto out = static_cast<size_t>(rng.Uniform(0, kPlaces - 1));
    ASSERT_TRUE(net.AddTransition("t" + std::to_string(i), {{in, 1}},
                                  {{out, 1}})
                    .ok());
  }
  int64_t before = net.TotalTokens();
  net.RunToQuiescence(200);
  EXPECT_EQ(net.TotalTokens(), before);
  for (size_t p = 0; p < net.num_places(); ++p) {
    EXPECT_GE(net.tokens(p), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PetriConservationTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 10u, 99u));

}  // namespace
}  // namespace datacell
