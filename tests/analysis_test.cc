// The static analyzer (src/analysis): pass 1 plan/type checks, pass 2
// Petri-net dataflow lints, the registration gates in Engine and Factory,
// and the interval machinery behind the chain checks.
//
// The table-driven registration cases are the PR's contract: each row is an
// error class that used to surface only when the query first fired (or
// aborted the evaluator outright) and must now be rejected at
// SubmitContinuousQuery with a positioned message.

#include <gtest/gtest.h>

#include "analysis/diagnostic.h"
#include "analysis/interval.h"
#include "analysis/net_analyzer.h"
#include "analysis/plan_analyzer.h"
#include "core/engine.h"
#include "core/factory.h"

namespace datacell {
namespace {

EngineOptions Deterministic() {
  EngineOptions opts;
  opts.use_wall_clock = false;
  return opts;
}

Schema XNameSchema() {
  return Schema({{"x", DataType::kInt64}, {"name", DataType::kString}});
}

// --- registration-time SQL rejection (the bind/bind_post gate) --------------

struct RejectionCase {
  const char* label;
  const char* sql;
  // Every listed substring must appear in the rejection message. "at 1:"
  // asserts the diagnostic carries a source position.
  std::vector<const char*> expect;
};

class RegistrationRejectionTest
    : public ::testing::TestWithParam<RejectionCase> {};

TEST_P(RegistrationRejectionTest, RejectedAtSubmitWithPositionedMessage) {
  const RejectionCase& c = GetParam();
  Engine engine(Deterministic());
  ASSERT_TRUE(
      engine.ExecuteSql("create basket s (x int, y double, name varchar)")
          .ok());
  auto q = engine.SubmitContinuousQuery(c.label, c.sql);
  ASSERT_FALSE(q.ok()) << c.label << ": accepted " << c.sql;
  // Type faults reject as TypeError; name-resolution faults as NotFound.
  EXPECT_TRUE(q.status().IsTypeError() ||
              q.status().code() == StatusCode::kNotFound)
      << c.label << ": " << q.status().ToString();
  for (const char* want : c.expect) {
    EXPECT_NE(q.status().message().find(want), std::string::npos)
        << c.label << ": expected '" << want << "' in\n  "
        << q.status().message();
  }
  // Rejection must leave no state behind: the same name resubmits cleanly.
  auto ok = engine.SubmitContinuousQuery(
      c.label, "select x from [select * from s] as t");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    ErrorClasses, RegistrationRejectionTest,
    ::testing::Values(
        // -- plain binder classes, now carrying positions ------------------
        RejectionCase{"arith_string",
                      "select x + name from [select * from s] as t",
                      {"arithmetic", "at 1:8"}},
        RejectionCase{"cmp_string_num",
                      "select x from [select * from s] as t "
                      "where t.name > 10",
                      {"compare", "at 1:"}},
        RejectionCase{"like_non_string",
                      "select x from [select * from s] as t "
                      "where t.x like 'a%'",
                      {"LIKE", "at 1:"}},
        RejectionCase{"not_non_bool",
                      "select x from [select * from s] as t where not t.x",
                      {"NOT", "at 1:"}},
        RejectionCase{"and_non_bool",
                      "select x from [select * from s] as t "
                      "where t.x and t.y > 1.0",
                      {"boolean", "at 1:"}},
        RejectionCase{"func_arg_type",
                      "select upper(x) from [select * from s] as t",
                      {"upper", "string"}},
        RejectionCase{"unknown_column",
                      "select missing from [select * from s] as t",
                      {"unknown column", "at 1:8"}},
        RejectionCase{"case_branch_mix",
                      "select case when x > 0 then name else y end "
                      "from [select * from s] as t",
                      {"CASE branches", "at 1:"}},
        // -- the bind_post hole: expressions rebuilt after the aggregate
        //    rewrite used to skip operand checks and fail at fire time ------
        RejectionCase{"agg_plus_string",
                      "select x, count(*) + 'x' from [select * from s] as t "
                      "group by x",
                      {"arithmetic", "at 1:"}},
        RejectionCase{"agg_cmp_string",
                      "select x from [select * from s] as t group by x "
                      "having count(*) > 'abc'",
                      {"compare", "at 1:"}},
        RejectionCase{"agg_logical",
                      "select x from [select * from s] as t group by x "
                      "having count(*) and count(*)",
                      {"boolean", "at 1:"}},
        RejectionCase{"agg_like",
                      "select x from [select * from s] as t group by x "
                      "having count(*) like 'x'",
                      {"LIKE", "at 1:"}},
        RejectionCase{"agg_not",
                      "select x from [select * from s] as t group by x "
                      "having not count(*)",
                      {"NOT", "at 1:"}},
        RejectionCase{"agg_func_arg",
                      "select x, upper(count(*)) from "
                      "[select * from s] as t group by x",
                      {"upper", "string"}},
        RejectionCase{"agg_string_input",
                      "select x, count(name) from [select * from s] as t "
                      "group by x",
                      {"aggregate", "name"}},
        RejectionCase{"having_non_bool",
                      "select x, count(*) from [select * from s] as t "
                      "group by x having count(*) + 1",
                      {"HAVING", "boolean"}}),
    [](const auto& info) { return std::string(info.param.label); });

// Sanity: the analyzer gate must not make registration stricter than the
// binder on healthy SQL.
TEST(RegistrationGateTest, AcceptsHealthyQueries) {
  Engine engine(Deterministic());
  ASSERT_TRUE(
      engine.ExecuteSql("create basket s (x int, y double, name varchar)")
          .ok());
  const char* good[] = {
      "select x, y from [select * from s] as t where t.x > 3 and t.y < 1.5",
      "select x, sum(y), count(*) from [select * from s] as t group by x "
      "having count(*) > 1",
      "select upper(name), length(name) from [select * from s] as t "
      "where t.name like 'e%'",
      "select case when x > 0 then y else 0.0 end from "
      "[select * from s] as t",
  };
  int i = 0;
  for (const char* sql : good) {
    auto q = engine.SubmitContinuousQuery("g" + std::to_string(i++), sql);
    EXPECT_TRUE(q.ok()) << sql << "\n  " << q.status().ToString();
  }
}

// --- pass 1 over hand-built plans (the C++ registration surface) ------------

TEST(PlanAnalyzerTest, ColumnOutOfRangeIsP002) {
  auto scan = MakeScan("s", XNameSchema());
  ASSERT_TRUE(scan.ok());
  auto proj = MakeProject(
      *scan, {Expr::Column(5, "ghost", DataType::kInt64)}, {"ghost"});
  ASSERT_TRUE(proj.ok());  // builders trust declared types; analysis doesn't
  analysis::AnalysisReport report = analysis::AnalyzePlan(**proj);
  EXPECT_TRUE(report.Has(analysis::DiagCode::kColumnOutOfRange));
  EXPECT_NE(report.ToString().find("[P002]"), std::string::npos)
      << report.ToString();
  EXPECT_TRUE(report.ToStatus().IsTypeError());
}

TEST(PlanAnalyzerTest, DeclaredTypeDriftSeverityTracksStorageClass) {
  Schema in = XNameSchema();
  // int declared where the input is string: wrong BAT accessor -> error.
  analysis::AnalysisReport cross;
  analysis::CheckExpr(*Expr::Column(1, "name", DataType::kInt64), in, "Test",
                      &cross);
  EXPECT_EQ(cross.num_errors(), 1u);
  EXPECT_TRUE(cross.Has(analysis::DiagCode::kDeclaredTypeMismatch));
  // double declared where the input is int: numeric family, warning only.
  analysis::AnalysisReport drift;
  auto t = analysis::CheckExpr(*Expr::Column(0, "x", DataType::kDouble), in,
                               "Test", &drift);
  EXPECT_EQ(drift.num_errors(), 0u);
  EXPECT_EQ(drift.num_warnings(), 1u);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, DataType::kInt64);  // inference trusts the schema
}

TEST(PlanAnalyzerTest, AggregateInputTypeIsP017) {
  auto scan = MakeScan("s", XNameSchema());
  ASSERT_TRUE(scan.ok());
  AggSpec sum_string;
  sum_string.func = AggFunc::kSum;
  sum_string.input_column = 1;  // the string column
  sum_string.output_name = "t";
  // The builder checks ranges but not input types: this shape used to abort
  // the aggregate kernel at fire time. The analyzer is the only gate.
  auto bad_input = MakeAggregate(*scan, {0}, {sum_string});
  ASSERT_TRUE(bad_input.ok());
  analysis::AnalysisReport report = analysis::AnalyzePlan(**bad_input);
  EXPECT_TRUE(report.Has(analysis::DiagCode::kAggregateInputType));
  EXPECT_NE(report.ToString().find("[P017]"), std::string::npos)
      << report.ToString();
}

// Join keys and union shapes are validated by the plan builders themselves;
// the analyzer re-checks them only for plans that bypassed the builders.
// Assert the first line of defense holds so the analyzer's assumption (every
// built plan has in-range, type-consistent keys) stays true.
TEST(PlanBuilderTest, JoinAndUnionMalformationsRejectedAtBuild) {
  auto a = MakeScan("a", XNameSchema());
  auto b = MakeScan("b", Schema({{"x", DataType::kInt64}}));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(MakeHashJoin(*a, *b, 7, 0).ok());   // key out of range
  EXPECT_FALSE(MakeHashJoin(*a, *a, 0, 1).ok());   // int key vs string key
  EXPECT_FALSE(MakeUnion(*a, *b).ok());            // arity mismatch
  auto c = MakeScan("c", Schema({{"x", DataType::kString},
                                 {"name", DataType::kString}}));
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(MakeUnion(*a, *c).ok());            // column type mismatch
}

TEST(PlanAnalyzerTest, AcceptsWellTypedPlan) {
  auto scan = MakeScan("s", XNameSchema());
  ASSERT_TRUE(scan.ok());
  auto filter = MakeFilter(
      *scan, Expr::Binary(BinaryOp::kGt,
                          Expr::Column(0, "x", DataType::kInt64),
                          Expr::Int(3)));
  ASSERT_TRUE(filter.ok());
  analysis::AnalysisReport report = analysis::AnalyzePlan(**filter);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.ToStatus().ok());
  EXPECT_NE(report.ToString().find("no issues found"), std::string::npos);
}

// --- the Factory::Create gate (C++-built CompiledQuery) ---------------------

TEST(FactoryGateTest, BadConsumePredicateIsP003) {
  Engine engine(Deterministic());
  auto in = engine.CreateStream("s", XNameSchema());
  auto out = engine.CreateStream("out", XNameSchema());
  ASSERT_TRUE(in.ok() && out.ok());

  sql::CompiledQuery q;
  auto scan = MakeScan("s", (*in)->schema());
  ASSERT_TRUE(scan.ok());
  q.plan = *scan;
  q.output_schema = (*in)->schema();
  q.continuous = true;
  sql::ContinuousInput ci;
  ci.basket = "s";
  ci.bind_name = "s";
  ci.basket_schema = (*in)->schema();
  // Not boolean: previously only detected when the first drain selected on it.
  ci.consume_predicate = Expr::Column(0, "x", DataType::kInt64);
  q.inputs.push_back(ci);

  auto f = Factory::Create("bad", std::move(q), {*in}, *out, {},
                           &engine.clock(), {});
  ASSERT_FALSE(f.ok());
  EXPECT_TRUE(f.status().IsTypeError());
  EXPECT_NE(f.status().message().find("[P003]"), std::string::npos)
      << f.status().ToString();
}

TEST(FactoryGateTest, BrokenPlanRejectedWithDiagCode) {
  Engine engine(Deterministic());
  auto in = engine.CreateStream("s", XNameSchema());
  auto out = engine.CreateStream("out", XNameSchema());
  ASSERT_TRUE(in.ok() && out.ok());

  sql::CompiledQuery q;
  auto scan = MakeScan("s", (*in)->schema());
  ASSERT_TRUE(scan.ok());
  auto proj = MakeProject(
      *scan, {Expr::Column(17, "ghost", DataType::kInt64)}, {"ghost"});
  ASSERT_TRUE(proj.ok());
  q.plan = *proj;
  q.output_schema = Schema({{"ghost", DataType::kInt64}});
  q.continuous = true;
  sql::ContinuousInput ci;
  ci.basket = "s";
  ci.bind_name = "s";
  ci.basket_schema = (*in)->schema();
  q.inputs.push_back(ci);

  auto f = Factory::Create("bad", std::move(q), {*in}, *out, {},
                           &engine.clock(), {});
  ASSERT_FALSE(f.ok());
  EXPECT_NE(f.status().message().find("[P002]"), std::string::npos)
      << f.status().ToString();
}

// --- pass 2: Engine::Analyze over live nets ---------------------------------

TEST(NetAnalysisTest, OrphanBasketFlagged) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket lonely (x int)").ok());
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kOrphanBasket))
      << report.ToString();
}

TEST(NetAnalysisTest, HealthyPipelineIsClean) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x > 3");
  ASSERT_TRUE(q.ok());
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_FALSE(report.Has(analysis::DiagCode::kOrphanBasket))
      << report.ToString();
}

TEST(NetAnalysisTest, DeadTransitionAfterUpstreamRemoval) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q1 = engine.SubmitContinuousQuery(
      "stage1", "select x * 2 as x2 from [select * from r] as s");
  ASSERT_TRUE(q1.ok());
  auto q2 = engine.SubmitContinuousQuery(
      "stage2", "select x2 from [select * from stage1_out] as t");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(engine.Analyze().Has(analysis::DiagCode::kDeadTransition));

  // Remove the producer: stage2 still reads stage1_out, which nothing
  // feeds any more.
  ASSERT_TRUE(engine.RemoveContinuousQuery(*q1).ok());
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kDeadTransition))
      << report.ToString();
}

TEST(NetAnalysisTest, MultiReaderSharedBasketWarns) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  QueryOptions shared;
  shared.strategy = ProcessingStrategy::kSharedBaskets;
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "a", "select x from [select * from r] as s", shared)
                  .ok());
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "b", "select x from [select * from r] as s", shared)
                  .ok());
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kMultiReaderStealing))
      << report.ToString();
  EXPECT_EQ(report.num_errors(), 0u) << report.ToString();  // warning only
}

TEST(NetAnalysisTest, ChainedPredicateOverlapWarns) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  QueryOptions chained;
  chained.strategy = ProcessingStrategy::kChained;
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "c1", "select x from [select * from r where r.x > 10] "
                            "as s",
                      chained)
                  .ok());
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "c2", "select x from [select * from r where r.x > 5] "
                            "as s",
                      chained)
                  .ok());
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kChainPredicateOverlap))
      << report.ToString();
}

TEST(NetAnalysisTest, ChainedCoverageGapWarns) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  QueryOptions chained;
  chained.strategy = ProcessingStrategy::kChained;
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "lo", "select x from [select * from r where r.x < 5] "
                            "as s",
                      chained)
                  .ok());
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "hi", "select x from [select * from r where r.x > 10] "
                            "as s",
                      chained)
                  .ok());
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kChainCoverageGap))
      << report.ToString();
  EXPECT_FALSE(report.Has(analysis::DiagCode::kChainPredicateOverlap))
      << report.ToString();
}

TEST(NetAnalysisTest, DisjointCoveringChainIsClean) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  QueryOptions chained;
  chained.strategy = ProcessingStrategy::kChained;
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "lo", "select x from [select * from r where r.x < 5] "
                            "as s",
                      chained)
                  .ok());
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "hi", "select x from [select * from r where r.x >= 5] "
                            "as s",
                      chained)
                  .ok());
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_FALSE(report.Has(analysis::DiagCode::kChainPredicateOverlap))
      << report.ToString();
  EXPECT_FALSE(report.Has(analysis::DiagCode::kChainCoverageGap))
      << report.ToString();
}

// --- pass 2 on hand-built topologies (shapes the engine cannot produce) -----

TEST(NetTopologyTest, IllegalCycleDetected) {
  analysis::NetTopology net;
  net.places.push_back({"a", true, 1, false});
  net.places.push_back({"b", false, 1, false});
  net.transitions.push_back(
      {"fwd", analysis::NetNodeKind::kFactory, {"a"}, {"b"}});
  net.transitions.push_back(
      {"back", analysis::NetNodeKind::kFactory, {"b"}, {"a"}});
  analysis::AnalysisReport report = analysis::AnalyzeTopology(net);
  EXPECT_TRUE(report.Has(analysis::DiagCode::kIllegalCycle))
      << report.ToString();
}

TEST(NetTopologyTest, AcyclicPipelineHasNoCycleFinding) {
  analysis::NetTopology net;
  net.places.push_back({"a", true, 1, false});
  net.places.push_back({"b", false, 1, false});
  net.places.push_back({"c", false, 1, false});
  net.transitions.push_back(
      {"t1", analysis::NetNodeKind::kFactory, {"a"}, {"b"}});
  net.transitions.push_back(
      {"t2", analysis::NetNodeKind::kFactory, {"b"}, {"c"}});
  net.transitions.push_back(
      {"sink", analysis::NetNodeKind::kEmitter, {"c"}, {}});
  analysis::AnalysisReport report = analysis::AnalyzeTopology(net);
  EXPECT_FALSE(report.Has(analysis::DiagCode::kIllegalCycle))
      << report.ToString();
}

// --- the interval machinery behind N005/N006 --------------------------------

ExprPtr Col0() { return Expr::Column(0, "x", DataType::kInt64); }

TEST(IntervalSetTest, ModelsSimpleComparisons) {
  size_t col = 9;
  auto gt = analysis::IntervalSet::FromPredicate(
      *Expr::Binary(BinaryOp::kGt, Col0(), Expr::Int(10)), &col);
  ASSERT_TRUE(gt.has_value());
  EXPECT_EQ(col, 0u);
  EXPECT_FALSE(gt->Contains(10.0));
  EXPECT_TRUE(gt->Contains(10.5));

  auto le = analysis::IntervalSet::FromPredicate(
      *Expr::Binary(BinaryOp::kLe, Col0(), Expr::Int(10)), &col);
  ASSERT_TRUE(le.has_value());
  EXPECT_TRUE(le->Contains(10.0));
  EXPECT_FALSE(le->Contains(10.5));

  // gt and le partition the domain at 10.
  EXPECT_TRUE(gt->Intersect(*le).IsEmpty());
  EXPECT_TRUE(gt->Union(*le).IsAll());
}

TEST(IntervalSetTest, AndOrComplement) {
  size_t col = 0;
  // 5 < x and x < 10
  auto band = analysis::IntervalSet::FromPredicate(
      *Expr::And(Expr::Binary(BinaryOp::kGt, Col0(), Expr::Int(5)),
                 Expr::Binary(BinaryOp::kLt, Col0(), Expr::Int(10))),
      &col);
  ASSERT_TRUE(band.has_value());
  EXPECT_TRUE(band->Contains(7.0));
  EXPECT_FALSE(band->Contains(5.0));
  EXPECT_FALSE(band->Contains(12.0));
  analysis::IntervalSet outside = band->Complement();
  EXPECT_TRUE(outside.Contains(5.0));
  EXPECT_TRUE(outside.Contains(12.0));
  EXPECT_FALSE(outside.Contains(7.0));
  EXPECT_TRUE(band->Union(outside).IsAll());
}

TEST(IntervalSetTest, OutOfFragmentShapesAreRejected) {
  size_t col = 0;
  // String comparison: not a numeric interval.
  EXPECT_FALSE(analysis::IntervalSet::FromPredicate(
                   *Expr::Eq(Expr::Column(1, "name", DataType::kString),
                             Expr::Str("a")),
                   &col)
                   .has_value());
  // Two different columns cannot fold into one axis.
  EXPECT_FALSE(analysis::IntervalSet::FromPredicate(
                   *Expr::Binary(BinaryOp::kGt, Col0(),
                                 Expr::Column(2, "y", DataType::kInt64)),
                   &col)
                   .has_value());
}

}  // namespace
}  // namespace datacell
