// The static analyzer (src/analysis): pass 1 plan/type checks, pass 2
// Petri-net dataflow lints, the registration gates in Engine and Factory,
// and the interval machinery behind the chain checks.
//
// The table-driven registration cases are the PR's contract: each row is an
// error class that used to surface only when the query first fired (or
// aborted the evaluator outright) and must now be rejected at
// SubmitContinuousQuery with a positioned message.

#include <gtest/gtest.h>

#include "analysis/diagnostic.h"
#include "analysis/interval.h"
#include "analysis/key_set.h"
#include "analysis/net_analyzer.h"
#include "analysis/partition_analyzer.h"
#include "analysis/plan_analyzer.h"
#include "analysis/state_analyzer.h"
#include "analysis/state_bound.h"
#include "core/engine.h"
#include "core/factory.h"
#include "core/state_oracle.h"

namespace datacell {
namespace {

EngineOptions Deterministic() {
  EngineOptions opts;
  opts.use_wall_clock = false;
  return opts;
}

Schema XNameSchema() {
  return Schema({{"x", DataType::kInt64}, {"name", DataType::kString}});
}

// --- registration-time SQL rejection (the bind/bind_post gate) --------------

struct RejectionCase {
  const char* label;
  const char* sql;
  // Every listed substring must appear in the rejection message. "at 1:"
  // asserts the diagnostic carries a source position.
  std::vector<const char*> expect;
};

class RegistrationRejectionTest
    : public ::testing::TestWithParam<RejectionCase> {};

TEST_P(RegistrationRejectionTest, RejectedAtSubmitWithPositionedMessage) {
  const RejectionCase& c = GetParam();
  Engine engine(Deterministic());
  ASSERT_TRUE(
      engine.ExecuteSql("create basket s (x int, y double, name varchar)")
          .ok());
  auto q = engine.SubmitContinuousQuery(c.label, c.sql);
  ASSERT_FALSE(q.ok()) << c.label << ": accepted " << c.sql;
  // Type faults reject as TypeError; name-resolution faults as NotFound.
  EXPECT_TRUE(q.status().IsTypeError() ||
              q.status().code() == StatusCode::kNotFound)
      << c.label << ": " << q.status().ToString();
  for (const char* want : c.expect) {
    EXPECT_NE(q.status().message().find(want), std::string::npos)
        << c.label << ": expected '" << want << "' in\n  "
        << q.status().message();
  }
  // Rejection must leave no state behind: the same name resubmits cleanly.
  auto ok = engine.SubmitContinuousQuery(
      c.label, "select x from [select * from s] as t");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    ErrorClasses, RegistrationRejectionTest,
    ::testing::Values(
        // -- plain binder classes, now carrying positions ------------------
        RejectionCase{"arith_string",
                      "select x + name from [select * from s] as t",
                      {"arithmetic", "at 1:8"}},
        RejectionCase{"cmp_string_num",
                      "select x from [select * from s] as t "
                      "where t.name > 10",
                      {"compare", "at 1:"}},
        RejectionCase{"like_non_string",
                      "select x from [select * from s] as t "
                      "where t.x like 'a%'",
                      {"LIKE", "at 1:"}},
        RejectionCase{"not_non_bool",
                      "select x from [select * from s] as t where not t.x",
                      {"NOT", "at 1:"}},
        RejectionCase{"and_non_bool",
                      "select x from [select * from s] as t "
                      "where t.x and t.y > 1.0",
                      {"boolean", "at 1:"}},
        RejectionCase{"func_arg_type",
                      "select upper(x) from [select * from s] as t",
                      {"upper", "string"}},
        RejectionCase{"unknown_column",
                      "select missing from [select * from s] as t",
                      {"unknown column", "at 1:8"}},
        RejectionCase{"case_branch_mix",
                      "select case when x > 0 then name else y end "
                      "from [select * from s] as t",
                      {"CASE branches", "at 1:"}},
        // -- the bind_post hole: expressions rebuilt after the aggregate
        //    rewrite used to skip operand checks and fail at fire time ------
        RejectionCase{"agg_plus_string",
                      "select x, count(*) + 'x' from [select * from s] as t "
                      "group by x",
                      {"arithmetic", "at 1:"}},
        RejectionCase{"agg_cmp_string",
                      "select x from [select * from s] as t group by x "
                      "having count(*) > 'abc'",
                      {"compare", "at 1:"}},
        RejectionCase{"agg_logical",
                      "select x from [select * from s] as t group by x "
                      "having count(*) and count(*)",
                      {"boolean", "at 1:"}},
        RejectionCase{"agg_like",
                      "select x from [select * from s] as t group by x "
                      "having count(*) like 'x'",
                      {"LIKE", "at 1:"}},
        RejectionCase{"agg_not",
                      "select x from [select * from s] as t group by x "
                      "having not count(*)",
                      {"NOT", "at 1:"}},
        RejectionCase{"agg_func_arg",
                      "select x, upper(count(*)) from "
                      "[select * from s] as t group by x",
                      {"upper", "string"}},
        RejectionCase{"agg_string_input",
                      "select x, count(name) from [select * from s] as t "
                      "group by x",
                      {"aggregate", "name"}},
        RejectionCase{"having_non_bool",
                      "select x, count(*) from [select * from s] as t "
                      "group by x having count(*) + 1",
                      {"HAVING", "boolean"}}),
    [](const auto& info) { return std::string(info.param.label); });

// Sanity: the analyzer gate must not make registration stricter than the
// binder on healthy SQL.
TEST(RegistrationGateTest, AcceptsHealthyQueries) {
  Engine engine(Deterministic());
  ASSERT_TRUE(
      engine.ExecuteSql("create basket s (x int, y double, name varchar)")
          .ok());
  const char* good[] = {
      "select x, y from [select * from s] as t where t.x > 3 and t.y < 1.5",
      "select x, sum(y), count(*) from [select * from s] as t group by x "
      "having count(*) > 1",
      "select upper(name), length(name) from [select * from s] as t "
      "where t.name like 'e%'",
      "select case when x > 0 then y else 0.0 end from "
      "[select * from s] as t",
  };
  int i = 0;
  for (const char* sql : good) {
    auto q = engine.SubmitContinuousQuery("g" + std::to_string(i++), sql);
    EXPECT_TRUE(q.ok()) << sql << "\n  " << q.status().ToString();
  }
}

// --- pass 1 over hand-built plans (the C++ registration surface) ------------

TEST(PlanAnalyzerTest, ColumnOutOfRangeIsP002) {
  auto scan = MakeScan("s", XNameSchema());
  ASSERT_TRUE(scan.ok());
  auto proj = MakeProject(
      *scan, {Expr::Column(5, "ghost", DataType::kInt64)}, {"ghost"});
  ASSERT_TRUE(proj.ok());  // builders trust declared types; analysis doesn't
  analysis::AnalysisReport report = analysis::AnalyzePlan(**proj);
  EXPECT_TRUE(report.Has(analysis::DiagCode::kColumnOutOfRange));
  EXPECT_NE(report.ToString().find("[P002]"), std::string::npos)
      << report.ToString();
  EXPECT_TRUE(report.ToStatus().IsTypeError());
}

TEST(PlanAnalyzerTest, DeclaredTypeDriftSeverityTracksStorageClass) {
  Schema in = XNameSchema();
  // int declared where the input is string: wrong BAT accessor -> error.
  analysis::AnalysisReport cross;
  analysis::CheckExpr(*Expr::Column(1, "name", DataType::kInt64), in, "Test",
                      &cross);
  EXPECT_EQ(cross.num_errors(), 1u);
  EXPECT_TRUE(cross.Has(analysis::DiagCode::kDeclaredTypeMismatch));
  // double declared where the input is int: numeric family, warning only.
  analysis::AnalysisReport drift;
  auto t = analysis::CheckExpr(*Expr::Column(0, "x", DataType::kDouble), in,
                               "Test", &drift);
  EXPECT_EQ(drift.num_errors(), 0u);
  EXPECT_EQ(drift.num_warnings(), 1u);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, DataType::kInt64);  // inference trusts the schema
}

TEST(PlanAnalyzerTest, AggregateInputTypeIsP017) {
  auto scan = MakeScan("s", XNameSchema());
  ASSERT_TRUE(scan.ok());
  AggSpec sum_string;
  sum_string.func = AggFunc::kSum;
  sum_string.input_column = 1;  // the string column
  sum_string.output_name = "t";
  // The builder checks ranges but not input types: this shape used to abort
  // the aggregate kernel at fire time. The analyzer is the only gate.
  auto bad_input = MakeAggregate(*scan, {0}, {sum_string});
  ASSERT_TRUE(bad_input.ok());
  analysis::AnalysisReport report = analysis::AnalyzePlan(**bad_input);
  EXPECT_TRUE(report.Has(analysis::DiagCode::kAggregateInputType));
  EXPECT_NE(report.ToString().find("[P017]"), std::string::npos)
      << report.ToString();
}

// Join keys and union shapes are validated by the plan builders themselves;
// the analyzer re-checks them only for plans that bypassed the builders.
// Assert the first line of defense holds so the analyzer's assumption (every
// built plan has in-range, type-consistent keys) stays true.
TEST(PlanBuilderTest, JoinAndUnionMalformationsRejectedAtBuild) {
  auto a = MakeScan("a", XNameSchema());
  auto b = MakeScan("b", Schema({{"x", DataType::kInt64}}));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(MakeHashJoin(*a, *b, 7, 0).ok());   // key out of range
  EXPECT_FALSE(MakeHashJoin(*a, *a, 0, 1).ok());   // int key vs string key
  EXPECT_FALSE(MakeUnion(*a, *b).ok());            // arity mismatch
  auto c = MakeScan("c", Schema({{"x", DataType::kString},
                                 {"name", DataType::kString}}));
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(MakeUnion(*a, *c).ok());            // column type mismatch
}

TEST(PlanAnalyzerTest, AcceptsWellTypedPlan) {
  auto scan = MakeScan("s", XNameSchema());
  ASSERT_TRUE(scan.ok());
  auto filter = MakeFilter(
      *scan, Expr::Binary(BinaryOp::kGt,
                          Expr::Column(0, "x", DataType::kInt64),
                          Expr::Int(3)));
  ASSERT_TRUE(filter.ok());
  analysis::AnalysisReport report = analysis::AnalyzePlan(**filter);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.ToStatus().ok());
  EXPECT_NE(report.ToString().find("no issues found"), std::string::npos);
}

// --- the Factory::Create gate (C++-built CompiledQuery) ---------------------

TEST(FactoryGateTest, BadConsumePredicateIsP003) {
  Engine engine(Deterministic());
  auto in = engine.CreateStream("s", XNameSchema());
  auto out = engine.CreateStream("out", XNameSchema());
  ASSERT_TRUE(in.ok() && out.ok());

  sql::CompiledQuery q;
  auto scan = MakeScan("s", (*in)->schema());
  ASSERT_TRUE(scan.ok());
  q.plan = *scan;
  q.output_schema = (*in)->schema();
  q.continuous = true;
  sql::ContinuousInput ci;
  ci.basket = "s";
  ci.bind_name = "s";
  ci.basket_schema = (*in)->schema();
  // Not boolean: previously only detected when the first drain selected on it.
  ci.consume_predicate = Expr::Column(0, "x", DataType::kInt64);
  q.inputs.push_back(ci);

  auto f = Factory::Create("bad", std::move(q), {*in}, *out, {},
                           &engine.clock(), {});
  ASSERT_FALSE(f.ok());
  EXPECT_TRUE(f.status().IsTypeError());
  EXPECT_NE(f.status().message().find("[P003]"), std::string::npos)
      << f.status().ToString();
}

TEST(FactoryGateTest, BrokenPlanRejectedWithDiagCode) {
  Engine engine(Deterministic());
  auto in = engine.CreateStream("s", XNameSchema());
  auto out = engine.CreateStream("out", XNameSchema());
  ASSERT_TRUE(in.ok() && out.ok());

  sql::CompiledQuery q;
  auto scan = MakeScan("s", (*in)->schema());
  ASSERT_TRUE(scan.ok());
  auto proj = MakeProject(
      *scan, {Expr::Column(17, "ghost", DataType::kInt64)}, {"ghost"});
  ASSERT_TRUE(proj.ok());
  q.plan = *proj;
  q.output_schema = Schema({{"ghost", DataType::kInt64}});
  q.continuous = true;
  sql::ContinuousInput ci;
  ci.basket = "s";
  ci.bind_name = "s";
  ci.basket_schema = (*in)->schema();
  q.inputs.push_back(ci);

  auto f = Factory::Create("bad", std::move(q), {*in}, *out, {},
                           &engine.clock(), {});
  ASSERT_FALSE(f.ok());
  EXPECT_NE(f.status().message().find("[P002]"), std::string::npos)
      << f.status().ToString();
}

// --- pass 2: Engine::Analyze over live nets ---------------------------------

TEST(NetAnalysisTest, OrphanBasketFlagged) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket lonely (x int)").ok());
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kOrphanBasket))
      << report.ToString();
}

TEST(NetAnalysisTest, HealthyPipelineIsClean) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "sel", "select x from [select * from r] as s where s.x > 3");
  ASSERT_TRUE(q.ok());
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_FALSE(report.Has(analysis::DiagCode::kOrphanBasket))
      << report.ToString();
}

TEST(NetAnalysisTest, DeadTransitionAfterUpstreamRemoval) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q1 = engine.SubmitContinuousQuery(
      "stage1", "select x * 2 as x2 from [select * from r] as s");
  ASSERT_TRUE(q1.ok());
  auto q2 = engine.SubmitContinuousQuery(
      "stage2", "select x2 from [select * from stage1_out] as t");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(engine.Analyze().Has(analysis::DiagCode::kDeadTransition));

  // Remove the producer: stage2 still reads stage1_out, which nothing
  // feeds any more.
  ASSERT_TRUE(engine.RemoveContinuousQuery(*q1).ok());
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kDeadTransition))
      << report.ToString();
}

TEST(NetAnalysisTest, MultiReaderSharedBasketWarns) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  QueryOptions shared;
  shared.strategy = ProcessingStrategy::kSharedBaskets;
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "a", "select x from [select * from r] as s", shared)
                  .ok());
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "b", "select x from [select * from r] as s", shared)
                  .ok());
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kMultiReaderStealing))
      << report.ToString();
  EXPECT_EQ(report.num_errors(), 0u) << report.ToString();  // warning only
}

TEST(NetAnalysisTest, ChainedPredicateOverlapWarns) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  QueryOptions chained;
  chained.strategy = ProcessingStrategy::kChained;
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "c1", "select x from [select * from r where r.x > 10] "
                            "as s",
                      chained)
                  .ok());
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "c2", "select x from [select * from r where r.x > 5] "
                            "as s",
                      chained)
                  .ok());
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kChainPredicateOverlap))
      << report.ToString();
}

TEST(NetAnalysisTest, ChainedCoverageGapWarns) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  QueryOptions chained;
  chained.strategy = ProcessingStrategy::kChained;
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "lo", "select x from [select * from r where r.x < 5] "
                            "as s",
                      chained)
                  .ok());
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "hi", "select x from [select * from r where r.x > 10] "
                            "as s",
                      chained)
                  .ok());
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kChainCoverageGap))
      << report.ToString();
  EXPECT_FALSE(report.Has(analysis::DiagCode::kChainPredicateOverlap))
      << report.ToString();
}

TEST(NetAnalysisTest, DisjointCoveringChainIsClean) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  QueryOptions chained;
  chained.strategy = ProcessingStrategy::kChained;
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "lo", "select x from [select * from r where r.x < 5] "
                            "as s",
                      chained)
                  .ok());
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "hi", "select x from [select * from r where r.x >= 5] "
                            "as s",
                      chained)
                  .ok());
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_FALSE(report.Has(analysis::DiagCode::kChainPredicateOverlap))
      << report.ToString();
  EXPECT_FALSE(report.Has(analysis::DiagCode::kChainCoverageGap))
      << report.ToString();
}

// --- pass 2 on hand-built topologies (shapes the engine cannot produce) -----

TEST(NetTopologyTest, IllegalCycleDetected) {
  analysis::NetTopology net;
  net.places.push_back({"a", true, 1, false});
  net.places.push_back({"b", false, 1, false});
  net.transitions.push_back(
      {"fwd", analysis::NetNodeKind::kFactory, {"a"}, {"b"}});
  net.transitions.push_back(
      {"back", analysis::NetNodeKind::kFactory, {"b"}, {"a"}});
  analysis::AnalysisReport report = analysis::AnalyzeTopology(net);
  EXPECT_TRUE(report.Has(analysis::DiagCode::kIllegalCycle))
      << report.ToString();
}

TEST(NetTopologyTest, AcyclicPipelineHasNoCycleFinding) {
  analysis::NetTopology net;
  net.places.push_back({"a", true, 1, false});
  net.places.push_back({"b", false, 1, false});
  net.places.push_back({"c", false, 1, false});
  net.transitions.push_back(
      {"t1", analysis::NetNodeKind::kFactory, {"a"}, {"b"}});
  net.transitions.push_back(
      {"t2", analysis::NetNodeKind::kFactory, {"b"}, {"c"}});
  net.transitions.push_back(
      {"sink", analysis::NetNodeKind::kEmitter, {"c"}, {}});
  analysis::AnalysisReport report = analysis::AnalyzeTopology(net);
  EXPECT_FALSE(report.Has(analysis::DiagCode::kIllegalCycle))
      << report.ToString();
}

// --- the interval machinery behind N005/N006 --------------------------------

ExprPtr Col0() { return Expr::Column(0, "x", DataType::kInt64); }

TEST(IntervalSetTest, ModelsSimpleComparisons) {
  size_t col = 9;
  auto gt = analysis::IntervalSet::FromPredicate(
      *Expr::Binary(BinaryOp::kGt, Col0(), Expr::Int(10)), &col);
  ASSERT_TRUE(gt.has_value());
  EXPECT_EQ(col, 0u);
  EXPECT_FALSE(gt->Contains(10.0));
  EXPECT_TRUE(gt->Contains(10.5));

  auto le = analysis::IntervalSet::FromPredicate(
      *Expr::Binary(BinaryOp::kLe, Col0(), Expr::Int(10)), &col);
  ASSERT_TRUE(le.has_value());
  EXPECT_TRUE(le->Contains(10.0));
  EXPECT_FALSE(le->Contains(10.5));

  // gt and le partition the domain at 10.
  EXPECT_TRUE(gt->Intersect(*le).IsEmpty());
  EXPECT_TRUE(gt->Union(*le).IsAll());
}

TEST(IntervalSetTest, AndOrComplement) {
  size_t col = 0;
  // 5 < x and x < 10
  auto band = analysis::IntervalSet::FromPredicate(
      *Expr::And(Expr::Binary(BinaryOp::kGt, Col0(), Expr::Int(5)),
                 Expr::Binary(BinaryOp::kLt, Col0(), Expr::Int(10))),
      &col);
  ASSERT_TRUE(band.has_value());
  EXPECT_TRUE(band->Contains(7.0));
  EXPECT_FALSE(band->Contains(5.0));
  EXPECT_FALSE(band->Contains(12.0));
  analysis::IntervalSet outside = band->Complement();
  EXPECT_TRUE(outside.Contains(5.0));
  EXPECT_TRUE(outside.Contains(12.0));
  EXPECT_FALSE(outside.Contains(7.0));
  EXPECT_TRUE(band->Union(outside).IsAll());
}

// NOT and desugared BETWEEN (the parser rewrites `a between x and y` into
// `a >= x and a <= y`, and `not between` wraps that in kNot) must stay inside
// the interval fragment, including negative literal bounds (kNeg-wrapped).
TEST(IntervalSetTest, NotAndBetweenShapesStayInFragment) {
  struct Sample {
    double v;
    bool in;
  };
  struct Case {
    const char* label;
    ExprPtr pred;
    std::vector<Sample> samples;
  };
  auto ge = [](int64_t v) {
    return Expr::Binary(BinaryOp::kGe, Col0(), Expr::Int(v));
  };
  auto le = [](int64_t v) {
    return Expr::Binary(BinaryOp::kLe, Col0(), Expr::Int(v));
  };
  auto neg = [](int64_t v) {
    return Expr::Unary(UnaryOp::kNeg, Expr::Int(v));
  };
  const Case cases[] = {
      {"between",  // x between -5 and 5, desugared
       Expr::And(Expr::Binary(BinaryOp::kGe, Col0(), neg(5)), le(5)),
       {{-6.0, false}, {-5.0, true}, {0.0, true}, {5.0, true}, {5.5, false}}},
      {"not_between",
       Expr::Unary(UnaryOp::kNot,
                   Expr::And(Expr::Binary(BinaryOp::kGe, Col0(), neg(5)),
                             le(5))),
       {{-6.0, true}, {-5.0, false}, {0.0, false}, {5.0, false}, {6.0, true}}},
      {"not_gt",
       Expr::Unary(UnaryOp::kNot,
                   Expr::Binary(BinaryOp::kGt, Col0(), Expr::Int(3))),
       {{2.0, true}, {3.0, true}, {3.5, false}}},
      {"gt_negative_literal",
       Expr::Binary(BinaryOp::kGt, Col0(), neg(5)),
       {{-6.0, false}, {-5.0, false}, {-4.5, true}, {0.0, true}}},
      {"not_or",  // not (x < 0 or x > 10)  ==  [0, 10]
       Expr::Unary(
           UnaryOp::kNot,
           Expr::Binary(BinaryOp::kOr,
                        Expr::Binary(BinaryOp::kLt, Col0(), Expr::Int(0)),
                        Expr::Binary(BinaryOp::kGt, Col0(), Expr::Int(10)))),
       {{-0.5, false}, {0.0, true}, {10.0, true}, {10.5, false}}},
      {"double_not",
       Expr::Unary(UnaryOp::kNot,
                   Expr::Unary(UnaryOp::kNot,
                               Expr::Binary(BinaryOp::kGt, Col0(),
                                            Expr::Int(2)))),
       {{2.0, false}, {2.5, true}}},
  };
  for (const Case& c : cases) {
    size_t col = 0;
    auto set = analysis::IntervalSet::FromPredicate(*c.pred, &col);
    ASSERT_TRUE(set.has_value()) << c.label << ": fell out of the fragment";
    for (const Sample& s : c.samples) {
      EXPECT_EQ(set->Contains(s.v), s.in)
          << c.label << ": Contains(" << s.v << ")";
    }
  }
}

// The same shapes through the SQL chain lints: a BETWEEN band and its NOT
// complement are disjoint and covering, so a chained pair is clean.
TEST(NetAnalysisTest, ChainWithBetweenAndNotIsClean) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  QueryOptions chained;
  chained.strategy = ProcessingStrategy::kChained;
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "band",
                      "select x from [select * from r where r.x between -5 "
                      "and 5] as s",
                      chained)
                  .ok());
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "rest",
                      "select x from [select * from r where r.x not between "
                      "-5 and 5] as s",
                      chained)
                  .ok());
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_FALSE(report.Has(analysis::DiagCode::kChainPredicateOverlap))
      << report.ToString();
  EXPECT_FALSE(report.Has(analysis::DiagCode::kChainCoverageGap))
      << report.ToString();
}

TEST(IntervalSetTest, OutOfFragmentShapesAreRejected) {
  size_t col = 0;
  // String comparison: not a numeric interval.
  EXPECT_FALSE(analysis::IntervalSet::FromPredicate(
                   *Expr::Eq(Expr::Column(1, "name", DataType::kString),
                             Expr::Str("a")),
                   &col)
                   .has_value());
  // Two different columns cannot fold into one axis.
  EXPECT_FALSE(analysis::IntervalSet::FromPredicate(
                   *Expr::Binary(BinaryOp::kGt, Col0(),
                                 Expr::Column(2, "y", DataType::kInt64)),
                   &col)
                   .has_value());
}

// --- pass 3: the KeyFlow lattice --------------------------------------------

TEST(KeyFlowTest, RequireKeyIsIdempotentAndConflictPins) {
  analysis::KeyFlow f = analysis::KeyFlow::StreamScan(0, 3);
  EXPECT_EQ(f.req, analysis::KeyFlow::Req::kAny);
  EXPECT_TRUE(f.has_stream);
  ASSERT_EQ(f.origins.size(), 3u);
  EXPECT_TRUE(f.origins[1].has_value());
  EXPECT_EQ(f.origins[1]->column, 1u);

  EXPECT_TRUE(f.RequireKey(0, 2));
  EXPECT_EQ(f.req, analysis::KeyFlow::Req::kKeyed);
  EXPECT_TRUE(f.RequireKey(0, 2));  // same column: fine
  EXPECT_FALSE(f.RequireKey(0, 1));  // different column: lattice bottom
  EXPECT_TRUE(f.pinned());
}

TEST(KeyFlowTest, CombineConstraintsUnionsAndDetectsConflicts) {
  analysis::KeyFlow a = analysis::KeyFlow::StreamScan(0, 2);
  analysis::KeyFlow b = analysis::KeyFlow::StreamScan(1, 2);
  ASSERT_TRUE(a.RequireKey(0, 0));
  ASSERT_TRUE(b.RequireKey(1, 1));
  ASSERT_TRUE(a.CombineConstraints(b));
  EXPECT_EQ(a.required.size(), 2u);
  EXPECT_EQ(a.required.at(1), 1u);
  EXPECT_EQ(a.stream_inputs.size(), 2u);

  // Same input required at two different columns across branches: pinned.
  analysis::KeyFlow c = analysis::KeyFlow::StreamScan(0, 2);
  ASSERT_TRUE(c.RequireKey(0, 1));
  EXPECT_FALSE(a.CombineConstraints(c));
  EXPECT_TRUE(a.pinned());

  // Static relations and broadcast inputs union through combination.
  analysis::KeyFlow s = analysis::KeyFlow::StaticScan("dims", 2);
  EXPECT_FALSE(s.has_stream);
  analysis::KeyFlow d = analysis::KeyFlow::StreamScan(0, 2);
  ASSERT_TRUE(d.CombineConstraints(s));
  ASSERT_EQ(d.static_relations.size(), 1u);
  EXPECT_EQ(d.static_relations[0], "dims");
}

// --- pass 3: partition verdicts on registered queries -----------------------

// Registers `sql` against an engine where `ddl` ran first and returns the
// stored partition report (never null for a live query).
std::shared_ptr<const analysis::PartitionReport> Classify(
    Engine& engine, const std::string& name, const std::string& sql,
    const QueryOptions& opts = {}) {
  auto q = engine.SubmitContinuousQuery(name, sql, opts);
  if (!q.ok()) {
    ADD_FAILURE() << name << ": " << q.status().ToString();
    return nullptr;
  }
  auto info = engine.GetQuery(*q);
  if (!info.ok() || (*info)->partition == nullptr) {
    ADD_FAILURE() << name << ": no partition report attached";
    return nullptr;
  }
  return (*info)->partition;
}

TEST(PartitionAnalysisTest, FilterProjectPreservesDeclaredKey) {
  Engine engine(Deterministic());
  ASSERT_TRUE(
      engine.ExecuteSql("create basket r (id int, temp double) partition by id")
          .ok());
  auto rep = Classify(engine, "hot",
                      "select id, temp from [select * from r] as s "
                      "where s.temp > 30.0");
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->verdict, analysis::PartitionVerdict::kPartitionable);
  EXPECT_EQ(rep->merge, analysis::MergeKind::kNone);
  ASSERT_EQ(rep->inputs.size(), 1u);
  EXPECT_EQ(rep->inputs[0].kind, analysis::ShardKeyKind::kHash);
  EXPECT_EQ(rep->inputs[0].key_name, "id");
  EXPECT_TRUE(rep->inputs[0].declared);
  // The key survives the projection and the output stream inherits it.
  ASSERT_TRUE(rep->output_key_column.has_value());
  EXPECT_EQ(rep->output_key_name, "id");
  analysis::PartitionKeyMap keys = engine.DeclaredPartitionKeys();
  ASSERT_EQ(keys.count("hot_out"), 1u);
  EXPECT_EQ(keys["hot_out"], 0u);
}

TEST(PartitionAnalysisTest, GroupByOnDeclaredKeyNeedsNoMerge) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine
                  .ExecuteSql("create basket t (sym varchar, qty int) "
                              "partition by sym")
                  .ok());
  auto rep = Classify(engine, "per_sym",
                      "select sym, sum(qty) as total from "
                      "[select * from t] as x group by sym");
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->verdict, analysis::PartitionVerdict::kPartitionable);
  EXPECT_EQ(rep->merge, analysis::MergeKind::kNone);
  EXPECT_EQ(rep->output_key_name, "sym");
}

TEST(PartitionAnalysisTest, GroupByOffKeyPrescribesReshuffle) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine
                  .ExecuteSql("create basket t (sym varchar, qty int) "
                              "partition by sym")
                  .ok());
  auto rep = Classify(engine, "by_qty",
                      "select qty, count(*) as n from [select * from t] as x "
                      "group by qty");
  ASSERT_NE(rep, nullptr);
  // Still partitionable -- on the grouping column, not the declared key.
  EXPECT_EQ(rep->verdict, analysis::PartitionVerdict::kPartitionable);
  ASSERT_EQ(rep->inputs.size(), 1u);
  EXPECT_EQ(rep->inputs[0].key_name, "qty");
  EXPECT_FALSE(rep->inputs[0].declared);
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kReshuffleRequired))
      << report.ToString();
  EXPECT_EQ(report.num_errors(), 0u);  // pass 3 is advisory
}

TEST(PartitionAnalysisTest, CoPartitionedJoinKeysBothInputs) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine
                  .ExecuteSql("create basket bids (sym varchar, px double) "
                              "partition by sym")
                  .ok());
  ASSERT_TRUE(engine
                  .ExecuteSql("create basket asks (sym varchar, px double) "
                              "partition by sym")
                  .ok());
  auto rep = Classify(engine, "spread",
                      "select b.sym, b.px - a.px as gap from "
                      "[select * from bids] as b join [select * from asks] "
                      "as a on b.sym = a.sym");
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->verdict, analysis::PartitionVerdict::kPartitionable);
  ASSERT_EQ(rep->inputs.size(), 2u);
  for (const analysis::ShardKey& k : rep->inputs) {
    EXPECT_EQ(k.kind, analysis::ShardKeyKind::kHash);
    EXPECT_EQ(k.key_name, "sym");
    EXPECT_TRUE(k.declared);
  }
  EXPECT_EQ(rep->output_key_name, "sym");
}

TEST(PartitionAnalysisTest, StaticJoinSideBecomesBroadcast) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine
                  .ExecuteSql("create basket t (sym varchar, px double) "
                              "partition by sym")
                  .ok());
  ASSERT_TRUE(
      engine.ExecuteSql("create table dims (sym varchar, sector varchar)")
          .ok());
  auto rep = Classify(engine, "sectors",
                      "select t.sym, d.sector from [select * from t] as t "
                      "join dims as d on t.sym = d.sym");
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->verdict, analysis::PartitionVerdict::kNeedsBroadcast);
  ASSERT_EQ(rep->broadcast_relations.size(), 1u);
  EXPECT_EQ(rep->broadcast_relations[0], "dims");
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kBroadcastJoinInput))
      << report.ToString();
}

TEST(PartitionAnalysisTest, ScalarAvgDecomposesIntoSumCountPartials) {
  Engine engine(Deterministic());
  ASSERT_TRUE(
      engine.ExecuteSql("create basket r (id int, temp double) partition by id")
          .ok());
  auto rep = Classify(engine, "mean",
                      "select avg(temp) as mean from [select * from r] as s");
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->verdict, analysis::PartitionVerdict::kNeedsFinalMerge);
  EXPECT_EQ(rep->merge, analysis::MergeKind::kReaggregate);
  ASSERT_NE(rep->partial_plan, nullptr);
  ASSERT_NE(rep->merge_plan, nullptr);
  // avg decomposes: the per-shard partial carries a sum and a count.
  EXPECT_EQ(rep->partial_plan->output_schema().num_fields(), 2u);
  // The merge plan reconstructs the query's output schema exactly.
  EXPECT_EQ(rep->merge_plan->output_schema().num_fields(), 1u);
  EXPECT_EQ(rep->merge_plan->output_schema().field(0).name, "mean");
  EXPECT_EQ(rep->merge_plan->output_schema().field(0).type,
            DataType::kDouble);
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kScalarAggMerge))
      << report.ToString();
}

TEST(PartitionAnalysisTest, OrderedEmitNeedsOrderedMerge) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine
                  .ExecuteSql("create basket s (player varchar, pts double) "
                              "partition by player")
                  .ok());
  auto rep = Classify(engine, "ranked",
                      "select player, pts from [select * from s] as x "
                      "order by pts desc limit 10");
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->verdict, analysis::PartitionVerdict::kNeedsFinalMerge);
  EXPECT_EQ(rep->merge, analysis::MergeKind::kOrderedMerge);
  ASSERT_NE(rep->partial_plan, nullptr);
  ASSERT_NE(rep->merge_plan, nullptr);
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kOrderedMergeRequired))
      << report.ToString();
}

TEST(PartitionAnalysisTest, PinnedShapes) {
  Engine engine(Deterministic());
  ASSERT_TRUE(
      engine.ExecuteSql("create basket r (x int, y double) partition by x")
          .ok());
  // Count-based window: firing depends on global arrival order.
  auto wnd = Classify(engine, "wnd",
                      "select sum(x) as s from [select * from r] as t "
                      "window size 10");
  ASSERT_NE(wnd, nullptr);
  EXPECT_EQ(wnd->verdict, analysis::PartitionVerdict::kPinned);
  EXPECT_NE(wnd->pinned_reason.find("arrival order"), std::string::npos)
      << wnd->pinned_reason;

  // LIMIT without ORDER BY: "first n seen" is arrival-order dependent.
  Engine e2(Deterministic());
  ASSERT_TRUE(
      e2.ExecuteSql("create basket r (x int, y double) partition by x").ok());
  auto lim = Classify(e2, "lim",
                      "select x from [select * from r] as t limit 5");
  ASSERT_NE(lim, nullptr);
  EXPECT_EQ(lim->verdict, analysis::PartitionVerdict::kPinned);

  // DISTINCT over computed values: no input column witnesses the key.
  Engine e3(Deterministic());
  ASSERT_TRUE(
      e3.ExecuteSql("create basket r (x int, y double) partition by x").ok());
  auto dis = Classify(e3, "dis",
                      "select distinct x / 2 as bucket from "
                      "[select * from r] as t");
  ASSERT_NE(dis, nullptr);
  EXPECT_EQ(dis->verdict, analysis::PartitionVerdict::kPinned);
  EXPECT_NE(dis->pinned_reason.find("DISTINCT"), std::string::npos);
}

TEST(PartitionAnalysisTest, DistinctOverPlainColumnRequiresItAsKey) {
  Engine engine(Deterministic());
  ASSERT_TRUE(
      engine.ExecuteSql("create basket r (x int, kind varchar) partition by x")
          .ok());
  auto rep = Classify(engine, "kinds",
                      "select distinct kind from [select * from r] as t");
  ASSERT_NE(rep, nullptr);
  // Splitting on `kind` co-locates duplicates, so DISTINCT decomposes.
  EXPECT_EQ(rep->verdict, analysis::PartitionVerdict::kPartitionable);
  ASSERT_EQ(rep->inputs.size(), 1u);
  EXPECT_EQ(rep->inputs[0].key_name, "kind");
  EXPECT_FALSE(rep->inputs[0].declared);
}

TEST(PartitionAnalysisTest, TimeWindowAggregateMergesPerWindow) {
  Engine engine(Deterministic());
  ASSERT_TRUE(
      engine.ExecuteSql("create basket r (x int) partition by x").ok());
  auto rep = Classify(engine, "win",
                      "select sum(x) as s from [select * from r] as t "
                      "window range 10 seconds");
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->verdict, analysis::PartitionVerdict::kNeedsFinalMerge);
  EXPECT_TRUE(rep->merge_per_window);
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kWindowMergeRequired))
      << report.ToString();
}

TEST(PartitionAnalysisTest, OneTimeQueryIsPinned) {
  auto scan = MakeScan("t", XNameSchema());
  ASSERT_TRUE(scan.ok());
  sql::CompiledQuery q;
  q.plan = *scan;
  q.output_schema = XNameSchema();
  q.continuous = false;
  analysis::AnalysisReport diags;
  auto rep = analysis::AnalyzePartitioning(q, {}, &diags);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->verdict, analysis::PartitionVerdict::kPinned);
  EXPECT_NE(rep->pinned_reason.find("one-time"), std::string::npos);
  EXPECT_EQ(diags.num_warnings(), 0u);  // not worth an A007 for one-shots
}

// --- pass 3 wiring: DDL, inheritance, live overrides, metrics ---------------

TEST(PartitionDdlTest, PartitionByParsesValidatesAndRoundTrips) {
  Engine engine(Deterministic());
  ASSERT_TRUE(
      engine.ExecuteSql("create basket r (id int, temp double) partition by id")
          .ok());
  analysis::PartitionKeyMap keys = engine.DeclaredPartitionKeys();
  ASSERT_EQ(keys.count("r"), 1u);
  EXPECT_EQ(keys["r"], 0u);

  // Unknown column: rejected, and the stream must not be left behind.
  auto bad =
      engine.ExecuteSql("create basket b (x int) partition by missing");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("missing"), std::string::npos);
  EXPECT_TRUE(engine.ExecuteSql("create basket b (x int)").ok());

  // Tables are static: no partition clause.
  EXPECT_FALSE(
      engine.ExecuteSql("create table t (x int) partition by x").ok());

  // The catalog dump round-trips the clause.
  std::string dump = engine.DumpCatalogSql();
  EXPECT_NE(dump.find("partition by id"), std::string::npos) << dump;
  Engine replay(Deterministic());
  ASSERT_TRUE(replay.ExecuteScript(dump).ok()) << dump;
  EXPECT_EQ(replay.DeclaredPartitionKeys().count("r"), 1u);
}

TEST(PartitionAnalysisTest, MultiReaderOverridePinsEffectiveVerdict) {
  Engine engine(Deterministic());
  ASSERT_TRUE(
      engine.ExecuteSql("create basket r (x int) partition by x").ok());
  QueryOptions shared;
  shared.strategy = ProcessingStrategy::kSharedBaskets;
  auto a = engine.SubmitContinuousQuery(
      "a", "select x from [select * from r] as s", shared);
  ASSERT_TRUE(a.ok());
  auto ia = engine.GetQuery(*a);
  ASSERT_TRUE(ia.ok());
  // Single reader: static and effective verdicts agree.
  EXPECT_EQ(engine.EffectivePartitionVerdict(**ia),
            analysis::PartitionVerdict::kPartitionable);

  auto b = engine.SubmitContinuousQuery(
      "b", "select x from [select * from r] as s", shared);
  ASSERT_TRUE(b.ok());
  // Now both queries share the basket (the N004 shape): statically still
  // partitionable, effectively pinned.
  ia = engine.GetQuery(*a);
  ASSERT_TRUE(ia.ok());
  EXPECT_EQ((*ia)->partition->verdict,
            analysis::PartitionVerdict::kPartitionable);
  std::string reason;
  EXPECT_EQ(engine.EffectivePartitionVerdict(**ia, &reason),
            analysis::PartitionVerdict::kPinned);
  EXPECT_NE(reason.find("multiple readers"), std::string::npos) << reason;
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kPinnedQuery))
      << report.ToString();
}

TEST(PartitionAnalysisTest, GaugesCountPartitionableQueries) {
  Engine engine(Deterministic());
  ASSERT_TRUE(
      engine.ExecuteSql("create basket r (x int) partition by x").ok());
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "p", "select x from [select * from r] as s")
                  .ok());
  ASSERT_TRUE(
      engine.ExecuteSql("create basket r2 (x int) partition by x").ok());
  ASSERT_TRUE(engine
                  .SubmitContinuousQuery(
                      "pin", "select x from [select * from r2] as s limit 3")
                  .ok());
  std::string text = engine.MetricsText();
  EXPECT_NE(text.find("datacell_partitionable_queries 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("datacell_shardable_queries 1"), std::string::npos)
      << text;
}

// --- pass 3 soundness: the split-merge oracle --------------------------------

// Builds a basket-shaped table (user columns + ts) for input `i` of `q`.
TablePtr OracleInput(const sql::CompiledQuery& q, size_t i,
                     const std::vector<Row>& rows) {
  auto t = std::make_shared<Table>("oracle_in", q.inputs[i].basket_schema);
  for (const Row& r : rows) {
    Status s = t->AppendRow(r);
    if (!s.ok()) ADD_FAILURE() << s.ToString();
  }
  return t;
}

TEST(SplitMergeOracleTest, PartitionableFilterIsEquivalent) {
  Engine engine(Deterministic());
  ASSERT_TRUE(
      engine.ExecuteSql("create basket r (id int, temp double) partition by id")
          .ok());
  auto qid = engine.SubmitContinuousQuery(
      "hot", "select id, temp from [select * from r] as s "
             "where s.temp > 25.0");
  ASSERT_TRUE(qid.ok());
  auto info = engine.GetQuery(*qid);
  ASSERT_TRUE(info.ok());
  const sql::CompiledQuery& cq = (*info)->factory->query();
  std::vector<Row> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({Value::Int64(i % 7), Value::Double(20.0 + i % 13),
                    Value::TimestampVal(i)});
  }
  auto res = analysis::CheckSplitMergeEquivalence(
      cq, *(*info)->partition, {OracleInput(cq, 0, rows)}, {}, 3);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->equivalent) << res->detail;
}

TEST(SplitMergeOracleTest, KeyedGroupByIsEquivalent) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine
                  .ExecuteSql("create basket t (sym varchar, qty int) "
                              "partition by sym")
                  .ok());
  auto qid = engine.SubmitContinuousQuery(
      "per_sym", "select sym, sum(qty) as total, count(*) as n from "
                 "[select * from t] as x group by sym");
  ASSERT_TRUE(qid.ok());
  auto info = engine.GetQuery(*qid);
  ASSERT_TRUE(info.ok());
  const sql::CompiledQuery& cq = (*info)->factory->query();
  const char* syms[] = {"AAA", "BBB", "CCC", "DDD"};
  std::vector<Row> rows;
  for (int i = 0; i < 32; ++i) {
    rows.push_back({Value::String(syms[i % 4]), Value::Int64(i),
                    Value::TimestampVal(i)});
  }
  auto res = analysis::CheckSplitMergeEquivalence(
      cq, *(*info)->partition, {OracleInput(cq, 0, rows)}, {});
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->equivalent) << res->detail;
}

TEST(SplitMergeOracleTest, AvgReaggregationIsEquivalent) {
  Engine engine(Deterministic());
  ASSERT_TRUE(
      engine.ExecuteSql("create basket r (id int, temp double) partition by id")
          .ok());
  auto qid = engine.SubmitContinuousQuery(
      "mean", "select avg(temp) as mean, count(*) as n, min(temp) as lo, "
              "max(temp) as hi from [select * from r] as s");
  ASSERT_TRUE(qid.ok());
  auto info = engine.GetQuery(*qid);
  ASSERT_TRUE(info.ok());
  const sql::CompiledQuery& cq = (*info)->factory->query();
  std::vector<Row> rows;
  for (int i = 0; i < 25; ++i) {
    rows.push_back({Value::Int64(i), Value::Double(0.1 * i - 1.0),
                    Value::TimestampVal(i)});
  }
  auto res = analysis::CheckSplitMergeEquivalence(
      cq, *(*info)->partition, {OracleInput(cq, 0, rows)}, {}, 4);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->equivalent) << res->detail;
}

TEST(SplitMergeOracleTest, CoPartitionedJoinWithForeignGroupBy) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine
                  .ExecuteSql("create basket o (sym varchar, qty int) "
                              "partition by sym")
                  .ok());
  ASSERT_TRUE(engine
                  .ExecuteSql("create basket q (sym varchar, bid double) "
                              "partition by sym")
                  .ok());
  auto qid = engine.SubmitContinuousQuery(
      "depth", "select q.bid, sum(o.qty) as vol from [select * from o] as o "
               "join [select * from q] as q on o.sym = q.sym group by q.bid");
  ASSERT_TRUE(qid.ok());
  auto info = engine.GetQuery(*qid);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ((*info)->partition->verdict,
            analysis::PartitionVerdict::kNeedsFinalMerge);
  const sql::CompiledQuery& cq = (*info)->factory->query();
  const char* syms[] = {"AAA", "BBB", "CCC"};
  std::vector<Row> orders, quotes;
  for (int i = 0; i < 18; ++i) {
    orders.push_back({Value::String(syms[i % 3]), Value::Int64(1 + i % 5),
                      Value::TimestampVal(i)});
  }
  for (int i = 0; i < 9; ++i) {
    quotes.push_back({Value::String(syms[i % 3]), Value::Double(10.0 + i % 2),
                      Value::TimestampVal(i)});
  }
  auto res = analysis::CheckSplitMergeEquivalence(
      cq, *(*info)->partition,
      {OracleInput(cq, 0, orders), OracleInput(cq, 1, quotes)}, {});
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->equivalent) << res->detail;
}

TEST(SplitMergeOracleTest, BroadcastJoinIsEquivalent) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine
                  .ExecuteSql("create basket t (sym varchar, px double) "
                              "partition by sym")
                  .ok());
  ASSERT_TRUE(
      engine.ExecuteSql("create table dims (sym varchar, sector varchar)")
          .ok());
  ASSERT_TRUE(engine
                  .ExecuteSql("insert into dims values ('AAA', 'tech'), "
                              "('BBB', 'energy')")
                  .ok());
  auto qid = engine.SubmitContinuousQuery(
      "sectors", "select t.sym, d.sector from [select * from t] as t "
                 "join dims as d on t.sym = d.sym");
  ASSERT_TRUE(qid.ok());
  auto info = engine.GetQuery(*qid);
  ASSERT_TRUE(info.ok());
  const sql::CompiledQuery& cq = (*info)->factory->query();
  const char* syms[] = {"AAA", "BBB", "ZZZ"};  // ZZZ has no dim row
  std::vector<Row> rows;
  for (int i = 0; i < 15; ++i) {
    rows.push_back({Value::String(syms[i % 3]), Value::Double(1.0 * i),
                    Value::TimestampVal(i)});
  }
  auto dims = std::make_shared<Table>(
      "dims", Schema({{"sym", DataType::kString},
                      {"sector", DataType::kString}}));
  ASSERT_TRUE(
      dims->AppendRow({Value::String("AAA"), Value::String("tech")}).ok());
  ASSERT_TRUE(
      dims->AppendRow({Value::String("BBB"), Value::String("energy")}).ok());
  PlanBindings statics;
  statics["dims"] = dims;
  auto res = analysis::CheckSplitMergeEquivalence(
      cq, *(*info)->partition, {OracleInput(cq, 0, rows)}, statics);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->equivalent) << res->detail;
}

TEST(SplitMergeOracleTest, OrderedMergeIsEquivalent) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine
                  .ExecuteSql("create basket s (player varchar, pts double) "
                              "partition by player")
                  .ok());
  auto qid = engine.SubmitContinuousQuery(
      "ranked", "select player, pts from [select * from s] as x "
                "order by pts desc limit 8");
  ASSERT_TRUE(qid.ok());
  auto info = engine.GetQuery(*qid);
  ASSERT_TRUE(info.ok());
  const sql::CompiledQuery& cq = (*info)->factory->query();
  std::vector<Row> rows;
  for (int i = 0; i < 30; ++i) {
    rows.push_back({Value::String("p" + std::to_string(i)),
                    Value::Double(i % 11 * 1.5), Value::TimestampVal(i)});
  }
  auto res = analysis::CheckSplitMergeEquivalence(
      cq, *(*info)->partition, {OracleInput(cq, 0, rows)}, {}, 3);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->equivalent) << res->detail;
}

// The oracle must also be able to FAIL: feed it a deliberately unsound
// recipe (a keyed group-by executed over an arbitrary round-robin split with
// no merge) and it has to notice the duplicated groups.
TEST(SplitMergeOracleTest, DetectsUnsoundRecipe) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine
                  .ExecuteSql("create basket t (sym varchar, qty int) "
                              "partition by sym")
                  .ok());
  auto qid = engine.SubmitContinuousQuery(
      "per_sym", "select sym, sum(qty) as total from [select * from t] as x "
                 "group by sym");
  ASSERT_TRUE(qid.ok());
  auto info = engine.GetQuery(*qid);
  ASSERT_TRUE(info.ok());
  const sql::CompiledQuery& cq = (*info)->factory->query();
  analysis::PartitionReport bogus = *(*info)->partition;
  ASSERT_EQ(bogus.inputs.size(), 1u);
  bogus.inputs[0].kind = analysis::ShardKeyKind::kAnySplit;  // break co-location
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({Value::String("AAA"), Value::Int64(1),
                    Value::TimestampVal(i)});
  }
  auto res = analysis::CheckSplitMergeEquivalence(
      cq, bogus, {OracleInput(cq, 0, rows)}, {});
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_FALSE(res->equivalent);
  EXPECT_FALSE(res->detail.empty());
}

// --- pass 4: the state-bound lattice ----------------------------------------

TEST(StateBoundLatticeTest, SumJoinsKindsAndAddsBytes) {
  using analysis::StateBound;
  using analysis::StateBoundKind;
  StateBound c = StateBound::Constant(8, "counter");
  StateBound w = StateBound::Window(3200, false, "100 rows x 32 B");
  StateBound s = StateBound::Sum(c, w);
  EXPECT_EQ(s.kind, StateBoundKind::kWindowBounded);
  EXPECT_TRUE(s.numeric());
  EXPECT_EQ(s.bytes, 3208);

  StateBound k = StateBound::Key(1000, false, "hinted keys");
  EXPECT_EQ(StateBound::Sum(w, k).kind, StateBoundKind::kKeyBounded);
  EXPECT_EQ(StateBound::Sum(w, k).bytes, 4200);

  StateBound u = StateBound::Unbounded("join history");
  StateBound su = StateBound::Sum(k, u);
  EXPECT_EQ(su.kind, StateBoundKind::kUnbounded);
  EXPECT_FALSE(su.numeric());
}

TEST(StateBoundLatticeTest, SymbolicTaintsAndScalesDoNot) {
  using analysis::StateBound;
  using analysis::StateBoundKind;
  StateBound t = StateBound::Window(0, true, "time window");
  StateBound w = StateBound::Window(3200, false, "count window");
  StateBound s = StateBound::Sum(t, w);
  EXPECT_EQ(s.kind, StateBoundKind::kWindowBounded);
  EXPECT_TRUE(s.symbolic);
  EXPECT_FALSE(s.numeric());

  StateBound scaled = w.Scaled(4);
  EXPECT_EQ(scaled.bytes, 12800);
  EXPECT_TRUE(scaled.numeric());
  // Scaling a symbolic bound keeps it symbolic rather than inventing bytes.
  EXPECT_FALSE(t.Scaled(4).numeric());

  EXPECT_NE(w.ToString().find("window-bounded (3200 B)"), std::string::npos)
      << w.ToString();
  EXPECT_NE(StateBound::Unbounded("x").ToString().find("unbounded"),
            std::string::npos);
}

// --- pass 4: bound classes per query shape ----------------------------------

// Registers `sql` after `ddl` and checks the attached StateReport's class
// plus the S-code Engine::Analyze() re-derives.
struct BoundCase {
  const char* label;
  const char* ddl;
  const char* sql;
  analysis::StateBoundKind kind;
  bool numeric;
  // Expected S-code in Analyze() output; kStateBoundNote always fires, so
  // cases without a specific code assert just that.
  analysis::DiagCode code;
};

class StateBoundClassTest : public ::testing::TestWithParam<BoundCase> {};

TEST_P(StateBoundClassTest, BoundClassAndDiagnostics) {
  const BoundCase& c = GetParam();
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteScript(c.ddl).ok()) << c.ddl;
  auto q = engine.SubmitContinuousQuery(c.label, c.sql);
  ASSERT_TRUE(q.ok()) << c.label << ": " << q.status().ToString();
  auto info = engine.GetQuery(*q);
  ASSERT_TRUE(info.ok());
  ASSERT_NE((*info)->state, nullptr) << c.label;
  const analysis::StateReport& state = *(*info)->state;
  EXPECT_EQ(state.total.kind, c.kind)
      << c.label << ": " << state.total.ToString();
  EXPECT_EQ(state.total.numeric(), c.numeric)
      << c.label << ": " << state.total.ToString();
  if (c.numeric) EXPECT_GT(state.total.bytes, 0) << c.label;
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(c.code)) << c.label << ":\n" << report.ToString();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kStateBoundNote))
      << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    BoundClasses, StateBoundClassTest,
    ::testing::Values(
        BoundCase{"scalar_agg",
                  "create basket s (x int, y double)",
                  "select avg(y) as m, count(*) as n from "
                  "[select * from s] as t",
                  analysis::StateBoundKind::kConstant, true,
                  analysis::DiagCode::kStateBoundNote},
        BoundCase{"limit_counter",
                  "create basket s (x int, y double)",
                  "select x from [select * from s] as t limit 5",
                  analysis::StateBoundKind::kConstant, true,
                  analysis::DiagCode::kStateBoundNote},
        BoundCase{"count_window",
                  "create basket s (x int, y double)",
                  "select sum(y) as burst from [select * from s] as t "
                  "window size 100",
                  analysis::StateBoundKind::kWindowBounded, true,
                  analysis::DiagCode::kWindowStateBound},
        BoundCase{"sliding_count_window",
                  "create basket s (x int, y double)",
                  "select sum(y) as burst from [select * from s] as t "
                  "window size 10 slide 3",
                  analysis::StateBoundKind::kWindowBounded, true,
                  analysis::DiagCode::kWindowStateBound},
        BoundCase{"time_window_symbolic",
                  "create basket s (x int, y double)",
                  "select sum(y) as burst from [select * from s] as t "
                  "window range 10 seconds",
                  analysis::StateBoundKind::kWindowBounded, false,
                  analysis::DiagCode::kWindowStateBound},
        BoundCase{"hinted_group_by",
                  "create basket s (sym varchar, qty int) "
                  "with (cardinality(sym) = 64)",
                  "select sym, sum(qty) as total from "
                  "[select * from s] as t group by sym",
                  analysis::StateBoundKind::kKeyBounded, true,
                  analysis::DiagCode::kCardinalityHintUsed},
        BoundCase{"unhinted_group_by",
                  "create basket s (sym varchar, qty int)",
                  "select sym, sum(qty) as total from "
                  "[select * from s] as t group by sym",
                  analysis::StateBoundKind::kUnbounded, false,
                  analysis::DiagCode::kUnboundedKeyState},
        BoundCase{"unhinted_distinct",
                  "create basket s (sym varchar, qty int)",
                  "select distinct sym from [select * from s] as t",
                  analysis::StateBoundKind::kUnbounded, false,
                  analysis::DiagCode::kUnboundedKeyState},
        BoundCase{"hinted_distinct",
                  "create basket s (sym varchar, qty int) "
                  "with (cardinality(sym) = 8)",
                  "select distinct sym from [select * from s] as t",
                  analysis::StateBoundKind::kKeyBounded, true,
                  analysis::DiagCode::kCardinalityHintUsed},
        BoundCase{"stream_stream_join",
                  "create basket a (k int, v double);"
                  "create basket b (k int, w double)",
                  "select x.v, y.w from [select * from a] as x join "
                  "[select * from b] as y on x.k = y.k",
                  analysis::StateBoundKind::kUnbounded, false,
                  analysis::DiagCode::kUnboundedJoinState},
        BoundCase{"static_join_build",
                  "create basket s (k int, v double);"
                  "create table dims (k int, label varchar);"
                  "insert into dims values (1, 'a'), (2, 'b')",
                  "select t.v, d.label from [select * from s] as t "
                  "join dims as d on t.k = d.k",
                  analysis::StateBoundKind::kKeyBounded, true,
                  analysis::DiagCode::kStateBoundNote}),
    [](const auto& info) { return std::string(info.param.label); });

// Windowed group-by on hinted keys stays bounded by the window even without
// a hint (per-window keys <= per-window rows).
TEST(StateAnalyzerTest, WindowedGroupByIsWindowBounded) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket s (sym varchar, qty int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "wg", "select sym, sum(qty) as total from [select * from s] as t "
            "group by sym window size 50");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto info = engine.GetQuery(*q);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->state->total.kind,
            analysis::StateBoundKind::kWindowBounded)
      << (*info)->state->total.ToString();
}

TEST(StateAnalyzerTest, ShardCopiesMultiplyNumericBounds) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int, y double)").ok());
  auto q = engine.SubmitContinuousQuery(
      "w", "select sum(y) as b from [select * from s] as t window size 100");
  ASSERT_TRUE(q.ok());
  auto info = engine.GetQuery(*q);
  ASSERT_TRUE(info.ok());
  const sql::CompiledQuery& cq = (*info)->factory->query();

  analysis::StateAnalyzerOptions one;
  analysis::AnalysisReport r1;
  auto b1 = analysis::AnalyzeStateBounds(cq, {}, one, &r1);
  ASSERT_TRUE(b1.ok());

  analysis::StateAnalyzerOptions four = one;
  four.shard_copies = 4;
  analysis::AnalysisReport r4;
  auto b4 = analysis::AnalyzeStateBounds(cq, {}, four, &r4);
  ASSERT_TRUE(b4.ok());
  EXPECT_EQ(b4->total.bytes, 4 * b1->total.bytes);
  EXPECT_EQ(b4->shard_copies, 4u);
  EXPECT_TRUE(r4.Has(analysis::DiagCode::kShardStateMultiplied))
      << r4.ToString();
  EXPECT_FALSE(r1.Has(analysis::DiagCode::kShardStateMultiplied));
}

TEST(StateAnalyzerTest, SharedBasketRetentionIsS006) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int)").ok());
  QueryOptions shared;
  shared.strategy = ProcessingStrategy::kSharedBaskets;
  auto q1 = engine.SubmitContinuousQuery(
      "r1", "select x from [select * from s] as t where t.x > 1", shared);
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  auto q2 = engine.SubmitContinuousQuery(
      "r2", "select x from [select * from s] as t where t.x < 0", shared);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  analysis::AnalysisReport report = engine.Analyze();
  EXPECT_TRUE(report.Has(analysis::DiagCode::kBasketRetention))
      << report.ToString();
}

// --- pass 4: the admission gate ---------------------------------------------

TEST(StateAdmissionTest, UnboundedJoinRejectedWithNoStateLeft) {
  EngineOptions opts = Deterministic();
  opts.max_query_state_bytes = 1 << 20;
  Engine engine(opts);
  ASSERT_TRUE(engine
                  .ExecuteScript("create basket a (k int, v double);"
                                 "create basket b (k int, w double);")
                  .ok());
  auto q = engine.SubmitContinuousQuery(
      "joined", "select x.v, y.w from [select * from a] as x join "
                "[select * from b] as y on x.k = y.k");
  ASSERT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsTypeError()) << q.status().ToString();
  for (const char* want : {"[S007]", "state-bound-exceeded", "unbounded",
                           "max_query_state_bytes", "at 1:"}) {
    EXPECT_NE(q.status().message().find(want), std::string::npos)
        << "expected '" << want << "' in\n" << q.status().message();
  }
  // No state left behind: the same name registers a bounded query cleanly
  // (a leaked 'joined_out' stream would collide here).
  auto ok = engine.SubmitContinuousQuery(
      "joined", "select avg(v) as m from [select * from a] as x");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(StateAdmissionTest, WarnPolicyAdmitsUnboundedQueries) {
  EngineOptions opts = Deterministic();
  opts.max_query_state_bytes = 1 << 20;
  opts.state_bound_policy = StateBoundPolicy::kWarn;
  Engine engine(opts);
  ASSERT_TRUE(engine
                  .ExecuteScript("create basket a (k int, v double);"
                                 "create basket b (k int, w double);")
                  .ok());
  auto q = engine.SubmitContinuousQuery(
      "joined", "select x.v, y.w from [select * from a] as x join "
                "[select * from b] as y on x.k = y.k");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
}

TEST(StateAdmissionTest, ByteCapRejectsOversizedWindow) {
  EngineOptions opts = Deterministic();
  opts.max_query_state_bytes = 256;  // a 1000-row window cannot fit
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int, y double)").ok());
  auto q = engine.SubmitContinuousQuery(
      "big", "select sum(y) as b from [select * from s] as t "
             "window size 1000");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("max_query_state_bytes"),
            std::string::npos)
      << q.status().message();
  // A window that fits the cap still registers.
  auto ok = engine.SubmitContinuousQuery(
      "small", "select sum(y) as b from [select * from s] as t "
               "window size 2");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(StateAdmissionTest, EngineCapSumsLiveQueries) {
  EngineOptions opts = Deterministic();
  // Each 100-row window bounds to ~4.8 KB; one fits, the second busts it.
  opts.max_engine_state_bytes = 8192;
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int, y double)").ok());
  auto q1 = engine.SubmitContinuousQuery(
      "w1", "select sum(y) as b from [select * from s] as t window size 100");
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  auto q2 = engine.SubmitContinuousQuery(
      "w2", "select sum(y) as b from [select * from s] as t window size 100");
  ASSERT_FALSE(q2.ok());
  for (const char* want : {"[S008]", "max_engine_state_bytes"}) {
    EXPECT_NE(q2.status().message().find(want), std::string::npos)
        << "expected '" << want << "' in\n" << q2.status().message();
  }
}

// --- cardinality hint DDL ---------------------------------------------------

TEST(CardinalityHintTest, ParsesRegistersAndRoundTrips) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine
                  .ExecuteSql("create basket trades (sym varchar, qty int) "
                              "partition by sym "
                              "with (cardinality(sym) = 100)")
                  .ok());
  analysis::CardinalityMap hints = engine.DeclaredCardinalities();
  ASSERT_EQ(hints.count("trades"), 1u);
  EXPECT_EQ(hints["trades"][0], 100);

  std::string dump = engine.DumpCatalogSql();
  EXPECT_NE(dump.find("with (cardinality(sym) = 100)"), std::string::npos)
      << dump;
  // The dump re-executes: the hint survives a catalog round trip.
  Engine clone(Deterministic());
  ASSERT_TRUE(clone.ExecuteScript(dump).ok()) << dump;
  EXPECT_EQ(clone.DeclaredCardinalities()["trades"][0], 100);
}

TEST(CardinalityHintTest, MultipleHintsAndLateDeclaration) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine
                  .ExecuteSql("create basket t (a varchar, b int, c int) "
                              "with (cardinality(a) = 10, "
                              "cardinality(b) = 20)")
                  .ok());
  analysis::CardinalityMap hints = engine.DeclaredCardinalities();
  EXPECT_EQ(hints["t"][0], 10);
  EXPECT_EQ(hints["t"][1], 20);
  // The C++ surface can add hints after creation.
  ASSERT_TRUE(engine.SetStreamCardinality("t", "c", 30).ok());
  EXPECT_EQ(engine.DeclaredCardinalities()["t"][2], 30);
  EXPECT_FALSE(engine.SetStreamCardinality("t", "missing", 5).ok());
  EXPECT_FALSE(engine.SetStreamCardinality("t", "c", 0).ok());
}

TEST(CardinalityHintTest, BadHintLeavesNoStreamBehind) {
  Engine engine(Deterministic());
  auto bad = engine.ExecuteSql(
      "create basket t (a varchar) with (cardinality(missing) = 10)");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("missing"), std::string::npos);
  // The failed create left nothing: the name is free.
  EXPECT_TRUE(engine
                  .ExecuteSql("create basket t (a varchar) "
                              "with (cardinality(a) = 10)")
                  .ok());
}

TEST(CardinalityHintTest, RejectedOnTablesAndNonPositive) {
  Engine engine(Deterministic());
  EXPECT_FALSE(
      engine.ExecuteSql("create table t (a int) with (cardinality(a) = 10)")
          .ok());
  EXPECT_FALSE(
      engine.ExecuteSql("create basket b (a int) with (cardinality(a) = 0)")
          .ok());
  EXPECT_FALSE(
      engine.ExecuteSql("create basket b (a int) with (cardinality(a) = -3)")
          .ok());
}

// --- N001 exemption for sharded-union partial baskets -----------------------

TEST(NetAnalysisTest, PartialsUnionBasketNotOrphan) {
  // The sharded executor's frontend union baskets (name__partials) are fed
  // by cross-engine forwarding the per-shard topology cannot see; they must
  // not trip the orphan lint the way a plain unfed basket does.
  analysis::NetTopology net;
  analysis::NetPlace partials;
  partials.name = "q1__partials";
  partials.external_feed = true;  // fed by cross-shard forwarding
  partials.num_readers = 0;
  net.places.push_back(partials);
  analysis::NetPlace lonely;
  lonely.name = "lonely";
  lonely.external_feed = true;  // fed but unread: the real orphan
  lonely.num_readers = 0;
  net.places.push_back(lonely);
  analysis::AnalysisReport report;
  analysis::AnalyzeTopology(net, &report);
  bool partials_flagged = false;
  bool lonely_flagged = false;
  for (const analysis::Diagnostic& d : report.diagnostics()) {
    if (d.code != analysis::DiagCode::kOrphanBasket) continue;
    if (d.object.find("__partials") != std::string::npos ||
        d.message.find("__partials") != std::string::npos) {
      partials_flagged = true;
    }
    if (d.object.find("lonely") != std::string::npos ||
        d.message.find("lonely") != std::string::npos) {
      lonely_flagged = true;
    }
  }
  EXPECT_FALSE(partials_flagged) << report.ToString();
  EXPECT_TRUE(lonely_flagged) << report.ToString();
}

// --- the dynamic state-bound oracle -----------------------------------------

TEST(StateOracleTest, ScalarAggregateStaysUnderConstantBound) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int, y double)").ok());
  auto q = engine.SubmitContinuousQuery(
      "m", "select avg(y) as m from [select * from s] as t");
  ASSERT_TRUE(q.ok());
  auto res = CheckStateBound(engine, *q);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->sound) << res->detail;
}

TEST(StateOracleTest, CountWindowMeasuredUnderBound) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int, y double)").ok());
  auto q = engine.SubmitContinuousQuery(
      "w", "select sum(y) as b from [select * from s] as t "
           "window size 20 slide 7");
  ASSERT_TRUE(q.ok());
  StateOracleOptions oopts;
  oopts.rows = 200;
  oopts.batch = 13;  // ragged batches leave pending rows buffered
  auto res = CheckStateBound(engine, *q, oopts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->sound) << res->detail;
  EXPECT_GT(res->measured_bytes, 0u) << res->detail;  // buffering happened
  EXPECT_GT(res->bound_bytes, 0) << res->detail;
}

TEST(StateOracleTest, HintedGroupByRespectsHintDomain) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine
                  .ExecuteSql("create basket s (sym varchar, qty int) "
                              "with (cardinality(sym) = 16)")
                  .ok());
  auto q = engine.SubmitContinuousQuery(
      "g", "select sym, sum(qty) as total from [select * from s] as t "
           "group by sym");
  ASSERT_TRUE(q.ok());
  auto res = CheckStateBound(engine, *q);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->sound) << res->detail;
}

TEST(StateOracleTest, StaticJoinIndexUnderBound) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine
                  .ExecuteScript("create basket s (k int, v double);"
                                 "create table dims (k int, label varchar);"
                                 "insert into dims values (1, 'a'), (2, 'b'), "
                                 "(3, 'c');")
                  .ok());
  auto q = engine.SubmitContinuousQuery(
      "j", "select t.v, d.label from [select * from s] as t "
           "join dims as d on t.k = d.k");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto res = CheckStateBound(engine, *q);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->sound) << res->detail;
  EXPECT_GT(res->bound_bytes, 0) << res->detail;
}

TEST(StateOracleTest, DeliberatelyUnsoundOverrideIsRejected) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int, y double)").ok());
  auto q = engine.SubmitContinuousQuery(
      "w", "select sum(y) as b from [select * from s] as t "
           "window size 20 slide 7");
  ASSERT_TRUE(q.ok());
  StateOracleOptions oopts;
  oopts.rows = 200;
  oopts.batch = 13;
  oopts.override_bound_bytes = 1;  // no real window fits in one byte
  auto res = CheckStateBound(engine, *q, oopts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_FALSE(res->sound) << res->detail;
  EXPECT_NE(res->detail.find("EXCEEDS"), std::string::npos) << res->detail;
}

TEST(StateOracleTest, UnboundedVerdictIsVacuouslySound) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket s (sym varchar, qty int)").ok());
  auto q = engine.SubmitContinuousQuery(
      "g", "select sym, sum(qty) as total from [select * from s] as t "
           "group by sym");
  ASSERT_TRUE(q.ok());
  auto res = CheckStateBound(engine, *q);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->sound) << res->detail;
  EXPECT_EQ(res->bound_bytes, -1) << res->detail;  // no numeric claim made
}

// --- pass-4 observability surfaces ------------------------------------------

TEST(StateMetricsTest, GaugesExportBoundAndMeasured) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int, y double)").ok());
  auto q1 = engine.SubmitContinuousQuery(
      "w", "select sum(y) as b from [select * from s] as t window size 10");
  ASSERT_TRUE(q1.ok());
  auto q2 = engine.SubmitContinuousQuery(
      "g", "select x, sum(y) as total from [select * from s] as t group by x");
  ASSERT_TRUE(q2.ok());
  std::string text = engine.MetricsText();
  EXPECT_NE(text.find("datacell_query_state_bound_bytes{query=\"w\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("datacell_query_state_bytes{query=\"w\"}"),
            std::string::npos);
  // The unbounded group-by exports the -1 sentinel.
  size_t pos = text.find("datacell_query_state_bound_bytes{query=\"g\"}");
  ASSERT_NE(pos, std::string::npos) << text;
  EXPECT_NE(text.find("-1", pos), std::string::npos);
}

TEST(StateReportTest, DescribeAndJsonCarryVerdict) {
  Engine engine(Deterministic());
  ASSERT_TRUE(engine.ExecuteSql("create basket s (x int, y double)").ok());
  auto q = engine.SubmitContinuousQuery(
      "w", "select sum(y) as b from [select * from s] as t window size 10");
  ASSERT_TRUE(q.ok());
  auto info = engine.GetQuery(*q);
  ASSERT_TRUE(info.ok());
  const analysis::StateReport& state = *(*info)->state;
  EXPECT_NE(state.Describe().find("window-bounded"), std::string::npos)
      << state.Describe();
  std::string json = state.ToJson();
  EXPECT_NE(json.find("\"verdict\":\"window-bounded\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"operators\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"retention\":"), std::string::npos) << json;
}

}  // namespace
}  // namespace datacell
