#include <gtest/gtest.h>

#include "common/random.h"
#include "core/window.h"
#include "sql/parser.h"

namespace datacell {
namespace {

class WindowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema basket_schema({{"k", DataType::kInt64},
                          {"v", DataType::kInt64},
                          {"ts", DataType::kTimestamp}});
    ASSERT_TRUE(
        catalog_.CreateRelation("r", basket_schema, RelationKind::kBasket)
            .ok());
  }

  sql::CompiledQuery Compile(const std::string& sql) {
    auto stmt = sql::ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    sql::Planner planner(&catalog_);
    auto q = planner.CompileSelect(*stmt->select);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(*q);
  }

  /// Batch of (k, v, ts) tuples in basket layout.
  TablePtr Batch(const std::vector<std::array<int64_t, 3>>& rows) {
    auto t = std::make_shared<Table>(
        "", Schema({{"k", DataType::kInt64},
                    {"v", DataType::kInt64},
                    {"ts", DataType::kTimestamp}}));
    for (const auto& r : rows) {
      EXPECT_TRUE(t->AppendRow({Value::Int64(r[0]), Value::Int64(r[1]),
                                Value::TimestampVal(r[2])})
                      .ok());
    }
    return t;
  }

  Catalog catalog_;
};

TEST_F(WindowTest, TumblingCountSum) {
  auto q = Compile(
      "select sum(v) as s from [select * from r] as w window size 4");
  auto exec = WindowExecutor::Create(q, WindowMode::kReEvaluation, {});
  ASSERT_TRUE(exec.ok());
  auto out = (*exec)->Advance(*Batch({{0, 1, 0}, {0, 2, 0}, {0, 3, 0}}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->num_rows(), 0u);  // window incomplete
  EXPECT_EQ((*exec)->buffered(), 3u);
  out = (*exec)->Advance(*Batch({{0, 4, 0}, {0, 5, 0}}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)->num_rows(), 1u);
  EXPECT_EQ((*out)->GetRow(0)[0], Value::Double(10));  // 1+2+3+4
  EXPECT_EQ((*exec)->buffered(), 1u);                  // the 5 waits
}

TEST_F(WindowTest, SlidingCountWindows) {
  auto q = Compile(
      "select count(*) as c, sum(v) as s from [select * from r] as w "
      "window size 4 slide 2");
  auto exec = WindowExecutor::Create(q, WindowMode::kReEvaluation, {});
  ASSERT_TRUE(exec.ok());
  // 8 tuples -> windows [1..4], [3..6], [5..8].
  std::vector<std::array<int64_t, 3>> rows;
  for (int64_t i = 1; i <= 8; ++i) rows.push_back({0, i, 0});
  auto out = (*exec)->Advance(*Batch(rows));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)->num_rows(), 3u);
  EXPECT_EQ((*out)->GetRow(0)[1], Value::Double(1 + 2 + 3 + 4));
  EXPECT_EQ((*out)->GetRow(1)[1], Value::Double(3 + 4 + 5 + 6));
  EXPECT_EQ((*out)->GetRow(2)[1], Value::Double(5 + 6 + 7 + 8));
}

TEST_F(WindowTest, IncrementalRequiresAggregateShape) {
  auto plain = Compile(
      "select k, v from [select * from r] as w window size 4");
  EXPECT_FALSE(WindowExecutor::Create(plain, WindowMode::kIncremental, {}).ok());
  // kAuto falls back to re-evaluation.
  auto exec = WindowExecutor::Create(plain, WindowMode::kAuto, {});
  ASSERT_TRUE(exec.ok());
  EXPECT_STREQ((*exec)->mode_name(), "reeval");
}

TEST_F(WindowTest, IncrementalRequiresDividingSlide) {
  auto q = Compile(
      "select sum(v) from [select * from r] as w window size 10 slide 3");
  EXPECT_FALSE(WindowExecutor::Create(q, WindowMode::kIncremental, {}).ok());
  auto exec = WindowExecutor::Create(q, WindowMode::kAuto, {});
  ASSERT_TRUE(exec.ok());
  EXPECT_STREQ((*exec)->mode_name(), "reeval");
}

TEST_F(WindowTest, IncrementalPicksUpAggregatePlans) {
  auto q = Compile(
      "select k, sum(v) as s from [select * from r] as w group by k "
      "window size 6 slide 2");
  auto exec = WindowExecutor::Create(q, WindowMode::kAuto, {});
  ASSERT_TRUE(exec.ok());
  EXPECT_STREQ((*exec)->mode_name(), "incremental");
}

TEST_F(WindowTest, IncrementalScalarSum) {
  auto q = Compile(
      "select sum(v) as s from [select * from r] as w window size 4 slide 2");
  auto exec = WindowExecutor::Create(q, WindowMode::kIncremental, {});
  ASSERT_TRUE(exec.ok());
  std::vector<std::array<int64_t, 3>> rows;
  for (int64_t i = 1; i <= 8; ++i) rows.push_back({0, i, 0});
  auto out = (*exec)->Advance(*Batch(rows));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)->num_rows(), 3u);
  EXPECT_EQ((*out)->GetRow(0)[0], Value::Double(10));
  EXPECT_EQ((*out)->GetRow(1)[0], Value::Double(18));
  EXPECT_EQ((*out)->GetRow(2)[0], Value::Double(26));
}

TEST_F(WindowTest, IncrementalMinMaxSurvivesExpiry) {
  // min/max cannot be maintained by subtraction; the basic-window model
  // recombines per-chunk summaries, so expiring the max-holding chunk must
  // produce the correct new max.
  auto q = Compile(
      "select max(v) as m from [select * from r] as w window size 4 slide 2");
  auto exec = WindowExecutor::Create(q, WindowMode::kIncremental, {});
  ASSERT_TRUE(exec.ok());
  // chunks: [9 1] [2 3] [4 5] -> windows [9 1 2 3] max 9, [2 3 4 5] max 5.
  auto out = (*exec)->Advance(
      *Batch({{0, 9, 0}, {0, 1, 0}, {0, 2, 0}, {0, 3, 0}, {0, 4, 0}, {0, 5, 0}}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)->num_rows(), 2u);
  EXPECT_EQ((*out)->GetRow(0)[0], Value::Double(9));
  EXPECT_EQ((*out)->GetRow(1)[0], Value::Double(5));
}

TEST_F(WindowTest, TimeWindowsCloseOnWatermark) {
  auto q = Compile(
      "select count(*) as c from [select * from r] as w "
      "window range 10 seconds slide 10 seconds");
  auto exec = WindowExecutor::Create(q, WindowMode::kReEvaluation, {});
  ASSERT_TRUE(exec.ok());
  const int64_t kSec = 1000000;
  // Tuples at 1s, 3s, 9s: window [1s, 11s) not yet closed.
  auto out = (*exec)->Advance(
      *Batch({{0, 1, 1 * kSec}, {0, 2, 3 * kSec}, {0, 3, 9 * kSec}}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->num_rows(), 0u);
  // A tuple at 12s closes it.
  out = (*exec)->Advance(*Batch({{0, 4, 12 * kSec}}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)->num_rows(), 1u);
  EXPECT_EQ((*out)->GetRow(0)[0], Value::Int64(3));
}

TEST_F(WindowTest, TimeWindowsHandleOutOfOrder) {
  auto q = Compile(
      "select count(*) as c from [select * from r] as w "
      "window range 10 seconds slide 10 seconds");
  auto exec = WindowExecutor::Create(q, WindowMode::kReEvaluation, {});
  ASSERT_TRUE(exec.ok());
  const int64_t kSec = 1000000;
  // Out-of-order arrivals within the same advance: 8s before 2s.
  auto out = (*exec)->Advance(
      *Batch({{0, 1, 8 * kSec}, {0, 2, 2 * kSec}, {0, 3, 13 * kSec}}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)->num_rows(), 1u);
  // Window anchored at min ts (2s): [2, 12) holds both 8s and 2s.
  EXPECT_EQ((*out)->GetRow(0)[0], Value::Int64(2));
}

TEST_F(WindowTest, TimeIncrementalMatchesReEval) {
  const int64_t kSec = 1000000;
  auto q = Compile(
      "select k, count(*) as c, sum(v) as s, min(v) as mn, max(v) as mx "
      "from [select * from r] as w group by k order by k "
      "window range 8 seconds slide 2 seconds");
  auto reeval = WindowExecutor::Create(q, WindowMode::kReEvaluation, {});
  auto incr = WindowExecutor::Create(q, WindowMode::kIncremental, {});
  ASSERT_TRUE(reeval.ok());
  ASSERT_TRUE(incr.ok()) << incr.status().ToString();
  EXPECT_STREQ((*incr)->mode_name(), "incremental");

  Rng rng(404);
  Timestamp now = 0;
  for (int batch = 0; batch < 40; ++batch) {
    int n = static_cast<int>(rng.Uniform(1, 9));
    std::vector<std::array<int64_t, 3>> rows;
    for (int i = 0; i < n; ++i) {
      // Mild disorder: up to 1.5s backwards jitter.
      Timestamp jitter = rng.Uniform(0, 1500) * 1000;
      rows.push_back({rng.Uniform(0, 2), rng.Uniform(0, 100),
                      std::max<Timestamp>(0, now - jitter)});
      now += rng.Uniform(100, 900) * 1000;  // 0.1-0.9s forward per tuple
    }
    auto a = (*reeval)->Advance(*Batch(rows));
    auto b = (*incr)->Advance(*Batch(rows));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ((*a)->num_rows(), (*b)->num_rows()) << "batch " << batch;
    for (size_t row = 0; row < (*a)->num_rows(); ++row) {
      Row ra = (*a)->GetRow(row);
      Row rb = (*b)->GetRow(row);
      for (size_t col = 0; col < ra.size(); ++col) {
        EXPECT_EQ(ra[col], rb[col]) << "row " << row << " col " << col;
      }
    }
  }
  (void)kSec;
}

TEST_F(WindowTest, TimeIncrementalTumbling) {
  const int64_t kSec = 1000000;
  auto q = Compile(
      "select sum(v) as s from [select * from r] as w "
      "window range 2 seconds slide 2 seconds");
  auto exec = WindowExecutor::Create(q, WindowMode::kIncremental, {});
  ASSERT_TRUE(exec.ok());
  // Window [0s,2s): values 1,2. Window [2s,4s): value 3. Close with 5s.
  auto out = (*exec)->Advance(*Batch({{0, 1, 0},
                                      {0, 2, 1 * kSec},
                                      {0, 3, 2 * kSec},
                                      {0, 4, 5 * kSec}}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)->num_rows(), 2u);
  EXPECT_EQ((*out)->GetRow(0)[0], Value::Double(3));
  EXPECT_EQ((*out)->GetRow(1)[0], Value::Double(3));
}

TEST_F(WindowTest, TimeWindowsAcrossSilentGap) {
  const int64_t kSec = 1000000;
  // A long silence between bursts: both evaluation modes must emit the same
  // windows, including the empty ones the gap produces.
  auto q = Compile(
      "select count(*) as c from [select * from r] as w "
      "window range 4 seconds slide 4 seconds");
  auto reeval = WindowExecutor::Create(q, WindowMode::kReEvaluation, {});
  auto incr = WindowExecutor::Create(q, WindowMode::kIncremental, {});
  ASSERT_TRUE(reeval.ok());
  ASSERT_TRUE(incr.ok());
  std::vector<std::array<int64_t, 3>> burst1 = {
      {0, 1, 0}, {0, 2, 1 * kSec}, {0, 3, 3 * kSec}};
  std::vector<std::array<int64_t, 3>> burst2 = {{0, 4, 21 * kSec}};
  for (auto* exec : {&*reeval, &*incr}) {
    auto out1 = (**exec).Advance(*Batch(burst1));
    ASSERT_TRUE(out1.ok());
    EXPECT_EQ((*out1)->num_rows(), 0u);  // first window still open
    auto out2 = (**exec).Advance(*Batch(burst2));
    ASSERT_TRUE(out2.ok());
    // Windows [0,4)=3, [4,8)=0, [8,12)=0, [12,16)=0, [16,20)=0 — five
    // closed windows; the scalar count emits one row for each.
    ASSERT_EQ((*out2)->num_rows(), 5u);
    EXPECT_EQ((*out2)->GetRow(0)[0], Value::Int64(3));
    for (size_t i = 1; i < 5; ++i) {
      EXPECT_EQ((*out2)->GetRow(i)[0], Value::Int64(0));
    }
  }
}

TEST_F(WindowTest, GroupedEmptyWindowEmitsNoRows) {
  auto q = Compile(
      "select k, count(*) as c from [select * from r] as w group by k "
      "window range 2 seconds slide 2 seconds");
  const int64_t kSec = 1000000;
  auto exec = WindowExecutor::Create(q, WindowMode::kIncremental, {});
  ASSERT_TRUE(exec.ok());
  // One tuple at 0s, next at 5s: window [0,2) has one group row; window
  // [2,4) is empty and grouped aggregation emits nothing for it.
  auto out = (*exec)->Advance(*Batch({{1, 1, 0}, {2, 2, 5 * kSec}}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ((*out)->num_rows(), 1u);
  EXPECT_EQ((*out)->GetRow(0)[0], Value::Int64(1));
}

TEST_F(WindowTest, CreateRejectsNonWindowed) {
  auto q = Compile("select * from [select * from r] as w");
  EXPECT_FALSE(WindowExecutor::Create(q, WindowMode::kAuto, {}).ok());
}

// Property: incremental evaluation produces exactly the same window results
// as re-evaluation — the core §3.1 equivalence.
struct EquivParam {
  int size;
  int slide;
  int groups;
  bool filtered;
};

class WindowEquivalenceTest : public ::testing::TestWithParam<EquivParam> {};

TEST_P(WindowEquivalenceTest, IncrementalMatchesReEval) {
  const EquivParam p = GetParam();
  Catalog catalog;
  Schema basket_schema({{"k", DataType::kInt64},
                        {"v", DataType::kInt64},
                        {"ts", DataType::kTimestamp}});
  ASSERT_TRUE(
      catalog.CreateRelation("r", basket_schema, RelationKind::kBasket).ok());
  std::string sql =
      "select k, count(*) as c, sum(v) as s, min(v) as mn, max(v) as mx, "
      "avg(v) as a from [select * from r] as w ";
  if (p.filtered) sql += "where v > 10 ";
  sql += "group by k order by k window size " + std::to_string(p.size) +
         " slide " + std::to_string(p.slide);
  auto stmt = sql::ParseStatement(sql);
  ASSERT_TRUE(stmt.ok());
  sql::Planner planner(&catalog);
  auto q = planner.CompileSelect(*stmt->select);
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  auto reeval = WindowExecutor::Create(*q, WindowMode::kReEvaluation, {});
  auto incr = WindowExecutor::Create(*q, WindowMode::kIncremental, {});
  ASSERT_TRUE(reeval.ok());
  ASSERT_TRUE(incr.ok()) << incr.status().ToString();

  Rng rng(p.size * 1000 + p.slide);
  // Feed in random-sized batches so chunk boundaries cross batch boundaries.
  int remaining = 200;
  while (remaining > 0) {
    int batch = static_cast<int>(rng.Uniform(1, 13));
    batch = std::min(batch, remaining);
    auto t = std::make_shared<Table>("", basket_schema);
    for (int i = 0; i < batch; ++i) {
      ASSERT_TRUE(t->AppendRow({Value::Int64(rng.Uniform(0, p.groups - 1)),
                                Value::Int64(rng.Uniform(0, 100)),
                                Value::TimestampVal(0)})
                      .ok());
    }
    remaining -= batch;
    auto a = (*reeval)->Advance(*t);
    auto b = (*incr)->Advance(*t);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ((*a)->num_rows(), (*b)->num_rows());
    for (size_t row = 0; row < (*a)->num_rows(); ++row) {
      Row ra = (*a)->GetRow(row);
      Row rb = (*b)->GetRow(row);
      ASSERT_EQ(ra.size(), rb.size());
      for (size_t col = 0; col < ra.size(); ++col) {
        EXPECT_EQ(ra[col], rb[col])
            << "window row " << row << " col " << col;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WindowEquivalenceTest,
    ::testing::Values(EquivParam{8, 8, 3, false}, EquivParam{8, 4, 3, false},
                      EquivParam{8, 2, 1, false}, EquivParam{16, 4, 5, true},
                      EquivParam{32, 8, 2, true}, EquivParam{4, 1, 4, false},
                      EquivParam{12, 6, 1, true}));

}  // namespace
}  // namespace datacell
