#include <gtest/gtest.h>

#include "core/engine.h"

namespace datacell {
namespace {

EngineOptions Deterministic() {
  EngineOptions opts;
  opts.use_wall_clock = false;
  return opts;
}

class QueryRemovalTest : public ::testing::Test {
 protected:
  QueryRemovalTest() : engine_(Deterministic()) {
    EXPECT_TRUE(engine_.ExecuteSql("create basket r (x int)").ok());
  }

  QueryId Submit(const std::string& name, const std::string& sql,
                 QueryOptions opts = {}) {
    auto q = engine_.SubmitContinuousQuery(name, sql, opts);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  Engine engine_;
};

TEST_F(QueryRemovalTest, RemovedQueryStopsProducing) {
  QueryId q = Submit("all", "select x from [select * from r] as s");
  auto sink = std::make_shared<CountingSink>();
  ASSERT_TRUE(engine_.Subscribe(q, sink).ok());
  ASSERT_TRUE(engine_.Ingest("r", {Value::Int64(1)}).ok());
  engine_.Drain();
  EXPECT_EQ(sink->rows(), 1);

  ASSERT_TRUE(engine_.RemoveContinuousQuery(q).ok());
  ASSERT_TRUE(engine_.Ingest("r", {Value::Int64(2)}).ok());
  engine_.Drain();
  EXPECT_EQ(sink->rows(), 1);  // nothing new
  auto info = engine_.GetQuery(q);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE((*info)->removed);
}

TEST_F(QueryRemovalTest, RemovalReleasesSharedWatermark) {
  // Two shared readers; removing one must not stall the other's trimming.
  QueryId keep = Submit("keep", "select x from [select * from r] as s");
  QueryId drop = Submit("drop_me", "select x from [select * from r] as s");
  auto sink = std::make_shared<CountingSink>();
  ASSERT_TRUE(engine_.Subscribe(keep, sink).ok());
  ASSERT_TRUE(engine_.RemoveContinuousQuery(drop).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine_.Ingest("r", {Value::Int64(i)}).ok());
  }
  engine_.Drain();
  EXPECT_EQ(sink->rows(), 10);
  // The stream basket fully trims: the retired reader no longer holds it.
  EXPECT_EQ((*engine_.GetBasket("r"))->size(), 0u);
}

TEST_F(QueryRemovalTest, StaleWatermarkWouldOtherwiseGrow) {
  // Control experiment for the test above: with the second query merely
  // idle (not removed), tuples it has not read stay buffered.
  Submit("keep", "select x from [select * from r] as s");
  QueryId lazy = Submit("lazy", "select x from [select * from r] as s "
                                "threshold 1000000");
  (void)lazy;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine_.Ingest("r", {Value::Int64(i)}).ok());
  }
  engine_.Drain();
  EXPECT_EQ((*engine_.GetBasket("r"))->size(), 10u);
}

TEST_F(QueryRemovalTest, SeparateReplicaStopsBeingFed) {
  QueryOptions sep;
  sep.strategy = ProcessingStrategy::kSeparateBaskets;
  QueryId keep = Submit("keep", "select x from [select * from r] as s", sep);
  QueryId drop = Submit("gone", "select x from [select * from r] as s", sep);
  auto sink = std::make_shared<CountingSink>();
  ASSERT_TRUE(engine_.Subscribe(keep, sink).ok());
  ASSERT_TRUE(engine_.RemoveContinuousQuery(drop).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine_.Ingest("r", {Value::Int64(i)}).ok());
  }
  engine_.Drain();
  EXPECT_EQ(sink->rows(), 5);
  // The retired replica no longer accumulates copies.
  auto info = engine_.GetQuery(drop);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->factory->input_baskets()[0]->size(), 0u);
}

TEST_F(QueryRemovalTest, SubplanGroupRetiresWithLastReader) {
  EngineOptions opts = Deterministic();
  opts.factor_common_subplans = true;
  Engine engine(opts);
  ASSERT_TRUE(engine.ExecuteSql("create basket r (x int)").ok());
  auto q1 = engine.SubmitContinuousQuery(
      "a", "select x from [select * from r where r.x > 5] as s");
  auto q2 = engine.SubmitContinuousQuery(
      "b", "select x from [select * from r where r.x > 5] as s");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(engine.num_shared_subplans(), 1u);
  ASSERT_TRUE(engine.RemoveContinuousQuery(*q1).ok());
  EXPECT_EQ(engine.num_shared_subplans(), 1u);  // q2 still reads the group
  ASSERT_TRUE(engine.RemoveContinuousQuery(*q2).ok());
  EXPECT_EQ(engine.num_shared_subplans(), 0u);  // filter retired with it
  // The stream keeps flowing and trimming with no queries left... tuples
  // now simply buffer in the base basket for inspection.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine.Ingest("r", {Value::Int64(i)}).ok());
  }
  engine.Drain();
  EXPECT_EQ(engine.scheduler().error_count(), 0);
}

TEST_F(QueryRemovalTest, Validations) {
  QueryId q = Submit("all", "select x from [select * from r] as s");
  EXPECT_TRUE(engine_.RemoveContinuousQuery(999).IsNotFound());
  ASSERT_TRUE(engine_.RemoveContinuousQuery(q).ok());
  // Double removal rejected.
  EXPECT_FALSE(engine_.RemoveContinuousQuery(q).ok());
  // Subscribing to a removed query is pointless but harmless.
  EXPECT_TRUE(engine_.Subscribe(q, std::make_shared<CountingSink>()).ok());
}

TEST_F(QueryRemovalTest, RunningSchedulerRejected) {
  QueryId q = Submit("all", "select x from [select * from r] as s");
  ASSERT_TRUE(engine_.Start().ok());
  EXPECT_EQ(engine_.RemoveContinuousQuery(q).code(),
            StatusCode::kFailedPrecondition);
  engine_.Stop();
  EXPECT_TRUE(engine_.RemoveContinuousQuery(q).ok());
}

TEST_F(QueryRemovalTest, ChainedRemovalUnimplemented) {
  QueryOptions chained;
  chained.strategy = ProcessingStrategy::kChained;
  QueryId q = Submit("c1", "select x from [select * from r where r.x < 5] "
                           "as s", chained);
  EXPECT_TRUE(engine_.RemoveContinuousQuery(q).IsUnimplemented());
}

}  // namespace
}  // namespace datacell
