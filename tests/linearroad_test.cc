#include <gtest/gtest.h>

#include "linearroad/driver.h"
#include "linearroad/generator.h"
#include "linearroad/history.h"
#include "linearroad/queries.h"

namespace datacell {
namespace linearroad {
namespace {

LrConfig SmallConfig() {
  LrConfig cfg;
  cfg.num_xways = 1;
  cfg.vehicles_per_xway = 50;
  cfg.report_interval_s = 5;
  cfg.accident_prob = 0.01;
  cfg.seed = 7;
  return cfg;
}

TEST(LrGeneratorTest, SchemaShape) {
  Schema s = ReportSchema();
  EXPECT_EQ(s.num_fields(), 8u);
  EXPECT_EQ(s.field(0).name, "time");
  EXPECT_EQ(s.field(2).name, "speed");
  for (const Field& f : s.fields()) {
    EXPECT_EQ(f.type, DataType::kInt64);
  }
}

TEST(LrGeneratorTest, Deterministic) {
  LrGenerator g1(SmallConfig());
  LrGenerator g2(SmallConfig());
  for (int t = 0; t < 20; ++t) {
    auto a = g1.Tick();
    auto b = g2.Tick();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].ToRow(), b[i].ToRow());
    }
  }
}

TEST(LrGeneratorTest, ReportsStaggeredByInterval) {
  LrGenerator gen(SmallConfig());
  int64_t total = 0;
  for (int t = 0; t < 5; ++t) {  // one full report interval
    total += static_cast<int64_t>(gen.Tick().size());
  }
  // Every vehicle reports exactly once per interval.
  EXPECT_EQ(total, 50);
  EXPECT_EQ(gen.total_reports(), 50);
}

TEST(LrGeneratorTest, ReportsAreWellFormed) {
  LrConfig cfg = SmallConfig();
  LrGenerator gen(cfg);
  for (int t = 0; t < 50; ++t) {
    for (const PositionReport& r : gen.Tick()) {
      EXPECT_EQ(r.time_s, t);
      EXPECT_GE(r.speed, 0);
      EXPECT_LE(r.speed, 100);
      EXPECT_EQ(r.xway, 0);
      EXPECT_GE(r.seg, 0);
      EXPECT_LT(r.seg, cfg.segments);
      EXPECT_TRUE(r.dir == 0 || r.dir == 1);
      EXPECT_GE(r.pos, 0);
    }
  }
}

TEST(LrGeneratorTest, AccidentsProduceStoppedVehicles) {
  LrConfig cfg = SmallConfig();
  cfg.accident_prob = 0.05;  // force accidents quickly
  LrGenerator gen(cfg);
  int64_t zero_speed_reports = 0;
  for (int t = 0; t < 100; ++t) {
    for (const PositionReport& r : gen.Tick()) {
      if (r.speed == 0) ++zero_speed_reports;
    }
  }
  EXPECT_GT(gen.accidents_started(), 0);
  EXPECT_GT(zero_speed_reports, 0);
}

TEST(LrGeneratorTest, ScaleFactorMultipliesLoad) {
  LrConfig one = SmallConfig();
  LrConfig two = SmallConfig();
  two.num_xways = 2;
  LrGenerator g1(one);
  LrGenerator g2(two);
  int64_t r1 = 0, r2 = 0;
  for (int t = 0; t < 10; ++t) {
    r1 += static_cast<int64_t>(g1.Tick().size());
    r2 += static_cast<int64_t>(g2.Tick().size());
  }
  EXPECT_EQ(r2, 2 * r1);
}

TEST(LrQueriesTest, InstallCreatesNetwork) {
  EngineOptions opts;
  opts.use_wall_clock = false;
  Engine engine(opts);
  auto queries = InstallLrQueries(&engine);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  EXPECT_EQ(engine.num_queries(), 3u);
  // The toll query reads segstats' output basket: a cascaded network.
  auto info = engine.GetQuery(queries->tolls);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->factory->query().inputs[0].basket, "segstats_out");
}

TEST(LrDriverTest, EndToEndProducesSegmentStats) {
  EngineOptions opts;
  opts.use_wall_clock = false;
  Engine engine(opts);
  auto queries = InstallLrQueries(&engine);
  ASSERT_TRUE(queries.ok());
  LrConfig cfg = SmallConfig();
  cfg.vehicles_per_xway = 200;
  cfg.accident_prob = 0.02;
  LrDriver driver(&engine, cfg);
  // 2 simulated 5-min windows plus slide: 8 minutes.
  ASSERT_TRUE(driver.Run(8 * 60).ok());
  EXPECT_GT(driver.total_reports(), 0);
  EXPECT_GT(queries->segstats_sink->rows(), 0);
  EXPECT_EQ(driver.tick_time_us().count(), 8u * 60u);
  // Accidents were simulated, so stopped-vehicle detections should appear.
  EXPECT_GT(driver.accidents_started(), 0);
  EXPECT_GT(queries->accidents_sink->rows(), 0);
}

TEST(LrHistoryTest, TollsAccumulateIntoHistory) {
  EngineOptions opts;
  opts.use_wall_clock = false;
  Engine engine(opts);
  auto queries = InstallLrQueries(&engine);
  ASSERT_TRUE(queries.ok());
  auto history = TollHistory::Install(&engine, queries->tolls);
  ASSERT_TRUE(history.ok()) << history.status().ToString();

  // Congested traffic: many slow vehicles on one expressway.
  LrConfig cfg = SmallConfig();
  cfg.vehicles_per_xway = 400;
  cfg.accident_prob = 0.05;  // plenty of slowdowns
  LrDriver driver(&engine, cfg);
  ASSERT_TRUE(driver.Run(8 * 60).ok());

  ASSERT_GT(queries->tolls_sink->rows(), 0);
  EXPECT_EQ((*history)->rows_recorded(), queries->tolls_sink->rows());

  // Type-2: expressway balance equals the sum of recorded tolls.
  auto balance = (*history)->ExpresswayBalance(&engine, 0);
  ASSERT_TRUE(balance.ok());
  EXPECT_GT(*balance, 0);
  auto none = (*history)->ExpresswayBalance(&engine, 99);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0);

  // Type-3: daily expenditure rows aggregate the same history.
  auto daily = (*history)->DailyExpenditure(&engine);
  ASSERT_TRUE(daily.ok());
  ASSERT_GE((*daily)->num_rows(), 1u);
  double daily_sum = 0;
  auto spent_idx = (*daily)->schema().IndexOf("spent");
  ASSERT_TRUE(spent_idx.has_value());
  for (size_t i = 0; i < (*daily)->num_rows(); ++i) {
    daily_sum += (*daily)->GetRow(i)[*spent_idx].AsDouble();
  }
  EXPECT_EQ(static_cast<int64_t>(daily_sum), *balance);
}

}  // namespace
}  // namespace linearroad
}  // namespace datacell
