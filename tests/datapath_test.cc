// Zero-copy data path tests: allocation-regression proof for the
// steady-state pipeline, buffer-pool behaviour, and equivalence of the
// columnar fast paths against the legacy row-at-a-time paths.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "adapters/csv.h"
#include "adapters/generator.h"
#include "algebra/kernels.h"
#include "common/check.h"
#include "core/basket.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "storage/batch_pool.h"
#include "storage/column_batch.h"

// The global allocation counter is only meaningful when neither a sanitizer
// nor the debug-check layer is active: sanitizers own the allocator, and the
// lock-order checker heap-allocates its bookkeeping on hot paths.
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__) && \
    !DATACELL_DEBUG_CHECKS_ENABLED
#define DATACELL_COUNT_ALLOCS 1
#else
#define DATACELL_COUNT_ALLOCS 0
#endif

#if DATACELL_COUNT_ALLOCS

namespace {
std::atomic<int64_t> g_alloc_count{0};
}  // namespace

// The counting operators pair malloc with free deliberately; gcc flags the
// free() because it pattern-matches delete-of-new.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

#endif  // DATACELL_COUNT_ALLOCS

namespace datacell {
namespace {

Schema TwoIntSchema() {
  return Schema({{"x", DataType::kInt64}, {"v", DataType::kInt64}});
}

/// Rows of `t` rendered as strings — a representation-independent view for
/// equivalence assertions (nulls render distinctly from values).
std::vector<std::string> RowStrings(const Table& t) {
  std::vector<std::string> out;
  out.reserve(t.num_rows());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    std::string s;
    for (size_t c = 0; c < t.num_columns(); ++c) {
      const Bat& col = *t.column(c);
      s += col.IsNull(i) ? "<null>" : col.GetValue(i).ToString();
      s.push_back('|');
    }
    out.push_back(std::move(s));
  }
  return out;
}

// --- allocation regression -------------------------------------------------

// One full pipeline round on fixed-width columns: columnar ingest with
// buffer swap, stealing drain, kernel select, position gather, move-append
// to the output basket, stealing drain on the emitter side. After warm-up
// every buffer involved ping-pongs between the stages at its high-water
// capacity, so the steady state must perform zero heap allocations.
TEST(DatapathAllocTest, SteadyStatePipelineRoundIsAllocationFree) {
#if !DATACELL_COUNT_ALLOCS
  GTEST_SKIP() << "allocation counting disabled under sanitizers or "
                  "debug-check builds";
#else
  constexpr size_t kRows = 1024;
  Basket ingest(Basket::MakeBasketTable("in", TwoIntSchema()));
  Basket output(Basket::MakeBasketTable("out", TwoIntSchema()));
  ColumnBatch batch(TwoIntSchema());
  Table scratch("scratch", ingest.schema());
  Table result("result", TwoIntSchema());
  Table delivered("delivered", output.schema());
  std::vector<size_t> positions(kRows);

  auto round = [&](int64_t r) {
    batch.Clear();
    for (size_t i = 0; i < kRows; ++i) {
      batch.column(0).AppendInt64(static_cast<int64_t>(i));
      batch.column(1).AppendInt64(r);
    }
    ASSERT_TRUE(ingest.AppendColumns(std::move(batch), r).ok());
    scratch.Clear();
    ingest.DrainAllInto(&scratch);
    const Bat& x = *scratch.column(0);
    size_t cnt = kernel::SelectRangeInt64(x.int64_data().data(), 100, 899, 0,
                                          x.size(), positions.data());
    positions.resize(cnt);
    result.Clear();
    result.column(0)->AppendPositions(*scratch.column(0), positions);
    result.column(1)->AppendPositions(*scratch.column(1), positions);
    ASSERT_TRUE(output.AppendStampedMove(std::move(result), r).ok());
    delivered.Clear();
    output.DrainAllInto(&delivered);
    ASSERT_EQ(delivered.num_rows(), 800u);
    positions.resize(kRows);
  };

  // Warm-up: establishes vector capacities on every stage's buffers.
  for (int64_t r = 0; r < 4; ++r) round(r);

  int64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int64_t r = 4; r < 16; ++r) round(r);
  int64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "steady-state pipeline rounds performed heap allocations";

  EXPECT_EQ(ingest.total_appended(), ingest.total_consumed());
  EXPECT_EQ(output.total_appended(), output.total_consumed());
#endif
}

// --- batch pool ------------------------------------------------------------

TEST(BatchPoolTest, DrainAcquiresMissThenRecycledBuffersHit) {
  BatchPool pool;
  Basket b(Basket::MakeBasketTable("r", TwoIntSchema()));
  b.SetBatchPool(&pool);
  ASSERT_TRUE(b.Append({Value::Int64(1), Value::Int64(2)}, 10).ok());

  // First drain: the pool has nothing to hand out — every column misses.
  TablePtr first = b.DrainAll();
  EXPECT_EQ(first->num_rows(), 1u);
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), first->num_columns());

  // An emitter done with the table recycles its buffers...
  pool.Recycle(*first);
  EXPECT_EQ(pool.recycled(), first->num_columns());
  EXPECT_GT(pool.free_buffers(), 0u);

  // ...and the next drain reuses them.
  ASSERT_TRUE(b.Append({Value::Int64(3), Value::Int64(4)}, 11).ok());
  TablePtr second = b.DrainAll();
  EXPECT_EQ(second->num_rows(), 1u);
  EXPECT_EQ(pool.hits(), second->num_columns());
  EXPECT_EQ(second->column(0)->Int64At(0), 3);
}

TEST(BatchPoolTest, DropsBuffersBeyondCapacity) {
  BatchPool pool(/*max_buffers_per_class=*/1);
  BatPtr a = MakeInt64Bat({1, 2, 3});
  BatPtr b = MakeInt64Bat({4, 5, 6});
  pool.Recycle(*a);
  pool.Recycle(*b);  // free list for int64 is full — dropped
  EXPECT_EQ(pool.recycled(), 1u);
  EXPECT_EQ(pool.dropped(), 1u);
}

// --- equivalence: columnar vs row paths ------------------------------------

TEST(DatapathEquivalenceTest, ColumnarCsvIngestMatchesRowIngest) {
  Schema schema({{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"s", DataType::kString},
                 {"b", DataType::kBool}});
  std::vector<std::string> lines = {
      "1,1.5,hello,true",
      "-7,2.25e3,world,false",
      ",,,",                       // all nulls
      "42,  ,  spaced  ,1",        // null double, string keeps spaces
      "9,0.125,\"quoted,comma\",f",
      "10,3.5,\"\",t",             // quoted empty = real empty string
  };

  Basket row_basket(Basket::MakeBasketTable("rows", schema));
  std::vector<Row> rows;
  for (const std::string& line : lines) {
    auto parsed = ParseCsvRow(line, schema);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    rows.push_back(std::move(*parsed));
  }
  ASSERT_TRUE(row_basket.AppendBatch(rows, 77).ok());

  Basket col_basket(Basket::MakeBasketTable("cols", schema));
  ColumnBatch batch(schema);
  for (const std::string& line : lines) {
    ASSERT_TRUE(AppendCsvToColumns(line, &batch).ok()) << line;
  }
  ASSERT_TRUE(col_basket.AppendColumns(std::move(batch), 77).ok());

  EXPECT_EQ(RowStrings(*row_basket.PeekSnapshot()),
            RowStrings(*col_basket.PeekSnapshot()));
}

TEST(DatapathEquivalenceTest, MalformedLineLeavesBatchUnchanged) {
  Schema schema({{"i", DataType::kInt64}, {"s", DataType::kString}});
  ColumnBatch batch(schema);
  ASSERT_TRUE(AppendCsvToColumns("1,ok", &batch).ok());
  EXPECT_FALSE(AppendCsvToColumns("notanint,bad", &batch).ok());
  EXPECT_FALSE(AppendCsvToColumns("1,two,three", &batch).ok());
  EXPECT_EQ(batch.num_rows(), 1u);
  EXPECT_EQ(batch.column(0).size(), batch.column(1).size());
  EXPECT_EQ(batch.column(1).StringAt(0), "ok");
}

TEST(DatapathEquivalenceTest, StealingDrainMatchesSnapshot) {
  Basket b(Basket::MakeBasketTable("r", TwoIntSchema()));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(b.Append({Value::Int64(i), Value::Int64(i * 2)}, i).ok());
  }
  TablePtr snapshot = b.PeekSnapshot();
  TablePtr drained = b.DrainAll();
  EXPECT_EQ(RowStrings(*snapshot), RowStrings(*drained));
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.total_appended(), b.total_consumed());
}

TEST(DatapathEquivalenceTest, SingleReaderDrainNewForMatchesReadNewFor) {
  // Two baskets with identical traffic: one drained via the read+trim pair,
  // one via the stealing DrainNewFor. The delivered tuples must match.
  Basket legacy(Basket::MakeBasketTable("a", TwoIntSchema()));
  Basket stealing(Basket::MakeBasketTable("b", TwoIntSchema()));
  size_t lr = legacy.RegisterReader();
  size_t sr = stealing.RegisterReader();
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 5; ++i) {
      Row row{Value::Int64(round * 5 + i), Value::Int64(i)};
      ASSERT_TRUE(legacy.Append(row, round).ok());
      ASSERT_TRUE(stealing.Append(row, round).ok());
    }
    TablePtr want = legacy.ReadNewFor(lr);
    legacy.TrimConsumed();
    TablePtr got = stealing.DrainNewFor(sr);
    EXPECT_EQ(RowStrings(*want), RowStrings(*got));
  }
  EXPECT_EQ(stealing.total_consumed(), legacy.total_consumed());
}

TEST(DatapathEquivalenceTest, MultiReaderDrainNewForKeepsUnseenTuples) {
  // With a second, slower reader the stealing fast path must not engage:
  // tuples stay until everyone has seen them.
  Basket b(Basket::MakeBasketTable("r", TwoIntSchema()));
  size_t fast = b.RegisterReader();
  size_t slow = b.RegisterReader();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(b.Append({Value::Int64(i), Value::Int64(i)}, i).ok());
  }
  TablePtr fast_batch = b.DrainNewFor(fast);
  EXPECT_EQ(fast_batch->num_rows(), 6u);
  EXPECT_EQ(b.size(), 6u);  // slow reader hasn't seen them
  TablePtr slow_batch = b.DrainNewFor(slow);
  EXPECT_EQ(RowStrings(*fast_batch), RowStrings(*slow_batch));
  EXPECT_EQ(b.size(), 0u);  // everyone has; trimmed
}

TEST(DatapathEquivalenceTest, MoveAppendsMatchCopyAppends) {
  Schema user = TwoIntSchema();
  Basket copy_b(Basket::MakeBasketTable("c", user));
  Basket move_b(Basket::MakeBasketTable("m", user));

  Table result("res", user);
  for (int i = 0; i < 10; ++i) {
    result.column(0)->AppendInt64(i);
    result.column(1)->AppendInt64(100 - i);
  }
  ASSERT_TRUE(copy_b.AppendStamped(result, 5).ok());
  ASSERT_TRUE(move_b.AppendStampedMove(std::move(result), 5).ok());
  EXPECT_EQ(result.num_rows(), 0u);  // buffers moved out
  EXPECT_EQ(RowStrings(*copy_b.PeekSnapshot()),
            RowStrings(*move_b.PeekSnapshot()));

  // Same for the carries-ts flavour.
  Basket copy_ts(Basket::MakeBasketTable("ct", user));
  Basket move_ts(Basket::MakeBasketTable("mt", user));
  Table with_ts("res_ts", copy_ts.schema());
  for (int i = 0; i < 10; ++i) {
    with_ts.column(0)->AppendInt64(i);
    with_ts.column(1)->AppendInt64(i * 3);
    with_ts.column(2)->AppendInt64(1000 + i);  // ts column
  }
  ASSERT_TRUE(copy_ts.AppendWithTs(with_ts).ok());
  ASSERT_TRUE(move_ts.AppendWithTsMove(std::move(with_ts)).ok());
  EXPECT_EQ(RowStrings(*copy_ts.PeekSnapshot()),
            RowStrings(*move_ts.PeekSnapshot()));
}

TEST(DatapathEquivalenceTest, GeneratorColumnarFillMatchesRowFill) {
  std::vector<ColumnSpec> specs(3);
  specs[0].type = DataType::kInt64;
  specs[1].type = DataType::kDouble;
  specs[2].type = DataType::kString;
  UniformRowGenerator row_gen(specs, /*seed=*/42);
  UniformRowGenerator col_gen(specs, /*seed=*/42);

  std::vector<Row> rows = row_gen.NextBatch(64);
  ColumnBatch batch(*col_gen.schema());
  col_gen.NextBatchColumns(64, &batch);

  ASSERT_EQ(batch.num_rows(), rows.size());
  std::string line;
  for (size_t r = 0; r < rows.size(); ++r) {
    FormatCsvLine(batch, r, &line);
    EXPECT_EQ(line, FormatCsvRow(rows[r])) << "row " << r;
  }
}

// --- equivalence: SIMD kernels and fused plans -----------------------------

TEST(DatapathKernelTest, Avx2SelectMatchesScalar) {
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 1000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    ints.push_back(static_cast<int64_t>(state >> 16) % 1000 - 500);
    doubles.push_back(static_cast<double>(static_cast<int64_t>(state % 2001) -
                                          1000) /
                      8.0);
  }
  doubles[17] = std::numeric_limits<double>::quiet_NaN();  // never qualifies

  std::vector<size_t> scalar_out(ints.size());
  std::vector<size_t> simd_out(ints.size());
  size_t ns = kernel::SelectRangeInt64Scalar(ints.data(), -250, 250, 0,
                                             ints.size(), scalar_out.data());
  size_t nv = kernel::SelectRangeInt64(ints.data(), -250, 250, 0, ints.size(),
                                       simd_out.data());
  ASSERT_EQ(ns, nv);
  scalar_out.resize(ns);
  simd_out.resize(nv);
  EXPECT_EQ(scalar_out, simd_out);

  scalar_out.assign(doubles.size(), 0);
  simd_out.assign(doubles.size(), 0);
  ns = kernel::SelectRangeDoubleScalar(doubles.data(), -50.0, 50.0, 0,
                                       doubles.size(), scalar_out.data());
  nv = kernel::SelectRangeDouble(doubles.data(), -50.0, 50.0, 0,
                                 doubles.size(), simd_out.data());
  ASSERT_EQ(ns, nv);
  scalar_out.resize(ns);
  simd_out.resize(nv);
  EXPECT_EQ(scalar_out, simd_out);
}

class FusedPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .CreateRelation("t",
                                    Schema({{"a", DataType::kInt64},
                                            {"b", DataType::kInt64}}),
                                    RelationKind::kTable)
                    .ok());
    input_ = std::make_shared<Table>(
        "t", Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}));
    for (int i = 0; i < 100; ++i) {
      input_->column(0)->AppendInt64(i);
      input_->column(1)->AppendInt64(i * 7 % 13);
    }
    input_->column(1)->AppendNull();
    input_->column(0)->AppendInt64(50);  // in range, null b
  }

  Result<TablePtr> Run(const std::string& sql) {
    auto stmt = sql::ParseStatement(sql);
    if (!stmt.ok()) return stmt.status();
    sql::Planner planner(&catalog_);
    DC_ASSIGN_OR_RETURN(sql::CompiledQuery q,
                        planner.CompileSelect(*stmt->select));
    PlanBindings bindings{{"t", input_}};
    return ExecutePlan(*q.plan, bindings);
  }

  Catalog catalog_;
  TablePtr input_;
};

TEST_F(FusedPlanTest, FusedProjectMatchesReference) {
  // Project(Filter(Scan)) with plain column refs takes the fused gather.
  auto got = Run("select b, a from t where a >= 10 and a <= 20");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ((*got)->num_rows(), 11u);
  for (size_t i = 0; i < 11; ++i) {
    int64_t a = static_cast<int64_t>(i) + 10;
    EXPECT_EQ((*got)->column(1)->Int64At(i), a);
    EXPECT_EQ((*got)->column(0)->Int64At(i), a * 7 % 13);
  }
}

TEST_F(FusedPlanTest, FusedProjectCarriesNulls) {
  auto got = Run("select b from t where a = 50");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // Two rows with a == 50: the original (b = 350 % 13) and the null-b row.
  ASSERT_EQ((*got)->num_rows(), 2u);
  EXPECT_EQ((*got)->column(0)->Int64At(0), 50 * 7 % 13);
  EXPECT_TRUE((*got)->column(0)->IsNull(1));
}

TEST_F(FusedPlanTest, FusedAggregateMatchesReference) {
  auto got = Run(
      "select count(*), sum(b), min(a), max(a) from t "
      "where a >= 10 and a <= 20");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  int64_t want_sum = 0;
  for (int64_t a = 10; a <= 20; ++a) want_sum += a * 7 % 13;
  ASSERT_EQ((*got)->num_rows(), 1u);
  // count is int64; sum/min/max finalize to double (AggPartial::Finalize).
  EXPECT_EQ((*got)->column(0)->Int64At(0), 11);
  EXPECT_DOUBLE_EQ((*got)->column(1)->DoubleAt(0),
                   static_cast<double>(want_sum));
  EXPECT_DOUBLE_EQ((*got)->column(2)->DoubleAt(0), 10.0);
  EXPECT_DOUBLE_EQ((*got)->column(3)->DoubleAt(0), 20.0);
}

TEST_F(FusedPlanTest, FusedCountStarSkipsNothing) {
  // count(*) over a filter counts selected positions, nulls included.
  auto got = Run("select count(*), count(b) from t where a = 50");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ((*got)->column(0)->Int64At(0), 2);  // both rows
  EXPECT_EQ((*got)->column(1)->Int64At(0), 1);  // null b not counted
}

}  // namespace
}  // namespace datacell
