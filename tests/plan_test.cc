#include <gtest/gtest.h>

#include "algebra/plan.h"

namespace datacell {
namespace {

Schema AbSchema() {
  return Schema({{"a", DataType::kInt64}, {"b", DataType::kDouble}});
}

TablePtr AbTable(int n) {
  auto t = std::make_shared<Table>("r", AbSchema());
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(t->AppendRow({Value::Int64(i), Value::Double(i * 0.5)}).ok());
  }
  return t;
}

ExprPtr ColA() { return Expr::Column(0, "a", DataType::kInt64); }

PlanPtr Scan() { return *MakeScan("r", AbSchema()); }

TEST(PlanBuildTest, ScanValidation) {
  EXPECT_TRUE(MakeScan("r", AbSchema()).ok());
  EXPECT_FALSE(MakeScan("", AbSchema()).ok());
}

TEST(PlanBuildTest, FilterValidation) {
  auto pred = Expr::Binary(BinaryOp::kGt, ColA(), Expr::Int(1));
  EXPECT_TRUE(MakeFilter(Scan(), pred).ok());
  EXPECT_FALSE(MakeFilter(nullptr, pred).ok());
  EXPECT_FALSE(MakeFilter(Scan(), ColA()).ok());  // non-boolean predicate
}

TEST(PlanBuildTest, ProjectSchemaInference) {
  auto p = MakeProject(Scan(),
                       {ColA(), Expr::Binary(BinaryOp::kMul, ColA(),
                                             Expr::Int(2))},
                       {"a", "a2"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->output_schema().num_fields(), 2u);
  EXPECT_EQ((*p)->output_schema().field(1).name, "a2");
  EXPECT_EQ((*p)->output_schema().field(1).type, DataType::kInt64);
  EXPECT_FALSE(MakeProject(Scan(), {ColA()}, {"x", "y"}).ok());
}

TEST(PlanBuildTest, JoinSchemaConcatAndKeyChecks) {
  auto j = MakeHashJoin(Scan(), Scan(), 0, 0);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ((*j)->output_schema().num_fields(), 4u);
  EXPECT_FALSE(MakeHashJoin(Scan(), Scan(), 9, 0).ok());
  EXPECT_FALSE(MakeHashJoin(Scan(), Scan(), 0, 1).ok());  // int vs double key
}

TEST(PlanBuildTest, AggregateSchemaAndNames) {
  AggSpec count_star;
  count_star.func = AggFunc::kCount;
  count_star.count_star = true;
  AggSpec sum_b;
  sum_b.func = AggFunc::kSum;
  sum_b.input_column = 1;
  auto a = MakeAggregate(Scan(), {0}, {count_star, sum_b});
  ASSERT_TRUE(a.ok());
  const Schema& s = (*a)->output_schema();
  ASSERT_EQ(s.num_fields(), 3u);
  EXPECT_EQ(s.field(0).name, "a");
  EXPECT_EQ(s.field(1).type, DataType::kInt64);   // count
  EXPECT_EQ(s.field(2).type, DataType::kDouble);  // sum
  EXPECT_FALSE(MakeAggregate(Scan(), {5}, {count_star}).ok());
  EXPECT_FALSE(MakeAggregate(Scan(), {}, {}).ok());
}

TEST(PlanBuildTest, SortLimitDistinctUnion) {
  EXPECT_TRUE(MakeSort(Scan(), {{0, true}}).ok());
  EXPECT_FALSE(MakeSort(Scan(), {}).ok());
  EXPECT_FALSE(MakeSort(Scan(), {{7, true}}).ok());
  EXPECT_TRUE(MakeLimit(Scan(), 0, 5).ok());
  EXPECT_FALSE(MakeLimit(Scan(), 0, 0).ok());
  EXPECT_TRUE(MakeDistinct(Scan()).ok());
  EXPECT_TRUE(MakeUnion(Scan(), Scan()).ok());
  auto one_col = MakeProject(Scan(), {ColA()}, {"a"});
  EXPECT_FALSE(MakeUnion(Scan(), *one_col).ok());
}

TEST(PlanExecTest, ScanBindsByName) {
  auto plan = Scan();
  PlanBindings bindings{{"r", AbTable(3)}};
  auto result = ExecutePlan(*plan, bindings);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 3u);
  EXPECT_FALSE(ExecutePlan(*plan, {}).ok());  // missing binding
}

TEST(PlanExecTest, FilterKeepsMatching) {
  auto plan = *MakeFilter(Scan(),
                          Expr::Binary(BinaryOp::kGe, ColA(), Expr::Int(3)));
  auto result = ExecutePlan(*plan, {{"r", AbTable(5)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 2u);
  EXPECT_EQ((*result)->GetRow(0)[0], Value::Int64(3));
}

TEST(PlanExecTest, ProjectComputes) {
  auto plan = *MakeProject(
      Scan(), {Expr::Binary(BinaryOp::kAdd, ColA(), Expr::Int(100))}, {"a100"});
  auto result = ExecutePlan(*plan, {{"r", AbTable(2)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->GetRow(1)[0], Value::Int64(101));
}

TEST(PlanExecTest, JoinProducesPairs) {
  auto plan = *MakeHashJoin(Scan(), Scan(), 0, 0);
  auto result = ExecutePlan(*plan, {{"r", AbTable(4)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 4u);  // self-join on unique keys
  EXPECT_EQ((*result)->num_columns(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*result)->GetRow(i)[0], (*result)->GetRow(i)[2]);
  }
}

TEST(PlanExecTest, ScalarAggregateEmptyInputOneRow) {
  AggSpec c;
  c.func = AggFunc::kCount;
  c.count_star = true;
  auto plan = *MakeAggregate(Scan(), {}, {c});
  auto result = ExecutePlan(*plan, {{"r", AbTable(0)}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->num_rows(), 1u);
  EXPECT_EQ((*result)->GetRow(0)[0], Value::Int64(0));
}

TEST(PlanExecTest, GroupedAggregate) {
  // Group by a % 2 via pre-projection.
  auto pre = *MakeProject(
      Scan(),
      {Expr::Binary(BinaryOp::kMod, ColA(), Expr::Int(2)),
       Expr::Column(1, "b", DataType::kDouble)},
      {"parity", "b"});
  AggSpec sum_b;
  sum_b.func = AggFunc::kSum;
  sum_b.input_column = 1;
  AggSpec cnt;
  cnt.func = AggFunc::kCount;
  cnt.count_star = true;
  auto plan = *MakeAggregate(pre, {0}, {sum_b, cnt});
  auto result = ExecutePlan(*plan, {{"r", AbTable(6)}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->num_rows(), 2u);
  // parity 0: rows 0,2,4 -> b sum = (0+2+4)*0.5 = 3 ; parity 1: 1+3+5 -> 4.5
  EXPECT_EQ((*result)->GetRow(0)[0], Value::Int64(0));
  EXPECT_EQ((*result)->GetRow(0)[1], Value::Double(3.0));
  EXPECT_EQ((*result)->GetRow(0)[2], Value::Int64(3));
  EXPECT_EQ((*result)->GetRow(1)[1], Value::Double(4.5));
}

TEST(PlanExecTest, SortDistinctLimitUnion) {
  auto sorted = *MakeSort(Scan(), {{0, false}});
  auto result = ExecutePlan(*sorted, {{"r", AbTable(3)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->GetRow(0)[0], Value::Int64(2));

  auto unioned = *MakeUnion(Scan(), Scan());
  auto u = ExecutePlan(*unioned, {{"r", AbTable(2)}});
  ASSERT_TRUE(u.ok());
  EXPECT_EQ((*u)->num_rows(), 4u);

  auto distinct = *MakeDistinct(unioned);
  auto d = ExecutePlan(*distinct, {{"r", AbTable(2)}});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->num_rows(), 2u);

  auto limited = *MakeLimit(Scan(), 1, 1);
  auto l = ExecutePlan(*limited, {{"r", AbTable(3)}});
  ASSERT_TRUE(l.ok());
  ASSERT_EQ((*l)->num_rows(), 1u);
  EXPECT_EQ((*l)->GetRow(0)[0], Value::Int64(1));
}

TEST(PlanExecTest, LimitBeyondEnd) {
  auto plan = *MakeLimit(Scan(), 5, 10);
  auto result = ExecutePlan(*plan, {{"r", AbTable(3)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 0u);
}

TEST(PlanIntrospectionTest, InputRelations) {
  auto join = *MakeHashJoin(*MakeScan("left", AbSchema()),
                            *MakeScan("right", AbSchema()), 0, 0);
  EXPECT_EQ(join->InputRelations(),
            (std::vector<std::string>{"left", "right"}));
}

TEST(PlanIntrospectionTest, DescribeAndToString) {
  auto plan = *MakeFilter(Scan(),
                          Expr::Binary(BinaryOp::kGt, ColA(), Expr::Int(1)));
  EXPECT_NE(plan->Describe().find("Filter"), std::string::npos);
  std::string tree = plan->ToString();
  EXPECT_NE(tree.find("Scan(r)"), std::string::npos);
}

TEST(PlanIntrospectionTest, ExplainMalShape) {
  auto plan = *MakeFilter(Scan(),
                          Expr::Binary(BinaryOp::kGt, ColA(), Expr::Int(1)));
  std::string mal = ExplainMal(*plan);
  EXPECT_NE(mal.find("basket.bind(\"r\")"), std::string::npos);
  EXPECT_NE(mal.find("algebra.select"), std::string::npos);
  EXPECT_NE(mal.find("X_0"), std::string::npos);
}

}  // namespace
}  // namespace datacell
