#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/planner.h"

namespace datacell {
namespace sql {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .CreateRelation(
                        "t",
                        Schema({{"a", DataType::kInt64},
                                {"b", DataType::kDouble},
                                {"s", DataType::kString}}),
                        RelationKind::kTable)
                    .ok());
    ASSERT_TRUE(catalog_
                    .CreateRelation(
                        "r",
                        Schema({{"x", DataType::kInt64},
                                {"y", DataType::kDouble},
                                {"ts", DataType::kTimestamp}}),
                        RelationKind::kBasket)
                    .ok());
    ASSERT_TRUE(catalog_
                    .CreateRelation("dim",
                                    Schema({{"x", DataType::kInt64},
                                            {"label", DataType::kString}}),
                                    RelationKind::kTable)
                    .ok());
  }

  Result<CompiledQuery> Compile(const std::string& sql) {
    auto stmt = ParseStatement(sql);
    if (!stmt.ok()) return stmt.status();
    Planner planner(&catalog_);
    return planner.CompileSelect(*stmt->select);
  }

  Catalog catalog_;
};

TEST_F(PlannerTest, SimpleSelectStar) {
  auto q = Compile("select * from t");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->continuous);
  EXPECT_EQ(q->output_schema.num_fields(), 3u);
  EXPECT_EQ(q->plan->kind(), PlanKind::kScan);
}

TEST_F(PlannerTest, ProjectionAndAliases) {
  auto q = Compile("select a + 1 as a1, s from t");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->output_schema.field(0).name, "a1");
  EXPECT_EQ(q->output_schema.field(0).type, DataType::kInt64);
  EXPECT_EQ(q->output_schema.field(1).name, "s");
}

TEST_F(PlannerTest, WhereBecomesFilter) {
  auto q = Compile("select * from t where a > 5");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->plan->kind(), PlanKind::kFilter);
}

TEST_F(PlannerTest, UnknownColumnRejected) {
  EXPECT_FALSE(Compile("select zz from t").ok());
  EXPECT_FALSE(Compile("select * from t where zz > 0").ok());
}

TEST_F(PlannerTest, UnknownTableRejected) {
  EXPECT_FALSE(Compile("select * from nope").ok());
}

TEST_F(PlannerTest, TypeErrorsRejected) {
  EXPECT_FALSE(Compile("select * from t where s > 5").ok());
  EXPECT_FALSE(Compile("select s + 1 from t").ok());
  EXPECT_FALSE(Compile("select * from t where a").ok());  // non-bool predicate
}

TEST_F(PlannerTest, JoinCompiles) {
  auto q = Compile("select t.a, dim.label from t join dim on t.a = dim.x");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->output_schema.num_fields(), 2u);
  // Output column names resolve through qualifiers.
  EXPECT_EQ(q->output_schema.field(1).name, "label");
}

TEST_F(PlannerTest, JoinRequiresBothSides) {
  EXPECT_FALSE(Compile("select * from t join dim on t.a = t.a").ok());
  EXPECT_FALSE(Compile("select * from t join dim on t.a > dim.x").ok());
}

TEST_F(PlannerTest, AmbiguousColumnRejected) {
  // x exists in r and dim.
  EXPECT_FALSE(Compile("select x from r join dim on x = x").ok());
}

TEST_F(PlannerTest, ScalarAggregate) {
  auto q = Compile("select count(*), sum(a), avg(b) from t");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->output_schema.num_fields(), 3u);
  EXPECT_EQ(q->output_schema.field(0).type, DataType::kInt64);
  EXPECT_EQ(q->output_schema.field(1).type, DataType::kDouble);
}

TEST_F(PlannerTest, GroupByWithHaving) {
  auto q = Compile(
      "select s, count(*) as c from t group by s having count(*) > 2");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->output_schema.field(0).name, "s");
  EXPECT_EQ(q->output_schema.field(1).name, "c");
}

TEST_F(PlannerTest, AggregateArithmeticInSelect) {
  auto q = Compile("select sum(a) / count(*) as mean from t");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->output_schema.field(0).name, "mean");
}

TEST_F(PlannerTest, NonGroupedColumnRejected) {
  EXPECT_FALSE(Compile("select a, count(*) from t group by s").ok());
}

TEST_F(PlannerTest, AggregateInWhereRejected) {
  EXPECT_FALSE(Compile("select a from t where sum(a) > 1").ok());
}

TEST_F(PlannerTest, HavingWithoutAggregatesRejected) {
  EXPECT_FALSE(Compile("select a from t having a > 1").ok());
}

TEST_F(PlannerTest, StarWithAggregateRejected) {
  EXPECT_FALSE(Compile("select *, count(*) from t").ok());
}

TEST_F(PlannerTest, OrderByNameAndPosition) {
  EXPECT_TRUE(Compile("select a, b from t order by b desc, 1").ok());
  EXPECT_FALSE(Compile("select a from t order by 5").ok());
  EXPECT_FALSE(Compile("select a from t order by zz").ok());
}

TEST_F(PlannerTest, LimitOffset) {
  auto q = Compile("select a from t limit 10 offset 5");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->plan->kind(), PlanKind::kLimit);
  EXPECT_EQ(q->plan->limit(), 10u);
  EXPECT_EQ(q->plan->offset(), 5u);
}

TEST_F(PlannerTest, DistinctAddsNode) {
  auto q = Compile("select distinct s from t");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->plan->kind(), PlanKind::kDistinct);
}

// --- continuous queries ------------------------------------------------

TEST_F(PlannerTest, BasketExpressionMakesContinuous) {
  auto q = Compile("select * from [select * from r] as s where s.x > 1");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->continuous);
  ASSERT_EQ(q->inputs.size(), 1u);
  EXPECT_EQ(q->inputs[0].basket, "r");
  EXPECT_EQ(q->inputs[0].consume_predicate, nullptr);
  // The basket's full schema (incl. ts) flows through the scan.
  EXPECT_EQ(q->inputs[0].basket_schema.num_fields(), 3u);
}

TEST_F(PlannerTest, ConsumePredicateBound) {
  auto q = Compile(
      "select * from [select * from r where r.x < 100] as s");
  ASSERT_TRUE(q.ok());
  ASSERT_NE(q->inputs[0].consume_predicate, nullptr);
  EXPECT_EQ(q->inputs[0].consume_predicate->type(), DataType::kBool);
}

TEST_F(PlannerTest, BasketExprInnerProjection) {
  auto q = Compile("select x2 from [select x * 2 as x2 from r] as s");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->output_schema.field(0).name, "x2");
}

TEST_F(PlannerTest, BasketExprOverTableRejected) {
  EXPECT_FALSE(Compile("select * from [select * from t] as s").ok());
}

TEST_F(PlannerTest, BasketExprComplexInnerRejected) {
  EXPECT_FALSE(
      Compile("select * from [select x from r group by x] as s").ok());
  EXPECT_FALSE(
      Compile("select * from [select * from r limit 5] as s").ok());
  EXPECT_FALSE(Compile(
      "select * from [select * from [select * from r] as q] as s").ok());
}

TEST_F(PlannerTest, StreamTableJoin) {
  auto q = Compile(
      "select s.x, dim.label from [select * from r] as s "
      "join dim on s.x = dim.x");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->continuous);
  EXPECT_EQ(q->inputs.size(), 1u);
}

TEST_F(PlannerTest, TwoStreamJoin) {
  auto q = Compile(
      "select * from [select * from r] as s1 "
      "join [select * from r] as s2 on s1.x = s2.x");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->inputs.size(), 2u);
  EXPECT_NE(q->inputs[0].bind_name, q->inputs[1].bind_name);
}

TEST_F(PlannerTest, WindowRequiresContinuous) {
  EXPECT_FALSE(Compile("select avg(a) from t window size 10").ok());
}

TEST_F(PlannerTest, WindowValidation) {
  EXPECT_TRUE(Compile("select avg(x) from [select * from r] as s "
                      "window size 10 slide 5")
                  .ok());
  EXPECT_FALSE(Compile("select avg(x) from [select * from r] as s "
                       "window size 10 slide 20")
                   .ok());
  EXPECT_FALSE(Compile("select avg(x) from [select * from r] as s "
                       "window size 0")
                   .ok());
}

TEST_F(PlannerTest, WindowSpecCarried) {
  auto q = Compile(
      "select avg(x) from [select * from r] as s window size 100 slide 25");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->window.kind, WindowSpec::Kind::kCount);
  EXPECT_EQ(q->window.size, 100);
  EXPECT_EQ(q->window.slide, 25);
}

TEST_F(PlannerTest, ThresholdCarried) {
  auto q = Compile("select * from [select * from r] as s threshold 32");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->threshold, 32);
}

TEST_F(PlannerTest, TsColumnAccessible) {
  // The implicit timestamp column participates in queries (paper §2.2).
  auto q = Compile("select ts from [select * from r] as s where ts > 0");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->output_schema.field(0).type, DataType::kTimestamp);
}

}  // namespace
}  // namespace sql
}  // namespace datacell
