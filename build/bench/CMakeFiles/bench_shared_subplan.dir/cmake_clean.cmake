file(REMOVE_RECURSE
  "CMakeFiles/bench_shared_subplan.dir/bench_shared_subplan.cc.o"
  "CMakeFiles/bench_shared_subplan.dir/bench_shared_subplan.cc.o.d"
  "bench_shared_subplan"
  "bench_shared_subplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shared_subplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
