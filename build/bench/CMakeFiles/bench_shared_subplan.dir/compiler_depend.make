# Empty compiler generated dependencies file for bench_shared_subplan.
# This may be replaced when dependencies are built.
