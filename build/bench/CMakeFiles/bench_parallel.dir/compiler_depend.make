# Empty compiler generated dependencies file for bench_parallel.
# This may be replaced when dependencies are built.
