file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel.dir/bench_parallel.cc.o"
  "CMakeFiles/bench_parallel.dir/bench_parallel.cc.o.d"
  "bench_parallel"
  "bench_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
