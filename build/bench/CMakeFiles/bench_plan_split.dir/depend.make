# Empty dependencies file for bench_plan_split.
# This may be replaced when dependencies are built.
