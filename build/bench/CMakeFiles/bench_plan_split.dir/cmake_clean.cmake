file(REMOVE_RECURSE
  "CMakeFiles/bench_plan_split.dir/bench_plan_split.cc.o"
  "CMakeFiles/bench_plan_split.dir/bench_plan_split.cc.o.d"
  "bench_plan_split"
  "bench_plan_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plan_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
