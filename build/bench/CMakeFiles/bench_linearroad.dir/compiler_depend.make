# Empty compiler generated dependencies file for bench_linearroad.
# This may be replaced when dependencies are built.
