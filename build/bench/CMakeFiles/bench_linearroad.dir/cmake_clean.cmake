file(REMOVE_RECURSE
  "CMakeFiles/bench_linearroad.dir/bench_linearroad.cc.o"
  "CMakeFiles/bench_linearroad.dir/bench_linearroad.cc.o.d"
  "bench_linearroad"
  "bench_linearroad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linearroad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
