file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel.dir/bench_kernel.cc.o"
  "CMakeFiles/bench_kernel.dir/bench_kernel.cc.o.d"
  "bench_kernel"
  "bench_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
