# Empty dependencies file for bench_batch_vs_tuple.
# This may be replaced when dependencies are built.
