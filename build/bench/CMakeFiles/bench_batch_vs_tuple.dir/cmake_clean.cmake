file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_vs_tuple.dir/bench_batch_vs_tuple.cc.o"
  "CMakeFiles/bench_batch_vs_tuple.dir/bench_batch_vs_tuple.cc.o.d"
  "bench_batch_vs_tuple"
  "bench_batch_vs_tuple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_vs_tuple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
