# Empty dependencies file for bench_disjoint_chain.
# This may be replaced when dependencies are built.
