file(REMOVE_RECURSE
  "CMakeFiles/bench_disjoint_chain.dir/bench_disjoint_chain.cc.o"
  "CMakeFiles/bench_disjoint_chain.dir/bench_disjoint_chain.cc.o.d"
  "bench_disjoint_chain"
  "bench_disjoint_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disjoint_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
