file(REMOVE_RECURSE
  "CMakeFiles/bench_shedding.dir/bench_shedding.cc.o"
  "CMakeFiles/bench_shedding.dir/bench_shedding.cc.o.d"
  "bench_shedding"
  "bench_shedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
