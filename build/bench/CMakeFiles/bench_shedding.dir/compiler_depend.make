# Empty compiler generated dependencies file for bench_shedding.
# This may be replaced when dependencies are built.
