file(REMOVE_RECURSE
  "CMakeFiles/bench_basket_expr.dir/bench_basket_expr.cc.o"
  "CMakeFiles/bench_basket_expr.dir/bench_basket_expr.cc.o.d"
  "bench_basket_expr"
  "bench_basket_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_basket_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
