# Empty dependencies file for bench_basket_expr.
# This may be replaced when dependencies are built.
