# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/expression_test[1]_include.cmake")
include("/root/repo/build/tests/operators_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/sql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/basket_test[1]_include.cmake")
include("/root/repo/build/tests/petri_test[1]_include.cmake")
include("/root/repo/build/tests/window_test[1]_include.cmake")
include("/root/repo/build/tests/factory_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/adapters_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/linearroad_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/shared_subplan_test[1]_include.cmake")
include("/root/repo/build/tests/sql_functions_test[1]_include.cmake")
include("/root/repo/build/tests/load_shedding_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/mal_test[1]_include.cmake")
include("/root/repo/build/tests/engine_extras_test[1]_include.cmake")
include("/root/repo/build/tests/query_removal_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
