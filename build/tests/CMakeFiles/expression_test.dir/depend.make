# Empty dependencies file for expression_test.
# This may be replaced when dependencies are built.
