file(REMOVE_RECURSE
  "CMakeFiles/basket_test.dir/basket_test.cc.o"
  "CMakeFiles/basket_test.dir/basket_test.cc.o.d"
  "basket_test"
  "basket_test.pdb"
  "basket_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
