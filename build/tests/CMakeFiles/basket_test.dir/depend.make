# Empty dependencies file for basket_test.
# This may be replaced when dependencies are built.
