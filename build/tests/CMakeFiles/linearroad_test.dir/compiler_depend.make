# Empty compiler generated dependencies file for linearroad_test.
# This may be replaced when dependencies are built.
