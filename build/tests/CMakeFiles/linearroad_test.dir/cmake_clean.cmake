file(REMOVE_RECURSE
  "CMakeFiles/linearroad_test.dir/linearroad_test.cc.o"
  "CMakeFiles/linearroad_test.dir/linearroad_test.cc.o.d"
  "linearroad_test"
  "linearroad_test.pdb"
  "linearroad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linearroad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
