file(REMOVE_RECURSE
  "CMakeFiles/adapters_test.dir/adapters_test.cc.o"
  "CMakeFiles/adapters_test.dir/adapters_test.cc.o.d"
  "adapters_test"
  "adapters_test.pdb"
  "adapters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
