# Empty compiler generated dependencies file for adapters_test.
# This may be replaced when dependencies are built.
