file(REMOVE_RECURSE
  "CMakeFiles/engine_extras_test.dir/engine_extras_test.cc.o"
  "CMakeFiles/engine_extras_test.dir/engine_extras_test.cc.o.d"
  "engine_extras_test"
  "engine_extras_test.pdb"
  "engine_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
