# Empty dependencies file for engine_extras_test.
# This may be replaced when dependencies are built.
