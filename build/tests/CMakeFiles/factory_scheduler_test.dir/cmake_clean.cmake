file(REMOVE_RECURSE
  "CMakeFiles/factory_scheduler_test.dir/factory_scheduler_test.cc.o"
  "CMakeFiles/factory_scheduler_test.dir/factory_scheduler_test.cc.o.d"
  "factory_scheduler_test"
  "factory_scheduler_test.pdb"
  "factory_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factory_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
