# Empty dependencies file for factory_scheduler_test.
# This may be replaced when dependencies are built.
