# Empty dependencies file for window_test.
# This may be replaced when dependencies are built.
