file(REMOVE_RECURSE
  "CMakeFiles/petri_test.dir/petri_test.cc.o"
  "CMakeFiles/petri_test.dir/petri_test.cc.o.d"
  "petri_test"
  "petri_test.pdb"
  "petri_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/petri_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
