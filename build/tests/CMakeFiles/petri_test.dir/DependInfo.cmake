
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/petri_test.cc" "tests/CMakeFiles/petri_test.dir/petri_test.cc.o" "gcc" "tests/CMakeFiles/petri_test.dir/petri_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mal/CMakeFiles/datacell_mal.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/datacell_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/linearroad/CMakeFiles/datacell_linearroad.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/datacell_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/datacell_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/datacell_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/adapters/CMakeFiles/datacell_adapters.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/datacell_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/datacell_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
