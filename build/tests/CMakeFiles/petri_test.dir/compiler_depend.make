# Empty compiler generated dependencies file for petri_test.
# This may be replaced when dependencies are built.
