file(REMOVE_RECURSE
  "CMakeFiles/sql_functions_test.dir/sql_functions_test.cc.o"
  "CMakeFiles/sql_functions_test.dir/sql_functions_test.cc.o.d"
  "sql_functions_test"
  "sql_functions_test.pdb"
  "sql_functions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
