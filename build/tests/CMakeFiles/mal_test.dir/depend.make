# Empty dependencies file for mal_test.
# This may be replaced when dependencies are built.
