file(REMOVE_RECURSE
  "CMakeFiles/mal_test.dir/mal_test.cc.o"
  "CMakeFiles/mal_test.dir/mal_test.cc.o.d"
  "mal_test"
  "mal_test.pdb"
  "mal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
