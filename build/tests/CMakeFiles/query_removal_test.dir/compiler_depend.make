# Empty compiler generated dependencies file for query_removal_test.
# This may be replaced when dependencies are built.
