file(REMOVE_RECURSE
  "CMakeFiles/query_removal_test.dir/query_removal_test.cc.o"
  "CMakeFiles/query_removal_test.dir/query_removal_test.cc.o.d"
  "query_removal_test"
  "query_removal_test.pdb"
  "query_removal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_removal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
