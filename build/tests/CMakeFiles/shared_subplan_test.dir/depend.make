# Empty dependencies file for shared_subplan_test.
# This may be replaced when dependencies are built.
