file(REMOVE_RECURSE
  "CMakeFiles/shared_subplan_test.dir/shared_subplan_test.cc.o"
  "CMakeFiles/shared_subplan_test.dir/shared_subplan_test.cc.o.d"
  "shared_subplan_test"
  "shared_subplan_test.pdb"
  "shared_subplan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_subplan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
