file(REMOVE_RECURSE
  "CMakeFiles/load_shedding_test.dir/load_shedding_test.cc.o"
  "CMakeFiles/load_shedding_test.dir/load_shedding_test.cc.o.d"
  "load_shedding_test"
  "load_shedding_test.pdb"
  "load_shedding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_shedding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
