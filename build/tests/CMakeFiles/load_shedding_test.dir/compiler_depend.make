# Empty compiler generated dependencies file for load_shedding_test.
# This may be replaced when dependencies are built.
