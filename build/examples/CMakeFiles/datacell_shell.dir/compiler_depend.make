# Empty compiler generated dependencies file for datacell_shell.
# This may be replaced when dependencies are built.
