file(REMOVE_RECURSE
  "CMakeFiles/datacell_shell.dir/datacell_shell.cpp.o"
  "CMakeFiles/datacell_shell.dir/datacell_shell.cpp.o.d"
  "datacell_shell"
  "datacell_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacell_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
