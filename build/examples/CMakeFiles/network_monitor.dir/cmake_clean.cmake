file(REMOVE_RECURSE
  "CMakeFiles/network_monitor.dir/network_monitor.cpp.o"
  "CMakeFiles/network_monitor.dir/network_monitor.cpp.o.d"
  "network_monitor"
  "network_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
