# Empty compiler generated dependencies file for network_monitor.
# This may be replaced when dependencies are built.
