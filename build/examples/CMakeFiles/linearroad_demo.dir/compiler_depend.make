# Empty compiler generated dependencies file for linearroad_demo.
# This may be replaced when dependencies are built.
