file(REMOVE_RECURSE
  "CMakeFiles/linearroad_demo.dir/linearroad_demo.cpp.o"
  "CMakeFiles/linearroad_demo.dir/linearroad_demo.cpp.o.d"
  "linearroad_demo"
  "linearroad_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linearroad_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
