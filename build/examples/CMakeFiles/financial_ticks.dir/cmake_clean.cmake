file(REMOVE_RECURSE
  "CMakeFiles/financial_ticks.dir/financial_ticks.cpp.o"
  "CMakeFiles/financial_ticks.dir/financial_ticks.cpp.o.d"
  "financial_ticks"
  "financial_ticks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/financial_ticks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
