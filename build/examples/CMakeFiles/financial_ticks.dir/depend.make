# Empty dependencies file for financial_ticks.
# This may be replaced when dependencies are built.
