# Empty dependencies file for live_monitor.
# This may be replaced when dependencies are built.
