
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/ast.cc" "src/sql/CMakeFiles/datacell_sql.dir/ast.cc.o" "gcc" "src/sql/CMakeFiles/datacell_sql.dir/ast.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/sql/CMakeFiles/datacell_sql.dir/binder.cc.o" "gcc" "src/sql/CMakeFiles/datacell_sql.dir/binder.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/sql/CMakeFiles/datacell_sql.dir/lexer.cc.o" "gcc" "src/sql/CMakeFiles/datacell_sql.dir/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/datacell_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/datacell_sql.dir/parser.cc.o.d"
  "/root/repo/src/sql/planner.cc" "src/sql/CMakeFiles/datacell_sql.dir/planner.cc.o" "gcc" "src/sql/CMakeFiles/datacell_sql.dir/planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algebra/CMakeFiles/datacell_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/datacell_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/datacell_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
