# Empty compiler generated dependencies file for datacell_sql.
# This may be replaced when dependencies are built.
