file(REMOVE_RECURSE
  "libdatacell_sql.a"
)
