file(REMOVE_RECURSE
  "CMakeFiles/datacell_sql.dir/ast.cc.o"
  "CMakeFiles/datacell_sql.dir/ast.cc.o.d"
  "CMakeFiles/datacell_sql.dir/binder.cc.o"
  "CMakeFiles/datacell_sql.dir/binder.cc.o.d"
  "CMakeFiles/datacell_sql.dir/lexer.cc.o"
  "CMakeFiles/datacell_sql.dir/lexer.cc.o.d"
  "CMakeFiles/datacell_sql.dir/parser.cc.o"
  "CMakeFiles/datacell_sql.dir/parser.cc.o.d"
  "CMakeFiles/datacell_sql.dir/planner.cc.o"
  "CMakeFiles/datacell_sql.dir/planner.cc.o.d"
  "libdatacell_sql.a"
  "libdatacell_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacell_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
