file(REMOVE_RECURSE
  "CMakeFiles/datacell_mal.dir/mal.cc.o"
  "CMakeFiles/datacell_mal.dir/mal.cc.o.d"
  "libdatacell_mal.a"
  "libdatacell_mal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacell_mal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
