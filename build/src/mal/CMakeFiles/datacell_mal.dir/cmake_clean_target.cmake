file(REMOVE_RECURSE
  "libdatacell_mal.a"
)
