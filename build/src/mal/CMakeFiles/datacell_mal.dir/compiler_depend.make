# Empty compiler generated dependencies file for datacell_mal.
# This may be replaced when dependencies are built.
