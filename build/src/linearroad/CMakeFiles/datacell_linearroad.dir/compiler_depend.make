# Empty compiler generated dependencies file for datacell_linearroad.
# This may be replaced when dependencies are built.
