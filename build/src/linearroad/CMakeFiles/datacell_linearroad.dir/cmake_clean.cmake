file(REMOVE_RECURSE
  "CMakeFiles/datacell_linearroad.dir/driver.cc.o"
  "CMakeFiles/datacell_linearroad.dir/driver.cc.o.d"
  "CMakeFiles/datacell_linearroad.dir/generator.cc.o"
  "CMakeFiles/datacell_linearroad.dir/generator.cc.o.d"
  "CMakeFiles/datacell_linearroad.dir/history.cc.o"
  "CMakeFiles/datacell_linearroad.dir/history.cc.o.d"
  "CMakeFiles/datacell_linearroad.dir/queries.cc.o"
  "CMakeFiles/datacell_linearroad.dir/queries.cc.o.d"
  "libdatacell_linearroad.a"
  "libdatacell_linearroad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacell_linearroad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
