file(REMOVE_RECURSE
  "libdatacell_linearroad.a"
)
