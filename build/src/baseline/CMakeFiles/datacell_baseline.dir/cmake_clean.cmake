file(REMOVE_RECURSE
  "CMakeFiles/datacell_baseline.dir/row_eval.cc.o"
  "CMakeFiles/datacell_baseline.dir/row_eval.cc.o.d"
  "CMakeFiles/datacell_baseline.dir/tuple_engine.cc.o"
  "CMakeFiles/datacell_baseline.dir/tuple_engine.cc.o.d"
  "libdatacell_baseline.a"
  "libdatacell_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacell_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
