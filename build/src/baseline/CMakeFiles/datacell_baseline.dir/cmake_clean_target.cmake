file(REMOVE_RECURSE
  "libdatacell_baseline.a"
)
