# Empty dependencies file for datacell_baseline.
# This may be replaced when dependencies are built.
