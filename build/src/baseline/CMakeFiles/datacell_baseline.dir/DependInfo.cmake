
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/row_eval.cc" "src/baseline/CMakeFiles/datacell_baseline.dir/row_eval.cc.o" "gcc" "src/baseline/CMakeFiles/datacell_baseline.dir/row_eval.cc.o.d"
  "/root/repo/src/baseline/tuple_engine.cc" "src/baseline/CMakeFiles/datacell_baseline.dir/tuple_engine.cc.o" "gcc" "src/baseline/CMakeFiles/datacell_baseline.dir/tuple_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algebra/CMakeFiles/datacell_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/datacell_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/datacell_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
