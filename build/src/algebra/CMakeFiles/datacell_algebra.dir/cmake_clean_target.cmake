file(REMOVE_RECURSE
  "libdatacell_algebra.a"
)
