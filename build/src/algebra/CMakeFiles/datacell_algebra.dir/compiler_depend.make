# Empty compiler generated dependencies file for datacell_algebra.
# This may be replaced when dependencies are built.
