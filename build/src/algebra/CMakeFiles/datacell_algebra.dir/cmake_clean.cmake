file(REMOVE_RECURSE
  "CMakeFiles/datacell_algebra.dir/expression.cc.o"
  "CMakeFiles/datacell_algebra.dir/expression.cc.o.d"
  "CMakeFiles/datacell_algebra.dir/interpreter.cc.o"
  "CMakeFiles/datacell_algebra.dir/interpreter.cc.o.d"
  "CMakeFiles/datacell_algebra.dir/operators.cc.o"
  "CMakeFiles/datacell_algebra.dir/operators.cc.o.d"
  "CMakeFiles/datacell_algebra.dir/plan.cc.o"
  "CMakeFiles/datacell_algebra.dir/plan.cc.o.d"
  "libdatacell_algebra.a"
  "libdatacell_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacell_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
