
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/expression.cc" "src/algebra/CMakeFiles/datacell_algebra.dir/expression.cc.o" "gcc" "src/algebra/CMakeFiles/datacell_algebra.dir/expression.cc.o.d"
  "/root/repo/src/algebra/interpreter.cc" "src/algebra/CMakeFiles/datacell_algebra.dir/interpreter.cc.o" "gcc" "src/algebra/CMakeFiles/datacell_algebra.dir/interpreter.cc.o.d"
  "/root/repo/src/algebra/operators.cc" "src/algebra/CMakeFiles/datacell_algebra.dir/operators.cc.o" "gcc" "src/algebra/CMakeFiles/datacell_algebra.dir/operators.cc.o.d"
  "/root/repo/src/algebra/plan.cc" "src/algebra/CMakeFiles/datacell_algebra.dir/plan.cc.o" "gcc" "src/algebra/CMakeFiles/datacell_algebra.dir/plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/datacell_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/datacell_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
