file(REMOVE_RECURSE
  "libdatacell_storage.a"
)
