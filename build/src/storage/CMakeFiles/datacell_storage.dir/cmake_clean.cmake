file(REMOVE_RECURSE
  "CMakeFiles/datacell_storage.dir/bat.cc.o"
  "CMakeFiles/datacell_storage.dir/bat.cc.o.d"
  "CMakeFiles/datacell_storage.dir/catalog.cc.o"
  "CMakeFiles/datacell_storage.dir/catalog.cc.o.d"
  "CMakeFiles/datacell_storage.dir/schema.cc.o"
  "CMakeFiles/datacell_storage.dir/schema.cc.o.d"
  "CMakeFiles/datacell_storage.dir/table.cc.o"
  "CMakeFiles/datacell_storage.dir/table.cc.o.d"
  "CMakeFiles/datacell_storage.dir/types.cc.o"
  "CMakeFiles/datacell_storage.dir/types.cc.o.d"
  "libdatacell_storage.a"
  "libdatacell_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacell_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
