# Empty compiler generated dependencies file for datacell_storage.
# This may be replaced when dependencies are built.
