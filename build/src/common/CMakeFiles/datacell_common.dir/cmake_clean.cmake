file(REMOVE_RECURSE
  "CMakeFiles/datacell_common.dir/clock.cc.o"
  "CMakeFiles/datacell_common.dir/clock.cc.o.d"
  "CMakeFiles/datacell_common.dir/logging.cc.o"
  "CMakeFiles/datacell_common.dir/logging.cc.o.d"
  "CMakeFiles/datacell_common.dir/metrics.cc.o"
  "CMakeFiles/datacell_common.dir/metrics.cc.o.d"
  "CMakeFiles/datacell_common.dir/random.cc.o"
  "CMakeFiles/datacell_common.dir/random.cc.o.d"
  "CMakeFiles/datacell_common.dir/status.cc.o"
  "CMakeFiles/datacell_common.dir/status.cc.o.d"
  "CMakeFiles/datacell_common.dir/string_util.cc.o"
  "CMakeFiles/datacell_common.dir/string_util.cc.o.d"
  "libdatacell_common.a"
  "libdatacell_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacell_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
