file(REMOVE_RECURSE
  "libdatacell_common.a"
)
