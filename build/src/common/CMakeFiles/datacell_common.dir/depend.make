# Empty dependencies file for datacell_common.
# This may be replaced when dependencies are built.
