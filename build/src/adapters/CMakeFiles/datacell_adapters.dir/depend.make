# Empty dependencies file for datacell_adapters.
# This may be replaced when dependencies are built.
