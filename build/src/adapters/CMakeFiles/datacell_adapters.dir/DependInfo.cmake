
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapters/channel.cc" "src/adapters/CMakeFiles/datacell_adapters.dir/channel.cc.o" "gcc" "src/adapters/CMakeFiles/datacell_adapters.dir/channel.cc.o.d"
  "/root/repo/src/adapters/csv.cc" "src/adapters/CMakeFiles/datacell_adapters.dir/csv.cc.o" "gcc" "src/adapters/CMakeFiles/datacell_adapters.dir/csv.cc.o.d"
  "/root/repo/src/adapters/generator.cc" "src/adapters/CMakeFiles/datacell_adapters.dir/generator.cc.o" "gcc" "src/adapters/CMakeFiles/datacell_adapters.dir/generator.cc.o.d"
  "/root/repo/src/adapters/replayer.cc" "src/adapters/CMakeFiles/datacell_adapters.dir/replayer.cc.o" "gcc" "src/adapters/CMakeFiles/datacell_adapters.dir/replayer.cc.o.d"
  "/root/repo/src/adapters/sink.cc" "src/adapters/CMakeFiles/datacell_adapters.dir/sink.cc.o" "gcc" "src/adapters/CMakeFiles/datacell_adapters.dir/sink.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/datacell_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/datacell_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
