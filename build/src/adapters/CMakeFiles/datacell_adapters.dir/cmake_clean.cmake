file(REMOVE_RECURSE
  "CMakeFiles/datacell_adapters.dir/channel.cc.o"
  "CMakeFiles/datacell_adapters.dir/channel.cc.o.d"
  "CMakeFiles/datacell_adapters.dir/csv.cc.o"
  "CMakeFiles/datacell_adapters.dir/csv.cc.o.d"
  "CMakeFiles/datacell_adapters.dir/generator.cc.o"
  "CMakeFiles/datacell_adapters.dir/generator.cc.o.d"
  "CMakeFiles/datacell_adapters.dir/replayer.cc.o"
  "CMakeFiles/datacell_adapters.dir/replayer.cc.o.d"
  "CMakeFiles/datacell_adapters.dir/sink.cc.o"
  "CMakeFiles/datacell_adapters.dir/sink.cc.o.d"
  "libdatacell_adapters.a"
  "libdatacell_adapters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacell_adapters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
