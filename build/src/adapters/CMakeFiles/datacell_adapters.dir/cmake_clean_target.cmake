file(REMOVE_RECURSE
  "libdatacell_adapters.a"
)
