file(REMOVE_RECURSE
  "CMakeFiles/datacell_core.dir/basket.cc.o"
  "CMakeFiles/datacell_core.dir/basket.cc.o.d"
  "CMakeFiles/datacell_core.dir/emitter.cc.o"
  "CMakeFiles/datacell_core.dir/emitter.cc.o.d"
  "CMakeFiles/datacell_core.dir/engine.cc.o"
  "CMakeFiles/datacell_core.dir/engine.cc.o.d"
  "CMakeFiles/datacell_core.dir/factory.cc.o"
  "CMakeFiles/datacell_core.dir/factory.cc.o.d"
  "CMakeFiles/datacell_core.dir/petri.cc.o"
  "CMakeFiles/datacell_core.dir/petri.cc.o.d"
  "CMakeFiles/datacell_core.dir/receptor.cc.o"
  "CMakeFiles/datacell_core.dir/receptor.cc.o.d"
  "CMakeFiles/datacell_core.dir/scheduler.cc.o"
  "CMakeFiles/datacell_core.dir/scheduler.cc.o.d"
  "CMakeFiles/datacell_core.dir/shared_filter.cc.o"
  "CMakeFiles/datacell_core.dir/shared_filter.cc.o.d"
  "CMakeFiles/datacell_core.dir/window.cc.o"
  "CMakeFiles/datacell_core.dir/window.cc.o.d"
  "libdatacell_core.a"
  "libdatacell_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacell_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
