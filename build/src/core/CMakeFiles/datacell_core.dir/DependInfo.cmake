
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/basket.cc" "src/core/CMakeFiles/datacell_core.dir/basket.cc.o" "gcc" "src/core/CMakeFiles/datacell_core.dir/basket.cc.o.d"
  "/root/repo/src/core/emitter.cc" "src/core/CMakeFiles/datacell_core.dir/emitter.cc.o" "gcc" "src/core/CMakeFiles/datacell_core.dir/emitter.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/datacell_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/datacell_core.dir/engine.cc.o.d"
  "/root/repo/src/core/factory.cc" "src/core/CMakeFiles/datacell_core.dir/factory.cc.o" "gcc" "src/core/CMakeFiles/datacell_core.dir/factory.cc.o.d"
  "/root/repo/src/core/petri.cc" "src/core/CMakeFiles/datacell_core.dir/petri.cc.o" "gcc" "src/core/CMakeFiles/datacell_core.dir/petri.cc.o.d"
  "/root/repo/src/core/receptor.cc" "src/core/CMakeFiles/datacell_core.dir/receptor.cc.o" "gcc" "src/core/CMakeFiles/datacell_core.dir/receptor.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/datacell_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/datacell_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/shared_filter.cc" "src/core/CMakeFiles/datacell_core.dir/shared_filter.cc.o" "gcc" "src/core/CMakeFiles/datacell_core.dir/shared_filter.cc.o.d"
  "/root/repo/src/core/window.cc" "src/core/CMakeFiles/datacell_core.dir/window.cc.o" "gcc" "src/core/CMakeFiles/datacell_core.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/datacell_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/adapters/CMakeFiles/datacell_adapters.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/datacell_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/datacell_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/datacell_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
