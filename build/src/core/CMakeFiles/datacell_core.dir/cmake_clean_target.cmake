file(REMOVE_RECURSE
  "libdatacell_core.a"
)
