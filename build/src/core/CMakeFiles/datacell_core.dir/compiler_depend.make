# Empty compiler generated dependencies file for datacell_core.
# This may be replaced when dependencies are built.
