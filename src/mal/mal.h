#ifndef DATACELL_MAL_MAL_H_
#define DATACELL_MAL_MAL_H_

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "core/basket.h"
#include "core/transition.h"

namespace datacell {
namespace mal {

/// A miniature MAL — MonetDB's assembly language — sufficient to write the
/// paper's Algorithm 1 by hand:
///
///     input := basket.bind("X");
///     output := basket.bind("Y");
///     basket.lock(input);
///     basket.lock(output);
///     result := algebra.select(input, "v", 10, 20);
///     basket.empty(input);
///     basket.append(output, result);
///     basket.unlock(input);
///     basket.unlock(output);
///     suspend();
///
/// One statement per line: `var := module.fn(args);` or `module.fn(args);`.
/// Arguments are variables, quoted strings, integer or float literals.
/// Comments run from '#' to end of line.
///
/// Supported operations:
///   basket.bind("name")            -> basket handle (from the context)
///   basket.peek(b)                 -> table snapshot (non-consuming)
///   basket.drain(b)                -> table, emptying the basket
///   basket.empty(b)                   clears the basket
///   basket.append(b, t)               appends a table (with ts column)
///   basket.lock(b) / basket.unlock(b) accepted no-ops: baskets are
///                                     monitor-style, each op is atomic
///   algebra.select(t, "col", lo, hi) -> rows with col in [lo, hi]
///   algebra.project(t, "c1", ...)  -> column subset
///   algebra.join(t1, "c1", t2, "c2") -> equi-join
///   aggr.count(t) / aggr.sum(t, "c") / aggr.min / aggr.max / aggr.avg
///                                  -> 1x1 table
///   io.print(t)                       renders into the context's output log
///   suspend()                         ends this activation (Algorithm 1's
///                                     yield back to the scheduler)
class Program;
using ProgramPtr = std::shared_ptr<const Program>;

/// One parsed instruction.
struct Instruction {
  std::string result;  // assigned variable; empty for statements
  std::string module;  // "basket", "algebra", "aggr", "io", "" for suspend
  std::string function;
  struct Arg {
    enum class Kind { kVariable, kString, kInt, kFloat } kind = Kind::kInt;
    std::string text;  // variable name or string literal
    int64_t int_value = 0;
    double float_value = 0;
  };
  std::vector<Arg> args;
  int line = 0;  // 1-based source line, for diagnostics
};

class Program {
 public:
  /// Parses a program; fails with the offending line number on bad syntax.
  static Result<ProgramPtr> Parse(const std::string& text);

  const std::vector<Instruction>& instructions() const { return instrs_; }
  /// Canonical listing of the parsed program.
  std::string ToString() const;

 private:
  std::vector<Instruction> instrs_;
};

/// Execution context: the baskets a program may bind plus the print log.
struct Context {
  std::map<std::string, BasketPtr> baskets;
  std::vector<std::string> printed;  // io.print output, one entry per call
};

/// Runs `program` once against `context` — one factory activation: executes
/// until `suspend()` or the end of the program.
Status Run(const Program& program, Context* context);

/// A hand-written MAL factory: a Petri-net transition whose Fire() runs the
/// program once, exactly as Algorithm 1's loop body (the infinite loop and
/// suspension are supplied by the scheduler).
class MalFactory final : public Transition {
 public:
  /// `input` gates readiness; the program usually binds more baskets from
  /// `context`. The context must outlive the factory.
  MalFactory(std::string name, ProgramPtr program, Context* context,
             BasketPtr input, const Clock* clock);

  bool Ready() const override;
  int64_t Backlog() const override;
  Result<int64_t> Fire() override;

 private:
  ProgramPtr program_;
  Context* context_;
  BasketPtr input_;
  const Clock* clock_;
};

}  // namespace mal
}  // namespace datacell

#endif  // DATACELL_MAL_MAL_H_
