#include "mal/mal.h"

#include <cctype>

#include "algebra/operators.h"
#include "common/check.h"
#include "common/string_util.h"

namespace datacell {
namespace mal {

namespace {

Status ParseErrorAt(int line, const std::string& msg) {
  return Status::ParseError("line " + std::to_string(line) + ": " + msg);
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses one argument from `s` at `*pos`.
Result<Instruction::Arg> ParseArg(const std::string& s, size_t* pos, int line) {
  Instruction::Arg arg;
  size_t i = *pos;
  if (i >= s.size()) return ParseErrorAt(line, "missing argument");
  if (s[i] == '"') {
    ++i;
    std::string text;
    while (i < s.size() && s[i] != '"') text.push_back(s[i++]);
    if (i >= s.size()) return ParseErrorAt(line, "unterminated string");
    ++i;
    arg.kind = Instruction::Arg::Kind::kString;
    arg.text = std::move(text);
    *pos = i;
    return arg;
  }
  if (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '-' ||
      s[i] == '.') {
    size_t start = i;
    if (s[i] == '-') ++i;
    bool is_float = false;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' ||
            ((s[i] == '+' || s[i] == '-') &&
             (s[i - 1] == 'e' || s[i - 1] == 'E')))) {
      if (s[i] == '.' || s[i] == 'e' || s[i] == 'E') is_float = true;
      ++i;
    }
    std::string text = s.substr(start, i - start);
    if (is_float) {
      DC_ASSIGN_OR_RETURN(arg.float_value, ParseDouble(text));
      arg.kind = Instruction::Arg::Kind::kFloat;
    } else {
      DC_ASSIGN_OR_RETURN(arg.int_value, ParseInt64(text));
      arg.kind = Instruction::Arg::Kind::kInt;
    }
    arg.text = std::move(text);
    *pos = i;
    return arg;
  }
  if (IsIdentChar(s[i])) {
    size_t start = i;
    while (i < s.size() && IsIdentChar(s[i])) ++i;
    arg.kind = Instruction::Arg::Kind::kVariable;
    arg.text = s.substr(start, i - start);
    *pos = i;
    return arg;
  }
  return ParseErrorAt(line, std::string("unexpected character '") + s[i] + "'");
}

void SkipSpace(const std::string& s, size_t* pos) {
  while (*pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[*pos]))) {
    ++*pos;
  }
}

}  // namespace

Result<ProgramPtr> Program::Parse(const std::string& text) {
  auto program = std::make_shared<Program>(Program{});
  int line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string line(raw.substr(0, raw.find('#')));  // strip comments
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::string stmt(trimmed);
    if (stmt.back() == ';') stmt.pop_back();

    Instruction instr;
    instr.line = line_no;
    size_t pos = 0;
    SkipSpace(stmt, &pos);

    // Optional "var :=".
    size_t assign = stmt.find(":=");
    size_t callee_start = pos;
    if (assign != std::string::npos) {
      std::string lhs(Trim(stmt.substr(0, assign)));
      if (lhs.empty()) return ParseErrorAt(line_no, "empty assignment target");
      for (char c : lhs) {
        if (!IsIdentChar(c)) {
          return ParseErrorAt(line_no, "bad variable name '" + lhs + "'");
        }
      }
      instr.result = lhs;
      callee_start = assign + 2;
    }
    std::string rest(Trim(stmt.substr(callee_start)));

    // "module.fn(args)" or "suspend()".
    size_t paren = rest.find('(');
    if (paren == std::string::npos || rest.back() != ')') {
      return ParseErrorAt(line_no, "expected call syntax 'module.fn(...)'");
    }
    std::string callee(Trim(rest.substr(0, paren)));
    size_t dot = callee.find('.');
    if (dot == std::string::npos) {
      instr.function = callee;  // e.g. suspend
    } else {
      instr.module = callee.substr(0, dot);
      instr.function = callee.substr(dot + 1);
    }
    std::string args = rest.substr(paren + 1, rest.size() - paren - 2);
    size_t apos = 0;
    SkipSpace(args, &apos);
    while (apos < args.size()) {
      DC_ASSIGN_OR_RETURN(Instruction::Arg arg, ParseArg(args, &apos, line_no));
      instr.args.push_back(std::move(arg));
      SkipSpace(args, &apos);
      if (apos < args.size()) {
        if (args[apos] != ',') {
          return ParseErrorAt(line_no, "expected ',' between arguments");
        }
        ++apos;
        SkipSpace(args, &apos);
      }
    }
    program->instrs_.push_back(std::move(instr));
  }
  return ProgramPtr(program);
}

std::string Program::ToString() const {
  std::string out;
  for (const Instruction& i : instrs_) {
    if (!i.result.empty()) out += i.result + " := ";
    if (!i.module.empty()) out += i.module + ".";
    out += i.function + "(";
    for (size_t a = 0; a < i.args.size(); ++a) {
      if (a > 0) out += ", ";
      const auto& arg = i.args[a];
      if (arg.kind == Instruction::Arg::Kind::kString) {
        out += "\"" + arg.text + "\"";
      } else {
        out += arg.text;
      }
    }
    out += ");\n";
  }
  return out;
}

namespace {

/// Runtime value of a MAL variable.
using MalValue = std::variant<BasketPtr, TablePtr>;

struct Vm {
  const Program& program;
  Context* context;
  std::map<std::string, MalValue> vars;

  Status Fail(const Instruction& i, const std::string& msg) {
    return Status::InvalidArgument("line " + std::to_string(i.line) + " (" +
                                   i.module + "." + i.function + "): " + msg);
  }

  Result<MalValue> Lookup(const Instruction& i, const Instruction::Arg& a) {
    if (a.kind != Instruction::Arg::Kind::kVariable) {
      return Fail(i, "expected a variable argument");
    }
    auto it = vars.find(a.text);
    if (it == vars.end()) {
      return Fail(i, "unknown variable '" + a.text + "'");
    }
    return it->second;
  }

  Result<BasketPtr> BasketArg(const Instruction& i, size_t idx) {
    if (idx >= i.args.size()) return Fail(i, "missing argument");
    DC_ASSIGN_OR_RETURN(MalValue v, Lookup(i, i.args[idx]));
    if (!std::holds_alternative<BasketPtr>(v)) {
      return Fail(i, "argument " + std::to_string(idx) + " is not a basket");
    }
    return std::get<BasketPtr>(v);
  }

  Result<TablePtr> TableArg(const Instruction& i, size_t idx) {
    if (idx >= i.args.size()) return Fail(i, "missing argument");
    DC_ASSIGN_OR_RETURN(MalValue v, Lookup(i, i.args[idx]));
    if (std::holds_alternative<TablePtr>(v)) return std::get<TablePtr>(v);
    // A basket in a table position reads as a snapshot (inspection).
    return std::get<BasketPtr>(v)->PeekSnapshot();
  }

  Result<std::string> StringArg(const Instruction& i, size_t idx) {
    if (idx >= i.args.size()) return Fail(i, "missing argument");
    if (i.args[idx].kind != Instruction::Arg::Kind::kString) {
      return Fail(i, "argument " + std::to_string(idx) + " must be a string");
    }
    return i.args[idx].text;
  }

  Result<size_t> ColumnIndex(const Instruction& i, const Table& t,
                             const std::string& name) {
    auto idx = t.schema().IndexOf(name);
    if (!idx.has_value()) {
      return Fail(i, "no column '" + name + "'");
    }
    return *idx;
  }

  Status Assign(const Instruction& i, MalValue v) {
    if (i.result.empty()) {
      return Fail(i, "this operation produces a result; assign it");
    }
    vars[i.result] = std::move(v);
    return Status::OK();
  }

  Result<bool> Execute(const Instruction& i);  // true = suspend reached
};

Result<bool> Vm::Execute(const Instruction& i) {
  const std::string& m = i.module;
  const std::string& f = i.function;
  if (m.empty() && f == "suspend") return true;

  if (m == "basket") {
    if (f == "bind") {
      DC_ASSIGN_OR_RETURN(std::string name, StringArg(i, 0));
      auto it = context->baskets.find(name);
      if (it == context->baskets.end()) {
        return Fail(i, "no basket '" + name + "' in the context");
      }
      DC_RETURN_NOT_OK(Assign(i, it->second));
      return false;
    }
    if (f == "peek" || f == "drain") {
      DC_ASSIGN_OR_RETURN(BasketPtr b, BasketArg(i, 0));
      DC_RETURN_NOT_OK(
          Assign(i, f == "peek" ? b->PeekSnapshot() : b->DrainAll()));
      return false;
    }
    if (f == "empty") {
      DC_ASSIGN_OR_RETURN(BasketPtr b, BasketArg(i, 0));
      b->DrainAll();
      return false;
    }
    if (f == "append") {
      DC_ASSIGN_OR_RETURN(BasketPtr b, BasketArg(i, 0));
      DC_ASSIGN_OR_RETURN(TablePtr t, TableArg(i, 1));
      DC_RETURN_NOT_OK(b->AppendWithTs(*t));
      return false;
    }
    if (f == "lock" || f == "unlock") {
      // Accepted for Algorithm 1 fidelity; baskets are monitor-style, so
      // every operation is already atomic.
      DC_RETURN_NOT_OK(BasketArg(i, 0).status());
      return false;
    }
  }

  if (m == "algebra") {
    if (f == "select") {
      DC_ASSIGN_OR_RETURN(TablePtr t, TableArg(i, 0));
      DC_ASSIGN_OR_RETURN(std::string col, StringArg(i, 1));
      DC_ASSIGN_OR_RETURN(size_t c, ColumnIndex(i, *t, col));
      if (i.args.size() != 4) {
        return Fail(i, "algebra.select(t, \"col\", lo, hi)");
      }
      const Bat& b = *t->column(c);
      std::vector<size_t> positions;
      auto numeric = [](const Instruction::Arg& a) {
        return a.kind == Instruction::Arg::Kind::kFloat
                   ? a.float_value
                   : static_cast<double>(a.int_value);
      };
      if (b.type() == DataType::kDouble) {
        positions = SelectRangeDouble(b, numeric(i.args[2]), numeric(i.args[3]));
      } else if (IsIntegerBacked(b.type())) {
        positions = SelectRangeInt64(
            b, static_cast<int64_t>(numeric(i.args[2])),
            static_cast<int64_t>(numeric(i.args[3])));
      } else {
        return Fail(i, "select needs a numeric column");
      }
      DC_RETURN_NOT_OK(Assign(i, TablePtr(t->Take(positions))));
      return false;
    }
    if (f == "project") {
      DC_ASSIGN_OR_RETURN(TablePtr t, TableArg(i, 0));
      Schema schema;
      std::vector<size_t> cols;
      for (size_t a = 1; a < i.args.size(); ++a) {
        DC_ASSIGN_OR_RETURN(std::string col, StringArg(i, a));
        DC_ASSIGN_OR_RETURN(size_t c, ColumnIndex(i, *t, col));
        cols.push_back(c);
        schema.AddField(t->schema().field(c));
      }
      auto out = std::make_shared<Table>("", schema);
      for (size_t k = 0; k < cols.size(); ++k) {
        out->column(k)->AppendBat(*t->column(cols[k]));
      }
      DC_RETURN_NOT_OK(Assign(i, std::move(out)));
      return false;
    }
    if (f == "join") {
      DC_ASSIGN_OR_RETURN(TablePtr l, TableArg(i, 0));
      DC_ASSIGN_OR_RETURN(std::string lc, StringArg(i, 1));
      DC_ASSIGN_OR_RETURN(TablePtr r, TableArg(i, 2));
      DC_ASSIGN_OR_RETURN(std::string rc, StringArg(i, 3));
      DC_ASSIGN_OR_RETURN(size_t li, ColumnIndex(i, *l, lc));
      DC_ASSIGN_OR_RETURN(size_t ri, ColumnIndex(i, *r, rc));
      DC_ASSIGN_OR_RETURN(JoinResult jr,
                          HashJoin(*l->column(li), *r->column(ri)));
      Schema schema;
      for (const Field& fld : l->schema().fields()) schema.AddField(fld);
      for (const Field& fld : r->schema().fields()) schema.AddField(fld);
      auto out = std::make_shared<Table>("", schema);
      for (size_t c = 0; c < l->num_columns(); ++c) {
        out->column(c)->AppendPositions(*l->column(c), jr.left_positions);
      }
      for (size_t c = 0; c < r->num_columns(); ++c) {
        out->column(l->num_columns() + c)
            ->AppendPositions(*r->column(c), jr.right_positions);
      }
      DC_RETURN_NOT_OK(Assign(i, std::move(out)));
      return false;
    }
  }

  if (m == "aggr") {
    DC_ASSIGN_OR_RETURN(TablePtr t, TableArg(i, 0));
    AggFunc func;
    if (f == "count") {
      func = AggFunc::kCount;
    } else if (f == "sum") {
      func = AggFunc::kSum;
    } else if (f == "min") {
      func = AggFunc::kMin;
    } else if (f == "max") {
      func = AggFunc::kMax;
    } else if (f == "avg") {
      func = AggFunc::kAvg;
    } else {
      return Fail(i, "unknown aggregate '" + f + "'");
    }
    Value v;
    if (func == AggFunc::kCount && i.args.size() == 1) {
      v = Value::Int64(static_cast<int64_t>(t->num_rows()));
    } else {
      DC_ASSIGN_OR_RETURN(std::string col, StringArg(i, 1));
      DC_ASSIGN_OR_RETURN(size_t c, ColumnIndex(i, *t, col));
      DC_ASSIGN_OR_RETURN(AggPartial p, AggregateAll(*t->column(c), nullptr));
      v = p.Finalize(func);
    }
    Schema schema({{f, v.is_null() || v.is_double() ? DataType::kDouble
                                                    : DataType::kInt64}});
    auto out = std::make_shared<Table>("", schema);
    DC_RETURN_NOT_OK(out->AppendRow({v}));
    DC_RETURN_NOT_OK(Assign(i, std::move(out)));
    return false;
  }

  if (m == "io" && f == "print") {
    DC_ASSIGN_OR_RETURN(TablePtr t, TableArg(i, 0));
    context->printed.push_back(t->ToString());
    return false;
  }

  return Fail(i, "unknown operation");
}

}  // namespace

Status Run(const Program& program, Context* context) {
  Vm vm{program, context, {}};
  for (const Instruction& i : program.instructions()) {
    DC_ASSIGN_OR_RETURN(bool suspended, vm.Execute(i));
    if (suspended) break;
  }
  return Status::OK();
}

MalFactory::MalFactory(std::string name, ProgramPtr program, Context* context,
                       BasketPtr input, const Clock* clock)
    : Transition(std::move(name), TransitionKind::kFactory),
      program_(std::move(program)),
      context_(context),
      input_(std::move(input)),
      clock_(clock) {
  DC_CHECK(program_ != nullptr);
  DC_CHECK(context_ != nullptr);
  DC_CHECK(input_ != nullptr);
  DC_CHECK(clock_ != nullptr);
}

bool MalFactory::Ready() const { return !input_->empty(); }

int64_t MalFactory::Backlog() const {
  return static_cast<int64_t>(input_->size());
}

Result<int64_t> MalFactory::Fire() {
  Timestamp start = clock_->Now();
  int64_t waiting = static_cast<int64_t>(input_->size());
  DC_RETURN_NOT_OK(Run(*program_, context_));
  RecordRun(waiting, clock_->Now() - start);
  return waiting;
}

}  // namespace mal
}  // namespace datacell
