#include "sql/ast.h"

namespace datacell {
namespace sql {

namespace {

const char* BinOpStr(AstBinaryOp op) {
  switch (op) {
    case AstBinaryOp::kAdd:
      return "+";
    case AstBinaryOp::kSub:
      return "-";
    case AstBinaryOp::kMul:
      return "*";
    case AstBinaryOp::kDiv:
      return "/";
    case AstBinaryOp::kMod:
      return "%";
    case AstBinaryOp::kEq:
      return "=";
    case AstBinaryOp::kNe:
      return "<>";
    case AstBinaryOp::kLt:
      return "<";
    case AstBinaryOp::kLe:
      return "<=";
    case AstBinaryOp::kGt:
      return ">";
    case AstBinaryOp::kGe:
      return ">=";
    case AstBinaryOp::kAnd:
      return "and";
    case AstBinaryOp::kOr:
      return "or";
    case AstBinaryOp::kLike:
      return "like";
  }
  return "?";
}

}  // namespace

bool IsAggregateFuncName(const std::string& lower_name) {
  return lower_name == "count" || lower_name == "sum" ||
         lower_name == "min" || lower_name == "max" || lower_name == "avg";
}

AstExprPtr AstExpr::Clone() const {
  auto e = std::make_unique<AstExpr>();
  e->kind = kind;
  e->qualifier = qualifier;
  e->column = column;
  e->literal = literal;
  e->binary_op = binary_op;
  e->unary_op = unary_op;
  e->func_name = func_name;
  e->star = star;
  e->line = line;
  e->col = col;
  for (const AstExprPtr& c : children) {
    e->children.push_back(c == nullptr ? nullptr : c->Clone());
  }
  return e;
}

std::string AstExpr::ToString() const {
  switch (kind) {
    case AstExprKind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case AstExprKind::kLiteral: {
      if (literal.is_null()) return "null";
      if (!literal.is_string()) return literal.ToString();
      // Built by append: one-char-literal operator+ chains trip GCC 12's
      // -Wrestrict false positive (PR105329) inside libstdc++.
      std::string quoted = "'";
      quoted += literal.ToString();
      quoted += '\'';
      return quoted;
    }
    case AstExprKind::kBinary: {
      std::string s = "(";
      s += children[0]->ToString();
      s += ' ';
      s += BinOpStr(binary_op);
      s += ' ';
      s += children[1]->ToString();
      s += ')';
      return s;
    }
    case AstExprKind::kUnary: {
      // Append style, like kBinary above (GCC 12 -Wrestrict, PR105329).
      std::string s;
      switch (unary_op) {
        case AstUnaryOp::kNot:
          s = "not (";
          s += children[0]->ToString();
          s += ')';
          return s;
        case AstUnaryOp::kNeg:
          s = "-(";
          s += children[0]->ToString();
          s += ')';
          return s;
        case AstUnaryOp::kIsNull:
          s = "(";
          s += children[0]->ToString();
          s += " is null)";
          return s;
        case AstUnaryOp::kIsNotNull:
          s = "(";
          s += children[0]->ToString();
          s += " is not null)";
          return s;
      }
      return "?";
    }
    case AstExprKind::kCase: {
      std::string s = "case";
      size_t branches = (children.size() - 1) / 2;
      for (size_t i = 0; i < branches; ++i) {
        s += " when " + children[2 * i]->ToString() + " then " +
             children[2 * i + 1]->ToString();
      }
      return s + " else " + children.back()->ToString() + " end";
    }
    case AstExprKind::kFuncCall: {
      std::string s = func_name + "(";
      if (star) {
        s += "*";
      } else {
        for (size_t i = 0; i < children.size(); ++i) {
          if (i > 0) s += ", ";
          s += children[i]->ToString();
        }
      }
      return s + ")";
    }
  }
  return "?";
}

bool SelectStmt::IsContinuous() const {
  for (const TableRef& ref : from) {
    if (ref.is_basket_expr()) return true;
  }
  return false;
}

}  // namespace sql
}  // namespace datacell
