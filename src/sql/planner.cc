#include "sql/planner.h"

#include <map>

#include "common/string_util.h"
#include "sql/binder.h"

namespace datacell {
namespace sql {

namespace {

/// One FROM source after resolution: its plan fragment and exposed schema.
struct Source {
  std::string qualifier;
  Schema schema;
  PlanPtr plan;
};

Result<AggFunc> AggFuncFromName(const std::string& name) {
  if (name == "count") return AggFunc::kCount;
  if (name == "sum") return AggFunc::kSum;
  if (name == "min") return AggFunc::kMin;
  if (name == "max") return AggFunc::kMax;
  if (name == "avg") return AggFunc::kAvg;
  return Status::InvalidArgument("unknown aggregate function '" + name + "'");
}

/// Structural signature of an aggregate call, used to match HAVING /
/// ORDER BY aggregates against the ones computed for the select list.
std::string AggSignature(const AstExpr& call) {
  std::string s = call.func_name + "(";
  s += call.star ? "*" : ToLower(call.children[0]->ToString());
  return s + ")";
}

/// Output column name for a select item without an alias.
std::string DefaultItemName(const AstExpr& e) {
  if (e.kind == AstExprKind::kColumnRef) return e.column;
  return ToLower(e.ToString());
}

/// Planner implementation for a single SELECT. Builds, in order:
///   sources -> joins -> WHERE filter -> [aggregate] -> HAVING -> projection
///   -> DISTINCT -> ORDER BY -> LIMIT.
class SelectCompiler {
 public:
  SelectCompiler(const Catalog* catalog, const SelectStmt& stmt)
      : catalog_(catalog), stmt_(stmt) {}

  Result<CompiledQuery> Compile() {
    DC_RETURN_NOT_OK(BuildSources());
    DC_RETURN_NOT_OK(BuildJoins());
    DC_RETURN_NOT_OK(ApplyWhere());
    bool has_agg = HasAggregates();
    if (has_agg) {
      DC_RETURN_NOT_OK(BuildAggregate());
    } else {
      if (stmt_.having != nullptr) {
        return Status::InvalidArgument("HAVING requires GROUP BY or aggregates");
      }
      DC_RETURN_NOT_OK(BuildProjection());
    }
    if (stmt_.distinct) {
      DC_ASSIGN_OR_RETURN(plan_, MakeDistinct(plan_));
    }
    DC_RETURN_NOT_OK(ApplyOrderBy());
    DC_RETURN_NOT_OK(ApplyLimit());

    CompiledQuery out;
    out.plan = plan_;
    out.output_schema = plan_->output_schema();
    out.continuous = !inputs_.empty();
    out.inputs = std::move(inputs_);
    switch (stmt_.window.kind) {
      case WindowClause::Kind::kNone:
        out.window.kind = WindowSpec::Kind::kNone;
        break;
      case WindowClause::Kind::kCount:
        out.window.kind = WindowSpec::Kind::kCount;
        break;
      case WindowClause::Kind::kTime:
        out.window.kind = WindowSpec::Kind::kTime;
        break;
    }
    out.window.size = stmt_.window.size;
    out.window.slide = stmt_.window.slide;
    out.threshold = stmt_.threshold;
    if (out.window.kind != WindowSpec::Kind::kNone) {
      if (!out.continuous) {
        return Status::InvalidArgument(
            "WINDOW is only valid on continuous queries (use a basket "
            "expression in FROM)");
      }
      if (out.window.size <= 0 || out.window.slide <= 0) {
        return Status::InvalidArgument("window size/slide must be positive");
      }
      if (out.window.slide > out.window.size) {
        return Status::InvalidArgument(
            "window slide larger than size would drop tuples; not supported");
      }
    }
    return out;
  }

 private:
  // --- FROM -------------------------------------------------------------
  Result<Source> CompileTableRef(const TableRef& ref) {
    if (!ref.is_basket_expr()) {
      DC_ASSIGN_OR_RETURN(TablePtr table, catalog_->Get(ref.name));
      DC_ASSIGN_OR_RETURN(PlanPtr scan,
                          MakeScan(ToLower(ref.name), table->schema()));
      return Source{ref.alias.empty() ? ref.name : ref.alias, table->schema(),
                    std::move(scan)};
    }
    // Basket expression: [select items from B where pred] as S
    const SelectStmt& inner = *ref.basket_expr;
    if (inner.from.size() != 1 || inner.from[0].is_basket_expr()) {
      return Status::InvalidArgument(
          "a basket expression must read exactly one named basket");
    }
    if (!inner.group_by.empty() || inner.having != nullptr ||
        !inner.order_by.empty() || inner.limit.has_value() ||
        inner.distinct || inner.window.kind != WindowClause::Kind::kNone) {
      return Status::InvalidArgument(
          "basket expressions support only SELECT items, FROM and WHERE");
    }
    const std::string& basket_name = inner.from[0].name;
    DC_ASSIGN_OR_RETURN(TablePtr basket, catalog_->Get(basket_name));
    DC_ASSIGN_OR_RETURN(RelationKind kind, catalog_->KindOf(basket_name));
    if (kind != RelationKind::kBasket) {
      return Status::InvalidArgument("'" + basket_name +
                                     "' is not a basket; basket expressions "
                                     "require a basket input");
    }

    ContinuousInput input;
    input.basket = ToLower(basket_name);
    input.bind_name = "__cq_in" + std::to_string(inputs_.size()) + "_" +
                      ToLower(basket_name);
    input.basket_schema = basket->schema();

    // Bind the consume predicate over the basket's own schema.
    Scope basket_scope;
    const std::string& inner_alias = inner.from[0].alias.empty()
                                         ? basket_name
                                         : inner.from[0].alias;
    basket_scope.AddSource(inner_alias, basket->schema());
    if (inner.where != nullptr) {
      DC_ASSIGN_OR_RETURN(input.consume_predicate,
                          BindScalarExpr(*inner.where, basket_scope));
      if (input.consume_predicate->type() != DataType::kBool) {
        return Status::TypeError("basket expression predicate must be boolean");
      }
    }

    // The factory drains the qualifying tuples into a table bound under
    // bind_name; the plan sees the drained slice, so no Filter here.
    DC_ASSIGN_OR_RETURN(PlanPtr plan,
                        MakeScan(input.bind_name, basket->schema()));
    Schema exposed = basket->schema();
    // Inner projection (if not plain '*').
    bool star_only = inner.items.size() == 1 && inner.items[0].star;
    if (!star_only) {
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (const SelectItem& item : inner.items) {
        if (item.star) {
          for (ExprPtr& c : basket_scope.AllColumns()) {
            names.push_back(c->column_name());
            exprs.push_back(std::move(c));
          }
          continue;
        }
        DC_ASSIGN_OR_RETURN(ExprPtr e, BindScalarExpr(*item.expr, basket_scope));
        names.push_back(item.alias.empty() ? DefaultItemName(*item.expr)
                                           : item.alias);
        exprs.push_back(std::move(e));
      }
      DC_ASSIGN_OR_RETURN(plan, MakeProject(plan, std::move(exprs), names));
      exposed = plan->output_schema();
    }
    inputs_.push_back(std::move(input));
    return Source{ref.alias, std::move(exposed), std::move(plan)};
  }

  Status BuildSources() {
    if (stmt_.from.empty()) {
      return Status::InvalidArgument("FROM clause is required");
    }
    for (const TableRef& ref : stmt_.from) {
      DC_ASSIGN_OR_RETURN(Source src, CompileTableRef(ref));
      sources_.push_back(std::move(src));
    }
    return Status::OK();
  }

  // --- JOIN -------------------------------------------------------------
  Status BuildJoins() {
    plan_ = sources_[0].plan;
    scope_.AddSource(sources_[0].qualifier, sources_[0].schema);
    for (size_t i = 1; i < sources_.size(); ++i) {
      const TableRef& ref = stmt_.from[i];
      if (!ref.is_join || ref.join_on == nullptr) {
        return Status::Internal("non-join FROM item after the first");
      }
      // The ON expression must be <colA> = <colB> with one side in the
      // accumulated scope and the other in the new source.
      const AstExpr& on = *ref.join_on;
      if (on.kind != AstExprKind::kBinary || on.binary_op != AstBinaryOp::kEq ||
          on.children[0]->kind != AstExprKind::kColumnRef ||
          on.children[1]->kind != AstExprKind::kColumnRef) {
        return Status::InvalidArgument(
            "JOIN ON must be an equality of two columns, got: " +
            on.ToString());
      }
      Scope new_scope;
      new_scope.AddSource(sources_[i].qualifier, sources_[i].schema);
      // Try left-in-old/right-in-new first, then the swap.
      ExprPtr left_key, right_key;
      auto l_old = BindScalarExpr(*on.children[0], scope_);
      auto r_new = BindScalarExpr(*on.children[1], new_scope);
      if (l_old.ok() && r_new.ok()) {
        left_key = *l_old;
        right_key = *r_new;
      } else {
        auto l_new = BindScalarExpr(*on.children[0], new_scope);
        auto r_old = BindScalarExpr(*on.children[1], scope_);
        if (!l_new.ok() || !r_old.ok()) {
          return Status::InvalidArgument(
              "JOIN ON columns must reference both join sides: " +
              on.ToString());
        }
        left_key = *r_old;
        right_key = *l_new;
      }
      DC_ASSIGN_OR_RETURN(
          plan_, MakeHashJoin(plan_, sources_[i].plan, left_key->column_index(),
                              right_key->column_index()));
      scope_.AddSource(sources_[i].qualifier, sources_[i].schema);
    }
    return Status::OK();
  }

  Status ApplyWhere() {
    if (stmt_.where == nullptr) return Status::OK();
    if (ContainsAggregate(*stmt_.where)) {
      return Status::InvalidArgument("aggregates are not allowed in WHERE");
    }
    DC_ASSIGN_OR_RETURN(ExprPtr pred, BindScalarExpr(*stmt_.where, scope_));
    DC_ASSIGN_OR_RETURN(plan_, MakeFilter(plan_, std::move(pred)));
    return Status::OK();
  }

  // --- aggregation --------------------------------------------------------
  bool HasAggregates() const {
    if (!stmt_.group_by.empty() || stmt_.having != nullptr) return true;
    for (const SelectItem& item : stmt_.items) {
      if (!item.star && ContainsAggregate(*item.expr)) return true;
    }
    return false;
  }

  /// Builds: pre-projection (group keys + agg inputs) -> Aggregate ->
  /// HAVING filter -> post-projection in select-list order.
  Status BuildAggregate() {
    // 1. Bind group keys (column refs or scalar expressions). Their textual
    //    signature lets select items / HAVING reference a grouping
    //    expression structurally, e.g. "select a % 2 ... group by a % 2".
    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_names;
    std::map<std::string, size_t> group_index;  // signature -> position
    for (const AstExprPtr& g : stmt_.group_by) {
      if (ContainsAggregate(*g)) {
        return Status::InvalidArgument("aggregates not allowed in GROUP BY");
      }
      DC_ASSIGN_OR_RETURN(ExprPtr e, BindScalarExpr(*g, scope_));
      group_index.emplace(ToLower(g->ToString()), group_exprs.size());
      group_names.push_back(DefaultItemName(*g));
      group_exprs.push_back(std::move(e));
    }

    // 2. Collect aggregate calls from the select list and HAVING, deduped
    //    by structural signature.
    std::vector<const AstExpr*> agg_calls;
    std::map<std::string, size_t> agg_index;  // signature -> position
    auto collect = [&](const AstExpr& e, auto&& self) -> Status {
      if (e.kind == AstExprKind::kFuncCall &&
          IsAggregateFuncName(e.func_name)) {
        for (const AstExprPtr& c : e.children) {
          if (ContainsAggregate(*c)) {
            return Status::InvalidArgument("nested aggregates are not allowed");
          }
        }
        std::string sig = AggSignature(e);
        if (agg_index.emplace(sig, agg_calls.size()).second) {
          agg_calls.push_back(&e);
        }
        return Status::OK();
      }
      for (const AstExprPtr& c : e.children) {
        if (c != nullptr) DC_RETURN_NOT_OK(self(*c, self));
      }
      return Status::OK();
    };
    for (const SelectItem& item : stmt_.items) {
      if (item.star) {
        return Status::InvalidArgument(
            "SELECT * cannot be combined with aggregation");
      }
      DC_RETURN_NOT_OK(collect(*item.expr, collect));
    }
    if (stmt_.having != nullptr) {
      DC_RETURN_NOT_OK(collect(*stmt_.having, collect));
    }
    if (agg_calls.empty()) {
      return Status::InvalidArgument(
          "GROUP BY/HAVING without any aggregate function");
    }

    // 3. Pre-projection: group keys first, then aggregate arguments.
    std::vector<ExprPtr> pre_exprs = group_exprs;
    std::vector<std::string> pre_names = group_names;
    std::vector<AggSpec> specs;
    for (const AstExpr* call : agg_calls) {
      AggSpec spec;
      DC_ASSIGN_OR_RETURN(spec.func, AggFuncFromName(call->func_name));
      spec.output_name = AggSignature(*call);
      if (call->star) {
        if (spec.func != AggFunc::kCount) {
          return Status::InvalidArgument("'*' argument is only valid in count");
        }
        spec.count_star = true;
        spec.input_column = 0;
      } else {
        DC_ASSIGN_OR_RETURN(ExprPtr arg,
                            BindScalarExpr(*call->children[0], scope_));
        // The aggregate kernels only accept numeric/bool inputs — including
        // count(col), which the runtime rejects over strings — so the same
        // rule applies to every aggregate here.
        if (!IsNumeric(arg->type()) && arg->type() != DataType::kBool) {
          return Status::TypeError("cannot aggregate non-numeric expression " +
                                   arg->ToString());
        }
        spec.input_column = pre_exprs.size();
        pre_names.push_back("__agg_arg" + std::to_string(specs.size()));
        pre_exprs.push_back(std::move(arg));
      }
      specs.push_back(std::move(spec));
    }
    if (pre_exprs.empty()) {
      // count(*)-only aggregate over the raw input: project a dummy column
      // so the aggregate node has a child schema to work with.
      pre_exprs.push_back(Expr::Int(0));
      pre_names.push_back("__dummy");
    }
    DC_ASSIGN_OR_RETURN(plan_, MakeProject(plan_, pre_exprs, pre_names));

    std::vector<size_t> group_cols(group_exprs.size());
    for (size_t i = 0; i < group_cols.size(); ++i) group_cols[i] = i;
    DC_ASSIGN_OR_RETURN(plan_, MakeAggregate(plan_, group_cols, specs));

    // 4. Scope over the aggregate output: group columns keep their names,
    //    aggregate columns are addressable by signature.
    Scope agg_scope;
    agg_scope.AddSource("", plan_->output_schema());

    // Rewrites an AST expression over the aggregate output: aggregate calls
    // become column refs to their output column.
    auto bind_post = [&](const AstExpr& e,
                         auto&& self) -> Result<ExprPtr> {
      // A whole expression that textually equals a GROUP BY key maps to the
      // corresponding group column of the aggregate output.
      if (e.kind != AstExprKind::kLiteral) {
        auto g = group_index.find(ToLower(e.ToString()));
        if (g != group_index.end()) {
          const Field& f = plan_->output_schema().field(g->second);
          return Expr::Column(g->second, f.name, f.type,
                              SourceLoc{e.line, e.col});
        }
      }
      if (e.kind == AstExprKind::kFuncCall) {
        if (IsAggregateFuncName(e.func_name)) {
          auto it = agg_index.find(AggSignature(e));
          if (it == agg_index.end()) {
            return Status::Internal("aggregate not collected: " + e.ToString());
          }
          size_t col = group_exprs.size() + it->second;
          const Field& f = plan_->output_schema().field(col);
          return Expr::Column(col, f.name, f.type, SourceLoc{e.line, e.col});
        }
        // Scalar function over aggregate/group results, e.g. round(avg(v)).
        DC_ASSIGN_OR_RETURN(ScalarFunc func, ScalarFuncFromName(e.func_name));
        if (e.children.size() != 1) {
          return Status::InvalidArgument("function '" + e.func_name +
                                         "' takes exactly one argument");
        }
        DC_ASSIGN_OR_RETURN(ExprPtr arg, self(*e.children[0], self));
        DC_RETURN_NOT_OK(CheckScalarFuncArg(func, e.func_name, arg));
        return Expr::Function(func, std::move(arg), SourceLoc{e.line, e.col});
      }
      if (e.kind == AstExprKind::kColumnRef) {
        // Must be a group key (by its pre-projection name).
        auto r = agg_scope.ResolveColumn("", e.column, SourceLoc{e.line, e.col});
        if (!r.ok()) {
          return Status::InvalidArgument(
              "column '" + e.column +
              "' must appear in GROUP BY or inside an aggregate");
        }
        return r;
      }
      if (e.kind == AstExprKind::kLiteral) {
        return Expr::Literal(e.literal, SourceLoc{e.line, e.col});
      }
      if (e.kind == AstExprKind::kBinary) {
        DC_ASSIGN_OR_RETURN(ExprPtr l, self(*e.children[0], self));
        DC_ASSIGN_OR_RETURN(ExprPtr r, self(*e.children[1], self));
        // The collection pass walks the raw AST and never sees the rewritten
        // operand types (aggregate calls become columns here), so the operand
        // check must run on the rewritten children.
        DC_RETURN_NOT_OK(CheckBinaryOperandTypes(e.binary_op, l, r));
        return Expr::Binary(ToAlgebraBinary(e.binary_op), std::move(l),
                            std::move(r), SourceLoc{e.line, e.col});
      }
      if (e.kind == AstExprKind::kCase) {
        std::vector<ExprPtr> when_then;
        size_t branches = (e.children.size() - 1) / 2;
        for (size_t i = 0; i < branches; ++i) {
          DC_ASSIGN_OR_RETURN(ExprPtr cond, self(*e.children[2 * i], self));
          DC_ASSIGN_OR_RETURN(ExprPtr val, self(*e.children[2 * i + 1], self));
          when_then.push_back(std::move(cond));
          when_then.push_back(std::move(val));
        }
        DC_ASSIGN_OR_RETURN(ExprPtr other, self(*e.children.back(), self));
        return Expr::Case(std::move(when_then), std::move(other));
      }
      if (e.kind == AstExprKind::kUnary) {
        DC_ASSIGN_OR_RETURN(ExprPtr c, self(*e.children[0], self));
        const SourceLoc uloc{e.line, e.col};
        switch (e.unary_op) {
          case AstUnaryOp::kNot:
            if (c->type() != DataType::kBool) {
              return Status::TypeError(
                  "NOT requires a boolean operand" +
                  (uloc.valid() ? " at " + uloc.ToString() : std::string()));
            }
            return Expr::Unary(UnaryOp::kNot, std::move(c), uloc);
          case AstUnaryOp::kNeg:
            if (!IsNumeric(c->type())) {
              return Status::TypeError(
                  "unary minus requires a numeric operand" +
                  (uloc.valid() ? " at " + uloc.ToString() : std::string()));
            }
            return Expr::Unary(UnaryOp::kNeg, std::move(c), uloc);
          case AstUnaryOp::kIsNull:
            return Expr::Unary(UnaryOp::kIsNull, std::move(c), uloc);
          case AstUnaryOp::kIsNotNull:
            return Expr::Unary(UnaryOp::kIsNotNull, std::move(c), uloc);
        }
      }
      return Status::Internal("bad post-aggregate expression");
    };

    // 5. HAVING filter over the aggregate output.
    if (stmt_.having != nullptr) {
      DC_ASSIGN_OR_RETURN(ExprPtr pred, bind_post(*stmt_.having, bind_post));
      if (pred->type() != DataType::kBool) {
        return Status::TypeError("HAVING predicate must be boolean");
      }
      DC_ASSIGN_OR_RETURN(plan_, MakeFilter(plan_, std::move(pred)));
    }

    // 6. Post-projection in select-list order.
    std::vector<ExprPtr> out_exprs;
    std::vector<std::string> out_names;
    for (const SelectItem& item : stmt_.items) {
      DC_ASSIGN_OR_RETURN(ExprPtr e, bind_post(*item.expr, bind_post));
      out_names.push_back(item.alias.empty() ? DefaultItemName(*item.expr)
                                             : item.alias);
      out_exprs.push_back(std::move(e));
    }
    DC_ASSIGN_OR_RETURN(plan_,
                        MakeProject(plan_, std::move(out_exprs), out_names));
    return Status::OK();
  }

  static BinaryOp ToAlgebraBinary(AstBinaryOp op) {
    switch (op) {
      case AstBinaryOp::kAdd:
        return BinaryOp::kAdd;
      case AstBinaryOp::kSub:
        return BinaryOp::kSub;
      case AstBinaryOp::kMul:
        return BinaryOp::kMul;
      case AstBinaryOp::kDiv:
        return BinaryOp::kDiv;
      case AstBinaryOp::kMod:
        return BinaryOp::kMod;
      case AstBinaryOp::kEq:
        return BinaryOp::kEq;
      case AstBinaryOp::kNe:
        return BinaryOp::kNe;
      case AstBinaryOp::kLt:
        return BinaryOp::kLt;
      case AstBinaryOp::kLe:
        return BinaryOp::kLe;
      case AstBinaryOp::kGt:
        return BinaryOp::kGt;
      case AstBinaryOp::kGe:
        return BinaryOp::kGe;
      case AstBinaryOp::kAnd:
        return BinaryOp::kAnd;
      case AstBinaryOp::kOr:
        return BinaryOp::kOr;
      case AstBinaryOp::kLike:
        return BinaryOp::kLike;
    }
    return BinaryOp::kAdd;
  }

  // --- plain projection -----------------------------------------------
  Status BuildProjection() {
    bool star_only = stmt_.items.size() == 1 && stmt_.items[0].star;
    if (star_only) return Status::OK();  // pass-through
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (const SelectItem& item : stmt_.items) {
      if (item.star) {
        for (ExprPtr& c : scope_.AllColumns()) {
          names.push_back(c->column_name());
          exprs.push_back(std::move(c));
        }
        continue;
      }
      DC_ASSIGN_OR_RETURN(ExprPtr e, BindScalarExpr(*item.expr, scope_));
      names.push_back(item.alias.empty() ? DefaultItemName(*item.expr)
                                         : item.alias);
      exprs.push_back(std::move(e));
    }
    DC_ASSIGN_OR_RETURN(plan_, MakeProject(plan_, std::move(exprs), names));
    return Status::OK();
  }

  // --- ORDER BY / LIMIT -------------------------------------------------
  Status ApplyOrderBy() {
    if (stmt_.order_by.empty()) return Status::OK();
    Scope out_scope;
    out_scope.AddSource("", plan_->output_schema());
    std::vector<SortKey> keys;
    for (const OrderItem& item : stmt_.order_by) {
      SortKey key;
      key.ascending = item.ascending;
      if (item.expr->kind == AstExprKind::kLiteral &&
          item.expr->literal.is_int64()) {
        int64_t pos = item.expr->literal.int64_value();
        if (pos < 1 ||
            pos > static_cast<int64_t>(plan_->output_schema().num_fields())) {
          return Status::InvalidArgument("ORDER BY position out of range");
        }
        key.column = static_cast<size_t>(pos - 1);
      } else if (item.expr->kind == AstExprKind::kColumnRef) {
        DC_ASSIGN_OR_RETURN(
            ExprPtr col,
            out_scope.ResolveColumn(item.expr->qualifier, item.expr->column));
        key.column = col->column_index();
      } else {
        return Status::InvalidArgument(
            "ORDER BY supports output columns and positions only");
      }
      keys.push_back(key);
    }
    DC_ASSIGN_OR_RETURN(plan_, MakeSort(plan_, std::move(keys)));
    return Status::OK();
  }

  Status ApplyLimit() {
    if (!stmt_.limit.has_value() && !stmt_.offset.has_value()) {
      return Status::OK();
    }
    int64_t limit = stmt_.limit.value_or(-1);
    int64_t offset = stmt_.offset.value_or(0);
    if (limit < 0 && stmt_.limit.has_value()) {
      return Status::InvalidArgument("LIMIT must be non-negative");
    }
    if (offset < 0) return Status::InvalidArgument("OFFSET must be non-negative");
    size_t lim = stmt_.limit.has_value() ? static_cast<size_t>(limit)
                                         : std::numeric_limits<size_t>::max();
    DC_ASSIGN_OR_RETURN(plan_,
                        MakeLimit(plan_, static_cast<size_t>(offset), lim));
    return Status::OK();
  }

  const Catalog* catalog_;
  const SelectStmt& stmt_;
  std::vector<Source> sources_;
  std::vector<ContinuousInput> inputs_;
  Scope scope_;
  PlanPtr plan_;
};

}  // namespace

Result<CompiledQuery> Planner::CompileSelect(const SelectStmt& stmt) const {
  SelectCompiler compiler(catalog_, stmt);
  return compiler.Compile();
}

}  // namespace sql
}  // namespace datacell
