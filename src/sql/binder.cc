#include "sql/binder.h"

#include "common/string_util.h"

namespace datacell {
namespace sql {

void Scope::AddSource(std::string qualifier, const Schema& schema) {
  size_t offset = num_columns();
  sources_.push_back(Source{std::move(qualifier), schema, offset});
}

size_t Scope::num_columns() const {
  if (sources_.empty()) return 0;
  const Source& last = sources_.back();
  return last.offset + last.schema.num_fields();
}

namespace {

/// " at line:col" suffix for binder diagnostics; empty when unknown.
std::string AtLoc(SourceLoc loc) {
  return loc.valid() ? " at " + loc.ToString() : std::string();
}

}  // namespace

Result<ExprPtr> Scope::ResolveColumn(const std::string& qualifier,
                                     const std::string& column,
                                     SourceLoc loc) const {
  const Source* found_source = nullptr;
  size_t found_index = 0;
  for (const Source& src : sources_) {
    if (!qualifier.empty() && !EqualsIgnoreCase(src.qualifier, qualifier)) {
      continue;
    }
    auto idx = src.schema.IndexOf(column);
    if (!idx.has_value()) continue;
    if (found_source != nullptr) {
      return Status::InvalidArgument("ambiguous column reference '" + column +
                                     "'" + AtLoc(loc));
    }
    found_source = &src;
    found_index = src.offset + *idx;
  }
  if (found_source == nullptr) {
    std::string full = qualifier.empty() ? column : qualifier + "." + column;
    return Status::NotFound("unknown column '" + full + "'" + AtLoc(loc));
  }
  const Field& f =
      found_source->schema.field(found_index - found_source->offset);
  return Expr::Column(found_index, f.name, f.type, loc);
}

std::vector<ExprPtr> Scope::AllColumns() const {
  std::vector<ExprPtr> out;
  for (const Source& src : sources_) {
    for (size_t i = 0; i < src.schema.num_fields(); ++i) {
      const Field& f = src.schema.field(i);
      out.push_back(Expr::Column(src.offset + i, f.name, f.type));
    }
  }
  return out;
}

std::vector<std::string> Scope::AllColumnNames() const {
  std::vector<std::string> out;
  for (const Source& src : sources_) {
    for (const Field& f : src.schema.fields()) out.push_back(f.name);
  }
  return out;
}

Schema Scope::CombinedSchema() const {
  Schema s;
  for (const Source& src : sources_) {
    for (const Field& f : src.schema.fields()) s.AddField(f);
  }
  return s;
}

bool ContainsAggregate(const AstExpr& ast) {
  if (ast.kind == AstExprKind::kFuncCall && IsAggregateFuncName(ast.func_name)) {
    return true;
  }
  for (const AstExprPtr& c : ast.children) {
    if (c != nullptr && ContainsAggregate(*c)) return true;
  }
  return false;
}

Result<ScalarFunc> ScalarFuncFromName(const std::string& lower_name) {
  if (lower_name == "abs") return ScalarFunc::kAbs;
  if (lower_name == "floor") return ScalarFunc::kFloor;
  if (lower_name == "ceil") return ScalarFunc::kCeil;
  if (lower_name == "round") return ScalarFunc::kRound;
  if (lower_name == "sqrt") return ScalarFunc::kSqrt;
  if (lower_name == "length") return ScalarFunc::kLength;
  if (lower_name == "lower") return ScalarFunc::kLower;
  if (lower_name == "upper") return ScalarFunc::kUpper;
  return Status::InvalidArgument("unknown function '" + lower_name + "'");
}

namespace {

BinaryOp ToAlgebraOp(AstBinaryOp op) {
  switch (op) {
    case AstBinaryOp::kAdd:
      return BinaryOp::kAdd;
    case AstBinaryOp::kSub:
      return BinaryOp::kSub;
    case AstBinaryOp::kMul:
      return BinaryOp::kMul;
    case AstBinaryOp::kDiv:
      return BinaryOp::kDiv;
    case AstBinaryOp::kMod:
      return BinaryOp::kMod;
    case AstBinaryOp::kEq:
      return BinaryOp::kEq;
    case AstBinaryOp::kNe:
      return BinaryOp::kNe;
    case AstBinaryOp::kLt:
      return BinaryOp::kLt;
    case AstBinaryOp::kLe:
      return BinaryOp::kLe;
    case AstBinaryOp::kGt:
      return BinaryOp::kGt;
    case AstBinaryOp::kGe:
      return BinaryOp::kGe;
    case AstBinaryOp::kAnd:
      return BinaryOp::kAnd;
    case AstBinaryOp::kOr:
      return BinaryOp::kOr;
    case AstBinaryOp::kLike:
      return BinaryOp::kLike;
  }
  return BinaryOp::kAdd;
}

bool IsArithmetic(AstBinaryOp op) {
  switch (op) {
    case AstBinaryOp::kAdd:
    case AstBinaryOp::kSub:
    case AstBinaryOp::kMul:
    case AstBinaryOp::kDiv:
    case AstBinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

bool IsLogicalOp(AstBinaryOp op) {
  return op == AstBinaryOp::kAnd || op == AstBinaryOp::kOr;
}

}  // namespace

Status CheckBinaryOperandTypes(AstBinaryOp op, const ExprPtr& l,
                               const ExprPtr& r) {
  DataType lt = l->type();
  DataType rt = r->type();
  SourceLoc loc = l->loc().valid() ? l->loc() : r->loc();
  if (IsArithmetic(op)) {
    if (!IsNumeric(lt) || !IsNumeric(rt)) {
      return Status::TypeError("arithmetic requires numeric operands: " +
                               l->ToString() + " vs " + r->ToString() +
                               AtLoc(loc));
    }
    return Status::OK();
  }
  if (IsLogicalOp(op)) {
    if (lt != DataType::kBool || rt != DataType::kBool) {
      return Status::TypeError("AND/OR require boolean operands" + AtLoc(loc));
    }
    return Status::OK();
  }
  if (op == AstBinaryOp::kLike) {
    if (lt != DataType::kString || rt != DataType::kString) {
      return Status::TypeError("LIKE requires string operands" + AtLoc(loc));
    }
    return Status::OK();
  }
  // Comparison: strings with strings, bools with bools, numerics together.
  bool ok = (lt == DataType::kString) == (rt == DataType::kString) &&
            (lt == DataType::kBool) == (rt == DataType::kBool);
  if (!ok) {
    return Status::TypeError("cannot compare " +
                             std::string(DataTypeToString(lt)) + " with " +
                             DataTypeToString(rt) + AtLoc(loc));
  }
  return Status::OK();
}

Status CheckScalarFuncArg(ScalarFunc func, const std::string& name,
                          const ExprPtr& arg) {
  bool needs_string = func == ScalarFunc::kLength ||
                      func == ScalarFunc::kLower || func == ScalarFunc::kUpper;
  if (needs_string && arg->type() != DataType::kString) {
    return Status::TypeError("function '" + name +
                             "' requires a string argument" +
                             AtLoc(arg->loc()));
  }
  if (!needs_string && !IsNumeric(arg->type())) {
    return Status::TypeError("function '" + name +
                             "' requires a numeric argument" +
                             AtLoc(arg->loc()));
  }
  return Status::OK();
}

Result<ExprPtr> BindScalarExpr(const AstExpr& ast, const Scope& scope) {
  const SourceLoc loc{ast.line, ast.col};
  switch (ast.kind) {
    case AstExprKind::kColumnRef:
      return scope.ResolveColumn(ast.qualifier, ast.column, loc);
    case AstExprKind::kLiteral:
      return Expr::Literal(ast.literal, loc);
    case AstExprKind::kBinary: {
      DC_ASSIGN_OR_RETURN(ExprPtr l, BindScalarExpr(*ast.children[0], scope));
      DC_ASSIGN_OR_RETURN(ExprPtr r, BindScalarExpr(*ast.children[1], scope));
      DC_RETURN_NOT_OK(CheckBinaryOperandTypes(ast.binary_op, l, r));
      return Expr::Binary(ToAlgebraOp(ast.binary_op), std::move(l),
                          std::move(r), loc);
    }
    case AstExprKind::kUnary: {
      DC_ASSIGN_OR_RETURN(ExprPtr c, BindScalarExpr(*ast.children[0], scope));
      switch (ast.unary_op) {
        case AstUnaryOp::kNot:
          if (c->type() != DataType::kBool) {
            return Status::TypeError("NOT requires a boolean operand" +
                                     AtLoc(loc.valid() ? loc : c->loc()));
          }
          return Expr::Unary(UnaryOp::kNot, std::move(c), loc);
        case AstUnaryOp::kNeg:
          if (!IsNumeric(c->type())) {
            return Status::TypeError("unary minus requires a numeric operand" +
                                     AtLoc(loc.valid() ? loc : c->loc()));
          }
          return Expr::Unary(UnaryOp::kNeg, std::move(c), loc);
        case AstUnaryOp::kIsNull:
          return Expr::Unary(UnaryOp::kIsNull, std::move(c), loc);
        case AstUnaryOp::kIsNotNull:
          return Expr::Unary(UnaryOp::kIsNotNull, std::move(c), loc);
      }
      return Status::Internal("bad unary op");
    }
    case AstExprKind::kCase: {
      std::vector<ExprPtr> when_then;
      size_t branches = (ast.children.size() - 1) / 2;
      for (size_t i = 0; i < branches; ++i) {
        DC_ASSIGN_OR_RETURN(ExprPtr cond,
                            BindScalarExpr(*ast.children[2 * i], scope));
        DC_ASSIGN_OR_RETURN(ExprPtr val,
                            BindScalarExpr(*ast.children[2 * i + 1], scope));
        when_then.push_back(std::move(cond));
        when_then.push_back(std::move(val));
      }
      DC_ASSIGN_OR_RETURN(ExprPtr other,
                          BindScalarExpr(*ast.children.back(), scope));
      auto made = Expr::Case(std::move(when_then), std::move(other), loc);
      if (!made.ok() && loc.valid()) {
        return Status::TypeError(made.status().message() + AtLoc(loc));
      }
      return made;
    }
    case AstExprKind::kFuncCall: {
      if (IsAggregateFuncName(ast.func_name)) {
        return Status::InvalidArgument(
            "aggregate function '" + ast.func_name +
            "' is not allowed in this context (WHERE/ON/scalar expression)" +
            AtLoc(loc));
      }
      if (ast.star || ast.children.size() != 1) {
        return Status::InvalidArgument("function '" + ast.func_name +
                                       "' takes exactly one argument" +
                                       AtLoc(loc));
      }
      DC_ASSIGN_OR_RETURN(ScalarFunc func, ScalarFuncFromName(ast.func_name));
      DC_ASSIGN_OR_RETURN(ExprPtr arg, BindScalarExpr(*ast.children[0], scope));
      DC_RETURN_NOT_OK(CheckScalarFuncArg(func, ast.func_name, arg));
      return Expr::Function(func, std::move(arg), loc);
    }
  }
  return Status::Internal("bad expression kind");
}

}  // namespace sql
}  // namespace datacell
