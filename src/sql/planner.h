#ifndef DATACELL_SQL_PLANNER_H_
#define DATACELL_SQL_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "sql/ast.h"
#include "storage/catalog.h"

namespace datacell {
namespace sql {

/// Resolved window specification, handed to the DataCell core which realises
/// it by scheduling + plan re-binding (no new kernel operators, §3.1).
struct WindowSpec {
  enum class Kind { kNone, kCount, kTime } kind = Kind::kNone;
  int64_t size = 0;   // tuples (kCount) or microseconds (kTime)
  int64_t slide = 0;  // same unit; slide == size => tumbling
};

/// One stream input of a continuous query: which basket feeds the plan,
/// under which name the plan's Scan expects the drained slice, and which
/// tuples the basket expression consumes.
struct ContinuousInput {
  std::string basket;        // catalog name of the basket
  std::string bind_name;     // Scan relation name inside the plan
  Schema basket_schema;      // full basket schema (incl. timestamp column)
  ExprPtr consume_predicate; // over basket_schema; nullptr = all tuples
};

/// A compiled query: an executable plan plus, for continuous queries, the
/// basket plumbing the factory needs.
struct CompiledQuery {
  PlanPtr plan;
  Schema output_schema;
  bool continuous = false;
  std::vector<ContinuousInput> inputs;  // continuous only
  WindowSpec window;
  std::optional<int64_t> threshold;     // min tuples before firing (§2.4)
  std::string sql_text;                 // original text, for diagnostics
};

/// Compiles parsed SELECT statements against a catalog. Stateless apart
/// from the catalog pointer; safe to use from multiple threads as long as
/// the catalog outlives it.
class Planner {
 public:
  explicit Planner(const Catalog* catalog) : catalog_(catalog) {}

  /// Compiles `stmt`. Queries whose FROM contains a basket expression
  /// compile as continuous; plain queries compile as one-time plans whose
  /// Scan nodes bind catalog relations by name.
  Result<CompiledQuery> CompileSelect(const SelectStmt& stmt) const;

 private:
  const Catalog* catalog_;
};

}  // namespace sql
}  // namespace datacell

#endif  // DATACELL_SQL_PLANNER_H_
