#ifndef DATACELL_SQL_LEXER_H_
#define DATACELL_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace datacell {

/// Tokenises one SQL statement. Comments (`-- ...` to end of line) are
/// skipped; string literals use single quotes with '' as the escape.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace datacell

#endif  // DATACELL_SQL_LEXER_H_
