#ifndef DATACELL_SQL_BINDER_H_
#define DATACELL_SQL_BINDER_H_

#include <string>
#include <vector>

#include "algebra/expression.h"
#include "sql/ast.h"
#include "storage/schema.h"

namespace datacell {
namespace sql {

/// Name-resolution scope: an ordered list of FROM sources, each contributing
/// a qualifier (alias or relation name) and a schema. Column positions are
/// global across the scope, in source order — matching the column layout of
/// the joined plan.
class Scope {
 public:
  void AddSource(std::string qualifier, const Schema& schema);

  /// Resolves `[qualifier.]column` to a global column index and type.
  /// Unqualified names must be unambiguous across all sources. `loc` (the
  /// reference's source position) is stamped on the result and rendered in
  /// resolution errors.
  Result<ExprPtr> ResolveColumn(const std::string& qualifier,
                                const std::string& column,
                                SourceLoc loc = {}) const;

  /// All columns in scope order (star expansion).
  std::vector<ExprPtr> AllColumns() const;
  /// Output field names in scope order.
  std::vector<std::string> AllColumnNames() const;

  size_t num_columns() const;
  /// The flattened schema of the whole scope.
  Schema CombinedSchema() const;

 private:
  struct Source {
    std::string qualifier;
    Schema schema;
    size_t offset;  // global index of this source's first column
  };
  std::vector<Source> sources_;
};

/// Binds an unresolved AST expression to a typed algebra expression against
/// `scope`. Aggregate function calls are rejected here — the planner handles
/// them structurally (this binder is for scalar contexts: WHERE, JOIN ON,
/// projection arguments).
Result<ExprPtr> BindScalarExpr(const AstExpr& ast, const Scope& scope);

/// True when `ast` contains an aggregate function call anywhere (scalar
/// function calls do not count).
bool ContainsAggregate(const AstExpr& ast);

/// Maps a lower-cased scalar function name to its ScalarFunc.
Result<ScalarFunc> ScalarFuncFromName(const std::string& lower_name);

/// Operand type rules for a binary operator (arithmetic needs numerics,
/// AND/OR booleans, LIKE strings, comparisons same storage family). Shared
/// by the scalar binder and the planner's post-aggregate rewriter so both
/// paths reject ill-typed SQL at bind time. Errors carry the operands'
/// source position when known.
Status CheckBinaryOperandTypes(AstBinaryOp op, const ExprPtr& l,
                               const ExprPtr& r);

/// Argument type rule for a scalar function call (`name` is for the error
/// message only).
Status CheckScalarFuncArg(ScalarFunc func, const std::string& name,
                          const ExprPtr& arg);

}  // namespace sql
}  // namespace datacell

#endif  // DATACELL_SQL_BINDER_H_
