#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace datacell {

const char* TokenTypeToString(TokenType t) {
  switch (t) {
    case TokenType::kEof:
      return "<eof>";
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kIntLiteral:
      return "integer";
    case TokenType::kFloatLiteral:
      return "float";
    case TokenType::kStringLiteral:
      return "string";
    case TokenType::kComma:
      return ",";
    case TokenType::kSemicolon:
      return ";";
    case TokenType::kLParen:
      return "(";
    case TokenType::kRParen:
      return ")";
    case TokenType::kLBracket:
      return "[";
    case TokenType::kRBracket:
      return "]";
    case TokenType::kStar:
      return "*";
    case TokenType::kPlus:
      return "+";
    case TokenType::kMinus:
      return "-";
    case TokenType::kSlash:
      return "/";
    case TokenType::kPercent:
      return "%";
    case TokenType::kEq:
      return "=";
    case TokenType::kNe:
      return "<>";
    case TokenType::kLt:
      return "<";
    case TokenType::kLe:
      return "<=";
    case TokenType::kGt:
      return ">";
    case TokenType::kGe:
      return ">=";
    case TokenType::kDot:
      return ".";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// 1-based line/column of byte `offset` in `sql`.
std::pair<uint32_t, uint32_t> LineColAt(std::string_view sql, size_t offset) {
  uint32_t line = 1;
  uint32_t col = 1;
  for (size_t i = 0; i < offset && i < sql.size(); ++i) {
    if (sql[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
  }
  return {line, col};
}

std::string AtPosition(std::string_view sql, size_t offset) {
  auto [line, col] = LineColAt(sql, offset);
  return " at line " + std::to_string(line) + ", column " +
         std::to_string(col) + " (offset " + std::to_string(offset) + ")";
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  auto push = [&](TokenType t, size_t at, std::string text = "") {
    Token tok;
    tok.type = t;
    tok.text = std::move(text);
    tok.offset = at;
    tokens.push_back(std::move(tok));
  };
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentCont(sql[i])) ++i;
      push(TokenType::kIdentifier, start,
           std::string(sql.substr(start, i - start)));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string text(sql.substr(start, i - start));
      Token tok;
      tok.offset = start;
      tok.text = text;
      if (is_float) {
        DC_ASSIGN_OR_RETURN(tok.float_value, ParseDouble(text));
        tok.type = TokenType::kFloatLiteral;
      } else {
        DC_ASSIGN_OR_RETURN(tok.int_value, ParseInt64(text));
        tok.type = TokenType::kIntLiteral;
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal" +
                                  AtPosition(sql, start));
      }
      push(TokenType::kStringLiteral, start, std::move(text));
      continue;
    }
    switch (c) {
      case ',':
        push(TokenType::kComma, start);
        ++i;
        break;
      case ';':
        push(TokenType::kSemicolon, start);
        ++i;
        break;
      case '(':
        push(TokenType::kLParen, start);
        ++i;
        break;
      case ')':
        push(TokenType::kRParen, start);
        ++i;
        break;
      case '[':
        push(TokenType::kLBracket, start);
        ++i;
        break;
      case ']':
        push(TokenType::kRBracket, start);
        ++i;
        break;
      case '*':
        push(TokenType::kStar, start);
        ++i;
        break;
      case '+':
        push(TokenType::kPlus, start);
        ++i;
        break;
      case '-':
        push(TokenType::kMinus, start);
        ++i;
        break;
      case '/':
        push(TokenType::kSlash, start);
        ++i;
        break;
      case '%':
        push(TokenType::kPercent, start);
        ++i;
        break;
      case '.':
        push(TokenType::kDot, start);
        ++i;
        break;
      case '=':
        push(TokenType::kEq, start);
        ++i;
        break;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          return Status::ParseError("unexpected '!'" + AtPosition(sql, start));
        }
        break;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kLe, start);
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          push(TokenType::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kGe, start);
          i += 2;
        } else {
          push(TokenType::kGt, start);
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "'" + AtPosition(sql, start));
    }
  }
  Token eof;
  eof.type = TokenType::kEof;
  eof.offset = n;
  tokens.push_back(std::move(eof));
  // Position post-pass: offsets are ascending, so one monotonic walk over the
  // statement stamps every token with its 1-based line/column.
  {
    uint32_t line = 1;
    uint32_t col = 1;
    size_t pos = 0;
    for (Token& tok : tokens) {
      while (pos < tok.offset && pos < n) {
        if (sql[pos] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
        ++pos;
      }
      tok.line = line;
      tok.col = col;
    }
  }
  return tokens;
}

}  // namespace datacell
