#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace datacell {
namespace sql {

namespace {

/// Recursive-descent parser over the token stream. Keywords are
/// case-insensitive identifiers; reserved words are rejected as names.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    DC_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
    MatchToken(TokenType::kSemicolon);
    if (!AtEnd()) {
      return Err("unexpected trailing input");
    }
    return stmt;
  }

  Result<std::vector<Statement>> ParseScript() {
    std::vector<Statement> out;
    while (!AtEnd()) {
      DC_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
      out.push_back(std::move(stmt));
      if (!MatchToken(TokenType::kSemicolon)) break;
    }
    if (!AtEnd()) return Err("unexpected trailing input").status();
    return out;
  }

 private:
  // --- token helpers ---------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() {
    const Token& t = Peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }
  bool AtEnd() const { return Peek().type == TokenType::kEof; }

  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && EqualsIgnoreCase(t.text, kw);
  }
  bool MatchKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) {
      return Err("expected '" + std::string(kw) + "'").status();
    }
    return Status::OK();
  }
  bool MatchToken(TokenType t) {
    if (Peek().type == t) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectToken(TokenType t) {
    if (!MatchToken(t)) {
      return Err(std::string("expected '") + TokenTypeToString(t) + "', got '" +
                 DescribeCurrent() + "'")
          .status();
    }
    return Status::OK();
  }

  std::string DescribeCurrent() const {
    const Token& t = Peek();
    if (t.type == TokenType::kIdentifier) return t.text;
    return TokenTypeToString(t.type);
  }

  Result<Statement> Err(std::string msg) const {
    const Token& t = Peek();
    // Keep the byte offset in the rendering: tools (and tests) key on it.
    return Status::ParseError(msg + " at line " + std::to_string(t.line) +
                              ", column " + std::to_string(t.col) +
                              " (offset " + std::to_string(t.offset) + ")");
  }

  static bool IsReserved(std::string_view word) {
    static const char* kReserved[] = {
        "select", "from",   "where",  "group",     "by",     "having",
        "order",  "limit",  "offset", "window",    "size",   "slide",
        "range",  "as",     "and",    "or",        "not",    "is",
        "null",   "join",   "on",     "distinct",  "create", "table",
        "basket", "insert", "into",   "values",    "drop",   "threshold",
        "asc",    "desc",   "true",   "false",     "count",  "sum",
        "min",    "max",    "avg",    "between",   "in",     "like",
        "case",   "when",   "then",   "else",      "end",
    };
    for (const char* r : kReserved) {
      if (EqualsIgnoreCase(word, r)) return true;
    }
    return false;
  }

  Result<std::string> ExpectName() {
    if (Peek().type != TokenType::kIdentifier) {
      return Err("expected identifier, got '" + DescribeCurrent() + "'")
          .status();
    }
    if (IsReserved(Peek().text)) {
      return Status::ParseError("reserved word '" + Peek().text +
                                "' cannot be used as a name");
    }
    return Advance().text;
  }

  // --- statements --------------------------------------------------------
  Result<Statement> ParseStatementInner() {
    if (PeekKeyword("select")) {
      DC_ASSIGN_OR_RETURN(auto sel, ParseSelect());
      Statement stmt;
      stmt.kind = Statement::Kind::kSelect;
      stmt.select = std::move(sel);
      return stmt;
    }
    if (PeekKeyword("create")) return ParseCreate();
    if (PeekKeyword("insert")) return ParseInsert();
    if (PeekKeyword("drop")) return ParseDrop();
    return Err("expected SELECT, CREATE, INSERT or DROP");
  }

  Result<Statement> ParseCreate() {
    DC_RETURN_NOT_OK(ExpectKeyword("create"));
    bool is_basket = false;
    if (MatchKeyword("basket")) {
      is_basket = true;
    } else {
      DC_RETURN_NOT_OK(ExpectKeyword("table"));
    }
    auto create = std::make_unique<CreateStmt>();
    create->is_basket = is_basket;
    DC_ASSIGN_OR_RETURN(create->name, ExpectName());
    DC_RETURN_NOT_OK(ExpectToken(TokenType::kLParen));
    do {
      ColumnDef def;
      DC_ASSIGN_OR_RETURN(def.name, ExpectName());
      if (Peek().type != TokenType::kIdentifier) {
        return Err("expected column type");
      }
      DC_ASSIGN_OR_RETURN(def.type, DataTypeFromString(Advance().text));
      create->columns.push_back(std::move(def));
    } while (MatchToken(TokenType::kComma));
    DC_RETURN_NOT_OK(ExpectToken(TokenType::kRParen));
    if (MatchKeyword("partition")) {
      DC_RETURN_NOT_OK(ExpectKeyword("by"));
      if (!is_basket) {
        return Err("PARTITION BY applies to baskets, not tables");
      }
      DC_ASSIGN_OR_RETURN(create->partition_by, ExpectName());
    }
    // WITH (cardinality(col) = N, ...) — pass-4 key-space hints.
    if (MatchKeyword("with")) {
      if (!is_basket) {
        return Err("WITH (cardinality(...)) applies to baskets, not tables");
      }
      DC_RETURN_NOT_OK(ExpectToken(TokenType::kLParen));
      do {
        DC_RETURN_NOT_OK(ExpectKeyword("cardinality"));
        DC_RETURN_NOT_OK(ExpectToken(TokenType::kLParen));
        DC_ASSIGN_OR_RETURN(std::string col, ExpectName());
        DC_RETURN_NOT_OK(ExpectToken(TokenType::kRParen));
        DC_RETURN_NOT_OK(ExpectToken(TokenType::kEq));
        DC_ASSIGN_OR_RETURN(int64_t n, ExpectInt());
        if (n <= 0) return Err("cardinality must be a positive row count");
        create->cardinality_hints.emplace_back(std::move(col), n);
      } while (MatchToken(TokenType::kComma));
      DC_RETURN_NOT_OK(ExpectToken(TokenType::kRParen));
    }
    Statement stmt;
    stmt.kind = Statement::Kind::kCreate;
    stmt.create = std::move(create);
    return stmt;
  }

  Result<Statement> ParseInsert() {
    DC_RETURN_NOT_OK(ExpectKeyword("insert"));
    DC_RETURN_NOT_OK(ExpectKeyword("into"));
    auto insert = std::make_unique<InsertStmt>();
    DC_ASSIGN_OR_RETURN(insert->table, ExpectName());
    if (MatchToken(TokenType::kLParen)) {
      do {
        DC_ASSIGN_OR_RETURN(std::string col, ExpectName());
        insert->columns.push_back(std::move(col));
      } while (MatchToken(TokenType::kComma));
      DC_RETURN_NOT_OK(ExpectToken(TokenType::kRParen));
    }
    DC_RETURN_NOT_OK(ExpectKeyword("values"));
    do {
      DC_RETURN_NOT_OK(ExpectToken(TokenType::kLParen));
      std::vector<AstExprPtr> row;
      do {
        DC_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
        row.push_back(std::move(e));
      } while (MatchToken(TokenType::kComma));
      DC_RETURN_NOT_OK(ExpectToken(TokenType::kRParen));
      insert->rows.push_back(std::move(row));
    } while (MatchToken(TokenType::kComma));
    Statement stmt;
    stmt.kind = Statement::Kind::kInsert;
    stmt.insert = std::move(insert);
    return stmt;
  }

  Result<Statement> ParseDrop() {
    DC_RETURN_NOT_OK(ExpectKeyword("drop"));
    if (!MatchKeyword("table")) {
      DC_RETURN_NOT_OK(ExpectKeyword("basket"));
    }
    auto drop = std::make_unique<DropStmt>();
    DC_ASSIGN_OR_RETURN(drop->name, ExpectName());
    Statement stmt;
    stmt.kind = Statement::Kind::kDrop;
    stmt.drop = std::move(drop);
    return stmt;
  }

  // --- SELECT -----------------------------------------------------------
  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    DC_RETURN_NOT_OK(ExpectKeyword("select"));
    auto sel = std::make_unique<SelectStmt>();
    sel->distinct = MatchKeyword("distinct");
    do {
      DC_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      sel->items.push_back(std::move(item));
    } while (MatchToken(TokenType::kComma));

    DC_RETURN_NOT_OK(ExpectKeyword("from"));
    DC_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    sel->from.push_back(std::move(first));
    while (PeekKeyword("join")) {
      Advance();
      DC_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      DC_RETURN_NOT_OK(ExpectKeyword("on"));
      DC_ASSIGN_OR_RETURN(ref.join_on, ParseExpr());
      ref.is_join = true;
      sel->from.push_back(std::move(ref));
    }
    if (Peek().type == TokenType::kComma) {
      return Status::ParseError(
          "comma joins are not supported; use JOIN ... ON");
    }

    if (MatchKeyword("where")) {
      DC_ASSIGN_OR_RETURN(sel->where, ParseExpr());
    }
    if (MatchKeyword("group")) {
      DC_RETURN_NOT_OK(ExpectKeyword("by"));
      do {
        DC_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
        sel->group_by.push_back(std::move(e));
      } while (MatchToken(TokenType::kComma));
    }
    if (MatchKeyword("having")) {
      DC_ASSIGN_OR_RETURN(sel->having, ParseExpr());
    }
    if (MatchKeyword("order")) {
      DC_RETURN_NOT_OK(ExpectKeyword("by"));
      do {
        OrderItem item;
        DC_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("desc")) {
          item.ascending = false;
        } else {
          MatchKeyword("asc");
        }
        sel->order_by.push_back(std::move(item));
      } while (MatchToken(TokenType::kComma));
    }
    if (MatchKeyword("limit")) {
      DC_ASSIGN_OR_RETURN(sel->limit, ExpectInt());
      if (MatchKeyword("offset")) {
        DC_ASSIGN_OR_RETURN(sel->offset, ExpectInt());
      }
    }
    if (MatchKeyword("window")) {
      DC_RETURN_NOT_OK(ParseWindow(&sel->window));
    }
    if (MatchKeyword("threshold")) {
      DC_ASSIGN_OR_RETURN(sel->threshold, ExpectInt());
    }
    return sel;
  }

  Result<int64_t> ExpectInt() {
    if (Peek().type != TokenType::kIntLiteral) {
      return Status::ParseError("expected integer, got '" + DescribeCurrent() +
                                "'");
    }
    return Advance().int_value;
  }

  /// Time unit multiplier to microseconds.
  Result<int64_t> ExpectTimeUnit() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected time unit");
    }
    std::string u = ToLower(Advance().text);
    if (u == "microsecond" || u == "microseconds" || u == "us") return 1;
    if (u == "millisecond" || u == "milliseconds" || u == "ms") return 1000;
    if (u == "second" || u == "seconds" || u == "s") return 1000000;
    if (u == "minute" || u == "minutes") return int64_t{60} * 1000000;
    if (u == "hour" || u == "hours") return int64_t{3600} * 1000000;
    return Status::ParseError("unknown time unit '" + u + "'");
  }

  Status ParseWindow(WindowClause* w) {
    if (MatchKeyword("size")) {
      w->kind = WindowClause::Kind::kCount;
      DC_ASSIGN_OR_RETURN(w->size, ExpectInt());
      if (MatchKeyword("slide")) {
        DC_ASSIGN_OR_RETURN(w->slide, ExpectInt());
      } else {
        w->slide = w->size;  // tumbling
      }
      return Status::OK();
    }
    if (MatchKeyword("range")) {
      w->kind = WindowClause::Kind::kTime;
      DC_ASSIGN_OR_RETURN(int64_t n, ExpectInt());
      DC_ASSIGN_OR_RETURN(int64_t unit, ExpectTimeUnit());
      w->size = n * unit;
      if (MatchKeyword("slide")) {
        DC_ASSIGN_OR_RETURN(int64_t m, ExpectInt());
        DC_ASSIGN_OR_RETURN(int64_t unit2, ExpectTimeUnit());
        w->slide = m * unit2;
      } else {
        w->slide = w->size;
      }
      return Status::OK();
    }
    return Status::ParseError("expected SIZE or RANGE after WINDOW");
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Peek().type == TokenType::kStar) {
      Advance();
      item.star = true;
      return item;
    }
    DC_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (MatchKeyword("as")) {
      DC_ASSIGN_OR_RETURN(item.alias, ExpectName());
    } else if (Peek().type == TokenType::kIdentifier &&
               !IsReserved(Peek().text)) {
      item.alias = Advance().text;
    }
    return item;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (MatchToken(TokenType::kLBracket)) {
      DC_ASSIGN_OR_RETURN(ref.basket_expr, ParseSelect());
      DC_RETURN_NOT_OK(ExpectToken(TokenType::kRBracket));
    } else {
      DC_ASSIGN_OR_RETURN(ref.name, ExpectName());
      // Qualified relation name (sys.baskets): the catalog keys reserved
      // system streams under their dotted name, so join the parts back into
      // one identifier. Qualified *column* references against these need a
      // plain alias (`from sys.baskets b ... b.occupancy`), since expression
      // qualifiers are single identifiers.
      if (MatchToken(TokenType::kDot)) {
        DC_ASSIGN_OR_RETURN(std::string rest, ExpectName());
        ref.name += "." + rest;
      }
    }
    if (MatchKeyword("as")) {
      DC_ASSIGN_OR_RETURN(ref.alias, ExpectName());
    } else if (Peek().type == TokenType::kIdentifier &&
               !IsReserved(Peek().text)) {
      ref.alias = Advance().text;
    }
    if (ref.is_basket_expr() && ref.alias.empty()) {
      return Status::ParseError("a basket expression requires an alias");
    }
    return ref;
  }

  // --- expressions (precedence climbing) --------------------------------
  Result<AstExprPtr> ParseExpr() { return ParseOr(); }

  Result<AstExprPtr> ParseOr() {
    DC_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseAnd());
    while (MatchKeyword("or")) {
      DC_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseAnd());
      lhs = MakeBinary(AstBinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<AstExprPtr> ParseAnd() {
    DC_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseNot());
    while (MatchKeyword("and")) {
      DC_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseNot());
      lhs = MakeBinary(AstBinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<AstExprPtr> ParseNot() {
    if (PeekKeyword("not")) {
      const Token& tok = Advance();
      DC_ASSIGN_OR_RETURN(AstExprPtr operand, ParseNot());
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kUnary;
      e->unary_op = AstUnaryOp::kNot;
      SetPos(e.get(), tok);
      e->children.push_back(std::move(operand));
      return e;
    }
    return ParseComparison();
  }

  Result<AstExprPtr> ParseComparison() {
    DC_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseAdditive());
    // [NOT] BETWEEN / IN / LIKE — desugared at parse time.
    bool negated = false;
    if (PeekKeyword("not") &&
        (PeekKeyword("between", 1) || PeekKeyword("in", 1) ||
         PeekKeyword("like", 1))) {
      Advance();
      negated = true;
    }
    if (MatchKeyword("between")) {
      DC_ASSIGN_OR_RETURN(AstExprPtr lo, ParseAdditive());
      DC_RETURN_NOT_OK(ExpectKeyword("and"));
      DC_ASSIGN_OR_RETURN(AstExprPtr hi, ParseAdditive());
      // a BETWEEN x AND y  =>  (a >= x) and (a <= y)
      AstExprPtr ge = MakeBinary(AstBinaryOp::kGe, lhs->Clone(), std::move(lo));
      AstExprPtr le = MakeBinary(AstBinaryOp::kLe, std::move(lhs), std::move(hi));
      AstExprPtr both =
          MakeBinary(AstBinaryOp::kAnd, std::move(ge), std::move(le));
      return negated ? MakeNot(std::move(both)) : std::move(both);
    }
    if (MatchKeyword("in")) {
      DC_RETURN_NOT_OK(ExpectToken(TokenType::kLParen));
      // a IN (v1, v2, ...)  =>  (a = v1) or (a = v2) or ...
      AstExprPtr disjunction;
      do {
        DC_ASSIGN_OR_RETURN(AstExprPtr item, ParseExpr());
        AstExprPtr eq =
            MakeBinary(AstBinaryOp::kEq, lhs->Clone(), std::move(item));
        disjunction = disjunction == nullptr
                          ? std::move(eq)
                          : MakeBinary(AstBinaryOp::kOr,
                                       std::move(disjunction), std::move(eq));
      } while (MatchToken(TokenType::kComma));
      DC_RETURN_NOT_OK(ExpectToken(TokenType::kRParen));
      return negated ? MakeNot(std::move(disjunction))
                     : std::move(disjunction);
    }
    if (MatchKeyword("like")) {
      DC_ASSIGN_OR_RETURN(AstExprPtr pattern, ParseAdditive());
      AstExprPtr like =
          MakeBinary(AstBinaryOp::kLike, std::move(lhs), std::move(pattern));
      return negated ? MakeNot(std::move(like)) : std::move(like);
    }
    if (negated) {
      return Err("expected BETWEEN, IN or LIKE after NOT").status();
    }
    // IS [NOT] NULL
    if (PeekKeyword("is")) {
      Advance();
      bool negated = MatchKeyword("not");
      DC_RETURN_NOT_OK(ExpectKeyword("null"));
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kUnary;
      e->unary_op = negated ? AstUnaryOp::kIsNotNull : AstUnaryOp::kIsNull;
      e->line = lhs->line;
      e->col = lhs->col;
      e->children.push_back(std::move(lhs));
      return e;
    }
    AstBinaryOp op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = AstBinaryOp::kEq;
        break;
      case TokenType::kNe:
        op = AstBinaryOp::kNe;
        break;
      case TokenType::kLt:
        op = AstBinaryOp::kLt;
        break;
      case TokenType::kLe:
        op = AstBinaryOp::kLe;
        break;
      case TokenType::kGt:
        op = AstBinaryOp::kGt;
        break;
      case TokenType::kGe:
        op = AstBinaryOp::kGe;
        break;
      default:
        return lhs;
    }
    Advance();
    DC_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseAdditive());
    return MakeBinary(op, std::move(lhs), std::move(rhs));
  }

  Result<AstExprPtr> ParseAdditive() {
    DC_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseMultiplicative());
    while (true) {
      AstBinaryOp op;
      if (Peek().type == TokenType::kPlus) {
        op = AstBinaryOp::kAdd;
      } else if (Peek().type == TokenType::kMinus) {
        op = AstBinaryOp::kSub;
      } else {
        return lhs;
      }
      Advance();
      DC_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<AstExprPtr> ParseMultiplicative() {
    DC_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseUnary());
    while (true) {
      AstBinaryOp op;
      if (Peek().type == TokenType::kStar) {
        op = AstBinaryOp::kMul;
      } else if (Peek().type == TokenType::kSlash) {
        op = AstBinaryOp::kDiv;
      } else if (Peek().type == TokenType::kPercent) {
        op = AstBinaryOp::kMod;
      } else {
        return lhs;
      }
      Advance();
      DC_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<AstExprPtr> ParseUnary() {
    if (Peek().type == TokenType::kMinus) {
      const Token& tok = Advance();
      DC_ASSIGN_OR_RETURN(AstExprPtr operand, ParseUnary());
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kUnary;
      e->unary_op = AstUnaryOp::kNeg;
      SetPos(e.get(), tok);
      e->children.push_back(std::move(operand));
      return e;
    }
    return ParsePrimary();
  }

  static bool IsAggregateName(std::string_view name) {
    return EqualsIgnoreCase(name, "count") || EqualsIgnoreCase(name, "sum") ||
           EqualsIgnoreCase(name, "min") || EqualsIgnoreCase(name, "max") ||
           EqualsIgnoreCase(name, "avg");
  }

  static bool IsScalarFuncName(std::string_view name) {
    for (const char* f : {"abs", "floor", "ceil", "round", "sqrt", "length",
                          "lower", "upper"}) {
      if (EqualsIgnoreCase(name, f)) return true;
    }
    return false;
  }

  Result<AstExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kIntLiteral: {
        Advance();
        auto e = std::make_unique<AstExpr>();
        e->kind = AstExprKind::kLiteral;
        e->literal = Value::Int64(t.int_value);
        SetPos(e.get(), t);
        return e;
      }
      case TokenType::kFloatLiteral: {
        Advance();
        auto e = std::make_unique<AstExpr>();
        e->kind = AstExprKind::kLiteral;
        e->literal = Value::Double(t.float_value);
        SetPos(e.get(), t);
        return e;
      }
      case TokenType::kStringLiteral: {
        Advance();
        auto e = std::make_unique<AstExpr>();
        e->kind = AstExprKind::kLiteral;
        e->literal = Value::String(t.text);
        SetPos(e.get(), t);
        return e;
      }
      case TokenType::kLParen: {
        Advance();
        DC_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
        DC_RETURN_NOT_OK(ExpectToken(TokenType::kRParen));
        return e;
      }
      case TokenType::kIdentifier:
        break;  // handled below
      default:
        return Err("unexpected token '" + DescribeCurrent() +
                   "' in expression")
            .status();
    }
    // true/false/null literals.
    if (MatchKeyword("true")) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kLiteral;
      e->literal = Value::Bool(true);
      SetPos(e.get(), t);
      return e;
    }
    if (MatchKeyword("false")) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kLiteral;
      e->literal = Value::Bool(false);
      SetPos(e.get(), t);
      return e;
    }
    if (MatchKeyword("null")) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kLiteral;
      e->literal = Value::Null();
      SetPos(e.get(), t);
      return e;
    }
    // Searched CASE expression.
    if (PeekKeyword("case")) {
      Advance();
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kCase;
      SetPos(e.get(), t);
      if (!PeekKeyword("when")) {
        return Err("only the searched CASE form (CASE WHEN ...) is supported")
            .status();
      }
      while (MatchKeyword("when")) {
        DC_ASSIGN_OR_RETURN(AstExprPtr cond, ParseExpr());
        DC_RETURN_NOT_OK(ExpectKeyword("then"));
        DC_ASSIGN_OR_RETURN(AstExprPtr val, ParseExpr());
        e->children.push_back(std::move(cond));
        e->children.push_back(std::move(val));
      }
      DC_RETURN_NOT_OK(ExpectKeyword("else"));
      DC_ASSIGN_OR_RETURN(AstExprPtr other, ParseExpr());
      e->children.push_back(std::move(other));
      DC_RETURN_NOT_OK(ExpectKeyword("end"));
      return e;
    }
    // Function call: aggregates and built-in scalar functions.
    if (Peek(1).type == TokenType::kLParen &&
        (IsAggregateName(t.text) || IsScalarFuncName(t.text))) {
      std::string fname = ToLower(Advance().text);
      Advance();  // '('
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kFuncCall;
      e->func_name = std::move(fname);
      SetPos(e.get(), t);
      if (Peek().type == TokenType::kStar) {
        Advance();
        e->star = true;
      } else {
        DC_ASSIGN_OR_RETURN(AstExprPtr arg, ParseExpr());
        e->children.push_back(std::move(arg));
      }
      DC_RETURN_NOT_OK(ExpectToken(TokenType::kRParen));
      return e;
    }
    // Column reference: name or qualifier.name.
    if (IsReserved(t.text)) {
      return Err("unexpected keyword '" + t.text + "' in expression")
          .status();
    }
    std::string first = Advance().text;
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kColumnRef;
    SetPos(e.get(), t);
    if (MatchToken(TokenType::kDot)) {
      DC_ASSIGN_OR_RETURN(e->column, ExpectName());
      e->qualifier = std::move(first);
    } else {
      e->column = std::move(first);
    }
    return e;
  }

  static void SetPos(AstExpr* e, const Token& t) {
    e->line = t.line;
    e->col = t.col;
  }

  static AstExprPtr MakeNot(AstExprPtr operand) {
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kUnary;
    e->unary_op = AstUnaryOp::kNot;
    e->line = operand->line;
    e->col = operand->col;
    e->children.push_back(std::move(operand));
    return e;
  }

  static AstExprPtr MakeBinary(AstBinaryOp op, AstExprPtr l, AstExprPtr r) {
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kBinary;
    e->binary_op = op;
    // A compound expression is pinned at its left operand — close enough
    // for diagnostics and stable under desugaring (BETWEEN/IN clones).
    e->line = l->line;
    e->col = l->col;
    e->children.push_back(std::move(l));
    e->children.push_back(std::move(r));
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view sql) {
  DC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<std::vector<Statement>> ParseScript(std::string_view sql) {
  DC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseScript();
}

}  // namespace sql
}  // namespace datacell
