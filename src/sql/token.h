#ifndef DATACELL_SQL_TOKEN_H_
#define DATACELL_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace datacell {

enum class TokenType {
  kEof,
  kIdentifier,   // table/column names; keywords are classified by the parser
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  // punctuation & operators
  kComma,
  kSemicolon,
  kLParen,
  kRParen,
  kLBracket,  // [  — opens a basket expression
  kRBracket,  // ]
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,       // =
  kNe,       // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kDot,
};

/// One lexical token with its source location (for error messages).
struct Token {
  TokenType type = TokenType::kEof;
  std::string text;       // identifier/keyword text (original case) or literal
  int64_t int_value = 0;  // kIntLiteral
  double float_value = 0; // kFloatLiteral
  size_t offset = 0;      // byte offset in the statement
  uint32_t line = 1;      // 1-based source line
  uint32_t col = 1;       // 1-based source column
};

const char* TokenTypeToString(TokenType t);

}  // namespace datacell

#endif  // DATACELL_SQL_TOKEN_H_
