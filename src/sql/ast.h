#ifndef DATACELL_SQL_AST_H_
#define DATACELL_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "storage/types.h"

namespace datacell {
namespace sql {

// ---------------------------------------------------------------------------
// Expressions (unresolved; names are bound against the catalog later)
// ---------------------------------------------------------------------------

enum class AstExprKind {
  kColumnRef,  // [qualifier.]name
  kLiteral,
  kBinary,
  kUnary,
  kFuncCall,  // aggregates: count/sum/avg/min/max; count(*) sets star
  kCase,      // children: cond0,val0,cond1,val1,...,else (else mandatory)
};

enum class AstBinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kLike,
};

enum class AstUnaryOp { kNot, kNeg, kIsNull, kIsNotNull };

struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

struct AstExpr {
  AstExprKind kind = AstExprKind::kLiteral;
  // kColumnRef
  std::string qualifier;  // optional table/alias prefix
  std::string column;
  // kLiteral
  Value literal;
  // kBinary / kUnary
  AstBinaryOp binary_op = AstBinaryOp::kAdd;
  AstUnaryOp unary_op = AstUnaryOp::kNot;
  // kFuncCall
  std::string func_name;  // lower-cased
  bool star = false;      // count(*)
  // children: binary = {lhs, rhs}; unary/func = {operand/args...}
  std::vector<AstExprPtr> children;
  // Source position of the token this expression starts at (1-based; 0 =
  // unknown, e.g. desugared nodes). Threaded into binder diagnostics and the
  // static analyzer.
  uint32_t line = 0;
  uint32_t col = 0;

  /// SQL-ish rendering for diagnostics.
  std::string ToString() const;

  /// Deep copy (used when desugaring BETWEEN/IN duplicates an operand).
  AstExprPtr Clone() const;
};

/// True for the five aggregate function names (count/sum/min/max/avg);
/// any other kFuncCall is a scalar function.
bool IsAggregateFuncName(const std::string& lower_name);

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

struct SelectStmt;

/// A FROM item: either a named relation or a bracketed basket expression
/// `[select ...]` (the DataCell predicate-window construct, §2.6).
struct TableRef {
  std::string name;   // named relation (empty for basket expressions)
  std::string alias;  // optional; basket expressions require one ("as S")
  std::unique_ptr<SelectStmt> basket_expr;  // non-null for [select ...]
  bool is_basket_expr() const { return basket_expr != nullptr; }
  /// Join clause: this ref joins the previous FROM item on `join_on`.
  bool is_join = false;
  AstExprPtr join_on;
};

struct SelectItem {
  AstExprPtr expr;     // null when star
  std::string alias;
  bool star = false;   // bare '*'
};

struct OrderItem {
  AstExprPtr expr;  // column name or output position literal
  bool ascending = true;
};

/// Window clause of a continuous query (DataCell extension, §3.1):
///   WINDOW SIZE <n> [SLIDE <m>]               -- count-based
///   WINDOW RANGE <n> <unit> [SLIDE <m> <unit>] -- time-based on the
///                                                 implicit timestamp column
struct WindowClause {
  enum class Kind { kNone, kCount, kTime } kind = Kind::kNone;
  int64_t size = 0;   // tuples, or microseconds for kTime
  int64_t slide = 0;  // 0 => tumbling (slide == size)
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  AstExprPtr where;
  std::vector<AstExprPtr> group_by;
  AstExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;
  WindowClause window;
  /// THRESHOLD n (DataCell extension, §2.4): the factory fires only when at
  /// least n tuples wait in its input basket.
  std::optional<int64_t> threshold;

  /// True when any FROM item (recursively) is a basket expression — the
  /// paper's criterion for classifying a query as continuous (§2.6).
  bool IsContinuous() const;
};

// ---------------------------------------------------------------------------
// Other statements
// ---------------------------------------------------------------------------

struct ColumnDef {
  std::string name;
  DataType type;
};

struct CreateStmt {
  std::string name;
  std::vector<ColumnDef> columns;
  bool is_basket = false;  // CREATE BASKET vs CREATE TABLE
  /// `PARTITION BY <column>` (baskets only): the column the stream's ingest
  /// will hash-shard on. Advisory today — the partition-safety analyzer
  /// (pass 3) seeds its key lattice from it. Empty = none declared.
  std::string partition_by;
  /// `WITH (cardinality(col) = N, ...)` (baskets only): declared key-space
  /// sizes the state-bound analyzer (pass 4) uses to bound group-by /
  /// distinct state on those columns. (column name, N) pairs, N > 0.
  std::vector<std::pair<std::string, int64_t>> cardinality_hints;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;        // optional explicit column list
  std::vector<std::vector<AstExprPtr>> rows;  // literal rows
};

struct DropStmt {
  std::string name;
};

/// One parsed statement (a tagged union of the statement kinds).
struct Statement {
  enum class Kind { kSelect, kCreate, kInsert, kDrop } kind = Kind::kSelect;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<CreateStmt> create;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<DropStmt> drop;
};

}  // namespace sql
}  // namespace datacell

#endif  // DATACELL_SQL_AST_H_
