#ifndef DATACELL_SQL_PARSER_H_
#define DATACELL_SQL_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace datacell {
namespace sql {

/// Parses one SQL statement (a trailing ';' is allowed).
///
/// Supported statements:
///   SELECT [DISTINCT] items FROM ref [JOIN ref ON expr]...
///     [WHERE expr] [GROUP BY cols] [HAVING expr] [ORDER BY items]
///     [LIMIT n [OFFSET m]]
///     [WINDOW SIZE n [SLIDE m] | WINDOW RANGE n unit [SLIDE m unit]]
///     [THRESHOLD n]
///   CREATE TABLE|BASKET name (col type, ...)
///   INSERT INTO name [(cols)] VALUES (lits), ...
///   DROP TABLE|BASKET name
///
/// A FROM ref is a relation name or a DataCell basket expression
/// `[select ...] AS alias` (§2.6).
Result<Statement> ParseStatement(std::string_view sql);

/// Parses a script of ';'-separated statements.
Result<std::vector<Statement>> ParseScript(std::string_view sql);

}  // namespace sql
}  // namespace datacell

#endif  // DATACELL_SQL_PARSER_H_
