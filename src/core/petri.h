#ifndef DATACELL_CORE_PETRI_H_
#define DATACELL_CORE_PETRI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace datacell {

/// Abstract Petri net (§2.4): the formal processing model DataCell's
/// scheduler follows. Places hold tokens (tuples in baskets); transitions
/// (receptors, factories, emitters) fire when every input place holds at
/// least its required token count, consuming input tokens and producing
/// output tokens.
///
/// The concrete engine implements the same semantics directly over baskets;
/// this standalone net exists to (a) validate dataflow topologies before
/// they run and (b) make the model property-testable in isolation (token
/// conservation, enabling monotonicity, deadlock detection).
class PetriNet {
 public:
  using PlaceId = size_t;
  using TransitionId = size_t;

  /// Adds a place with `initial_tokens`; returns its id.
  PlaceId AddPlace(std::string name, int64_t initial_tokens = 0);

  struct Arc {
    PlaceId place;
    int64_t weight = 1;  // tokens consumed (input) or produced (output)
  };

  /// Adds a transition; every input arc weight doubles as the enabling
  /// threshold (the "minimum of n tuples" rule of §2.4).
  Result<TransitionId> AddTransition(std::string name, std::vector<Arc> inputs,
                                     std::vector<Arc> outputs);

  size_t num_places() const { return places_.size(); }
  size_t num_transitions() const { return transitions_.size(); }
  int64_t tokens(PlaceId p) const { return places_[p].tokens; }
  const std::string& place_name(PlaceId p) const { return places_[p].name; }
  const std::string& transition_name(TransitionId t) const {
    return transitions_[t].name;
  }

  /// A transition is enabled iff every input place holds >= arc weight.
  bool Enabled(TransitionId t) const;
  /// All currently enabled transitions.
  std::vector<TransitionId> EnabledTransitions() const;

  /// Fires `t`: consumes input tokens, produces output tokens. Fails when
  /// not enabled.
  Status Fire(TransitionId t);

  /// Fires enabled transitions round-robin until none is enabled or
  /// `max_firings` is reached; returns the number of firings.
  int64_t RunToQuiescence(int64_t max_firings);

  /// Sum of tokens over all places.
  int64_t TotalTokens() const;

  /// True when no transition is enabled.
  bool Quiescent() const { return EnabledTransitions().empty(); }

  /// Adds `n` tokens to `p` (models external arrivals at source places).
  void Inject(PlaceId p, int64_t n);

  /// Static topology check: transitions that can never fire because some
  /// input place has no producer (no transition outputs into it) and holds
  /// fewer tokens than the arc requires. Used to validate a dataflow before
  /// running it — a continuous query wired to a basket nothing feeds is a
  /// configuration bug, not a runtime condition.
  std::vector<TransitionId> DeadTransitions() const;

 private:
  struct Place {
    std::string name;
    int64_t tokens = 0;
  };
  struct Transition {
    std::string name;
    std::vector<Arc> inputs;
    std::vector<Arc> outputs;
  };
  std::vector<Place> places_;
  std::vector<Transition> transitions_;
};

}  // namespace datacell

#endif  // DATACELL_CORE_PETRI_H_
