#ifndef DATACELL_CORE_SCHEDULER_H_
#define DATACELL_CORE_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/trace.h"
#include "core/transition.h"

namespace datacell {

/// Order in which ready transitions are fired within a sweep.
enum class SchedulingPolicy {
  /// Fair: the sweep's starting transition rotates, so no transition
  /// starves even under constant load.
  kRoundRobin,
  /// Higher `Transition::priority()` first (stable for equal priorities) —
  /// the hook for low-latency queries (§3.2).
  kPriority,
  /// Adapts to the workload each sweep: transitions with the largest input
  /// backlog fire first, so pressure drains where it builds (§3.2's
  /// dynamically adapting scheduling policy).
  kAdaptive,
};

/// The DataCell scheduler (§2.4): runs an infinite loop, re-evaluating every
/// transition's firing condition and firing the enabled ones. Supports a
/// deterministic single-stepped mode (`Step`) used by tests and a threaded
/// mode (`Start`/`Stop`) matching the paper's multi-threaded architecture.
class Scheduler {
 public:
  explicit Scheduler(SchedulingPolicy policy = SchedulingPolicy::kRoundRobin)
      : policy_(policy) {}
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void AddTransition(TransitionPtr t);
  /// Detaches a transition from scheduling (by identity). It stops firing
  /// after the current sweep; the object itself stays alive through any
  /// in-flight snapshot. Returns false when not found.
  bool RemoveTransition(const Transition* t);
  const std::vector<TransitionPtr>& transitions() const { return transitions_; }

  /// One sweep: fires every currently-ready transition once, in policy
  /// order. Returns the number of transitions fired. Transition errors are
  /// recorded (see `last_error`) and do not abort the sweep — a failing
  /// query must not take the engine down.
  int Step();

  /// Sweeps until quiescent (no transition ready) or `max_sweeps` reached.
  /// Returns total firings.
  int64_t RunUntilQuiescent(int64_t max_sweeps = 1000000);

  /// Spawns `num_threads` scheduler workers running the infinite loop (the
  /// paper's multi-threaded architecture: transitions fire concurrently,
  /// serialised per transition by a claim flag and per basket by the basket
  /// monitors). 1 thread reproduces the classic single-loop scheduler.
  Status Start(size_t num_threads = 1);
  /// Stops and joins all scheduler threads. Idempotent.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Wakes idle scheduler workers: a Petri-net input place gained tokens
  /// (basket append, channel push, transition added). Baskets created by the
  /// engine call this from their append paths, so transitions fire the
  /// moment their inputs become available instead of on the next poll tick.
  /// Cheap and safe to call from any thread, including under a basket lock's
  /// shadow (it takes only the scheduler's wake mutex).
  void NotifyWork();

  SchedulingPolicy policy() const { return policy_; }
  void set_policy(SchedulingPolicy p) { policy_ = p; }

  int64_t sweeps() const { return sweeps_.load(std::memory_order_relaxed); }
  int64_t total_firings() const {
    return firings_.load(std::memory_order_relaxed);
  }
  int64_t error_count() const {
    return errors_.load(std::memory_order_relaxed);
  }
  /// Times a worker found nothing to fire and blocked on the wake signal
  /// (idle behaviour diagnostics: an idle scheduler should accumulate waits,
  /// not sweeps).
  int64_t idle_waits() const {
    return idle_waits_.load(std::memory_order_relaxed);
  }
  /// Why idle waits ended: a NotifyWork signal (tokens arrived) vs the
  /// bounded fallback tick (wall-clock window boundaries and other
  /// notifier-less readiness changes). Together with idle_waits these are
  /// the scheduler's wake-reason accounting.
  int64_t wakes_notified() const {
    return wakes_notified_.load(std::memory_order_relaxed);
  }
  int64_t wakes_timeout() const {
    return wakes_timeout_.load(std::memory_order_relaxed);
  }
  Status last_error() const;

  /// Enables event tracing: sweeps, per-transition firings and idle wakes
  /// are recorded into `ring`, timestamped by `clock`. Call before Start
  /// (or between stepped sweeps); pass nullptrs to detach. The engine owns
  /// both objects and wires them when EngineOptions::trace_capacity > 0.
  void SetTrace(TraceRing* ring, const Clock* clock) {
    trace_ring_ = ring;
    trace_clock_ = clock;
  }

  /// Bounds the threaded workers' idle fallback wait: how long a worker
  /// sleeps with no wake notification before re-checking readiness changes
  /// that have no notifier (wall-clock windows, the monitor's tick). Call
  /// before Start. Small values poll faster; large values let tests freeze
  /// the scheduler between explicit wakes.
  void SetIdleFallbackUs(int64_t us) { idle_fallback_us_ = us; }
  int64_t idle_fallback_us() const { return idle_fallback_us_; }

  size_t num_threads() const { return threads_.size(); }

 private:
  void Loop();
  std::vector<size_t> FiringOrder() const;
  /// One pass over a transition snapshot claiming + firing; shared by the
  /// stepped and threaded modes.
  int FireSweep(const std::vector<TransitionPtr>& snapshot,
                const std::vector<size_t>& order);

  SchedulingPolicy policy_;
  std::vector<TransitionPtr> transitions_;
  mutable std::mutex transitions_mu_;  // guards vector shape, not elements

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::vector<std::thread> threads_;

  // Event-driven idle handling: NotifyWork bumps the epoch (under wake_mu_,
  // so a worker cannot slip between its epoch snapshot check and the wait)
  // and wakes the workers. A worker whose sweep fired nothing blocks until
  // the epoch moves past the snapshot it took *before* that sweep — tokens
  // that arrived mid-sweep are never missed. A bounded fallback wait covers
  // readiness changes with no notifier (wall-clock windows, direct channel
  // writes).
  // Written during wiring (before Start), read by the worker loops.
  int64_t idle_fallback_us_ = 2000;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<uint64_t> work_epoch_{0};
  std::atomic<int64_t> idle_waits_{0};
  std::atomic<int64_t> wakes_notified_{0};
  std::atomic<int64_t> wakes_timeout_{0};

  // Tracing (null = off). Set during wiring, before workers run.
  TraceRing* trace_ring_ = nullptr;
  const Clock* trace_clock_ = nullptr;

  std::atomic<int64_t> sweeps_{0};
  std::atomic<int64_t> firings_{0};
  std::atomic<int64_t> errors_{0};
  mutable std::mutex error_mu_;
  Status last_error_;
  size_t rr_offset_ = 0;
};

}  // namespace datacell

#endif  // DATACELL_CORE_SCHEDULER_H_
