#ifndef DATACELL_CORE_TRANSITION_H_
#define DATACELL_CORE_TRANSITION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/metrics_registry.h"
#include "common/result.h"

namespace datacell {

/// Kind of Petri-net transition a runtime component plays (§2.4).
enum class TransitionKind { kReceptor, kFactory, kEmitter };

const char* TransitionKindToString(TransitionKind k);

/// A schedulable unit of the DataCell dataflow: receptors, factories and
/// emitters all implement this interface. The scheduler continuously
/// re-evaluates `Ready()` and calls `Fire()` on enabled transitions.
///
/// Implementations must make Fire() safe to call from the scheduler thread
/// while producers append to the input baskets from other threads (basket
/// operations are individually atomic).
class Transition {
 public:
  Transition(std::string name, TransitionKind kind, int priority = 0)
      : name_(std::move(name)), kind_(kind), priority_(priority) {}
  virtual ~Transition() = default;

  Transition(const Transition&) = delete;
  Transition& operator=(const Transition&) = delete;

  const std::string& name() const { return name_; }
  TransitionKind kind() const { return kind_; }
  /// Larger fires first under the priority policy.
  int priority() const { return priority_; }
  void set_priority(int p) { priority_ = p; }

  /// Firing condition: input available (≥ threshold tuples in every input
  /// basket, per §2.4).
  virtual bool Ready() const = 0;

  /// Performs one unit of work; returns the number of tuples processed.
  /// Firing an un-Ready transition is allowed and returns 0.
  virtual Result<int64_t> Fire() = 0;

  /// Work waiting at this transition's inputs (tuples/lines), used by the
  /// adaptive scheduling policy (§3.2) to order firings by pressure.
  /// Default: 1 when Ready, else 0.
  virtual int64_t Backlog() const { return Ready() ? 1 : 0; }

  // --- parallel scheduling support ---------------------------------------
  /// Claims the transition for firing; at most one scheduler worker may run
  /// `Fire()` at a time (a factory's window state is single-writer). Returns
  /// false when another worker holds it.
  bool TryClaim() {
    bool expected = false;
    return in_flight_.compare_exchange_strong(expected, true,
                                              std::memory_order_acquire);
  }
  void Release() { in_flight_.store(false, std::memory_order_release); }

  // --- statistics -------------------------------------------------------
  int64_t runs() const { return runs_.load(std::memory_order_relaxed); }
  int64_t tuples_processed() const {
    return tuples_.load(std::memory_order_relaxed);
  }
  int64_t busy_time_us() const {
    return busy_us_.load(std::memory_order_relaxed);
  }

  /// Per-instance registry cells this transition feeds from RecordRun.
  /// Bound once by the engine at wiring time (before the transition enters
  /// the scheduler); any pointer may be null.
  struct MetricsBinding {
    Counter* fires = nullptr;            // productive Fire() calls
    Counter* tuples = nullptr;           // tuples processed
    Histogram* fire_latency_us = nullptr;  // per-fire wall time
  };
  void BindMetrics(const MetricsBinding& binding) { metrics_ = binding; }

 protected:
  void RecordRun(int64_t tuples, int64_t elapsed_us) {
    runs_.fetch_add(1, std::memory_order_relaxed);
    tuples_.fetch_add(tuples, std::memory_order_relaxed);
    busy_us_.fetch_add(elapsed_us, std::memory_order_relaxed);
    if (metrics_.fires != nullptr) metrics_.fires->Inc();
    if (metrics_.tuples != nullptr) metrics_.tuples->Inc(tuples);
    if (metrics_.fire_latency_us != nullptr) {
      metrics_.fire_latency_us->Observe(elapsed_us);
    }
  }

 private:
  std::string name_;
  TransitionKind kind_;
  int priority_;
  std::atomic<bool> in_flight_{false};
  std::atomic<int64_t> runs_{0};
  std::atomic<int64_t> tuples_{0};
  std::atomic<int64_t> busy_us_{0};
  MetricsBinding metrics_;  // written before scheduling starts, then read-only
};

using TransitionPtr = std::shared_ptr<Transition>;

}  // namespace datacell

#endif  // DATACELL_CORE_TRANSITION_H_
