#include "core/scheduler.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/lock_order.h"

namespace datacell {

Scheduler::~Scheduler() { Stop(); }

void Scheduler::AddTransition(TransitionPtr t) {
  {
    std::lock_guard<std::mutex> lock(transitions_mu_);
    DC_LOCK_ORDER(&transitions_mu_, "scheduler_transitions", "scheduler");
    transitions_.push_back(std::move(t));
  }
  // The new transition may already be enabled; idle workers must see it.
  NotifyWork();
}

void Scheduler::NotifyWork() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    DC_LOCK_ORDER(&wake_mu_, "scheduler_wake", "scheduler");
    work_epoch_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_all();
}

bool Scheduler::RemoveTransition(const Transition* t) {
  std::lock_guard<std::mutex> lock(transitions_mu_);
  DC_LOCK_ORDER(&transitions_mu_, "scheduler_transitions", "scheduler");
  for (auto it = transitions_.begin(); it != transitions_.end(); ++it) {
    if (it->get() == t) {
      transitions_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<size_t> Scheduler::FiringOrder() const {
  std::vector<size_t> order(transitions_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (policy_ == SchedulingPolicy::kPriority) {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return transitions_[a]->priority() > transitions_[b]->priority();
    });
  } else if (policy_ == SchedulingPolicy::kAdaptive) {
    // Re-evaluated every sweep: the ordering follows the workload.
    std::vector<int64_t> backlog(transitions_.size());
    for (size_t i = 0; i < transitions_.size(); ++i) {
      backlog[i] = transitions_[i]->Backlog();
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return backlog[a] > backlog[b];
    });
  } else {
    // Round-robin: rotate the starting point each sweep.
    if (!order.empty()) {
      std::rotate(order.begin(),
                  order.begin() +
                      static_cast<ptrdiff_t>(rr_offset_ % order.size()),
                  order.end());
    }
  }
  return order;
}

int Scheduler::FireSweep(const std::vector<TransitionPtr>& snapshot,
                         const std::vector<size_t>& order) {
  // kTraceCompiled is constexpr false under -DDATACELL_TRACE=OFF, so the
  // tracing branches below (including the clock reads) fold away entirely.
  TraceRing* ring = kTraceCompiled ? trace_ring_ : nullptr;
  const Clock* tclock = trace_clock_;
  if (tclock == nullptr) ring = nullptr;
  Timestamp sweep_start = ring != nullptr ? tclock->Now() : 0;
  int fired = 0;
  for (size_t idx : order) {
    Transition& t = *snapshot[idx];
    if (!t.Ready()) continue;
    // A transition must not fire concurrently with itself (factory window
    // state is single-writer); workers skip claimed transitions.
    if (!t.TryClaim()) continue;
    Timestamp fire_start = ring != nullptr ? tclock->Now() : 0;
    Result<int64_t> r = t.Fire();
    t.Release();
    if (!r.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(error_mu_);
        DC_LOCK_ORDER(&error_mu_, "scheduler_error", "scheduler");
        last_error_ = r.status();
      }
      DC_LOG(Error) << "transition '" << t.name()
                    << "' failed: " << r.status().ToString();
      if (ring != nullptr) {
        ring->RecordInstant("scheduler", t.name(), tclock->Now(), "error", 1);
      }
      continue;
    }
    if (*r > 0) {
      ++fired;
      if (ring != nullptr) {
        ring->RecordComplete("transition", t.name(), fire_start,
                             tclock->Now() - fire_start, "tuples", *r);
      }
    }
  }
  sweeps_.fetch_add(1, std::memory_order_relaxed);
  firings_.fetch_add(fired, std::memory_order_relaxed);
  // Only productive sweeps enter the timeline; tracing every empty poll
  // would flood the ring with noise.
  if (ring != nullptr && fired > 0) {
    ring->RecordComplete("scheduler", "sweep", sweep_start,
                         tclock->Now() - sweep_start, "fired", fired);
  }
  return fired;
}

int Scheduler::Step() {
  std::vector<TransitionPtr> snapshot;
  std::vector<size_t> order;
  {
    std::lock_guard<std::mutex> lock(transitions_mu_);
    DC_LOCK_ORDER(&transitions_mu_, "scheduler_transitions", "scheduler");
    snapshot = transitions_;
    order = FiringOrder();
    ++rr_offset_;
  }
  return FireSweep(snapshot, order);
}

int64_t Scheduler::RunUntilQuiescent(int64_t max_sweeps) {
  int64_t total = 0;
  for (int64_t i = 0; i < max_sweeps; ++i) {
    int fired = Step();
    total += fired;
    if (fired == 0) break;
  }
  return total;
}

Status Scheduler::Start(size_t num_threads) {
  if (num_threads == 0) {
    return Status::InvalidArgument("need at least one scheduler thread");
  }
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("scheduler already running");
  }
  stop_requested_.store(false, std::memory_order_release);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { Loop(); });
  }
  return Status::OK();
}

void Scheduler::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    DC_LOCK_ORDER(&wake_mu_, "scheduler_wake", "scheduler");
    stop_requested_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  running_.store(false, std::memory_order_release);
}

void Scheduler::Loop() {
  // The paper's infinite loop: continuously re-evaluate firing conditions.
  // When a sweep fires nothing, block on the wake signal instead of
  // sleep-polling: producers notify on append, so an idle scheduler costs
  // (almost) no CPU and a newly enabled transition fires immediately. The
  // fallback wait bounds the latency of readiness changes that have no
  // notifier (e.g. a wall-clock window boundary passing).
  const auto idle_fallback = std::chrono::microseconds(idle_fallback_us_);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    // Snapshot before the sweep: anything appended after this point, even
    // mid-sweep, moves the epoch and defeats the wait below.
    uint64_t seen = work_epoch_.load(std::memory_order_acquire);
    int fired = Step();
    if (fired == 0) {
      idle_waits_.fetch_add(1, std::memory_order_relaxed);
      {
        std::unique_lock<std::mutex> lock(wake_mu_);
        DC_LOCK_ORDER(&wake_mu_, "scheduler_wake", "scheduler");
        wake_cv_.wait_for(lock, idle_fallback, [&] {
          return work_epoch_.load(std::memory_order_acquire) != seen ||
                 stop_requested_.load(std::memory_order_acquire);
        });
      }
      // Wake-reason accounting: a moved epoch means a producer notified;
      // otherwise the bounded fallback tick expired. An idle engine should
      // accumulate timeouts, a loaded one notifications.
      bool notified = work_epoch_.load(std::memory_order_acquire) != seen;
      if (notified) {
        wakes_notified_.fetch_add(1, std::memory_order_relaxed);
      } else {
        wakes_timeout_.fetch_add(1, std::memory_order_relaxed);
      }
      TraceRing* ring = kTraceCompiled ? trace_ring_ : nullptr;
      if (ring != nullptr && trace_clock_ != nullptr) {
        ring->RecordInstant("scheduler",
                            notified ? "wake_notified" : "wake_timeout",
                            trace_clock_->Now());
      }
    }
  }
}

Status Scheduler::last_error() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  DC_LOCK_ORDER(&error_mu_, "scheduler_error", "scheduler");
  return last_error_;
}

}  // namespace datacell
