#include "core/shared_filter.h"

#include "common/check.h"

namespace datacell {

SharedFilterTransition::SharedFilterTransition(std::string name,
                                               BasketPtr input,
                                               ExprPtr predicate,
                                               BasketPtr output,
                                               const Clock* clock)
    : Transition(std::move(name), TransitionKind::kFactory),
      input_(std::move(input)),
      predicate_(std::move(predicate)),
      output_(std::move(output)),
      clock_(clock) {
  DC_CHECK(input_ != nullptr);
  DC_CHECK(output_ != nullptr);
  DC_CHECK(clock_ != nullptr);
  DC_CHECK(input_->schema() == output_->schema());
  reader_id_ = input_->RegisterReader();
}

bool SharedFilterTransition::Ready() const {
  return input_->UnseenCount(reader_id_) > 0;
}

Result<int64_t> SharedFilterTransition::Fire() {
  Timestamp start = clock_->Now();
  TablePtr slice;
  if (predicate_ == nullptr) {
    slice = input_->ReadNewFor(reader_id_);
  } else {
    DC_ASSIGN_OR_RETURN(slice,
                        input_->ReadNewMatching(reader_id_, *predicate_));
  }
  input_->TrimConsumed();
  if (slice->num_rows() == 0) return 0;
  // Original arrival timestamps travel with the tuples, so downstream
  // time windows and latency accounting stay correct.
  DC_RETURN_NOT_OK(output_->AppendWithTs(*slice));
  int64_t n = static_cast<int64_t>(slice->num_rows());
  RecordRun(n, clock_->Now() - start);
  return n;
}

}  // namespace datacell
