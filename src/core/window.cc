#include "core/window.h"

#include <algorithm>

#include "common/check.h"

namespace datacell {

namespace internal_window {

Result<AggregateDecomposition> DecomposeAggregatePlan(const PlanPtr& root) {
  // Walk down through rebuildable unary nodes to the Aggregate.
  auto rebuildable = [](PlanKind k) {
    return k == PlanKind::kProject || k == PlanKind::kFilter ||
           k == PlanKind::kSort || k == PlanKind::kLimit ||
           k == PlanKind::kDistinct;
  };
  std::vector<const PlanNode*> above;  // root-first
  const PlanNode* node = root.get();
  while (rebuildable(node->kind())) {
    above.push_back(node);
    node = node->child().get();
  }
  if (node->kind() != PlanKind::kAggregate) {
    return Status::Unimplemented(
        "incremental windows require an aggregate-shaped plan");
  }
  AggregateDecomposition out;
  out.aggregate = node;
  out.group_columns = node->group_columns();
  out.aggregates = node->aggregates();
  out.aggregate_schema = node->output_schema();
  out.below_aggregate = node->child();

  // Below the aggregate only Project/Filter/Scan may appear (a join below
  // the aggregate would need cross-chunk state we do not maintain).
  const PlanNode* below = out.below_aggregate.get();
  while (below->kind() == PlanKind::kProject ||
         below->kind() == PlanKind::kFilter) {
    below = below->child().get();
  }
  if (below->kind() != PlanKind::kScan) {
    return Status::Unimplemented(
        "incremental windows require a single-scan pipeline below the "
        "aggregate");
  }

  // Rebuild the above-aggregate chain on a Scan of the aggregate output.
  DC_ASSIGN_OR_RETURN(PlanPtr rebuilt,
                      MakeScan(kAggOutBinding, out.aggregate_schema));
  for (auto it = above.rbegin(); it != above.rend(); ++it) {
    const PlanNode* n = *it;
    switch (n->kind()) {
      case PlanKind::kProject: {
        std::vector<std::string> names;
        names.reserve(n->output_schema().num_fields());
        for (const Field& f : n->output_schema().fields()) {
          names.push_back(f.name);
        }
        DC_ASSIGN_OR_RETURN(rebuilt,
                            MakeProject(rebuilt, n->projections(), names));
        break;
      }
      case PlanKind::kFilter: {
        DC_ASSIGN_OR_RETURN(rebuilt, MakeFilter(rebuilt, n->predicate()));
        break;
      }
      case PlanKind::kSort: {
        DC_ASSIGN_OR_RETURN(rebuilt, MakeSort(rebuilt, n->sort_keys()));
        break;
      }
      case PlanKind::kLimit: {
        DC_ASSIGN_OR_RETURN(rebuilt,
                            MakeLimit(rebuilt, n->offset(), n->limit()));
        break;
      }
      case PlanKind::kDistinct: {
        DC_ASSIGN_OR_RETURN(rebuilt, MakeDistinct(rebuilt));
        break;
      }
      default:
        return Status::Internal("unexpected node in above-aggregate chain");
    }
  }
  out.above_aggregate = std::move(rebuilt);
  return out;
}

}  // namespace internal_window

namespace {

using internal_window::AggregateDecomposition;
using internal_window::kAggOutBinding;

/// Full re-evaluation: buffer tuples; when a window is complete, bind the
/// window slice to the plan's scan and run the whole plan from scratch.
class ReEvalWindowExecutor final : public WindowExecutor {
 public:
  ReEvalWindowExecutor(const sql::CompiledQuery& query,
                       PlanBindings static_bindings)
      : plan_(query.plan),
        bind_name_(query.inputs[0].bind_name),
        window_(query.window),
        output_schema_(query.output_schema),
        static_bindings_(std::move(static_bindings)),
        buffer_(std::make_shared<Table>("__window_buffer",
                                        query.inputs[0].basket_schema)) {
    ts_column_ = buffer_->num_columns() - 1;
  }

  Result<TablePtr> Advance(const Table& new_tuples) override {
    DC_RETURN_NOT_OK(buffer_->AppendTable(new_tuples));
    auto out = std::make_shared<Table>("", output_schema_);
    if (window_.kind == sql::WindowSpec::Kind::kCount) {
      DC_RETURN_NOT_OK(AdvanceCount(out.get()));
    } else {
      DC_RETURN_NOT_OK(AdvanceTime(out.get()));
    }
    return out;
  }

  size_t buffered() const override { return buffer_->num_rows(); }
  const char* mode_name() const override { return "reeval"; }

 private:
  Status AdvanceCount(Table* out) {
    size_t size = static_cast<size_t>(window_.size);
    size_t slide = static_cast<size_t>(window_.slide);
    while (buffer_->num_rows() >= size) {
      TablePtr window = TablePtr(buffer_->Slice(0, size));
      PlanBindings bindings = static_bindings_;
      bindings[bind_name_] = std::move(window);
      DC_ASSIGN_OR_RETURN(TablePtr result, ExecutePlan(*plan_, bindings));
      DC_RETURN_NOT_OK(out->AppendTable(*result));
      buffer_->RemovePrefix(slide);
    }
    return Status::OK();
  }

  Status AdvanceTime(Table* out) {
    const Bat& ts = *buffer_->column(ts_column_);
    if (ts.size() == 0) return Status::OK();
    if (!started_) {
      // Anchor the first window at the earliest tuple seen.
      Timestamp min_ts = ts.Int64At(0);
      for (size_t i = 1; i < ts.size(); ++i) {
        min_ts = std::min(min_ts, ts.Int64At(i));
      }
      window_start_ = min_ts;
      started_ = true;
    }
    while (true) {
      const Bat& cur_ts = *buffer_->column(ts_column_);
      Timestamp max_ts = cur_ts.size() == 0 ? window_start_ : cur_ts.Int64At(0);
      for (size_t i = 1; i < cur_ts.size(); ++i) {
        max_ts = std::max(max_ts, cur_ts.Int64At(i));
      }
      Timestamp window_end = window_start_ + window_.size;
      // A window closes once a tuple at/after its end has been observed —
      // the scheduler monitors incoming timestamps (§3.1).
      if (cur_ts.size() == 0 || max_ts < window_end) break;
      std::vector<size_t> in_window =
          SelectRangeInt64(cur_ts, window_start_, window_end - 1);
      TablePtr window = TablePtr(buffer_->Take(in_window));
      PlanBindings bindings = static_bindings_;
      bindings[bind_name_] = std::move(window);
      DC_ASSIGN_OR_RETURN(TablePtr result, ExecutePlan(*plan_, bindings));
      DC_RETURN_NOT_OK(out->AppendTable(*result));
      window_start_ += window_.slide;
      // Expire tuples that can no longer fall into any future window.
      std::vector<size_t> expired =
          SelectRangeInt64(*buffer_->column(ts_column_), std::nullopt,
                           window_start_ - 1);
      buffer_->RemovePositions(expired);
    }
    return Status::OK();
  }

  PlanPtr plan_;
  std::string bind_name_;
  sql::WindowSpec window_;
  Schema output_schema_;
  PlanBindings static_bindings_;
  std::shared_ptr<Table> buffer_;
  size_t ts_column_ = 0;
  bool started_ = false;
  Timestamp window_start_ = 0;
};

/// Shared machinery of the basic-window executors: per-chunk group
/// summaries, merging, and re-entry into the above-aggregate plan.
class IncrementalCore {
 public:
  struct GroupEntry {
    Row group_values;                  // one value per group column
    std::vector<AggPartial> partials;  // one per AggSpec
  };
  using ChunkSummary = std::map<std::string, GroupEntry>;

  IncrementalCore(AggregateDecomposition decomposition, std::string bind_name,
                  PlanBindings static_bindings)
      : decomposition_(std::move(decomposition)),
        bind_name_(std::move(bind_name)),
        static_bindings_(std::move(static_bindings)) {}

  const AggregateDecomposition& decomposition() const { return decomposition_; }

  /// Runs the below-aggregate pipeline on `chunk` and summarises it into
  /// per-group partial aggregates.
  Result<ChunkSummary> Summarise(const Table& chunk) const {
    PlanBindings bindings = static_bindings_;
    bindings[bind_name_] = TablePtr(chunk.Clone());
    DC_ASSIGN_OR_RETURN(TablePtr pre,
                        ExecutePlan(*decomposition_.below_aggregate, bindings));
    DC_ASSIGN_OR_RETURN(Grouping grouping,
                        GroupBy(*pre, decomposition_.group_columns));
    std::vector<std::vector<AggPartial>> per_spec;
    per_spec.reserve(decomposition_.aggregates.size());
    for (const AggSpec& spec : decomposition_.aggregates) {
      if (spec.count_star) {
        std::vector<AggPartial> counts(grouping.num_groups);
        for (size_t g : grouping.group_ids) ++counts[g].count;
        per_spec.push_back(std::move(counts));
      } else {
        DC_ASSIGN_OR_RETURN(
            std::vector<AggPartial> partials,
            AggregateByGroup(*pre->column(spec.input_column), grouping));
        per_spec.push_back(std::move(partials));
      }
    }
    ChunkSummary summary;
    for (size_t g = 0; g < grouping.num_groups; ++g) {
      size_t rep = grouping.representatives[g];
      std::string key = EncodeRowKey(*pre, decomposition_.group_columns, rep);
      GroupEntry entry;
      for (size_t c : decomposition_.group_columns) {
        entry.group_values.push_back(pre->column(c)->GetValue(rep));
      }
      for (const auto& partials : per_spec) {
        entry.partials.push_back(partials[g]);
      }
      summary.emplace(std::move(key), std::move(entry));
    }
    return summary;
  }

  /// Merges `src` into `dst` group-wise (late tuples joining an existing
  /// basic window take this path too).
  static void MergeInto(ChunkSummary* dst, const ChunkSummary& src) {
    for (const auto& [key, entry] : src) {
      auto [it, inserted] = dst->emplace(key, entry);
      if (!inserted) {
        for (size_t i = 0; i < entry.partials.size(); ++i) {
          it->second.partials[i].Merge(entry.partials[i]);
        }
      }
    }
  }

  /// Combines the summaries of one window's chunks, materialises the
  /// aggregate output and runs the rest of the plan; appends to `out`.
  template <typename ChunkIt>
  Status EmitWindow(ChunkIt first, ChunkIt last, Table* out) const {
    ChunkSummary merged;
    for (ChunkIt it = first; it != last; ++it) {
      MergeInto(&merged, *it);
    }
    auto agg_table =
        std::make_shared<Table>("", decomposition_.aggregate_schema);
    if (decomposition_.group_columns.empty()) {
      // Scalar aggregation: exactly one row, even for an empty window.
      GroupEntry whole;
      whole.partials.resize(decomposition_.aggregates.size());
      for (const auto& [key, entry] : merged) {
        for (size_t i = 0; i < entry.partials.size(); ++i) {
          whole.partials[i].Merge(entry.partials[i]);
        }
      }
      Row row;
      for (size_t i = 0; i < decomposition_.aggregates.size(); ++i) {
        row.push_back(
            whole.partials[i].Finalize(decomposition_.aggregates[i].func));
      }
      DC_RETURN_NOT_OK(agg_table->AppendRow(row));
    } else {
      for (const auto& [key, entry] : merged) {
        Row row = entry.group_values;
        for (size_t i = 0; i < decomposition_.aggregates.size(); ++i) {
          row.push_back(
              entry.partials[i].Finalize(decomposition_.aggregates[i].func));
        }
        DC_RETURN_NOT_OK(agg_table->AppendRow(row));
      }
    }
    PlanBindings bindings = static_bindings_;
    bindings[kAggOutBinding] = std::move(agg_table);
    DC_ASSIGN_OR_RETURN(TablePtr result,
                        ExecutePlan(*decomposition_.above_aggregate, bindings));
    return out->AppendTable(*result);
  }

 private:
  AggregateDecomposition decomposition_;
  std::string bind_name_;
  PlanBindings static_bindings_;
};

/// Basic-window model for count windows: the stream is cut into slide-sized
/// chunks; each chunk is aggregated once into per-group summaries; a window
/// emission merges the summaries of the size/slide most recent chunks.
/// Expiry = dropping the oldest chunk — no subtraction, so min/max stay
/// exact.
class IncrementalWindowExecutor final : public WindowExecutor {
 public:
  IncrementalWindowExecutor(const sql::CompiledQuery& query,
                            AggregateDecomposition decomposition,
                            PlanBindings static_bindings)
      : core_(std::move(decomposition), query.inputs[0].bind_name,
              std::move(static_bindings)),
        output_schema_(query.output_schema),
        chunk_size_(static_cast<size_t>(query.window.slide)),
        chunks_per_window_(
            static_cast<size_t>(query.window.size / query.window.slide)),
        pending_(std::make_shared<Table>("__window_pending",
                                         query.inputs[0].basket_schema)) {}

  Result<TablePtr> Advance(const Table& new_tuples) override {
    DC_RETURN_NOT_OK(pending_->AppendTable(new_tuples));
    auto out = std::make_shared<Table>("", output_schema_);
    while (pending_->num_rows() >= chunk_size_) {
      TablePtr chunk = TablePtr(pending_->Slice(0, chunk_size_));
      pending_->RemovePrefix(chunk_size_);
      DC_ASSIGN_OR_RETURN(IncrementalCore::ChunkSummary summary,
                          core_.Summarise(*chunk));
      chunks_.push_back(std::move(summary));
      if (chunks_.size() == chunks_per_window_) {
        DC_RETURN_NOT_OK(core_.EmitWindow(chunks_.begin(), chunks_.end(),
                                          out.get()));
        chunks_.pop_front();  // slide: expire the oldest basic window
      }
    }
    return out;
  }

  size_t buffered() const override {
    return pending_->num_rows() + chunks_.size() * chunk_size_;
  }
  const char* mode_name() const override { return "incremental"; }

 private:
  IncrementalCore core_;
  Schema output_schema_;
  size_t chunk_size_;
  size_t chunks_per_window_;
  std::shared_ptr<Table> pending_;
  std::deque<IncrementalCore::ChunkSummary> chunks_;
};

/// Basic-window model for time windows: chunks are slide-length time
/// intervals anchored at the earliest tuple seen; windows cover size/slide
/// consecutive chunks and close when a tuple at/after the window end is
/// observed. Late tuples merge into their (not yet expired) chunk summary;
/// tuples older than the oldest live window are dropped and counted.
class TimeIncrementalWindowExecutor final : public WindowExecutor {
 public:
  TimeIncrementalWindowExecutor(const sql::CompiledQuery& query,
                                AggregateDecomposition decomposition,
                                PlanBindings static_bindings)
      : core_(std::move(decomposition), query.inputs[0].bind_name,
              std::move(static_bindings)),
        output_schema_(query.output_schema),
        input_schema_(query.inputs[0].basket_schema),
        slide_us_(query.window.slide),
        chunks_per_window_(
            static_cast<size_t>(query.window.size / query.window.slide)) {
    ts_column_ = input_schema_.num_fields() - 1;
  }

  Result<TablePtr> Advance(const Table& new_tuples) override {
    auto out = std::make_shared<Table>("", output_schema_);
    if (new_tuples.num_rows() == 0) return out;
    const Bat& ts = *new_tuples.column(ts_column_);
    if (!started_) {
      Timestamp min_ts = ts.Int64At(0);
      for (size_t i = 1; i < ts.size(); ++i) {
        min_ts = std::min(min_ts, ts.Int64At(i));
      }
      anchor_ = min_ts;
      started_ = true;
    }
    // Route each tuple to its chunk (grid of slide-length intervals).
    std::map<int64_t, std::vector<size_t>> by_chunk;
    for (size_t i = 0; i < ts.size(); ++i) {
      Timestamp t = ts.Int64At(i);
      max_seen_ = std::max(max_seen_, t);
      if (t < anchor_ + next_window_ * slide_us_) {
        ++late_dropped_;  // older than every live window
        continue;
      }
      by_chunk[(t - anchor_) / slide_us_].push_back(i);
    }
    for (const auto& [chunk_index, positions] : by_chunk) {
      TablePtr chunk = TablePtr(new_tuples.Take(positions));
      DC_ASSIGN_OR_RETURN(IncrementalCore::ChunkSummary summary,
                          core_.Summarise(*chunk));
      auto it = chunks_.find(chunk_index);
      if (it == chunks_.end()) {
        chunks_.emplace(chunk_index, std::move(summary));
      } else {
        // Late tuples for a still-live basic window: merge the summaries.
        IncrementalCore::MergeInto(&it->second, summary);
      }
    }
    // Close every window whose end the stream has passed.
    while (max_seen_ >=
           anchor_ + next_window_ * slide_us_ +
               static_cast<int64_t>(chunks_per_window_) * slide_us_) {
      std::vector<IncrementalCore::ChunkSummary> window_chunks;
      for (size_t k = 0; k < chunks_per_window_; ++k) {
        auto it = chunks_.find(next_window_ + static_cast<int64_t>(k));
        if (it != chunks_.end()) window_chunks.push_back(it->second);
      }
      DC_RETURN_NOT_OK(core_.EmitWindow(window_chunks.begin(),
                                        window_chunks.end(), out.get()));
      chunks_.erase(next_window_);
      ++next_window_;
    }
    return out;
  }

  size_t buffered() const override { return chunks_.size(); }
  const char* mode_name() const override { return "incremental"; }
  int64_t late_dropped() const { return late_dropped_; }

 private:
  IncrementalCore core_;
  Schema output_schema_;
  Schema input_schema_;
  size_t ts_column_;
  int64_t slide_us_;
  size_t chunks_per_window_;
  bool started_ = false;
  Timestamp anchor_ = 0;
  Timestamp max_seen_ = 0;
  int64_t next_window_ = 0;  // index of the oldest unemitted window
  std::map<int64_t, IncrementalCore::ChunkSummary> chunks_;
  int64_t late_dropped_ = 0;
};

}  // namespace

Result<std::unique_ptr<WindowExecutor>> WindowExecutor::Create(
    const sql::CompiledQuery& query, WindowMode mode,
    PlanBindings static_bindings) {
  if (query.window.kind == sql::WindowSpec::Kind::kNone) {
    return Status::InvalidArgument("query has no window clause");
  }
  if (query.inputs.size() != 1) {
    return Status::Unimplemented(
        "windowed queries support exactly one stream input");
  }
  auto try_incremental =
      [&]() -> Result<std::unique_ptr<WindowExecutor>> {
    if (query.window.slide <= 0 || query.window.size % query.window.slide != 0) {
      return Status::Unimplemented(
          "incremental evaluation requires slide to divide the window size");
    }
    DC_ASSIGN_OR_RETURN(
        AggregateDecomposition decomposition,
        internal_window::DecomposeAggregatePlan(query.plan));
    if (query.window.kind == sql::WindowSpec::Kind::kTime) {
      return std::unique_ptr<WindowExecutor>(new TimeIncrementalWindowExecutor(
          query, std::move(decomposition), static_bindings));
    }
    return std::unique_ptr<WindowExecutor>(new IncrementalWindowExecutor(
        query, std::move(decomposition), static_bindings));
  };
  switch (mode) {
    case WindowMode::kReEvaluation:
      return std::unique_ptr<WindowExecutor>(
          new ReEvalWindowExecutor(query, std::move(static_bindings)));
    case WindowMode::kIncremental:
      return try_incremental();
    case WindowMode::kAuto: {
      auto inc = try_incremental();
      if (inc.ok()) return inc;
      return std::unique_ptr<WindowExecutor>(
          new ReEvalWindowExecutor(query, std::move(static_bindings)));
    }
  }
  return Status::Internal("bad window mode");
}

}  // namespace datacell
