#include "core/engine.h"

#include <algorithm>
#include <set>

#include "analysis/plan_analyzer.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "sql/parser.h"
#include "storage/batch_pool.h"

namespace datacell {

namespace {

/// Evaluates a constant INSERT expression (literals, optionally negated).
Result<Value> EvalConstAst(const sql::AstExpr& e) {
  using sql::AstExprKind;
  using sql::AstUnaryOp;
  if (e.kind == AstExprKind::kLiteral) return e.literal;
  if (e.kind == AstExprKind::kUnary && e.unary_op == AstUnaryOp::kNeg) {
    DC_ASSIGN_OR_RETURN(Value v, EvalConstAst(*e.children[0]));
    if (v.is_int64()) return Value::Int64(-v.int64_value());
    if (v.is_double()) return Value::Double(-v.double_value());
    return Status::TypeError("cannot negate non-numeric literal");
  }
  return Status::InvalidArgument(
      "INSERT values must be literals: " + e.ToString());
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options),
      scheduler_(options.scheduling_policy),
      profile_queries_(options.profile_queries) {
  if (options_.use_wall_clock) {
    owned_clock_ = std::make_unique<WallClock>();
    clock_ = owned_clock_.get();
  } else {
    auto sim = std::make_unique<SimulatedClock>();
    sim_clock_ = sim.get();
    owned_clock_ = std::move(sim);
    clock_ = owned_clock_.get();
  }
  if (options_.kernel_threads > 0) {
    kernel_pool_ = std::make_unique<ThreadPool>(options_.kernel_threads);
  }
  if (kTraceCompiled && options_.trace_capacity > 0) {
    trace_ = std::make_unique<TraceRing>(options_.trace_capacity);
    trace_->SetEnabled(options_.trace_enabled);
  }
  scheduler_.SetTrace(trace_.get(), clock_);
  scheduler_.SetIdleFallbackUs(options_.idle_tick_us);
  wake_hub_ = std::make_shared<WakeHub>();
  wake_hub_->scheduler = &scheduler_;
  batch_pool_ = std::make_unique<BatchPool>();
  // Last: the system streams route through the fully initialized engine.
  if (options_.monitor_tick_us > 0) SetUpMonitor();
}

void Engine::WakeHub::Notify() {
  std::lock_guard<std::mutex> lock(mu);
  DC_LOCK_ORDER(&mu, "wake_hub", "wake_hub");
  if (scheduler != nullptr) scheduler->NotifyWork();
}

void Engine::WakeHub::Disarm() {
  std::lock_guard<std::mutex> lock(mu);
  DC_LOCK_ORDER(&mu, "wake_hub", "wake_hub");
  scheduler = nullptr;
}

Engine::~Engine() {
  Stop();
  // Cut producers off from the dying scheduler. Channels are NOT touched:
  // an attached channel may already be destroyed (it is caller-owned, with
  // no lifetime tie to the engine), and its callback only reaches the
  // disarmed hub anyway.
  wake_hub_->Disarm();
  for (const BasketPtr& basket : wired_baskets_) {
    basket->SetWakeCallback(nullptr);  // drop the dead-weight hub reference
    basket->SetTrace(nullptr, nullptr);  // ring and clock die with the engine
    basket->SetBatchPool(nullptr);  // the pool is an engine member
  }
}

void Engine::WireBasketWake(const BasketPtr& basket) {
  basket->SetWakeCallback([hub = wake_hub_] { hub->Notify(); });
  basket->SetTrace(trace_.get(), clock_);
  basket->SetBatchPool(batch_pool_.get());
  wired_baskets_.push_back(basket);
}

void Engine::BindTransitionMetrics(Transition& t) const {
  MetricLabels labels{{"transition", t.name()},
                      {"kind", std::string(TransitionKindToString(t.kind()))}};
  Transition::MetricsBinding binding;
  binding.fires = metrics_.GetCounter("datacell_transition_fires_total", labels);
  binding.tuples =
      metrics_.GetCounter("datacell_transition_tuples_total", labels);
  binding.fire_latency_us =
      metrics_.GetHistogram("datacell_transition_fire_latency_us", labels);
  t.BindMetrics(binding);
}

Engine::StreamInfo* Engine::FindStream(const std::string& name) {
  auto it = streams_.find(ToLower(name));
  return it == streams_.end() ? nullptr : &it->second;
}

Result<BasketPtr> Engine::CreateStream(const std::string& name,
                                       const Schema& user_schema) {
  // The sys. namespace belongs to the engine's own telemetry streams.
  if (ToLower(name).rfind("sys.", 0) == 0) {
    return Status::InvalidArgument(
        "the 'sys.' stream namespace is reserved for system telemetry");
  }
  return CreateStreamInternal(name, user_schema, /*system=*/false);
}

Result<BasketPtr> Engine::CreateStreamInternal(const std::string& name,
                                               const Schema& user_schema,
                                               bool system) {
  if (Basket::HasTsColumn(user_schema)) {
    return Status::InvalidArgument(
        "the ts column is implicit; do not declare it");
  }
  for (const Field& f : user_schema.fields()) {
    if (EqualsIgnoreCase(f.name, Basket::kTsColumnName)) {
      return Status::InvalidArgument(
          "'ts' is reserved for the implicit timestamp column");
    }
  }
  TablePtr table = Basket::MakeBasketTable(name, user_schema);
  DC_RETURN_NOT_OK(catalog_.RegisterRelation(table, RelationKind::kBasket));
  auto basket = std::make_shared<Basket>(table);
  if (system) {
    // Telemetry retention: an unconsumed system stream keeps only the most
    // recent monitor_history rows instead of growing with uptime.
    basket->SetCapacity(options_.monitor_history,
                        Basket::DropPolicy::kDropOldest);
  } else if (options_.max_basket_tuples > 0) {
    basket->SetCapacity(options_.max_basket_tuples, options_.drop_policy);
  }
  WireBasketWake(basket);
  StreamInfo info;
  info.base = basket;
  info.user_schema = user_schema;
  streams_[ToLower(name)] = std::move(info);
  return basket;
}

void Engine::SetUpMonitor() {
  // The reserved telemetry streams are ordinary catalog baskets — one-time
  // SELECTs inspect them, continuous queries compose over them — created
  // here so their names exist before any user query tries to read them.
  DC_CHECK(CreateStreamInternal(MonitorReceptor::kTransitionsStream,
                                MonitorReceptor::TransitionsSchema(),
                                /*system=*/true)
               .ok());
  DC_CHECK(CreateStreamInternal(MonitorReceptor::kBasketsStream,
                                MonitorReceptor::BasketsSchema(),
                                /*system=*/true)
               .ok());
  DC_CHECK(CreateStreamInternal(MonitorReceptor::kQueriesStream,
                                MonitorReceptor::QueriesSchema(),
                                /*system=*/true)
               .ok());
  monitor_ = std::make_shared<MonitorReceptor>(
      "monitor",
      [this] { return MetricsSnapshot(); },
      [this](const std::string& stream, ColumnBatch&& batch) {
        return IngestColumns(stream, std::move(batch));
      },
      clock_, options_.monitor_tick_us, options_.shard_index);
  BindTransitionMetrics(*monitor_);
  scheduler_.AddTransition(monitor_);
}

Result<BasketPtr> Engine::GetBasket(const std::string& name) const {
  auto it = streams_.find(ToLower(name));
  if (it == streams_.end()) {
    return Status::NotFound("unknown stream '" + name + "'");
  }
  return it->second.base;
}

Status Engine::SetStreamPartitionKey(const std::string& name,
                                     const std::string& column) {
  StreamInfo* stream = FindStream(name);
  if (stream == nullptr) {
    return Status::NotFound("unknown stream '" + name + "'");
  }
  auto idx = stream->user_schema.IndexOf(column);
  if (!idx.has_value()) {
    return Status::NotFound("stream '" + name + "' has no column '" + column +
                            "' to partition by");
  }
  stream->partition_key = *idx;
  return Status::OK();
}

analysis::PartitionKeyMap Engine::DeclaredPartitionKeys() const {
  analysis::PartitionKeyMap keys;
  for (const auto& [key, stream] : streams_) {
    if (stream.partition_key.has_value()) keys[key] = *stream.partition_key;
  }
  return keys;
}

Status Engine::SetStreamCardinality(const std::string& name,
                                    const std::string& column,
                                    int64_t cardinality) {
  StreamInfo* stream = FindStream(name);
  if (stream == nullptr) {
    return Status::NotFound("unknown stream '" + name + "'");
  }
  auto idx = stream->user_schema.IndexOf(column);
  if (!idx.has_value()) {
    return Status::NotFound("stream '" + name + "' has no column '" + column +
                            "' to declare a cardinality for");
  }
  if (cardinality <= 0) {
    return Status::InvalidArgument("cardinality for '" + name + "." + column +
                                   "' must be a positive row count");
  }
  stream->cardinality[*idx] = cardinality;
  return Status::OK();
}

analysis::CardinalityMap Engine::DeclaredCardinalities() const {
  analysis::CardinalityMap hints;
  for (const auto& [key, stream] : streams_) {
    if (!stream.cardinality.empty()) hints[key] = stream.cardinality;
  }
  return hints;
}

analysis::StateAnalyzerOptions Engine::StateOptionsFor(
    const sql::CompiledQuery& query) const {
  analysis::StateAnalyzerOptions sopts;
  sopts.string_bytes = options_.state_string_bytes;
  for (const sql::ContinuousInput& in : query.inputs) {
    auto it = streams_.find(ToLower(in.basket));
    if (it == streams_.end()) continue;
    sopts.basket_capacity[ToLower(in.basket)] = it->second.base->capacity();
    sopts.basket_readers[ToLower(in.basket)] = it->second.base->num_readers();
  }
  auto bindings = ResolveStaticBindings(query);
  if (bindings.ok()) {
    for (const auto& [rel, table] : *bindings) {
      sopts.static_rows[ToLower(rel)] =
          static_cast<int64_t>(table->num_rows());
    }
  }
  return sopts;
}

int64_t Engine::TotalStateBoundBytes(bool* any_unbounded) const {
  int64_t total = 0;
  if (any_unbounded != nullptr) *any_unbounded = false;
  for (const QueryInfo& q : queries_) {
    if (q.removed || q.state == nullptr) continue;
    if (q.state->total.kind == analysis::StateBoundKind::kUnbounded &&
        any_unbounded != nullptr) {
      *any_unbounded = true;
    }
    if (q.state->total.numeric()) total += q.state->total.bytes;
  }
  return total;
}

analysis::PartitionVerdict Engine::EffectivePartitionVerdict(
    const QueryInfo& q, std::string* reason) const {
  auto pinned = [&reason](const std::string& why) {
    if (reason != nullptr) *reason = why;
    return analysis::PartitionVerdict::kPinned;
  };
  if (q.partition == nullptr || q.factory == nullptr) {
    return pinned("no partition report attached");
  }
  if (q.partition->verdict == analysis::PartitionVerdict::kPinned) {
    return pinned(q.partition->pinned_reason);
  }
  if (q.factory->strategy() == ProcessingStrategy::kChained) {
    return pinned(
        "chained strategy: the query forwards non-matching tuples to the "
        "next query's basket, which a shard split would sever");
  }
  for (const BasketPtr& b : q.factory->input_baskets()) {
    if (b != nullptr && b->num_readers() > 1) {
      return pinned("input basket '" + b->name() +
                    "' has multiple readers (the N004 stealing shape); "
                    "splitting it would desynchronize their watermarks");
    }
  }
  if (reason != nullptr) reason->clear();
  return q.partition->verdict;
}

Status Engine::Ingest(const std::string& name, const Row& values) {
  return IngestBatch(name, {values});
}

Status Engine::IngestBatch(const std::string& name,
                           const std::vector<Row>& rows) {
  StreamInfo* stream = FindStream(name);
  if (stream == nullptr) {
    return Status::NotFound("unknown stream '" + name + "'");
  }
  Timestamp ts = clock_->Now();
  // Route to "the proper baskets" (§2.1) for the strategies in use.
  if (stream->chain_head != nullptr) {
    DC_RETURN_NOT_OK(stream->chain_head->AppendBatch(rows, ts));
  } else if (!stream->replicas.empty()) {
    for (const BasketPtr& replica : stream->replicas) {
      DC_RETURN_NOT_OK(replica->AppendBatch(rows, ts));
    }
    if (stream->shared_used) {
      DC_RETURN_NOT_OK(stream->base->AppendBatch(rows, ts));
    }
  } else {
    // Shared consumers, or no consumer yet (the basket buffers and remains
    // inspectable by one-time queries, §2.6).
    DC_RETURN_NOT_OK(stream->base->AppendBatch(rows, ts));
  }
  tuples_ingested_.fetch_add(static_cast<int64_t>(rows.size()),
                             std::memory_order_relaxed);
  return Status::OK();
}

Status Engine::IngestColumns(const std::string& name, ColumnBatch&& batch) {
  StreamInfo* stream = FindStream(name);
  if (stream == nullptr) {
    return Status::NotFound("unknown stream '" + name + "'");
  }
  Timestamp ts = clock_->Now();
  int64_t n = static_cast<int64_t>(batch.num_rows());
  if (stream->chain_head != nullptr) {
    DC_RETURN_NOT_OK(stream->chain_head->AppendColumns(std::move(batch), ts));
  } else if (!stream->replicas.empty()) {
    // Fan-out: each private replica needs its own copy of the columns.
    for (const BasketPtr& replica : stream->replicas) {
      DC_RETURN_NOT_OK(replica->AppendColumnsCopy(batch, ts));
    }
    if (stream->shared_used) {
      DC_RETURN_NOT_OK(stream->base->AppendColumnsCopy(batch, ts));
    }
    // Mirror the move path's contract: the batch returns empty (capacity
    // kept) so receptors can refill it unconditionally.
    batch.Clear();
  } else {
    DC_RETURN_NOT_OK(stream->base->AppendColumns(std::move(batch), ts));
  }
  tuples_ingested_.fetch_add(n, std::memory_order_relaxed);
  return Status::OK();
}

Status Engine::IngestTable(const std::string& name, const Table& batch) {
  StreamInfo* stream = FindStream(name);
  if (stream == nullptr) {
    return Status::NotFound("unknown stream '" + name + "'");
  }
  Timestamp ts = clock_->Now();
  if (stream->chain_head != nullptr) {
    DC_RETURN_NOT_OK(stream->chain_head->AppendStamped(batch, ts));
  } else if (!stream->replicas.empty()) {
    for (const BasketPtr& replica : stream->replicas) {
      DC_RETURN_NOT_OK(replica->AppendStamped(batch, ts));
    }
    if (stream->shared_used) {
      DC_RETURN_NOT_OK(stream->base->AppendStamped(batch, ts));
    }
  } else {
    DC_RETURN_NOT_OK(stream->base->AppendStamped(batch, ts));
  }
  tuples_ingested_.fetch_add(static_cast<int64_t>(batch.num_rows()),
                             std::memory_order_relaxed);
  return Status::OK();
}

Result<Receptor*> Engine::AttachReceptor(const std::string& name,
                                         Channel* channel) {
  StreamInfo* stream = FindStream(name);
  if (stream == nullptr) {
    return Status::NotFound("unknown stream '" + name + "'");
  }
  std::string stream_name = ToLower(name);
  // Columnar delivery: IngestColumns re-stamps with the engine clock
  // (receptors are the entry point, so arrival time is delivery time) and
  // swaps the batch's buffers into the target basket.
  Receptor::DeliverColumnsFn deliver = [this, stream_name](ColumnBatch&& batch) {
    return IngestColumns(stream_name, std::move(batch));
  };
  auto receptor = std::make_shared<Receptor>(
      "receptor_" + stream_name + "_" + std::to_string(stream->receptors.size()),
      channel, stream->user_schema, deliver, clock_, options_.receptor_batch);
  stream->receptors.push_back(receptor.get());
  receptors_.push_back(receptor);
  // A line arriving on an idle channel must wake the scheduler, or the
  // receptor would only fire on the next fallback tick. The callback holds
  // the wake hub, not the engine: either object may die first.
  channel->SetWakeCallback([hub = wake_hub_] { hub->Notify(); });
  BindTransitionMetrics(*receptor);
  scheduler_.AddTransition(receptor);
  return receptor.get();
}

Result<PlanBindings> Engine::ResolveStaticBindings(
    const sql::CompiledQuery& query) const {
  PlanBindings bindings;
  std::vector<std::string> relations = query.plan->InputRelations();
  for (const std::string& rel : relations) {
    bool is_stream_input = false;
    for (const sql::ContinuousInput& in : query.inputs) {
      if (rel == in.bind_name) {
        is_stream_input = true;
        break;
      }
    }
    if (is_stream_input) continue;
    DC_ASSIGN_OR_RETURN(TablePtr table, catalog_.Get(rel));
    // Live binding: the factory sees the table's current content on every
    // execution — "predicates referring to objects elsewhere in the
    // database" (§2.6).
    bindings[rel] = table;
  }
  return bindings;
}

Result<BasketPtr> Engine::MakePrivateBasket(const std::string& stream,
                                            const std::string& suffix) {
  StreamInfo* info = FindStream(stream);
  if (info == nullptr) {
    return Status::NotFound("unknown stream '" + stream + "'");
  }
  TablePtr table =
      Basket::MakeBasketTable(ToLower(stream) + suffix, info->user_schema);
  auto basket = std::make_shared<Basket>(table);
  if (options_.max_basket_tuples > 0) {
    basket->SetCapacity(options_.max_basket_tuples, options_.drop_policy);
  }
  WireBasketWake(basket);
  return basket;
}

Result<QueryId> Engine::SubmitContinuousQuery(const std::string& name,
                                              const std::string& sql,
                                              QueryOptions options) {
  DC_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (stmt.kind != sql::Statement::Kind::kSelect) {
    return Status::InvalidArgument("continuous queries must be SELECTs");
  }
  sql::Planner planner(&catalog_);
  DC_ASSIGN_OR_RETURN(sql::CompiledQuery query,
                      planner.CompileSelect(*stmt.select));
  if (!query.continuous) {
    return Status::InvalidArgument(
        "not a continuous query: FROM must contain a basket expression "
        "[select ... from <basket>]");
  }
  query.sql_text = sql;
  return SubmitCompiledQuery(name, std::move(query), options);
}

Result<QueryId> Engine::SubmitCompiledQuery(const std::string& name,
                                            sql::CompiledQuery query,
                                            QueryOptions options) {
  if (!query.continuous) {
    return Status::InvalidArgument("not a continuous query");
  }
  const std::string sql = query.sql_text;

  // Registration gate: run the static plan analyzer before any output
  // stream or basket plumbing is created, so a rejected query leaves no
  // state behind. Errors that used to surface as fire-time TypeErrors (or
  // aborts) are reported here with source positions instead.
  {
    analysis::AnalysisReport report = analysis::AnalyzePlan(*query.plan);
    for (const sql::ContinuousInput& in : query.inputs) {
      if (in.consume_predicate != nullptr) {
        analysis::CheckPredicate(*in.consume_predicate, in.basket_schema,
                                 "consume predicate of '" + in.basket + "'",
                                 &report);
      }
    }
    DC_RETURN_NOT_OK(report.ToStatus());
  }

  // Resolved before any plumbing exists: a plan over an unknown static
  // relation (and the pass-4 gate below, which prices join build sides from
  // these tables) must reject without leaving an output stream behind.
  DC_ASSIGN_OR_RETURN(PlanBindings static_bindings,
                      ResolveStaticBindings(query));

  // Pass 4: state-bound analysis, and — when the admission caps are set —
  // the S007/S008 gate. Runs before CreateStream for the same no-state-left
  // contract as pass 1: a rejected query leaves the engine untouched.
  auto state = std::make_shared<analysis::StateReport>();
  {
    analysis::AnalysisReport report;
    analysis::StateAnalyzerOptions sopts;
    sopts.string_bytes = options_.state_string_bytes;
    for (const sql::ContinuousInput& in : query.inputs) {
      auto it = streams_.find(ToLower(in.basket));
      if (it == streams_.end()) {
        return Status::NotFound("unknown stream '" + in.basket + "'");
      }
      const std::string key = ToLower(in.basket);
      sopts.basket_capacity[key] = it->second.base->capacity();
      sopts.basket_readers[key] = it->second.base->num_readers();
    }
    for (const auto& [rel, table] : static_bindings) {
      sopts.static_rows[ToLower(rel)] =
          static_cast<int64_t>(table->num_rows());
    }
    DC_ASSIGN_OR_RETURN(
        *state, analysis::AnalyzeStateBounds(query, DeclaredCardinalities(),
                                             sopts, &report));
    const analysis::Severity gate_severity =
        options_.state_bound_policy == StateBoundPolicy::kReject
            ? analysis::Severity::kError
            : analysis::Severity::kWarning;
    const bool unbounded =
        state->total.kind == analysis::StateBoundKind::kUnbounded;
    if (options_.max_query_state_bytes > 0 &&
        (unbounded ||
         (state->total.numeric() &&
          state->total.bytes >
              static_cast<int64_t>(options_.max_query_state_bytes)))) {
      report.Add(analysis::DiagCode::kStateBoundExceeded, gate_severity,
                 "query '" + name + "': state bound " +
                     state->total.ToString() +
                     " exceeds max_query_state_bytes = " +
                     std::to_string(options_.max_query_state_bytes),
                 analysis::FindPlanLoc(*query.plan));
    }
    if (options_.max_engine_state_bytes > 0) {
      bool any_unbounded = false;
      const int64_t live = TotalStateBoundBytes(&any_unbounded);
      const int64_t incoming = state->total.numeric() ? state->total.bytes : 0;
      if (unbounded || any_unbounded ||
          live + incoming >
              static_cast<int64_t>(options_.max_engine_state_bytes)) {
        report.Add(
            analysis::DiagCode::kEngineStateExceeded, gate_severity,
            "query '" + name + "': engine state total " +
                std::to_string(live) + " B + this query's bound " +
                state->total.ToString() + " exceeds max_engine_state_bytes = " +
                std::to_string(options_.max_engine_state_bytes),
            analysis::FindPlanLoc(*query.plan));
      }
    }
    DC_RETURN_NOT_OK(report.ToStatus());
  }

  ProcessingStrategy strategy =
      options.strategy.value_or(options_.default_strategy);
  if (strategy == ProcessingStrategy::kChained && query.inputs.size() != 1) {
    return Status::Unimplemented(
        "the chained strategy supports single-input queries");
  }

  // Output plumbing: basket `<name>_out` registered as a stream so other
  // queries can consume this query's results (a network of queries, §4).
  // When the result already ends with a ts column (`select *` projects the
  // stream's arrival ts last), that column becomes the output basket's
  // implicit timestamp and arrival times are preserved end to end.
  std::string out_name = ToLower(name) + "_out";
  bool output_carries_ts = Basket::HasTsColumn(query.output_schema);
  Schema output_user_schema = query.output_schema;
  if (output_carries_ts) {
    Schema stripped;
    for (size_t i = 0; i + 1 < output_user_schema.num_fields(); ++i) {
      stripped.AddField(output_user_schema.field(i));
    }
    output_user_schema = std::move(stripped);
  }
  DC_ASSIGN_OR_RETURN(BasketPtr output,
                      CreateStream(out_name, output_user_schema));
  // The query's emitter is a permanent reader of its output basket, so the
  // stream is born with a consumer and cannot be dropped.
  FindStream(out_name)->has_consumers = true;

  // Input plumbing per strategy.
  std::vector<BasketPtr> input_baskets;
  struct ChainLink {
    StreamInfo* stream;
    BasketPtr basket;
  };
  std::vector<ChainLink> chain_links;
  for (size_t i = 0; i < query.inputs.size(); ++i) {
    const sql::ContinuousInput& in = query.inputs[i];
    StreamInfo* stream = FindStream(in.basket);
    if (stream == nullptr) {
      return Status::NotFound("unknown stream '" + in.basket + "'");
    }
    switch (strategy) {
      case ProcessingStrategy::kSharedBaskets: {
        stream->shared_used = true;
        // §3.2 common-subplan factoring: identical basket expressions share
        // one auxiliary filter transition and its group basket.
        if (options_.factor_common_subplans &&
            in.consume_predicate != nullptr) {
          std::string key = ToLower(in.basket) + "|" +
                            in.consume_predicate->ToString();
          auto group = subplan_groups_.find(key);
          if (group == subplan_groups_.end()) {
            TablePtr group_table = Basket::MakeBasketTable(
                ToLower(in.basket) + "__grp" +
                    std::to_string(subplan_groups_.size()),
                stream->user_schema);
            auto group_basket = std::make_shared<Basket>(group_table);
            WireBasketWake(group_basket);
            auto filter = std::make_shared<SharedFilterTransition>(
                "sharedfilter_" + group_table->name(), stream->base,
                in.consume_predicate, group_basket, clock_);
            shared_filters_.push_back(filter);
            BindTransitionMetrics(*filter);
            scheduler_.AddTransition(filter);
            group = subplan_groups_.emplace(key, group_basket).first;
          }
          input_baskets.push_back(group->second);
          // The shared transition already applied the predicate; the query
          // factory reads the group basket unconditionally.
          query.inputs[i].consume_predicate = nullptr;
        } else {
          input_baskets.push_back(stream->base);
        }
        break;
      }
      case ProcessingStrategy::kSeparateBaskets: {
        if (stream->chain_head != nullptr) {
          return Status::Unimplemented(
              "cannot mix separate and chained strategies on one stream");
        }
        DC_ASSIGN_OR_RETURN(
            BasketPtr replica,
            MakePrivateBasket(in.basket,
                              "__q" + std::to_string(queries_.size())));
        stream->replicas.push_back(replica);
        input_baskets.push_back(replica);
        break;
      }
      case ProcessingStrategy::kChained: {
        if (!stream->replicas.empty() || stream->shared_used) {
          return Status::Unimplemented(
              "cannot mix chained with other strategies on one stream");
        }
        DC_ASSIGN_OR_RETURN(
            BasketPtr link,
            MakePrivateBasket(in.basket,
                              "__c" + std::to_string(stream->chain.size())));
        if (stream->chain.empty()) {
          stream->chain_head = link;
        } else {
          // The previous tail now forwards its non-matching tuples here.
          stream->chain.back()->SetPassthrough(0, link);
        }
        input_baskets.push_back(link);
        chain_links.push_back(ChainLink{stream, link});
        break;
      }
    }
    stream->has_consumers = true;
  }

  FactoryOptions foptions;
  foptions.strategy = strategy;
  foptions.window_mode = options.window_mode.value_or(options_.window_mode);
  foptions.priority = options.priority;
  // Separate-strategy inputs are engine-created replicas: no other reader
  // exists, so non-matching tuples may be dropped on drain (see
  // FactoryOptions::exclusive_private_inputs).
  foptions.exclusive_private_inputs =
      strategy == ProcessingStrategy::kSeparateBaskets;
  foptions.output_carries_ts = output_carries_ts;
  foptions.exec.pool = kernel_pool_.get();
  foptions.exec.parallel_threshold = options_.parallel_threshold;
  foptions.exec.morsel_counter =
      &metrics_.GetCounter("datacell_kernel_morsels_total")->cell();
  foptions.specialize = options_.specialize_plans;
  foptions.state_string_bytes = options_.state_string_bytes;
  DC_ASSIGN_OR_RETURN(
      FactoryPtr factory,
      Factory::Create("factory_" + ToLower(name), std::move(query),
                      std::move(input_baskets), output,
                      std::move(static_bindings), clock_, foptions));
  if (factory->is_specialized()) {
    metrics_.GetCounter("datacell_specialized_queries")->Inc();
  }
  factory->SetProfiling(profile_queries_);

  for (const ChainLink& link : chain_links) {
    link.stream->chain.push_back(factory);
  }

  auto emitter =
      std::make_shared<Emitter>("emitter_" + ToLower(name), output, clock_);
  // Per-query end-to-end tuple latency, observed at delivery time. Only
  // bound when the query projects the stream's arrival ts through to the
  // output (select *): that is the paper's per-tuple response time. For
  // other queries the output ts is the production stamp and "latency" would
  // be near-zero noise — not worth a per-tuple Observe on the hot path.
  if (output_carries_ts) {
    emitter->SetLatencyHistogram(
        metrics_.GetHistogram("datacell_query_e2e_latency_us",
                              {{"query", ToLower(name)}}));
  }
  // Emitters recycle the tables they drain back into the engine pool so the
  // basket's next drain reuses the buffers instead of allocating.
  emitter->SetBatchPool(batch_pool_.get());
  factory->SetBatchPool(batch_pool_.get());
  BindTransitionMetrics(*factory);
  BindTransitionMetrics(*emitter);

  scheduler_.AddTransition(factory);
  scheduler_.AddTransition(emitter);

  // Pass 3: partition-safety classification over the final compiled query
  // (after shared-filter predicate hoisting). Advisory — registration never
  // fails on it; the A0xx diagnostics are re-derived by Analyze().
  auto partition = std::make_shared<analysis::PartitionReport>();
  {
    analysis::AnalysisReport scratch;
    auto res = analysis::AnalyzePartitioning(factory->query(),
                                             DeclaredPartitionKeys(), &scratch);
    if (res.ok()) {
      *partition = std::move(*res);
    } else {
      partition->verdict = analysis::PartitionVerdict::kPinned;
      partition->pinned_reason = res.status().message();
    }
  }
  factory->SetPartitionReport(partition);
  factory->SetStateReport(state);
  // Output-stream key inheritance: when the query preserves a shard key
  // into its output, downstream queries over `<name>_out` see it declared.
  if ((partition->verdict == analysis::PartitionVerdict::kPartitionable ||
       partition->verdict == analysis::PartitionVerdict::kNeedsBroadcast) &&
      partition->output_key_column.has_value() &&
      *partition->output_key_column < output_user_schema.num_fields()) {
    // Best-effort: the key column always exists in the output stream when
    // output_key_column is in range, so this cannot realistically fail.
    (void)SetStreamPartitionKey(out_name, partition->output_key_name);
  }

  QueryInfo info;
  info.name = name;
  info.sql = sql;
  info.factory = factory;
  info.output = output;
  info.emitter = emitter;
  info.partition = std::move(partition);
  info.state = std::move(state);
  queries_.push_back(std::move(info));
  return queries_.size() - 1;
}

Status Engine::RemoveContinuousQuery(QueryId id) {
  if (id >= queries_.size()) {
    return Status::NotFound("unknown query id " + std::to_string(id));
  }
  QueryInfo& info = queries_[id];
  if (info.removed) {
    return Status::FailedPrecondition("query '" + info.name +
                                      "' already removed");
  }
  if (scheduler_.running()) {
    return Status::FailedPrecondition(
        "stop the scheduler before removing queries");
  }
  if (info.factory->strategy() == ProcessingStrategy::kChained) {
    return Status::Unimplemented(
        "chained-strategy queries cannot be removed (passthrough links)");
  }
  scheduler_.RemoveTransition(info.factory.get());
  scheduler_.RemoveTransition(info.emitter.get());
  info.factory->DetachReaders();
  info.emitter->DetachReader();
  // Separate strategy: stop replicating into the retired private baskets.
  std::vector<BasketPtr> inputs = info.factory->input_baskets();
  for (auto& [key, stream] : streams_) {
    auto& replicas = stream.replicas;
    replicas.erase(std::remove_if(replicas.begin(), replicas.end(),
                                  [&](const BasketPtr& b) {
                                    for (const BasketPtr& in : inputs) {
                                      if (in == b) return true;
                                    }
                                    return false;
                                  }),
                   replicas.end());
  }
  // A factored subplan group with no remaining readers must retire too, or
  // its filter keeps producing into a basket nobody drains.
  for (auto it = subplan_groups_.begin(); it != subplan_groups_.end();) {
    if (it->second->num_readers() == 0) {
      for (auto ft = shared_filters_.begin(); ft != shared_filters_.end();
           ++ft) {
        if ((*ft)->output() == it->second) {
          scheduler_.RemoveTransition(ft->get());
          shared_filters_.erase(ft);
          break;
        }
      }
      it = subplan_groups_.erase(it);
    } else {
      ++it;
    }
  }
  info.removed = true;
  return Status::OK();
}

Status Engine::Subscribe(QueryId id, std::shared_ptr<ResultSink> sink) {
  if (id >= queries_.size()) {
    return Status::NotFound("unknown query id " + std::to_string(id));
  }
  queries_[id].emitter->AddSink(std::move(sink));
  return Status::OK();
}

Result<const Engine::QueryInfo*> Engine::GetQuery(QueryId id) const {
  if (id >= queries_.size()) {
    return Status::NotFound("unknown query id " + std::to_string(id));
  }
  return &queries_[id];
}

Status Engine::ExecuteCreate(const sql::CreateStmt& stmt) {
  Schema schema;
  for (const sql::ColumnDef& def : stmt.columns) {
    schema.AddField(Field{def.name, def.type});
  }
  if (stmt.is_basket) {
    // Validate the partition and cardinality columns before creating
    // anything, so a bad PARTITION BY / WITH clause leaves no stream behind.
    if (!stmt.partition_by.empty() &&
        !schema.IndexOf(stmt.partition_by).has_value()) {
      return Status::NotFound("PARTITION BY column '" + stmt.partition_by +
                              "' is not a column of '" + stmt.name + "'");
    }
    for (const auto& [col, n] : stmt.cardinality_hints) {
      (void)n;
      if (!schema.IndexOf(col).has_value()) {
        return Status::NotFound("cardinality column '" + col +
                                "' is not a column of '" + stmt.name + "'");
      }
    }
    DC_RETURN_NOT_OK(CreateStream(stmt.name, schema).status());
    if (!stmt.partition_by.empty()) {
      DC_RETURN_NOT_OK(SetStreamPartitionKey(stmt.name, stmt.partition_by));
    }
    for (const auto& [col, n] : stmt.cardinality_hints) {
      DC_RETURN_NOT_OK(SetStreamCardinality(stmt.name, col, n));
    }
    return Status::OK();
  }
  return catalog_.CreateRelation(stmt.name, schema, RelationKind::kTable)
      .status();
}

Status Engine::ExecuteInsert(const sql::InsertStmt& stmt) {
  DC_ASSIGN_OR_RETURN(TablePtr table, catalog_.Get(stmt.table));
  DC_ASSIGN_OR_RETURN(RelationKind kind, catalog_.KindOf(stmt.table));
  bool is_basket = kind == RelationKind::kBasket;
  // Effective schema the user addresses (without ts for baskets).
  size_t user_cols =
      is_basket ? table->num_columns() - 1 : table->num_columns();

  // Optional column list: build the value permutation.
  std::vector<size_t> positions;
  if (!stmt.columns.empty()) {
    for (const std::string& col : stmt.columns) {
      auto idx = table->schema().IndexOf(col);
      if (!idx.has_value() || *idx >= user_cols) {
        return Status::NotFound("unknown column '" + col + "' in INSERT");
      }
      positions.push_back(*idx);
    }
  }

  for (const auto& ast_row : stmt.rows) {
    size_t expected = stmt.columns.empty() ? user_cols : stmt.columns.size();
    if (ast_row.size() != expected) {
      return Status::InvalidArgument("INSERT row arity mismatch");
    }
    Row row(user_cols, Value::Null());
    for (size_t i = 0; i < ast_row.size(); ++i) {
      DC_ASSIGN_OR_RETURN(Value v, EvalConstAst(*ast_row[i]));
      size_t pos = stmt.columns.empty() ? i : positions[i];
      // Integer literals inserted into double columns widen here so the
      // type check downstream passes.
      row[pos] = std::move(v);
    }
    if (is_basket) {
      DC_RETURN_NOT_OK(IngestBatch(stmt.table, {row}));
    } else {
      DC_RETURN_NOT_OK(table->AppendRow(row));
    }
  }
  return Status::OK();
}

Result<TablePtr> Engine::ExecuteSelect(const sql::SelectStmt& stmt) {
  sql::Planner planner(&catalog_);
  DC_ASSIGN_OR_RETURN(sql::CompiledQuery query, planner.CompileSelect(stmt));
  if (query.continuous) {
    return Status::InvalidArgument(
        "continuous query submitted to the one-time path; use "
        "SubmitContinuousQuery");
  }
  PlanBindings bindings;
  for (const std::string& rel : query.plan->InputRelations()) {
    DC_ASSIGN_OR_RETURN(TablePtr table, catalog_.Get(rel));
    DC_ASSIGN_OR_RETURN(RelationKind kind, catalog_.KindOf(rel));
    if (kind == RelationKind::kBasket) {
      // Inspection semantics (§2.6): outside a basket expression a basket
      // behaves like a temporary table — tuples are not removed.
      auto it = streams_.find(rel);
      if (it != streams_.end()) {
        bindings[rel] = it->second.base->PeekSnapshot();
      } else {
        bindings[rel] = TablePtr(table->Clone());
      }
    } else {
      bindings[rel] = table;
    }
  }
  return ExecutePlan(*query.plan, bindings);
}

Result<TablePtr> Engine::ExecuteSql(const std::string& sql) {
  DC_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  auto empty = [] {
    return std::make_shared<Table>("", Schema{});
  };
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
      return ExecuteSelect(*stmt.select);
    case sql::Statement::Kind::kCreate:
      DC_RETURN_NOT_OK(ExecuteCreate(*stmt.create));
      return empty();
    case sql::Statement::Kind::kInsert:
      DC_RETURN_NOT_OK(ExecuteInsert(*stmt.insert));
      return empty();
    case sql::Statement::Kind::kDrop: {
      const std::string key = ToLower(stmt.drop->name);
      if (streams_.count(key) > 0) {
        if (streams_[key].has_consumers) {
          return Status::FailedPrecondition(
              "cannot drop stream '" + stmt.drop->name +
              "' with active continuous queries");
        }
        streams_.erase(key);
      }
      DC_RETURN_NOT_OK(catalog_.Drop(stmt.drop->name));
      return empty();
    }
  }
  return Status::Internal("bad statement kind");
}

void Engine::RefreshPulledMetrics() const {
  // Mirror the pull-side sources into registry cells so one snapshot carries
  // everything. Push-side metrics (transition fires, e2e latency, morsels)
  // are already live in the registry.
  metrics_.GetCounter("datacell_ingested_tuples_total")->Set(tuples_ingested());
  metrics_.GetCounter("datacell_scheduler_sweeps_total")
      ->Set(scheduler_.sweeps());
  metrics_.GetCounter("datacell_scheduler_firings_total")
      ->Set(scheduler_.total_firings());
  metrics_.GetCounter("datacell_scheduler_errors_total")
      ->Set(scheduler_.error_count());
  metrics_.GetCounter("datacell_scheduler_idle_waits_total")
      ->Set(scheduler_.idle_waits());
  metrics_.GetCounter("datacell_scheduler_wakes_notified_total")
      ->Set(scheduler_.wakes_notified());
  metrics_.GetCounter("datacell_scheduler_wakes_timeout_total")
      ->Set(scheduler_.wakes_timeout());
  for (const auto& receptor : receptors_) {
    metrics_
        .GetCounter("datacell_receptor_malformed_total",
                    {{"receptor", receptor->name()}})
        ->Set(receptor->malformed_lines());
  }
  // wired_baskets_ holds every engine-created basket: stream bases, private
  // replicas, chain links, output baskets and shared subplan group baskets.
  for (const BasketPtr& basket : wired_baskets_) {
    MetricLabels labels{{"basket", basket->name()}};
    metrics_.GetGauge("datacell_basket_tuples", labels)
        ->Set(static_cast<int64_t>(basket->size()));
    metrics_.GetGauge("datacell_basket_high_water", labels)
        ->Set(static_cast<int64_t>(basket->size_high_water()));
    metrics_.GetGauge("datacell_basket_bytes", labels)
        ->Set(static_cast<int64_t>(basket->memory_usage()));
    metrics_.GetCounter("datacell_basket_appended_total", labels)
        ->Set(basket->total_appended());
    metrics_.GetCounter("datacell_basket_consumed_total", labels)
        ->Set(basket->total_consumed());
    metrics_.GetCounter("datacell_basket_shed_total", labels)
        ->Set(basket->total_shed());
  }
  // Per-step profiler series, labeled {query, step}; the step label carries
  // the execution-order index so same-named steps of one pipeline stay
  // distinct series. Only queries whose profiler has seen at least one fire
  // register series, so an engine that never profiles exports nothing here.
  for (const QueryInfo& q : queries_) {
    if (q.removed || q.factory == nullptr) continue;
    const PipelineProfile& prof = q.factory->profile();
    if (prof.fires() == 0) continue;
    PipelineProfile::Snapshot snap = prof.Snap();
    std::string qname = ToLower(q.name);
    metrics_
        .GetCounter("datacell_profile_fires_total", {{"query", qname}})
        ->Set(snap.fires);
    metrics_
        .GetCounter("datacell_profile_fire_time_ns_total", {{"query", qname}})
        ->Set(snap.fire_time_ns);
    for (size_t i = 0; i < snap.steps.size(); ++i) {
      MetricLabels labels{
          {"query", qname},
          {"step", std::to_string(i + 1) + ". " + snap.steps[i].label}};
      metrics_.GetCounter("datacell_profile_step_time_ns_total", labels)
          ->Set(snap.steps[i].time_ns);
      metrics_.GetCounter("datacell_profile_step_rows_total", labels)
          ->Set(snap.steps[i].rows_out);
    }
  }
  // Pass-3 scale-out readiness: queries whose *effective* verdict (static
  // report + live overrides) is partitionable outright, and the total that
  // can fan out at all (everything except pinned).
  int64_t partitionable = 0;
  int64_t shardable = 0;
  for (const QueryInfo& q : queries_) {
    if (q.removed || q.factory == nullptr) continue;
    analysis::PartitionVerdict v = EffectivePartitionVerdict(q);
    if (v == analysis::PartitionVerdict::kPartitionable) ++partitionable;
    if (v != analysis::PartitionVerdict::kPinned) ++shardable;
  }
  metrics_.GetGauge("datacell_partitionable_queries")->Set(partitionable);
  metrics_.GetGauge("datacell_shardable_queries")->Set(shardable);
  // Pass-4 state bounds vs measured occupancy, per query: the static bound
  // (-1 = unbounded, 0 = symbolic-only) next to the factory's live
  // accounting so a gauge scrape can cross-check bound soundness.
  for (const QueryInfo& q : queries_) {
    if (q.removed || q.factory == nullptr) continue;
    std::string qname = ToLower(q.name);
    int64_t bound = 0;
    if (q.state != nullptr) {
      if (q.state->total.kind == analysis::StateBoundKind::kUnbounded) {
        bound = -1;
      } else if (q.state->total.numeric()) {
        bound = q.state->total.bytes;
      }
    }
    metrics_.GetGauge("datacell_query_state_bound_bytes", {{"query", qname}})
        ->Set(bound);
    metrics_.GetGauge("datacell_query_state_bytes", {{"query", qname}})
        ->Set(static_cast<int64_t>(q.factory->state_bytes()));
    metrics_
        .GetGauge("datacell_query_state_high_water_bytes", {{"query", qname}})
        ->Set(static_cast<int64_t>(q.factory->state_bytes_high_water()));
  }
  metrics_.GetCounter("datacell_pool_hits_total")
      ->Set(static_cast<int64_t>(batch_pool_->hits()));
  metrics_.GetCounter("datacell_pool_misses_total")
      ->Set(static_cast<int64_t>(batch_pool_->misses()));
  metrics_.GetCounter("datacell_pool_recycled_total")
      ->Set(static_cast<int64_t>(batch_pool_->recycled()));
  metrics_.GetCounter("datacell_pool_dropped_total")
      ->Set(static_cast<int64_t>(batch_pool_->dropped()));
  metrics_.GetGauge("datacell_pool_free_buffers")
      ->Set(static_cast<int64_t>(batch_pool_->free_buffers()));
  metrics_.GetGauge("datacell_pool_free_bytes")
      ->Set(static_cast<int64_t>(batch_pool_->free_bytes()));
}

MetricsSnapshotData Engine::MetricsSnapshot() const {
  RefreshPulledMetrics();
  return metrics_.Snapshot();
}

std::string Engine::MetricsText() const {
  RefreshPulledMetrics();
  return metrics_.PrometheusText();
}

std::string Engine::MetricsText(const std::string& prefix) const {
  RefreshPulledMetrics();
  return metrics_.PrometheusText(prefix);
}

void Engine::SetProfiling(bool on) {
  profile_queries_ = on;
  for (const QueryInfo& q : queries_) {
    if (!q.removed && q.factory != nullptr) q.factory->SetProfiling(on);
  }
}

Result<std::string> Engine::ProfileReport(QueryId id) const {
  DC_ASSIGN_OR_RETURN(const QueryInfo* info, GetQuery(id));
  return info->factory->ProfileReport();
}

std::string Engine::TraceJson() const {
  return trace_ == nullptr ? std::string() : trace_->ToChromeJson();
}

std::string Engine::StatsReport() const {
  MetricsSnapshotData snap = MetricsSnapshot();
  auto counter = [&snap](const std::string& name,
                         const std::string& label_value = "") {
    const CounterSnapshot* c = snap.FindCounter(name, label_value);
    return c == nullptr ? int64_t{0} : c->value;
  };
  auto us = [](double v) {
    return std::to_string(static_cast<int64_t>(v + 0.5));
  };
  const char* policy = "round-robin";
  if (scheduler_.policy() == SchedulingPolicy::kPriority) policy = "priority";
  if (scheduler_.policy() == SchedulingPolicy::kAdaptive) policy = "adaptive";

  std::string out = "== DataCell engine ==\n";
  out += "scheduler: sweeps=" +
         std::to_string(counter("datacell_scheduler_sweeps_total")) +
         " firings=" +
         std::to_string(counter("datacell_scheduler_firings_total")) +
         " errors=" +
         std::to_string(counter("datacell_scheduler_errors_total")) +
         " wakes_notified=" +
         std::to_string(counter("datacell_scheduler_wakes_notified_total")) +
         " wakes_timeout=" +
         std::to_string(counter("datacell_scheduler_wakes_timeout_total")) +
         " policy=" + policy + "\n";
  out += "ingested tuples: " +
         std::to_string(counter("datacell_ingested_tuples_total")) + "\n";
  int64_t morsels = counter("datacell_kernel_morsels_total");
  if (morsels > 0) {
    out += "kernel morsels: " + std::to_string(morsels) + "\n";
  }
  out += "-- transitions --\n";
  for (const TransitionPtr& t : scheduler_.transitions()) {
    out += "  [" + std::string(TransitionKindToString(t->kind())) + "] " +
           t->name() + ": fires=" +
           std::to_string(counter("datacell_transition_fires_total",
                                  t->name())) +
           " tuples=" +
           std::to_string(counter("datacell_transition_tuples_total",
                                  t->name())) +
           " busy_us=" + std::to_string(t->busy_time_us());
    const HistogramSnapshot* lat =
        snap.FindHistogram("datacell_transition_fire_latency_us", t->name());
    if (lat != nullptr && lat->count > 0) {
      out += " fire_us(p50=" + us(lat->Percentile(0.5)) +
             " p99=" + us(lat->Percentile(0.99)) +
             " max=" + std::to_string(lat->max) + ")";
    }
    out += "\n";
  }
  bool any_query = false;
  for (const QueryInfo& q : queries_) {
    if (q.removed) continue;
    const HistogramSnapshot* lat =
        snap.FindHistogram("datacell_query_e2e_latency_us", ToLower(q.name));
    if (lat == nullptr) continue;
    if (!any_query) {
      out += "-- queries (end-to-end tuple latency) --\n";
      any_query = true;
    }
    out += "  " + q.name + ": delivered=" + std::to_string(lat->count);
    if (lat->count > 0) {
      out += " e2e_us(p50=" + us(lat->Percentile(0.5)) +
             " p99=" + us(lat->Percentile(0.99)) +
             " mean=" + us(lat->Mean()) +
             " max=" + std::to_string(lat->max) + ")";
    }
    out += "\n";
  }
  out += "-- streams --\n";
  for (const auto& [key, stream] : streams_) {
    const std::string& bname = stream.base->name();
    auto gauge = [&snap](const std::string& name, const std::string& lv) {
      const GaugeSnapshot* g = snap.FindGauge(name, lv);
      return g == nullptr ? int64_t{0} : g->value;
    };
    out += "  " + key + ": buffered=" +
           std::to_string(gauge("datacell_basket_tuples", bname)) +
           " high_water=" +
           std::to_string(gauge("datacell_basket_high_water", bname)) +
           " in=" +
           std::to_string(counter("datacell_basket_appended_total", bname)) +
           " out=" +
           std::to_string(counter("datacell_basket_consumed_total", bname)) +
           " shed=" +
           std::to_string(counter("datacell_basket_shed_total", bname)) +
           " bytes=" +
           std::to_string(gauge("datacell_basket_bytes", bname)) + "\n";
  }
  if (!subplan_groups_.empty()) {
    out += "-- shared subplan groups --\n";
    for (const auto& [key, basket] : subplan_groups_) {
      out += "  " + key + ": buffered=" + std::to_string(basket->size()) +
             "\n";
    }
  }
  if (trace_ != nullptr) {
    out += "trace: events=" + std::to_string(trace_->size()) + "/" +
           std::to_string(trace_->capacity()) +
           " recorded=" + std::to_string(trace_->total_recorded()) +
           " dropped=" + std::to_string(trace_->dropped()) + "\n";
  }
  return out;
}

int64_t Engine::total_shed() const {
  int64_t shed = 0;
  for (const auto& [key, stream] : streams_) {
    shed += stream.base->total_shed();
    for (const BasketPtr& replica : stream.replicas) {
      shed += replica->total_shed();
    }
    if (stream.chain_head != nullptr) shed += stream.chain_head->total_shed();
  }
  return shed;
}

Result<TablePtr> Engine::ExecuteScript(const std::string& script) {
  DC_ASSIGN_OR_RETURN(std::vector<sql::Statement> statements,
                      sql::ParseScript(script));
  TablePtr last = std::make_shared<Table>("", Schema{});
  for (size_t i = 0; i < statements.size(); ++i) {
    // Re-render is not available; dispatch the parsed statement through the
    // same paths ExecuteSql uses.
    sql::Statement& stmt = statements[i];
    switch (stmt.kind) {
      case sql::Statement::Kind::kSelect: {
        DC_ASSIGN_OR_RETURN(last, ExecuteSelect(*stmt.select));
        break;
      }
      case sql::Statement::Kind::kCreate:
        DC_RETURN_NOT_OK(ExecuteCreate(*stmt.create));
        break;
      case sql::Statement::Kind::kInsert:
        DC_RETURN_NOT_OK(ExecuteInsert(*stmt.insert));
        break;
      case sql::Statement::Kind::kDrop: {
        const std::string key = ToLower(stmt.drop->name);
        if (streams_.count(key) > 0) {
          if (streams_[key].has_consumers) {
            return Status::FailedPrecondition(
                "cannot drop stream '" + stmt.drop->name +
                "' with active continuous queries");
          }
          streams_.erase(key);
        }
        DC_RETURN_NOT_OK(catalog_.Drop(stmt.drop->name));
        break;
      }
    }
  }
  return last;
}

std::string Engine::DumpCatalogSql() const {
  std::string out;
  for (const std::string& name : catalog_.Names()) {
    auto table = catalog_.Get(name);
    auto kind = catalog_.KindOf(name);
    if (!table.ok() || !kind.ok()) continue;
    bool is_basket = *kind == RelationKind::kBasket;
    out += "create ";
    out += is_basket ? "basket " : "table ";
    out += name + " (";
    const Schema& schema = (*table)->schema();
    size_t n = schema.num_fields();
    if (is_basket && n > 0) --n;  // the implicit ts column is not declared
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) out += ", ";
      out += schema.field(i).name;
      out += " ";
      out += DataTypeToString(schema.field(i).type);
    }
    out += ")";
    if (is_basket) {
      auto it = streams_.find(ToLower(name));
      if (it != streams_.end() && it->second.partition_key.has_value() &&
          *it->second.partition_key < n) {
        out += " partition by " + schema.field(*it->second.partition_key).name;
      }
      if (it != streams_.end() && !it->second.cardinality.empty()) {
        out += " with (";
        bool first = true;
        for (const auto& [col, card] : it->second.cardinality) {
          if (col >= n) continue;
          if (!first) out += ", ";
          first = false;
          out += "cardinality(" + schema.field(col).name +
                 ") = " + std::to_string(card);
        }
        out += ")";
      }
    }
    out += ";\n";
  }
  for (const QueryInfo& q : queries_) {
    out += "-- continuous query '" + q.name + "'";
    if (q.removed) out += " (removed)";
    out += ": " + q.sql + "\n";
  }
  return out;
}

analysis::AnalysisReport Engine::Analyze() const {
  analysis::AnalysisReport report;

  // Pass 1 re-run over every live query. Each plan passed this analysis at
  // registration; re-running catches drift since then — most importantly a
  // statically-bound relation dropped from the catalog (P022), which would
  // fail the factory's next fire.
  for (const QueryInfo& q : queries_) {
    if (q.removed || q.factory == nullptr) continue;
    const sql::CompiledQuery& query = q.factory->query();
    analysis::AnalyzePlanNode(*query.plan, &report);
    for (const sql::ContinuousInput& in : query.inputs) {
      if (in.consume_predicate != nullptr) {
        analysis::CheckPredicate(*in.consume_predicate, in.basket_schema,
                                 "consume predicate of '" + in.basket +
                                     "' (query '" + q.name + "')",
                                 &report);
      }
    }
    for (const std::string& rel : query.plan->InputRelations()) {
      bool is_stream_input = false;
      for (const sql::ContinuousInput& in : query.inputs) {
        if (rel == in.bind_name) {
          is_stream_input = true;
          break;
        }
      }
      if (is_stream_input || catalog_.Get(rel).ok()) continue;
      report.Add(analysis::DiagCode::kUnknownRelation,
                 analysis::Severity::kError,
                 "query '" + q.name + "' reads relation '" + rel +
                     "' which is no longer in the catalog",
                 {}, q.name);
    }
  }

  // Pass 2: project the engine onto an abstract Petri-net topology.
  analysis::NetTopology net;
  std::set<const Basket*> output_bases;
  for (const QueryInfo& q : queries_) {
    if (q.output != nullptr) output_bases.insert(q.output.get());
  }
  auto add_place = [&net](const BasketPtr& b, bool external) {
    if (b == nullptr) return;
    analysis::NetPlace p;
    p.name = b->name();
    p.external_feed = external;
    p.num_readers = b->num_readers();
    p.bounded = b->capacity() > 0;
    p.system = b->name().rfind("sys.", 0) == 0;
    net.places.push_back(std::move(p));
  };
  // The baskets Ingest routes to for a stream (mirrors IngestBatch).
  auto ingest_targets = [](const StreamInfo& s) {
    std::vector<std::string> out;
    if (s.chain_head != nullptr) {
      out.push_back(s.chain_head->name());
    } else if (!s.replicas.empty()) {
      for (const BasketPtr& r : s.replicas) out.push_back(r->name());
      if (s.shared_used) out.push_back(s.base->name());
    } else {
      out.push_back(s.base->name());
    }
    return out;
  };
  for (const auto& [sname, s] : streams_) {
    // Query-output baskets are fed only by their factory; a user stream's
    // ingest targets are externally fed. A base basket ingest routes around
    // (chained/separate strategies) is fed by nothing — external=false keeps
    // it out of the orphan lint.
    bool is_output = output_bases.count(s.base.get()) != 0;
    bool base_is_ingest_target =
        s.chain_head == nullptr && (s.replicas.empty() || s.shared_used);
    add_place(s.base, !is_output && base_is_ingest_target);
    for (const BasketPtr& r : s.replicas) add_place(r, !is_output);
    for (size_t i = 0; i < s.chain.size(); ++i) {
      const std::vector<BasketPtr> links = s.chain[i]->input_baskets();
      // Link 0 of the first factory is the chain head (the ingest target);
      // later links are fed by the previous factory's passthrough.
      if (!links.empty()) add_place(links[0], !is_output && i == 0);
    }
    for (Receptor* r : s.receptors) {
      if (r == nullptr) continue;
      analysis::NetTransition t;
      t.name = r->name();
      t.kind = analysis::NetNodeKind::kReceptor;
      t.outputs = ingest_targets(s);
      net.transitions.push_back(std::move(t));
    }
    if (s.chain.size() >= 2) {
      analysis::NetChain chain;
      chain.stream = sname;
      for (const FactoryPtr& f : s.chain) {
        analysis::ChainLink link;
        link.transition = f->name();
        link.predicate = f->query().inputs[0].consume_predicate;
        chain.links.push_back(std::move(link));
      }
      net.chains.push_back(std::move(chain));
    }
  }
  for (const auto& [key, basket] : subplan_groups_) {
    add_place(basket, /*external=*/false);
  }
  if (monitor_ != nullptr) {
    // The self-observation receptor feeds the sys.* places (which are in
    // `streams_` and were added above, flagged system).
    analysis::NetTransition t;
    t.name = monitor_->name();
    t.kind = analysis::NetNodeKind::kReceptor;
    t.outputs = {MonitorReceptor::kTransitionsStream,
                 MonitorReceptor::kBasketsStream,
                 MonitorReceptor::kQueriesStream};
    net.transitions.push_back(std::move(t));
  }
  for (const auto& filter : shared_filters_) {
    analysis::NetTransition t;
    t.name = filter->name();
    t.kind = analysis::NetNodeKind::kSharedFilter;
    t.inputs.push_back(filter->input()->name());
    t.outputs.push_back(filter->output()->name());
    net.transitions.push_back(std::move(t));
  }
  for (const QueryInfo& q : queries_) {
    if (q.removed || q.factory == nullptr) continue;
    analysis::NetTransition t;
    t.name = q.factory->name();
    t.kind = analysis::NetNodeKind::kFactory;
    for (const BasketPtr& b : q.factory->input_baskets()) {
      t.inputs.push_back(b->name());
    }
    t.outputs.push_back(q.output->name());
    for (const BasketPtr& b : q.factory->passthrough_baskets()) {
      if (b != nullptr) t.outputs.push_back(b->name());
    }
    net.transitions.push_back(std::move(t));
    analysis::NetTransition e;
    e.name = q.emitter->name();
    e.kind = analysis::NetNodeKind::kEmitter;
    e.inputs.push_back(q.output->name());
    net.transitions.push_back(std::move(e));
  }
  analysis::AnalyzeTopology(net, &report);

  // Pass 3: partition-safety (advisory A0xx findings). Recomputed here
  // rather than replayed from registration so verdicts reflect the *current*
  // net: a second query sharing a basket flips num_readers past 1 (the N004
  // shape) and pins both, and declared keys may have changed.
  analysis::PartitionKeyMap declared = DeclaredPartitionKeys();
  for (const QueryInfo& q : queries_) {
    if (q.removed || q.factory == nullptr) continue;
    analysis::AnalysisReport pass3;
    auto res =
        analysis::AnalyzePartitioning(q.factory->query(), declared, &pass3);
    for (analysis::Diagnostic d : pass3.diagnostics()) {
      d.object = d.object.empty() ? ("query '" + q.name + "'")
                                  : ("query '" + q.name + "' " + d.object);
      report.Add(std::move(d));
    }
    if (!res.ok()) continue;
    // Engine-level overrides on top of the static verdict.
    std::string reason;
    if (res->verdict != analysis::PartitionVerdict::kPinned &&
        EffectivePartitionVerdict(q, &reason) ==
            analysis::PartitionVerdict::kPinned) {
      report.Add(analysis::DiagCode::kPinnedQuery, analysis::Severity::kWarning,
                 "query pins a single shard: " + reason, {},
                 "query '" + q.name + "'");
    }
  }

  // Pass 4: state bounds, recomputed against the current catalog (hints may
  // have been declared after registration and static build sides grow).
  {
    analysis::CardinalityMap hints = DeclaredCardinalities();
    for (const QueryInfo& q : queries_) {
      if (q.removed || q.factory == nullptr) continue;
      analysis::AnalysisReport pass4;
      analysis::StateAnalyzerOptions sopts = StateOptionsFor(q.factory->query());
      auto res = analysis::AnalyzeStateBounds(q.factory->query(), hints, sopts,
                                              &pass4);
      for (analysis::Diagnostic d : pass4.diagnostics()) {
        d.object = d.object.empty() ? ("query '" + q.name + "'")
                                    : ("query '" + q.name + "' " + d.object);
        report.Add(std::move(d));
      }
      (void)res;
    }
    bool any_unbounded = false;
    int64_t total = TotalStateBoundBytes(&any_unbounded);
    report.Add(analysis::DiagCode::kStateBoundNote, analysis::Severity::kNote,
               std::string("engine state bound: ") +
                   (any_unbounded ? "unbounded"
                                  : std::to_string(total) +
                                        " B across live queries' numeric "
                                        "bounds"),
               {}, "engine");
  }
  return report;
}

Result<std::string> Engine::ExplainSql(const std::string& sql) const {
  DC_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (stmt.kind != sql::Statement::Kind::kSelect) {
    return Status::InvalidArgument("EXPLAIN supports SELECT statements");
  }
  sql::Planner planner(&catalog_);
  DC_ASSIGN_OR_RETURN(sql::CompiledQuery query,
                      planner.CompileSelect(*stmt.select));
  return ExplainMal(*query.plan);
}

}  // namespace datacell
