#ifndef DATACELL_CORE_FACTORY_H_
#define DATACELL_CORE_FACTORY_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "algebra/specialize.h"
#include "common/clock.h"
#include "core/basket.h"
#include "core/transition.h"
#include "core/window.h"
#include "sql/planner.h"

namespace datacell {

class BatchPool;

namespace analysis {
struct PartitionReport;
struct StateReport;
}  // namespace analysis

/// How a factory obtains input from its basket(s) — the processing
/// strategies of §2.5.
enum class ProcessingStrategy {
  /// Each query owns private input baskets; the receptor copies every tuple
  /// into each. The factory drains its basket exclusively.
  kSeparateBaskets,
  /// Queries on the same stream share one basket; each factory reads past
  /// its watermark without removing, and tuples are trimmed once every
  /// reader has seen them.
  kSharedBaskets,
  /// Disjoint-predicate chaining: the factory drains everything, keeps the
  /// tuples matching its basket predicate and forwards the rest to the next
  /// query's basket, shrinking downstream work.
  kChained,
};

const char* ProcessingStrategyToString(ProcessingStrategy s);

struct FactoryOptions {
  ProcessingStrategy strategy = ProcessingStrategy::kSeparateBaskets;
  WindowMode window_mode = WindowMode::kAuto;
  int priority = 0;
  /// Separate-baskets only: the input baskets are engine-created private
  /// replicas with no other reader, so tuples not matching the basket
  /// expression are dead and may be dropped on drain instead of retained.
  /// User-visible baskets keep the §2.6 partially-emptied-basket semantics.
  bool exclusive_private_inputs = false;
  /// The query's result already ends with a ts column (e.g. `select *`
  /// projects the stream's arrival ts last). The output basket then reuses
  /// it as its implicit timestamp — arrival times flow through unchanged —
  /// instead of stamping result-production time.
  bool output_carries_ts = false;
  /// Execution context handed to every plan run this factory performs. When
  /// `exec.pool` is set, large input slices are processed by the parallel
  /// kernel variants; small slices stay on the scalar path.
  ExecContext exec;
  /// Attempt registration-time plan specialization (algebra/specialize.h).
  /// When the plan compiles, Fire() drives the fused pipeline instead of the
  /// tree interpreter; otherwise the interpreter runs and the fallback
  /// reason is kept for \explain. Disable to force the interpreter.
  bool specialize = true;
  /// Per-string byte estimate the state accounting (and the pass-4 gate
  /// below) prices string columns at; must match the analyzer's figure for
  /// static bound and measured occupancy to be comparable.
  int64_t state_string_bytes = 32;
  /// Pass-4 admission gate for factories created outside the engine: > 0
  /// runs the state-bound analyzer (without catalog hints) and rejects
  /// creation when the query's bound is unbounded or exceeds this many
  /// bytes. Engine-submitted queries are gated in SubmitCompiledQuery
  /// instead, where cardinality hints and the engine cap are in scope.
  size_t max_state_bytes = 0;
};

/// A continuous query cast into a resumable unit of execution (§2.3): it
/// holds the compiled plan, reads from its input baskets, runs the plan as
/// one bulk operation and appends qualifying tuples to its output basket.
/// The scheduler calls `Fire()`, which corresponds to one iteration of
/// Algorithm 1's loop; suspension between calls is implicit (state lives in
/// the object, as in MonetDB's factory co-routines).
class Factory final : public Transition {
 public:
  /// `input_baskets` aligns 1:1 with `query.inputs`. `static_bindings`
  /// resolves plan scans of non-stream relations (stream–table joins).
  /// For windowed queries there must be exactly one input.
  static Result<std::shared_ptr<Factory>> Create(
      std::string name, sql::CompiledQuery query,
      std::vector<BasketPtr> input_baskets, BasketPtr output,
      PlanBindings static_bindings, const Clock* clock,
      FactoryOptions options);

  bool Ready() const override;
  Result<int64_t> Fire() override;
  /// Smallest per-input availability: the Petri-net enabling amount.
  int64_t Backlog() const override;

  /// Chained strategy: tuples of input `input_index` that do NOT match the
  /// basket predicate are forwarded here instead of being dropped.
  void SetPassthrough(size_t input_index, BasketPtr basket);

  /// Input slices and result tables this factory holds exclusively after a
  /// fire are recycled here, so subsequent drains and plan runs reuse their
  /// buffers. Bind before the factory enters the scheduler.
  void SetBatchPool(BatchPool* pool) { pool_ = pool; }

  /// Retires this factory's shared-basket watermarks so remaining readers'
  /// trims are no longer held back. Call only when the factory will not
  /// fire again (it must already be out of the scheduler).
  void DetachReaders();
  /// The baskets this factory reads (for engine-side unwiring).
  std::vector<BasketPtr> input_baskets() const;
  /// The chained-strategy forwarding baskets, in input order (null entries
  /// for inputs without a passthrough). Net-analysis topology input.
  std::vector<BasketPtr> passthrough_baskets() const;

  const sql::CompiledQuery& query() const { return query_; }
  const BasketPtr& output() const { return output_; }
  /// Pass-3 partition-safety report, attached by the engine at registration
  /// (analysis/partition_analyzer.h). May be null for factories created
  /// outside the engine. The engine recomputes live overrides (multi-reader
  /// inputs, chained strategy) on top of this static verdict at \analyze and
  /// metrics time.
  void SetPartitionReport(std::shared_ptr<const analysis::PartitionReport> r) {
    partition_report_ = std::move(r);
  }
  const std::shared_ptr<const analysis::PartitionReport>& partition_report()
      const {
    return partition_report_;
  }
  /// Pass-4 state-bound report, attached by the engine at registration
  /// (analysis/state_analyzer.h). May be null for factories created outside
  /// the engine.
  void SetStateReport(std::shared_ptr<const analysis::StateReport> r) {
    state_report_ = std::move(r);
  }
  const std::shared_ptr<const analysis::StateReport>& state_report() const {
    return state_report_;
  }
  /// Measured cross-firing operator state in bytes (window buffer rows x
  /// input row width + specialized join build state), refreshed at the end
  /// of every Fire — the ground truth the pass-4 oracle and the
  /// datacell_query_state_bytes gauge compare against the static bound.
  size_t state_bytes() const {
    return state_bytes_.load(std::memory_order_relaxed);
  }
  /// High-water mark of state_bytes() across this factory's lifetime.
  size_t state_bytes_high_water() const {
    return state_high_water_.load(std::memory_order_relaxed);
  }
  ProcessingStrategy strategy() const { return options_.strategy; }
  /// "none", "reeval" or "incremental".
  const char* window_mode_name() const {
    return window_ == nullptr ? "none" : window_->mode_name();
  }
  /// The MAL rendering of the wrapped plan (explain output).
  std::string ExplainPlan() const;
  /// True when Fire() drives a registration-time specialized pipeline.
  bool is_specialized() const { return specialized_ != nullptr; }
  /// Why specialization was not applied (empty when it was).
  const std::string& specialize_fallback() const {
    return specialize_fallback_;
  }
  /// The execution pipeline \explain prints: the specialized step list, or
  /// the interpreter with its fallback reason.
  std::string PipelineDescription() const;

  /// Toggles per-step profiling for this factory's firings. The profile's
  /// step list exists from creation either way — only the recording is
  /// switched — so counters accumulate across off/on cycles and \profile
  /// after a disable still shows what was gathered.
  void SetProfiling(bool on) {
    profiling_.store(on, std::memory_order_relaxed);
  }
  bool profiling() const { return profiling_.load(std::memory_order_relaxed); }
  /// The per-step profile (always non-null after Create). Readers may
  /// snapshot it concurrently with firings.
  const PipelineProfile& profile() const { return *profile_; }
  /// \profile output: the pipeline description followed by the per-step
  /// counter table.
  std::string ProfileReport() const;

  int64_t results_emitted() const {
    return results_emitted_.load(std::memory_order_relaxed);
  }
  int64_t plan_errors() const {
    return plan_errors_.load(std::memory_order_relaxed);
  }

#if DATACELL_DEBUG_CHECKS_ENABLED
  /// Test-only (debug-check builds): marks the factory as already in Fire(),
  /// so the next Fire() trips the exactly-once re-entrancy check — the
  /// deliberate violation path for the invariant abort tests.
  void TestOnlyBeginFire() { in_fire_.store(true, std::memory_order_release); }
#endif

 private:
  struct InputBinding {
    BasketPtr basket;
    const sql::ContinuousInput* spec;  // points into query_.inputs
    size_t reader_id = 0;              // shared strategy only
    BasketPtr passthrough;             // chained strategy only
#if DATACELL_DEBUG_CHECKS_ENABLED
    // Cumulative tuples this factory consumed from the basket; written only
    // inside Fire() (single-writer by the exactly-once guard). A tuple
    // consumed twice would eventually push this past the basket's appended
    // total, which Fire() DC_CHECKs.
    int64_t taken = 0;
#endif
  };

  Factory(std::string name, sql::CompiledQuery query, BasketPtr output,
          PlanBindings static_bindings, const Clock* clock,
          FactoryOptions options);

  /// Recomputes state_bytes() / the high-water mark. Called from Fire()
  /// (single-writer) and once at creation for the registration-built join
  /// index.
  void UpdateStateAccounting();

  /// Tuples available on input `i` under the current strategy.
  size_t AvailableOn(const InputBinding& in) const;
  /// Obtains (and consumes, per strategy) the next input slice.
  Result<TablePtr> TakeSlice(InputBinding& in);

  sql::CompiledQuery query_;
  std::vector<InputBinding> inputs_;
  BasketPtr output_;
  PlanBindings static_bindings_;
  const Clock* clock_;
  FactoryOptions options_;
  BatchPool* pool_ = nullptr;  // bound at wiring time; may stay null
  size_t min_tuples_ = 1;
  std::unique_ptr<WindowExecutor> window_;  // null for unwindowed queries
  // Registration-time compiled pipeline; null means the interpreter runs
  // and specialize_fallback_ says why.
  std::unique_ptr<SpecializedPipeline> specialized_;
  std::string specialize_fallback_;
  // Built once at Create (steps for the specialized stages or the plan
  // nodes); recording is gated by profiling_ per firing.
  std::unique_ptr<PipelineProfile> profile_;
  std::shared_ptr<const analysis::PartitionReport> partition_report_;
  std::shared_ptr<const analysis::StateReport> state_report_;
  // Single-writer (Fire) / many-reader state accounting cells.
  std::atomic<size_t> state_bytes_{0};
  std::atomic<size_t> state_high_water_{0};
  std::atomic<bool> profiling_{false};
  std::atomic<int64_t> results_emitted_{0};
  std::atomic<int64_t> plan_errors_{0};
#if DATACELL_DEBUG_CHECKS_ENABLED
  // Exactly-once firing guard: set for the duration of Fire(). The scheduler
  // claims a transition before firing it, so two overlapping Fires on the
  // same factory mean the claim protocol broke and inputs would be consumed
  // twice — caught here instead of surfacing as silent duplicate results.
  std::atomic<bool> in_fire_{false};
#endif
};

using FactoryPtr = std::shared_ptr<Factory>;

}  // namespace datacell

#endif  // DATACELL_CORE_FACTORY_H_
