#ifndef DATACELL_CORE_RECEPTOR_H_
#define DATACELL_CORE_RECEPTOR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adapters/channel.h"
#include "common/clock.h"
#include "core/basket.h"
#include "core/transition.h"

namespace datacell {

/// Ingest adapter (§2.1): picks up textual tuples from a communication
/// channel, validates their structure against the stream schema, stamps the
/// arrival timestamp and hands the batch to the delivery function — which
/// routes it into "the proper baskets" for the active processing strategy
/// (private copies under separate-baskets, the shared basket otherwise).
class Receptor : public Transition {
 public:
  /// Routes validated tuples into baskets; supplied by the engine.
  using DeliverFn =
      std::function<Status(const std::vector<Row>& rows, Timestamp ts)>;
  /// Columnar delivery: the receptor parses lines straight into a typed
  /// ColumnBatch (no Row/Value boxing) and moves it downstream; the callee
  /// (Engine::IngestColumns) swaps the buffers into the target basket and
  /// the batch comes back empty but capacitied for the next fire.
  using DeliverColumnsFn = std::function<Status(ColumnBatch&& batch)>;

  /// `user_schema` is the stream schema *without* the ts column.
  Receptor(std::string name, Channel* channel, Schema user_schema,
           DeliverFn deliver, const Clock* clock, size_t max_batch = 4096);
  /// Columnar-delivery receptor (the engine's default wiring).
  Receptor(std::string name, Channel* channel, Schema user_schema,
           DeliverColumnsFn deliver, const Clock* clock,
           size_t max_batch = 4096);

  bool Ready() const override;
  /// Lines waiting on the wire.
  int64_t Backlog() const override {
    return static_cast<int64_t>(channel_->size());
  }

  /// Drains up to `max_batch` lines, parses and validates each, and delivers
  /// the valid tuples. Malformed lines are counted and dropped (a receptor
  /// must not stall the stream on bad input).
  Result<int64_t> Fire() override;

  int64_t malformed_lines() const {
    return malformed_.load(std::memory_order_relaxed);
  }

 private:
  Result<int64_t> FireRows(Timestamp start);
  Result<int64_t> FireColumns(Timestamp start);

  Channel* channel_;
  Schema user_schema_;
  DeliverFn deliver_;                  // row path (exactly one is set)
  DeliverColumnsFn deliver_columns_;   // columnar path
  const Clock* clock_;
  size_t max_batch_;
  // Reused across fires so the steady state allocates nothing: the line
  // buffer keeps its vector capacity, the batch keeps whatever buffer
  // capacity the basket handed back in the delivery swap.
  std::vector<std::string> lines_;
  ColumnBatch batch_;
  // Atomic: mutated by whichever scheduler worker fires the receptor, read
  // by monitoring threads through the accessor and the metrics snapshot.
  std::atomic<int64_t> malformed_{0};
};

}  // namespace datacell

#endif  // DATACELL_CORE_RECEPTOR_H_
