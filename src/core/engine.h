#ifndef DATACELL_CORE_ENGINE_H_
#define DATACELL_CORE_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adapters/channel.h"
#include "adapters/monitor.h"
#include "adapters/sink.h"
#include "analysis/net_analyzer.h"
#include "analysis/partition_analyzer.h"
#include "analysis/state_analyzer.h"
#include "common/clock.h"
#include "common/metrics_registry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/emitter.h"
#include "core/factory.h"
#include "core/receptor.h"
#include "core/scheduler.h"
#include "core/shared_filter.h"
#include "sql/planner.h"
#include "storage/catalog.h"

namespace datacell {

/// What the pass-4 admission gate does when a query's state bound is
/// unbounded or exceeds a configured cap.
enum class StateBoundPolicy {
  kReject,  // registration fails with a positioned S007/S008 TypeError
  kWarn,    // registration proceeds; the S-diagnostic is kept advisory
};

/// Engine-wide configuration.
struct EngineOptions {
  /// Strategy applied to continuous queries unless overridden per query.
  ProcessingStrategy default_strategy = ProcessingStrategy::kSharedBaskets;
  /// Window evaluation mode for windowed queries.
  WindowMode window_mode = WindowMode::kAuto;
  SchedulingPolicy scheduling_policy = SchedulingPolicy::kRoundRobin;
  /// §3.2 multi-query optimisation: queries whose basket expressions are
  /// identical (same stream, same predicate) share one auxiliary factory
  /// that evaluates the predicate once and feeds all of them. Applies to
  /// shared-strategy queries.
  bool factor_common_subplans = false;
  /// false => a SimulatedClock the caller advances manually; used by the
  /// deterministic tests and time-window experiments.
  bool use_wall_clock = true;
  /// Receptor ingest batch cap.
  size_t receptor_batch = 4096;
  /// Load shedding: every stream basket (including private replicas and
  /// chain links) holds at most this many tuples; 0 = unbounded. Overload
  /// then sheds by `drop_policy` instead of growing without bound (§1).
  size_t max_basket_tuples = 0;
  Basket::DropPolicy drop_policy = Basket::DropPolicy::kDropOldest;
  /// Intra-factory parallelism: size of the shared kernel thread pool the
  /// engine hands every factory through its ExecContext. 0 (the default)
  /// keeps all kernels scalar — the right choice when the scheduler already
  /// runs one worker per core. Set >0 when few fat queries must each use
  /// the whole machine (morsel-driven parallel selection/join/aggregation).
  size_t kernel_threads = 0;
  /// Minimum input size (values) before a kernel fans out over the pool;
  /// smaller baskets stay on the scalar path, whose latency is lower.
  size_t parallel_threshold = 128 * 1024;
  /// Compile each submitted plan into a fused, type-specialized pipeline at
  /// registration (algebra/specialize.h); plans outside the supported shape
  /// fall back to the tree interpreter per query. Off forces the
  /// interpreter everywhere (the equivalence tests' reference engine).
  bool specialize_plans = true;
  /// Event tracing (common/trace.h): capacity of the bounded trace ring in
  /// events; 0 (the default) disables tracing — no ring is allocated and
  /// the instrumented hot paths pay at most a null-pointer check. Takes
  /// effect only in builds configured with -DDATACELL_TRACE=ON (the option
  /// defaults OFF, which compiles the hooks out entirely). The ring keeps
  /// the most recent `trace_capacity` scheduler sweeps, transition firings
  /// and basket lock waits; export with Engine::TraceJson().
  size_t trace_capacity = 0;
  /// Whether the trace ring starts recording (only meaningful with
  /// trace_capacity > 0). Engine::SetTraceEnabled and the shell's
  /// `\trace on|off` flip it at runtime without losing captured events.
  bool trace_enabled = true;
  /// Self-observation tick (µs): > 0 creates the reserved system streams
  /// (sys.transitions, sys.baskets, sys.queries) and a MonitorReceptor that
  /// samples the metrics registry into them every tick. 0 (default) = no
  /// system streams, no monitor transition.
  int64_t monitor_tick_us = 0;
  /// Retention of the system streams in tuples: each sys.* basket keeps the
  /// most recent `monitor_history` telemetry rows (DropOldest shedding), so
  /// an unconsumed telemetry stream stays bounded.
  size_t monitor_history = 4096;
  /// Start every factory with per-step pipeline profiling on (the shell's
  /// `\profile` / Engine::SetProfiling flip it at runtime). Off by default:
  /// profiling costs one clock pair per pipeline step while enabled.
  bool profile_queries = false;
  /// Threaded scheduler idle fallback tick (µs): how long an idle worker
  /// sleeps without a wake notification before re-checking time-driven
  /// readiness (wall-clock windows, the monitor tick). The default matches
  /// the historical 2 ms; tests raise it to freeze the scheduler between
  /// explicit wakes.
  int64_t idle_tick_us = 2000;
  /// Which shard of a ShardedEngine (core/shard.h) this engine is. Pure
  /// observability: sys.transitions / sys.baskets monitor rows and the
  /// datacell_shard_* metrics carry it so per-shard telemetry stays
  /// attributable after the union. 0 for standalone engines.
  int shard_index = 0;
  /// Pass-4 admission control. max_query_state_bytes > 0 gates each
  /// submitted query on its static state bound: unbounded verdicts and
  /// numeric bounds above the cap are rejected (or warned, per
  /// `state_bound_policy`) at SubmitContinuousQuery time, before any output
  /// stream or basket plumbing exists — a rejected query leaves no state
  /// behind. Symbolic-but-bounded verdicts (time windows) pass: they are
  /// bounded in principle and cannot be compared to a byte cap.
  size_t max_query_state_bytes = 0;
  /// > 0 additionally caps the sum of all live queries' numeric bounds; a
  /// submission that would push the engine total (or any unbounded query)
  /// past it is rejected/warned the same way (S008).
  size_t max_engine_state_bytes = 0;
  StateBoundPolicy state_bound_policy = StateBoundPolicy::kReject;
  /// Estimated bytes per string value for pass-4 row widths (fixed-width
  /// columns are priced by their value size). Also used by the factories'
  /// runtime state accounting so static bound and measured occupancy stay
  /// comparable.
  int64_t state_string_bytes = 32;
};

/// Per-query overrides for SubmitContinuousQuery.
struct QueryOptions {
  std::optional<ProcessingStrategy> strategy;
  std::optional<WindowMode> window_mode;
  int priority = 0;
};

using QueryId = size_t;

/// The DataCell engine: the layer between the SQL compiler and the
/// column-store kernel (§2). It owns the catalog, the baskets, the adapter
/// transitions and the scheduler, and exposes the public API a stream
/// application programs against.
///
/// Typical usage (Figure 1's pipeline):
///
///   Engine engine;
///   engine.ExecuteSql("create basket sensors (id int, temp double)");
///   auto q = engine.SubmitContinuousQuery("hot",
///       "select id, temp from [select * from sensors] as s "
///       "where s.temp > 30.0");
///   auto sink = std::make_shared<CollectingSink>();
///   engine.Subscribe(*q, sink);
///   engine.Ingest("sensors", {Value::Int64(1), Value::Double(42.0)});
///   engine.Drain();   // or engine.Start() for the threaded mode
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- SQL entry points ---------------------------------------------------
  /// Executes DDL (CREATE TABLE/BASKET, DROP), INSERT, or a one-time SELECT.
  /// Returns the result table for SELECT, an empty table otherwise.
  /// Continuous SELECTs (basket expression in FROM) are rejected here —
  /// submit them with SubmitContinuousQuery.
  Result<TablePtr> ExecuteSql(const std::string& sql);
  /// Executes a ';'-separated script of statements; stops at the first
  /// error. Returns the result of the last SELECT (or an empty table).
  Result<TablePtr> ExecuteScript(const std::string& script);

  /// Registers a continuous query under `name`. Creates the factory, an
  /// output basket `<name>_out`, and an emitter, wires them into the
  /// scheduler, and applies the processing strategy.
  Result<QueryId> SubmitContinuousQuery(const std::string& name,
                                        const std::string& sql,
                                        QueryOptions options = {});

  /// Registers an already-compiled continuous query — the path the sharded
  /// executor (core/shard.h) uses to install analyzer-synthesized partial
  /// plans that have no SQL surface form. `query.sql_text` should be set for
  /// introspection; everything downstream of parsing in
  /// SubmitContinuousQuery (plan analysis, strategy plumbing, factory,
  /// emitter, pass-3 classification) runs identically.
  Result<QueryId> SubmitCompiledQuery(const std::string& name,
                                      sql::CompiledQuery query,
                                      QueryOptions options = {});

  /// Attaches a result sink to query `id`'s emitter.
  Status Subscribe(QueryId id, std::shared_ptr<ResultSink> sink);

  /// Retires a continuous query: its factory and emitter stop firing and
  /// their shared-basket watermarks are released so remaining readers trim
  /// normally. The output basket stays registered (dormant) because other
  /// queries may still drain it. Requires the scheduler to be stopped;
  /// chained-strategy queries cannot be removed (their passthrough links
  /// would dangle).
  Status RemoveContinuousQuery(QueryId id);

  // --- stream management ---------------------------------------------------
  /// Creates a stream: a catalog basket with the implicit ts column.
  /// (`CREATE BASKET` via ExecuteSql does the same.)
  Result<BasketPtr> CreateStream(const std::string& name,
                                 const Schema& user_schema);
  /// The basket behind stream `name`.
  Result<BasketPtr> GetBasket(const std::string& name) const;

  /// Declares stream `name`'s partition key (`CREATE BASKET ... PARTITION BY
  /// <column>` routes here). The column must exist in the stream's user
  /// schema. The partition-safety analyzer (pass 3) seeds its lattice from
  /// these declarations; queries registered over output streams inherit the
  /// key the producing query preserves.
  Status SetStreamPartitionKey(const std::string& name,
                               const std::string& column);
  /// basket (lower-cased) -> declared partition column index, for pass 3.
  analysis::PartitionKeyMap DeclaredPartitionKeys() const;

  /// Declares a key-space cardinality hint for stream `name`'s `column`
  /// (`CREATE BASKET ... WITH (cardinality(col) = N)` routes here). The
  /// state-bound analyzer (pass 4) uses it to bound group-by / distinct
  /// state on that column.
  Status SetStreamCardinality(const std::string& name,
                              const std::string& column, int64_t cardinality);
  /// basket (lower-cased) -> column index -> declared cardinality, for
  /// pass 4.
  analysis::CardinalityMap DeclaredCardinalities() const;

  /// Sum of the live queries' numeric state bounds in bytes, plus whether
  /// any live query is unbounded — the engine-wide pass-4 footprint the
  /// max_engine_state_bytes gate and Analyze() report.
  int64_t TotalStateBoundBytes(bool* any_unbounded = nullptr) const;

  /// Appends one tuple (without ts) to stream `name`, replicating to
  /// private baskets as the active strategy requires. The fast in-process
  /// ingest path used by tests and benchmarks.
  Status Ingest(const std::string& name, const Row& values);
  Status IngestBatch(const std::string& name, const std::vector<Row>& rows);
  /// Zero-copy columnar ingest: `batch` holds the stream's user columns (no
  /// ts) and its buffers are *swapped* into the target basket; the batch
  /// comes back empty but keeps the basket's previous buffer capacity, ready
  /// to refill. When the stream fans out to several baskets (private
  /// replicas) the columns are copied instead. The receptor delivery path.
  Status IngestColumns(const std::string& name, ColumnBatch&& batch);
  /// Bulk columnar ingest: `batch` holds the stream's user columns (no ts);
  /// all tuples are stamped with the current time. The fastest ingest path —
  /// one column append per column, used by the benchmarks and high-rate
  /// feeds.
  Status IngestTable(const std::string& name, const Table& batch);

  /// Attaches a receptor thread-equivalent transition reading CSV tuples
  /// from `channel` into stream `name`. The channel's wake callback holds
  /// only a shared wake hub, never the engine, so the channel may be
  /// destroyed before the engine (or outlive it) — but the caller must stop
  /// scheduling (no Step/Drain/Start) once the channel is gone, since the
  /// receptor still reads from it when fired.
  Result<Receptor*> AttachReceptor(const std::string& name, Channel* channel);

  /// The engine-wide buffer recycler (introspection: pool hit/miss counters
  /// are also exported via MetricsSnapshot).
  BatchPool* batch_pool() const { return batch_pool_.get(); }

  // --- execution control ----------------------------------------------------
  /// One deterministic scheduler sweep; returns #transitions fired.
  int Step() { return scheduler_.Step(); }
  /// Sweeps until quiescent. Call after Ingest in single-stepped mode.
  int64_t Drain(int64_t max_sweeps = 1000000) {
    return scheduler_.RunUntilQuiescent(max_sweeps);
  }
  /// Starts / stops the threaded scheduler loop. More than one worker fires
  /// transitions concurrently (the paper's multi-threaded architecture);
  /// each transition and each basket is still accessed by one thread at a
  /// time.
  Status Start(size_t num_threads = 1) { return scheduler_.Start(num_threads); }
  void Stop() { scheduler_.Stop(); }

  // --- introspection ---------------------------------------------------------
  Catalog& catalog() { return catalog_; }
  const Clock& clock() const { return *clock_; }
  /// Non-null when constructed with use_wall_clock = false.
  SimulatedClock* simulated_clock() { return sim_clock_; }
  Scheduler& scheduler() { return scheduler_; }

  struct QueryInfo {
    std::string name;
    std::string sql;
    FactoryPtr factory;
    BasketPtr output;
    std::shared_ptr<Emitter> emitter;
    bool removed = false;
    /// Pass-3 partition-safety report computed at registration (static
    /// verdict; live overrides are applied by EffectivePartitionVerdict).
    std::shared_ptr<const analysis::PartitionReport> partition;
    /// Pass-4 state-bound report computed at registration.
    std::shared_ptr<const analysis::StateReport> state;
    /// Human-readable shard placement set by the sharded executor (e.g.
    /// "all shards + merge", "shard 2 (pinned)"); empty for standalone
    /// engines. Surfaced by \shards, \analyze and the /queries endpoint.
    std::string placement;
  };
  /// The query's partition verdict with the engine-level overrides applied
  /// on top of the registration-time report: chained-strategy queries and
  /// queries whose input baskets have multiple readers (the N004 stealing
  /// shape) pin regardless of what the plan alone allows — both shapes
  /// couple queries through shared basket state that a shard split would
  /// tear. `reason` (optional) receives the pin explanation.
  analysis::PartitionVerdict EffectivePartitionVerdict(
      const QueryInfo& q, std::string* reason = nullptr) const;
  Result<const QueryInfo*> GetQuery(QueryId id) const;
  size_t num_queries() const { return queries_.size(); }
  /// Records where the sharded executor placed query `id` (see
  /// QueryInfo::placement). Out-of-range ids are ignored.
  void SetQueryPlacement(QueryId id, std::string placement) {
    if (id < queries_.size()) queries_[id].placement = std::move(placement);
  }
  /// This engine's shard index (EngineOptions::shard_index).
  int shard_index() const { return options_.shard_index; }

  /// Explain: parses and compiles `sql`, returning the MAL-style listing.
  Result<std::string> ExplainSql(const std::string& sql) const;

  /// Static analysis of the registered net: re-runs the plan analyzer over
  /// every live query (pass 1) and the Petri-net dataflow lints (pass 2) —
  /// orphan baskets, dead transitions, transition cycles, multi-reader
  /// stealing, chained-predicate overlap and coverage gaps. Read-only; call
  /// while the scheduler is stopped or between sweeps. Rendered by the
  /// shell's \analyze command and datacell-lint.
  analysis::AnalysisReport Analyze() const;

  /// CREATE statements reproducing the current catalog (baskets keep their
  /// implicit ts column out of the dump), plus the registered continuous
  /// queries as comments. Feed back through ExecuteScript to clone schemas.
  std::string DumpCatalogSql() const;

  int64_t tuples_ingested() const {
    return tuples_ingested_.load(std::memory_order_relaxed);
  }
  /// Number of factored common-subplan groups currently installed.
  size_t num_shared_subplans() const { return subplan_groups_.size(); }

  // --- observability --------------------------------------------------------
  /// The engine's metric registry. Every receptor, factory, emitter and
  /// shared filter pushes per-instance counters and fire-latency histograms
  /// here as it runs; emitters additionally push per-query end-to-end tuple
  /// latency (see Emitter::SetLatencyHistogram). Names follow the scheme
  /// documented in docs/ARCHITECTURE.md ("Observability").
  MetricsRegistry& metrics() const { return metrics_; }
  /// Typed point-in-time view: refreshes the pull-side gauges (basket
  /// occupancy/high-water/bytes, scheduler sweep and wake counters, ingest
  /// totals, receptor malformed counts) and snapshots the whole registry.
  /// Safe to call while the scheduler runs.
  MetricsSnapshotData MetricsSnapshot() const;
  /// Prometheus text exposition of MetricsSnapshot() — scrape or diff it.
  std::string MetricsText() const;

  /// Prometheus exposition restricted to metric names starting with
  /// `prefix` (the shell's `\metrics <prefix>`). Refreshes pulled gauges
  /// like MetricsText().
  std::string MetricsText(const std::string& prefix) const;

  /// Runtime toggle for every factory's per-step pipeline profiler (see
  /// algebra/profile.h); also the default for queries submitted later.
  /// Counters accumulate across off/on cycles.
  void SetProfiling(bool on);
  bool profiling() const { return profile_queries_; }
  /// The `\profile` report for query `id`: pipeline description plus the
  /// per-step calls/rows/time table.
  Result<std::string> ProfileReport(QueryId id) const;

  /// Runtime trace toggle (no-op without a trace ring); see
  /// EngineOptions::trace_enabled.
  void SetTraceEnabled(bool on) {
    if (trace_ != nullptr) trace_->SetEnabled(on);
  }

  /// The self-observation transition; null unless monitor_tick_us > 0.
  MonitorReceptor* monitor() const { return monitor_.get(); }

  /// Non-null when EngineOptions::trace_capacity > 0 (and tracing compiled).
  TraceRing* trace() const { return trace_.get(); }
  /// Chrome trace_event JSON of the current trace ring content; load in
  /// chrome://tracing or ui.perfetto.dev. Empty trace => valid JSON with an
  /// empty event array. Returns "" when tracing is disabled.
  std::string TraceJson() const;

  /// Multi-line human-readable engine state, built on MetricsSnapshot():
  /// per-transition fire counts and latency percentiles, per-query
  /// end-to-end latency, per-basket occupancy/shedding, scheduler and wake
  /// counters.
  std::string StatsReport() const;
  /// Total tuples shed across all stream baskets.
  int64_t total_shed() const;

 private:
  struct StreamInfo {
    BasketPtr base;                    // the catalog basket
    Schema user_schema;                // without ts
    /// Declared partition key: user-schema column index (== basket column
    /// index; the implicit ts column is appended after the user columns).
    std::optional<size_t> partition_key;
    /// Declared cardinality hints: user-schema column index -> max distinct
    /// values (`WITH (cardinality(col) = N)`), consumed by pass 4.
    std::map<size_t, int64_t> cardinality;
    std::vector<BasketPtr> replicas;   // separate-strategy private baskets
    std::vector<FactoryPtr> chain;     // chained-strategy factories, in order
    BasketPtr chain_head;              // first chained basket (ingest target)
    bool shared_used = false;
    bool has_consumers = false;
    std::vector<Receptor*> receptors;
  };

  Result<TablePtr> ExecuteSelect(const sql::SelectStmt& stmt);
  /// Shared body of CreateStream: `system` bypasses the reserved-prefix
  /// check and applies the monitor_history retention bound.
  Result<BasketPtr> CreateStreamInternal(const std::string& name,
                                         const Schema& user_schema,
                                         bool system);
  /// Creates the sys.* streams and the monitor transition (constructor tail,
  /// monitor_tick_us > 0 only).
  void SetUpMonitor();
  Status ExecuteCreate(const sql::CreateStmt& stmt);
  Status ExecuteInsert(const sql::InsertStmt& stmt);
  Result<BasketPtr> MakePrivateBasket(const std::string& stream,
                                      const std::string& suffix);
  /// Resolves non-stream scan relations of `plan` from the catalog.
  Result<PlanBindings> ResolveStaticBindings(
      const sql::CompiledQuery& query) const;
  /// Pass-4 analyzer inputs for `query` under the current catalog: string
  /// pricing, input-basket capacities/readers, static-relation row counts.
  analysis::StateAnalyzerOptions StateOptionsFor(
      const sql::CompiledQuery& query) const;
  StreamInfo* FindStream(const std::string& name);

  /// Indirection between producer wake callbacks and the scheduler. Baskets
  /// and channels can outlive the engine — or die before it (e.g. a
  /// stack-allocated Channel in a narrower scope than the engine). Their
  /// callbacks therefore capture a shared_ptr to this hub, never the engine:
  /// the destructor disarms the hub instead of reaching into producers that
  /// may already be gone, and a retained producer firing after engine death
  /// finds the hub disarmed instead of a dangling scheduler.
  struct WakeHub {
    /// Forwards to Scheduler::NotifyWork while armed; no-op after Disarm().
    void Notify();
    void Disarm();

    std::mutex mu;
    Scheduler* scheduler = nullptr;  // guarded by mu; null once disarmed
  };

  /// Points `basket`'s wake callback at the wake hub and remembers the
  /// basket for trace detachment in the destructor (the trace ring dies with
  /// the engine). Also wires lock-wait tracing when enabled.
  void WireBasketWake(const BasketPtr& basket);
  /// Registers `t`'s per-instance metrics (fires/tuples/fire-latency) under
  /// its name and kind. Call before the transition enters the scheduler.
  void BindTransitionMetrics(Transition& t) const;
  /// Pull-side refresh backing MetricsSnapshot().
  void RefreshPulledMetrics() const;

  EngineOptions options_;
  Catalog catalog_;
  std::unique_ptr<Clock> owned_clock_;
  Clock* clock_;
  SimulatedClock* sim_clock_ = nullptr;
  Scheduler scheduler_;
  /// Shared by all factories' ExecContexts; null when kernel_threads == 0.
  std::unique_ptr<ThreadPool> kernel_pool_;
  /// All wake callbacks route through this hub; disarmed in the destructor.
  std::shared_ptr<WakeHub> wake_hub_;
  /// Engine-created baskets (stream bases, private replicas, outputs): kept
  /// for per-basket metrics and for trace detachment in the destructor.
  std::vector<BasketPtr> wired_baskets_;
  /// Buffer recycler shared by every engine-created basket, factory and
  /// emitter: drained/emitted BAT buffers return here instead of the
  /// allocator. Declared before the transition owners so it outlives them.
  std::unique_ptr<BatchPool> batch_pool_;
  std::map<std::string, StreamInfo> streams_;  // key: lower-cased name
  std::vector<QueryInfo> queries_;
  std::vector<std::unique_ptr<Channel>> owned_channels_;
  std::vector<std::shared_ptr<Receptor>> receptors_;
  /// Self-observation transition (adapters/monitor.h); null when
  /// monitor_tick_us == 0.
  std::shared_ptr<MonitorReceptor> monitor_;
  /// Default profiling state for factories (mirrors EngineOptions, mutated
  /// by SetProfiling).
  bool profile_queries_ = false;
  // Factored common-subplan groups: "(stream)|(predicate)" -> group basket.
  std::map<std::string, BasketPtr> subplan_groups_;
  std::vector<std::shared_ptr<SharedFilterTransition>> shared_filters_;
  // Atomic: receptors and application threads ingest concurrently.
  std::atomic<int64_t> tuples_ingested_{0};
  // Observability. The registry is mutable because snapshots refresh the
  // pull-side gauges; all cells are atomic, so const readers are safe.
  mutable MetricsRegistry metrics_;
  std::unique_ptr<TraceRing> trace_;
};

}  // namespace datacell

#endif  // DATACELL_CORE_ENGINE_H_
