#ifndef DATACELL_CORE_STATE_ORACLE_H_
#define DATACELL_CORE_STATE_ORACLE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "core/engine.h"

namespace datacell {

/// Dynamic cross-check of the pass-4 static analyzer (the "oracle" the
/// analyzer's soundness claim is tested against): drive a registered query
/// with synthetic input, measure the factory's cross-firing state high-water
/// mark, and assert measured <= the registration-time static bound. The
/// fuzzer runs this as contract 3; analysis_test runs it over every bound
/// class, including a deliberately-unsound override the check must reject.

/// Outcome of one oracle run.
struct StateBoundCheck {
  /// measured_bytes <= bound, or the bound is non-numeric (unbounded /
  /// symbolic verdicts make no byte claim, so the check is vacuously sound).
  bool sound = true;
  /// The factory's state high-water mark after the drive (bytes).
  size_t measured_bytes = 0;
  /// The numeric static bound compared against (-1 when non-numeric).
  int64_t bound_bytes = -1;
  /// Human-readable verdict line, e.g. "measured 1824 B <= bound 3200 B".
  std::string detail;
};

struct StateOracleOptions {
  /// Total synthetic rows ingested per input stream.
  size_t rows = 256;
  /// Rows per Ingest batch; the engine drains between batches so windows
  /// advance and per-firing state churns.
  size_t batch = 32;
  /// Test hook: compare against this bound instead of the query's static
  /// report (the deliberately-unsound path — a too-small override must come
  /// back sound == false).
  std::optional<int64_t> override_bound_bytes;
};

/// Drives query `id` of `engine` with deterministic synthetic rows on every
/// input stream, draining between batches, then compares the factory's
/// measured state high-water mark with the query's static bound. The engine
/// must not be running its threaded scheduler (the oracle calls Drain()).
/// Ingested rows land in the query's input streams — use a scratch engine.
Result<StateBoundCheck> CheckStateBound(Engine& engine, QueryId id,
                                        StateOracleOptions options = {});

}  // namespace datacell

#endif  // DATACELL_CORE_STATE_ORACLE_H_
