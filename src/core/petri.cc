#include "core/petri.h"

#include "common/check.h"

namespace datacell {

PetriNet::PlaceId PetriNet::AddPlace(std::string name, int64_t initial_tokens) {
  DC_CHECK_GE(initial_tokens, 0);
  places_.push_back(Place{std::move(name), initial_tokens});
  return places_.size() - 1;
}

Result<PetriNet::TransitionId> PetriNet::AddTransition(std::string name,
                                                       std::vector<Arc> inputs,
                                                       std::vector<Arc> outputs) {
  // §2.4: each transition has at least one input and at least one output.
  if (inputs.empty() || outputs.empty()) {
    return Status::InvalidArgument(
        "a transition needs at least one input and one output place");
  }
  for (const Arc& a : inputs) {
    if (a.place >= places_.size() || a.weight <= 0) {
      return Status::InvalidArgument("bad input arc");
    }
  }
  for (const Arc& a : outputs) {
    if (a.place >= places_.size() || a.weight <= 0) {
      return Status::InvalidArgument("bad output arc");
    }
  }
  transitions_.push_back(
      Transition{std::move(name), std::move(inputs), std::move(outputs)});
  return transitions_.size() - 1;
}

bool PetriNet::Enabled(TransitionId t) const {
  DC_CHECK_LT(t, transitions_.size());
  for (const Arc& a : transitions_[t].inputs) {
    if (places_[a.place].tokens < a.weight) return false;
  }
  return true;
}

std::vector<PetriNet::TransitionId> PetriNet::EnabledTransitions() const {
  std::vector<TransitionId> out;
  for (TransitionId t = 0; t < transitions_.size(); ++t) {
    if (Enabled(t)) out.push_back(t);
  }
  return out;
}

Status PetriNet::Fire(TransitionId t) {
  if (t >= transitions_.size()) {
    return Status::InvalidArgument("unknown transition");
  }
  if (!Enabled(t)) {
    return Status::FailedPrecondition("transition '" + transitions_[t].name +
                                      "' is not enabled");
  }
  for (const Arc& a : transitions_[t].inputs) {
    places_[a.place].tokens -= a.weight;
  }
  for (const Arc& a : transitions_[t].outputs) {
    places_[a.place].tokens += a.weight;
  }
  return Status::OK();
}

int64_t PetriNet::RunToQuiescence(int64_t max_firings) {
  int64_t fired = 0;
  bool progress = true;
  while (progress && fired < max_firings) {
    progress = false;
    for (TransitionId t = 0; t < transitions_.size() && fired < max_firings;
         ++t) {
      if (Enabled(t)) {
        DC_CHECK_OK(Fire(t));
        ++fired;
        progress = true;
      }
    }
  }
  return fired;
}

int64_t PetriNet::TotalTokens() const {
  int64_t sum = 0;
  for (const Place& p : places_) sum += p.tokens;
  return sum;
}

std::vector<PetriNet::TransitionId> PetriNet::DeadTransitions() const {
  std::vector<bool> has_producer(places_.size(), false);
  for (const Transition& t : transitions_) {
    for (const Arc& a : t.outputs) has_producer[a.place] = true;
  }
  std::vector<TransitionId> dead;
  for (TransitionId t = 0; t < transitions_.size(); ++t) {
    for (const Arc& a : transitions_[t].inputs) {
      if (!has_producer[a.place] && places_[a.place].tokens < a.weight) {
        dead.push_back(t);
        break;
      }
    }
  }
  return dead;
}

void PetriNet::Inject(PlaceId p, int64_t n) {
  DC_CHECK_LT(p, places_.size());
  DC_CHECK_GE(n, 0);
  places_[p].tokens += n;
}

}  // namespace datacell
