#ifndef DATACELL_CORE_WINDOW_H_
#define DATACELL_CORE_WINDOW_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "common/clock.h"
#include "sql/planner.h"

namespace datacell {

/// How a windowed continuous query is evaluated (§3.1).
enum class WindowMode {
  /// Incremental when the plan shape allows it, else re-evaluation.
  kAuto,
  /// Process each complete window from scratch — always applicable.
  kReEvaluation,
  /// Basic-window model (Zhu & Shasha): the window is split into
  /// slide-sized sub-windows whose per-group aggregate summaries are
  /// maintained once and merged per emission. Only aggregate-shaped plans
  /// over one input with slide dividing size qualify.
  kIncremental,
};

/// Executes the windowed portion of a continuous query. The owning factory
/// drains new tuples from its input basket and hands them to `Advance()`,
/// which evaluates every window that completes and returns the concatenated
/// results (empty table when no window completed).
///
/// Windows are realised purely by scheduling and plan re-binding over the
/// unchanged relational kernel — the paper's constraint of not adding
/// special window operators.
class WindowExecutor {
 public:
  virtual ~WindowExecutor() = default;

  virtual Result<TablePtr> Advance(const Table& new_tuples) = 0;

  /// Tuples currently buffered awaiting window completion.
  virtual size_t buffered() const = 0;

  /// "reeval" or "incremental" (for introspection and EXPERIMENTS.md).
  virtual const char* mode_name() const = 0;

  /// Builds an executor for `query` (which must be windowed and have exactly
  /// one stream input). `static_bindings` supplies non-stream relations the
  /// plan joins against. kAuto picks incremental when the plan qualifies.
  static Result<std::unique_ptr<WindowExecutor>> Create(
      const sql::CompiledQuery& query, WindowMode mode,
      PlanBindings static_bindings);
};

namespace internal_window {

/// Decomposition of an aggregate-shaped plan used by the incremental
/// executor:   root --(Project/Filter)*--> Aggregate --(...)*--> Scan.
struct AggregateDecomposition {
  PlanPtr below_aggregate;  // Aggregate's child subtree (runs per chunk)
  const PlanNode* aggregate = nullptr;
  PlanPtr above_aggregate;  // rebuilt chain with Scan("__aggout") at leaf
  std::vector<size_t> group_columns;
  std::vector<AggSpec> aggregates;
  Schema aggregate_schema;
};

/// Attempts the decomposition; NotSupported-style error when the plan does
/// not match the incremental pattern.
Result<AggregateDecomposition> DecomposeAggregatePlan(const PlanPtr& root);

/// Name the rebuilt above-aggregate chain binds its input to.
inline constexpr const char* kAggOutBinding = "__aggout";

}  // namespace internal_window

}  // namespace datacell

#endif  // DATACELL_CORE_WINDOW_H_
