#include "core/state_oracle.h"

#include <set>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "core/basket.h"
#include "storage/types.h"

namespace datacell {

namespace {

/// Deterministic synthetic value for row `r`, column type `t`. When the
/// column carries a declared cardinality hint, values cycle through exactly
/// that many distinct keys — the hint is a contract on the data, so the
/// oracle's worst case is "every declared key live", not "hint violated".
/// Unhinted columns get all-distinct values (the true worst case).
Value SyntheticValue(DataType t, size_t r,
                     std::optional<int64_t> cardinality) {
  int64_t v = static_cast<int64_t>(r);
  if (cardinality.has_value() && *cardinality > 0) v %= *cardinality;
  switch (t) {
    case DataType::kBool:
      return Value::Bool(v % 2 == 0);
    case DataType::kInt64:
      return Value::Int64(v);
    case DataType::kDouble:
      return Value::Double(static_cast<double>(v) * 0.5);
    case DataType::kString: {
      std::string s(1, 'k');
      s += std::to_string(v);
      return Value::String(std::move(s));
    }
    case DataType::kTimestamp:
      return Value::TimestampVal(v);
  }
  return Value::Null();
}

}  // namespace

Result<StateBoundCheck> CheckStateBound(Engine& engine, QueryId id,
                                        StateOracleOptions options) {
  DC_ASSIGN_OR_RETURN(const Engine::QueryInfo* info, engine.GetQuery(id));
  if (info->removed || info->factory == nullptr) {
    return Status::FailedPrecondition("query was removed");
  }
  if (options.batch == 0) options.batch = 1;

  // Distinct input streams with their user-facing schemas (the basket
  // schema minus the implicit trailing ts column the engine stamps).
  struct Input {
    std::string stream;
    Schema user_schema;
    std::map<size_t, int64_t> cardinality;
  };
  std::vector<Input> synth_inputs;
  std::set<std::string> seen;
  analysis::CardinalityMap hints = engine.DeclaredCardinalities();
  for (const sql::ContinuousInput& in : info->factory->query().inputs) {
    std::string key = ToLower(in.basket);
    if (!seen.insert(key).second) continue;
    Input input;
    input.stream = in.basket;
    const Schema& bs = in.basket_schema;
    size_t n = bs.num_fields();
    if (Basket::HasTsColumn(bs) && n > 0) --n;
    for (size_t i = 0; i < n; ++i) input.user_schema.AddField(bs.field(i));
    auto hit = hints.find(key);
    if (hit != hints.end()) input.cardinality = hit->second;
    synth_inputs.push_back(std::move(input));
  }

  // Drive: batches interleaved with drains, so windows advance and the
  // factory's accounting sees the churn, not just the final buffer.
  for (size_t done = 0; done < options.rows; done += options.batch) {
    size_t count = std::min(options.batch, options.rows - done);
    for (const Input& input : synth_inputs) {
      std::vector<Row> rows;
      rows.reserve(count);
      for (size_t r = done; r < done + count; ++r) {
        Row row;
        row.reserve(input.user_schema.num_fields());
        for (size_t c = 0; c < input.user_schema.num_fields(); ++c) {
          std::optional<int64_t> card;
          auto it = input.cardinality.find(c);
          if (it != input.cardinality.end()) card = it->second;
          row.push_back(
              SyntheticValue(input.user_schema.field(c).type, r, card));
        }
        rows.push_back(std::move(row));
      }
      DC_RETURN_NOT_OK(engine.IngestBatch(input.stream, rows));
    }
    engine.Drain();
  }
  engine.Drain();

  StateBoundCheck check;
  check.measured_bytes = info->factory->state_bytes_high_water();
  if (options.override_bound_bytes.has_value()) {
    check.bound_bytes = *options.override_bound_bytes;
  } else if (info->state != nullptr && info->state->total.numeric()) {
    check.bound_bytes = info->state->total.bytes;
  }
  if (check.bound_bytes < 0) {
    check.sound = true;
    check.detail = "no numeric bound to violate (measured " +
                   std::to_string(check.measured_bytes) + " B; vacuous)";
  } else {
    check.sound =
        check.measured_bytes <= static_cast<size_t>(check.bound_bytes);
    check.detail = "measured " + std::to_string(check.measured_bytes) +
                   " B " + (check.sound ? "<=" : "EXCEEDS") + " bound " +
                   std::to_string(check.bound_bytes) + " B";
  }
  return check;
}

}  // namespace datacell
