#ifndef DATACELL_CORE_EMITTER_H_
#define DATACELL_CORE_EMITTER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "adapters/sink.h"
#include "common/clock.h"
#include "core/basket.h"
#include "core/transition.h"

namespace datacell {

class BatchPool;

/// Delivery adapter (§2.1): picks up result tuples prepared by factories in
/// an output basket and delivers them to every subscribed client sink.
///
/// The emitter is a registered shared reader of its basket, so an output
/// basket can simultaneously feed downstream factories (a network of queries
/// where one query's output is another's input, §4) — tuples are trimmed
/// only once every reader has seen them.
class Emitter : public Transition {
 public:
  Emitter(std::string name, BasketPtr input, const Clock* clock);

  bool Ready() const override;
  /// Result tuples awaiting delivery.
  int64_t Backlog() const override {
    return static_cast<int64_t>(input_->UnseenCount(reader_id_));
  }

  /// Reads the tuples past this emitter's watermark and delivers the batch
  /// (including the result ts column) to all sinks.
  Result<int64_t> Fire() override;

  void AddSink(std::shared_ptr<ResultSink> sink);
  size_t num_sinks() const;

  /// Observes per-tuple delivery latency into `hist`: for every delivered
  /// tuple, `delivery time - output basket ts`. When the query projects the
  /// stream's arrival ts through (Engine's output_carries_ts), that is the
  /// paper's per-tuple response time — ingest to emitter, end to end; for
  /// stamped outputs it measures result-production to delivery. Bind before
  /// the emitter enters the scheduler.
  void SetLatencyHistogram(Histogram* hist) { latency_hist_ = hist; }

  /// Drained tables this emitter holds exclusively are recycled here after
  /// delivery, closing the buffer loop with the basket's next drain. Bind
  /// before the emitter enters the scheduler.
  void SetBatchPool(BatchPool* pool) { pool_ = pool; }

  /// Retires this emitter's watermark (see Factory::DetachReaders).
  void DetachReader() {
    input_->UnregisterReader(reader_id_);
    input_->TrimConsumed();
  }

  const BasketPtr& input() const { return input_; }

 private:
  BasketPtr input_;
  const Clock* clock_;
  size_t reader_id_;
  Histogram* latency_hist_ = nullptr;  // bound at wiring time; may stay null
  BatchPool* pool_ = nullptr;          // bound at wiring time; may stay null
  mutable std::mutex sinks_mu_;
  std::vector<std::shared_ptr<ResultSink>> sinks_;
};

}  // namespace datacell

#endif  // DATACELL_CORE_EMITTER_H_
