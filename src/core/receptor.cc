#include "core/receptor.h"

#include "adapters/csv.h"
#include "common/check.h"
#include "common/logging.h"

namespace datacell {

const char* TransitionKindToString(TransitionKind k) {
  switch (k) {
    case TransitionKind::kReceptor:
      return "receptor";
    case TransitionKind::kFactory:
      return "factory";
    case TransitionKind::kEmitter:
      return "emitter";
  }
  return "?";
}

Receptor::Receptor(std::string name, Channel* channel, Schema user_schema,
                   DeliverFn deliver, const Clock* clock, size_t max_batch)
    : Transition(std::move(name), TransitionKind::kReceptor),
      channel_(channel),
      user_schema_(std::move(user_schema)),
      deliver_(std::move(deliver)),
      clock_(clock),
      max_batch_(max_batch) {
  DC_CHECK(channel_ != nullptr);
  DC_CHECK(clock_ != nullptr);
  DC_CHECK(deliver_ != nullptr);
}

bool Receptor::Ready() const { return !channel_->empty(); }

Result<int64_t> Receptor::Fire() {
  Timestamp start = clock_->Now();
  std::vector<std::string> lines = channel_->DrainUpTo(max_batch_);
  if (lines.empty()) return 0;
  std::vector<Row> rows;
  rows.reserve(lines.size());
  for (const std::string& line : lines) {
    Result<Row> parsed = ParseCsvRow(line, user_schema_);
    if (!parsed.ok()) {
      malformed_.fetch_add(1, std::memory_order_relaxed);
      DC_LOG(Warning) << name() << ": dropping malformed tuple: "
                      << parsed.status().ToString();
      continue;
    }
    rows.push_back(std::move(*parsed));
  }
  DC_RETURN_NOT_OK(deliver_(rows, clock_->Now()));
  int64_t n = static_cast<int64_t>(rows.size());
  RecordRun(n, clock_->Now() - start);
  return n;
}

}  // namespace datacell
