#include "core/receptor.h"

#include "adapters/csv.h"
#include "common/check.h"
#include "common/logging.h"

namespace datacell {

const char* TransitionKindToString(TransitionKind k) {
  switch (k) {
    case TransitionKind::kReceptor:
      return "receptor";
    case TransitionKind::kFactory:
      return "factory";
    case TransitionKind::kEmitter:
      return "emitter";
  }
  return "?";
}

Receptor::Receptor(std::string name, Channel* channel, Schema user_schema,
                   DeliverFn deliver, const Clock* clock, size_t max_batch)
    : Transition(std::move(name), TransitionKind::kReceptor),
      channel_(channel),
      user_schema_(std::move(user_schema)),
      deliver_(std::move(deliver)),
      clock_(clock),
      max_batch_(max_batch) {
  DC_CHECK(channel_ != nullptr);
  DC_CHECK(clock_ != nullptr);
  DC_CHECK(deliver_ != nullptr);
}

Receptor::Receptor(std::string name, Channel* channel, Schema user_schema,
                   DeliverColumnsFn deliver, const Clock* clock,
                   size_t max_batch)
    : Transition(std::move(name), TransitionKind::kReceptor),
      channel_(channel),
      user_schema_(std::move(user_schema)),
      deliver_columns_(std::move(deliver)),
      clock_(clock),
      max_batch_(max_batch),
      batch_(user_schema_) {
  DC_CHECK(channel_ != nullptr);
  DC_CHECK(clock_ != nullptr);
  DC_CHECK(deliver_columns_ != nullptr);
}

bool Receptor::Ready() const { return !channel_->empty(); }

Result<int64_t> Receptor::Fire() {
  Timestamp start = clock_->Now();
  return deliver_columns_ != nullptr ? FireColumns(start) : FireRows(start);
}

Result<int64_t> Receptor::FireRows(Timestamp start) {
  std::vector<std::string> lines = channel_->DrainUpTo(max_batch_);
  if (lines.empty()) return 0;
  std::vector<Row> rows;
  rows.reserve(lines.size());
  for (const std::string& line : lines) {
    Result<Row> parsed = ParseCsvRow(line, user_schema_);
    if (!parsed.ok()) {
      malformed_.fetch_add(1, std::memory_order_relaxed);
      DC_LOG(Warning) << name() << ": dropping malformed tuple: "
                      << parsed.status().ToString();
      continue;
    }
    rows.push_back(std::move(*parsed));
  }
  DC_RETURN_NOT_OK(deliver_(rows, clock_->Now()));
  int64_t n = static_cast<int64_t>(rows.size());
  RecordRun(n, clock_->Now() - start);
  return n;
}

Result<int64_t> Receptor::FireColumns(Timestamp start) {
  if (channel_->DrainInto(&lines_, max_batch_) == 0) return 0;
  // The batch normally comes back from delivery empty; after a delivery
  // failure it may not, so clear defensively (capacity is kept either way).
  batch_.Clear();
  for (const std::string& line : lines_) {
    Status st = AppendCsvToColumns(line, &batch_);
    if (!st.ok()) {
      malformed_.fetch_add(1, std::memory_order_relaxed);
      DC_LOG(Warning) << name()
                      << ": dropping malformed tuple: " << st.ToString();
    }
  }
  int64_t n = static_cast<int64_t>(batch_.num_rows());
  DC_RETURN_NOT_OK(deliver_columns_(std::move(batch_)));
  RecordRun(n, clock_->Now() - start);
  return n;
}

}  // namespace datacell
