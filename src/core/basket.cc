#include "core/basket.h"

#include "common/check.h"
#include "common/string_util.h"
#include "storage/batch_pool.h"

namespace datacell {

Basket::Basket(TablePtr table) : table_(std::move(table)) {
  DC_CHECK(table_ != nullptr);
  DC_CHECK(HasTsColumn(table_->schema()));
  const Schema& full = table_->schema();
  std::vector<Field> user_fields(full.fields().begin(),
                                 full.fields().end() - 1);
  user_schema_ = Schema(std::move(user_fields));
}

void Basket::SetBatchPool(BatchPool* pool) {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  pool_ = pool;
}

bool Basket::HasTsColumn(const Schema& schema) {
  if (schema.num_fields() == 0) return false;
  const Field& last = schema.field(schema.num_fields() - 1);
  return EqualsIgnoreCase(last.name, kTsColumnName) &&
         last.type == DataType::kTimestamp;
}

TablePtr Basket::MakeBasketTable(const std::string& name,
                                 const Schema& user_schema) {
  Schema full = user_schema;
  full.AddField(Field{kTsColumnName, DataType::kTimestamp});
  return std::make_shared<Table>(name, full);
}

void Basket::SetWakeCallback(std::function<void()> cb) {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  wake_cb_ = std::move(cb);
}

std::unique_lock<std::mutex> Basket::LockTracked() const {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (lock.owns_lock()) return lock;
  Timestamp t0 = trace_clock_->Now();
  lock.lock();
  Timestamp waited = trace_clock_->Now() - t0;
  // The ring's mutex is a leaf lock (TraceRing never calls back out), so
  // recording under mu_ cannot deadlock.
  trace_ring_->RecordComplete("basket", name(), t0, waited, "lock_wait_us",
                              waited);
  return lock;
}

void Basket::NotifyAppend() {
  std::function<void()> cb;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DC_LOCK_ORDER(&mu_, "basket", name());
    cb = wake_cb_;
  }
  if (cb) cb();
}

void Basket::ClampWatermarksLocked() {
  // Interior removal (DrainMatching on a basket that also has registered
  // readers) shrinks the oid range without advancing hseqbase; a watermark
  // past the new end would make the next ReadNewFor compute an out-of-range
  // slice. Clamp it back: the drained tuples are gone, so the reader has by
  // definition seen everything that remains below its old mark.
  Oid end = table_->hseqbase() + table_->num_rows();
  for (auto& [id, mark] : watermarks_) {
    if (mark > end) mark = end;
  }
}

#if DATACELL_DEBUG_CHECKS_ENABLED
void Basket::CheckInvariantsLocked() const {
  // Petri-net flow conservation for this place: every tuple that ever
  // entered is either still buffered, consumed by a factory/emitter, or
  // shed by the capacity bound. Nothing is lost, nothing counted twice.
  DC_DCHECK_EQ(total_appended_,
               total_consumed_ + total_shed_ +
                   static_cast<int64_t>(table_->num_rows()));
  // Shared-basket reader accounting: a watermark never points past the end
  // of the stream prefix present in the basket.
  Oid end = table_->hseqbase() + table_->num_rows();
  for (const auto& [id, mark] : watermarks_) {
    (void)id;
    DC_DCHECK_LE(mark, end);
  }
  // Derived counters are consistent with the current content.
  DC_DCHECK_GE(total_appended_, 0);
  DC_DCHECK_GE(total_consumed_, 0);
  DC_DCHECK_GE(total_shed_, 0);
  DC_DCHECK_GE(size_high_water_, table_->num_rows());
}

void Basket::TestOnlyCorruptAccounting(int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  total_appended_ += delta;
  CheckInvariantsLocked();
}

void Basket::TestOnlyCorruptWatermark(size_t reader_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = watermarks_.find(reader_id);
  DC_CHECK(it != watermarks_.end());
  it->second = table_->hseqbase() + table_->num_rows() + 1;
  CheckInvariantsLocked();
}
#endif  // DATACELL_DEBUG_CHECKS_ENABLED

Status Basket::Append(const Row& values, Timestamp ts) {
  Row full = values;
  full.push_back(Value::TimestampVal(ts));
  {
    std::unique_lock<std::mutex> lock = LockTraced();
    DC_LOCK_ORDER(&mu_, "basket", name());
    DC_RETURN_NOT_OK(table_->AppendRow(full));
    ++total_appended_;
    ShedLocked(1);
    NoteOccupancyLocked();
    CheckInvariantsLocked();
  }
  NotifyAppend();
  return Status::OK();
}

Status Basket::AppendBatch(const std::vector<Row>& rows, Timestamp ts) {
  if (rows.empty()) return Status::OK();
  // Compatibility shim over the columnar path: validate once per batch (a
  // cheap boolean test per value — the detailed Status is built only on the
  // failure path) and transpose outside the basket lock.
  size_t user_cols = user_schema_.num_fields();
  for (const Row& r : rows) {
    if (r.size() != user_cols) {
      return Status::InvalidArgument(
          "tuple arity " + std::to_string(r.size()) + " does not match stream '" +
          name() + "' arity " + std::to_string(user_cols));
    }
    for (size_t c = 0; c < user_cols; ++c) {
      if (!ValueMatchesType(r[c], user_schema_.field(c).type)) {
        Status st = CheckValueType(r[c], user_schema_.field(c).type);
        return Status::TypeError("column '" + user_schema_.field(c).name +
                                 "': " + st.message());
      }
    }
  }
  ColumnBatch batch(user_schema_);
  for (const Row& r : rows) batch.AppendRowUnchecked(r);
  return AppendColumns(std::move(batch), ts);
}

Status Basket::AppendColumns(ColumnBatch&& batch, Timestamp ts) {
  if (batch.num_rows() == 0) return Status::OK();
  DC_RETURN_NOT_OK(AppendColumnsLocked(&batch, ts, /*steal=*/true));
  NotifyAppend();
  return Status::OK();
}

Status Basket::AppendColumnsCopy(const ColumnBatch& batch, Timestamp ts) {
  if (batch.num_rows() == 0) return Status::OK();
  // steal=false never mutates the batch; the const_cast only unifies the
  // locked implementation.
  DC_RETURN_NOT_OK(AppendColumnsLocked(const_cast<ColumnBatch*>(&batch), ts,
                                       /*steal=*/false));
  NotifyAppend();
  return Status::OK();
}

Status Basket::AppendColumnsLocked(ColumnBatch* batch, Timestamp ts,
                                   bool steal) {
  std::unique_lock<std::mutex> lock = LockTraced();
  DC_LOCK_ORDER(&mu_, "basket", name());
  size_t user_cols = table_->num_columns() - 1;
  if (batch->num_columns() != user_cols) {
    return Status::InvalidArgument(
        "column batch arity " + std::to_string(batch->num_columns()) +
        " does not match stream '" + name() + "' arity " +
        std::to_string(user_cols));
  }
  for (size_t c = 0; c < user_cols; ++c) {
    if (batch->column(c).type() != table_->column(c)->type()) {
      return Status::TypeError(
          "column '" + table_->schema().field(c).name + "': batch column is " +
          DataTypeToString(batch->column(c).type()) + ", stream column is " +
          DataTypeToString(table_->column(c)->type()));
    }
  }
  size_t n = batch->num_rows();
  for (size_t c = 0; c < user_cols; ++c) {
    DC_DCHECK_EQ(batch->column(c).size(), n);
    if (steal) {
      table_->column(c)->TakeContentFrom(batch->column(c));
    } else {
      table_->column(c)->AppendBat(batch->column(c));
    }
  }
  table_->column(user_cols)->AppendConstantInt64(ts, n);
  total_appended_ += static_cast<int64_t>(n);
  ShedLocked(n);
  NoteOccupancyLocked();
  CheckInvariantsLocked();
  return Status::OK();
}

Status Basket::AppendWithTs(const Table& rows_with_ts) {
  {
    std::unique_lock<std::mutex> lock = LockTraced();
    DC_LOCK_ORDER(&mu_, "basket", name());
    DC_RETURN_NOT_OK(table_->AppendTable(rows_with_ts));
    total_appended_ += static_cast<int64_t>(rows_with_ts.num_rows());
    ShedLocked(rows_with_ts.num_rows());
    NoteOccupancyLocked();
    CheckInvariantsLocked();
  }
  if (rows_with_ts.num_rows() > 0) NotifyAppend();
  return Status::OK();
}

Status Basket::CheckStampedLocked(const Table& rows) const {
  size_t n_cols = table_->num_columns();
  if (rows.num_columns() != n_cols - 1) {
    return Status::InvalidArgument(
        "stamped append arity mismatch: got " +
        std::to_string(rows.num_columns()) + " columns, basket '" + name() +
        "' holds " + std::to_string(n_cols - 1) + " (plus ts)");
  }
  for (size_t c = 0; c + 1 < n_cols; ++c) {
    if (table_->column(c)->type() != rows.column(c)->type()) {
      return Status::TypeError("stamped append type mismatch at column " +
                               std::to_string(c));
    }
  }
  return Status::OK();
}

Status Basket::AppendStamped(const Table& rows, Timestamp ts) {
  {
    std::unique_lock<std::mutex> lock = LockTraced();
    DC_LOCK_ORDER(&mu_, "basket", name());
    DC_RETURN_NOT_OK(CheckStampedLocked(rows));
    size_t n_cols = table_->num_columns();
    for (size_t c = 0; c + 1 < n_cols; ++c) {
      table_->column(c)->AppendBat(*rows.column(c));
    }
    table_->column(n_cols - 1)->AppendConstantInt64(ts, rows.num_rows());
    total_appended_ += static_cast<int64_t>(rows.num_rows());
    ShedLocked(rows.num_rows());
    NoteOccupancyLocked();
    CheckInvariantsLocked();
  }
  if (rows.num_rows() > 0) NotifyAppend();
  return Status::OK();
}

Status Basket::AppendStampedMove(Table&& rows, Timestamp ts) {
  size_t n = rows.num_rows();
  {
    std::unique_lock<std::mutex> lock = LockTraced();
    DC_LOCK_ORDER(&mu_, "basket", name());
    DC_RETURN_NOT_OK(CheckStampedLocked(rows));
    size_t n_cols = table_->num_columns();
    for (size_t c = 0; c + 1 < n_cols; ++c) {
      table_->column(c)->TakeContentFrom(*rows.column(c));
    }
    table_->column(n_cols - 1)->AppendConstantInt64(ts, n);
    total_appended_ += static_cast<int64_t>(n);
    ShedLocked(n);
    NoteOccupancyLocked();
    CheckInvariantsLocked();
  }
  if (n > 0) NotifyAppend();
  return Status::OK();
}

Status Basket::AppendWithTsMove(Table&& rows_with_ts) {
  size_t n = rows_with_ts.num_rows();
  {
    std::unique_lock<std::mutex> lock = LockTraced();
    DC_LOCK_ORDER(&mu_, "basket", name());
    if (rows_with_ts.num_columns() != table_->num_columns()) {
      return Status::InvalidArgument("appending table with different arity");
    }
    for (size_t c = 0; c < table_->num_columns(); ++c) {
      if (table_->column(c)->type() != rows_with_ts.column(c)->type()) {
        return Status::TypeError("column type mismatch in AppendTable");
      }
    }
    for (size_t c = 0; c < table_->num_columns(); ++c) {
      table_->column(c)->TakeContentFrom(*rows_with_ts.column(c));
    }
    total_appended_ += static_cast<int64_t>(n);
    ShedLocked(n);
    NoteOccupancyLocked();
    CheckInvariantsLocked();
  }
  if (n > 0) NotifyAppend();
  return Status::OK();
}

void Basket::SetCapacity(size_t max_tuples, DropPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  capacity_ = max_tuples;
  drop_policy_ = policy;
  ShedLocked(0);
  CheckInvariantsLocked();
}

size_t Basket::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  return capacity_;
}

int64_t Basket::total_shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  return total_shed_;
}

void Basket::ShedLocked(size_t appended) {
  if (capacity_ == 0) return;
  size_t n = table_->num_rows();
  if (n <= capacity_) return;
  size_t excess = n - capacity_;
  if (drop_policy_ == DropPolicy::kDropOldest) {
    table_->RemovePrefix(excess);
  } else {
    // Refuse the most recent arrivals, but never more than this call added.
    size_t drop_new = std::min(excess, appended);
    if (drop_new > 0) {
      std::vector<size_t> suffix;
      suffix.reserve(drop_new);
      for (size_t i = n - drop_new; i < n; ++i) suffix.push_back(i);
      table_->RemovePositions(suffix);
      ClampWatermarksLocked();
    }
    // A shrunken capacity can leave old excess behind; shed it oldest-first.
    size_t still = table_->num_rows() > capacity_
                       ? table_->num_rows() - capacity_
                       : 0;
    if (still > 0) table_->RemovePrefix(still);
  }
  total_shed_ += static_cast<int64_t>(excess);
}

TablePtr Basket::AcquireDrainTableLocked() const {
  // The pool is a leaf lock under the basket monitor (class "batch_pool");
  // it never calls back into baskets, so nesting it here is safe.
  if (pool_ != nullptr) return pool_->AcquireTable(name(), table_->schema());
  return std::make_shared<Table>(name(), table_->schema());
}

TablePtr Basket::DrainAll() {
  std::unique_lock<std::mutex> lock = LockTraced();
  DC_LOCK_ORDER(&mu_, "basket", name());
  // Steal, don't copy: a drain removes everything regardless of readers, so
  // swapping the buffers out is observably identical to clone-and-clear
  // (hseqbase advances the same way; watermarks stay <= end).
  TablePtr out = AcquireDrainTableLocked();
  table_->MoveContentInto(*out);
  total_consumed_ += static_cast<int64_t>(out->num_rows());
  CheckInvariantsLocked();
  return out;
}

void Basket::DrainAllInto(Table* out) {
  DC_CHECK(out != nullptr);
  DC_CHECK(out->empty());
  std::unique_lock<std::mutex> lock = LockTraced();
  DC_LOCK_ORDER(&mu_, "basket", name());
  table_->MoveContentInto(*out);
  total_consumed_ += static_cast<int64_t>(out->num_rows());
  CheckInvariantsLocked();
}

TablePtr Basket::DrainPositionsLocked(const std::vector<size_t>& positions) {
  TablePtr out = TablePtr(table_->Take(positions));
  table_->RemovePositions(positions);
  total_consumed_ += static_cast<int64_t>(positions.size());
  ClampWatermarksLocked();
  CheckInvariantsLocked();
  return out;
}

Result<TablePtr> Basket::DrainMatching(const Expr& predicate) {
  std::unique_lock<std::mutex> lock = LockTraced();
  DC_LOCK_ORDER(&mu_, "basket", name());
  DC_ASSIGN_OR_RETURN(std::vector<size_t> positions,
                      EvaluatePredicate(predicate, *table_));
  return DrainPositionsLocked(positions);
}

Result<TablePtr> Basket::DrainSplit(const Expr& predicate, Basket* passthrough) {
  DC_CHECK(passthrough != nullptr);
  TablePtr matching;
  TablePtr rest;
  {
    std::unique_lock<std::mutex> lock = LockTraced();
    DC_LOCK_ORDER(&mu_, "basket", name());
    DC_ASSIGN_OR_RETURN(std::vector<size_t> positions,
                        EvaluatePredicate(predicate, *table_));
    matching = TablePtr(table_->Take(positions));
    std::vector<size_t> complement =
        ComplementPositions(positions, table_->num_rows());
    rest = TablePtr(table_->Take(complement));
    total_consumed_ += static_cast<int64_t>(table_->num_rows());
    table_->Clear();
    CheckInvariantsLocked();
  }
  // Append outside our own lock: passthrough has its own mutex, and locking
  // two baskets at once invites deadlock (the lock-order checker enforces
  // that two "basket"-class locks are never held together).
  DC_RETURN_NOT_OK(passthrough->AppendWithTs(*rest));
  return matching;
}

size_t Basket::RegisterReader() {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  size_t id = next_reader_++;
  watermarks_[id] = table_->hseqbase() + table_->num_rows();
  return id;
}

void Basket::UnregisterReader(size_t reader_id) {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  watermarks_.erase(reader_id);
}

size_t Basket::num_readers() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  return watermarks_.size();
}

TablePtr Basket::ReadNewFor(size_t reader_id) {
  std::unique_lock<std::mutex> lock = LockTraced();
  DC_LOCK_ORDER(&mu_, "basket", name());
  auto it = watermarks_.find(reader_id);
  DC_CHECK(it != watermarks_.end());
  Oid base = table_->hseqbase();
  Oid end = base + table_->num_rows();
  Oid from = std::max(it->second, base);
  TablePtr out = TablePtr(table_->Slice(static_cast<size_t>(from - base),
                                        static_cast<size_t>(end - from)));
  it->second = end;
  CheckInvariantsLocked();
  return out;
}

Result<TablePtr> Basket::ReadNewMatching(size_t reader_id,
                                         const Expr& predicate) {
  std::unique_lock<std::mutex> lock = LockTraced();
  DC_LOCK_ORDER(&mu_, "basket", name());
  auto it = watermarks_.find(reader_id);
  DC_CHECK(it != watermarks_.end());
  Oid base = table_->hseqbase();
  Oid end = base + table_->num_rows();
  Oid from = std::max(it->second, base);
  it->second = end;
  DC_ASSIGN_OR_RETURN(std::vector<size_t> positions,
                      EvaluatePredicate(predicate, *table_));
  // Keep only positions past the watermark.
  size_t first = static_cast<size_t>(from - base);
  std::vector<size_t> unseen;
  unseen.reserve(positions.size());
  for (size_t p : positions) {
    if (p >= first) unseen.push_back(p);
  }
  CheckInvariantsLocked();
  return TablePtr(table_->Take(unseen));
}

TablePtr Basket::DrainNewFor(size_t reader_id) {
  std::unique_lock<std::mutex> lock = LockTraced();
  DC_LOCK_ORDER(&mu_, "basket", name());
  auto it = watermarks_.find(reader_id);
  DC_CHECK(it != watermarks_.end());
  Oid base = table_->hseqbase();
  Oid end = base + table_->num_rows();
  Oid from = std::max(it->second, base);
  if (watermarks_.size() == 1 && from <= base) {
    // Single-reader fast path: this reader has seen nothing still buffered
    // and nobody else is registered, so everything present is both unseen
    // and immediately trimmable — steal the buffers whole.
    TablePtr out = AcquireDrainTableLocked();
    table_->MoveContentInto(*out);
    it->second = end;
    total_consumed_ += static_cast<int64_t>(out->num_rows());
    CheckInvariantsLocked();
    return out;
  }
  // General path: the fused equivalent of ReadNewFor + TrimConsumed — one
  // lock acquisition, one snapshot of the unseen slice, then drop whatever
  // prefix every reader (including this one, post-advance) has consumed.
  TablePtr out = TablePtr(table_->Slice(static_cast<size_t>(from - base),
                                        static_cast<size_t>(end - from)));
  it->second = end;
  Oid min_mark = watermarks_.begin()->second;
  for (const auto& [id, mark] : watermarks_) {
    if (mark < min_mark) min_mark = mark;
  }
  if (min_mark > base) {
    size_t n =
        std::min(static_cast<size_t>(min_mark - base), table_->num_rows());
    table_->RemovePrefix(n);
    total_consumed_ += static_cast<int64_t>(n);
  }
  CheckInvariantsLocked();
  return out;
}

size_t Basket::TrimConsumed() {
  std::unique_lock<std::mutex> lock = LockTraced();
  DC_LOCK_ORDER(&mu_, "basket", name());
  if (watermarks_.empty()) return 0;
  Oid min_mark = watermarks_.begin()->second;
  for (const auto& [id, mark] : watermarks_) {
    if (mark < min_mark) min_mark = mark;
  }
  Oid base = table_->hseqbase();
  if (min_mark <= base) return 0;
  size_t n = std::min(static_cast<size_t>(min_mark - base), table_->num_rows());
  table_->RemovePrefix(n);
  total_consumed_ += static_cast<int64_t>(n);
  CheckInvariantsLocked();
  return n;
}

TablePtr Basket::PeekSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  return TablePtr(table_->Clone());
}

size_t Basket::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  return table_->num_rows();
}

size_t Basket::UnseenCount(size_t reader_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  auto it = watermarks_.find(reader_id);
  DC_CHECK(it != watermarks_.end());
  Oid end = table_->hseqbase() + table_->num_rows();
  return it->second >= end ? 0 : static_cast<size_t>(end - it->second);
}

std::optional<Timestamp> Basket::OldestTs() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  if (table_->num_rows() == 0) return std::nullopt;
  const Bat& ts = *table_->column(table_->num_columns() - 1);
  Timestamp best = ts.Int64At(0);
  for (size_t i = 1; i < ts.size(); ++i) {
    best = std::min(best, ts.Int64At(i));
  }
  return best;
}

std::optional<Timestamp> Basket::NewestTs() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  if (table_->num_rows() == 0) return std::nullopt;
  const Bat& ts = *table_->column(table_->num_columns() - 1);
  Timestamp best = ts.Int64At(0);
  for (size_t i = 1; i < ts.size(); ++i) {
    best = std::max(best, ts.Int64At(i));
  }
  return best;
}

int64_t Basket::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  return total_appended_;
}

int64_t Basket::total_consumed() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  return total_consumed_;
}

size_t Basket::memory_usage() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  return table_->MemoryUsage();
}

size_t Basket::size_high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "basket", name());
  return size_high_water_;
}

}  // namespace datacell
