#ifndef DATACELL_CORE_SHARD_H_
#define DATACELL_CORE_SHARD_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"

namespace datacell {

/// Options for the sharded multi-engine executor.
struct ShardedEngineOptions {
  /// Number of internal engine shards (>= 1).
  size_t num_shards = 2;
  /// Template applied to every shard's engine; `shard_index` is overridden
  /// per shard. Each shard gets its own Petri net, baskets, scheduler and
  /// kernel pool from this template.
  EngineOptions engine;
};

/// Sticky per-stream ingest route, resolved from the partition-safety
/// constraints of the queries consuming the stream (see ShardedEngine).
enum class RouteKind {
  kRoundRobin,  // any disjoint split works; rows rotate across shards
  kHash,        // hash-split on a key column (common/hash.h row hash)
  kBroadcast,   // every shard receives every row
  kSingle,      // the whole stream lands on one home shard
};

const char* RouteKindName(RouteKind k);

/// Frontend transition recombining the per-shard partials of one
/// needs-final-merge query: drains the `<query>__partials` union basket,
/// binds the (ts-stripped) rows under analysis::kPartialsBinding, executes
/// the analyzer-synthesized merge plan (re-aggregation incl. avg = sum/count
/// re-division, or the re-sort equivalent of a k-way ts-ordered merge), and
/// delivers the merged rows to the subscribed sinks.
///
/// Merge granularity is per scheduler round: everything drained in one fire
/// merges together. Under the deterministic protocol (ingest, then Drain —
/// shard nets run to quiescence before the frontend scheduler) one round
/// holds every shard's partial for the ingested batch, reproducing
/// single-engine output exactly. In threaded mode rounds are approximate:
/// a fire may merge a subset of shards' partials, yielding more (finer)
/// result rows whose re-merge is the single-engine result.
class MergeEmitter final : public Transition {
 public:
  /// `merge_arity` is the partial plan's output arity — the prefix of the
  /// union basket's columns the merge plan scans (the basket appends its
  /// implicit ts column after them unless the partials already carry ts).
  MergeEmitter(std::string name, BasketPtr partials, PlanPtr merge_plan,
               size_t merge_arity, const Clock* clock);

  bool Ready() const override { return !partials_->empty(); }
  int64_t Backlog() const override {
    return static_cast<int64_t>(partials_->size());
  }
  Result<int64_t> Fire() override;

  void AddSink(std::shared_ptr<ResultSink> sink);
  size_t num_sinks() const;
  const BasketPtr& partials() const { return partials_; }

 private:
  BasketPtr partials_;
  PlanPtr merge_plan_;
  size_t merge_arity_;
  const Clock* clock_;
  /// Stamps a production ts onto merged rows that lack one, so sinks see
  /// the same row shape a per-shard emitter would deliver.
  std::unique_ptr<Basket> stamp_;
  mutable std::mutex sinks_mu_;
  std::vector<std::shared_ptr<ResultSink>> sinks_;
};

/// N independent DataCell engines behind one SQL/catalog frontend — the
/// fan-out executor for the pass-3 partition recipes (ROADMAP item 1,
/// AsterixDB-style partitioned intake).
///
/// DDL fans out to every shard, so all shard catalogs stay identical and
/// static tables are replicated (satisfying `broadcast_relations` verdicts).
/// Stream ingest goes through the ShardRouter half of this class: each
/// stream carries a sticky RouteKind resolved from its consumers' shard-key
/// constraints — hash-split batches are gathered column-wise with the
/// zero-copy Bat::AppendPositions path into per-shard scratch batches whose
/// buffers recycle through the shard baskets' swap protocol.
///
/// Continuous queries place per their partition verdict:
///   - partitionable / needs-broadcast: the query runs on every shard and
///     sinks receive the concatenation of per-shard results;
///   - needs-final-merge: each shard runs the synthesized partial plan
///     (installed via Engine::SubmitCompiledQuery); a frontend MergeEmitter
///     recombines the partials per the merge plan;
///   - pinned: the query runs whole on one home shard, and its input
///     streams route kSingle there (a single shard is a valid disjoint
///     split, so coexisting split consumers stay correct).
/// Conflicting constraints (e.g. a broadcast consumer joining a stream that
/// existing consumers hash-split) reject the NEW query with
/// FailedPrecondition; earlier placements are never disturbed.
class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedEngineOptions options = {});
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // --- SQL entry points ---------------------------------------------------
  /// DDL fans out to every shard; INSERT into streams routes through the
  /// router; one-time SELECTs gather (baskets bind the concatenated
  /// per-shard snapshots). Continuous SELECTs are rejected here.
  Result<TablePtr> ExecuteSql(const std::string& sql);
  /// ';'-separated statements through ExecuteSql; stops at the first error.
  Result<TablePtr> ExecuteScript(const std::string& script);

  /// Classifies `sql` with the partition analyzer and places it across the
  /// shards per the verdict (see class comment). The returned id is a
  /// frontend id — use it with Subscribe/GetPlacement.
  Result<QueryId> SubmitContinuousQuery(const std::string& name,
                                        const std::string& sql,
                                        QueryOptions options = {});
  /// Attaches `sink` to query `id`'s egress: the frontend MergeEmitter for
  /// merged queries, every placed shard's emitter otherwise (sinks are
  /// thread-safe by contract, so fan-in is safe).
  Status Subscribe(QueryId id, std::shared_ptr<ResultSink> sink);

  // --- stream management ---------------------------------------------------
  /// Creates the stream on every shard and registers its route
  /// (kHash when `partition_key` is non-empty, kRoundRobin until a consumer
  /// constrains it otherwise).
  Status CreateStream(const std::string& name, const Schema& user_schema,
                      const std::string& partition_key = "");

  /// Router ingest: splits/replicates per the stream's route. The columnar
  /// path gathers with zero-copy AppendPositions into recycled scratch
  /// batches; `batch` comes back empty with capacity retained.
  Status Ingest(const std::string& name, const Row& values);
  Status IngestBatch(const std::string& name, const std::vector<Row>& rows);
  Status IngestColumns(const std::string& name, ColumnBatch&& batch);

  // --- execution control ----------------------------------------------------
  /// Deterministic quiescence: alternates full shard drains with frontend
  /// merge sweeps until a whole round fires nothing (cascaded query
  /// networks settle across rounds). Returns total firings.
  int64_t Drain(int64_t max_rounds = 64);
  /// Starts every shard's threaded scheduler (`threads_per_shard` workers
  /// each — the pinned per-shard worker groups) plus one frontend worker
  /// driving the merge emitters.
  Status Start(size_t threads_per_shard = 1);
  void Stop();

  // --- introspection ---------------------------------------------------------
  size_t num_shards() const { return shards_.size(); }
  Engine& shard(size_t i) { return *shards_[i]; }
  const Engine& shard(size_t i) const { return *shards_[i]; }

  struct QueryPlacement {
    std::string name;
    analysis::PartitionVerdict verdict = analysis::PartitionVerdict::kPinned;
    /// Human-readable placement, e.g. "all 4 shards (concat)",
    /// "shard 2 (pinned: <reason>)".
    std::string placement;
    int home_shard = -1;  // >= 0 for pinned placements
    bool merged = false;  // frontend merge stage installed
    std::shared_ptr<const analysis::PartitionReport> report;
    /// (shard index, shard-local query id) for every installed instance.
    std::vector<std::pair<size_t, QueryId>> shard_queries;
  };
  Result<const QueryPlacement*> GetPlacement(QueryId id) const;
  size_t num_queries() const { return placements_.size(); }

  struct StreamRoute {
    RouteKind kind = RouteKind::kRoundRobin;
    size_t key_column = 0;   // kHash
    std::string key_name;    // kHash
    int home_shard = -1;     // kSingle
  };
  Result<StreamRoute> GetRoute(const std::string& stream) const;

  /// Frontend registry: datacell_shard_routed_tuples_total{shard=i},
  /// datacell_shard_broadcast_tuples_total, merge-emitter transition
  /// metrics. Per-shard engine metrics live in each shard's own registry.
  MetricsRegistry& metrics() const { return metrics_; }
  int64_t routed_tuples() const;
  int64_t broadcast_tuples() const;

  /// The `\shards` report: per-shard net sizes, firings and occupancy,
  /// stream routes, and per-query placements.
  std::string ShardsReport() const;

 private:
  struct RouteState {
    StreamRoute route;
    Schema user_schema;
    /// Consumer constraint book-keeping (drives conflict detection).
    int split_consumers = 0;
    int hash_consumers = 0;
    int broadcast_consumers = 0;
    int whole_consumers = 0;
    /// Route came from a declared PARTITION BY (upgradeable to kSingle by a
    /// pinned consumer while hash_consumers == 0).
    bool declared_only = false;
    // Columnar split scratch, recycled via the basket swap protocol.
    std::vector<ColumnBatch> scratch;            // one per shard
    std::vector<std::vector<size_t>> positions;  // one per shard
    uint64_t rr_cursor = 0;
  };

  /// What a query instance produced an output stream looks like to
  /// downstream consumers (rows appear per-shard, bypassing the router).
  struct InternalStream {
    bool on_all_shards = false;
    int home_shard = -1;  // pinned producer
    bool merged = false;  // egress merged at the frontend; not consumable
  };

  /// One routing requirement a query places on an input stream.
  enum class Need { kSplit, kHash, kBroadcast, kWhole };
  struct Constraint {
    std::string stream;  // lower-cased
    Need need = Need::kSplit;
    size_t hash_column = 0;
    std::string hash_name;
  };

  /// Copyable projection of a RouteState used for two-phase constraint
  /// resolution: all of a query's constraints are checked and accumulated
  /// against claims first, and only a fully consistent set is written back —
  /// a rejected query never disturbs existing routes.
  struct RouteClaim {
    StreamRoute route;
    int split_consumers = 0;
    int hash_consumers = 0;
    int broadcast_consumers = 0;
    int whole_consumers = 0;
  };

  RouteState* FindRoute(const std::string& name);
  const RouteState* FindRoute(const std::string& name) const;
  /// Checks `c` against a claim's current route without mutating it;
  /// returns the route the stream would take. `home` is the placement's
  /// home shard (kWhole needs).
  Result<StreamRoute> CheckConstraint(const RouteClaim& claim,
                                      const Constraint& c, int home) const;
  /// Applies a checked constraint (route change + consumer counts).
  static void CommitConstraint(RouteClaim& claim, const Constraint& c,
                               const StreamRoute& new_route);

  Status RegisterRoute(const std::string& name, const Schema& user_schema,
                       const std::string& partition_key);
  Status RouteRows(RouteState& r, const std::string& name,
                   const std::vector<Row>& rows);

  Result<TablePtr> ExecuteGatherSelect(const sql::SelectStmt& stmt);
  Status ExecuteInsertRouted(const std::string& sql,
                             const sql::InsertStmt& stmt);
  Status FanOut(const std::string& sql);

  Counter* RoutedCounter(size_t shard);

  /// Wake indirection for union baskets (mirrors Engine::WakeHub): the
  /// forwarding sinks live in shard emitters, which must never reach a dead
  /// frontend scheduler.
  struct WakeHub {
    void Notify();
    void Disarm();
    std::mutex mu;
    Scheduler* scheduler = nullptr;
  };

  ShardedEngineOptions options_;
  /// Serialises the routing state (routes_, internal_, the per-stream
  /// scratch) across concurrent producers and query registration. Shard
  /// ingest happens under it too — per-shard parallelism comes from the
  /// shard schedulers, not from racing producers through the router.
  mutable std::mutex routes_mu_;
  std::vector<std::unique_ptr<Engine>> shards_;
  /// Frontend scheduler: runs only the merge emitters.
  Scheduler scheduler_;
  std::shared_ptr<WakeHub> wake_hub_;
  std::map<std::string, RouteState> routes_;          // lower-cased stream
  std::map<std::string, InternalStream> internal_;    // lower-cased stream
  std::vector<QueryPlacement> placements_;
  std::vector<std::shared_ptr<MergeEmitter>> merge_emitters_;  // by QueryId
  std::vector<BasketPtr> union_baskets_;
  size_t next_pinned_shard_ = 0;
  mutable MetricsRegistry metrics_;
  std::vector<Counter*> routed_counters_;  // one per shard
  Counter* broadcast_counter_ = nullptr;
};

}  // namespace datacell

#endif  // DATACELL_CORE_SHARD_H_
