#include "core/emitter.h"

#include "common/check.h"
#include "storage/batch_pool.h"

namespace datacell {

Emitter::Emitter(std::string name, BasketPtr input, const Clock* clock)
    : Transition(std::move(name), TransitionKind::kEmitter),
      input_(std::move(input)),
      clock_(clock) {
  DC_CHECK(input_ != nullptr);
  DC_CHECK(clock_ != nullptr);
  reader_id_ = input_->RegisterReader();
}

bool Emitter::Ready() const { return input_->UnseenCount(reader_id_) > 0; }

Result<int64_t> Emitter::Fire() {
  Timestamp start = clock_->Now();
  // Stealing drain: when this emitter is the only reader the basket swaps
  // its buffers into the drained table instead of copying (and fuses the
  // trim); with other readers it falls back to slice-and-trim.
  TablePtr batch = input_->DrainNewFor(reader_id_);
  if (batch->num_rows() == 0) return 0;
  Timestamp now = clock_->Now();
  if (latency_hist_ != nullptr) {
    // Per-tuple response time: delivery minus the output basket's ts column
    // (the stream arrival time when the query carries ts through).
    const Bat& ts_col = *batch->column(batch->num_columns() - 1);
    for (size_t i = 0; i < ts_col.size(); ++i) {
      latency_hist_->Observe(now - ts_col.Int64At(i));
    }
  }
  {
    std::lock_guard<std::mutex> lock(sinks_mu_);
    for (const auto& sink : sinks_) {
      sink->OnBatch(*batch, now);
    }
  }
  int64_t n = static_cast<int64_t>(batch->num_rows());
  // Sinks receive the batch by const ref and must not retain it; if nothing
  // else holds the table, hand its buffers back to the pool so the basket's
  // next drain reuses them.
  if (pool_ != nullptr && batch.use_count() == 1) {
    pool_->Recycle(*batch);
  }
  RecordRun(n, clock_->Now() - start);
  return n;
}

void Emitter::AddSink(std::shared_ptr<ResultSink> sink) {
  DC_CHECK(sink != nullptr);
  std::lock_guard<std::mutex> lock(sinks_mu_);
  sinks_.push_back(std::move(sink));
}

size_t Emitter::num_sinks() const {
  std::lock_guard<std::mutex> lock(sinks_mu_);
  return sinks_.size();
}

}  // namespace datacell
