#ifndef DATACELL_CORE_SHARED_FILTER_H_
#define DATACELL_CORE_SHARED_FILTER_H_

#include <memory>
#include <string>

#include "common/clock.h"
#include "core/basket.h"
#include "core/transition.h"

namespace datacell {

/// An auxiliary factory (§3.2): when several continuous queries contain the
/// same basket expression — same stream, same predicate — the engine factors
/// the common selection into one shared transition. It reads the stream
/// basket once (as a shared reader), applies the predicate once, and places
/// the qualifying tuples (original timestamps preserved) into a group basket
/// that all dependent query factories read. This is the paper's "shared
/// factories that give output to more than one query's factories".
class SharedFilterTransition final : public Transition {
 public:
  /// `predicate` may be null (common consume-all expressions: the shared
  /// transition then only de-duplicates the read). `output` must have the
  /// same schema as `input`.
  SharedFilterTransition(std::string name, BasketPtr input, ExprPtr predicate,
                         BasketPtr output, const Clock* clock);

  bool Ready() const override;
  Result<int64_t> Fire() override;

  const BasketPtr& input() const { return input_; }
  const BasketPtr& output() const { return output_; }
  const ExprPtr& predicate() const { return predicate_; }

 private:
  BasketPtr input_;
  ExprPtr predicate_;
  BasketPtr output_;
  const Clock* clock_;
  size_t reader_id_;
};

}  // namespace datacell

#endif  // DATACELL_CORE_SHARED_FILTER_H_
