#include "core/shard.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "sql/parser.h"

namespace datacell {

namespace {

/// Evaluates a constant INSERT expression (literals, optionally negated).
/// Mirrors the engine's insert path; the router must materialise the rows
/// itself to know where they go.
Result<Value> EvalConstInsert(const sql::AstExpr& e) {
  using sql::AstExprKind;
  using sql::AstUnaryOp;
  if (e.kind == AstExprKind::kLiteral) return e.literal;
  if (e.kind == AstExprKind::kUnary && e.unary_op == AstUnaryOp::kNeg) {
    DC_ASSIGN_OR_RETURN(Value v, EvalConstInsert(*e.children[0]));
    if (v.is_int64()) return Value::Int64(-v.int64_value());
    if (v.is_double()) return Value::Double(-v.double_value());
    return Status::TypeError("cannot negate non-numeric literal");
  }
  return Status::InvalidArgument(
      "INSERT values must be literals: " + e.ToString());
}

/// Splits a script into statements on top-level ';', preserving the original
/// text of each (unlike sql::ParseScript, which keeps only the parse trees —
/// the frontend fans the raw text out to every shard).
std::vector<std::string> SplitStatements(const std::string& script) {
  std::vector<std::string> out;
  std::string cur;
  bool in_string = false;
  bool in_comment = false;
  for (size_t i = 0; i < script.size(); ++i) {
    char ch = script[i];
    if (in_comment) {
      if (ch == '\n') in_comment = false;
      cur += ch;
      continue;
    }
    if (in_string) {
      if (ch == '\'') in_string = false;
      cur += ch;
      continue;
    }
    if (ch == '\'') {
      in_string = true;
    } else if (ch == '-' && i + 1 < script.size() && script[i + 1] == '-') {
      in_comment = true;
    } else if (ch == ';') {
      out.push_back(cur);
      cur.clear();
      continue;
    }
    cur += ch;
  }
  out.push_back(cur);
  return out;
}

bool IsBlank(const std::string& s) {
  for (char ch : s) {
    if (!std::isspace(static_cast<unsigned char>(ch))) return false;
  }
  return true;
}

/// Shard-side egress of a merged query: appends every emitted partial batch
/// into the frontend union basket. Emitters call OnBatch from shard worker
/// threads; the basket's monitor serialises the appends.
class ForwardingSink final : public ResultSink {
 public:
  explicit ForwardingSink(BasketPtr target) : target_(std::move(target)) {}

  void OnBatch(const Table& batch, Timestamp) override {
    // Emitted batches carry the partial plan's full row (including its ts
    // column when it has one), which is exactly the union basket's row
    // shape: AppendWithTs re-uses the trailing column as the basket ts.
    Status st = target_->AppendWithTs(batch);
    if (!st.ok()) {
      DC_LOG(Error) << "partials forward failed: " << st.message();
    }
  }

 private:
  BasketPtr target_;
};

uint64_t HashBatCell(const Bat& col, size_t row) {
  if (col.IsNull(row)) return 0;
  switch (col.type()) {
    case DataType::kBool:
      return HashBool(col.BoolAt(row));
    case DataType::kInt64:
    case DataType::kTimestamp:
      return HashInt64(col.Int64At(row));
    case DataType::kDouble:
      return HashDouble(col.DoubleAt(row));
    case DataType::kString:
      return HashString(col.StringAt(row));
  }
  return 0;
}

}  // namespace

const char* RouteKindName(RouteKind k) {
  switch (k) {
    case RouteKind::kRoundRobin:
      return "round-robin";
    case RouteKind::kHash:
      return "hash";
    case RouteKind::kBroadcast:
      return "broadcast";
    case RouteKind::kSingle:
      return "single";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// MergeEmitter
// ---------------------------------------------------------------------------

MergeEmitter::MergeEmitter(std::string name, BasketPtr partials,
                           PlanPtr merge_plan, size_t merge_arity,
                           const Clock* clock)
    : Transition(std::move(name), TransitionKind::kEmitter),
      partials_(std::move(partials)),
      merge_plan_(std::move(merge_plan)),
      merge_arity_(merge_arity),
      clock_(clock) {
  DC_CHECK(partials_ != nullptr);
  DC_CHECK(merge_plan_ != nullptr);
  DC_CHECK(clock_ != nullptr);
  const Schema& out = merge_plan_->output_schema();
  if (!Basket::HasTsColumn(out)) {
    // Merged rows without a ts column (re-aggregation) are stamped with the
    // delivery time through a private basket, so sinks see the same row
    // shape a per-shard emitter would deliver.
    stamp_ = std::make_unique<Basket>(
        Basket::MakeBasketTable(this->name() + "__stamp", out));
  }
}

Result<int64_t> MergeEmitter::Fire() {
  Timestamp start = clock_->Now();
  TablePtr drained = partials_->DrainAll();
  if (drained == nullptr || drained->empty()) return 0;
  // The union basket appended its own ts column after the partial columns;
  // the merge plan scans the partial row shape only. Zero-copy prefix share
  // (when the partials carry their own ts it IS the whole row).
  TablePtr bound = drained->SharePrefix(analysis::kPartialsBinding,
                                        merge_arity_);
  PlanBindings bindings;
  bindings[analysis::kPartialsBinding] = std::move(bound);
  DC_ASSIGN_OR_RETURN(TablePtr merged, ExecutePlan(*merge_plan_, bindings));
  Timestamp now = clock_->Now();
  TablePtr out = std::move(merged);
  if (stamp_ != nullptr && !out->empty()) {
    DC_RETURN_NOT_OK(stamp_->AppendStampedMove(std::move(*out), now));
    out = stamp_->DrainAll();
  }
  int64_t n = static_cast<int64_t>(out->num_rows());
  if (n > 0) {
    std::lock_guard<std::mutex> lock(sinks_mu_);
    for (const auto& sink : sinks_) sink->OnBatch(*out, now);
  }
  RecordRun(n, clock_->Now() - start);
  return n;
}

void MergeEmitter::AddSink(std::shared_ptr<ResultSink> sink) {
  DC_CHECK(sink != nullptr);
  std::lock_guard<std::mutex> lock(sinks_mu_);
  sinks_.push_back(std::move(sink));
}

size_t MergeEmitter::num_sinks() const {
  std::lock_guard<std::mutex> lock(sinks_mu_);
  return sinks_.size();
}

// ---------------------------------------------------------------------------
// ShardedEngine: construction
// ---------------------------------------------------------------------------

void ShardedEngine::WakeHub::Notify() {
  std::lock_guard<std::mutex> lock(mu);
  if (scheduler != nullptr) scheduler->NotifyWork();
}

void ShardedEngine::WakeHub::Disarm() {
  std::lock_guard<std::mutex> lock(mu);
  scheduler = nullptr;
}

ShardedEngine::ShardedEngine(ShardedEngineOptions options)
    : options_(std::move(options)),
      scheduler_(options_.engine.scheduling_policy) {
  options_.num_shards = std::max<size_t>(1, options_.num_shards);
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    EngineOptions eo = options_.engine;
    eo.shard_index = static_cast<int>(i);
    shards_.push_back(std::make_unique<Engine>(eo));
  }
  scheduler_.SetIdleFallbackUs(options_.engine.idle_tick_us);
  wake_hub_ = std::make_shared<WakeHub>();
  wake_hub_->scheduler = &scheduler_;
  routed_counters_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    routed_counters_.push_back(
        metrics_.GetCounter("datacell_shard_routed_tuples_total",
                            {{"shard", std::to_string(i)}}));
  }
  broadcast_counter_ =
      metrics_.GetCounter("datacell_shard_broadcast_tuples_total");
}

ShardedEngine::~ShardedEngine() {
  Stop();
  wake_hub_->Disarm();
  // The union baskets' wake callbacks hold only the (now disarmed) hub, but
  // detach them anyway so a basket retained by a sink cannot even reach it.
  for (const auto& b : union_baskets_) b->SetWakeCallback(nullptr);
}

Counter* ShardedEngine::RoutedCounter(size_t shard) {
  return routed_counters_[shard];
}

int64_t ShardedEngine::routed_tuples() const {
  int64_t total = 0;
  for (Counter* c : routed_counters_) total += c->value();
  return total;
}

int64_t ShardedEngine::broadcast_tuples() const {
  return broadcast_counter_->value();
}

// ---------------------------------------------------------------------------
// Stream routes
// ---------------------------------------------------------------------------

ShardedEngine::RouteState* ShardedEngine::FindRoute(const std::string& name) {
  auto it = routes_.find(ToLower(name));
  return it == routes_.end() ? nullptr : &it->second;
}

const ShardedEngine::RouteState* ShardedEngine::FindRoute(
    const std::string& name) const {
  auto it = routes_.find(ToLower(name));
  return it == routes_.end() ? nullptr : &it->second;
}

Status ShardedEngine::RegisterRoute(const std::string& name,
                                    const Schema& user_schema,
                                    const std::string& partition_key) {
  std::lock_guard<std::mutex> lock(routes_mu_);
  RouteState st;
  st.user_schema = user_schema;
  st.scratch.resize(shards_.size());
  for (ColumnBatch& b : st.scratch) b.Reset(user_schema);
  st.positions.resize(shards_.size());
  if (!partition_key.empty()) {
    auto idx = user_schema.IndexOf(partition_key);
    if (!idx.has_value()) {
      return Status::NotFound("PARTITION BY column '" + partition_key +
                              "' is not a column of '" + name + "'");
    }
    st.route.kind = RouteKind::kHash;
    st.route.key_column = *idx;
    st.route.key_name = user_schema.field(*idx).name;
    st.declared_only = true;
  }
  routes_[ToLower(name)] = std::move(st);
  return Status::OK();
}

Status ShardedEngine::CreateStream(const std::string& name,
                                   const Schema& user_schema,
                                   const std::string& partition_key) {
  for (auto& shard : shards_) {
    DC_RETURN_NOT_OK(shard->CreateStream(name, user_schema).status());
    if (!partition_key.empty()) {
      DC_RETURN_NOT_OK(shard->SetStreamPartitionKey(name, partition_key));
    }
  }
  return RegisterRoute(name, user_schema, partition_key);
}

Result<ShardedEngine::StreamRoute> ShardedEngine::GetRoute(
    const std::string& stream) const {
  std::lock_guard<std::mutex> lock(routes_mu_);
  const RouteState* r = FindRoute(stream);
  if (r == nullptr) {
    return Status::NotFound("no ingest route for stream '" + stream + "'");
  }
  return r->route;
}

// ---------------------------------------------------------------------------
// Constraint lattice
// ---------------------------------------------------------------------------

Result<ShardedEngine::StreamRoute> ShardedEngine::CheckConstraint(
    const RouteClaim& claim, const Constraint& c, int home) const {
  const StreamRoute& cur = claim.route;
  StreamRoute next = cur;
  switch (c.need) {
    case Need::kSplit:
      // Any disjoint split: round-robin, hash and single all qualify;
      // broadcast would duplicate rows into the split consumer.
      if (cur.kind == RouteKind::kBroadcast) {
        return Status::FailedPrecondition(
            "stream '" + c.stream +
            "' is broadcast to every shard; a partitioned consumer would "
            "see each row " +
            std::to_string(shards_.size()) + " times");
      }
      return next;
    case Need::kHash:
      switch (cur.kind) {
        case RouteKind::kRoundRobin:
          next.kind = RouteKind::kHash;
          next.key_column = c.hash_column;
          next.key_name = c.hash_name;
          return next;
        case RouteKind::kHash:
          if (cur.key_column != c.hash_column) {
            return Status::FailedPrecondition(
                "stream '" + c.stream + "' is hash-split on '" +
                cur.key_name + "' but the query needs co-location on '" +
                c.hash_name + "'");
          }
          return next;
        case RouteKind::kSingle:
          // One shard holds every row: any key is trivially co-located.
          return next;
        case RouteKind::kBroadcast:
          return Status::FailedPrecondition(
              "stream '" + c.stream +
              "' is broadcast; hash-partitioned consumption would count "
              "each row once per shard");
      }
      break;
    case Need::kBroadcast:
      switch (cur.kind) {
        case RouteKind::kBroadcast:
          return next;
        case RouteKind::kRoundRobin:
        case RouteKind::kHash:
        case RouteKind::kSingle:
          // Upgrading to broadcast duplicates rows into every existing
          // split/hash consumer; whole-stream (pinned) consumers keep
          // seeing exactly the whole stream on their home shard.
          if (claim.split_consumers > 0 || claim.hash_consumers > 0) {
            return Status::FailedPrecondition(
                "stream '" + c.stream +
                "' already feeds partitioned consumers and cannot be "
                "broadcast");
          }
          next.kind = RouteKind::kBroadcast;
          next.home_shard = -1;
          return next;
      }
      break;
    case Need::kWhole:
      DC_CHECK(home >= 0);
      switch (cur.kind) {
        case RouteKind::kBroadcast:
          // Every shard (the home included) sees the whole stream.
          return next;
        case RouteKind::kSingle:
          if (cur.home_shard != home) {
            return Status::FailedPrecondition(
                "stream '" + c.stream + "' is pinned to shard " +
                std::to_string(cur.home_shard) +
                " but the query is placed on shard " + std::to_string(home));
          }
          return next;
        case RouteKind::kRoundRobin:
        case RouteKind::kHash:
          // A single home shard is a valid disjoint split (existing split
          // consumers stay exact) and trivially co-locates any hash key
          // (existing hash consumers' other-shard instances simply go
          // idle), so the downgrade is always sound.
          next.kind = RouteKind::kSingle;
          next.home_shard = home;
          return next;
      }
      break;
  }
  return Status::Internal("unhandled route constraint");
}

void ShardedEngine::CommitConstraint(RouteClaim& claim, const Constraint& c,
                                     const StreamRoute& new_route) {
  claim.route = new_route;
  switch (c.need) {
    case Need::kSplit:
      ++claim.split_consumers;
      break;
    case Need::kHash:
      ++claim.hash_consumers;
      break;
    case Need::kBroadcast:
      ++claim.broadcast_consumers;
      break;
    case Need::kWhole:
      ++claim.whole_consumers;
      break;
  }
}

// ---------------------------------------------------------------------------
// Ingest routing
// ---------------------------------------------------------------------------

Status ShardedEngine::Ingest(const std::string& name, const Row& values) {
  return IngestBatch(name, {values});
}

Status ShardedEngine::IngestBatch(const std::string& name,
                                  const std::vector<Row>& rows) {
  std::lock_guard<std::mutex> lock(routes_mu_);
  RouteState* r = FindRoute(name);
  if (r == nullptr) {
    return Status::NotFound("no ingest route for stream '" + name + "'");
  }
  if (rows.empty()) return Status::OK();
  return RouteRows(*r, name, rows);
}

Status ShardedEngine::RouteRows(RouteState& r, const std::string& name,
                                const std::vector<Row>& rows) {
  const size_t n = shards_.size();
  if (n == 1) {
    RoutedCounter(0)->Inc(static_cast<int64_t>(rows.size()));
    return shards_[0]->IngestBatch(name, rows);
  }
  switch (r.route.kind) {
    case RouteKind::kSingle: {
      const size_t home = static_cast<size_t>(r.route.home_shard);
      RoutedCounter(home)->Inc(static_cast<int64_t>(rows.size()));
      return shards_[home]->IngestBatch(name, rows);
    }
    case RouteKind::kBroadcast: {
      for (auto& shard : shards_) {
        DC_RETURN_NOT_OK(shard->IngestBatch(name, rows));
      }
      broadcast_counter_->Inc(static_cast<int64_t>(n * rows.size()));
      return Status::OK();
    }
    case RouteKind::kRoundRobin:
    case RouteKind::kHash: {
      std::vector<std::vector<Row>> per_shard(n);
      for (const Row& row : rows) {
        if (row.size() != r.user_schema.num_fields()) {
          return Status::InvalidArgument(
              "tuple arity " + std::to_string(row.size()) +
              " does not match stream '" + name + "' arity " +
              std::to_string(r.user_schema.num_fields()));
        }
        size_t dest;
        if (r.route.kind == RouteKind::kRoundRobin) {
          dest = static_cast<size_t>(r.rr_cursor++ % n);
        } else {
          // The oracle's placement function, byte for byte (common/hash.h).
          dest = static_cast<size_t>(HashValue(row[r.route.key_column]) % n);
        }
        per_shard[dest].push_back(row);
      }
      for (size_t s = 0; s < n; ++s) {
        if (per_shard[s].empty()) continue;
        DC_RETURN_NOT_OK(shards_[s]->IngestBatch(name, per_shard[s]));
        RoutedCounter(s)->Inc(static_cast<int64_t>(per_shard[s].size()));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled route kind");
}

Status ShardedEngine::IngestColumns(const std::string& name,
                                    ColumnBatch&& batch) {
  std::lock_guard<std::mutex> lock(routes_mu_);
  RouteState* r = FindRoute(name);
  if (r == nullptr) {
    return Status::NotFound("no ingest route for stream '" + name + "'");
  }
  const size_t rows = batch.num_rows();
  if (rows == 0) return Status::OK();
  const size_t n = shards_.size();
  if (n == 1 || r->route.kind == RouteKind::kSingle) {
    const size_t home =
        (n == 1 || r->route.kind != RouteKind::kSingle)
            ? 0
            : static_cast<size_t>(r->route.home_shard);
    RoutedCounter(home)->Inc(static_cast<int64_t>(rows));
    return shards_[home]->IngestColumns(name, std::move(batch));
  }
  if (!batch.MatchesSchema(r->user_schema)) {
    return Status::TypeError("columnar batch does not match stream '" + name +
                             "' schema");
  }
  if (r->route.kind == RouteKind::kBroadcast) {
    // Copy into the first n-1 shards' scratch batches, move the original
    // into the last — one full-batch gather per extra shard.
    std::vector<size_t>& identity = r->positions[0];
    identity.clear();
    identity.reserve(rows);
    for (size_t i = 0; i < rows; ++i) identity.push_back(i);
    for (size_t s = 0; s + 1 < n; ++s) {
      ColumnBatch& scratch = r->scratch[s];
      scratch.Clear();
      for (size_t c = 0; c < batch.num_columns(); ++c) {
        scratch.column(c).AppendPositions(batch.column(c), identity);
      }
      DC_RETURN_NOT_OK(shards_[s]->IngestColumns(name, std::move(scratch)));
    }
    DC_RETURN_NOT_OK(shards_[n - 1]->IngestColumns(name, std::move(batch)));
    broadcast_counter_->Inc(static_cast<int64_t>(n * rows));
    return Status::OK();
  }
  // Round-robin / hash: column-wise zero-copy gather into per-shard scratch
  // batches. The scratch buffers recycle through the shard baskets' swap
  // protocol (IngestColumns hands back the basket's previous empty buffers),
  // so the steady state allocates nothing.
  for (size_t s = 0; s < n; ++s) r->positions[s].clear();
  if (r->route.kind == RouteKind::kRoundRobin) {
    for (size_t i = 0; i < rows; ++i) {
      r->positions[(r->rr_cursor + i) % n].push_back(i);
    }
    r->rr_cursor += rows;
  } else {
    const Bat& key = batch.column(r->route.key_column);
    for (size_t i = 0; i < rows; ++i) {
      r->positions[HashBatCell(key, i) % n].push_back(i);
    }
  }
  for (size_t s = 0; s < n; ++s) {
    if (r->positions[s].empty()) continue;
    ColumnBatch& scratch = r->scratch[s];
    scratch.Clear();
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      scratch.column(c).AppendPositions(batch.column(c), r->positions[s]);
    }
    DC_RETURN_NOT_OK(shards_[s]->IngestColumns(name, std::move(scratch)));
    RoutedCounter(s)->Inc(static_cast<int64_t>(r->positions[s].size()));
  }
  batch.Clear();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SQL entry points
// ---------------------------------------------------------------------------

Status ShardedEngine::FanOut(const std::string& sql) {
  for (auto& shard : shards_) {
    DC_RETURN_NOT_OK(shard->ExecuteSql(sql).status());
  }
  return Status::OK();
}

Result<TablePtr> ShardedEngine::ExecuteSql(const std::string& sql) {
  DC_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  auto empty = [] { return std::make_shared<Table>("", Schema{}); };
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
      return ExecuteGatherSelect(*stmt.select);
    case sql::Statement::Kind::kCreate: {
      DC_RETURN_NOT_OK(FanOut(sql));
      if (stmt.create->is_basket) {
        Schema schema;
        for (const sql::ColumnDef& def : stmt.create->columns) {
          schema.AddField(Field{def.name, def.type});
        }
        DC_RETURN_NOT_OK(
            RegisterRoute(stmt.create->name, schema, stmt.create->partition_by));
      }
      return empty();
    }
    case sql::Statement::Kind::kInsert:
      DC_RETURN_NOT_OK(ExecuteInsertRouted(sql, *stmt.insert));
      return empty();
    case sql::Statement::Kind::kDrop: {
      DC_RETURN_NOT_OK(FanOut(sql));
      std::lock_guard<std::mutex> lock(routes_mu_);
      routes_.erase(ToLower(stmt.drop->name));
      internal_.erase(ToLower(stmt.drop->name));
      return empty();
    }
  }
  return Status::Internal("unhandled statement kind");
}

Result<TablePtr> ShardedEngine::ExecuteScript(const std::string& script) {
  TablePtr last = std::make_shared<Table>("", Schema{});
  for (const std::string& piece : SplitStatements(script)) {
    if (IsBlank(piece)) continue;
    DC_ASSIGN_OR_RETURN(last, ExecuteSql(piece));
  }
  return last;
}

Status ShardedEngine::ExecuteInsertRouted(const std::string& sql,
                                          const sql::InsertStmt& stmt) {
  Schema user;
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    RouteState* r = FindRoute(stmt.table);
    if (r == nullptr) {
      // Static tables replicate: the same INSERT lands on every shard.
      // Unrouted streams (query outputs, sys.*) cannot take frontend rows.
      bool is_stream = shards_[0]->GetBasket(stmt.table).ok();
      if (is_stream) {
        return Status::FailedPrecondition(
            "stream '" + stmt.table + "' has no frontend ingest route");
      }
      return FanOut(sql);
    }
    user = r->user_schema;
  }
  std::vector<size_t> positions;
  if (!stmt.columns.empty()) {
    for (const std::string& col : stmt.columns) {
      auto idx = user.IndexOf(col);
      if (!idx.has_value()) {
        return Status::NotFound("unknown column '" + col + "' in INSERT");
      }
      positions.push_back(*idx);
    }
  }
  std::vector<Row> rows;
  rows.reserve(stmt.rows.size());
  for (const auto& ast_row : stmt.rows) {
    size_t expected =
        stmt.columns.empty() ? user.num_fields() : stmt.columns.size();
    if (ast_row.size() != expected) {
      return Status::InvalidArgument("INSERT row arity mismatch");
    }
    Row row(user.num_fields(), Value::Null());
    for (size_t i = 0; i < ast_row.size(); ++i) {
      DC_ASSIGN_OR_RETURN(Value v, EvalConstInsert(*ast_row[i]));
      size_t pos = stmt.columns.empty() ? i : positions[i];
      row[pos] = std::move(v);
    }
    rows.push_back(std::move(row));
  }
  return IngestBatch(stmt.table, rows);
}

Result<TablePtr> ShardedEngine::ExecuteGatherSelect(
    const sql::SelectStmt& stmt) {
  sql::Planner planner(&shards_[0]->catalog());
  DC_ASSIGN_OR_RETURN(sql::CompiledQuery query, planner.CompileSelect(stmt));
  if (query.continuous) {
    return Status::InvalidArgument(
        "continuous query submitted to the one-time path; use "
        "SubmitContinuousQuery");
  }
  PlanBindings bindings;
  for (const std::string& rel : query.plan->InputRelations()) {
    DC_ASSIGN_OR_RETURN(RelationKind kind, shards_[0]->catalog().KindOf(rel));
    if (kind == RelationKind::kBasket) {
      bool is_broadcast = false;
      {
        std::lock_guard<std::mutex> lock(routes_mu_);
        const RouteState* route = FindRoute(rel);
        is_broadcast =
            route != nullptr && route->route.kind == RouteKind::kBroadcast;
      }
      if (is_broadcast) {
        // Every shard holds the whole stream; one snapshot is the truth.
        auto basket = shards_[0]->GetBasket(rel);
        if (basket.ok()) {
          bindings[rel] = (*basket)->PeekSnapshot();
          continue;
        }
      }
      // Gather semantics: the logical basket content is the union of the
      // per-shard baskets (exactly one shard holds each routed row).
      TablePtr acc;
      for (auto& shard : shards_) {
        auto basket = shard->GetBasket(rel);
        if (!basket.ok()) continue;
        TablePtr snap = (*basket)->PeekSnapshot();
        if (acc == nullptr) {
          acc = std::move(snap);
        } else {
          DC_RETURN_NOT_OK(acc->AppendTable(*snap));
        }
      }
      if (acc == nullptr) {
        DC_ASSIGN_OR_RETURN(TablePtr t, shards_[0]->catalog().Get(rel));
        acc = TablePtr(t->Clone());
      }
      bindings[rel] = std::move(acc);
    } else {
      DC_ASSIGN_OR_RETURN(bindings[rel], shards_[0]->catalog().Get(rel));
    }
  }
  return ExecutePlan(*query.plan, bindings);
}

// ---------------------------------------------------------------------------
// Continuous query placement
// ---------------------------------------------------------------------------

Result<QueryId> ShardedEngine::SubmitContinuousQuery(const std::string& name,
                                                     const std::string& sql,
                                                     QueryOptions options) {
  DC_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (stmt.kind != sql::Statement::Kind::kSelect) {
    return Status::InvalidArgument("continuous queries must be SELECTs");
  }
  // Compile against shard 0's catalog (DDL fans out, so all shard catalogs
  // are identical) purely to classify; the shards re-compile for execution.
  sql::Planner planner(&shards_[0]->catalog());
  DC_ASSIGN_OR_RETURN(sql::CompiledQuery query,
                      planner.CompileSelect(*stmt.select));
  if (!query.continuous) {
    return Status::InvalidArgument(
        "'" + name + "' is not a continuous query (no basket expression)");
  }
  query.sql_text = sql;

  auto report = std::make_shared<analysis::PartitionReport>();
  {
    analysis::AnalysisReport scratch;
    auto res = analysis::AnalyzePartitioning(
        query, shards_[0]->DeclaredPartitionKeys(), &scratch);
    if (res.ok()) {
      *report = std::move(*res);
    } else {
      report->verdict = analysis::PartitionVerdict::kPinned;
      report->pinned_reason = res.status().message();
    }
  }

  using analysis::PartitionVerdict;
  using analysis::ShardKeyKind;
  PartitionVerdict verdict = report->verdict;
  std::string pin_reason = report->pinned_reason;
  ProcessingStrategy strategy =
      options.strategy.value_or(options_.engine.default_strategy);
  if (verdict != PartitionVerdict::kPinned &&
      strategy == ProcessingStrategy::kChained) {
    verdict = PartitionVerdict::kPinned;
    pin_reason = "chained strategy couples queries through shared baskets";
  }

  // Passes A-E read and mutate the routing state; registration is
  // serialised against concurrent producers.
  std::lock_guard<std::mutex> routes_lock(routes_mu_);

  // --- pass A: realizability against routes and internal (query-produced)
  // streams. Demotions to pinned restart the scan so pinned rules apply to
  // every input; at most one restart happens (pinned is terminal).
  int home = -1;
  bool rescan = true;
  while (rescan) {
    rescan = false;
    home = -1;
    for (size_t i = 0; i < query.inputs.size(); ++i) {
      const sql::ContinuousInput& in = query.inputs[i];
      const std::string key = ToLower(in.basket);
      const analysis::ShardKey* sk =
          i < report->inputs.size() ? &report->inputs[i] : nullptr;
      InternalStream synth;
      const InternalStream* producer = nullptr;
      auto internal_it = internal_.find(key);
      if (internal_it != internal_.end()) {
        producer = &internal_it->second;
      } else if (FindRoute(key) == nullptr) {
        // Unrouted per-shard streams (sys.* telemetry): produced locally on
        // every shard, bypassing the router.
        synth.on_all_shards = true;
        producer = &synth;
      }
      if (producer == nullptr) {
        // Router-fed stream; check only that a prescribed hash key is a
        // real user column (the implicit ts column is stamped per shard
        // after routing, so it cannot place rows).
        if (verdict != PartitionVerdict::kPinned && sk != nullptr &&
            sk->kind == ShardKeyKind::kHash) {
          const RouteState* r = FindRoute(key);
          if (sk->key_column >= r->user_schema.num_fields()) {
            verdict = PartitionVerdict::kPinned;
            pin_reason = "shard key of '" + in.basket +
                         "' is the implicit ts column, which is stamped "
                         "per shard after routing";
            rescan = true;
            break;
          }
        }
        continue;
      }
      if (producer->merged) {
        return Status::FailedPrecondition(
            "stream '" + in.basket +
            "' is merged at the frontend and has no per-shard rows to "
            "consume");
      }
      if (verdict == PartitionVerdict::kPinned) {
        if (producer->on_all_shards) {
          return Status::FailedPrecondition(
              "pinned query '" + name + "' reads '" + in.basket +
              "', which is produced on every shard");
        }
        if (home >= 0 && home != producer->home_shard) {
          return Status::FailedPrecondition(
              "query '" + name + "' reads streams pinned to shards " +
              std::to_string(home) + " and " +
              std::to_string(producer->home_shard));
        }
        home = producer->home_shard;
        continue;
      }
      if (sk == nullptr) continue;
      switch (sk->kind) {
        case ShardKeyKind::kAnySplit:
          // Per-shard production is a disjoint split (all-shards producer)
          // or a single-shard split (pinned producer); both qualify.
          break;
        case ShardKeyKind::kHash:
          if (producer->on_all_shards && !sk->declared) {
            return Status::FailedPrecondition(
                "query '" + name + "' needs '" + in.basket +
                "' co-located on '" + sk->key_name +
                "', but the producing query does not carry that key "
                "through its output");
          }
          // declared => the producer preserves the inherited hash key, so
          // its per-shard output is already co-located; a pinned producer
          // co-locates trivially.
          break;
        case ShardKeyKind::kBroadcast:
          if (producer->on_all_shards) {
            return Status::FailedPrecondition(
                "query '" + name + "' needs every row of '" + in.basket +
                "' on every shard, but it is produced shard-locally");
          }
          // Pinned producer: run the whole query on its home instead.
          verdict = PartitionVerdict::kPinned;
          pin_reason = "input '" + in.basket +
                       "' must be replicated but is produced on shard " +
                       std::to_string(producer->home_shard) + " only";
          rescan = true;
          break;
      }
      if (rescan) break;
    }
  }

  // --- pass B: home selection for pinned placements.
  if (verdict == PartitionVerdict::kPinned && home < 0) {
    for (const sql::ContinuousInput& in : query.inputs) {
      const RouteState* r = FindRoute(in.basket);
      if (r != nullptr && r->route.kind == RouteKind::kSingle) {
        home = r->route.home_shard;
        break;
      }
    }
    if (home < 0) {
      home = static_cast<int>(next_pinned_shard_++ % shards_.size());
    }
  }

  // --- pass C: the routing constraints this query places on its
  // router-fed input streams.
  std::vector<Constraint> constraints;
  for (size_t i = 0; i < query.inputs.size(); ++i) {
    const std::string key = ToLower(query.inputs[i].basket);
    if (FindRoute(key) == nullptr || internal_.count(key) > 0) continue;
    Constraint c;
    c.stream = key;
    if (verdict == PartitionVerdict::kPinned) {
      c.need = Need::kWhole;
    } else {
      if (i >= report->inputs.size()) {
        return Status::Internal("partition report is missing input " +
                                std::to_string(i));
      }
      const analysis::ShardKey& sk = report->inputs[i];
      switch (sk.kind) {
        case ShardKeyKind::kHash:
          c.need = Need::kHash;
          c.hash_column = sk.key_column;
          c.hash_name = sk.key_name;
          break;
        case ShardKeyKind::kAnySplit:
          c.need = Need::kSplit;
          break;
        case ShardKeyKind::kBroadcast:
          c.need = Need::kBroadcast;
          break;
      }
    }
    constraints.push_back(std::move(c));
  }

  // --- pass D: two-phase check-then-commit, so a rejected query leaves
  // every existing route untouched.
  std::map<std::string, RouteClaim> claims;
  for (const Constraint& c : constraints) {
    auto it = claims.find(c.stream);
    if (it == claims.end()) {
      const RouteState* r = FindRoute(c.stream);
      RouteClaim claim;
      claim.route = r->route;
      claim.split_consumers = r->split_consumers;
      claim.hash_consumers = r->hash_consumers;
      claim.broadcast_consumers = r->broadcast_consumers;
      claim.whole_consumers = r->whole_consumers;
      it = claims.emplace(c.stream, std::move(claim)).first;
    }
    DC_ASSIGN_OR_RETURN(StreamRoute next,
                        CheckConstraint(it->second, c, home));
    CommitConstraint(it->second, c, next);
  }
  for (const auto& [stream, claim] : claims) {
    RouteState* r = FindRoute(stream);
    r->route = claim.route;
    r->split_consumers = claim.split_consumers;
    r->hash_consumers = claim.hash_consumers;
    r->broadcast_consumers = claim.broadcast_consumers;
    r->whole_consumers = claim.whole_consumers;
    r->declared_only = false;
  }

  // --- pass E: install per the verdict.
  QueryPlacement placement;
  placement.name = name;
  placement.verdict = verdict;
  placement.report = report;
  std::shared_ptr<MergeEmitter> merge_emitter;
  const std::string out_name = ToLower(name) + "_out";

  if (verdict == PartitionVerdict::kPinned) {
    placement.home_shard = home;
    DC_ASSIGN_OR_RETURN(
        QueryId local,
        shards_[home]->SubmitContinuousQuery(name, sql, options));
    placement.shard_queries.emplace_back(static_cast<size_t>(home), local);
    placement.placement =
        "shard " + std::to_string(home) +
        (pin_reason.empty() ? " (pinned)" : " (pinned: " + pin_reason + ")");
    // Catalog uniformity: the output stream exists (empty) on every other
    // shard so later DDL and query compiles see identical catalogs.
    auto out_basket = shards_[home]->GetBasket(out_name);
    if (out_basket.ok()) {
      const Schema& out_schema = (*out_basket)->user_schema();
      analysis::PartitionKeyMap home_keys =
          shards_[home]->DeclaredPartitionKeys();
      auto key_it = home_keys.find(out_name);
      for (size_t s = 0; s < shards_.size(); ++s) {
        if (static_cast<int>(s) == home) continue;
        DC_RETURN_NOT_OK(
            shards_[s]->CreateStream(out_name, out_schema).status());
        if (key_it != home_keys.end()) {
          DC_RETURN_NOT_OK(shards_[s]->SetStreamPartitionKey(
              out_name, out_schema.field(key_it->second).name));
        }
      }
    }
    InternalStream produced;
    produced.home_shard = home;
    internal_[out_name] = produced;
  } else if (verdict == PartitionVerdict::kNeedsFinalMerge) {
    DC_CHECK(report->partial_plan != nullptr);
    DC_CHECK(report->merge_plan != nullptr);
    const Schema partial_schema = report->partial_plan->output_schema();
    for (size_t s = 0; s < shards_.size(); ++s) {
      sql::CompiledQuery partial;
      partial.plan = report->partial_plan;
      partial.output_schema = partial_schema;
      partial.continuous = true;
      partial.inputs = query.inputs;
      partial.window = query.window;
      partial.threshold = query.threshold;
      partial.sql_text = "/* partial of " + name + " */ " + sql;
      DC_ASSIGN_OR_RETURN(QueryId local,
                          shards_[s]->SubmitCompiledQuery(
                              name + "__partial", std::move(partial), options));
      placement.shard_queries.emplace_back(s, local);
    }
    // Frontend union basket: the partial rows from every shard, merged by a
    // MergeEmitter on the frontend scheduler. When the partials carry their
    // own ts column it doubles as the basket ts; otherwise the basket
    // appends one.
    Schema union_user = partial_schema;
    if (Basket::HasTsColumn(partial_schema)) {
      Schema stripped;
      for (size_t f = 0; f + 1 < partial_schema.num_fields(); ++f) {
        stripped.AddField(partial_schema.field(f));
      }
      union_user = std::move(stripped);
    }
    auto union_basket = std::make_shared<Basket>(
        Basket::MakeBasketTable(ToLower(name) + "__partials", union_user));
    union_basket->SetWakeCallback([hub = wake_hub_] { hub->Notify(); });
    union_baskets_.push_back(union_basket);
    merge_emitter = std::make_shared<MergeEmitter>(
        "merge_" + ToLower(name), union_basket, report->merge_plan,
        partial_schema.num_fields(), &shards_[0]->clock());
    Transition::MetricsBinding binding;
    MetricLabels labels{{"transition", merge_emitter->name()},
                        {"kind", "emitter"}};
    binding.fires =
        metrics_.GetCounter("datacell_transition_fires_total", labels);
    binding.tuples =
        metrics_.GetCounter("datacell_transition_tuples_total", labels);
    binding.fire_latency_us =
        metrics_.GetHistogram("datacell_transition_fire_latency_us", labels);
    merge_emitter->BindMetrics(binding);
    for (const auto& [s, local] : placement.shard_queries) {
      DC_RETURN_NOT_OK(shards_[s]->Subscribe(
          local, std::make_shared<ForwardingSink>(union_basket)));
    }
    scheduler_.AddTransition(merge_emitter);
    placement.merged = true;
    placement.placement = "all " + std::to_string(shards_.size()) +
                          " shards (partials) + frontend merge (" +
                          analysis::MergeKindName(report->merge) + ")";
    // The merged result exists only at the frontend; per-shard catalogs
    // hold <name>__partial_out, a valid per-shard (all-shards) stream.
    InternalStream merged;
    merged.merged = true;
    internal_[out_name] = merged;
    InternalStream partial_out;
    partial_out.on_all_shards = true;
    internal_[ToLower(name) + "__partial_out"] = partial_out;
  } else {
    // Partitionable / needs-broadcast: the query runs whole on every shard
    // (broadcast inputs were routed kBroadcast above; static broadcast
    // relations are replicated by DDL fan-out).
    for (size_t s = 0; s < shards_.size(); ++s) {
      DC_ASSIGN_OR_RETURN(QueryId local,
                          shards_[s]->SubmitContinuousQuery(name, sql, options));
      placement.shard_queries.emplace_back(s, local);
    }
    placement.placement =
        "all " + std::to_string(shards_.size()) + " shards (" +
        (verdict == PartitionVerdict::kNeedsBroadcast ? "broadcast inputs, "
                                                      : "") +
        "concat)";
    InternalStream produced;
    produced.on_all_shards = true;
    internal_[out_name] = produced;
  }

  for (const auto& [s, local] : placement.shard_queries) {
    shards_[s]->SetQueryPlacement(local, placement.placement);
  }
  placements_.push_back(std::move(placement));
  merge_emitters_.push_back(std::move(merge_emitter));
  return placements_.size() - 1;
}

Status ShardedEngine::Subscribe(QueryId id, std::shared_ptr<ResultSink> sink) {
  if (id >= placements_.size()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  const QueryPlacement& placement = placements_[id];
  if (placement.merged) {
    merge_emitters_[id]->AddSink(std::move(sink));
    return Status::OK();
  }
  // Sinks are thread-safe by contract, so one sink may fan in from every
  // placed shard's emitter.
  for (const auto& [s, local] : placement.shard_queries) {
    DC_RETURN_NOT_OK(shards_[s]->Subscribe(local, sink));
  }
  return Status::OK();
}

Result<const ShardedEngine::QueryPlacement*> ShardedEngine::GetPlacement(
    QueryId id) const {
  if (id >= placements_.size()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return &placements_[id];
}

// ---------------------------------------------------------------------------
// Execution control
// ---------------------------------------------------------------------------

int64_t ShardedEngine::Drain(int64_t max_rounds) {
  int64_t total = 0;
  for (int64_t round = 0; round < max_rounds; ++round) {
    // Shards first, to quiescence, so every shard's partials for this round
    // sit in the union baskets before a merge emitter sweeps them — one
    // frontend fire then merges the complete round. Cascaded nets (queries
    // over query outputs) settle across rounds.
    int64_t fired = 0;
    for (auto& shard : shards_) fired += shard->Drain();
    fired += scheduler_.RunUntilQuiescent();
    total += fired;
    if (fired == 0) break;
  }
  return total;
}

Status ShardedEngine::Start(size_t threads_per_shard) {
  for (auto& shard : shards_) {
    DC_RETURN_NOT_OK(shard->Start(threads_per_shard));
  }
  return scheduler_.Start(1);
}

void ShardedEngine::Stop() {
  // Shards first: once their emitters stop, no new partials arrive and the
  // frontend scheduler can stop without racing appends.
  for (auto& shard : shards_) shard->Stop();
  scheduler_.Stop();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::string ShardedEngine::ShardsReport() const {
  std::string out =
      "shards: " + std::to_string(shards_.size()) + "\n";
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Engine& e = *shards_[s];
    out += "  shard " + std::to_string(s) +
           ": queries=" + std::to_string(e.num_queries()) +
           " ingested=" + std::to_string(e.tuples_ingested()) +
           " firings=" + std::to_string(
               const_cast<Engine&>(e).scheduler().total_firings()) +
           " shed=" + std::to_string(e.total_shed()) +
           " routed=" + std::to_string(routed_counters_[s]->value()) + "\n";
  }
  out += "broadcast tuples: " + std::to_string(broadcast_tuples()) + "\n";
  out += "routes:\n";
  std::lock_guard<std::mutex> lock(routes_mu_);
  for (const auto& [stream, state] : routes_) {
    out += "  " + stream + ": " + RouteKindName(state.route.kind);
    if (state.route.kind == RouteKind::kHash) {
      out += "(" + state.route.key_name + ")";
    } else if (state.route.kind == RouteKind::kSingle) {
      out += "(shard " + std::to_string(state.route.home_shard) + ")";
    }
    out += "  [consumers: split=" + std::to_string(state.split_consumers) +
           " hash=" + std::to_string(state.hash_consumers) +
           " broadcast=" + std::to_string(state.broadcast_consumers) +
           " whole=" + std::to_string(state.whole_consumers) + "]\n";
  }
  out += "queries:\n";
  for (size_t q = 0; q < placements_.size(); ++q) {
    const QueryPlacement& p = placements_[q];
    out += "  q" + std::to_string(q) + " '" + p.name + "': " +
           analysis::PartitionVerdictName(p.verdict) + " -> " + p.placement +
           "\n";
  }
  return out;
}

}  // namespace datacell
