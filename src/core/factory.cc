#include "core/factory.h"

#include <limits>

#include "analysis/plan_analyzer.h"
#include "analysis/state_analyzer.h"
#include "common/check.h"
#include "common/logging.h"
#include "storage/batch_pool.h"

namespace datacell {

const char* ProcessingStrategyToString(ProcessingStrategy s) {
  switch (s) {
    case ProcessingStrategy::kSeparateBaskets:
      return "separate";
    case ProcessingStrategy::kSharedBaskets:
      return "shared";
    case ProcessingStrategy::kChained:
      return "chained";
  }
  return "?";
}

Factory::Factory(std::string name, sql::CompiledQuery query, BasketPtr output,
                 PlanBindings static_bindings, const Clock* clock,
                 FactoryOptions options)
    : Transition(std::move(name), TransitionKind::kFactory, options.priority),
      query_(std::move(query)),
      output_(std::move(output)),
      static_bindings_(std::move(static_bindings)),
      clock_(clock),
      options_(options) {}

Result<std::shared_ptr<Factory>> Factory::Create(
    std::string name, sql::CompiledQuery query,
    std::vector<BasketPtr> input_baskets, BasketPtr output,
    PlanBindings static_bindings, const Clock* clock, FactoryOptions options) {
  if (!query.continuous) {
    return Status::InvalidArgument(
        "factories wrap continuous queries; got a one-time query");
  }
  if (input_baskets.size() != query.inputs.size()) {
    return Status::InvalidArgument("input basket count does not match plan");
  }
  if (output == nullptr || clock == nullptr) {
    return Status::InvalidArgument("factory needs an output basket and clock");
  }
  if (query.plan == nullptr) {
    return Status::InvalidArgument("factory needs a compiled plan");
  }
  // Registration-time gate: type-check the plan and every consume predicate
  // now, so ill-typed queries are rejected here instead of failing inside
  // Fire() once tuples arrive. SQL-compiled plans pass by construction; this
  // guards plans built directly through the C++ algebra API.
  {
    analysis::AnalysisReport report = analysis::AnalyzePlan(*query.plan);
    for (const sql::ContinuousInput& in : query.inputs) {
      if (in.consume_predicate != nullptr) {
        analysis::CheckPredicate(*in.consume_predicate, in.basket_schema,
                                 "consume predicate of '" + in.basket + "'",
                                 &report);
      }
    }
    DC_RETURN_NOT_OK(report.ToStatus());
  }
  // Pass-4 admission gate (opt-in): prove the query's state bound before
  // any input reader is registered, so a rejected factory leaves no state
  // behind. Catalog-less callers get no cardinality hints or static-table
  // sizes — the bound is conservative.
  if (options.max_state_bytes > 0) {
    analysis::AnalysisReport report;
    analysis::StateAnalyzerOptions sopts;
    sopts.string_bytes = options.state_string_bytes;
    DC_ASSIGN_OR_RETURN(
        analysis::StateReport state,
        analysis::AnalyzeStateBounds(query, {}, sopts, &report));
    if (state.total.kind == analysis::StateBoundKind::kUnbounded ||
        (state.total.numeric() &&
         state.total.bytes > static_cast<int64_t>(options.max_state_bytes))) {
      report.Add(analysis::DiagCode::kStateBoundExceeded,
                 analysis::Severity::kError,
                 "state bound " + state.total.ToString() +
                     " exceeds max_state_bytes = " +
                     std::to_string(options.max_state_bytes),
                 analysis::FindPlanLoc(*query.plan));
      DC_RETURN_NOT_OK(report.ToStatus());
    }
  }
  bool windowed = query.window.kind != sql::WindowSpec::Kind::kNone;
  auto factory = std::shared_ptr<Factory>(
      new Factory(std::move(name), std::move(query), std::move(output),
                  std::move(static_bindings), clock, options));
  factory->min_tuples_ = static_cast<size_t>(
      std::max<int64_t>(1, factory->query_.threshold.value_or(1)));
  for (size_t i = 0; i < input_baskets.size(); ++i) {
    InputBinding in;
    in.basket = input_baskets[i];
    if (in.basket == nullptr) {
      return Status::InvalidArgument("null input basket");
    }
    in.spec = &factory->query_.inputs[i];
    if (!(in.basket->schema() == in.spec->basket_schema)) {
      return Status::Internal("basket schema does not match compiled input '" +
                              in.spec->basket + "'");
    }
    if (options.strategy == ProcessingStrategy::kSharedBaskets) {
      in.reader_id = in.basket->RegisterReader();
    }
    factory->inputs_.push_back(std::move(in));
  }
  if (windowed) {
    DC_ASSIGN_OR_RETURN(
        factory->window_,
        WindowExecutor::Create(factory->query_, options.window_mode,
                               factory->static_bindings_));
  }
  // Registration-time specialization: the plan is fixed for the query's
  // lifetime, so compile it into a fused pipeline once instead of paying the
  // interpreter's tree walk on every firing.
  if (!options.specialize) {
    factory->specialize_fallback_ = "specialization disabled";
  } else if (windowed) {
    factory->specialize_fallback_ = "windowed query";
  } else if (factory->inputs_.size() != 1) {
    factory->specialize_fallback_ = "multiple stream inputs";
  } else {
    SpecializeResult sr =
        SpecializePlan(*factory->query_.plan, factory->inputs_[0].spec->bind_name,
                       factory->static_bindings_);
    factory->specialized_ = std::move(sr.pipeline);
    factory->specialize_fallback_ = std::move(sr.fallback_reason);
  }
  // Profile skeleton: one step per specialized stage, or one per plan node
  // for interpreter (and windowed) queries. Built here, while the plan shape
  // is already final, so toggling profiling later is a single flag flip.
  factory->profile_ = std::make_unique<PipelineProfile>();
  if (factory->specialized_ != nullptr) {
    factory->specialized_->RegisterProfileSteps(factory->profile_.get());
  } else {
    PipelineProfile::FromPlan(*factory->query_.plan, factory->profile_.get());
  }
  // Seed the state accounting: a specialized join's build index exists from
  // registration, before any tuple flows.
  factory->UpdateStateAccounting();
  return factory;
}

void Factory::UpdateStateAccounting() {
  size_t bytes = 0;
  if (window_ != nullptr && !inputs_.empty()) {
    int64_t row_bytes = inputs_[0].spec->basket_schema.EstimatedRowBytes(
        options_.state_string_bytes);
    bytes += window_->buffered() * static_cast<size_t>(row_bytes);
  }
  if (specialized_ != nullptr) {
    bytes += specialized_->JoinStateBytes(options_.state_string_bytes);
  }
  state_bytes_.store(bytes, std::memory_order_relaxed);
  size_t hw = state_high_water_.load(std::memory_order_relaxed);
  if (bytes > hw) {
    state_high_water_.store(bytes, std::memory_order_relaxed);
  }
}

std::string Factory::PipelineDescription() const {
  if (specialized_ != nullptr) return specialized_->Describe();
  return "interpreter (fallback: " + specialize_fallback_ + ")";
}

std::string Factory::ProfileReport() const {
  std::string out = "pipeline: " + PipelineDescription();
  if (window_ != nullptr) {
    // Window executors run the interpreter internally per (sub-)window; the
    // plan-node steps below cover those runs.
    out += " [windowed: " + std::string(window_->mode_name()) + "]";
  }
  out += "\n";
  out += profile_->Render();
  return out;
}

size_t Factory::AvailableOn(const InputBinding& in) const {
  if (options_.strategy == ProcessingStrategy::kSharedBaskets) {
    return in.basket->UnseenCount(in.reader_id);
  }
  return in.basket->size();
}

bool Factory::Ready() const {
  // Petri-net rule (§2.4): a transition is enabled only when *all* input
  // places hold tokens (>= the configured threshold).
  for (const InputBinding& in : inputs_) {
    if (AvailableOn(in) < min_tuples_) return false;
  }
  return true;
}

int64_t Factory::Backlog() const {
  int64_t least = std::numeric_limits<int64_t>::max();
  for (const InputBinding& in : inputs_) {
    least = std::min(least, static_cast<int64_t>(AvailableOn(in)));
  }
  return inputs_.empty() ? 0 : least;
}

Result<TablePtr> Factory::TakeSlice(InputBinding& in) {
  switch (options_.strategy) {
    case ProcessingStrategy::kSeparateBaskets:
      if (in.spec->consume_predicate != nullptr) {
        if (!options_.exclusive_private_inputs) {
          return in.basket->DrainMatching(*in.spec->consume_predicate);
        }
        // Private replica: nothing else can ever read the non-matching
        // tuples, so drain them too and keep only the matches.
        TablePtr all = in.basket->DrainAll();
        DC_ASSIGN_OR_RETURN(
            std::vector<size_t> positions,
            EvaluatePredicate(*in.spec->consume_predicate, *all));
        if (positions.size() == all->num_rows()) return all;
        return TablePtr(all->Take(positions));
      }
      return in.basket->DrainAll();
    case ProcessingStrategy::kSharedBaskets: {
      if (in.spec->consume_predicate == nullptr) {
        // Fused read+trim: with a single registered reader (the common case
        // for private per-query input baskets) this steals the buffers
        // instead of copying a slice and compacting afterwards.
        return in.basket->DrainNewFor(in.reader_id);
      }
      TablePtr slice;
      DC_ASSIGN_OR_RETURN(slice,
                          in.basket->ReadNewMatching(
                              in.reader_id, *in.spec->consume_predicate));
      in.basket->TrimConsumed();
      return slice;
    }
    case ProcessingStrategy::kChained: {
      if (in.spec->consume_predicate == nullptr) {
        // No predicate: this factory wants everything; nothing can flow on.
        return in.basket->DrainAll();
      }
      if (in.passthrough != nullptr) {
        return in.basket->DrainSplit(*in.spec->consume_predicate,
                                     in.passthrough.get());
      }
      // Tail of the chain: non-matching tuples are dropped with the drain.
      TablePtr all = in.basket->DrainAll();
      DC_ASSIGN_OR_RETURN(
          std::vector<size_t> positions,
          EvaluatePredicate(*in.spec->consume_predicate, *all));
      if (positions.size() == all->num_rows()) return all;
      return TablePtr(all->Take(positions));
    }
  }
  return Status::Internal("bad strategy");
}

Result<int64_t> Factory::Fire() {
#if DATACELL_DEBUG_CHECKS_ENABLED
  // Exactly-once transition semantics (§2.4): the scheduler's claim flag
  // guarantees at most one in-flight Fire per factory. A second concurrent
  // entry would drain the same input tokens twice.
  DC_CHECK(!in_fire_.exchange(true, std::memory_order_acq_rel));
  struct FireGuard {
    std::atomic<bool>* flag;
    ~FireGuard() { flag->store(false, std::memory_order_release); }
  } fire_guard{&in_fire_};
#endif
  if (!Ready()) return 0;
  Timestamp start = clock_->Now();
  // Profiling threads the profile through a per-fire copy of the exec
  // context; the disabled path keeps options_.exec untouched (null profile,
  // one pointer test per step inside the executors).
  const bool profiling = profiling_.load(std::memory_order_relaxed);
  ExecContext exec = options_.exec;
  if (profiling) exec.profile = profile_.get();
  int64_t fire_t0 = profiling ? ProfileNowNs() : 0;
  // Algorithm 1: read-and-consume each input basket (each TakeSlice call is
  // an atomic lock/consume/unlock bracket on its basket)...
  std::vector<TablePtr> slices;
  slices.reserve(inputs_.size());
  int64_t in_tuples = 0;
  for (InputBinding& in : inputs_) {
    DC_ASSIGN_OR_RETURN(TablePtr slice, TakeSlice(in));
#if DATACELL_DEBUG_CHECKS_ENABLED
    // Flow conservation across the arc: everything this factory has ever
    // taken from the basket must be covered by what was ever appended to it
    // (total_appended only grows, so a stale read can't false-positive).
    in.taken += static_cast<int64_t>(slice->num_rows());
    DC_DCHECK_LE(in.taken, in.basket->total_appended());
#endif
    in_tuples += static_cast<int64_t>(slice->num_rows());
    slices.push_back(std::move(slice));
  }
  // ... run the compiled plan as one bulk operation ...
  TablePtr result;
  if (window_ != nullptr) {
    Result<TablePtr> r = window_->Advance(*slices[0]);
    if (!r.ok()) {
      plan_errors_.fetch_add(1, std::memory_order_relaxed);
      return r.status();
    }
    result = *r;
  } else if (specialized_ != nullptr) {
    // Specialized fast path: no binding-map copy, no plan-tree walk — the
    // pre-compiled chain runs straight over the drained slice.
    Result<TablePtr> r = specialized_->Run(*slices[0], exec, pool_);
    if (!r.ok()) {
      plan_errors_.fetch_add(1, std::memory_order_relaxed);
      return r.status();
    }
    result = *r;
  } else {
    PlanBindings bindings = static_bindings_;
    for (size_t i = 0; i < inputs_.size(); ++i) {
      bindings[inputs_[i].spec->bind_name] = slices[i];
    }
    Result<TablePtr> r = ExecutePlan(*query_.plan, bindings, exec);
    if (!r.ok()) {
      plan_errors_.fetch_add(1, std::memory_order_relaxed);
      return r.status();
    }
    result = *r;
  }
  // ... and append the qualifying tuples to the output basket. A uniquely
  // held result (the common case: the plan built fresh columns) is moved in
  // — its buffers swap into the output basket instead of being copied. A
  // shared result (a pass-through plan returning an input slice, or a table
  // a window executor keeps alive) takes the copying path.
  int64_t out_tuples = static_cast<int64_t>(result->num_rows());
  if (out_tuples > 0) {
    if (options_.output_carries_ts) {
      // The result's own trailing ts column (original arrival times) is the
      // output basket's timestamp.
      if (result.use_count() == 1) {
        DC_RETURN_NOT_OK(output_->AppendWithTsMove(std::move(*result)));
      } else {
        DC_RETURN_NOT_OK(output_->AppendWithTs(*result));
      }
    } else if (result.use_count() == 1) {
      DC_RETURN_NOT_OK(output_->AppendStampedMove(std::move(*result),
                                                  clock_->Now()));
    } else {
      DC_RETURN_NOT_OK(output_->AppendStamped(*result, clock_->Now()));
    }
    results_emitted_.fetch_add(out_tuples, std::memory_order_relaxed);
  }
  if (pool_ != nullptr) {
    // Hand exclusively-held buffers back so the next drain reuses them.
    // Release `result` before the slices: a pass-through result aliases its
    // slice, and only once the alias is gone does the slice become unique.
    if (result.use_count() == 1) pool_->Recycle(*result);
    result.reset();
    for (TablePtr& slice : slices) {
      if (slice.use_count() == 1) pool_->Recycle(*slice);
    }
  }
  if (profiling) profile_->RecordFire(ProfileNowNs() - fire_t0);
  UpdateStateAccounting();
  RecordRun(in_tuples, clock_->Now() - start);
  return in_tuples;
}

void Factory::DetachReaders() {
  if (options_.strategy != ProcessingStrategy::kSharedBaskets) return;
  for (InputBinding& in : inputs_) {
    in.basket->UnregisterReader(in.reader_id);
    in.basket->TrimConsumed();
  }
}

std::vector<BasketPtr> Factory::input_baskets() const {
  std::vector<BasketPtr> out;
  out.reserve(inputs_.size());
  for (const InputBinding& in : inputs_) out.push_back(in.basket);
  return out;
}

std::vector<BasketPtr> Factory::passthrough_baskets() const {
  std::vector<BasketPtr> out;
  out.reserve(inputs_.size());
  for (const InputBinding& in : inputs_) out.push_back(in.passthrough);
  return out;
}

void Factory::SetPassthrough(size_t input_index, BasketPtr basket) {
  DC_CHECK_LT(input_index, inputs_.size());
  inputs_[input_index].passthrough = std::move(basket);
}

std::string Factory::ExplainPlan() const { return ExplainMal(*query_.plan); }

}  // namespace datacell
