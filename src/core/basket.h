#ifndef DATACELL_CORE_BASKET_H_
#define DATACELL_CORE_BASKET_H_

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "algebra/expression.h"
#include "algebra/operators.h"
#include "common/clock.h"
#include "common/lock_order.h"
#include "common/result.h"
#include "common/trace.h"
#include "storage/column_batch.h"
#include "storage/table.h"

namespace datacell {

class BatchPool;

/// The key data structure of the DataCell (§2.2): a portion of a stream held
/// as a temporary main-memory table. Receptors append incoming tuples;
/// factories consume them; a tuple is removed once every relevant reader has
/// seen it.
///
/// The last column of every basket is the implicit `ts` timestamp column
/// recording when each tuple entered the system.
///
/// Thread-safety: monitor-style — every public operation is atomic under the
/// internal mutex, which realises the paper's rule that "one factory,
/// receptor or emitter at a time updates a given basket". Composite
/// operations used by factories (drain-matching, read-new-and-advance) are
/// single calls, so Algorithm 1's lock/unlock bracket maps to one method.
///
/// Load shedding (§1's "possible load shedding requirements"): an optional
/// capacity bounds the basket; when producers outrun consumers, tuples are
/// shed by policy and counted, so the engine degrades predictably instead
/// of growing without bound.
class Basket {
 public:
  enum class DropPolicy {
    /// Shed the oldest buffered tuples to admit new ones (freshness wins).
    kDropOldest,
    /// Refuse the newest arrivals while full (completeness of old data wins).
    kDropNewest,
  };
  /// `table` must already carry the trailing timestamp column.
  explicit Basket(TablePtr table);

  Basket(const Basket&) = delete;
  Basket& operator=(const Basket&) = delete;

  const std::string& name() const { return table_->name(); }
  /// Full schema including the trailing `ts` column.
  const Schema& schema() const { return table_->schema(); }
  /// Stream schema as declared by the user (without the trailing ts column);
  /// the schema a ColumnBatch for this basket is built from.
  const Schema& user_schema() const { return user_schema_; }

  /// Wires the buffer recycler: drains acquire their result tables from
  /// `pool` (pre-capacitied buffers) instead of the allocator. Pass nullptr
  /// to detach. The pool is a leaf lock acquired under the basket monitor.
  void SetBatchPool(BatchPool* pool);

  // --- producer side ----------------------------------------------------
  /// Appends one stream tuple (without ts); `ts` is stamped on.
  Status Append(const Row& values, Timestamp ts);
  /// Appends many tuples with the same arrival timestamp. Compatibility shim
  /// over AppendColumns: the rows are validated once per batch and
  /// transposed into a ColumnBatch outside the basket lock.
  Status AppendBatch(const std::vector<Row>& rows, Timestamp ts);
  /// Moves a typed columnar batch in, stamping every tuple with `ts`. When
  /// the basket is empty the buffers are swapped in (zero-copy) and `batch`
  /// is left holding the basket's previous (empty, capacitied) buffers —
  /// the producer refills them next round; otherwise a bulk column append.
  Status AppendColumns(ColumnBatch&& batch, Timestamp ts);
  /// Copying variant used when one batch fans out to several baskets;
  /// `batch` is left untouched.
  Status AppendColumnsCopy(const ColumnBatch& batch, Timestamp ts);
  /// Appends rows that already carry a ts column (inter-factory flow).
  Status AppendWithTs(const Table& rows_with_ts);
  /// Zero-copy variant: steals `rows_with_ts`'s column buffers (swap when
  /// empty-destination, bulk append otherwise); the argument is left empty.
  /// Only safe when the caller exclusively owns the table and its columns.
  Status AppendWithTsMove(Table&& rows_with_ts);
  /// Bulk-appends result rows lacking a ts column, stamping all with `ts`
  /// (the factory's output path: query results enter the output basket).
  Status AppendStamped(const Table& rows, Timestamp ts);
  /// Zero-copy variant of AppendStamped; same ownership caveat as
  /// AppendWithTsMove.
  Status AppendStampedMove(Table&& rows, Timestamp ts);

  // --- exclusive-consumer side (separate-baskets strategy) ----------------
  /// Removes and returns the full content. Zero-copy: the buffers are moved
  /// out by swap (Table::MoveContentInto) — a drain removes everything
  /// regardless of readers, so stealing is observably identical to the old
  /// clone-and-clear. The result table comes from the BatchPool when wired.
  TablePtr DrainAll();
  /// DrainAll into caller-owned scratch (`out` must be empty with this
  /// basket's full schema): the no-allocation drain — the basket inherits
  /// `out`'s old buffer capacity in the swap.
  void DrainAllInto(Table* out);
  /// Removes and returns the tuples satisfying `predicate` (a basket
  /// expression's consuming read, §2.6); non-matching tuples stay.
  Result<TablePtr> DrainMatching(const Expr& predicate);
  /// Removes and returns tuples, split by `predicate`: matching tuples are
  /// returned, non-matching are appended to `passthrough` (the chained
  /// disjoint-predicate strategy of §2.5).
  Result<TablePtr> DrainSplit(const Expr& predicate, Basket* passthrough);

  // --- shared-readers side (shared-baskets strategy) ----------------------
  /// Registers a reader; its watermark starts at the current end, i.e. a new
  /// reader only sees tuples that arrive after registration.
  size_t RegisterReader();
  /// Removes a reader. Without this, a retired query's stale watermark would
  /// hold back TrimConsumed forever and the basket would grow unboundedly.
  void UnregisterReader(size_t reader_id);
  size_t num_readers() const;
  /// Returns all tuples this reader has not yet seen and advances its
  /// watermark past them. Tuples stay in the basket for other readers.
  TablePtr ReadNewFor(size_t reader_id);
  /// Like ReadNewFor, but copies only the unseen tuples satisfying
  /// `predicate` — the shared-basket evaluation of a basket expression:
  /// one selective scan, one copy of the qualifying tuples, nothing removed.
  Result<TablePtr> ReadNewMatching(size_t reader_id, const Expr& predicate);
  /// Physically removes tuples every registered reader has consumed.
  /// Returns the number of tuples removed.
  size_t TrimConsumed();
  /// Fused ReadNewFor + TrimConsumed. Single-reader fast path: when
  /// `reader_id` is the only registered reader and its watermark is at (or
  /// below) the buffered prefix, everything present is unseen-by-everyone,
  /// so the buffers are *stolen* (swap, no copy) instead of sliced; the
  /// general multi-reader path slices then trims as before.
  TablePtr DrainNewFor(size_t reader_id);

  // --- inspection (non-consuming, "outside a basket expression", §2.6) ----
  /// Snapshot of the current content.
  TablePtr PeekSnapshot() const;
  size_t size() const;
  bool empty() const { return size() == 0; }
  /// Tuples not yet seen by `reader_id`.
  size_t UnseenCount(size_t reader_id) const;
  /// Oldest ts in the basket, or nullopt when empty.
  std::optional<Timestamp> OldestTs() const;
  /// Largest ts in the basket, or nullopt when empty.
  std::optional<Timestamp> NewestTs() const;

  /// Enables load shedding: the basket holds at most `max_tuples` (0 turns
  /// shedding off). Applies to all append paths.
  void SetCapacity(size_t max_tuples, DropPolicy policy);
  size_t capacity() const;
  /// Tuples shed so far due to the capacity bound.
  int64_t total_shed() const;

  /// Installs a callback invoked (outside the basket lock) after every
  /// append that added at least one tuple. The engine wires this to
  /// Scheduler::NotifyWork, realising the Petri-net edge from token arrival
  /// to transition wakeup: an idle scheduler blocks until a basket gains
  /// tuples instead of polling. Pass nullptr to detach (the engine does, on
  /// destruction, so retained baskets never call into a dead scheduler).
  void SetWakeCallback(std::function<void()> cb);

  int64_t total_appended() const;
  int64_t total_consumed() const;
  size_t memory_usage() const;
  /// Largest occupancy (tuples) ever reached — the backlog high-water mark,
  /// exported per basket by the engine's metrics snapshot.
  size_t size_high_water() const;

  /// Enables lock-wait tracing: when a producer or consumer blocks on this
  /// basket's monitor, the wait is recorded into `ring` (category "basket",
  /// named after the basket). Wire before concurrent use; pass nullptrs to
  /// detach. Uncontended operations stay on the plain fast path.
  void SetTrace(TraceRing* ring, const Clock* clock) {
    trace_ring_ = ring;
    trace_clock_ = clock;
  }

  /// Index of the ts column (always the last).
  size_t ts_column() const { return table_->num_columns() - 1; }

  /// Builds a basket table: `name` with `user_schema` plus the trailing ts
  /// column appended.
  static TablePtr MakeBasketTable(const std::string& name,
                                  const Schema& user_schema);
  /// True when `schema`'s last column is the implicit ts column.
  static bool HasTsColumn(const Schema& schema);

  /// Name of the implicit timestamp column.
  static constexpr const char* kTsColumnName = "ts";

#if DATACELL_DEBUG_CHECKS_ENABLED
  /// Test-only (debug-check builds): skews the flow-conservation counter by
  /// `delta` and re-checks the Petri-net invariants — the deliberate
  /// violation path for the invariant abort tests.
  void TestOnlyCorruptAccounting(int64_t delta);
  /// Test-only: forces reader `reader_id`'s watermark past the basket end,
  /// violating the watermark bound invariant.
  void TestOnlyCorruptWatermark(size_t reader_id);
#endif

 private:
  /// Validates batch arity/types against the user schema (one check per
  /// column, not per value) and appends under the lock. `steal` moves the
  /// buffers; otherwise they are copied.
  Status AppendColumnsLocked(ColumnBatch* batch, Timestamp ts, bool steal);
  /// Arity/type validation shared by the stamped-append paths.
  Status CheckStampedLocked(const Table& rows) const;
  /// Fresh drain-result table: pooled buffers when a pool is wired.
  TablePtr AcquireDrainTableLocked() const;
  TablePtr DrainPositionsLocked(const std::vector<size_t>& positions);
  /// Acquires mu_, recording the wait into the trace ring when the lock was
  /// contended (tracing wired and compiled in; otherwise a plain lock).
  /// Inline so the untraced fast path compiles to exactly the lock it
  /// replaced; kTraceCompiled folds the branch away under
  /// -DDATACELL_TRACE=OFF.
  std::unique_lock<std::mutex> LockTraced() const {
    if (!kTraceCompiled || trace_ring_ == nullptr || trace_clock_ == nullptr) {
      return std::unique_lock<std::mutex>(mu_);
    }
    return LockTracked();
  }
  /// Traced slow path of LockTraced: try-lock, time the wait on contention.
  std::unique_lock<std::mutex> LockTracked() const;
  /// Call after any append (holding mu_) to advance the high-water mark.
  void NoteOccupancyLocked() {
    size_high_water_ = std::max(size_high_water_, table_->num_rows());
  }
  /// Call after interior removal (holding mu_): pulls reader watermarks back
  /// inside the shrunken oid range so the next ReadNewFor cannot compute an
  /// out-of-range slice.
  void ClampWatermarksLocked();
#if DATACELL_DEBUG_CHECKS_ENABLED
  /// DC_DCHECK tier: re-verifies the Petri-net place invariants (flow
  /// conservation appended == consumed + shed + occupancy; watermark bounds)
  /// after every mutating operation. Compiled out in release builds.
  void CheckInvariantsLocked() const;
#else
  void CheckInvariantsLocked() const {}
#endif
  /// Applies the capacity bound after appends (locked). `appended` is how
  /// many tuples the current call added (bounds kDropNewest).
  void ShedLocked(size_t appended);
  /// Invokes the wake callback (if set) without holding the basket lock —
  /// the callback takes the scheduler's wake mutex, and nesting it inside
  /// `mu_` would order the two locks.
  void NotifyAppend();

  mutable std::mutex mu_;
  std::function<void()> wake_cb_;  // guarded by mu_; invoked outside it
  TablePtr table_;
  Schema user_schema_;            // schema() minus the trailing ts column
  BatchPool* pool_ = nullptr;     // guarded by mu_; leaf lock under basket
  std::map<size_t, Oid> watermarks_;  // reader id -> first unseen oid
  size_t next_reader_ = 0;
  size_t capacity_ = 0;  // 0 = unbounded
  DropPolicy drop_policy_ = DropPolicy::kDropOldest;
  int64_t total_appended_ = 0;
  int64_t total_consumed_ = 0;
  int64_t total_shed_ = 0;
  size_t size_high_water_ = 0;
  // Tracing (null = off). Set at wiring time, before concurrent use.
  TraceRing* trace_ring_ = nullptr;
  const Clock* trace_clock_ = nullptr;
};

using BasketPtr = std::shared_ptr<Basket>;

}  // namespace datacell

#endif  // DATACELL_CORE_BASKET_H_
